#pragma once
// The four checkpoint-writing strategies compared in the paper's fig. 9,
// implemented over the simulated filesystem and a simple network model:
//
//   write_fortran           -- original S3D Fortran I/O: one private file
//                              per process per checkpoint (no sharing, but
//                              nprocs opens serialized at the MDS);
//   write_native_collective -- ROMIO-style two-phase collective I/O on a
//                              shared file, one collective write per
//                              variable; file domains are NOT aligned with
//                              stripe boundaries, so neighbouring
//                              aggregators false-share boundary stripes;
//   write_mpiio_caching     -- the paper's MPI-I/O caching layer (section
//                              5.1): stripe-aligned cache pages, at most
//                              one cached copy, metadata distributed
//                              round-robin with distributed locking,
//                              flush-on-close with aligned page writes;
//   write_write_behind      -- the two-stage write-behind scheme (section
//                              5.2): per-destination 64 kB local
//                              sub-buffers flushed to statically
//                              round-robin-assigned page owners, aligned
//                              page writes at close.

#include "iosim/simfs.hpp"
#include "iosim/workload.hpp"

namespace s3d::iosim {

/// Interconnect model for inter-process data movement.
struct NetParams {
  double bw = 100e6;     ///< bytes/s per process (GigE-like)
  double latency = 8e-5; ///< per message [s]
};

/// Timing of one checkpoint write.
struct WriteResult {
  double open_time = 0.0;   ///< file-open phase [s]
  double write_time = 0.0;  ///< data phase (comm + I/O) [s]
  std::size_t bytes = 0;
  double bandwidth() const {
    return write_time > 0.0 ? bytes / write_time : 0.0;
  }
};

/// First-stage sub-buffer size of the write-behind scheme (paper: 64 kB).
inline constexpr std::size_t kSubBuffer = 64 * 1024;
/// Two-phase collective buffer size per aggregator round.
inline constexpr std::size_t kCollBuffer = 4 * 1024 * 1024;

WriteResult write_fortran(SimFS& fs, const CheckpointSpec& spec,
                          const NetParams& net, int checkpoint,
                          double t_start);

WriteResult write_native_collective(SimFS& fs, const CheckpointSpec& spec,
                                    const NetParams& net, int checkpoint,
                                    double t_start);

WriteResult write_mpiio_caching(SimFS& fs, const CheckpointSpec& spec,
                                const NetParams& net, int checkpoint,
                                double t_start);

WriteResult write_write_behind(SimFS& fs, const CheckpointSpec& spec,
                               const NetParams& net, int checkpoint,
                               double t_start);

}  // namespace s3d::iosim
