#pragma once
// The S3D-I/O checkpoint workload (paper section 5.3 and figure 8).
//
// Four global arrays are written per checkpoint in canonical (global,
// x-fastest) order into one shared file:
//   mass        4-D, 4th dimension length 11 (not partitioned),
//   velocity    4-D, 4th dimension length 3,
//   pressure    3-D,
//   temperature 3-D.
// The lowest X-Y-Z dimensions are block-block-block partitioned among the
// processes. Every process therefore contributes many short contiguous
// runs (one local x-row = nx_local * 8 bytes each), which is exactly the
// unaligned access pattern whose lock behaviour section 5 studies.

#include <cstdint>
#include <functional>
#include <vector>

namespace s3d::iosim {

struct CheckpointSpec {
  int nx = 50, ny = 50, nz = 50;  ///< local points per process per axis
  int px = 2, py = 2, pz = 2;     ///< process grid
  int nprocs() const { return px * py * pz; }
  std::size_t elem = 8;           ///< bytes per value

  std::size_t var4_len[2] = {11, 3};  ///< mass, velocity 4th-dim lengths

  /// Bytes of one full 3-D global scalar.
  std::size_t scalar_bytes() const {
    return static_cast<std::size_t>(nx) * px * ny * py * nz * pz * elem;
  }
  /// Total checkpoint bytes (11 + 3 + 1 + 1 scalars).
  std::size_t total_bytes() const { return scalar_bytes() * 16; }
  /// Bytes contributed by each process.
  std::size_t bytes_per_proc() const { return total_bytes() / nprocs(); }
};

/// One contiguous run of a process's data in the shared file.
struct Chunk {
  std::size_t offset;  ///< global file offset [bytes]
  std::size_t len;     ///< length [bytes]
};

/// Invoke fn for every contiguous chunk owned by `proc`, in file order.
void for_each_chunk(const CheckpointSpec& spec, int proc,
                    const std::function<void(const Chunk&)>& fn);

/// Deterministic file-content oracle: the byte every correct writer must
/// place at global offset `o`.
inline std::uint8_t expected_byte(std::size_t o) {
  std::uint64_t x = o * 0x9E3779B97F4A7C15ull + 0x1234567ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return static_cast<std::uint8_t>(x);
}

/// Fill `out` with the expected bytes for [offset, offset+len).
void fill_expected(std::size_t offset, std::size_t len, std::uint8_t* out);

}  // namespace s3d::iosim
