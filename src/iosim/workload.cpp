#include "iosim/workload.hpp"

namespace s3d::iosim {

void for_each_chunk(const CheckpointSpec& spec, int proc,
                    const std::function<void(const Chunk&)>& fn) {
  const int cx = proc % spec.px;
  const int cy = (proc / spec.px) % spec.py;
  const int cz = proc / (spec.px * spec.py);

  const std::size_t gx = static_cast<std::size_t>(spec.nx) * spec.px;
  const std::size_t gy = static_cast<std::size_t>(spec.ny) * spec.py;
  const std::size_t gz = static_cast<std::size_t>(spec.nz) * spec.pz;
  const std::size_t scalar = gx * gy * gz * spec.elem;

  // Scalars in file order: mass[0..10], velocity[0..2], pressure, temp.
  const int n_scalars = static_cast<int>(spec.var4_len[0] + spec.var4_len[1]) + 2;

  const std::size_t x0 = static_cast<std::size_t>(cx) * spec.nx;
  const std::size_t y0 = static_cast<std::size_t>(cy) * spec.ny;
  const std::size_t z0 = static_cast<std::size_t>(cz) * spec.nz;
  const std::size_t row = static_cast<std::size_t>(spec.nx) * spec.elem;

  for (int v = 0; v < n_scalars; ++v) {
    const std::size_t base = static_cast<std::size_t>(v) * scalar;
    for (int k = 0; k < spec.nz; ++k) {
      for (int j = 0; j < spec.ny; ++j) {
        const std::size_t off =
            base + (((z0 + k) * gy + (y0 + j)) * gx + x0) * spec.elem;
        fn(Chunk{off, row});
      }
    }
  }
}

void fill_expected(std::size_t offset, std::size_t len, std::uint8_t* out) {
  for (std::size_t i = 0; i < len; ++i) out[i] = expected_byte(offset + i);
}

}  // namespace s3d::iosim
