#pragma once
// Simulated striped parallel filesystem with byte-range locking at stripe
// granularity (DESIGN.md substitution for Lustre/GPFS).
//
// The model captures exactly the mechanisms the paper's section 5 builds
// on:
//   - files are striped over N I/O servers with finite per-server
//     bandwidth; stripe i is served by server (i mod N);
//   - the stripe is the lock granule: writes from different clients that
//     touch the same stripe serialize, and a client stealing a stripe lock
//     from another client pays a revocation penalty plus (for partial
//     stripe writes) a read-modify-write of the stripe -- this is the
//     "false sharing" cost that unaligned shared-file I/O suffers;
//   - a metadata server serializes file opens, with a per-filesystem
//     service time (GPFS-like systems pay much more per open, reproducing
//     the paper's open-time blow-up in fig. 9).
//
// Time is virtual (seconds, doubles); clients pass their current clock and
// receive completion times. Optionally stores real bytes so correctness
// tests can verify the final file image.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace s3d::iosim {

/// Capped-exponential retry schedule: attempt k (0-based) backs off
/// `first * 2^k`, clamped to `cap`. SimFS::write applies it in virtual
/// time to transient "iosim.write" faults; the checkpoint store's
/// write-behind persister applies the same policy in real time to
/// "checkpoint.persist" faults, so both tiers of the paper's two-stage
/// I/O share one backoff contract.
struct RetryPolicy {
  int retries = 3;     ///< extra attempts after the first failure
  double first = 5e-3; ///< first-retry delay
  double cap = 80e-3;  ///< backoff ceiling
  double delay(int attempt) const {
    const int sh = std::min(attempt, 62);
    return std::min(first * static_cast<double>(1LL << sh), cap);
  }
};

/// Filesystem model parameters.
struct FsParams {
  std::string name = "fs";
  int n_servers = 16;
  std::size_t stripe_size = 512 * 1024;
  double server_bw = 60e6;        ///< bytes/s per server
  double request_latency = 1e-3;  ///< per write/read request [s]
  double lock_revoke = 10e-3;     ///< stealing a held stripe lock [s]
  double mds_service = 2e-3;      ///< per open, serialized at the MDS [s]
  bool store_data = false;

  /// Transient-write-failure handling (DESIGN.md "Resilience"): a write
  /// that fails (the "iosim.write" fault site) is retried up to
  /// `write_retries` times with exponential backoff in virtual time,
  /// starting at `retry_backoff` and doubling up to `retry_backoff_cap`.
  /// Only when the budget is exhausted does the failure propagate.
  int write_retries = 3;
  double retry_backoff = 5e-3;      ///< first-retry delay [s]
  double retry_backoff_cap = 80e-3; ///< backoff ceiling [s]
};

/// Lustre-like profile (paper's Tungsten: 16 stripes, 512 kB).
FsParams lustre_like();
/// GPFS-like profile (paper's Mercury: 54 NSD servers, 512 kB blocks,
/// expensive opens).
FsParams gpfs_like();

/// Per-run accounting.
struct FsStats {
  std::size_t bytes_written = 0;
  long n_writes = 0;
  long n_opens = 0;
  long n_lock_conflicts = 0;  ///< stripe writes that waited on a lock
  long n_rmw = 0;             ///< partial-stripe read-modify-writes
  long n_retried_writes = 0;  ///< writes that needed at least one retry
  long n_retries = 0;         ///< total retry attempts across all writes
  double retry_delay_s = 0.0; ///< virtual time spent in retry backoff
  long n_dropped_writes = 0;  ///< writes discarded by an injected drop
};

class SimFS {
 public:
  explicit SimFS(FsParams p) : p_(std::move(p)) {}

  const FsParams& params() const { return p_; }
  FsStats& stats() { return stats_; }

  /// Open (creating if needed). Serialized at the MDS; returns the fd and
  /// reports the completion time for a request issued at `now`.
  int open(const std::string& name, double now, double* done);

  /// Write [offset, offset+len) by `client`, issued at `now`; returns the
  /// completion time. `data` optional (stored when store_data).
  double write(int fd, int client, std::size_t offset, std::size_t len,
               double now, const std::uint8_t* data = nullptr);

  /// File size and content (requires store_data for content).
  std::size_t file_size(const std::string& name) const;
  const std::vector<std::uint8_t>& file_data(const std::string& name) const;

  /// Virtual time at which all submitted requests have completed.
  double drain_time() const { return drain_; }

 private:
  struct File {
    std::string name;
    std::size_t size = 0;
    std::vector<std::uint8_t> data;
    /// Per-stripe lock state: holder client and release time.
    std::map<std::size_t, std::pair<int, double>> stripe_lock;
  };

  FsParams p_;
  FsStats stats_;
  std::vector<File> files_;
  std::map<std::string, int> by_name_;
  std::vector<double> server_free_;
  double mds_free_ = 0.0;
  double drain_ = 0.0;
};

}  // namespace s3d::iosim
