#include "iosim/writers.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace s3d::iosim {

namespace {

std::string shared_name(int checkpoint) {
  return "ckpt" + std::to_string(checkpoint) + ".field";
}

// Scratch buffer holding the expected bytes for a range (only when the
// filesystem stores data).
class ExpectedBuf {
 public:
  explicit ExpectedBuf(bool enabled) : enabled_(enabled) {}
  const std::uint8_t* get(std::size_t offset, std::size_t len) {
    if (!enabled_) return nullptr;
    buf_.resize(len);
    fill_expected(offset, len, buf_.data());
    return buf_.data();
  }

 private:
  bool enabled_;
  std::vector<std::uint8_t> buf_;
};

// Asynchronous message to a peer's background I/O thread (the paper's
// caching/write-behind designs run a service thread per process, so
// receiving does NOT block the receiver's main progress). The sender pays
// injection cost; `ready[dst]` records when the data has arrived.
void post_msg(std::vector<double>& clock, std::vector<double>& ready,
              const NetParams& net, int src, int dst, std::size_t bytes,
              int n_msgs = 1) {
  clock[src] += bytes / net.bw + n_msgs * net.latency;
  ready[dst] = std::max(ready[dst], clock[src] + net.latency);
}

double sync_all(std::vector<double>& clock) {
  const double t = *std::max_element(clock.begin(), clock.end());
  std::fill(clock.begin(), clock.end(), t);
  return t;
}

// Coalesced dirty extents per page, used by the aligned writers.
struct PageExtents {
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> ext;  // page -> [lo,hi)
  void add(std::size_t page_size, std::size_t offset, std::size_t len) {
    std::size_t pos = offset;
    const std::size_t end = offset + len;
    while (pos < end) {
      const std::size_t page = pos / page_size;
      const std::size_t hi = std::min(end, (page + 1) * page_size);
      auto it = ext.find(page);
      if (it == ext.end()) {
        ext[page] = {pos, hi};
      } else {
        it->second.first = std::min(it->second.first, pos);
        it->second.second = std::max(it->second.second, hi);
      }
      pos = hi;
    }
  }
};

}  // namespace

WriteResult write_fortran(SimFS& fs, const CheckpointSpec& spec,
                          const NetParams& net, int checkpoint,
                          double t_start) {
  (void)net;
  trace::Span sp("iosim.fortran", "iosim");
  const int np = spec.nprocs();
  std::vector<double> clock(np, t_start);
  ExpectedBuf buf(fs.params().store_data);

  // Open phase: every process opens its own file; the MDS serializes.
  std::vector<int> fd(np);
  for (int p = 0; p < np; ++p) {
    double done = 0.0;
    fd[p] = fs.open("ckpt" + std::to_string(checkpoint) + ".p" +
                        std::to_string(p),
                    clock[p], &done);
    clock[p] = done;
  }
  const double open_end = sync_all(clock);

  // Each process writes its local data contiguously into its private file:
  // one request per scalar variable.
  const std::size_t scalar_local =
      static_cast<std::size_t>(spec.nx) * spec.ny * spec.nz * spec.elem;
  const int n_scalars =
      static_cast<int>(spec.var4_len[0] + spec.var4_len[1]) + 2;
  for (int p = 0; p < np; ++p) {
    // Gather this proc's global chunks so the stored private file can be
    // validated against the oracle (content = concatenated chunks).
    std::vector<std::uint8_t> local;
    if (fs.params().store_data) {
      local.reserve(spec.bytes_per_proc());
      for_each_chunk(spec, p, [&](const Chunk& c) {
        const std::size_t at = local.size();
        local.resize(at + c.len);
        fill_expected(c.offset, c.len, local.data() + at);
      });
    }
    // Buffered (async) writes: submission is cheap; the file is durable
    // only at close, so the process waits for its last completion then.
    std::size_t pos = 0;
    double done_p = clock[p];
    for (int v = 0; v < n_scalars; ++v) {
      const std::uint8_t* data =
          fs.params().store_data ? local.data() + pos : nullptr;
      done_p = std::max(done_p,
                        fs.write(fd[p], p, pos, scalar_local, clock[p], data));
      pos += scalar_local;
    }
    clock[p] = done_p;
  }
  const double end = sync_all(clock);

  WriteResult r;
  r.open_time = open_end - t_start;
  r.write_time = end - open_end;
  r.bytes = spec.total_bytes();
  return r;
}

WriteResult write_native_collective(SimFS& fs, const CheckpointSpec& spec,
                                    const NetParams& net, int checkpoint,
                                    double t_start) {
  trace::Span sp("iosim.collective", "iosim");
  const int np = spec.nprocs();
  std::vector<double> clock(np, t_start);
  ExpectedBuf buf(fs.params().store_data);

  double done = 0.0;
  const int fd = fs.open(shared_name(checkpoint), clock[0], &done);
  // A shared-file open is one collective open: everyone waits for it.
  std::fill(clock.begin(), clock.end(), done);
  const double open_end = done;

  // One two-phase collective write per scalar variable. The accessed
  // region is split into nprocs equal contiguous file domains that do NOT
  // respect stripe boundaries (the paper's unaligned case).
  const std::size_t scalar = spec.scalar_bytes();
  const int n_scalars =
      static_cast<int>(spec.var4_len[0] + spec.var4_len[1]) + 2;
  for (int v = 0; v < n_scalars; ++v) {
    // Exchange phase: each proc redistributes its ~scalar/np bytes; nearly
    // all of it goes to other ranks.
    const std::size_t to_send = scalar / np;
    for (int p = 0; p < np; ++p)
      clock[p] += to_send / net.bw + (np > 1 ? (np - 1) : 0) * net.latency;
    sync_all(clock);

    // Write phase: aggregator p owns [base + p*domain, base + (p+1)*domain)
    // and writes it in collective-buffer-sized requests.
    const std::size_t base = static_cast<std::size_t>(v) * scalar;
    const std::size_t domain = scalar / np;
    for (int p = 0; p < np; ++p) {
      const std::size_t lo = base + p * domain;
      const std::size_t hi = (p == np - 1) ? base + scalar : lo + domain;
      std::size_t pos = lo;
      while (pos < hi) {
        const std::size_t len = std::min(kCollBuffer, hi - pos);
        clock[p] = fs.write(fd, p, pos, len, clock[p], buf.get(pos, len));
        pos += len;
      }
    }
    sync_all(clock);
  }
  const double end = sync_all(clock);

  WriteResult r;
  r.open_time = open_end - t_start;
  r.write_time = end - open_end;
  r.bytes = spec.total_bytes();
  return r;
}

WriteResult write_mpiio_caching(SimFS& fs, const CheckpointSpec& spec,
                                const NetParams& net, int checkpoint,
                                double t_start) {
  trace::Span sp("iosim.caching", "iosim");
  const int np = spec.nprocs();
  std::vector<double> clock(np, t_start);
  ExpectedBuf buf(fs.params().store_data);
  const std::size_t page = fs.params().stripe_size;

  double done = 0.0;
  const int fd = fs.open(shared_name(checkpoint), clock[0], &done);
  std::fill(clock.begin(), clock.end(), done);
  const double open_end = done;

  // Cache state: page -> owner (first process to touch it, paper sec 5.1),
  // and per-owner dirty extents.
  std::map<std::size_t, int> owner;
  std::vector<PageExtents> dirty(np);
  std::vector<double> ready(np, 0.0);
  // Track which (proc, page) pairs already paid the metadata lock
  // round-trip; later accesses hit the cached metadata.
  std::map<std::size_t, std::vector<bool>> metadata_seen;

  // Each variable is one MPI-I/O request per process (S3D writes each
  // variable with a single collective call over a derived datatype), so
  // the caching layer forwards remote-page data in per-(request, page)
  // batches, not per row. Process variables in order with the processes
  // interleaved to emulate concurrent first-touch.
  std::vector<std::vector<Chunk>> chunks(np);
  for (int p = 0; p < np; ++p)
    for_each_chunk(spec, p, [&](const Chunk& c) { chunks[p].push_back(c); });
  const std::size_t chunks_per_var =
      static_cast<std::size_t>(spec.ny) * spec.nz;
  const int n_vars =
      static_cast<int>(spec.var4_len[0] + spec.var4_len[1]) + 2;

  for (int v = 0; v < n_vars; ++v) {
    // First touch / ownership resolution for this request wave.
    std::vector<std::map<std::size_t, std::size_t>> remote_bytes(np);
    for (std::size_t ci = v * chunks_per_var; ci < (v + 1) * chunks_per_var;
         ++ci) {
      for (int p = 0; p < np; ++p) {
        const Chunk& c = chunks[p][ci];
        std::size_t pos = c.offset;
        const std::size_t end = c.offset + c.len;
        while (pos < end) {
          const std::size_t pg = pos / page;
          const std::size_t hi = std::min(end, (pg + 1) * page);
          auto& seen = metadata_seen[pg];
          if (seen.empty()) seen.assign(np, false);
          if (!seen[p]) {
            // Metadata lock round-trip to the round-robin holder's I/O
            // thread: two message latencies on the requester.
            clock[p] += 2 * net.latency;
            seen[p] = true;
          }
          auto it = owner.find(pg);
          if (it == owner.end()) {
            owner[pg] = p;  // first touch: cache locally
            dirty[p].add(page, pos, hi - pos);
          } else if (it->second == p) {
            dirty[p].add(page, pos, hi - pos);  // local cache hit
          } else {
            remote_bytes[p][pg] += hi - pos;
            dirty[it->second].add(page, pos, hi - pos);
          }
          pos = hi;
        }
      }
    }
    // Ship this request's remote-page batches.
    for (int p = 0; p < np; ++p)
      for (const auto& [pg, bytes] : remote_bytes[p])
        post_msg(clock, ready, net, p, static_cast<int>(owner[pg]), bytes);
  }

  // Close: each owner flushes its dirty pages once its forwarded data has
  // arrived; flushes are pipelined (async submit, wait for the last).
  for (int p = 0; p < np; ++p) {
    clock[p] = std::max(clock[p], ready[p]);
    double done_p = clock[p];
    for (const auto& [pg, ext] : dirty[p].ext) {
      const std::size_t len = ext.second - ext.first;
      done_p = std::max(done_p, fs.write(fd, p, ext.first, len, clock[p],
                                         buf.get(ext.first, len)));
    }
    clock[p] = done_p;
  }
  const double end = sync_all(clock);

  WriteResult r;
  r.open_time = open_end - t_start;
  r.write_time = end - open_end;
  r.bytes = spec.total_bytes();
  return r;
}

WriteResult write_write_behind(SimFS& fs, const CheckpointSpec& spec,
                               const NetParams& net, int checkpoint,
                               double t_start) {
  trace::Span sp("iosim.write_behind", "iosim");
  sp.set_bytes(spec.total_bytes());
  const int np = spec.nprocs();
  std::vector<double> clock(np, t_start);
  ExpectedBuf buf(fs.params().store_data);
  const std::size_t page = fs.params().stripe_size;

  double done = 0.0;
  int fd = -1;
  {
    trace::Span sp_open("iosim.wb.open", "iosim");
    fd = fs.open(shared_name(checkpoint), clock[0], &done);
  }
  std::fill(clock.begin(), clock.end(), done);
  const double open_end = done;

  // Static round-robin page ownership; per-destination 64 kB sub-buffers.
  std::vector<PageExtents> global_buf(np);
  std::vector<double> ready(np, 0.0);
  std::vector<std::vector<std::size_t>> sub_fill(
      np, std::vector<std::size_t>(np, 0));

  trace::Span sp_stage("iosim.wb.stage_subbuffers", "iosim");
  for (int p = 0; p < np; ++p) {
    for_each_chunk(spec, p, [&](const Chunk& c) {
      std::size_t pos = c.offset;
      const std::size_t end = c.offset + c.len;
      while (pos < end) {
        const std::size_t pg = pos / page;
        const std::size_t hi = std::min(end, (pg + 1) * page);
        const int own = static_cast<int>(pg % np);
        const std::size_t bytes = hi - pos;
        global_buf[own].add(page, pos, bytes);
        if (own != p) {
          sub_fill[p][own] += bytes + 16;  // offset-length header
          if (sub_fill[p][own] >= kSubBuffer) {
            post_msg(clock, ready, net, p, own, sub_fill[p][own]);
            sub_fill[p][own] = 0;
          }
        }
        pos = hi;
      }
    });
  }
  // Flush the partial sub-buffers.
  for (int p = 0; p < np; ++p)
    for (int d = 0; d < np; ++d)
      if (sub_fill[p][d] > 0) post_msg(clock, ready, net, p, d, sub_fill[p][d]);
  sp_stage.stop();
  trace::Span sp_flush("iosim.wb.flush_pages", "iosim");

  // Page owners write their global pages (aligned) once data arrived;
  // pipelined like the caching flush.
  for (int p = 0; p < np; ++p) {
    clock[p] = std::max(clock[p], ready[p]);
    double done_p = clock[p];
    for (const auto& [pg, ext] : global_buf[p].ext) {
      const std::size_t len = ext.second - ext.first;
      done_p = std::max(done_p, fs.write(fd, p, ext.first, len, clock[p],
                                         buf.get(ext.first, len)));
    }
    clock[p] = done_p;
  }
  const double end = sync_all(clock);

  WriteResult r;
  r.open_time = open_end - t_start;
  r.write_time = end - open_end;
  r.bytes = spec.total_bytes();
  return r;
}

}  // namespace s3d::iosim
