#include "iosim/simfs.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "resilience/fault.hpp"

namespace s3d::iosim {

FsParams lustre_like() {
  FsParams p;
  p.name = "lustre";
  p.n_servers = 16;
  p.stripe_size = 512 * 1024;
  p.server_bw = 55e6;
  p.request_latency = 0.8e-3;
  p.lock_revoke = 40e-3;
  p.mds_service = 2e-3;
  return p;
}

FsParams gpfs_like() {
  FsParams p;
  p.name = "gpfs";
  p.n_servers = 54;
  p.stripe_size = 512 * 1024;
  p.server_bw = 5.5e6;
  p.request_latency = 3e-3;
  p.lock_revoke = 30e-3;
  p.mds_service = 30e-3;
  return p;
}

int SimFS::open(const std::string& name, double now, double* done) {
  if (server_free_.empty()) server_free_.assign(p_.n_servers, 0.0);
  // MDS queue: opens serialize.
  const double start = std::max(now, mds_free_);
  mds_free_ = start + p_.mds_service;
  if (done) *done = mds_free_;
  drain_ = std::max(drain_, mds_free_);
  ++stats_.n_opens;

  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  files_.push_back(File{name, 0, {}, {}});
  const int fd = static_cast<int>(files_.size()) - 1;
  by_name_[name] = fd;
  return fd;
}

double SimFS::write(int fd, int client, std::size_t offset, std::size_t len,
                    double now, const std::uint8_t* data) {
  S3D_REQUIRE(fd >= 0 && fd < static_cast<int>(files_.size()), "bad fd");
  if (len == 0) return now;

  // Transient faults ("iosim.write" site): failures retry with capped
  // exponential backoff in virtual time; only an exhausted retry budget
  // propagates. Drops discard the request; corruptions damage the stored
  // payload (silent until a reader checksums it); delays burn clock.
  std::vector<std::uint8_t> corrupted;
  const RetryPolicy retry{p_.write_retries, p_.retry_backoff,
                          p_.retry_backoff_cap};
  for (int attempt = 0;; ++attempt) {
    const auto a = fault::probe("iosim.write");
    if (!a) break;
    if (a.kind == fault::Kind::fail) {
      if (attempt >= retry.retries) fault::apply(a, "iosim.write");
      const double backoff = retry.delay(attempt);
      if (attempt == 0) ++stats_.n_retried_writes;
      ++stats_.n_retries;
      stats_.retry_delay_s += backoff;
      now += backoff;
      continue;
    }
    if (a.kind == fault::Kind::delay) {
      now += a.delay_ms * 1e-3;
    } else if (a.kind == fault::Kind::drop) {
      ++stats_.n_dropped_writes;
      return now;
    } else if (a.kind == fault::Kind::corrupt && data) {
      corrupted.assign(data, data + len);
      fault::corrupt_bytes(a, corrupted.data(), corrupted.size());
      data = corrupted.data();
    }
    break;
  }

  File& f = files_[fd];

  const std::size_t ss = p_.stripe_size;
  const std::size_t s0 = offset / ss;
  const std::size_t s1 = (offset + len - 1) / ss;
  double done_all = now;

  for (std::size_t s = s0; s <= s1; ++s) {
    const std::size_t lo = std::max(offset, s * ss);
    const std::size_t hi = std::min(offset + len, (s + 1) * ss);
    const std::size_t bytes = hi - lo;
    // Per-file starting-server offset (real filesystems rotate the first
    // OST/NSD per file so concurrent files spread load).
    const int srv = static_cast<int>(
        (s + static_cast<std::size_t>(fd) * 2654435761u) % p_.n_servers);

    double start = std::max(now, server_free_[srv]);
    double extra = p_.request_latency;

    auto& lock = f.stripe_lock[s];
    const bool held_by_other = lock.second > 0.0 && lock.first != client;
    if (held_by_other) {
      // Wait for the holder, pay revocation; partial-stripe writes also
      // read-modify-write the stripe.
      ++stats_.n_lock_conflicts;
      start = std::max(start, lock.second);
      extra += p_.lock_revoke;
      if (bytes < ss) {
        extra += ss / p_.server_bw;  // RMW read
        ++stats_.n_rmw;
      }
    }

    const double done = start + extra + bytes / p_.server_bw;
    server_free_[srv] = done;
    lock = {client, done};
    done_all = std::max(done_all, done);
  }

  if (p_.store_data) {
    if (f.data.size() < offset + len) f.data.resize(offset + len, 0);
    if (data) std::copy(data, data + len, f.data.begin() + offset);
  }
  f.size = std::max(f.size, offset + len);
  stats_.bytes_written += len;
  ++stats_.n_writes;
  drain_ = std::max(drain_, done_all);
  return done_all;
}

std::size_t SimFS::file_size(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? 0 : files_[it->second].size;
}

const std::vector<std::uint8_t>& SimFS::file_data(
    const std::string& name) const {
  auto it = by_name_.find(name);
  S3D_REQUIRE(it != by_name_.end(),
              "SimFS::file_data: no such file '" + name + "' on filesystem '" +
                  p_.name + "' (" + std::to_string(files_.size()) +
                  " files known)");
  S3D_REQUIRE(p_.store_data,
              "SimFS::file_data('" + name +
                  "'): filesystem was created with store_data=false, so "
                  "content was not retained");
  return files_[it->second].data;
}

}  // namespace s3d::iosim
