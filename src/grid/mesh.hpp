#pragma once
// Structured Cartesian meshes for 1/2/3-D domains, with the algebraically
// stretched transverse axis the paper uses for its jet configurations
// (sections 6.2, 7.2: uniform in x and z, stretched in y), and block
// domain decomposition for parallel runs.

#include <array>
#include <vector>

#include "common/error.hpp"

namespace s3d::grid {

/// One coordinate axis.
struct AxisSpec {
  int n = 1;              ///< number of grid points
  double length = 1.0;    ///< domain extent [m]
  bool periodic = false;
  /// Algebraic stretching strength; 0 = uniform. Positive values cluster
  /// points near the axis centre (sinh map), as used for the transverse
  /// direction of slot-jet DNS.
  double stretch = 0.0;
  double origin = 0.0;    ///< coordinate of the first point
};

/// A structured (possibly stretched) Cartesian mesh. Axes with n == 1 are
/// inactive: derivatives along them vanish, making 1-D and 2-D runs
/// natural special cases of the 3-D solver.
class Mesh {
 public:
  Mesh(AxisSpec x, AxisSpec y, AxisSpec z);

  int nx() const { return spec_[0].n; }
  int ny() const { return spec_[1].n; }
  int nz() const { return spec_[2].n; }
  std::size_t points() const {
    return static_cast<std::size_t>(nx()) * ny() * nz();
  }
  bool active(int axis) const { return spec_[axis].n > 1; }
  bool periodic(int axis) const { return spec_[axis].periodic; }
  const AxisSpec& spec(int axis) const { return spec_[axis]; }

  /// Node coordinate along `axis` at index i.
  double coord(int axis, int i) const { return coords_[axis][i]; }
  const std::vector<double>& coords(int axis) const { return coords_[axis]; }

  /// Metric d(xi)/dx at node i (1/h for uniform axes); derivative stencils
  /// computed in index space are multiplied by this to give physical
  /// derivatives.
  const std::vector<double>& inv_spacing(int axis) const {
    return inv_spacing_[axis];
  }

  /// Smallest physical grid spacing of an axis (time-step estimates).
  double min_spacing(int axis) const;

  /// Smallest spacing over all active axes.
  double min_spacing() const;

 private:
  std::array<AxisSpec, 3> spec_;
  std::array<std::vector<double>, 3> coords_;
  std::array<std::vector<double>, 3> inv_spacing_;
};

/// Block decomposition of a global mesh onto a (px, py, pz) process grid
/// (paper section 2.6: 3-D domain decomposition, equal loads).
class Decomp {
 public:
  Decomp(int nx, int ny, int nz, int px, int py, int pz);

  int px() const { return p_[0]; }
  int py() const { return p_[1]; }
  int pz() const { return p_[2]; }
  int nranks() const { return p_[0] * p_[1] * p_[2]; }

  /// Process coordinates of `rank` (x fastest).
  std::array<int, 3> coords_of(int rank) const;
  /// Rank of process coordinates; -1 when out of range and not periodic.
  int rank_of(int cx, int cy, int cz) const;

  /// Local index range [begin, end) along `axis` for process coord c.
  std::pair<int, int> local_range(int axis, int c) const;
  /// Local extents of `rank`.
  std::array<int, 3> local_extent(int rank) const;

  /// Neighbour rank in direction axis/sign for `rank`; -1 at a physical
  /// (non-periodic) boundary. Periodicity per axis supplied here.
  int neighbor(int rank, int axis, int sign,
               const std::array<bool, 3>& periodic) const;

 private:
  std::array<int, 3> n_, p_;
};

}  // namespace s3d::grid
