#include "grid/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace s3d::grid {

namespace {

// Build coordinates and the d(xi)/dx metric for one axis. xi is the index
// coordinate (0..n-1). For stretched axes, y(eta) with eta = i/(n-1):
//   y = origin + L * (sinh(beta (2 eta - 1)) / sinh(beta) + 1) / 2
// which clusters points near the axis centre for beta > 0.
void build_axis(const AxisSpec& s, std::vector<double>& x,
                std::vector<double>& inv) {
  const int n = s.n;
  x.resize(n);
  inv.resize(n);
  if (n == 1) {
    x[0] = s.origin;
    inv[0] = 0.0;  // inactive axis: derivatives vanish
    return;
  }
  if (s.stretch <= 0.0) {
    // Uniform. Periodic axes exclude the repeated endpoint: h = L/n;
    // bounded axes include both endpoints: h = L/(n-1).
    const double h = s.periodic ? s.length / n : s.length / (n - 1);
    for (int i = 0; i < n; ++i) {
      x[i] = s.origin + i * h;
      inv[i] = 1.0 / h;
    }
    return;
  }
  S3D_REQUIRE(!s.periodic, "stretched periodic axes are not supported");
  const double beta = s.stretch;
  const double sb = std::sinh(beta);
  for (int i = 0; i < n; ++i) {
    const double eta = static_cast<double>(i) / (n - 1);
    x[i] = s.origin + s.length * (std::sinh(beta * (2 * eta - 1)) / sb + 1.0) / 2.0;
    // dy/deta = L * beta * cosh(beta(2 eta - 1)) / sinh(beta);
    // d(xi)/dy = 1 / (dy/deta * deta/dxi), deta/dxi = 1/(n-1).
    const double dyde = s.length * beta * std::cosh(beta * (2 * eta - 1)) / sb;
    // Index-space step is d(eta) = 1/(n-1), so d(xi)/dy = (n-1)/(dy/deta).
    inv[i] = (n - 1) / dyde;
  }
}

}  // namespace

Mesh::Mesh(AxisSpec x, AxisSpec y, AxisSpec z) : spec_{x, y, z} {
  for (int a = 0; a < 3; ++a) {
    S3D_REQUIRE(spec_[a].n >= 1, "axis needs at least one point");
    S3D_REQUIRE(spec_[a].length > 0.0, "axis length must be positive");
    build_axis(spec_[a], coords_[a], inv_spacing_[a]);
  }
}

double Mesh::min_spacing(int axis) const {
  if (!active(axis)) return std::numeric_limits<double>::infinity();
  double h = std::numeric_limits<double>::infinity();
  const auto& x = coords_[axis];
  for (std::size_t i = 1; i < x.size(); ++i)
    h = std::min(h, x[i] - x[i - 1]);
  return h;
}

double Mesh::min_spacing() const {
  double h = std::numeric_limits<double>::infinity();
  for (int a = 0; a < 3; ++a)
    if (active(a)) h = std::min(h, min_spacing(a));
  return h;
}

Decomp::Decomp(int nx, int ny, int nz, int px, int py, int pz)
    : n_{nx, ny, nz}, p_{px, py, pz} {
  S3D_REQUIRE(px >= 1 && py >= 1 && pz >= 1, "process grid must be >= 1");
  S3D_REQUIRE(nx >= px && ny >= py && nz >= pz,
              "fewer grid points than processes along an axis");
}

std::array<int, 3> Decomp::coords_of(int rank) const {
  S3D_REQUIRE(rank >= 0 && rank < nranks(), "rank out of range");
  return {rank % p_[0], (rank / p_[0]) % p_[1], rank / (p_[0] * p_[1])};
}

int Decomp::rank_of(int cx, int cy, int cz) const {
  if (cx < 0 || cx >= p_[0] || cy < 0 || cy >= p_[1] || cz < 0 ||
      cz >= p_[2])
    return -1;
  return cx + p_[0] * (cy + p_[1] * cz);
}

std::pair<int, int> Decomp::local_range(int axis, int c) const {
  const int n = n_[axis], p = p_[axis];
  const int base = n / p, rem = n % p;
  // First `rem` blocks get one extra point.
  const int begin = c * base + std::min(c, rem);
  const int len = base + (c < rem ? 1 : 0);
  return {begin, begin + len};
}

std::array<int, 3> Decomp::local_extent(int rank) const {
  const auto c = coords_of(rank);
  std::array<int, 3> e;
  for (int a = 0; a < 3; ++a) {
    auto [b, ed] = local_range(a, c[a]);
    e[a] = ed - b;
  }
  return e;
}

int Decomp::neighbor(int rank, int axis, int sign,
                     const std::array<bool, 3>& periodic) const {
  auto c = coords_of(rank);
  c[axis] += sign;
  if (periodic[axis]) {
    c[axis] = (c[axis] + p_[axis]) % p_[axis];
  }
  return rank_of(c[0], c[1], c[2]);
}

}  // namespace s3d::grid
