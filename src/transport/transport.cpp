#include "transport/transport.hpp"

#include <array>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace s3d::transport {

namespace c = s3d::constants;

double omega22(double Tstar) {
  // Neufeld, Janzen & Aziz (1972) fit, valid 0.3 <= T* <= 100.
  return 1.16145 * std::pow(Tstar, -0.14874) +
         0.52487 * std::exp(-0.77320 * Tstar) +
         2.16178 * std::exp(-2.43787 * Tstar);
}

double omega11(double Tstar) {
  return 1.06036 * std::pow(Tstar, -0.15610) +
         0.19300 * std::exp(-0.47635 * Tstar) +
         1.03587 * std::exp(-1.52996 * Tstar) +
         1.76474 * std::exp(-3.89411 * Tstar);
}

double viscosity(const chem::Species& sp, double T) {
  // Chapman-Enskog: mu = 5/16 sqrt(pi m kB T) / (pi sigma^2 Omega22).
  const double m = sp.W / c::NA;  // kg per molecule
  const double sigma = sp.transport.sigma * c::angstrom;
  const double Tstar = T / sp.transport.eps_over_kB;
  const double pi = 3.14159265358979323846;
  return 5.0 / 16.0 * std::sqrt(pi * m * c::kB * T) /
         (pi * sigma * sigma * omega22(Tstar));
}

double conductivity(const chem::Species& sp, double T) {
  // Modified Eucken correction: splits cv into translational, rotational
  // and vibrational parts with different transport factors. (Warnatz form.)
  const double mu = viscosity(sp, T);
  const double R_sp = c::Ru / sp.W;  // J/(kg K)
  double cv_rot = 0.0;
  switch (sp.transport.geometry) {
    case chem::Geometry::atom: cv_rot = 0.0; break;
    case chem::Geometry::linear: cv_rot = R_sp; break;
    case chem::Geometry::nonlinear: cv_rot = 1.5 * R_sp; break;
  }
  const double cv_trans = 1.5 * R_sp;
  // cv from thermo: cp - R.
  // Avoid a chem::thermo dependency here by the caller-supplied polynomial?
  // conductivity() is only used for reference/fitting; use cp from NASA
  // polynomials through a local evaluation of cp/R.
  const double Tc = std::min(std::max(T, sp.T_low), sp.T_high);
  const auto& a = Tc < sp.T_mid ? sp.nasa_low : sp.nasa_high;
  const double cpR = a[0] + Tc * (a[1] + Tc * (a[2] + Tc * (a[3] + Tc * a[4])));
  const double cv = (cpR - 1.0) * R_sp;
  const double cv_vib = std::max(cv - cv_trans - cv_rot, 0.0);
  // Transport factors: f_trans = 5/2, f_rot = f_vib = rho D / mu ~ 1.32
  // (constant Schmidt approximation of the self-diffusion ratio).
  const double f_trans = 2.5, f_int = 1.32;
  return mu * (f_trans * cv_trans + f_int * (cv_rot + cv_vib));
}

double binary_diffusion(const chem::Species& a, const chem::Species& b,
                        double T, double p) {
  // Chapman-Enskog first approximation:
  //   D_ab = 3/16 sqrt(2 pi kB^3 T^3 / m_ab) / (p pi sigma_ab^2 Omega11).
  const double pi = 3.14159265358979323846;
  const double m_a = a.W / c::NA, m_b = b.W / c::NA;
  const double m_ab = m_a * m_b / (m_a + m_b);
  const double sigma_ab =
      0.5 * (a.transport.sigma + b.transport.sigma) * c::angstrom;
  const double eps_ab =
      std::sqrt(a.transport.eps_over_kB * b.transport.eps_over_kB);
  const double Tstar = T / eps_ab;
  return 3.0 / 16.0 *
         std::sqrt(2.0 * pi * c::kB * c::kB * c::kB * T * T * T / m_ab) /
         (p * pi * sigma_ab * sigma_ab * omega11(Tstar));
}

double soret_ratio(const chem::Species& sp) {
  // Light-species approximation (Chapman-Enskog leading order): only
  // species much lighter than the bath have appreciable ratios.
  if (sp.name == "H2") return -0.29;
  if (sp.name == "H") return -0.35;
  if (sp.name == "HE") return -0.29;
  return 0.0;
}

namespace {

// Least-squares cubic fit of ln(property) vs ln(T) over n sample points.
std::array<double, 4> fit_lnT(const std::vector<double>& lnT,
                              const std::vector<double>& lnF) {
  // Normal equations for a cubic; 4x4 solve by Gaussian elimination.
  double S[4][5] = {};
  const std::size_t n = lnT.size();
  for (std::size_t s = 0; s < n; ++s) {
    double xp[7] = {1, 0, 0, 0, 0, 0, 0};
    for (int k = 1; k < 7; ++k) xp[k] = xp[k - 1] * lnT[s];
    for (int r = 0; r < 4; ++r) {
      for (int col = 0; col < 4; ++col) S[r][col] += xp[r + col];
      S[r][4] += xp[r] * lnF[s];
    }
  }
  for (int piv = 0; piv < 4; ++piv) {
    int best = piv;
    for (int r = piv + 1; r < 4; ++r)
      if (std::abs(S[r][piv]) > std::abs(S[best][piv])) best = r;
    for (int col = 0; col < 5; ++col) std::swap(S[piv][col], S[best][col]);
    for (int r = 0; r < 4; ++r) {
      if (r == piv) continue;
      const double f = S[r][piv] / S[piv][piv];
      for (int col = piv; col < 5; ++col) S[r][col] -= f * S[piv][col];
    }
  }
  return {S[0][4] / S[0][0], S[1][4] / S[1][1], S[2][4] / S[2][2],
          S[3][4] / S[3][3]};
}

}  // namespace

TransportFits::TransportFits(const chem::Mechanism& mech, double T_lo,
                             double T_hi)
    : ns_(mech.n_species()), chem_p_ref_(c::p_atm) {
  S3D_REQUIRE(T_hi > T_lo && T_lo > 0.0, "bad transport fit range");
  W_.resize(ns_);
  for (int i = 0; i < ns_; ++i) W_[i] = mech.W(i);

  // Sample the kinetic-theory expressions at the sample temperatures
  // directly; historically this round-tripped T through exp(log(T)),
  // which perturbs each sample by ~1 ulp for no reason.
  // tests/test_transport_batched.cpp pins that removing the round-trip
  // leaves the fitted properties unchanged to fit accuracy.
  constexpr int kSamples = 24;
  std::vector<double> Ts(kSamples), lnT(kSamples), lnF(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    Ts[s] = T_lo + (T_hi - T_lo) * s / (kSamples - 1);
    lnT[s] = std::log(Ts[s]);
  }

  visc_.resize(ns_);
  cond_.resize(ns_);
  for (int i = 0; i < ns_; ++i) {
    const auto& sp = mech.species(i);
    for (int s = 0; s < kSamples; ++s)
      lnF[s] = std::log(transport::viscosity(sp, Ts[s]));
    visc_[i] = fit_lnT(lnT, lnF);
    for (int s = 0; s < kSamples; ++s)
      lnF[s] = std::log(transport::conductivity(sp, Ts[s]));
    cond_[i] = fit_lnT(lnT, lnF);
  }

  diff_.resize(static_cast<std::size_t>(ns_) * ns_);
  for (int i = 0; i < ns_; ++i) {
    for (int j = 0; j < ns_; ++j) {
      const auto& a = mech.species(i);
      const auto& b = mech.species(j);
      for (int s = 0; s < kSamples; ++s)
        lnF[s] = std::log(
            transport::binary_diffusion(a, b, Ts[s], chem_p_ref_));
      diff_[static_cast<std::size_t>(i) * ns_ + j] = fit_lnT(lnT, lnF);
    }
  }

  wilke_denom_.resize(static_cast<std::size_t>(ns_) * ns_);
  w_qrt_.resize(static_cast<std::size_t>(ns_) * ns_);
  for (int i = 0; i < ns_; ++i)
    for (int j = 0; j < ns_; ++j) {
      wilke_denom_[i * ns_ + j] = std::sqrt(8.0 * (1.0 + W_[i] / W_[j]));
      w_qrt_[i * ns_ + j] = std::pow(W_[j] / W_[i], 0.25);
    }
}

double TransportFits::mixture_viscosity(double T,
                                        std::span<const double> X) const {
  return mixture_viscosity_lnT(std::log(T), X);
}

// The _lnT mixture rules below are the one compiled body per rule (never
// inlined): the scalar T entry points, the batched row evaluators and the
// DLB-remote path all funnel through them, so -O3 cannot contract the
// mixture arithmetic differently per call site (DESIGN.md §11).
__attribute__((noinline)) double TransportFits::mixture_viscosity_lnT(
    double lnT, std::span<const double> X) const {
  double mu_i[chem::kMaxSpecies];
  for (int i = 0; i < ns_; ++i) mu_i[i] = viscosity(i, lnT);
  double mu = 0.0;
  for (int i = 0; i < ns_; ++i) {
    if (X[i] <= 0.0) continue;
    double denom = 0.0;
    for (int j = 0; j < ns_; ++j) {
      const double r =
          1.0 + std::sqrt(mu_i[i] / mu_i[j]) * w_qrt_[i * ns_ + j];
      const double phi = r * r / wilke_denom_[i * ns_ + j];
      denom += X[j] * phi;
    }
    mu += X[i] * mu_i[i] / denom;
  }
  return mu;
}

double TransportFits::mixture_conductivity(double T,
                                           std::span<const double> X) const {
  return mixture_conductivity_lnT(std::log(T), X);
}

__attribute__((noinline)) double TransportFits::mixture_conductivity_lnT(
    double lnT, std::span<const double> X) const {
  // Mathur-Saxena: lambda = 1/2 (sum X_i lam_i + 1 / sum X_i / lam_i).
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < ns_; ++i) {
    const double lam = conductivity(i, lnT);
    const double Xi = std::max(X[i], 0.0);
    s1 += Xi * lam;
    s2 += Xi / lam;
  }
  return 0.5 * (s1 + 1.0 / s2);
}

void TransportFits::mixture_diffusion(double T, double p,
                                      std::span<const double> X,
                                      std::span<double> Dmix) const {
  mixture_diffusion_lnT(std::log(T), p, X, Dmix);
}

__attribute__((noinline)) void TransportFits::mixture_diffusion_lnT(
    double lnT, double p, std::span<const double> X,
    std::span<double> Dmix) const {
  for (int i = 0; i < ns_; ++i) {
    double denom = 0.0;
    for (int j = 0; j < ns_; ++j) {
      if (j == i) continue;
      denom += std::max(X[j], 0.0) / binary_diffusion(i, j, lnT, p);
    }
    const double Xi = std::min(std::max(X[i], 0.0), 1.0);
    if (denom < 1e-12) {
      // Pure-species limit: fall back to self-pair estimate with the
      // nearest other species negligible; use D with the heaviest species.
      Dmix[i] = binary_diffusion(i, (i + 1) % ns_, lnT, p);
    } else {
      Dmix[i] = (1.0 - Xi) / denom;
      if (Dmix[i] <= 0.0) Dmix[i] = binary_diffusion(i, (i + 1) % ns_, lnT, p);
    }
  }
}

void TransportFits::mixture_props_batch(int count, const double* lnT,
                                        const double* X, double* mu,
                                        double* lam) const {
  for (int cell = 0; cell < count; ++cell) {
    const std::span<const double> Xc(X + static_cast<std::size_t>(cell) * ns_,
                                     static_cast<std::size_t>(ns_));
    mu[cell] = mixture_viscosity_lnT(lnT[cell], Xc);
    lam[cell] = mixture_conductivity_lnT(lnT[cell], Xc);
  }
}

void TransportFits::mixture_diffusion_batch(int count, const double* lnT,
                                            double p, const double* X,
                                            double* Dmix) const {
  for (int cell = 0; cell < count; ++cell) {
    const std::size_t o = static_cast<std::size_t>(cell) * ns_;
    mixture_diffusion_lnT(lnT[cell], p,
                          std::span<const double>(X + o, ns_),
                          std::span<double>(Dmix + o, ns_));
  }
}

}  // namespace s3d::transport
