#pragma once
// Molecular transport properties (the TRANSPORT library of paper section
// 2.6): pure-species viscosity, thermal conductivity, and binary diffusion
// coefficients from Chapman-Enskog kinetic theory with Neufeld collision
// integral fits, plus the mixture rules S3D uses:
//   - Wilke's formula for mixture viscosity,
//   - Mathur's combination for mixture conductivity,
//   - mixture-averaged diffusion coefficients, paper eq. (17).
//
// Like CHEMKIN's TRANSPORT, the expensive kinetic-theory expressions are
// fitted once per mechanism to polynomials in ln T and evaluated from the
// fits in the solver's inner loops (see TransportFits).

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "chem/mechanism.hpp"

namespace s3d::transport {

/// Reduced collision integral Omega(2,2)* (viscosity/conductivity),
/// Neufeld et al. fit; Tstar = kB T / eps.
double omega22(double Tstar);

/// Reduced collision integral Omega(1,1)* (diffusion), Neufeld fit.
double omega11(double Tstar);

/// Pure-species dynamic viscosity [Pa s] from kinetic theory.
double viscosity(const chem::Species& sp, double T);

/// Pure-species thermal conductivity [W/(m K)] using the modified Eucken
/// correction for internal degrees of freedom.
double conductivity(const chem::Species& sp, double T);

/// Binary diffusion coefficient [m^2/s] of species pair at (T, p).
double binary_diffusion(const chem::Species& a, const chem::Species& b,
                        double T, double p);

/// Constant thermal-diffusion (Soret) ratio theta_i for species `sp`:
/// the species drift velocity is V_i^Soret = -D_i theta_i grad(ln T).
/// Negative for the light species (H2, H drift toward hot regions);
/// ~0 for heavy species. Values follow the common light-species
/// approximation used with mixture-averaged transport.
double soret_ratio(const chem::Species& sp);

/// Polynomial fits (3rd order in ln T) of the pure-species properties and
/// binary diffusion matrix for one mechanism, CHEMKIN TRANSPORT style.
/// Fitted over [T_fit_lo, T_fit_hi]; diffusion fits are at the reference
/// pressure and rescaled by p_ref/p at evaluation.
class TransportFits {
 public:
  /// Build fits for every species and pair of `mech`.
  explicit TransportFits(const chem::Mechanism& mech, double T_lo = 250.0,
                         double T_hi = 3200.0);

  int n_species() const { return ns_; }

  /// Fitted pure-species viscosity [Pa s].
  double viscosity(int i, double lnT) const {
    return eval(visc_, i, lnT);
  }
  /// Fitted pure-species conductivity [W/(m K)].
  double conductivity(int i, double lnT) const {
    return eval(cond_, i, lnT);
  }
  /// Fitted binary diffusion [m^2/s] at pressure p [Pa].
  double binary_diffusion(int i, int j, double lnT, double p) const {
    return eval(diff_, i * ns_ + j, lnT) * (chem_p_ref_ / p);
  }

  // --- Mixture rules (evaluated pointwise in the solver RHS) ---

  /// Wilke mixture viscosity [Pa s] from mole fractions X.
  double mixture_viscosity(double T, std::span<const double> X) const;

  /// Mathur-Saxena mixture conductivity [W/(m K)].
  double mixture_conductivity(double T, std::span<const double> X) const;

  /// Mixture-averaged diffusion coefficients (paper eq. 17):
  ///   D_i^mix = (1 - X_i) / sum_{j != i} X_j / D_ij
  /// Writes ns coefficients [m^2/s]. A small floor on the denominator keeps
  /// the pure-species limit (X_i -> 1) finite, where eq. 17 is 0/0; the
  /// standard regularization (also used by CHEMKIN) is applied.
  void mixture_diffusion(double T, double p, std::span<const double> X,
                         std::span<double> Dmix) const;

  // --- ln-T entry points and row-batched evaluation (DESIGN.md §11) ---
  //
  // The T-taking mixture rules above each re-derive std::log(T). The _lnT
  // variants take the caller's lnT — which must equal std::log(T) bit for
  // bit — and hold the ONE compiled body per rule (never inlined), so the
  // scalar entry points, the batched row kernels and DLB-remote
  // evaluations all produce bitwise-identical properties.

  double mixture_viscosity_lnT(double lnT, std::span<const double> X) const;
  double mixture_conductivity_lnT(double lnT, std::span<const double> X) const;
  void mixture_diffusion_lnT(double lnT, double p, std::span<const double> X,
                             std::span<double> Dmix) const;

  /// Batched Wilke viscosity + Mathur-Saxena conductivity over `count`
  /// cells (X cell-major, X[cell * ns + i]): the staged per-cell lnT is
  /// reused across both rules instead of one std::log per rule per cell.
  void mixture_props_batch(int count, const double* lnT, const double* X,
                           double* mu, double* lam) const;
  /// Batched mixture-averaged diffusion (Dmix cell-major).
  void mixture_diffusion_batch(int count, const double* lnT, double p,
                               const double* X, double* Dmix) const;

 private:
  static double eval(const std::vector<std::array<double, 4>>& c, int idx,
                     double lnT) {
    const auto& a = c[idx];
    return std::exp(a[0] + lnT * (a[1] + lnT * (a[2] + lnT * a[3])));
  }

  int ns_;
  double chem_p_ref_;
  std::vector<double> W_;  ///< molecular weights
  std::vector<std::array<double, 4>> visc_, cond_, diff_;
  // Precomputed Wilke phi denominators sqrt(8 (1 + Wi/Wj)).
  std::vector<double> wilke_denom_;
  /// (Wj/Wi)^(1/4) table: hoists ns^2 std::pow calls per cell out of the
  /// Wilke loop (pow of the same double is the same double, so hoisting
  /// is bitwise-neutral).
  std::vector<double> w_qrt_;
};

}  // namespace s3d::transport
