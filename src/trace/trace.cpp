#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <unordered_set>

#include "common/table.hpp"

namespace s3d::trace {

std::int64_t KernelStat::total_calls() const {
  std::int64_t n = 0;
  for (const auto& r : ranks) n += r.calls;
  return n;
}

double KernelStat::total_s() const {
  double t = 0.0;
  for (const auto& r : ranks) t += r.total_s;
  return t;
}

double KernelStat::min_rank_s() const {
  double m = ranks.empty() ? 0.0 : ranks.front().total_s;
  for (const auto& r : ranks) m = std::min(m, r.total_s);
  return m;
}

double KernelStat::mean_rank_s() const {
  return ranks.empty() ? 0.0 : total_s() / static_cast<double>(ranks.size());
}

double KernelStat::max_rank_s() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.total_s);
  return m;
}

double CounterStat::min_rank_value() const {
  if (ranks.empty()) return 0.0;
  double m = ranks.front().value;
  for (const auto& r : ranks) m = std::min(m, r.value);
  return m;
}

double CounterStat::max_rank_value() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.value);
  return m;
}

const KernelStat* Summary::find(const std::string& name) const {
  for (const auto& k : kernels)
    if (k.name == name) return &k;
  return nullptr;
}

const CounterStat* Summary::find_counter(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

namespace {

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      out += {'\\', c};
    else if (static_cast<unsigned char>(c) < 0x20)
      out += ' ';
    else
      out += c;
  }
  return out;
}

}  // namespace

#ifndef S3D_TRACE_DISABLED

namespace {

enum class EventKind : std::uint8_t { span, counter, gauge };

struct Event {
  const char* name;
  const char* cat;      // spans only
  std::int64_t ts_ns;   // since process trace epoch
  std::int64_t dur_ns;  // spans: duration; counters/gauges: unused
  double value;         // counters: delta; gauges: sample
  std::int64_t bytes;   // spans: optional payload size (-1 = none)
  int rank;
  EventKind kind;
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::mutex intern_mu;
  std::set<std::string> interned;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};
thread_local int tl_rank = 0;
thread_local std::shared_ptr<ThreadBuf> tl_buf;

std::int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

ThreadBuf& local_buf() {
  if (!tl_buf) {
    tl_buf = std::make_shared<ThreadBuf>();
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    reg.bufs.push_back(tl_buf);
  }
  return *tl_buf;
}

void push(const Event& e) {
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lk(b.mu);
  b.events.push_back(e);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool init_from_env() {
  const char* v = std::getenv("S3D_TRACE");
  set_enabled(v != nullptr && *v != '\0' && std::string(v) != "0");
  return enabled();
}

void set_rank(int rank) { tl_rank = rank; }
int current_rank() { return tl_rank; }

const char* intern(const std::string& name) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.intern_mu);
  return reg.interned.insert(name).first->c_str();
}

void clear() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (auto& b : reg.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
  }
}

void Span::begin(const char* name, const char* category) {
  name_ = name;
  cat_ = category != nullptr ? category : "default";
  t0_ = now_ns();
  armed_ = true;
}

void Span::end() {
  // Recorded even if tracing was switched off mid-span: a begun scope is
  // worth more complete than missing.
  push(Event{name_, cat_, t0_, now_ns() - t0_, 0.0, bytes_, tl_rank,
             EventKind::span});
}

void counter_add(const char* name, double delta) {
  if (!enabled()) return;
  push(Event{name, nullptr, now_ns(), 0, delta, -1, tl_rank,
             EventKind::counter});
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  push(Event{name, nullptr, now_ns(), 0, value, -1, tl_rank,
             EventKind::gauge});
}

namespace {

/// Snapshot every buffer's events (stable even if other threads keep
/// recording while we export).
std::vector<Event> snapshot() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    bufs = reg.bufs;
  }
  std::vector<Event> all;
  for (auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->mu);
    all.insert(all.end(), b->events.begin(), b->events.end());
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.ts_ns < b.ts_ns;
  });
  return all;
}

}  // namespace

Summary summarize() {
  Summary out;
  std::map<std::string, KernelStat> kernels;
  std::map<std::string, CounterStat> counters;
  for (const Event& e : snapshot()) {
    if (e.kind == EventKind::span) {
      KernelStat& k = kernels[e.name];
      if (k.name.empty()) {
        k.name = e.name;
        k.category = e.cat;
      }
      auto it = std::find_if(k.ranks.begin(), k.ranks.end(),
                             [&](const KernelRankStat& r) {
                               return r.rank == e.rank;
                             });
      if (it == k.ranks.end()) {
        k.ranks.push_back(KernelRankStat{e.rank, 0, 0.0});
        it = std::prev(k.ranks.end());
      }
      ++it->calls;
      it->total_s += static_cast<double>(e.dur_ns) * 1e-9;
    } else {
      CounterStat& c = counters[e.name];
      c.name = e.name;
      ++c.samples;
      c.is_gauge = e.kind == EventKind::gauge;
      if (c.is_gauge)
        c.total = e.value;  // last value wins (events are time-sorted)
      else
        c.total += e.value;
      auto it = std::find_if(c.ranks.begin(), c.ranks.end(),
                             [&](const CounterRankStat& r) {
                               return r.rank == e.rank;
                             });
      if (it == c.ranks.end()) {
        c.ranks.push_back(CounterRankStat{e.rank, 0, 0.0});
        it = std::prev(c.ranks.end());
      }
      ++it->samples;
      if (c.is_gauge)
        it->value = e.value;
      else
        it->value += e.value;
    }
  }
  for (auto& [name, k] : kernels) {
    std::sort(k.ranks.begin(), k.ranks.end(),
              [](const KernelRankStat& a, const KernelRankStat& b) {
                return a.rank < b.rank;
              });
    out.kernels.push_back(std::move(k));
  }
  for (auto& [name, c] : counters) {
    std::sort(c.ranks.begin(), c.ranks.end(),
              [](const CounterRankStat& a, const CounterRankStat& b) {
                return a.rank < b.rank;
              });
    out.counters.push_back(std::move(c));
  }
  return out;
}

void write_summary(std::ostream& os) {
  const Summary s = summarize();
  os << "trace summary: " << s.kernels.size() << " kernels, "
     << s.counters.size() << " metrics\n";
  if (!s.kernels.empty()) {
    Table t({"kernel", "cat", "ranks", "calls", "total [ms]",
             "mean/rank [ms]", "min rank [ms]", "max rank [ms]", "imbal"});
    for (const auto& k : s.kernels) {
      const double mean = k.mean_rank_s();
      t.add_row({k.name, k.category, std::to_string(k.ranks.size()),
                 std::to_string(k.total_calls()),
                 Table::num(k.total_s() * 1e3, 3),
                 Table::num(mean * 1e3, 3),
                 Table::num(k.min_rank_s() * 1e3, 3),
                 Table::num(k.max_rank_s() * 1e3, 3),
                 mean > 0.0 ? Table::num(k.max_rank_s() / mean, 3) : "-"});
    }
    t.print(os);
  }
  if (!s.counters.empty()) {
    Table t({"metric", "kind", "samples", "value", "min rank", "max rank"});
    for (const auto& c : s.counters)
      t.add_row({c.name, c.is_gauge ? "gauge" : "counter",
                 std::to_string(c.samples), Table::num(c.total, 6),
                 Table::num(c.min_rank_value(), 6),
                 Table::num(c.max_rank_value(), 6)});
    t.print(os);
  }
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "[";
  // One metadata row per rank so Perfetto labels the timelines.
  std::unordered_set<int> ranks;
  const auto events = snapshot();
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    if (!first) f << ",\n";
    first = false;
    return f;
  };
  for (const Event& e : events) ranks.insert(e.rank);
  for (int r : std::set<int>(ranks.begin(), ranks.end()))
    sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
          << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  for (const Event& e : events) {
    const double ts_us = static_cast<double>(e.ts_ns) * 1e-3;
    switch (e.kind) {
      case EventKind::span:
        sep() << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
              << json_escape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << ts_us
              << ",\"dur\":" << static_cast<double>(e.dur_ns) * 1e-3
              << ",\"pid\":0,\"tid\":" << e.rank;
        if (e.bytes >= 0) f << ",\"args\":{\"bytes\":" << e.bytes << "}";
        f << "}";
        break;
      case EventKind::counter:
      case EventKind::gauge:
        sep() << "{\"name\":\"" << json_escape(e.name)
              << "\",\"ph\":\"C\",\"ts\":" << ts_us
              << ",\"pid\":0,\"tid\":" << e.rank << ",\"args\":{\"value\":"
              << e.value << "}}";
        break;
    }
  }
  f << "]\n";
  return f.good();
}

#else  // S3D_TRACE_DISABLED

Summary summarize() { return Summary{}; }

void write_summary(std::ostream& os) {
  os << "trace summary: tracing compiled out (S3D_TRACE_DISABLED)\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "[]\n";
  return f.good();
}

#endif  // S3D_TRACE_DISABLED

}  // namespace s3d::trace
