#pragma once
// Structured tracing + metrics for S3D++ (see DESIGN.md "Observability").
//
// The paper's performance story (fig. 2 kernel profile, fig. 1/3 scaling
// shape, fig. 9 write-behind) rests on knowing where time goes per rank
// per step. This subsystem makes that observable from any run:
//
//   - Span      RAII scope timer; records one complete event per scope.
//   - Counter   monotonically accumulated named value (e.g. halo bytes).
//   - Gauge     last-value-wins named sample.
//
// Ranks are vmpi threads; every event carries the rank label the thread
// declared via set_rank() (vmpi::run does this automatically). Exporters:
//
//   - write_chrome_trace()  Chrome-trace JSON ("chrome://tracing", or
//                           https://ui.perfetto.dev) with one timeline row
//                           per rank;
//   - write_summary()       plain-text per-phase table, kernel x rank ->
//                           calls / mean / min / max, the fig. 2 profile
//                           shape measured live.
//
// Overhead discipline: a disabled runtime flag (the default) makes every
// hot-path call a single relaxed atomic load plus branch, and defining
// S3D_TRACE_DISABLED (CMake option of the same name) compiles the whole
// subsystem down to empty inline stubs.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace s3d::trace {

/// One aggregated kernel row of the summary (per span name, per rank).
struct KernelRankStat {
  int rank = 0;
  std::int64_t calls = 0;
  double total_s = 0.0;
};

struct KernelStat {
  std::string name;
  std::string category;
  std::vector<KernelRankStat> ranks;  ///< sorted by rank

  std::int64_t total_calls() const;
  double total_s() const;
  /// Min / mean / max of the per-rank totals (seconds).
  double min_rank_s() const;
  double mean_rank_s() const;
  double max_rank_s() const;
};

/// One rank's share of a counter (sum of its deltas) or gauge (its last
/// sample).
struct CounterRankStat {
  int rank = 0;
  std::int64_t samples = 0;
  double value = 0.0;
};

struct CounterStat {
  std::string name;
  std::int64_t samples = 0;
  double total = 0.0;  ///< sum of deltas (Counter) or last value (Gauge)
  bool is_gauge = false;
  /// Per-rank breakdown, sorted by rank. Work-distribution counters
  /// (halo bytes, DLB cells shipped/hosted) are only meaningful with the
  /// rank spread visible: the aggregate hides exactly the imbalance the
  /// chemistry DLB exists to remove.
  std::vector<CounterRankStat> ranks;

  /// Min / max of the per-rank values (0 when no rank recorded).
  double min_rank_value() const;
  double max_rank_value() const;
};

struct Summary {
  std::vector<KernelStat> kernels;    ///< sorted by name
  std::vector<CounterStat> counters;  ///< sorted by name
  const KernelStat* find(const std::string& name) const;
  const CounterStat* find_counter(const std::string& name) const;
};

#ifndef S3D_TRACE_DISABLED

/// Runtime switch. Off by default: every instrumentation point then costs
/// one relaxed atomic load.
bool enabled();
void set_enabled(bool on);
/// Honour the S3D_TRACE environment variable (any non-empty value other
/// than "0" enables tracing). Returns the resulting state.
bool init_from_env();

/// Label the calling thread as `rank` (vmpi::run does this). Threads that
/// never call it record as rank 0.
void set_rank(int rank);
int current_rank();

/// Stable storage for dynamically built span names (Span keeps only the
/// pointer). Repeated calls with the same string return the same pointer.
const char* intern(const std::string& name);

/// Drop every recorded event and metric (golden runs / benches isolate
/// phases with this).
void clear();

/// RAII scope timer. `name` and `category` must outlive the trace buffer:
/// string literals or intern()ed strings.
class Span {
 public:
  Span(const char* name, const char* category) {
    if (name != nullptr && enabled()) begin(name, category);
  }
  ~Span() {
    if (armed_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a byte count shown in the Chrome trace ("args":{"bytes":N}).
  void set_bytes(std::uint64_t n) { bytes_ = static_cast<std::int64_t>(n); }
  /// Discard this span (e.g. the guarded work turned out to be a no-op).
  void cancel() { armed_ = false; }
  /// Record the span now instead of at scope exit (sequential stages).
  void stop() {
    if (armed_) end();
    armed_ = false;
  }

 private:
  void begin(const char* name, const char* category);
  void end();
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t t0_ = 0;
  std::int64_t bytes_ = -1;
  bool armed_ = false;
};

/// Accumulate `delta` onto the named counter for this thread's rank.
void counter_add(const char* name, double delta);
/// Record the named gauge's current value.
void gauge_set(const char* name, double value);

/// Aggregate everything recorded so far.
Summary summarize();
/// Render the fig.2-style table (kernel x rank -> calls/mean/min/max plus
/// counters) to `os`.
void write_summary(std::ostream& os);
/// Write Chrome-trace JSON to `path`; returns false when the file cannot
/// be opened. An empty recording still produces a valid trace.
bool write_chrome_trace(const std::string& path);

#else  // S3D_TRACE_DISABLED: the whole subsystem compiles to nothing.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline bool init_from_env() { return false; }
inline void set_rank(int) {}
inline int current_rank() { return 0; }
inline const char* intern(const std::string&) { return ""; }
inline void clear() {}

class Span {
 public:
  Span(const char*, const char*) {}
  void set_bytes(std::uint64_t) {}
  void cancel() {}
  void stop() {}
};

inline void counter_add(const char*, double) {}
inline void gauge_set(const char*, double) {}

Summary summarize();
void write_summary(std::ostream& os);
bool write_chrome_trace(const std::string& path);

#endif  // S3D_TRACE_DISABLED

}  // namespace s3d::trace
