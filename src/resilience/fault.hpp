#pragma once
// Deterministic, seeded fault injection (DESIGN.md "Resilience").
//
// The paper's terascale campaigns survive on checkpoint/restart plus a
// babysitting workflow (sections 5 and 9): components fail routinely and
// the surrounding machinery recovers. To make that machinery *testable*,
// this registry lets any run arm named fault sites with composable plans:
//
//   site          a stable name at a call site that may fail in production
//                 ("vmpi.isend", "vmpi.collective", "solver.step",
//                  "solver.health", "iosim.write", "checkpoint.write",
//                  "checkpoint.delta", "checkpoint.persist",
//                  "restart.read", "workflow.fire");
//   plan          when the site fires (the Nth call, or a seeded per-call
//                 probability), for which rank, and how many times;
//   kind          what happens: fail (throw InjectedFault), corrupt
//                 (deterministically flip payload bytes), delay (sleep),
//                 drop (discard the operation's effect).
//
// Everything is deterministic from set_seed(): per-(site, rank) call
// counters drive Nth-call triggers, and probability draws come from an
// Rng keyed on (seed, site, plan, rank), so the same seed and plan yield
// the same fault schedule on every run regardless of thread interleaving.
// Every fired fault is recorded in a log tests can compare.
//
// Overhead discipline mirrors src/trace: with no plans armed a probe is
// one relaxed atomic load plus branch, and the S3D_FAULTS_DISABLED CMake
// option compiles the whole subsystem down to inline no-ops.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace s3d::fault {

enum class Kind : std::uint8_t { none, fail, corrupt, delay, drop };

const char* kind_name(Kind k);

/// Thrown by apply() for Kind::fail faults; a typed subclass so recovery
/// drivers and tests can tell injected failures from organic ones.
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& site, int rank, long call)
      : Error("injected fault at site '" + site + "' (rank " +
              std::to_string(rank) + ", call " + std::to_string(call) + ")"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One armed fault rule. Either `nth` (0-based call index per rank at the
/// site) or `probability` (seeded per-call Bernoulli) selects the calls
/// that fire; `rank` restricts the rule to one rank; `max_fires` caps the
/// number of firings per rank.
struct Plan {
  std::string site;
  Kind kind = Kind::fail;
  long nth = -1;             ///< fire on this call index; -1 = use probability
  double probability = 0.0;  ///< per-call fire probability when nth < 0
  int rank = -1;             ///< -1 = all ranks
  long max_fires = 1;        ///< per-rank firing cap; -1 = unlimited
  double delay_ms = 1.0;     ///< Kind::delay sleep duration
};

/// One entry of the fired-fault log.
struct Fired {
  std::string site;
  int rank = 0;
  long call = 0;  ///< per-(site, rank) call index that fired
  Kind kind = Kind::none;
};

/// What a probe tells the call site to do. `rng` is a deterministic word
/// (a pure function of seed, site, rank and call index) that corrupt_bytes
/// uses to place the corruption.
struct Action {
  Kind kind = Kind::none;
  double delay_ms = 0.0;
  std::uint64_t rng = 0;
  explicit operator bool() const { return kind != Kind::none; }
};

#ifndef S3D_FAULTS_DISABLED

/// Seed for every probability draw and corruption placement. Also clears
/// counters and the fired log, so a test can replay a schedule exactly.
void set_seed(std::uint64_t seed);

/// Arm a plan. Plans are checked in arming order; the first match fires.
void arm(Plan plan);

/// Disarm all plans and clear counters + the fired log (seed kept).
void reset();

/// True when at least one plan is armed.
bool armed();

/// Label the calling thread as `rank` (vmpi::run does this; the main
/// thread outside vmpi is rank 0).
void set_rank(int rank);
int current_rank();

/// Consult the registry at a call site. Advances the (site, rank) call
/// counter; returns the action to perform (Kind::none almost always).
Action probe(const char* site);

/// Perform the simple actions: throw InjectedFault for Kind::fail, sleep
/// for Kind::delay. Kind::corrupt / Kind::drop are interpreted by the
/// call site (they need access to the payload).
void apply(const Action& a, const char* site);

/// Deterministically flip one byte of `data` (xor 0x40 at an offset
/// derived from a.rng). Returns true when a corruption was applied.
bool corrupt_bytes(const Action& a, std::uint8_t* data, std::size_t len);

/// Copy of the fired log (order: per-(site, rank) sequences are
/// deterministic; interleaving across ranks is not — sort before diffing).
std::vector<Fired> fired_log();

/// Total firings recorded at a site (all ranks).
long fires_at(const std::string& site);

#else  // S3D_FAULTS_DISABLED: the whole subsystem compiles to nothing.

inline void set_seed(std::uint64_t) {}
inline void arm(const Plan&) {}
inline void reset() {}
inline bool armed() { return false; }
inline void set_rank(int) {}
inline int current_rank() { return 0; }
inline Action probe(const char*) { return {}; }
inline void apply(const Action&, const char*) {}
inline bool corrupt_bytes(const Action&, std::uint8_t*, std::size_t) {
  return false;
}
inline std::vector<Fired> fired_log() { return {}; }
inline long fires_at(const std::string&) { return 0; }

#endif  // S3D_FAULTS_DISABLED

}  // namespace s3d::fault
