#include "resilience/fault.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/hash.hpp"
#include "common/random.hpp"
#include "trace/trace.hpp"

namespace s3d::fault {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::none:
      return "none";
    case Kind::fail:
      return "fail";
    case Kind::corrupt:
      return "corrupt";
    case Kind::delay:
      return "delay";
    case Kind::drop:
      return "drop";
  }
  return "?";
}

#ifndef S3D_FAULTS_DISABLED

namespace {

/// Per-plan, per-rank trigger state. The Rng stream is keyed on (seed,
/// site, plan index, rank), so probability schedules are a pure function
/// of the per-rank call sequence, never of thread interleaving.
struct PlanState {
  Plan plan;
  std::map<int, Rng> rng;
  std::map<int, long> fires;
};

struct Registry {
  std::mutex mu;
  std::uint64_t seed = 0x5eedf417u;
  std::vector<PlanState> plans;
  std::map<std::pair<std::string, int>, long> calls;  ///< (site, rank) -> n
  std::vector<Fired> log;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path gate: probes bail on one relaxed load while nothing is armed.
std::atomic<int> g_armed{0};
thread_local int tl_rank = 0;

std::uint64_t mix(std::uint64_t seed, const std::string& site,
                  std::uint64_t salt) {
  Fnv1a64 h;
  h.update_value(seed);
  h.update(site.data(), site.size());
  h.update_value(salt);
  return h.digest();
}

}  // namespace

void set_seed(std::uint64_t seed) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.seed = seed;
  reg.calls.clear();
  reg.log.clear();
  for (auto& p : reg.plans) {
    p.rng.clear();
    p.fires.clear();
  }
}

void arm(Plan plan) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.plans.push_back(PlanState{std::move(plan), {}, {}});
  g_armed.store(static_cast<int>(reg.plans.size()),
                std::memory_order_relaxed);
}

void reset() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.plans.clear();
  reg.calls.clear();
  reg.log.clear();
  g_armed.store(0, std::memory_order_relaxed);
}

bool armed() { return g_armed.load(std::memory_order_relaxed) > 0; }

void set_rank(int rank) { tl_rank = rank; }
int current_rank() { return tl_rank; }

Action probe(const char* site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return {};
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  const int rank = tl_rank;
  const long call = reg.calls[{site, rank}]++;
  for (std::size_t pi = 0; pi < reg.plans.size(); ++pi) {
    PlanState& ps = reg.plans[pi];
    const Plan& p = ps.plan;
    if (p.site != site) continue;
    if (p.rank >= 0 && p.rank != rank) continue;
    bool fire = false;
    if (p.nth >= 0) {
      fire = call == p.nth;
    } else if (p.probability > 0.0) {
      auto it = ps.rng.find(rank);
      if (it == ps.rng.end())
        it = ps.rng.emplace(rank, Rng(mix(reg.seed, p.site, pi * 1000003ull +
                                                              rank)))
                 .first;
      // One draw per probed call keeps the stream aligned with the call
      // index even when max_fires has been exhausted.
      fire = it->second.bernoulli(p.probability);
    }
    if (!fire) continue;
    long& fired_n = ps.fires[rank];
    if (p.max_fires >= 0 && fired_n >= p.max_fires) continue;
    ++fired_n;
    reg.log.push_back(Fired{p.site, rank, call, p.kind});
    trace::counter_add("fault.fired", 1.0);
    Action a;
    a.kind = p.kind;
    a.delay_ms = p.delay_ms;
    a.rng = mix(reg.seed, p.site, 0x9e3779b97f4a7c15ull ^
                                      (static_cast<std::uint64_t>(rank) << 32 |
                                       static_cast<std::uint64_t>(call)));
    return a;
  }
  return {};
}

void apply(const Action& a, const char* site) {
  switch (a.kind) {
    case Kind::fail: {
      auto& reg = registry();
      long call = 0;
      {
        std::lock_guard<std::mutex> lk(reg.mu);
        call = reg.calls[{site, tl_rank}] - 1;
      }
      throw InjectedFault(site, tl_rank, call);
    }
    case Kind::delay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(a.delay_ms));
      return;
    default:
      return;
  }
}

bool corrupt_bytes(const Action& a, std::uint8_t* data, std::size_t len) {
  if (a.kind != Kind::corrupt || data == nullptr || len == 0) return false;
  data[a.rng % len] ^= 0x40;
  return true;
}

std::vector<Fired> fired_log() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  return reg.log;
}

long fires_at(const std::string& site) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  long n = 0;
  for (const auto& f : reg.log)
    if (f.site == site) ++n;
  return n;
}

#endif  // S3D_FAULTS_DISABLED

}  // namespace s3d::fault
