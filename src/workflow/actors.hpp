#pragma once
// The actor library used by the S3D monitoring workflow (paper section 9):
//
//   FileWatcherActor  -- polls a directory for new files, the "indirect
//                        connection between the simulation and the
//                        workflow" (emits once per file; optionally only
//                        when a completion marker exists, the equivalent
//                        of watching the simulation log);
//   ProcessFileActor  -- runs an operation on each incoming file token
//                        with automatic checkpointing (completed work is
//                        skipped after a restart), bounded retries and an
//                        error log: the paper's fault-tolerance design;
//   MorphActor        -- N-to-M file morphing (combines N restart pieces
//                        into one analysis file);
//   PlotXYActor       -- renders two-column data files to SVG plots (the
//                        Grace/gnuplot stage feeding the dashboard);
//   MinMaxDashboardActor -- accumulates per-variable min/max time traces
//                        and regenerates the dashboard artifacts (fig. 17).
//
// "Remote hosts" (the ewok cluster, Sandia, HPSS) are sandbox directories;
// transfers are copies, preserving the pipeline structure.

#include <filesystem>
#include <functional>
#include <set>

#include "workflow/actor.hpp"
#include "workflow/provenance.hpp"

namespace s3d::workflow {

class FileWatcherActor : public Actor {
 public:
  /// Watch `dir` for files whose name ends with `suffix`. When
  /// `require_marker` is set, a file is only emitted once `<file>.done`
  /// exists (the writer signals completeness, as S3D's log entries do).
  FileWatcherActor(std::string name, std::filesystem::path dir,
                   std::string suffix, bool require_marker = false,
                   ProvenanceStore* prov = nullptr);

  bool fire() override;

 private:
  std::filesystem::path dir_;
  std::string suffix_;
  bool require_marker_;
  std::set<std::string> seen_;
  ProvenanceStore* prov_;
};

/// Operation run by ProcessFileActor: transform the input token into an
/// output token (e.g. set out["path"]); return false on failure.
using FileOp = std::function<bool(const Token& in, Token& out)>;

class ProcessFileActor : public Actor {
 public:
  /// @param checkpoint_log  persistent record of completed (actor, input)
  ///        pairs; on restart, already-completed inputs are skipped and
  ///        their recorded outputs re-emitted downstream
  /// @param max_retries     op retries before the token goes to the
  ///        "error" port and the error log
  ProcessFileActor(std::string name, FileOp op,
                   std::filesystem::path checkpoint_log, int max_retries = 2,
                   ProvenanceStore* prov = nullptr);

  bool fire() override;
  long executed() const { return executed_; }
  long skipped() const { return skipped_; }
  long failed() const { return failed_; }

 private:
  void load_log();
  void append_log(const std::string& input, const std::string& output);

  FileOp op_;
  std::filesystem::path log_path_;
  int max_retries_;
  std::map<std::string, std::string> done_;  ///< input path -> output path
  bool loaded_ = false;
  long executed_ = 0, skipped_ = 0, failed_ = 0;
  ProvenanceStore* prov_;
};

/// Combine groups of `group_size` incoming files into single output files
/// (restart N-to-M morphing).
class MorphActor : public Actor {
 public:
  MorphActor(std::string name, int group_size, std::filesystem::path out_dir,
             ProvenanceStore* prov = nullptr);
  bool fire() override;

 private:
  int group_size_;
  std::filesystem::path out_dir_;
  std::vector<Token> pending_;
  int batch_ = 0;
  ProvenanceStore* prov_;
};

/// Render a whitespace-separated two-column data file as an SVG polyline.
class PlotXYActor : public Actor {
 public:
  PlotXYActor(std::string name, std::filesystem::path out_dir,
              ProvenanceStore* prov = nullptr);
  bool fire() override;

 private:
  std::filesystem::path out_dir_;
  ProvenanceStore* prov_;
};

/// Dashboard backend: consumes min/max files ("var min max" per line),
/// appends to per-variable traces and regenerates SVG plots plus a
/// dashboard index.
class MinMaxDashboardActor : public Actor {
 public:
  MinMaxDashboardActor(std::string name, std::filesystem::path out_dir,
                       ProvenanceStore* prov = nullptr);
  bool fire() override;

  /// Number of samples recorded for a variable.
  int samples(const std::string& var) const;

 private:
  void render_dashboard();
  std::filesystem::path out_dir_;
  std::map<std::string, std::vector<std::pair<double, double>>> traces_;
  ProvenanceStore* prov_;
};

// --- prefab FileOps ---

/// Copy the input file into `dst_dir` ("scp to a remote host").
FileOp copy_op(std::filesystem::path dst_dir);

/// Copy into an archive directory and append to its catalog file
/// (HPSS stand-in).
FileOp archive_op(std::filesystem::path archive_dir);

/// An op that fails the first `n_failures` times it sees each distinct
/// input (testing fault tolerance), then delegates.
FileOp flaky_op(FileOp inner, int n_failures);

/// Minimal SVG polyline writer used by the plot actors.
void write_svg_polyline(const std::filesystem::path& path,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys,
                        const std::string& title);

}  // namespace s3d::workflow
