#pragma once
// The S3D monitoring workflow of paper fig. 16: three concurrent pipelines
// driven by the files the running simulation drops:
//
//   restart pipeline : watch run_dir for *.restart pieces (complete when
//                      the .done marker exists) -> morph N pieces into one
//                      analysis file on the work cluster -> transfer to
//                      the remote analysis site AND archive to mass
//                      storage;
//   netcdf pipeline  : watch run_dir for *.ncdat analysis files ->
//                      stage to the work cluster -> render x-y plots for
//                      the dashboard;
//   min/max pipeline : watch run_dir for *.minmax files -> update the
//                      dashboard min/max time traces (fig. 17).
//
// All "hosts" are sandbox directories (see DESIGN.md substitutions).

#include <memory>

#include "workflow/actors.hpp"

namespace s3d::workflow {

/// Duplicate each incoming token onto two output ports ("out0", "out1").
class TeeActor : public Actor {
 public:
  explicit TeeActor(std::string name) : Actor(std::move(name)) {}
  bool fire() override {
    bool any = false;
    while (has_input()) {
      Token t = take();
      emit(t, "out0");
      emit(std::move(t), "out1");
      any = true;
    }
    return any;
  }
};

struct S3dWorkflowDirs {
  std::filesystem::path run_dir;        ///< where the simulation writes
  std::filesystem::path work_dir;       ///< analysis cluster scratch
  std::filesystem::path remote_dir;     ///< remote site
  std::filesystem::path archive_dir;    ///< mass storage
  std::filesystem::path dashboard_dir;  ///< web dashboard artifacts
  std::filesystem::path log_dir;        ///< checkpoint/error logs
};

class S3dMonitoringWorkflow {
 public:
  /// @param restart_pieces  how many restart pieces morph into one file
  S3dMonitoringWorkflow(S3dWorkflowDirs dirs, int restart_pieces,
                        ProvenanceStore* prov = nullptr);

  /// One polling round: watchers scan, pipelines drain. Returns the number
  /// of actor firings that did work.
  long pump();

  Workflow& workflow() { return wf_; }
  MinMaxDashboardActor& dashboard() { return *dashboard_; }
  ProcessFileActor& transfer() { return *transfer_; }
  ProcessFileActor& archiver() { return *archive_; }
  MorphActor& morph() { return *morph_; }

 private:
  S3dWorkflowDirs dirs_;
  Workflow wf_{"s3d-monitoring"};
  std::unique_ptr<FileWatcherActor> watch_restart_, watch_nc_, watch_minmax_;
  std::unique_ptr<MorphActor> morph_;
  std::unique_ptr<TeeActor> tee_;
  std::unique_ptr<ProcessFileActor> transfer_, archive_, stage_nc_;
  std::unique_ptr<PlotXYActor> plot_;
  std::unique_ptr<MinMaxDashboardActor> dashboard_;
};

/// Stand-in for the running simulation: drops the three file kinds for a
/// given step into run_dir (with completion markers for restarts).
class FakeSimulation {
 public:
  FakeSimulation(std::filesystem::path run_dir, int n_restart_pieces);
  /// Write one step's outputs; content is deterministic.
  void emit_step(int step);
  int pieces() const { return n_pieces_; }

 private:
  std::filesystem::path dir_;
  int n_pieces_;
};

}  // namespace s3d::workflow
