#include "workflow/provenance.hpp"

#include <set>

namespace s3d::workflow {

void ProvenanceStore::record(std::string actor, std::string input,
                             std::string output, std::string status) {
  recs_.push_back({std::move(actor), std::move(input), std::move(output),
                   std::move(status)});
}

std::vector<std::string> ProvenanceStore::lineage(
    const std::string& artifact) const {
  std::set<std::string> known{artifact};
  // Fixed-point backward closure over (input -> output) edges.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& r : recs_) {
      if (!r.output.empty() && known.count(r.output) && !r.input.empty() &&
          !known.count(r.input)) {
        known.insert(r.input);
        grew = true;
      }
    }
  }
  known.erase(artifact);
  return {known.begin(), known.end()};
}

long ProvenanceStore::count(const std::string& actor) const {
  long n = 0;
  for (const auto& r : recs_)
    if (r.actor == actor) ++n;
  return n;
}

}  // namespace s3d::workflow
