#include "workflow/actor.hpp"

#include "common/error.hpp"
#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::workflow {

std::shared_ptr<Channel>* Actor::port_ref(
    std::map<std::string, std::shared_ptr<Channel>>& m,
    const std::string& port) {
  auto& slot = m[port];
  if (!slot) slot = std::make_shared<Channel>();
  return &slot;
}

void Actor::connect(const std::string& out_port, Actor& downstream,
                    const std::string& in_port) {
  auto* mine = port_ref(outputs_, out_port);
  auto* theirs = downstream.port_ref(downstream.inputs_, in_port);
  // Share one channel: my emits land in their input.
  *theirs = *mine;
}

void Actor::emit(Token t, const std::string& port) {
  out(port).push(std::move(t));
}

int Workflow::fire_guarded(Actor& a) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (auto act = fault::probe("workflow.fire"))
        fault::apply(act, "workflow.fire");
      return a.fire() ? 1 : 0;
    } catch (const std::exception& e) {
      ++stats_.fire_errors;
      if (attempt < fire_retries) {
        ++stats_.retries;
        continue;
      }
      Token dead;
      dead["actor"] = a.name();
      dead["error"] = e.what();
      dead["workflow"] = name_;
      a.out("error").push(std::move(dead));
      ++stats_.dead_letters;
      trace::counter_add("workflow.dead_letter", 1.0);
      return -1;
    }
  }
}

long Workflow::run_until_idle(int max_sweeps) {
  long fired = 0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool progressed = false;
    for (Actor* a : actors_) {
      // Interned per-actor span name ("wf.<actor>"); idle probes (fire()
      // returning false) are cancelled so only real work is recorded.
      const char* span_name =
          trace::enabled() ? trace::intern("wf." + a->name()) : nullptr;
      for (;;) {
        trace::Span sp(span_name, "workflow");
        const int r = fire_guarded(*a);
        if (r == 0) {
          sp.cancel();
          break;
        }
        progressed = true;
        if (r < 0) break;  // dead-lettered: move on, don't hammer the actor
        ++fired;
        ++stats_.fired;
      }
    }
    if (!progressed) break;
  }
  return fired;
}

}  // namespace s3d::workflow
