#include "workflow/actor.hpp"

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace s3d::workflow {

std::shared_ptr<Channel>* Actor::port_ref(
    std::map<std::string, std::shared_ptr<Channel>>& m,
    const std::string& port) {
  auto& slot = m[port];
  if (!slot) slot = std::make_shared<Channel>();
  return &slot;
}

void Actor::connect(const std::string& out_port, Actor& downstream,
                    const std::string& in_port) {
  auto* mine = port_ref(outputs_, out_port);
  auto* theirs = downstream.port_ref(downstream.inputs_, in_port);
  // Share one channel: my emits land in their input.
  *theirs = *mine;
}

void Actor::emit(Token t, const std::string& port) {
  out(port).push(std::move(t));
}

long Workflow::run_until_idle(int max_sweeps) {
  long fired = 0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool progressed = false;
    for (Actor* a : actors_) {
      // Interned per-actor span name ("wf.<actor>"); idle probes (fire()
      // returning false) are cancelled so only real work is recorded.
      const char* span_name =
          trace::enabled() ? trace::intern("wf." + a->name()) : nullptr;
      for (;;) {
        trace::Span sp(span_name, "workflow");
        if (!a->fire()) {
          sp.cancel();
          break;
        }
        ++fired;
        progressed = true;
      }
    }
    if (!progressed) break;
  }
  return fired;
}

}  // namespace s3d::workflow
