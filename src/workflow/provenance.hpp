#pragma once
// Provenance tracking (paper section 9: "Kepler is being extended to
// support the integration of provenance tracking, for the workflow as well
// as for the data"): every actor firing is recorded with its inputs,
// outputs and status, and the store answers lineage queries -- e.g. which
// original files contributed to a given artifact.

#include <string>
#include <vector>

namespace s3d::workflow {

struct ProvenanceRecord {
  std::string actor;
  std::string input;   ///< input artifact (path), may be empty
  std::string output;  ///< output artifact (path), may be empty
  std::string status;  ///< "ok", "skipped", "failed", "watched", ...
};

class ProvenanceStore {
 public:
  void record(std::string actor, std::string input, std::string output,
              std::string status);

  const std::vector<ProvenanceRecord>& records() const { return recs_; }

  /// All ancestor artifacts of `artifact` (transitively), oldest first.
  std::vector<std::string> lineage(const std::string& artifact) const;

  /// Firings of a given actor.
  long count(const std::string& actor) const;

 private:
  std::vector<ProvenanceRecord> recs_;
};

}  // namespace s3d::workflow
