#include "workflow/s3d_pipeline.hpp"

#include <fstream>

namespace s3d::workflow {

namespace fs = std::filesystem;

S3dMonitoringWorkflow::S3dMonitoringWorkflow(S3dWorkflowDirs dirs,
                                             int restart_pieces,
                                             ProvenanceStore* prov)
    : dirs_(std::move(dirs)) {
  fs::create_directories(dirs_.log_dir);

  // Pipeline 1: restart -> morph -> (transfer, archive).
  watch_restart_ = std::make_unique<FileWatcherActor>(
      "watch-restart", dirs_.run_dir, ".restart", /*require_marker=*/true,
      prov);
  morph_ = std::make_unique<MorphActor>("morph", restart_pieces,
                                        dirs_.work_dir / "morphed", prov);
  tee_ = std::make_unique<TeeActor>("tee");
  transfer_ = std::make_unique<ProcessFileActor>(
      "transfer-remote", copy_op(dirs_.remote_dir),
      dirs_.log_dir / "transfer.log", 2, prov);
  archive_ = std::make_unique<ProcessFileActor>(
      "archive-hpss", archive_op(dirs_.archive_dir),
      dirs_.log_dir / "archive.log", 2, prov);

  watch_restart_->connect("out", *morph_);
  morph_->connect("out", *tee_);
  tee_->connect("out0", *transfer_);
  tee_->connect("out1", *archive_);

  // Pipeline 2: netcdf analysis -> stage -> plot.
  watch_nc_ = std::make_unique<FileWatcherActor>("watch-ncdat",
                                                 dirs_.run_dir, ".ncdat",
                                                 false, prov);
  stage_nc_ = std::make_unique<ProcessFileActor>(
      "stage-ncdat", copy_op(dirs_.work_dir / "ncdat"),
      dirs_.log_dir / "stage.log", 2, prov);
  plot_ = std::make_unique<PlotXYActor>("plot-xy", dirs_.dashboard_dir,
                                        prov);
  watch_nc_->connect("out", *stage_nc_);
  stage_nc_->connect("out", *plot_);

  // Pipeline 3: min/max -> dashboard.
  watch_minmax_ = std::make_unique<FileWatcherActor>(
      "watch-minmax", dirs_.run_dir, ".minmax", false, prov);
  dashboard_ = std::make_unique<MinMaxDashboardActor>(
      "dashboard", dirs_.dashboard_dir, prov);
  watch_minmax_->connect("out", *dashboard_);

  for (Actor* a :
       {static_cast<Actor*>(watch_restart_.get()), static_cast<Actor*>(morph_.get()),
        static_cast<Actor*>(tee_.get()), static_cast<Actor*>(transfer_.get()),
        static_cast<Actor*>(archive_.get()), static_cast<Actor*>(watch_nc_.get()),
        static_cast<Actor*>(stage_nc_.get()), static_cast<Actor*>(plot_.get()),
        static_cast<Actor*>(watch_minmax_.get()),
        static_cast<Actor*>(dashboard_.get())})
    wf_.add(a);
}

long S3dMonitoringWorkflow::pump() { return wf_.run_until_idle(); }

FakeSimulation::FakeSimulation(fs::path run_dir, int n_restart_pieces)
    : dir_(std::move(run_dir)), n_pieces_(n_restart_pieces) {
  fs::create_directories(dir_);
}

void FakeSimulation::emit_step(int step) {
  // Restart pieces with completion markers.
  for (int p = 0; p < n_pieces_; ++p) {
    const fs::path f =
        dir_ / ("step" + std::to_string(step) + "_p" + std::to_string(p) +
                ".restart");
    std::ofstream o(f, std::ios::binary);
    o << "restart step=" << step << " piece=" << p << "\n";
    std::ofstream marker(f.string() + ".done");
  }
  // NetCDF-like analysis file: two-column trace.
  {
    std::ofstream o(dir_ / ("step" + std::to_string(step) + ".ncdat"));
    for (int i = 0; i < 32; ++i)
      o << i << ' ' << (step + 1) * i * (32 - i) << '\n';
  }
  // Min/max summary.
  {
    std::ofstream o(dir_ / ("step" + std::to_string(step) + ".minmax"));
    o << "T " << 300.0 - step << ' ' << 2200.0 + 10 * step << '\n';
    o << "P " << 101000.0 << ' ' << 101500.0 + step << '\n';
  }
}

}  // namespace s3d::workflow
