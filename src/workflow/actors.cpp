#include "workflow/actors.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace s3d::workflow {

namespace fs = std::filesystem;

FileWatcherActor::FileWatcherActor(std::string name, fs::path dir,
                                   std::string suffix, bool require_marker,
                                   ProvenanceStore* prov)
    : Actor(std::move(name)),
      dir_(std::move(dir)),
      suffix_(std::move(suffix)),
      require_marker_(require_marker),
      prov_(prov) {}

bool FileWatcherActor::fire() {
  if (!fs::exists(dir_)) return false;
  bool any = false;
  std::vector<fs::path> found;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file()) continue;
    const std::string p = e.path().string();
    if (p.size() < suffix_.size() ||
        p.compare(p.size() - suffix_.size(), suffix_.size(), suffix_) != 0)
      continue;
    if (seen_.count(p)) continue;
    if (require_marker_ && !fs::exists(p + ".done")) continue;
    found.push_back(e.path());
  }
  std::sort(found.begin(), found.end());
  for (const auto& p : found) {
    seen_.insert(p.string());
    emit(Token(p.string()));
    if (prov_) prov_->record(name(), "", p.string(), "watched");
    any = true;
  }
  return any;
}

ProcessFileActor::ProcessFileActor(std::string name, FileOp op,
                                   fs::path checkpoint_log, int max_retries,
                                   ProvenanceStore* prov)
    : Actor(std::move(name)),
      op_(std::move(op)),
      log_path_(std::move(checkpoint_log)),
      max_retries_(max_retries),
      prov_(prov) {}

void ProcessFileActor::load_log() {
  loaded_ = true;
  std::ifstream f(log_path_);
  std::string line;
  while (std::getline(f, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    done_[line.substr(0, tab)] = line.substr(tab + 1);
  }
}

void ProcessFileActor::append_log(const std::string& input,
                                  const std::string& output) {
  std::ofstream f(log_path_, std::ios::app);
  f << input << '\t' << output << '\n';
}

bool ProcessFileActor::fire() {
  if (!loaded_) load_log();
  if (!has_input()) return false;
  Token t = take();
  const std::string input = t.path();

  // Checkpoint: completed inputs are skipped (paper: "the automatic check
  // pointing within this actor allows the workflow to skip steps that had
  // already been accomplished, while retrying the failed ones").
  auto it = done_.find(input);
  if (it != done_.end()) {
    Token out = t;
    out["path"] = it->second;
    out["status"] = "skipped";
    ++skipped_;
    if (prov_) prov_->record(name(), input, it->second, "skipped");
    emit(std::move(out));
    return true;
  }

  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    Token out = t;
    if (op_(t, out)) {
      done_[input] = out.path();
      append_log(input, out.path());
      out["status"] = "ok";
      ++executed_;
      if (prov_) prov_->record(name(), input, out.path(), "ok");
      emit(std::move(out));
      return true;
    }
  }
  // Exhausted retries: error log + error port; the pipeline keeps going.
  {
    std::ofstream err(log_path_.string() + ".errors", std::ios::app);
    err << input << '\n';
  }
  Token out = t;
  out["status"] = "failed";
  ++failed_;
  if (prov_) prov_->record(name(), input, "", "failed");
  emit(std::move(out), "error");
  return true;
}

MorphActor::MorphActor(std::string name, int group_size, fs::path out_dir,
                       ProvenanceStore* prov)
    : Actor(std::move(name)),
      group_size_(group_size),
      out_dir_(std::move(out_dir)),
      prov_(prov) {
  S3D_REQUIRE(group_size_ >= 1, "morph group size must be >= 1");
}

bool MorphActor::fire() {
  bool any = false;
  while (has_input()) {
    pending_.push_back(take());
    any = true;
  }
  while (static_cast<int>(pending_.size()) >= group_size_) {
    fs::create_directories(out_dir_);
    const fs::path out =
        out_dir_ / ("morph_" + std::to_string(batch_++) + ".dat");
    std::ofstream o(out, std::ios::binary);
    for (int i = 0; i < group_size_; ++i) {
      std::ifstream in(pending_[i].path(), std::ios::binary);
      o << in.rdbuf();
      if (prov_) prov_->record(name(), pending_[i].path(), out.string(), "ok");
    }
    pending_.erase(pending_.begin(), pending_.begin() + group_size_);
    emit(Token(out.string()));
    any = true;
  }
  return any;
}

PlotXYActor::PlotXYActor(std::string name, fs::path out_dir,
                         ProvenanceStore* prov)
    : Actor(std::move(name)), out_dir_(std::move(out_dir)), prov_(prov) {}

bool PlotXYActor::fire() {
  if (!has_input()) return false;
  Token t = take();
  std::ifstream in(t.path());
  std::vector<double> xs, ys;
  double a, b;
  while (in >> a >> b) {
    xs.push_back(a);
    ys.push_back(b);
  }
  fs::create_directories(out_dir_);
  const fs::path out =
      out_dir_ / (fs::path(t.path()).stem().string() + ".svg");
  write_svg_polyline(out, xs, ys, fs::path(t.path()).filename().string());
  if (prov_) prov_->record(name(), t.path(), out.string(), "ok");
  Token o = t;
  o["path"] = out.string();
  emit(std::move(o));
  return true;
}

MinMaxDashboardActor::MinMaxDashboardActor(std::string name, fs::path out_dir,
                                           ProvenanceStore* prov)
    : Actor(std::move(name)), out_dir_(std::move(out_dir)), prov_(prov) {}

bool MinMaxDashboardActor::fire() {
  if (!has_input()) return false;
  bool any = false;
  while (has_input()) {
    Token t = take();
    std::ifstream in(t.path());
    std::string var;
    double mn, mx;
    while (in >> var >> mn >> mx) traces_[var].emplace_back(mn, mx);
    if (prov_) prov_->record(name(), t.path(), "", "ok");
    any = true;
  }
  if (any) render_dashboard();
  return any;
}

int MinMaxDashboardActor::samples(const std::string& var) const {
  auto it = traces_.find(var);
  return it == traces_.end() ? 0 : static_cast<int>(it->second.size());
}

void MinMaxDashboardActor::render_dashboard() {
  fs::create_directories(out_dir_);
  std::ofstream idx(out_dir_ / "dashboard.txt");
  idx << "S3D++ run dashboard (min/max time traces)\n";
  for (const auto& [var, tr] : traces_) {
    std::vector<double> xs, mins, maxs;
    for (std::size_t i = 0; i < tr.size(); ++i) {
      xs.push_back(static_cast<double>(i));
      mins.push_back(tr[i].first);
      maxs.push_back(tr[i].second);
    }
    write_svg_polyline(out_dir_ / (var + "_min.svg"), xs, mins, var + " min");
    write_svg_polyline(out_dir_ / (var + "_max.svg"), xs, maxs, var + " max");
    idx << var << "  samples=" << tr.size() << "  last=[" << tr.back().first
        << ", " << tr.back().second << "]\n";
  }
}

FileOp copy_op(fs::path dst_dir) {
  return [dst_dir](const Token& in, Token& out) {
    std::error_code ec;
    fs::create_directories(dst_dir, ec);
    const fs::path dst = dst_dir / fs::path(in.path()).filename();
    fs::copy_file(in.path(), dst, fs::copy_options::overwrite_existing, ec);
    if (ec) return false;
    out["path"] = dst.string();
    return true;
  };
}

FileOp archive_op(fs::path archive_dir) {
  return [archive_dir](const Token& in, Token& out) {
    std::error_code ec;
    fs::create_directories(archive_dir, ec);
    const fs::path dst = archive_dir / fs::path(in.path()).filename();
    fs::copy_file(in.path(), dst, fs::copy_options::overwrite_existing, ec);
    if (ec) return false;
    std::ofstream cat(archive_dir / "catalog.txt", std::ios::app);
    cat << dst.string() << '\n';
    out["path"] = dst.string();
    return true;
  };
}

FileOp flaky_op(FileOp inner, int n_failures) {
  auto counts = std::make_shared<std::map<std::string, int>>();
  return [inner, n_failures, counts](const Token& in, Token& out) {
    int& c = (*counts)[in.path()];
    if (c < n_failures) {
      ++c;
      return false;
    }
    return inner(in, out);
  };
}

void write_svg_polyline(const fs::path& path, const std::vector<double>& xs,
                        const std::vector<double>& ys,
                        const std::string& title) {
  const int W = 480, H = 280, M = 30;
  double x0 = 0, x1 = 1, y0 = 0, y1 = 1;
  if (!xs.empty()) {
    x0 = *std::min_element(xs.begin(), xs.end());
    x1 = *std::max_element(xs.begin(), xs.end());
    y0 = *std::min_element(ys.begin(), ys.end());
    y1 = *std::max_element(ys.begin(), ys.end());
    if (x1 == x0) x1 = x0 + 1;
    if (y1 == y0) y1 = y0 + 1;
  }
  std::ofstream f(path);
  f << "<svg xmlns='http://www.w3.org/2000/svg' width='" << W
    << "' height='" << H << "'>\n"
    << "<rect width='100%' height='100%' fill='white'/>\n"
    << "<text x='10' y='16' font-size='12'>" << title << "</text>\n"
    << "<polyline fill='none' stroke='steelblue' stroke-width='1.5' points='";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double px = M + (xs[i] - x0) / (x1 - x0) * (W - 2 * M);
    const double py = H - M - (ys[i] - y0) / (y1 - y0) * (H - 2 * M);
    f << px << ',' << py << ' ';
  }
  f << "'/>\n</svg>\n";
}

}  // namespace s3d::workflow
