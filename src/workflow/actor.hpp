#pragma once
// Actor-oriented workflow engine (the paper's Kepler/Ptolemy II substitute,
// section 9): data-centric actors connected by token channels, with the
// scheduling policy factored into a separate director -- the
// "actor-oriented modeling" separation the paper highlights. Workflows are
// graphs of actors; tokens flow along connections according to the
// director's schedule.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace s3d::workflow {

/// A unit of data flowing between actors: a tagged record (file names,
/// parameters, status), Kepler-token style.
class Token {
 public:
  Token() = default;
  explicit Token(std::string path) { fields_["path"] = std::move(path); }

  std::string& operator[](const std::string& key) { return fields_[key]; }
  const std::string& get(const std::string& key) const {
    static const std::string empty;
    auto it = fields_.find(key);
    return it == fields_.end() ? empty : it->second;
  }
  bool has(const std::string& key) const { return fields_.count(key) > 0; }
  const std::string& path() const { return get("path"); }

 private:
  std::map<std::string, std::string> fields_;
};

/// A FIFO channel between an output and an input port.
class Channel {
 public:
  void push(Token t) { q_.push_back(std::move(t)); }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  Token pop() {
    Token t = std::move(q_.front());
    q_.pop_front();
    return t;
  }

 private:
  std::deque<Token> q_;
};

/// Base actor: named, with named input and output ports. fire() consumes
/// available inputs and produces outputs; it returns true if it did any
/// work (the director iterates until the graph quiesces).
class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;

  const std::string& name() const { return name_; }

  /// Perform one quantum of work; true if anything happened.
  virtual bool fire() = 0;

  /// Ports are created on demand.
  Channel& in(const std::string& port) { return **port_ref(inputs_, port); }
  Channel& out(const std::string& port) { return **port_ref(outputs_, port); }
  bool has_input(const std::string& port = "in") {
    return inputs_.count(port) && !inputs_[port]->empty();
  }

  /// Wire this actor's output port to a downstream actor's input port:
  /// they share the channel.
  void connect(const std::string& out_port, Actor& downstream,
               const std::string& in_port = "in");

 protected:
  Token take(const std::string& port = "in") { return in(port).pop(); }
  void emit(Token t, const std::string& port = "out");

 private:
  std::shared_ptr<Channel>* port_ref(
      std::map<std::string, std::shared_ptr<Channel>>& m,
      const std::string& port);

  std::string name_;
  std::map<std::string, std::shared_ptr<Channel>> inputs_;
  std::map<std::string, std::shared_ptr<Channel>> outputs_;
};

/// Sequential process-network director: round-robin fires actors until no
/// actor makes progress (one "sweep" of the workflow), Kepler-style but
/// deterministic. Actors owned elsewhere; the workflow holds raw pointers.
///
/// Firings are fault-guarded (DESIGN.md "Resilience"): an exception from
/// fire() (organic, or injected at the "workflow.fire" site) is retried up
/// to `fire_retries` times; when the budget is exhausted a dead-letter
/// token carrying {actor, error, workflow} is routed to the actor's
/// "error" port and the sweep continues — one failing actor no longer
/// takes the whole workflow down. The engine retries the *firing*, not a
/// specific token: an actor that consumed input before throwing sees its
/// next token on retry.
class Workflow {
 public:
  explicit Workflow(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  void add(Actor* a) { actors_.push_back(a); }

  /// Fire actors round-robin until quiescent; returns the number of
  /// firings that did work (dead-letter firings are counted separately in
  /// stats()).
  long run_until_idle(int max_sweeps = 1000);

  /// Fire-failure accounting for the last / cumulative runs.
  struct Stats {
    long fired = 0;         ///< successful firings that did work
    long fire_errors = 0;   ///< exceptions caught from fire()
    long retries = 0;       ///< firing retries attempted
    long dead_letters = 0;  ///< tokens routed to an "error" port
  };
  const Stats& stats() const { return stats_; }

  /// Firing retry budget before an error dead-letters (0 = no retry).
  int fire_retries = 2;

 private:
  /// 1 = did work, 0 = idle, -1 = dead-lettered.
  int fire_guarded(Actor& a);

  std::string name_;
  std::vector<Actor*> actors_;
  Stats stats_;
};

}  // namespace s3d::workflow
