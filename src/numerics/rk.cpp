#include "numerics/rk.hpp"

namespace s3d::numerics {

const RkScheme& rk_carpenter_kennedy4() {
  static const RkScheme s{
      "carpenter-kennedy-4",
      4,
      {0.0, -567301805773.0 / 1357537059087.0,
       -2404267990393.0 / 2016746695238.0,
       -3550918686646.0 / 2091501179385.0,
       -1275806237668.0 / 842570457699.0},
      {1432997174477.0 / 9575080441755.0, 5161836677717.0 / 13612068292357.0,
       1720146321549.0 / 2090206949498.0, 3134564353537.0 / 4481467310338.0,
       2277821191437.0 / 14882151754819.0},
      {0.0, 1432997174477.0 / 9575080441755.0,
       2526269341429.0 / 6820363962896.0, 2006345519317.0 / 3224310063776.0,
       2802321613138.0 / 2924317926251.0}};
  return s;
}

const RkScheme& rk_williamson3() {
  static const RkScheme s{"williamson-3",
                          3,
                          {0.0, -5.0 / 9.0, -153.0 / 128.0},
                          {1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0},
                          {0.0, 1.0 / 3.0, 3.0 / 4.0}};
  return s;
}

const RkScheme& rk_euler() {
  static const RkScheme s{"euler", 1, {0.0}, {1.0}, {0.0}};
  return s;
}

void LowStorageRk::step(std::span<double> u, double t, double dt,
                        const Rhs& rhs) {
  const std::size_t n = u.size();
  if (k_.size() != n) {
    k_.assign(n, 0.0);
    du_.assign(n, 0.0);
  }
  for (double& v : k_) v = 0.0;
  for (int s = 0; s < scheme_.stages(); ++s) {
    rhs({u.data(), n}, t + scheme_.C[s] * dt, {du_.data(), n});
    const double A = scheme_.A[s];
    const double B = scheme_.B[s];
    for (std::size_t i = 0; i < n; ++i) {
      k_[i] = A * k_[i] + dt * du_[i];
      u[i] += B * k_[i];
    }
  }
}

}  // namespace s3d::numerics
