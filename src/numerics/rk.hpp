#pragma once
// Low-storage (2N-register) explicit Runge-Kutta time integration.
//
// The paper (section 2.6) advances S3D with a six-stage fourth-order
// explicit RK of Kennedy & Carpenter. We implement the same 2N-register
// family; the shipped fourth-order coefficient set is the five-stage
// Carpenter-Kennedy (1994) scheme (see DESIGN.md substitution note), plus
// classic RK4 coefficients expressed in 2N form for testing and forward
// Euler as a baseline.
//
// Update per stage s:  k <- A[s] k + dt f(u);  u <- u + B[s] k.

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace s3d::numerics {

/// A 2N-storage ERK coefficient set.
struct RkScheme {
  std::string name;
  int order = 0;
  std::vector<double> A;  ///< per-stage k-recurrence coefficient (A[0] = 0)
  std::vector<double> B;  ///< per-stage solution increment coefficient
  std::vector<double> C;  ///< stage times (for time-dependent forcing)
  int stages() const { return static_cast<int>(A.size()); }
};

/// Five-stage fourth-order Carpenter-Kennedy (1994) 2N scheme; S3D's
/// integrator family.
const RkScheme& rk_carpenter_kennedy4();

/// Three-stage third-order Williamson (1980) 2N scheme.
const RkScheme& rk_williamson3();

/// Forward Euler in 2N form (testing baseline).
const RkScheme& rk_euler();

/// Integrates du/dt = f(u, t) for flat state vectors with a 2N-register
/// footprint: the state `u` plus one scratch register of the same size.
class LowStorageRk {
 public:
  /// RHS callback: fills dudt from (u, t). Must not alias u.
  using Rhs = std::function<void(std::span<const double> u, double t,
                                 std::span<double> dudt)>;

  explicit LowStorageRk(const RkScheme& scheme) : scheme_(scheme) {}

  const RkScheme& scheme() const { return scheme_; }

  /// Advance `u` in place by one step dt starting at time t.
  void step(std::span<double> u, double t, double dt, const Rhs& rhs);

 private:
  RkScheme scheme_;
  std::vector<double> k_, du_;
};

}  // namespace s3d::numerics
