#pragma once
// High-order finite-difference operators (paper section 2.6):
//   - 8th-order central first derivative (9-point stencil),
//   - reduced-order one-sided/narrow closures at non-periodic boundaries,
//   - 10th-order explicit low-pass filter (11-point stencil) to remove
//     spurious high-frequency content.
//
// Data model: every line carries `ng = 4` ghost points on each side. When a
// boundary is "ghosted" (periodic wrap or a parallel neighbour filled it),
// the full central stencil is used up to the edge; otherwise the operators
// fall back to one-sided/narrower closures that only read interior data.

#include <cstddef>

namespace s3d::numerics {

/// Ghost-layer width required by the 9-point derivative stencil.
inline constexpr int kGhost = 4;
/// Ghost width needed by the 11-point filter.
inline constexpr int kGhostFilter = 5;

/// Whether a line endpoint has valid ghost data beyond it.
struct LineBC {
  bool ghost_lo = false;
  bool ghost_hi = false;
};

/// First derivative along a strided line.
///
/// `f` points at the first *interior* sample; samples are at
/// f[(i) * stride] for i in [-ng, n-1+ng] where the ghost range is only
/// read on sides with ghost data. `df[i * dstride]` receives the
/// derivative scaled by `inv_h` (uniform grid) for i in [0, n).
void deriv_line(const double* f, std::ptrdiff_t stride, double* df,
                std::ptrdiff_t dstride, int n, double inv_h, LineBC bc);

/// First derivative with a per-point metric (stretched grids):
/// df[i] = (dfdxi at i) * inv_h[i].
void deriv_line_metric(const double* f, std::ptrdiff_t stride, double* df,
                       std::ptrdiff_t dstride, int n, const double* inv_h,
                       LineBC bc);

/// Fused divergence accumulation: df[i] -= (dfdxi at i) * inv_h[i].
/// Batched flux-divergence passes use this in place of the unfused
/// write-scratch / subtract-scratch pair; the accumulated values are
/// bitwise identical to that pair (the derivative is rounded to a
/// double before the subtraction, never contracted into it).
void deriv_line_metric_sub(const double* f, std::ptrdiff_t stride, double* df,
                           std::ptrdiff_t dstride, int n, const double* inv_h,
                           LineBC bc);

/// 10th-order filter along a strided line, in place semantics via separate
/// output: out[i] = f[i] - (alpha/1024) * (10th binomial difference).
/// `alpha` in (0, 1]; 1 is the paper's full-strength filter. Points whose
/// stencil would leave the interior on a non-ghosted side are passed
/// through with symmetric lower-order filters (down to no filtering at the
/// last interior point).
void filter_line(const double* f, std::ptrdiff_t stride, double* out,
                 std::ptrdiff_t ostride, int n, double alpha, LineBC bc);

/// 6th-order one-sided first derivative (index space) at f[0], reading the
/// seven samples f[0], f[sign*stride], ..., f[6*sign*stride]. Used by the
/// NSCBC boundary treatment. Multiply by the metric and by `sign` to get a
/// physical derivative along +axis.
double one_sided_deriv(const double* f, std::ptrdiff_t stride, int sign);

/// Damping factor of the interior filter at normalized wavenumber
/// theta = k*h in [0, pi]: transfer(theta) = 1 - alpha * sin^10(theta/2)...
/// returned exactly as implemented (used by tests).
double filter_transfer(double theta, double alpha);

}  // namespace s3d::numerics
