#pragma once
// Deterministic random number generation.
//
// All stochastic pieces of S3D++ (synthetic turbulence, workload generators,
// failure injection) draw from an explicitly seeded Rng so every experiment
// is reproducible bit-for-bit across runs.

#include <cstdint>
#include <random>

namespace s3d {

/// Seeded pseudo-random generator with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x53d0c0deULL) : eng_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Standard normal draw scaled to mean/stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(eng_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(eng_);
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace s3d
