#pragma once
// Wall-clock timing utilities.

#include <chrono>

namespace s3d {

/// Simple monotonic stopwatch (seconds, double precision).
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace s3d
