#pragma once
// Deterministic non-cryptographic hashing (FNV-1a 64).
//
// Used wherever the repo needs a stable fingerprint of binary data: the
// restart-file integrity checksum and the golden-run regression harness's
// field checksums. Byte-order sensitive by design: two states hash equal
// iff they are bitwise identical.

#include <cstddef>
#include <cstdint>
#include <string>

namespace s3d {

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a64 {
 public:
  void update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void update_value(const T& v) {
    update(&v, sizeof(T));
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// One-shot convenience.
inline std::uint64_t fnv1a64(const void* data, std::size_t len) {
  Fnv1a64 h;
  h.update(data, len);
  return h.digest();
}

/// Fixed-width lowercase hex rendering (stable golden-file format).
inline std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[i] = digits[v & 0xf];
  return s;
}

}  // namespace s3d
