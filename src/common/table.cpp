#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace s3d {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  S3D_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  S3D_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(w[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace s3d
