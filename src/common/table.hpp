#pragma once
// Fixed-width text table printer used by the benchmark harness to emit
// paper-style result tables on stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace s3d {

/// Accumulates rows of string cells and prints them as an aligned table.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same number of cells as there are
  /// headers.
  void add_row(std::vector<std::string> cells);

  /// Format a double with `prec` significant-looking decimals.
  static std::string num(double v, int prec = 4);

  /// Render the table to `os` with column alignment and a header rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s3d
