#pragma once
// Error handling for S3D++.
//
// The library throws s3d::Error (derived from std::runtime_error) for all
// recoverable failures; S3D_REQUIRE is used for precondition checks on
// public API boundaries, S3D_ASSERT for internal invariants. S3D_ASSERT
// sits on every hot-loop index (Layout::at), so it compiles out in
// Release (NDEBUG) builds; the sanitizer lanes re-arm it with
// S3DPP_KEEP_ASSERT, and S3DPP_NO_ASSERT forces it out everywhere.

#include <stdexcept>
#include <string>

namespace s3d {

/// Exception type thrown by all S3D++ components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(kind) + " failed: " + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace s3d

#define S3D_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr))                                                      \
      ::s3d::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                          (msg));                                     \
  } while (0)

#if defined(S3DPP_NO_ASSERT) || \
    (defined(NDEBUG) && !defined(S3DPP_KEEP_ASSERT))
#define S3D_ASSERT(expr) ((void)0)
#else
#define S3D_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::s3d::detail::fail("assertion", #expr, __FILE__, __LINE__, "");    \
  } while (0)
#endif
