#pragma once
// Dense multi-dimensional field containers for structured-grid data.
//
// Layout policy: Field3 stores a single scalar on an (nx, ny, nz) grid with
// x fastest (unit stride in i), matching the stencil sweep direction so the
// inner loops vectorize. Field4 stores nv scalars as an array-of-fields
// (variable-major, i.e. SoA): component v is a contiguous Field3-shaped
// block. This mirrors S3D's Fortran (i,j,k,v) layout.

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace s3d {

/// Index triple for structured grids.
struct Index3 {
  int i = 0, j = 0, k = 0;
};

/// A dense scalar field on an (nx, ny, nz) structured grid, x fastest.
class Field3 {
 public:
  Field3() = default;

  /// Construct an (nx, ny, nz) field initialized to `init`.
  Field3(int nx, int ny, int nz, double init = 0.0)
      : nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<std::size_t>(nx) * ny * nz, init) {
    S3D_REQUIRE(nx > 0 && ny > 0 && nz > 0, "field extents must be positive");
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  /// Flat index of (i, j, k).
  std::size_t idx(int i, int j, int k) const {
    return static_cast<std::size_t>(k) * ny_ * nx_ +
           static_cast<std::size_t>(j) * nx_ + i;
  }

  double& operator()(int i, int j, int k) { return data_[idx(i, j, k)]; }
  double operator()(int i, int j, int k) const { return data_[idx(i, j, k)]; }

  double& operator[](std::size_t n) { return data_[n]; }
  double operator[](std::size_t n) const { return data_[n]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  /// Set every entry to `v`.
  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// A dense vector field: nv scalar components on an (nx, ny, nz) grid,
/// stored variable-major (component v is one contiguous scalar block).
class Field4 {
 public:
  Field4() = default;

  Field4(int nx, int ny, int nz, int nv, double init = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), nv_(nv),
        stride_(static_cast<std::size_t>(nx) * ny * nz),
        data_(stride_ * nv, init) {
    S3D_REQUIRE(nx > 0 && ny > 0 && nz > 0 && nv > 0,
                "field extents must be positive");
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int nv() const { return nv_; }
  /// Number of grid points per component.
  std::size_t points() const { return stride_; }
  std::size_t size() const { return data_.size(); }

  std::size_t idx(int i, int j, int k, int v) const {
    return static_cast<std::size_t>(v) * stride_ +
           static_cast<std::size_t>(k) * ny_ * nx_ +
           static_cast<std::size_t>(j) * nx_ + i;
  }

  double& operator()(int i, int j, int k, int v) {
    return data_[idx(i, j, k, v)];
  }
  double operator()(int i, int j, int k, int v) const {
    return data_[idx(i, j, k, v)];
  }

  /// Contiguous view of one component.
  std::span<double> comp(int v) {
    S3D_ASSERT(v >= 0 && v < nv_);
    return {data_.data() + static_cast<std::size_t>(v) * stride_, stride_};
  }
  std::span<const double> comp(int v) const {
    S3D_ASSERT(v >= 0 && v < nv_);
    return {data_.data() + static_cast<std::size_t>(v) * stride_, stride_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0, nv_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

}  // namespace s3d
