#pragma once
// Physical constants (SI units) and unit-conversion factors used throughout
// S3D++. Mechanism data are entered in their native CGS / cal-mol units and
// converted with the factors below at construction time.

namespace s3d::constants {

/// Universal gas constant [J / (kmol K)].
inline constexpr double Ru = 8314.462618;

/// Universal gas constant [J / (mol K)].
inline constexpr double Ru_mol = 8.314462618;

/// Boltzmann constant [J/K].
inline constexpr double kB = 1.380649e-23;

/// Avogadro constant [1/kmol].
inline constexpr double NA = 6.02214076e26;

/// Standard atmosphere [Pa].
inline constexpr double p_atm = 101325.0;

/// Reference pressure for equilibrium constants [Pa].
inline constexpr double p_ref = 101325.0;

/// Thermal energy conversion: 1 cal = 4.184 J (thermochemical calorie).
inline constexpr double cal_to_J = 4.184;

/// Gas constant in cal/(mol K), used to convert activation energies that
/// are tabulated in cal/mol to the dimensionless Ea/Ru form.
inline constexpr double Ru_cal = 1.98720425864083;

/// cm^3/(mol s) -> m^3/(kmol s): 1e-6 m^3/cm^3 * 1e3 mol/kmol.
inline constexpr double A_bimolecular_cgs_to_si = 1.0e-3;

/// cm^6/(mol^2 s) -> m^6/(kmol^2 s).
inline constexpr double A_termolecular_cgs_to_si = 1.0e-9;

/// Angstrom -> meter.
inline constexpr double angstrom = 1.0e-10;

/// Debye -> C m (for dipole moments in transport data).
inline constexpr double debye = 3.33564e-30;

}  // namespace s3d::constants
