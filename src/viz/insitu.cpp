#include "viz/insitu.hpp"

#include "common/timer.hpp"

namespace s3d::viz {

void InSituVis::on_step(int step) {
  if (interval_ <= 0 || step % interval_ != 0) return;
  s3d::Timer t;
  for (const auto& p : products_) {
    const solver::GField* f = p.field();
    if (!f) continue;
    VolumeRenderer vr(2);
    Image img = vr.render({Layer{f, p.tf}});
    img.write_ppm(dir_ + "/" + p.name + "_" + std::to_string(step) + ".ppm");
  }
  ++frames_;
  overhead_ += t.seconds();
}

}  // namespace s3d::viz
