#include "viz/insitu.hpp"

namespace s3d::viz {

InSituVis::InSituVis(std::string out_dir, int interval)
    : interval_(interval) {
  // Route through the registry so the facade exercises the same
  // validated construction path as the scenario runner's --analysis.
  auto pass = AnalysisRegistry::instance().build("insitu_render",
                                                 {{"dir", out_dir}});
  render_.reset(static_cast<RenderAnalysis*>(pass.release()));
}

void InSituVis::on_step(int step) {
  if (interval_ <= 0 || step % interval_ != 0) return;
  render_->render_now(step);
}

}  // namespace s3d::viz
