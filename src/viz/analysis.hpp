#pragma once
// In-situ analysis plugin registry (DESIGN.md §15): analysis passes —
// conditional means over mixture fraction, scalar dissipation rate,
// box-filter a-priori subgrid stress/flux (the aPriori direction in
// PAPERS.md), and the volume renderer — register a name, a typed
// parameter schema, and a factory, and are driven as *fused consumer
// hooks*: every due step the AnalysisDriver builds ONE FusedPointwise
// carrying each active pass's row stages and traverses the interior
// once, so N analyses cost one sweep over memory, not N (DESIGN.md §10).
//
// Determinism contract: registries are deterministic ordered maps,
// per-invocation reductions are packed into one vmpi collective per pass
// invoked identically on every rank (S3D_COLLECTIVE_CHECK clean), and
// after finish() every rank holds bitwise-identical accumulators for a
// given decomposition. Accumulators snapshot to a flat double block that
// rides the health SnapshotRing as a StateSidecar and the checkpoint
// store through the driver's snapshot()/restore(), so rollbacks and
// restart replays are bitwise (the `ctest -L plugin` tier pins both).
// Trace counters are rank-0-gated `analysis.*` names; periodic CSV/JSON
// emission uses the checkpoint store's atomic temp+rename writes with
// iosim-style retry/backoff.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "solver/cases.hpp"
#include "solver/health.hpp"
#include "solver/passes.hpp"
#include "solver/scenario.hpp"
#include "solver/solver.hpp"
#include "viz/render.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::viz {

using solver::ParamMap;
using solver::ParamSpec;

/// Thrown for unknown analysis names (lists every registered name),
/// duplicate registrations, and unusable scenario/analysis pairings.
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error(what) {}
};

/// Everything an analysis pass may read during one invocation. The
/// primitive workspace is refreshed (ghost shells exchanged) before
/// prepare() runs; `comm` is nullptr in serial runs.
struct AnalysisContext {
  solver::Solver& s;
  const solver::CaseSetup& cs;
  const solver::Prim& prim;
  long step = 0;
  double t = 0.0;
  vmpi::Comm* comm = nullptr;
};

/// One in-situ analysis. Lifecycle per invocation:
///   prepare()     derive whole-field inputs (mixture fraction, gradient
///                 magnitudes) — identical work on every rank;
///   add_stages()  contribute row stages to the SHARED fused consumer
///                 pass; stages write only this pass's own local scratch
///                 (stage outputs are pairwise disjoint by construction);
///   finish()      reduce the local scratch with ONE collective and fold
///                 it into the persistent accumulators — afterwards every
///                 rank holds identical accumulator values.
/// snapshot()/restore() expose the accumulators as a fixed-length double
/// block (the checkpoint/rollback payload); csv()/json() render them.
class AnalysisPass {
 public:
  explicit AnalysisPass(std::string name) : name_(std::move(name)) {}
  virtual ~AnalysisPass() = default;

  const std::string& name() const { return name_; }

  virtual void prepare(const AnalysisContext& ctx) { (void)ctx; }
  virtual void add_stages(solver::FusedPointwise& pass,
                          const AnalysisContext& ctx) = 0;
  virtual void finish(const AnalysisContext& ctx) = 0;

  /// Append the accumulator block (fixed length per instance).
  virtual void snapshot(std::vector<double>& out) const = 0;
  /// Consume exactly the block snapshot() appends; returns the count.
  virtual std::size_t restore(std::span<const double> in) = 0;

  virtual std::string csv() const = 0;
  /// One JSON object body (no surrounding braces newline), e.g.
  /// "\"name\": \"conditional_means\", \"samples\": 123".
  virtual std::string json() const = 0;

 private:
  std::string name_;
};

/// A registered analysis: name, schema, factory.
struct AnalysisSpec {
  std::string name;
  std::string description;
  std::vector<ParamSpec> schema;
  std::function<std::unique_ptr<AnalysisPass>(const ParamMap&)> make;
};

/// Process-wide analysis registry (deterministic ordered map; built-ins
/// register in the constructor, duplicates throw).
class AnalysisRegistry {
 public:
  static AnalysisRegistry& instance();

  void add(AnalysisSpec spec);
  bool contains(const std::string& name) const;
  const AnalysisSpec& at(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Validate overrides against the schema (unknown key / parse / range
  /// violations are typed ConfigErrors on "analysis.<name>.<key>"), then
  /// run the factory.
  std::unique_ptr<AnalysisPass> build(const std::string& name,
                                      const ParamMap& overrides = {}) const;

 private:
  AnalysisRegistry();
  std::map<std::string, AnalysisSpec> map_;
};

struct AnalysisOptions {
  int interval = 50;    ///< steps between invocations (on_step cadence)
  int emit_every = 0;   ///< invocations between emissions (0: manual only)
  std::string out_dir = ".";
  int emit_retries = 3;       ///< attempts per file (iosim-style policy)
  double backoff_ms = 0.5;    ///< base retry backoff
};

/// Drives the active analyses against one solver: builds the shared
/// fused consumer pass each due step, runs the collective finish phase,
/// carries the accumulator sidecar, and emits CSV/JSON. on_step() must
/// be invoked with the same step count on every rank (it decides the
/// collective cadence); wire it to GuardOptions::on_clean_step under
/// run_guarded, or call it from a Solver::run monitor.
class AnalysisDriver {
 public:
  AnalysisDriver(const solver::CaseSetup& cs, AnalysisOptions opt = {});

  /// Instantiate a registered analysis by name with overrides.
  void add(const std::string& name, const ParamMap& overrides = {});
  void attach(solver::Solver& s, vmpi::Comm* comm = nullptr);

  /// Fused consumer hook: invokes the analyses when `step` is on the
  /// interval cadence. No-op when detached or no passes are active.
  void on_step(long step);
  /// Force one invocation now (ignores the cadence).
  void invoke(long step);

  long invocations() const { return invocations_; }
  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }
  const solver::PassStats& pass_stats() const { return stats_; }

  /// Accumulator block over every active pass, in add() order.
  void snapshot(std::vector<double>& out) const;
  std::size_t restore(std::span<const double> in);
  /// Bridge to the health/rollback contract: install the result as
  /// GuardOptions::sidecar so accumulators ride the snapshot ring.
  solver::StateSidecar sidecar();

  /// Write one CSV per pass plus a run summary JSON into out_dir
  /// (rank 0 only; atomic temp+rename with retry/backoff — the iosim
  /// write policy; a file that exhausts its retries is dropped and
  /// counted, never fatal). Returns the paths written.
  std::vector<std::string> emit(long step) const;

 private:
  const solver::CaseSetup& cs_;
  AnalysisOptions opt_;
  solver::Solver* s_ = nullptr;
  vmpi::Comm* comm_ = nullptr;
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
  solver::PassStats stats_;
  long invocations_ = 0;
};

/// The volume renderer as a registered analysis ("insitu_render"):
/// InSituVis routes through this class. Renders its product list (or a
/// prepared primitive field in the driver path) to numbered PPM frames;
/// rank 0 renders its local box in parallel runs.
class RenderAnalysis : public AnalysisPass {
 public:
  /// A named rendering product: the field supplier is invoked at render
  /// time so the hook always sees the live solver state.
  struct Product {
    std::string name;
    std::function<const solver::GField*()> field;
    TransferFunction tf;
  };

  RenderAnalysis(std::string dir, std::string field, double lo, double hi,
                 double opacity);

  void add_product(Product p) { products_.push_back(std::move(p)); }
  /// Render the current product list now (the InSituVis path).
  void render_now(long step);

  int frames_written() const { return frames_; }
  double overhead_seconds() const { return overhead_; }

  void prepare(const AnalysisContext& ctx) override;
  void add_stages(solver::FusedPointwise& pass,
                  const AnalysisContext& ctx) override;
  void finish(const AnalysisContext& ctx) override;
  void snapshot(std::vector<double>& out) const override;
  std::size_t restore(std::span<const double> in) override;
  std::string csv() const override;
  std::string json() const override;

 private:
  std::string dir_;
  std::string field_;  ///< driver-path field name ("T", "rho", "Y:OH", ...)
  double lo_ = 0.0, hi_ = 0.0;  ///< transfer range (hi <= lo: field range)
  double opacity_ = 0.9;
  std::vector<Product> products_;
  const solver::GField* ctx_field_ = nullptr;  ///< resolved in prepare()
  int frames_ = 0;
  double overhead_ = 0.0;
};

}  // namespace s3d::viz
