#include "viz/render.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace s3d::viz {

double TransferFunction::alpha(double v) const {
  if (iso >= 0.0) {
    const double d = std::abs(v - iso);
    if (d > iso_width) return 0.0;
    return opacity * (1.0 - d / iso_width);
  }
  const double t = std::clamp(norm(v), 0.0, 1.0);
  return opacity * std::pow(t, gamma);
}

Rgb TransferFunction::shade(double v) const {
  if (iso >= 0.0) return color(0.8);
  return color(std::clamp(norm(v), 0.0, 1.0));
}

Image VolumeRenderer::render(const std::vector<Layer>& layers, int scale,
                             Rgb background) const {
  S3D_REQUIRE(!layers.empty() && layers[0].field, "no layers to render");
  const solver::Layout& l = layers[0].field->layout();
  for (const auto& lay : layers)
    S3D_REQUIRE(lay.field->layout().total() == l.total(),
                "layers must share a layout");

  const int a1 = (axis_ + 1) % 3, a2 = (axis_ + 2) % 3;
  const int n1 = l.n(a1), n2 = l.n(a2), nd = l.n(axis_);
  Image img(n1 * scale, n2 * scale, background);

  for (int q = 0; q < n2; ++q) {
    for (int r = 0; r < n1; ++r) {
      // Front-to-back compositing along the casting axis.
      Rgb acc{0, 0, 0};
      double transmittance = 1.0;
      for (int s = 0; s < nd && transmittance > 1e-3; ++s) {
        int ijk[3];
        ijk[axis_] = s;
        ijk[a1] = r;
        ijk[a2] = q;
        // Fuse the layers at this sample.
        Rgb c{0, 0, 0};
        double a = 0.0, wsum = 0.0;
        for (const auto& lay : layers) {
          const double v = (*lay.field)(ijk[0], ijk[1], ijk[2]);
          const double la = lay.tf.alpha(v);
          if (la <= 0.0) continue;
          c = c + lay.tf.shade(v) * la;
          wsum += la;
          a = 1.0 - (1.0 - a) * (1.0 - la);
        }
        if (a <= 0.0) continue;
        // Opacity-weighted colour average, scaled by the fused opacity.
        c = c * (a / wsum);
        acc = acc + c * transmittance;
        transmittance *= (1.0 - a);
      }
      acc = acc + background * transmittance;
      for (int py = 0; py < scale; ++py)
        for (int px = 0; px < scale; ++px)
          img.at(r * scale + px, (n2 - 1 - q) * scale + py) = acc;
    }
  }
  return img;
}

Image render_slice(const solver::GField& f, double lo, double hi,
                   const std::function<Rgb(double)>& cmap, int scale,
                   int k) {
  const solver::Layout& l = f.layout();
  Image img(l.nx * scale, l.ny * scale);
  for (int j = 0; j < l.ny; ++j)
    for (int i = 0; i < l.nx; ++i) {
      const double t = (f(i, j, k) - lo) / (hi - lo);
      const Rgb c = cmap(std::clamp(t, 0.0, 1.0));
      for (int py = 0; py < scale; ++py)
        for (int px = 0; px < scale; ++px)
          img.at(i * scale + px, (l.ny - 1 - j) * scale + py) = c;
    }
  return img;
}

}  // namespace s3d::viz
