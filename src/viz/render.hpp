#pragma once
// Software volume rendering with user-controlled multivariate data fusion
// (paper section 8.1): several scalar fields are rendered simultaneously
// by per-sample opacity-weighted color blending, which is how fig. 10 and
// fig. 14 show OH together with HO2 and the stoichiometric mixture
// fraction isosurface. Isosurfaces are rendered as narrow opacity windows
// around the iso value, so surface + volume layers compose freely.

#include <functional>
#include <string>
#include <vector>

#include "solver/layout.hpp"
#include "viz/image.hpp"

namespace s3d::viz {

/// Maps a normalized scalar sample to color and opacity.
struct TransferFunction {
  double lo = 0.0, hi = 1.0;          ///< value window
  std::function<Rgb(double)> color = colormap_hot;
  double opacity = 0.5;               ///< peak opacity per unit sample
  double gamma = 1.0;                 ///< opacity ramp: a = opacity * t^gamma
  /// When >= 0: render as an isosurface at this value with `iso_width`
  /// (in value units) instead of a volume ramp.
  double iso = -1.0;
  double iso_width = 0.0;

  /// Normalized position of `v` in the window.
  double norm(double v) const {
    return (v - lo) / (hi - lo);
  }
  /// Opacity of a sample value.
  double alpha(double v) const;
  /// Color of a sample value.
  Rgb shade(double v) const;
};

/// One field layer of a fused rendering.
struct Layer {
  const solver::GField* field = nullptr;
  TransferFunction tf;
};

/// Orthographic ray-casting along a grid axis with front-to-back
/// compositing. For 2-D domains (nz = 1) this degenerates to a shaded
/// slice, which is what the scaled-down runs use.
class VolumeRenderer {
 public:
  /// @param axis  casting direction (0, 1, or 2)
  explicit VolumeRenderer(int axis = 2) : axis_(axis) {}

  /// Render the fused layers over the interior of their shared layout.
  /// The image plane is spanned by the two remaining axes; `scale` pixels
  /// per grid point.
  Image render(const std::vector<Layer>& layers, int scale = 3,
               Rgb background = {0, 0, 0}) const;

 private:
  int axis_;
};

/// Render a single 2-D slice (k = const) of a field with a colormap,
/// normalizing to [lo, hi].
Image render_slice(const solver::GField& f, double lo, double hi,
                   const std::function<Rgb(double)>& cmap, int scale = 3,
                   int k = 0);

}  // namespace s3d::viz
