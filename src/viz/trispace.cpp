#include "viz/trispace.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace s3d::viz {

ParallelCoords::ParallelCoords(std::vector<VarAxis> axes, int nbins)
    : axes_(std::move(axes)), nbins_(nbins) {
  S3D_REQUIRE(axes_.size() >= 2, "parallel coordinates need >= 2 axes");
  for (const auto& a : axes_) S3D_REQUIRE(a.field, "axis without field");
  pair_bins_.assign(axes_.size() - 1,
                    std::vector<long>(static_cast<std::size_t>(nbins_) * nbins_, 0));
}

void ParallelCoords::accumulate(const std::vector<Brush>& brushes) {
  const solver::Layout& l = axes_[0].field->layout();
  auto bin_of = [&](int a, double v) {
    const double t = (v - axes_[a].lo) / (axes_[a].hi - axes_[a].lo);
    return static_cast<int>(std::clamp(t, 0.0, 1.0 - 1e-12) * nbins_);
  };
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        bool pass = true;
        for (const auto& b : brushes) {
          const double v = (*axes_[b.axis].field)(i, j, k);
          if (v < b.lo || v > b.hi) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        ++total_;
        for (std::size_t a = 0; a + 1 < axes_.size(); ++a) {
          const int b0 = bin_of(static_cast<int>(a),
                                (*axes_[a].field)(i, j, k));
          const int b1 = bin_of(static_cast<int>(a + 1),
                                (*axes_[a + 1].field)(i, j, k));
          ++pair_bins_[a][static_cast<std::size_t>(b0) * nbins_ + b1];
        }
      }
}

long ParallelCoords::density(int a, int bin_a, int bin_a1) const {
  return pair_bins_[a][static_cast<std::size_t>(bin_a) * nbins_ + bin_a1];
}

Image ParallelCoords::render(int cell) const {
  const int np = naxes() - 1;
  Image img(np * nbins_ * cell + (np - 1) * cell, nbins_ * cell);
  long dmax = 1;
  for (const auto& pb : pair_bins_)
    for (long v : pb) dmax = std::max(dmax, v);
  for (int a = 0; a < np; ++a) {
    const int x0 = a * (nbins_ * cell + cell);
    for (int b0 = 0; b0 < nbins_; ++b0)
      for (int b1 = 0; b1 < nbins_; ++b1) {
        const double t =
            std::log1p(static_cast<double>(density(a, b0, b1))) /
            std::log1p(static_cast<double>(dmax));
        const Rgb c = colormap_viridis(t);
        for (int py = 0; py < cell; ++py)
          for (int px = 0; px < cell; ++px)
            img.at(x0 + b0 * cell + px, (nbins_ - 1 - b1) * cell + py) = c;
      }
  }
  return img;
}

TimeHistogram::TimeHistogram(double lo, double hi, int nbins)
    : lo_(lo), hi_(hi), nbins_(nbins) {
  S3D_REQUIRE(hi > lo && nbins > 0, "bad time-histogram bins");
}

void TimeHistogram::add_snapshot(const solver::GField& f) {
  const solver::Layout& l = f.layout();
  std::vector<long> h(nbins_, 0);
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        const double t = (f(i, j, k) - lo_) / (hi_ - lo_);
        const int b = static_cast<int>(std::clamp(t, 0.0, 1.0 - 1e-12) * nbins_);
        ++h[b];
      }
  hist_.push_back(std::move(h));
}

Image TimeHistogram::render(int cell) const {
  const int nt = nsnapshots();
  Image img(std::max(nt, 1) * cell, nbins_ * cell);
  long dmax = 1;
  for (const auto& h : hist_)
    for (long v : h) dmax = std::max(dmax, v);
  for (int t = 0; t < nt; ++t)
    for (int b = 0; b < nbins_; ++b) {
      const double v = std::log1p(static_cast<double>(hist_[t][b])) /
                       std::log1p(static_cast<double>(dmax));
      const Rgb c = colormap_viridis(v);
      for (int py = 0; py < cell; ++py)
        for (int px = 0; px < cell; ++px)
          img.at(t * cell + px, (nbins_ - 1 - b) * cell + py) = c;
    }
  return img;
}

double masked_correlation(const solver::GField& a, const solver::GField& b,
                          const std::function<bool(int, int, int)>& mask) {
  const solver::Layout& l = a.layout();
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  long n = 0;
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        if (mask && !mask(i, j, k)) continue;
        const double va = a(i, j, k), vb = b(i, j, k);
        sa += va;
        sb += vb;
        saa += va * va;
        sbb += vb * vb;
        sab += va * vb;
        ++n;
      }
  if (n < 2) return 0.0;
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::function<bool(int, int, int)> near_iso_mask(const solver::GField& f,
                                                 double iso, double width) {
  return [&f, iso, width](int i, int j, int k) {
    return std::abs(f(i, j, k) - iso) <= width;
  };
}

}  // namespace s3d::viz
