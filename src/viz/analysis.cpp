#include "viz/analysis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/timer.hpp"
#include "resilience/fault.hpp"
#include "solver/ckpt_store.hpp"
#include "solver/diagnostics.hpp"
#include "trace/trace.hpp"

namespace s3d::viz {

using solver::CaseSetup;
using solver::ConfigError;
using solver::FusedPointwise;
using solver::GField;
using solver::Layout;
using solver::RowRange;

namespace {

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Typed override extraction against an AnalysisSpec schema; the
/// registry's build() already rejected unknown keys.
long geti(const ParamMap& o, const std::string& name, const std::string& key,
          long def, long lo, long hi) {
  auto it = o.find(key);
  if (it == o.end()) return def;
  const std::string field = "analysis." + name + "." + key;
  const long x = solver::parse_int_param(field, it->second);
  if (x < lo || x > hi)
    throw ConfigError(field, "value " + std::to_string(x) + " outside [" +
                                 std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
  return x;
}

double getr(const ParamMap& o, const std::string& name,
            const std::string& key, double def, double lo, double hi) {
  auto it = o.find(key);
  if (it == o.end()) return def;
  const std::string field = "analysis." + name + "." + key;
  const double x = solver::parse_real_param(field, it->second);
  if (x < lo || x > hi)
    throw ConfigError(field, "value " + num(x) + " outside [" + num(lo) +
                                 ", " + num(hi) + "]");
  return x;
}

std::string gets(const ParamMap& o, const std::string& key,
                 const std::string& def) {
  auto it = o.find(key);
  return it == o.end() ? def : it->second;
}

bool rank0(const vmpi::Comm* comm) { return !comm || comm->rank() == 0; }

/// One sum-reduction of the per-invocation local scratch: identical
/// call site on every rank (S3D_COLLECTIVE_CHECK agreement).
void reduce_sum(vmpi::Comm* comm, std::span<double> v) {
  if (comm) comm->allreduce_sum(v);
}

// ---------------------------------------------------------------------------
// conditional_means: <T | Z> (or <T | c> for premixed scenarios) binned
// on the conditioning variable — the aPriori conditional-mean pass.

class ConditionalMeansPass : public AnalysisPass {
 public:
  explicit ConditionalMeansPass(int bins)
      : AnalysisPass("conditional_means"),
        bins_(bins),
        acc_(3 * static_cast<std::size_t>(bins), 0.0) {}

  void prepare(const AnalysisContext& ctx) override {
    const auto& cs = ctx.cs;
    const auto& mech = *cs.cfg.mech;
    const Layout& l = ctx.s.layout();
    if (!cs.Y_fuel.empty() && !cs.Y_ox.empty() && cs.Z_st > 0.0) {
      cond_label_ = "Z";
      cond_ = solver::mixture_fraction_field(mech, ctx.prim, l, cs.Y_ox,
                                             cs.Y_fuel);
    } else if (cs.Y_o2_unburnt != cs.Y_o2_burnt) {
      cond_label_ = "c";
      cond_ = solver::progress_variable_field(mech, ctx.prim, l,
                                              cs.Y_o2_unburnt, cs.Y_o2_burnt);
    } else {
      throw AnalysisError(
          "conditional_means: scenario provides neither mixture-fraction "
          "streams nor progress-variable endpoints to condition on");
    }
  }

  void add_stages(FusedPointwise& pass, const AnalysisContext& ctx) override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    cnt_l_.assign(nb, 0.0);
    sum_l_.assign(nb, 0.0);
    sum2_l_.assign(nb, 0.0);
    const double* z = cond_.data();
    const double* T = ctx.prim.T.data();
    pass.add("conditional_means", [this, z, T](const RowRange& r) {
      for (int m = 0; m < r.count; ++m) {
        const std::size_t n = r.n0 + static_cast<std::size_t>(m);
        int b = static_cast<int>(z[n] * bins_);
        b = std::clamp(b, 0, bins_ - 1);
        const std::size_t bi = static_cast<std::size_t>(b);
        cnt_l_[bi] += 1.0;
        sum_l_[bi] += T[n];
        sum2_l_[bi] += T[n] * T[n];
      }
    });
  }

  void finish(const AnalysisContext& ctx) override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    std::vector<double> red(3 * nb);
    std::copy(cnt_l_.begin(), cnt_l_.end(), red.begin());
    std::copy(sum_l_.begin(), sum_l_.end(), red.begin() + nb);
    std::copy(sum2_l_.begin(), sum2_l_.end(), red.begin() + 2 * nb);
    reduce_sum(ctx.comm, red);
    double samples = 0.0;
    for (std::size_t i = 0; i < red.size(); ++i) acc_[i] += red[i];
    for (std::size_t i = 0; i < nb; ++i) samples += red[i];
    if (rank0(ctx.comm))
      trace::counter_add("analysis.samples", samples);
  }

  void snapshot(std::vector<double>& out) const override {
    out.insert(out.end(), acc_.begin(), acc_.end());
  }
  std::size_t restore(std::span<const double> in) override {
    S3D_REQUIRE(in.size() >= acc_.size(),
                "conditional_means: snapshot block too short");
    std::copy(in.begin(), in.begin() + acc_.size(), acc_.begin());
    return acc_.size();
  }

  std::string csv() const override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    std::string out = cond_label_ + ",count,T_mean,T_rms\n";
    for (std::size_t b = 0; b < nb; ++b) {
      const double n = acc_[b];
      const double mean = n > 0.0 ? acc_[nb + b] / n : 0.0;
      const double var =
          n > 0.0 ? std::max(acc_[2 * nb + b] / n - mean * mean, 0.0) : 0.0;
      out += num((b + 0.5) / bins_) + "," + num(n) + "," + num(mean) + "," +
             num(std::sqrt(var)) + "\n";
    }
    return out;
  }

  std::string json() const override {
    double samples = 0.0;
    for (int b = 0; b < bins_; ++b)
      samples += acc_[static_cast<std::size_t>(b)];
    return "\"name\": \"conditional_means\", \"cond\": \"" + cond_label_ +
           "\", \"bins\": " + std::to_string(bins_) +
           ", \"samples\": " + num(samples);
  }

 private:
  int bins_;
  std::string cond_label_ = "Z";
  GField cond_;
  std::vector<double> cnt_l_, sum_l_, sum2_l_;  ///< per-invocation scratch
  std::vector<double> acc_;  ///< [count | sum T | sum T^2] per bin
};

// ---------------------------------------------------------------------------
// scalar_dissipation: chi = 2 D |grad Z|^2 conditioned on Z, plus the
// domain mean and running max.

class ScalarDissipationPass : public AnalysisPass {
 public:
  ScalarDissipationPass(int bins, double D)
      : AnalysisPass("scalar_dissipation"),
        bins_(bins),
        D_(D),
        acc_(3 * static_cast<std::size_t>(bins) + 3, 0.0) {}

  void prepare(const AnalysisContext& ctx) override {
    const auto& cs = ctx.cs;
    // Z_st == 0 marks premixed cases whose Y_fuel/Y_ox carry the
    // unburnt/burnt endpoints, not genuine mixing streams.
    if (cs.Y_fuel.empty() || cs.Y_ox.empty() || cs.Z_st <= 0.0)
      throw AnalysisError(
          "scalar_dissipation: scenario provides no mixture-fraction "
          "streams");
    const Layout& l = ctx.s.layout();
    z_ = solver::mixture_fraction_field(*cs.cfg.mech, ctx.prim, l, cs.Y_ox,
                                        cs.Y_fuel);
    gz_ = solver::gradient_magnitude(ctx.s.rhs().ops(), z_);
  }

  void add_stages(FusedPointwise& pass, const AnalysisContext& ctx) override {
    (void)ctx;
    const std::size_t nb = static_cast<std::size_t>(bins_);
    cnt_l_.assign(nb, 0.0);
    sum_l_.assign(nb, 0.0);
    sum2_l_.assign(nb, 0.0);
    chi_sum_l_ = 0.0;
    chi_max_l_ = 0.0;
    const double* z = z_.data();
    const double* g = gz_.data();
    pass.add("scalar_dissipation", [this, z, g](const RowRange& r) {
      for (int m = 0; m < r.count; ++m) {
        const std::size_t n = r.n0 + static_cast<std::size_t>(m);
        const double chi = 2.0 * D_ * g[n] * g[n];
        int b = static_cast<int>(z[n] * bins_);
        b = std::clamp(b, 0, bins_ - 1);
        const std::size_t bi = static_cast<std::size_t>(b);
        cnt_l_[bi] += 1.0;
        sum_l_[bi] += chi;
        sum2_l_[bi] += chi * chi;
        chi_sum_l_ += chi;
        chi_max_l_ = std::max(chi_max_l_, chi);
      }
    });
  }

  void finish(const AnalysisContext& ctx) override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    std::vector<double> red(3 * nb + 2);
    std::copy(cnt_l_.begin(), cnt_l_.end(), red.begin());
    std::copy(sum_l_.begin(), sum_l_.end(), red.begin() + nb);
    std::copy(sum2_l_.begin(), sum2_l_.end(), red.begin() + 2 * nb);
    red[3 * nb] = chi_sum_l_;
    double samples = 0.0;
    for (std::size_t i = 0; i < nb; ++i) samples += cnt_l_[i];
    red[3 * nb + 1] = samples;
    reduce_sum(ctx.comm, red);
    double chi_max = chi_max_l_;
    if (ctx.comm) chi_max = ctx.comm->allreduce_max(chi_max);
    for (std::size_t i = 0; i < 3 * nb; ++i) acc_[i] += red[i];
    acc_[3 * nb] += red[3 * nb];          // running chi sum
    acc_[3 * nb + 1] += red[3 * nb + 1];  // running sample count
    acc_[3 * nb + 2] = std::max(acc_[3 * nb + 2], chi_max);
    if (rank0(ctx.comm))
      trace::gauge_set("analysis.chi_max", acc_[3 * nb + 2]);
  }

  void snapshot(std::vector<double>& out) const override {
    out.insert(out.end(), acc_.begin(), acc_.end());
  }
  std::size_t restore(std::span<const double> in) override {
    S3D_REQUIRE(in.size() >= acc_.size(),
                "scalar_dissipation: snapshot block too short");
    std::copy(in.begin(), in.begin() + acc_.size(), acc_.begin());
    return acc_.size();
  }

  std::string csv() const override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    std::string out = "Z,count,chi_mean,chi_rms\n";
    for (std::size_t b = 0; b < nb; ++b) {
      const double n = acc_[b];
      const double mean = n > 0.0 ? acc_[nb + b] / n : 0.0;
      const double var =
          n > 0.0 ? std::max(acc_[2 * nb + b] / n - mean * mean, 0.0) : 0.0;
      out += num((b + 0.5) / bins_) + "," + num(n) + "," + num(mean) + "," +
             num(std::sqrt(var)) + "\n";
    }
    return out;
  }

  std::string json() const override {
    const std::size_t nb = static_cast<std::size_t>(bins_);
    const double n = acc_[3 * nb + 1];
    const double mean = n > 0.0 ? acc_[3 * nb] / n : 0.0;
    return "\"name\": \"scalar_dissipation\", \"bins\": " +
           std::to_string(bins_) + ", \"samples\": " + num(n) +
           ", \"chi_mean\": " + num(mean) +
           ", \"chi_max\": " + num(acc_[3 * nb + 2]);
  }

 private:
  int bins_;
  double D_;
  GField z_, gz_;
  std::vector<double> cnt_l_, sum_l_, sum2_l_;
  double chi_sum_l_ = 0.0, chi_max_l_ = 0.0;
  std::vector<double> acc_;  ///< [count|sum|sum2] per bin, chi_sum, n, max
};

// ---------------------------------------------------------------------------
// apriori_subgrid: box-filter a-priori subgrid stress tau_ij =
// <u_i u_j> - <u_i><u_j> and scalar flux q_i = <u_i s> - <u_i><s>
// (s = Z when streams exist, else T), sampled on cells at least `width`
// away from every non-periodic GLOBAL boundary so the sample set — and
// each cell's filter stencil — is decomposition-invariant (periodic and
// rank seams read exchanged ghost shells; the ghost width bounds the
// filter half-width).

class AprioriSubgridPass : public AnalysisPass {
 public:
  explicit AprioriSubgridPass(int width)
      : AnalysisPass("apriori_subgrid"), r_(width), acc_(6, 0.0) {}

  void prepare(const AnalysisContext& ctx) override {
    const auto& cs = ctx.cs;
    if (!cs.Y_fuel.empty() && !cs.Y_ox.empty() && cs.Z_st > 0.0) {
      scalar_label_ = "Z";
      z_ = solver::mixture_fraction_field(*cs.cfg.mech, ctx.prim,
                                          ctx.s.layout(), cs.Y_ox,
                                          cs.Y_fuel);
      scalar_ = z_.data();
    } else {
      scalar_label_ = "T";
      scalar_ = ctx.prim.T.data();
    }
  }

  void add_stages(FusedPointwise& pass, const AnalysisContext& ctx) override {
    std::fill(loc_.begin(), loc_.end(), 0.0);
    const Layout& l = ctx.s.layout();
    S3D_REQUIRE(r_ <= std::max({l.gx, l.gy, l.gz}),
                "apriori_subgrid: filter half-width exceeds the ghost width");
    const std::array<int, 3> off = ctx.s.offset();
    const std::array<int, 3> N = {ctx.cs.cfg.x.n, ctx.cs.cfg.y.n,
                                  ctx.cs.cfg.z.n};
    const std::array<bool, 3> per = {ctx.cs.cfg.x.periodic,
                                     ctx.cs.cfg.y.periodic,
                                     ctx.cs.cfg.z.periodic};
    const bool wy = l.active(1), wz = l.active(2);
    const std::ptrdiff_t sy = l.stride(1), sz = l.stride(2);
    const double* u = ctx.prim.u.data();
    const double* v = ctx.prim.v.data();
    const double* s = scalar_;
    pass.add("apriori_subgrid", [this, off, N, per, wy, wz, sy, sz, u, v,
                                 s](const RowRange& rr) {
      const int gj = off[1] + rr.j, gk = off[2] + rr.k;
      if ((wy && !per[1] && (gj < r_ || gj > N[1] - 1 - r_)) ||
          (wz && !per[2] && (gk < r_ || gk > N[2] - 1 - r_)))
        return;
      for (int m = 0; m < rr.count; ++m) {
        const int gi = off[0] + rr.i0 + m;
        if (!per[0] && (gi < r_ || gi > N[0] - 1 - r_)) continue;
        const std::size_t n = rr.n0 + static_cast<std::size_t>(m);
        double cells = 0.0;
        double mu = 0.0, mv = 0.0, ms = 0.0;
        double muu = 0.0, muv = 0.0, mvv = 0.0, mus = 0.0, mvs = 0.0;
        for (int dz = wz ? -r_ : 0; dz <= (wz ? r_ : 0); ++dz)
          for (int dy = wy ? -r_ : 0; dy <= (wy ? r_ : 0); ++dy)
            for (int dx = -r_; dx <= r_; ++dx) {
              const std::size_t q = n + static_cast<std::size_t>(
                                            dx + dy * sy + dz * sz);
              mu += u[q];
              mv += v[q];
              ms += s[q];
              muu += u[q] * u[q];
              muv += u[q] * v[q];
              mvv += v[q] * v[q];
              mus += u[q] * s[q];
              mvs += v[q] * s[q];
              cells += 1.0;
            }
        const double inv = 1.0 / cells;
        mu *= inv;
        mv *= inv;
        ms *= inv;
        loc_[0] += 1.0;
        loc_[1] += std::abs(muu * inv - mu * mu);
        loc_[2] += std::abs(muv * inv - mu * mv);
        loc_[3] += std::abs(mvv * inv - mv * mv);
        loc_[4] += std::abs(mus * inv - mu * ms);
        loc_[5] += std::abs(mvs * inv - mv * ms);
      }
    });
  }

  void finish(const AnalysisContext& ctx) override {
    std::vector<double> red(loc_.begin(), loc_.end());
    reduce_sum(ctx.comm, red);
    for (std::size_t i = 0; i < acc_.size(); ++i) acc_[i] += red[i];
    if (rank0(ctx.comm)) trace::counter_add("analysis.filtered", red[0]);
  }

  void snapshot(std::vector<double>& out) const override {
    out.insert(out.end(), acc_.begin(), acc_.end());
  }
  std::size_t restore(std::span<const double> in) override {
    S3D_REQUIRE(in.size() >= acc_.size(),
                "apriori_subgrid: snapshot block too short");
    std::copy(in.begin(), in.begin() + acc_.size(), acc_.begin());
    return acc_.size();
  }

  std::string csv() const override {
    const double n = std::max(acc_[0], 1.0);
    return "scalar,width,samples,tau_xx,tau_xy,tau_yy,q_x,q_y\n" +
           scalar_label_ + "," + std::to_string(2 * r_ + 1) + "," +
           num(acc_[0]) + "," + num(acc_[1] / n) + "," + num(acc_[2] / n) +
           "," + num(acc_[3] / n) + "," + num(acc_[4] / n) + "," +
           num(acc_[5] / n) + "\n";
  }

  std::string json() const override {
    const double n = std::max(acc_[0], 1.0);
    return "\"name\": \"apriori_subgrid\", \"scalar\": \"" + scalar_label_ +
           "\", \"width\": " + std::to_string(2 * r_ + 1) +
           ", \"samples\": " + num(acc_[0]) +
           ", \"tau_xy\": " + num(acc_[2] / n) +
           ", \"q_x\": " + num(acc_[4] / n);
  }

 private:
  int r_;
  std::string scalar_label_ = "T";
  GField z_;
  const double* scalar_ = nullptr;
  std::array<double, 6> loc_{};  ///< n, |t_xx|, |t_xy|, |t_yy|, |q_x|, |q_y|
  std::vector<double> acc_;
};

}  // namespace

// ---------------------------------------------------------------------------
// RenderAnalysis ("insitu_render")

RenderAnalysis::RenderAnalysis(std::string dir, std::string field, double lo,
                               double hi, double opacity)
    : AnalysisPass("insitu_render"),
      dir_(std::move(dir)),
      field_(std::move(field)),
      lo_(lo),
      hi_(hi),
      opacity_(opacity) {}

void RenderAnalysis::prepare(const AnalysisContext& ctx) {
  const auto& prim = ctx.prim;
  if (field_ == "T")
    ctx_field_ = &prim.T;
  else if (field_ == "rho")
    ctx_field_ = &prim.rho;
  else if (field_ == "p")
    ctx_field_ = &prim.p;
  else if (field_ == "u")
    ctx_field_ = &prim.u;
  else if (field_ == "v")
    ctx_field_ = &prim.v;
  else if (field_ == "w")
    ctx_field_ = &prim.w;
  else if (field_.rfind("Y:", 0) == 0)
    ctx_field_ = &prim.Y[static_cast<std::size_t>(
        ctx.cs.cfg.mech->index(field_.substr(2)))];
  else
    throw AnalysisError("insitu_render: unknown field '" + field_ +
                        "' (use T, rho, p, u, v, w, or Y:<species>)");
}

void RenderAnalysis::add_stages(solver::FusedPointwise& pass,
                                const AnalysisContext& ctx) {
  // Rendering reads whole fields after the traversal; it contributes no
  // row stage to the shared pass.
  (void)pass;
  (void)ctx;
}

void RenderAnalysis::finish(const AnalysisContext& ctx) {
  // Rank 0 renders its local box; a gathered global render would need a
  // collective image reduction this hook deliberately avoids.
  if (!rank0(ctx.comm) || ctx_field_ == nullptr) return;
  s3d::Timer t;
  TransferFunction tf;
  tf.opacity = opacity_;
  if (hi_ > lo_) {
    tf.lo = lo_;
    tf.hi = hi_;
  } else {
    const Layout& l = ctx_field_->layout();
    double mn = 1e300, mx = -1e300;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          const double x = (*ctx_field_)(i, j, k);
          mn = std::min(mn, x);
          mx = std::max(mx, x);
        }
    tf.lo = mn;
    tf.hi = mx > mn ? mx : mn + 1.0;
  }
  VolumeRenderer vr(2);
  Image img = vr.render({Layer{ctx_field_, tf}});
  img.write_ppm(dir_ + "/" + field_ + "_" + std::to_string(ctx.step) +
                ".ppm");
  ++frames_;
  overhead_ += t.seconds();
  if (rank0(ctx.comm)) trace::counter_add("analysis.frames", 1.0);
}

void RenderAnalysis::render_now(long step) {
  s3d::Timer t;
  for (const auto& p : products_) {
    const GField* f = p.field();
    if (!f) continue;
    VolumeRenderer vr(2);
    Image img = vr.render({Layer{f, p.tf}});
    img.write_ppm(dir_ + "/" + p.name + "_" + std::to_string(step) + ".ppm");
  }
  ++frames_;
  overhead_ += t.seconds();
}

void RenderAnalysis::snapshot(std::vector<double>& out) const {
  out.push_back(static_cast<double>(frames_));
}

std::size_t RenderAnalysis::restore(std::span<const double> in) {
  S3D_REQUIRE(!in.empty(), "insitu_render: snapshot block too short");
  frames_ = static_cast<int>(in[0]);
  return 1;
}

std::string RenderAnalysis::csv() const {
  return "frames,overhead_s\n" + std::to_string(frames_) + "," +
         num(overhead_) + "\n";
}

std::string RenderAnalysis::json() const {
  return "\"name\": \"insitu_render\", \"field\": \"" + field_ +
         "\", \"frames\": " + std::to_string(frames_);
}

// ---------------------------------------------------------------------------
// AnalysisRegistry

AnalysisRegistry& AnalysisRegistry::instance() {
  static AnalysisRegistry reg;
  return reg;
}

void AnalysisRegistry::add(AnalysisSpec spec) {
  auto [it, inserted] = map_.emplace(spec.name, std::move(spec));
  if (!inserted)
    throw AnalysisError("analysis '" + it->first + "' already registered");
}

bool AnalysisRegistry::contains(const std::string& name) const {
  return map_.count(name) != 0;
}

const AnalysisSpec& AnalysisRegistry::at(const std::string& name) const {
  auto it = map_.find(name);
  if (it == map_.end())
    throw AnalysisError("unknown analysis '" + name +
                        "' (registered: " + join(names()) + ")");
  return it->second;
}

std::vector<std::string> AnalysisRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

std::unique_ptr<AnalysisPass> AnalysisRegistry::build(
    const std::string& name, const ParamMap& overrides) const {
  const AnalysisSpec& spec = at(name);
  for (const auto& [k, v] : overrides) {
    (void)v;
    bool known = false;
    for (const auto& ps : spec.schema) known = known || ps.key == k;
    if (!known) {
      std::vector<std::string> keys;
      keys.reserve(spec.schema.size());
      for (const auto& ps : spec.schema) keys.push_back(ps.key);
      throw ConfigError("analysis." + name + "." + k,
                        "unknown parameter (known: " + join(keys) + ")");
    }
  }
  return spec.make(overrides);
}

AnalysisRegistry::AnalysisRegistry() {
  add({"conditional_means",
       "conditional mean/rms temperature binned on mixture fraction "
       "(or progress variable for premixed scenarios)",
       {{"bins", ParamSpec::Kind::integer, "32", 2, 4096, "bins"}},
       [](const ParamMap& o) {
         return std::make_unique<ConditionalMeansPass>(static_cast<int>(
             geti(o, "conditional_means", "bins", 32, 2, 4096)));
       }});
  add({"scalar_dissipation",
       "chi = 2 D |grad Z|^2 conditioned on Z, with domain mean and max",
       {{"bins", ParamSpec::Kind::integer, "32", 2, 4096, "bins"},
        {"D", ParamSpec::Kind::real, "2e-5", 1e-9, 1.0,
         "reference diffusivity [m^2/s]"}},
       [](const ParamMap& o) {
         return std::make_unique<ScalarDissipationPass>(
             static_cast<int>(
                 geti(o, "scalar_dissipation", "bins", 32, 2, 4096)),
             getr(o, "scalar_dissipation", "D", 2e-5, 1e-9, 1.0));
       }});
  add({"apriori_subgrid",
       "box-filter a-priori subgrid stress/scalar-flux magnitudes",
       {{"width", ParamSpec::Kind::integer, "2", 1, 4,
         "filter half-width [cells]"}},
       [](const ParamMap& o) {
         return std::make_unique<AprioriSubgridPass>(
             static_cast<int>(geti(o, "apriori_subgrid", "width", 2, 1, 4)));
       }});
  add({"insitu_render",
       "volume-render a primitive field to numbered PPM frames",
       {{"dir", ParamSpec::Kind::text, ".", 0, 0, "output directory"},
        {"field", ParamSpec::Kind::text, "T",
         0, 0, "T, rho, p, u, v, w, or Y:<species>"},
        {"lo", ParamSpec::Kind::real, "0", -1e300, 1e300, "transfer lo"},
        {"hi", ParamSpec::Kind::real, "0", -1e300, 1e300,
         "transfer hi (<= lo: autoscale)"},
        {"opacity", ParamSpec::Kind::real, "0.9", 0.0, 1.0, "peak opacity"}},
       [](const ParamMap& o) {
         return std::make_unique<RenderAnalysis>(
             gets(o, "dir", "."), gets(o, "field", "T"),
             getr(o, "insitu_render", "lo", 0.0, -1e300, 1e300),
             getr(o, "insitu_render", "hi", 0.0, -1e300, 1e300),
             getr(o, "insitu_render", "opacity", 0.9, 0.0, 1.0));
       }});
}

// ---------------------------------------------------------------------------
// AnalysisDriver

AnalysisDriver::AnalysisDriver(const CaseSetup& cs, AnalysisOptions opt)
    : cs_(cs), opt_(std::move(opt)) {}

void AnalysisDriver::add(const std::string& name, const ParamMap& overrides) {
  passes_.push_back(AnalysisRegistry::instance().build(name, overrides));
}

void AnalysisDriver::attach(solver::Solver& s, vmpi::Comm* comm) {
  s_ = &s;
  comm_ = comm;
}

void AnalysisDriver::on_step(long step) {
  if (s_ == nullptr || passes_.empty()) return;
  if (opt_.interval <= 0 || step % opt_.interval != 0) return;
  invoke(step);
}

void AnalysisDriver::invoke(long step) {
  S3D_REQUIRE(s_ != nullptr, "AnalysisDriver: invoke before attach");
  trace::Span sp("analysis.pass", "viz");
  // Refresh the primitive workspace (interior recompute + ghost
  // exchange); collective in parallel runs, so every rank must reach
  // this invocation — on_step keys off the shared step count.
  const solver::Prim& prim = s_->primitives();
  AnalysisContext ctx{*s_, cs_, prim, step, s_->time(), comm_};
  for (auto& p : passes_) p->prepare(ctx);
  // The fused consumer hook: ONE interior traversal carrying every
  // active analysis's row stages (DESIGN.md §10 legality: stages write
  // pairwise-disjoint per-pass scratch).
  FusedPointwise pass("analysis.pass");
  for (auto& p : passes_) p->add_stages(pass, ctx);
  if (pass.stages() > 0) pass.run_interior(s_->layout(), &stats_);
  for (auto& p : passes_) p->finish(ctx);
  ++invocations_;
  if (rank0(comm_)) trace::counter_add("analysis.invocations", 1.0);
  if (opt_.emit_every > 0 && invocations_ % opt_.emit_every == 0)
    emit(step);
}

void AnalysisDriver::snapshot(std::vector<double>& out) const {
  for (const auto& p : passes_) p->snapshot(out);
}

std::size_t AnalysisDriver::restore(std::span<const double> in) {
  std::size_t used = 0;
  for (auto& p : passes_) used += p->restore(in.subspan(used));
  return used;
}

solver::StateSidecar AnalysisDriver::sidecar() {
  solver::StateSidecar sc;
  sc.save = [this](std::vector<double>& out) { snapshot(out); };
  sc.load = [this](std::span<const double> in) { return restore(in); };
  return sc;
}

std::vector<std::string> AnalysisDriver::emit(long step) const {
  std::vector<std::string> written;
  if (!rank0(comm_)) return written;
  auto durable_write = [this](const std::string& path,
                              const std::string& text) {
    // The iosim write policy: bounded retries with linear backoff;
    // exhaustion drops the file (counted), never kills the run.
    for (int attempt = 0; attempt < std::max(opt_.emit_retries, 1);
         ++attempt) {
      try {
        if (fault::probe("analysis.emit"))
          throw Error("injected analysis.emit fault");
        solver::atomic_write_file(path, text);
        trace::counter_add("analysis.emit", 1.0);
        return true;
      } catch (const Error&) {
        trace::counter_add("analysis.emit_retry", 1.0);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            opt_.backoff_ms * (attempt + 1)));
      }
    }
    trace::counter_add("analysis.emit_drop", 1.0);
    return false;
  };
  std::string summary = "{\n  \"step\": " + std::to_string(step) +
                        ",\n  \"passes\": [\n";
  bool first = true;
  for (const auto& p : passes_) {
    const std::string path = opt_.out_dir + "/analysis_" + p->name() + "_" +
                             std::to_string(step) + ".csv";
    if (durable_write(path, p->csv())) written.push_back(path);
    if (!first) summary += ",\n";
    summary += "    {" + p->json() + "}";
    first = false;
  }
  summary += "\n  ]\n}\n";
  const std::string jpath =
      opt_.out_dir + "/analysis_summary_" + std::to_string(step) + ".json";
  if (durable_write(jpath, summary)) written.push_back(jpath);
  return written;
}

}  // namespace s3d::viz
