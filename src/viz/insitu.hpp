#pragma once
// In-situ visualization hook (paper section 8.3): renders selected fields
// while the simulation runs, sharing the solver's data structures (no
// copies of the state are taken), with decoupled image output and a
// recorded overhead so the "small overhead on top of the simulation"
// requirement can be verified.
//
// InSituVis is now a thin cadence facade over the AnalysisRegistry's
// "insitu_render" pass (DESIGN.md §15): construction goes through
// AnalysisRegistry::build, and the product list / render loop live in
// RenderAnalysis. Existing callers (examples, test_viz) keep their API.

#include <memory>
#include <string>

#include "viz/analysis.hpp"

namespace s3d::viz {

class InSituVis {
 public:
  using Product = RenderAnalysis::Product;

  /// @param out_dir   directory for numbered PPM frames
  /// @param interval  render every `interval` steps
  InSituVis(std::string out_dir, int interval);

  void add_product(Product p) { render_->add_product(std::move(p)); }

  /// Call from the solver monitor; renders when due.
  void on_step(int step);

  int frames_written() const { return render_->frames_written(); }
  /// Total seconds spent rendering (the in-situ overhead).
  double overhead_seconds() const { return render_->overhead_seconds(); }

 private:
  int interval_;
  std::unique_ptr<RenderAnalysis> render_;
};

}  // namespace s3d::viz
