#pragma once
// In-situ visualization hook (paper section 8.3): renders selected fields
// while the simulation runs, sharing the solver's data structures (no
// copies of the state are taken), with decoupled image output and a
// recorded overhead so the "small overhead on top of the simulation"
// requirement can be verified.

#include <functional>
#include <string>
#include <vector>

#include "viz/render.hpp"

namespace s3d::viz {

class InSituVis {
 public:
  /// A named rendering product: the field supplier is invoked at render
  /// time so the hook always sees the live solver state.
  struct Product {
    std::string name;
    std::function<const solver::GField*()> field;
    TransferFunction tf;
  };

  /// @param out_dir   directory for numbered PPM frames
  /// @param interval  render every `interval` steps
  InSituVis(std::string out_dir, int interval)
      : dir_(std::move(out_dir)), interval_(interval) {}

  void add_product(Product p) { products_.push_back(std::move(p)); }

  /// Call from the solver monitor; renders when due.
  void on_step(int step);

  int frames_written() const { return frames_; }
  /// Total seconds spent rendering (the in-situ overhead).
  double overhead_seconds() const { return overhead_; }

 private:
  std::string dir_;
  int interval_;
  std::vector<Product> products_;
  int frames_ = 0;
  double overhead_ = 0.0;
};

}  // namespace s3d::viz
