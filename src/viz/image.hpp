#pragma once
// Minimal RGB image with PPM output (the renderer's target).

#include <cstdint>
#include <string>
#include <vector>

namespace s3d::viz {

struct Rgb {
  double r = 0, g = 0, b = 0;
  Rgb operator+(const Rgb& o) const { return {r + o.r, g + o.g, b + o.b}; }
  Rgb operator*(double s) const { return {r * s, g * s, b * s}; }
};

class Image {
 public:
  Image(int w, int h, Rgb fill = {0, 0, 0})
      : w_(w), h_(h), px_(static_cast<std::size_t>(w) * h, fill) {}

  int width() const { return w_; }
  int height() const { return h_; }
  Rgb& at(int x, int y) { return px_[static_cast<std::size_t>(y) * w_ + x]; }
  const Rgb& at(int x, int y) const {
    return px_[static_cast<std::size_t>(y) * w_ + x];
  }

  /// Write a binary PPM (P6); channel values clamped to [0, 1].
  void write_ppm(const std::string& path) const;

 private:
  int w_, h_;
  std::vector<Rgb> px_;
};

/// Colormaps used by the combustion visualizations.
Rgb colormap_hot(double t);      ///< black-red-yellow-white
Rgb colormap_cool(double t);     ///< blue-cyan-white
Rgb colormap_viridis(double t);  ///< perceptually uniform (approximate)

}  // namespace s3d::viz
