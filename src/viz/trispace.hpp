#pragma once
// The trispace exploration interface's data backends (paper section 8.2,
// fig. 15): parallel coordinates over multiple variables, per-variable
// time histograms, and brushing (value-window selection) with spatial
// correlation queries -- e.g. the negative correlation between scalar
// dissipation rate chi and OH near the stoichiometric isosurface.

#include <functional>
#include <string>
#include <vector>

#include "solver/layout.hpp"
#include "viz/image.hpp"

namespace s3d::viz {

/// A named variable with its display window.
struct VarAxis {
  std::string name;
  const solver::GField* field = nullptr;
  double lo = 0.0, hi = 1.0;
};

/// Value-window brush on one variable (the fig. 15 "transfer function
/// widgets ... used as the brushing tool").
struct Brush {
  int axis = 0;
  double lo = 0.0, hi = 1.0;
};

/// Parallel-coordinates density: for each adjacent axis pair, a 2-D bin
/// count of the polylines passing from one axis to the next.
class ParallelCoords {
 public:
  ParallelCoords(std::vector<VarAxis> axes, int nbins = 64);

  /// Accumulate every interior point that passes all brushes.
  void accumulate(const std::vector<Brush>& brushes = {});

  int nbins() const { return nbins_; }
  int naxes() const { return static_cast<int>(axes_.size()); }
  /// Density between axis a and a+1 at (bin_a, bin_a1).
  long density(int a, int bin_a, int bin_a1) const;
  long total_selected() const { return total_; }

  /// Render all pairs side by side as a density heat map.
  Image render(int cell = 4) const;

 private:
  std::vector<VarAxis> axes_;
  int nbins_;
  long total_ = 0;
  std::vector<std::vector<long>> pair_bins_;  ///< per pair, nbins*nbins
};

/// Time histogram of one variable (fig. 15's temporal view).
class TimeHistogram {
 public:
  TimeHistogram(double lo, double hi, int nbins);

  /// Append one snapshot of the variable.
  void add_snapshot(const solver::GField& f);

  int nsnapshots() const { return static_cast<int>(hist_.size()); }
  int nbins() const { return nbins_; }
  long count(int snapshot, int bin) const { return hist_[snapshot][bin]; }

  Image render(int cell = 4) const;

 private:
  double lo_, hi_;
  int nbins_;
  std::vector<std::vector<long>> hist_;
};

/// Pearson correlation of two fields over the interior points selected by
/// `mask` (mask may be null to select everything).
double masked_correlation(const solver::GField& a, const solver::GField& b,
                          const std::function<bool(int, int, int)>& mask);

/// Convenience mask: points within `width` of iso-value of a field (the
/// "near the isosurface of mixture fraction" selection).
std::function<bool(int, int, int)> near_iso_mask(const solver::GField& f,
                                                 double iso, double width);

}  // namespace s3d::viz
