#include "viz/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/error.hpp"

namespace s3d::viz {

void Image::write_ppm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  f << "P6\n" << w_ << " " << h_ << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(w_) * 3);
  for (int y = 0; y < h_; ++y) {
    for (int x = 0; x < w_; ++x) {
      const Rgb& p = at(x, y);
      row[3 * x + 0] = static_cast<unsigned char>(
          std::clamp(p.r, 0.0, 1.0) * 255.0 + 0.5);
      row[3 * x + 1] = static_cast<unsigned char>(
          std::clamp(p.g, 0.0, 1.0) * 255.0 + 0.5);
      row[3 * x + 2] = static_cast<unsigned char>(
          std::clamp(p.b, 0.0, 1.0) * 255.0 + 0.5);
    }
    f.write(reinterpret_cast<const char*>(row.data()), row.size());
  }
}

Rgb colormap_hot(double t) {
  t = std::clamp(t, 0.0, 1.0);
  return {std::min(1.0, 3.0 * t), std::clamp(3.0 * t - 1.0, 0.0, 1.0),
          std::clamp(3.0 * t - 2.0, 0.0, 1.0)};
}

Rgb colormap_cool(double t) {
  t = std::clamp(t, 0.0, 1.0);
  return {t * 0.4, 0.5 * t + 0.4 * t * t, std::min(1.0, 0.5 + 0.7 * t)};
}

Rgb colormap_viridis(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Cubic fits to the viridis control points (adequate for rendering).
  const double r = 0.267 + t * (0.005 + t * (-1.38 + t * 2.09));
  const double g = 0.005 + t * (1.40 + t * (-0.85 + t * 0.35));
  const double b = 0.329 + t * (1.50 + t * (-4.00 + t * 2.30));
  return {std::clamp(r, 0.0, 1.0), std::clamp(g, 0.0, 1.0),
          std::clamp(b, 0.0, 1.0)};
}

}  // namespace s3d::viz
