#pragma once
// One-dimensional freely-propagating laminar premixed flame solver -- the
// stand-in for PREMIX (paper ref. [38]), used to produce the unstrained
// laminar reference quantities of section 7.2 / Table 1:
//   S_L      laminar flame speed (consumption speed),
//   delta_L  thermal thickness from the maximum temperature gradient,
//   delta_H  FWHM of the heat-release-rate profile,
//   tau_f    flame time scale delta_L / S_L.
//
// Method: isobaric (low-Mach) unsteady flame in the lab frame with the
// unburnt side at rest; Strang splitting with pointwise adaptive chemistry
// (ConstPressureReactor kernels) around explicit conservative transport;
// velocity from the integrated continuity constraint. The flame is ignited
// against the burnt side and marched until the consumption speed is
// quasi-steady.

#include <span>
#include <vector>

#include "chem/mechanism.hpp"

namespace s3d::premix1d {

struct Options {
  int n = 400;               ///< grid points
  double length = 0.02;      ///< domain length [m]
  double t_max = 0.05;       ///< give-up horizon [s]
  double steady_tol = 0.01;  ///< relative S_L drift defining "steady"
  int check_interval = 200;  ///< steps between steadiness checks
  double cfl_diff = 0.35;    ///< diffusive stability number
  /// Index of the fuel species for the consumption-speed integral; -1
  /// autodetects (first species containing C or H2).
  int fuel_index = -1;
};

struct FlameSolution {
  double S_L = 0.0;       ///< consumption speed [m/s]
  double delta_L = 0.0;   ///< thermal thickness [m]
  double delta_H = 0.0;   ///< heat-release FWHM [m]
  double T_burnt = 0.0;   ///< product temperature [K]
  double tau_f() const { return S_L > 0.0 ? delta_L / S_L : 0.0; }
  bool converged = false;
  std::vector<double> x;  ///< grid [m]
  std::vector<double> T;  ///< temperature profile [K]
  std::vector<double> hrr;  ///< heat release rate [W/m^3]
  std::vector<std::vector<double>> Y;  ///< Y[s][i]
};

/// Solve a freely propagating premixed flame at pressure p with unburnt
/// state (T_u, Y_u).
FlameSolution solve_premixed_flame(const chem::Mechanism& mech, double p,
                                   double T_u, std::span<const double> Y_u,
                                   const Options& opt = {});

}  // namespace s3d::premix1d
