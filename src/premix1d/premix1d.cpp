#include "premix1d/premix1d.hpp"

#include <algorithm>
#include <cmath>

#include "chem/reactor.hpp"
#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "transport/transport.hpp"

namespace s3d::premix1d {

using constants::Ru;

namespace {

int autodetect_fuel(const chem::Mechanism& mech) {
  for (int s = 0; s < mech.n_species(); ++s) {
    const auto& el = mech.species(s).elements;
    if (el.C > 0) return s;
  }
  const int ih2 = mech.find("H2");
  S3D_REQUIRE(ih2 >= 0, "could not autodetect a fuel species");
  return ih2;
}

}  // namespace

FlameSolution solve_premixed_flame(const chem::Mechanism& mech, double p,
                                   double T_u, std::span<const double> Y_u,
                                   const Options& opt) {
  const int ns = mech.n_species();
  const int n = opt.n;
  const double h = opt.length / (n - 1);
  const int i_fuel =
      opt.fuel_index >= 0 ? opt.fuel_index : autodetect_fuel(mech);

  transport::TransportFits fits(mech);

  // Burnt reference state for ignition and the consumption integral.
  auto [T_b0, Y_b] = chem::equilibrium_products(mech, 1600.0, p, Y_u, 0.05);
  const double h_u = mech.h_mass_mix(T_u, Y_u);
  const double T_ad = mech.T_from_h(h_u, Y_b, T_b0);

  // Fields.
  std::vector<double> T(n), u(n, 0.0), rho(n);
  std::vector<std::vector<double>> Y(ns, std::vector<double>(n));
  // Ignite against the right end: burnt for x > 0.7 L.
  for (int i = 0; i < n; ++i) {
    const double x = i * h;
    const double f = 0.5 * (1.0 + std::tanh((x - 0.7 * opt.length) /
                                            (4.0 * h)));
    T[i] = T_u + (T_ad - T_u) * f;
    for (int s = 0; s < ns; ++s) Y[s][i] = Y_u[s] + (Y_b[s] - Y_u[s]) * f;
  }

  auto density = [&](int i) {
    double Yp[chem::kMaxSpecies];
    for (int s = 0; s < ns; ++s) Yp[s] = Y[s][i];
    return mech.density(p, T[i], {Yp, static_cast<std::size_t>(ns)});
  };
  for (int i = 0; i < n; ++i) rho[i] = density(i);
  const double rho_u = rho[0];

  // Work arrays.
  std::vector<double> lam(n), cp(n), drho_dt(n), dT(n);
  std::vector<std::vector<double>> D(ns, std::vector<double>(n));
  std::vector<std::vector<double>> dY(ns, std::vector<double>(n));

  auto update_props = [&]() {
    double X[chem::kMaxSpecies], Yp[chem::kMaxSpecies],
        Dm[chem::kMaxSpecies];
    for (int i = 0; i < n; ++i) {
      for (int s = 0; s < ns; ++s) Yp[s] = Y[s][i];
      const double Wb = mech.mean_W_from_Y({Yp, static_cast<std::size_t>(ns)});
      for (int s = 0; s < ns; ++s) X[s] = Yp[s] * Wb / mech.W(s);
      lam[i] = fits.mixture_conductivity(T[i], {X, static_cast<std::size_t>(ns)});
      cp[i] = mech.cp_mass_mix(T[i], {Yp, static_cast<std::size_t>(ns)});
      fits.mixture_diffusion(T[i], p, {X, static_cast<std::size_t>(ns)},
                             {Dm, static_cast<std::size_t>(ns)});
      for (int s = 0; s < ns; ++s) D[s][i] = Dm[s];
      rho[i] = density(i);
    }
  };

  // Transport RHS (diffusion + convection with the current u). Uses
  // conservative half-node fluxes; 2nd order.
  auto transport_rhs = [&]() {
    for (int i = 1; i < n - 1; ++i) {
      // Species diffusion with the mixture-averaged correction velocity.
      double sumJ_p = 0.0, sumJ_m = 0.0;  // at i+1/2 and i-1/2
      double Jp[chem::kMaxSpecies], Jm[chem::kMaxSpecies];
      for (int s = 0; s < ns; ++s) {
        const double rDp = 0.5 * (rho[i] * D[s][i] + rho[i + 1] * D[s][i + 1]);
        const double rDm = 0.5 * (rho[i] * D[s][i] + rho[i - 1] * D[s][i - 1]);
        Jp[s] = -rDp * (Y[s][i + 1] - Y[s][i]) / h;
        Jm[s] = -rDm * (Y[s][i] - Y[s][i - 1]) / h;
        sumJ_p += Jp[s];
        sumJ_m += Jm[s];
      }
      for (int s = 0; s < ns; ++s) {
        const double Yp_face = 0.5 * (Y[s][i] + Y[s][i + 1]);
        const double Ym_face = 0.5 * (Y[s][i] + Y[s][i - 1]);
        const double Jp_c = Jp[s] - Yp_face * sumJ_p;
        const double Jm_c = Jm[s] - Ym_face * sumJ_m;
        const double conv = -u[i] * (Y[s][i + 1] - Y[s][i - 1]) / (2 * h);
        dY[s][i] = conv - (Jp_c - Jm_c) / (h * rho[i]);
      }
      // Temperature: conduction + convection (+ enthalpy flux of species
      // diffusion, the Sum cp_s J_s dT/dx term).
      const double lp = 0.5 * (lam[i] + lam[i + 1]);
      const double lm = 0.5 * (lam[i] + lam[i - 1]);
      const double cond =
          (lp * (T[i + 1] - T[i]) - lm * (T[i] - T[i - 1])) / (h * h);
      double jcp = 0.0;
      for (int s = 0; s < ns; ++s) {
        const double cps = chem::cp_mass(mech.species(s), T[i]);
        jcp += cps * 0.5 * (Jp[s] + Jm[s]);
      }
      const double dTdx = (T[i + 1] - T[i - 1]) / (2 * h);
      dT[i] = -u[i] * dTdx + (cond - jcp * dTdx) / (rho[i] * cp[i]);
    }
    // Boundaries: left held at the unburnt state, right zero-gradient.
    dT[0] = 0.0;
    dT[n - 1] = dT[n - 2];
    for (int s = 0; s < ns; ++s) {
      dY[s][0] = 0.0;
      dY[s][n - 1] = dY[s][n - 2];
    }
  };

  // Velocity from continuity: rho u(x) = -int_0^x drho/dt dx', u(0) = 0.
  auto update_velocity = [&]() {
    for (int i = 0; i < n; ++i) {
      double Yp[chem::kMaxSpecies], sYW = 0.0;
      for (int s = 0; s < ns; ++s) {
        Yp[s] = Y[s][i];
        sYW += dY[s][i] / mech.W(s);
      }
      const double Wb = mech.mean_W_from_Y({Yp, static_cast<std::size_t>(ns)});
      const double Wb_t = -Wb * Wb * sYW;
      drho_dt[i] = rho[i] * (Wb_t / Wb - dT[i] / T[i]);
    }
    double flux = 0.0;
    u[0] = 0.0;
    for (int i = 1; i < n; ++i) {
      flux -= 0.5 * (drho_dt[i] + drho_dt[i - 1]) * h;
      u[i] = flux / rho[i];
    }
  };

  // Consumption speed from the fuel burning-rate integral.
  std::vector<double> c_loc(ns), wdot(ns);
  auto consumption_speed = [&]() {
    double integral = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int s = 0; s < ns; ++s)
        c_loc[s] = rho[i] * std::max(Y[s][i], 0.0) / mech.W(s);
      mech.production_rates(T[i], c_loc, wdot);
      integral += -wdot[i_fuel] * mech.W(i_fuel) * h;
    }
    const double dYf = Y_u[i_fuel] - Y_b[i_fuel];
    return dYf > 1e-300 ? integral / (rho_u * dYf) : 0.0;
  };

  // March.
  double t = 0.0;
  double S_prev = -1.0;
  int steps = 0;
  bool converged = false;
  while (t < opt.t_max) {
    update_props();
    // Diffusive-stability time step.
    double dmax = 1e-300;
    for (int i = 0; i < n; ++i) {
      dmax = std::max(dmax, lam[i] / (rho[i] * cp[i]));
      for (int s = 0; s < ns; ++s) dmax = std::max(dmax, D[s][i]);
    }
    const double dt = opt.cfl_diff * h * h / (2.0 * dmax);

    // Strang: half chemistry, full transport (Heun), half chemistry.
    auto chem_half = [&]() {
      double Yp[chem::kMaxSpecies];
      chem::ConstPressureReactor reactor(mech, p);
      for (int i = 1; i < n; ++i) {
        for (int s = 0; s < ns; ++s) Yp[s] = std::max(Y[s][i], 0.0);
        reactor.set_state(T[i], {Yp, static_cast<std::size_t>(ns)});
        reactor.advance(0.5 * dt, 1e-6, 1e-10);
        T[i] = reactor.T();
        for (int s = 0; s < ns; ++s) Y[s][i] = reactor.Y()[s];
      }
    };

    chem_half();
    update_props();
    transport_rhs();
    update_velocity();
    transport_rhs();  // convection now sees the updated velocity
    // Forward-Euler transport update (dt is diffusion-limited anyway).
    for (int i = 0; i < n; ++i) {
      T[i] += dt * dT[i];
      double sum = 0.0;
      for (int s = 0; s < ns; ++s) {
        Y[s][i] = std::max(Y[s][i] + dt * dY[s][i], 0.0);
        sum += Y[s][i];
      }
      for (int s = 0; s < ns; ++s) Y[s][i] /= sum;
    }
    chem_half();

    t += dt;
    ++steps;
    if (steps % opt.check_interval == 0) {
      update_props();
      const double S = consumption_speed();
      // Find the flame front (max |dT/dx|) and require it to stay away
      // from the domain ends.
      int i_front = 1;
      double g_max = 0.0;
      for (int i = 1; i < n - 1; ++i) {
        const double g = std::abs(T[i + 1] - T[i - 1]) / (2 * h);
        if (g > g_max) {
          g_max = g;
          i_front = i;
        }
      }
      if (i_front < n / 8) break;  // flame about to hit the fresh end
      if (S_prev > 0.0 && std::abs(S - S_prev) < opt.steady_tol * S &&
          S > 0.0) {
        converged = true;
        break;
      }
      S_prev = S;
    }
  }

  // Assemble the solution.
  FlameSolution sol;
  update_props();
  sol.converged = converged;
  sol.S_L = consumption_speed();
  sol.T_burnt = T[n - 1];
  sol.x.resize(n);
  sol.T = T;
  sol.hrr.resize(n);
  double g_max = 0.0;
  for (int i = 0; i < n; ++i) {
    sol.x[i] = i * h;
    for (int s = 0; s < ns; ++s)
      c_loc[s] = rho[i] * std::max(Y[s][i], 0.0) / mech.W(s);
    sol.hrr[i] = mech.heat_release_rate(T[i], c_loc);
    if (i > 0 && i < n - 1)
      g_max = std::max(g_max, std::abs(T[i + 1] - T[i - 1]) / (2 * h));
  }
  sol.delta_L = g_max > 0.0 ? (sol.T_burnt - T_u) / g_max : 0.0;
  // FWHM of the heat release profile.
  const double hrr_max = *std::max_element(sol.hrr.begin(), sol.hrr.end());
  int i_lo = -1, i_hi = -1;
  for (int i = 0; i < n; ++i) {
    if (sol.hrr[i] >= 0.5 * hrr_max) {
      if (i_lo < 0) i_lo = i;
      i_hi = i;
    }
  }
  sol.delta_H = i_lo >= 0 ? (i_hi - i_lo + 1) * h : 0.0;
  sol.Y.assign(ns, {});
  for (int s = 0; s < ns; ++s) sol.Y[s] = Y[s];
  return sol;
}

}  // namespace s3d::premix1d
