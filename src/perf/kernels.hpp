#pragma once
// The diffusive-flux loop nest of paper fig. 4, in two forms:
//
//   run_naive      -- the code as "naturally written" in Fortran-90 array
//                     syntax: every array statement is its own sweep over
//                     the 3-D grid with materialized temporaries, and the
//                     barodiffusion / thermal-diffusion conditionals sit
//                     inside the DIRECTION x SPECIES loops. Each sweep
//                     evicts the previous one's data from cache, so the
//                     kernel is memory-bandwidth bound (the paper measured
//                     4% of peak).
//   run_optimized  -- the LoopTool-transformed version of fig. 5:
//                     conditionals unswitched out of the loop nest, the
//                     array statements scalarized and fused into a single
//                     triple loop, the DIRECTION loop fully unrolled (3x)
//                     and the SPECIES loop unrolled-and-jammed by 2, so
//                     every loaded value is reused while in register/cache.
//
// Both forms compute identical values (tests compare checksums); the
// benchmark measures the speedup (paper: 2.94x on a Cray XD1).

#include <cstddef>
#include <vector>

namespace s3d::perf {

/// Inputs/outputs of the diffusive-flux computation on an n^3 grid with
/// `nsp` species: diffFlux(:,:,:,n,m) for m = 0..2 directions.
struct DiffFluxArrays {
  int n = 50;
  int nsp = 9;
  std::size_t pts() const { return static_cast<std::size_t>(n) * n * n; }

  // Inputs (SoA: [species or direction][point]).
  std::vector<double> rho, mixMW, p_grad[3], mixMW_grad[3];
  std::vector<double> Ys, Ds, grad_Ys[3];  // [n * pts] species-major
  // Output: [m][n * pts].
  std::vector<double> diffFlux[3];

  /// Allocate and fill with a deterministic smooth pattern.
  void init(int n_grid, int n_species);
};

/// Flags matching fig. 4's BARO_SWITCH and THERMDIFF_SWITCH conditionals.
struct DiffFluxSwitches {
  bool baro = false;
  bool therm_diff = false;
};

void run_naive(DiffFluxArrays& a, const DiffFluxSwitches& sw);
void run_optimized(DiffFluxArrays& a, const DiffFluxSwitches& sw);

/// Checksum of the output (for the equality tests).
double checksum(const DiffFluxArrays& a);

}  // namespace s3d::perf
