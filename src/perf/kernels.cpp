#include "perf/kernels.hpp"

#include <cmath>

namespace s3d::perf {

void DiffFluxArrays::init(int n_grid, int n_species) {
  n = n_grid;
  nsp = n_species;
  const std::size_t np = pts();
  auto fill = [&](std::vector<double>& v, std::size_t count, double phase) {
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i)
      v[i] = 1.0 + 0.3 * std::sin(1e-3 * static_cast<double>(i) + phase);
  };
  fill(rho, np, 0.1);
  fill(mixMW, np, 0.2);
  for (int m = 0; m < 3; ++m) {
    fill(p_grad[m], np, 0.3 + m);
    fill(mixMW_grad[m], np, 0.4 + m);
    diffFlux[m].assign(np * nsp, 0.0);
  }
  fill(Ys, np * nsp, 0.5);
  fill(Ds, np * nsp, 0.6);
  for (int m = 0; m < 3; ++m) fill(grad_Ys[m], np * nsp, 0.7 + m);
}

// --- naive: one full-grid sweep per Fortran-90 array statement ---

void run_naive(DiffFluxArrays& a, const DiffFluxSwitches& sw) {
  const std::size_t np = a.pts();
  std::vector<double> tmp(np);  // the compiler's scalarization temporary

  for (int m = 0; m < 3; ++m) {
    double* fluxN = a.diffFlux[m].data() + np * (a.nsp - 1);
    for (std::size_t i = 0; i < np; ++i) fluxN[i] = 0.0;

    for (int n = 0; n < a.nsp - 1; ++n) {
      const double* ys = a.Ys.data() + np * n;
      const double* ds = a.Ds.data() + np * n;
      const double* gys = a.grad_Ys[m].data() + np * n;
      double* flux = a.diffFlux[m].data() + np * n;

      // stmt 1: tmp = grad_Ys(:,:,:,n,m)
      for (std::size_t i = 0; i < np; ++i) tmp[i] = gys[i];
      // stmt 2: tmp = tmp + Ys*grad(mixMW)/mixMW
      for (std::size_t i = 0; i < np; ++i)
        tmp[i] += ys[i] * a.mixMW_grad[m][i] / a.mixMW[i];
      // stmt 3: diffFlux = -rho*Ds*tmp
      for (std::size_t i = 0; i < np; ++i)
        flux[i] = -a.rho[i] * ds[i] * tmp[i];
      // conditionals evaluated inside the nest, each its own sweep
      if (sw.baro) {
        for (std::size_t i = 0; i < np; ++i)
          flux[i] -= a.rho[i] * ds[i] * ys[i] * a.p_grad[m][i];
      }
      if (sw.therm_diff) {
        for (std::size_t i = 0; i < np; ++i)
          flux[i] -= 0.5 * ds[i] * ys[i] * a.p_grad[m][i];
      }
      // stmt 4: last species balances the sum (eq. 15)
      for (std::size_t i = 0; i < np; ++i) fluxN[i] -= flux[i];
    }
  }
}

// --- optimized: unswitched + scalarized + fused + unroll-and-jam ---
//
// Mirrors fig. 5's transformed structure: the conditionals are unswitched
// into four customized nests (here: template instantiations), the array
// statements are scalarized and fused into one sweep, the SPECIES loop is
// unrolled-and-jammed by 2 ("n=1,nspec-2,2" in the figure) with a peeled
// remainder, and the DIRECTION loop is fully unrolled inside the sweep so
// rho, 1/mixMW and the per-direction gradients are loaded once and reused
// from registers.

namespace {

template <bool Baro, bool Therm>
void optimized_impl(DiffFluxArrays& a) {
  const std::size_t np = a.pts();
  const int nsp1 = a.nsp - 1;

  for (int m = 0; m < 3; ++m) {
    double* fN = a.diffFlux[m].data() + np * (a.nsp - 1);
    for (std::size_t i = 0; i < np; ++i) fN[i] = 0.0;
  }

  for (int n = 0; n < nsp1; n += 2) {
    const bool pair = n + 1 < nsp1;
    const double* ys0 = a.Ys.data() + np * n;
    const double* ds0 = a.Ds.data() + np * n;
    const double* ys1 = a.Ys.data() + np * (n + 1);
    const double* ds1 = a.Ds.data() + np * (n + 1);
    const double* g0[3] = {a.grad_Ys[0].data() + np * n,
                           a.grad_Ys[1].data() + np * n,
                           a.grad_Ys[2].data() + np * n};
    const double* g1[3] = {a.grad_Ys[0].data() + np * (n + 1),
                           a.grad_Ys[1].data() + np * (n + 1),
                           a.grad_Ys[2].data() + np * (n + 1)};
    double* f0[3] = {a.diffFlux[0].data() + np * n,
                     a.diffFlux[1].data() + np * n,
                     a.diffFlux[2].data() + np * n};
    double* f1[3] = {a.diffFlux[0].data() + np * (n + 1),
                     a.diffFlux[1].data() + np * (n + 1),
                     a.diffFlux[2].data() + np * (n + 1)};
    double* fN[3] = {a.diffFlux[0].data() + np * nsp1,
                     a.diffFlux[1].data() + np * nsp1,
                     a.diffFlux[2].data() + np * nsp1};

    if (pair) {
      for (std::size_t i = 0; i < np; ++i) {
        const double inv = 1.0 / a.mixMW[i];
        const double r = a.rho[i];
        const double rd0 = r * ds0[i], y0 = ys0[i];
        const double rd1 = r * ds1[i], y1 = ys1[i];
        for (int m = 0; m < 3; ++m) {  // fully unrolled by the compiler
          const double gw = a.mixMW_grad[m][i] * inv;
          double fa = -rd0 * (g0[m][i] + y0 * gw);
          double fb = -rd1 * (g1[m][i] + y1 * gw);
          if constexpr (Baro) {
            const double gp = a.p_grad[m][i];
            fa -= rd0 * y0 * gp;
            fb -= rd1 * y1 * gp;
          }
          if constexpr (Therm) {
            const double gp = a.p_grad[m][i];
            fa -= 0.5 * ds0[i] * y0 * gp;
            fb -= 0.5 * ds1[i] * y1 * gp;
          }
          f0[m][i] = fa;
          f1[m][i] = fb;
          fN[m][i] -= fa + fb;
        }
      }
    } else {
      // Peeled remainder iteration (even nsp: one species left over).
      for (std::size_t i = 0; i < np; ++i) {
        const double inv = 1.0 / a.mixMW[i];
        const double rd0 = a.rho[i] * ds0[i], y0 = ys0[i];
        for (int m = 0; m < 3; ++m) {
          const double gw = a.mixMW_grad[m][i] * inv;
          double fa = -rd0 * (g0[m][i] + y0 * gw);
          if constexpr (Baro) fa -= rd0 * y0 * a.p_grad[m][i];
          if constexpr (Therm) fa -= 0.5 * ds0[i] * y0 * a.p_grad[m][i];
          f0[m][i] = fa;
          fN[m][i] -= fa;
        }
      }
    }
  }
}

}  // namespace

void run_optimized(DiffFluxArrays& a, const DiffFluxSwitches& sw) {
  // Loop unswitching: one customized nest per switch combination.
  if (sw.baro && sw.therm_diff) return optimized_impl<true, true>(a);
  if (sw.baro) return optimized_impl<true, false>(a);
  if (sw.therm_diff) return optimized_impl<false, true>(a);
  return optimized_impl<false, false>(a);
}

double checksum(const DiffFluxArrays& a) {
  double s = 0.0;
  for (int m = 0; m < 3; ++m)
    for (std::size_t i = 0; i < a.diffFlux[m].size(); ++i)
      s += a.diffFlux[m][i] * (1.0 + (i % 7));
  return s;
}

}  // namespace s3d::perf
