#pragma once
// Node/cluster performance model for the Cray XT3+XT4 hybrid Jaguar
// (DESIGN.md substitution for the machine itself). The model rests on the
// paper's own findings (section 4):
//   - per-core cost splits into CPU-bound work (identical on XT3/XT4) and
//     memory-bandwidth-bound work (scales with the node's memory
//     bandwidth: XT3 6.4 GB/s, XT4 10.6 GB/s);
//   - weak scaling is flat because communication is nearest-neighbour
//     only; the per-step ghost-exchange synchronization makes a hybrid
//     run's cost the MAX over node classes, with the faster nodes
//     accumulating the difference as MPI_Wait time (fig. 2);
//   - giving XT3 nodes a 50x50x40 block instead of 50x50x50 equalizes the
//     class times, and the average cost per point then depends on the
//     XT4 fraction (fig. 3).
//
// The kernel decomposition (which fraction of the step is memory-bound)
// is CALIBRATED from real measurements of this repository's solver on the
// build host (see bench_fig1_weak_scaling), anchored to the paper's
// 55 us/point/step XT4 rate.

#include <string>
#include <vector>

namespace s3d::perf {

/// One node class of the hybrid machine.
struct NodeClass {
  std::string name;
  double mem_bw;  ///< peak memory bandwidth [B/s]
};

inline NodeClass xt3() { return {"XT3", 6.4e9}; }
inline NodeClass xt4() { return {"XT4", 10.6e9}; }

/// A solver kernel's measured share of the step and how memory-bound it
/// is (0 = pure compute, 1 = pure streaming).
struct KernelShare {
  std::string name;
  double seconds;       ///< measured on the calibration host
  double mem_fraction;  ///< fraction of this kernel that is bandwidth-bound
};

class ClusterModel {
 public:
  /// @param kernels        measured kernel decomposition (any units --
  ///                       only the relative split matters)
  /// @param anchor_cost    cost per grid point per step on `anchor`
  ///                       hardware [s] (paper: 55e-6 on XT4)
  ClusterModel(std::vector<KernelShare> kernels, double anchor_cost,
               NodeClass anchor = xt4());

  /// Cost per grid point per step on a node class [s].
  double cost(const NodeClass& nc) const;

  /// Hybrid weak-scaling cost per point per step when every core gets the
  /// same block: the synchronized max over classes present.
  double hybrid_cost(double frac_xt4) const;

  /// Fig. 3: balanced load (XT3 blocks shrunk by `xt3_shrink`, paper
  /// 40/50 = 0.8): average cost per grid point across the machine.
  double balanced_cost(double frac_xt4, double xt3_shrink = 0.8) const;

  /// Per-kernel seconds-per-step on a node class for a block of
  /// `points` grid points, plus the MPI_Wait a rank of this class incurs
  /// in an unbalanced hybrid run (fig. 2's table).
  struct KernelTime {
    std::string name;
    double seconds;
  };
  std::vector<KernelTime> kernel_breakdown(const NodeClass& nc,
                                           std::size_t points,
                                           bool hybrid_with_other) const;

  /// Fraction of the anchor step that is memory-bandwidth bound.
  double mem_fraction() const;

 private:
  std::vector<KernelShare> kernels_;
  double anchor_cost_;
  NodeClass anchor_;
  double total_measured_;
};

}  // namespace s3d::perf
