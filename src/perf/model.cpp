#include "perf/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace s3d::perf {

ClusterModel::ClusterModel(std::vector<KernelShare> kernels,
                           double anchor_cost, NodeClass anchor)
    : kernels_(std::move(kernels)),
      anchor_cost_(anchor_cost),
      anchor_(std::move(anchor)) {
  S3D_REQUIRE(!kernels_.empty() && anchor_cost > 0.0, "bad model inputs");
  total_measured_ = 0.0;
  for (const auto& k : kernels_) {
    S3D_REQUIRE(k.mem_fraction >= 0.0 && k.mem_fraction <= 1.0,
                "mem_fraction out of range for " + k.name);
    total_measured_ += k.seconds;
  }
  S3D_REQUIRE(total_measured_ > 0.0, "kernel shares sum to zero");
}

double ClusterModel::mem_fraction() const {
  double f = 0.0;
  for (const auto& k : kernels_)
    f += k.seconds / total_measured_ * k.mem_fraction;
  return f;
}

double ClusterModel::cost(const NodeClass& nc) const {
  // CPU part identical across classes; memory part scales inversely with
  // bandwidth relative to the anchor class.
  const double f = mem_fraction();
  const double scale = (1.0 - f) + f * anchor_.mem_bw / nc.mem_bw;
  return anchor_cost_ * scale;
}

double ClusterModel::hybrid_cost(double frac_xt4) const {
  if (frac_xt4 >= 1.0) return cost(xt4());
  if (frac_xt4 <= 0.0) return cost(xt3());
  // Per-step ghost-exchange sync: everyone runs at the slow class's pace.
  return std::max(cost(xt3()), cost(xt4()));
}

double ClusterModel::balanced_cost(double frac_xt4, double xt3_shrink) const {
  const double c4 = cost(xt4());
  // Points processed per core-step: XT4 full block (1), XT3 shrunk block.
  // The shrink is chosen so wall time matches; average cost per point is
  // wall time / average points.
  const double avg_points = frac_xt4 * 1.0 + (1.0 - frac_xt4) * xt3_shrink;
  return c4 / avg_points;
}

std::vector<ClusterModel::KernelTime> ClusterModel::kernel_breakdown(
    const NodeClass& nc, std::size_t points, bool hybrid_with_other) const {
  std::vector<KernelTime> out;
  const double f_anchor_to_nc =
      anchor_cost_ / total_measured_;  // measured share -> anchor seconds
  double my_total = 0.0;
  for (const auto& k : kernels_) {
    const double anchor_s = k.seconds * f_anchor_to_nc * points;
    const double scale =
        (1.0 - k.mem_fraction) + k.mem_fraction * anchor_.mem_bw / nc.mem_bw;
    out.push_back({k.name, anchor_s * scale});
    my_total += anchor_s * scale;
  }
  if (hybrid_with_other) {
    // Ranks on the faster class wait for the slower class at the exchange.
    const NodeClass other = nc.name == "XT3" ? xt4() : xt3();
    double other_total = 0.0;
    for (const auto& k : kernels_) {
      const double anchor_s = k.seconds * f_anchor_to_nc * points;
      const double scale = (1.0 - k.mem_fraction) +
                           k.mem_fraction * anchor_.mem_bw / other.mem_bw;
      other_total += anchor_s * scale;
    }
    out.push_back({"MPI_WAIT", std::max(other_total - my_total, 0.0)});
  }
  return out;
}

}  // namespace s3d::perf
