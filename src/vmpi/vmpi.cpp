#include "vmpi/vmpi.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace s3d::vmpi {

namespace {
struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> data;
};
}  // namespace

struct Request::State {
  bool is_recv = false;
  bool done = false;
  int peer = 0;  // source for recv
  int tag = 0;
  std::uint8_t* buf = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;
};

struct Comm::Hub {
  explicit Hub(int n) : nranks(n), boxes(n), slots(n, 0.0), vec_ptrs(n) {}

  int nranks;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> msgs;
  };
  std::vector<Mailbox> boxes;

  // Barrier.
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_count = 0;
  std::uint64_t bar_gen = 0;

  // Reduction scratch.
  std::vector<double> slots;
  std::vector<std::span<double>> vec_ptrs;

  std::atomic<bool> aborted{false};

  void abort_all() {
    aborted.store(true);
    for (auto& b : boxes) b.cv.notify_all();
    bar_cv.notify_all();
  }
  void check_abort() const {
    if (aborted.load()) throw Error("vmpi: a peer rank aborted");
  }
};

Comm::Comm(int rank, std::shared_ptr<Hub> hub)
    : rank_(rank), hub_(std::move(hub)) {}

int Comm::size() const { return hub_->nranks; }

Request Comm::isend_bytes(int dest, int tag,
                          std::span<const std::uint8_t> data) {
  S3D_REQUIRE(dest >= 0 && dest < size(), "isend: bad destination rank");
  auto& box = hub_->boxes[dest];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.msgs.push_back(
        Message{rank_, tag, std::vector<std::uint8_t>(data.begin(), data.end())});
  }
  box.cv.notify_all();
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->done = true;
  r.state_->len = data.size();
  return r;
}

Request Comm::irecv_bytes(int source, int tag, std::span<std::uint8_t> data) {
  S3D_REQUIRE(source >= 0 && source < size(), "irecv: bad source rank");
  Request r;
  r.state_ = std::make_shared<Request::State>();
  auto& s = *r.state_;
  s.is_recv = true;
  s.peer = source;
  s.tag = tag;
  s.buf = data.data();
  s.cap = data.size();
  return r;
}

Request Comm::isend(int dest, int tag, std::span<const double> data) {
  return isend_bytes(dest, tag,
                     {reinterpret_cast<const std::uint8_t*>(data.data()),
                      data.size() * sizeof(double)});
}

Request Comm::irecv(int source, int tag, std::span<double> data) {
  return irecv_bytes(source, tag,
                     {reinterpret_cast<std::uint8_t*>(data.data()),
                      data.size() * sizeof(double)});
}

void Comm::send(int dest, int tag, std::span<const double> data) {
  isend(dest, tag, data);
}

void Comm::recv(int source, int tag, std::span<double> data) {
  Request r = irecv(source, tag, data);
  wait(r);
}

void Comm::wait(Request& req, std::size_t* received_len) {
  S3D_REQUIRE(req.valid(), "wait on an empty request");
  auto& s = *req.state_;
  if (s.done) {
    if (received_len) *received_len = s.len;
    return;
  }
  S3D_ASSERT(s.is_recv);
  auto& box = hub_->boxes[rank_];
  std::unique_lock<std::mutex> lk(box.mu);
  for (;;) {
    hub_->check_abort();
    auto it = std::find_if(box.msgs.begin(), box.msgs.end(),
                           [&](const Message& m) {
                             return m.src == s.peer && m.tag == s.tag;
                           });
    if (it != box.msgs.end()) {
      S3D_REQUIRE(it->data.size() <= s.cap,
                  "vmpi: message longer than receive buffer");
      std::memcpy(s.buf, it->data.data(), it->data.size());
      s.len = it->data.size();
      s.done = true;
      box.msgs.erase(it);
      if (received_len) *received_len = s.len;
      return;
    }
    box.cv.wait(lk);
  }
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lk(hub_->bar_mu);
  hub_->check_abort();
  const std::uint64_t gen = hub_->bar_gen;
  if (++hub_->bar_count == hub_->nranks) {
    hub_->bar_count = 0;
    ++hub_->bar_gen;
    hub_->bar_cv.notify_all();
    return;
  }
  hub_->bar_cv.wait(lk, [&] {
    return hub_->bar_gen != gen || hub_->aborted.load();
  });
  hub_->check_abort();
}

double Comm::allreduce_sum(double v) {
  hub_->slots[rank_] = v;
  barrier();
  double s = 0.0;
  for (int r = 0; r < size(); ++r) s += hub_->slots[r];
  barrier();
  return s;
}

double Comm::allreduce_max(double v) {
  hub_->slots[rank_] = v;
  barrier();
  double s = hub_->slots[0];
  for (int r = 1; r < size(); ++r) s = std::max(s, hub_->slots[r]);
  barrier();
  return s;
}

double Comm::allreduce_min(double v) {
  hub_->slots[rank_] = v;
  barrier();
  double s = hub_->slots[0];
  for (int r = 1; r < size(); ++r) s = std::min(s, hub_->slots[r]);
  barrier();
  return s;
}

void Comm::allreduce_sum(std::span<double> v) {
  hub_->vec_ptrs[rank_] = v;
  barrier();
  std::vector<double> acc(v.size(), 0.0);
  for (int r = 0; r < size(); ++r) {
    const auto& src = hub_->vec_ptrs[r];
    S3D_REQUIRE(src.size() == v.size(), "allreduce_sum: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i) acc[i] += src[i];
  }
  barrier();  // everyone has read all inputs
  std::copy(acc.begin(), acc.end(), v.begin());
  barrier();
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  S3D_REQUIRE(nranks >= 1, "need at least one rank");
  auto hub = std::make_shared<Comm::Hub>(nranks);
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    trace::set_rank(rank);  // label this thread's trace events
    try {
      Comm comm(rank, hub);
      fn(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      hub->abort_all();
    }
  };

  threads.reserve(nranks - 1);
  for (int r = 1; r < nranks; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

Cart::Cart(Comm& comm, int px, int py, int pz, std::array<bool, 3> periodic) {
  S3D_REQUIRE(px * py * pz == comm.size(),
              "Cart: process grid does not match communicator size");
  const int rank = comm.rank();
  coords_ = {rank % px, (rank / px) % py, rank / (px * py)};
  const int p[3] = {px, py, pz};
  auto rank_of = [&](int cx, int cy, int cz) {
    return cx + px * (cy + py * cz);
  };
  for (int a = 0; a < 3; ++a) {
    for (int dir = 0; dir < 2; ++dir) {
      auto c = coords_;
      c[a] += dir == 0 ? -1 : 1;
      if (periodic[a]) c[a] = (c[a] + p[a]) % p[a];
      nb_[a][dir] = (c[a] < 0 || c[a] >= p[a]) ? -1 : rank_of(c[0], c[1], c[2]);
    }
  }
}

}  // namespace s3d::vmpi
