#include "vmpi/vmpi.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::vmpi {

namespace {
struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> data;
};
}  // namespace

struct Request::State {
  bool is_recv = false;
  bool done = false;
  int peer = 0;  // source for recv
  int tag = 0;
  std::uint8_t* buf = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;
};

struct Comm::Hub {
  explicit Hub(int n)
      : nranks(n), boxes(n), slots(n, 0.0), vec_ptrs(n), coll_hash(n, 0),
        coll_site(n), blocked_site(n) {}

  int nranks;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> msgs;
  };
  std::vector<Mailbox> boxes;

  // Barrier.
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_count = 0;
  std::uint64_t bar_gen = 0;

  // Reduction scratch.
  std::vector<double> slots;
  std::vector<std::span<double>> vec_ptrs;

  // --- Collective-order checker state (RunOptions::collective_check) ---
  bool coll_check = false;
  std::vector<std::uint64_t> coll_hash;  ///< published site ids, per rank
  std::vector<std::string> coll_site;    ///< guarded by site_mu

  // --- Progress watchdog state (DESIGN.md "Resilience") ---
  // `progress` counts every communication event that can unblock a rank
  // (message delivery, barrier completion). A blocked rank that times out
  // declares deadlock only when every live rank is blocked AND progress
  // has not advanced for a full watchdog interval; ordering matters: the
  // blocked count is read before the progress counter, so any delivery by
  // a rank observed as blocked is also observed as progress.
  double watchdog_s = 0.0;
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> nblocked{0};
  std::atomic<int> nfinished{0};
  std::mutex site_mu;  ///< guards blocked_site + failure/deadlock reports
  std::vector<std::string> blocked_site;

  std::atomic<bool> aborted{false};
  std::atomic<bool> deadlocked{false};
  int failed_rank = -1;                                 ///< guarded by site_mu
  std::string failure_what;                             ///< guarded by site_mu
  std::string deadlock_what;                            ///< guarded by site_mu
  std::vector<DeadlockError::BlockedRank> deadlock_rk;  ///< guarded by site_mu

  void abort_all() {
    aborted.store(true);
    for (auto& b : boxes) {
      std::lock_guard<std::mutex> lk(b.mu);
      b.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lk(bar_mu);
      bar_cv.notify_all();
    }
  }

  void record_failure(int rank, const std::string& what) {
    {
      std::lock_guard<std::mutex> lk(site_mu);
      if (failed_rank < 0) {
        failed_rank = rank;
        failure_what = what;
      }
    }
    abort_all();
  }

  void check_abort() {
    if (deadlocked.load()) {
      std::lock_guard<std::mutex> lk(site_mu);
      throw DeadlockError(deadlock_what, deadlock_rk);
    }
    if (aborted.load()) {
      std::lock_guard<std::mutex> lk(site_mu);
      throw RankFailure(failed_rank,
                        failure_what.empty() ? "unknown" : failure_what);
    }
  }

  /// Called by a blocked rank whose watchdog interval expired with no
  /// progress while every live rank was blocked. Builds the per-rank
  /// report and aborts the run. `held` is the caller's mailbox/barrier
  /// lock: it must be released before abort_all re-acquires every lock.
  [[noreturn]] void declare_deadlock(std::unique_lock<std::mutex>& held) {
    std::vector<DeadlockError::BlockedRank> ranks;
    std::string what = "vmpi: deadlock detected (no communication progress "
                       "with all live ranks blocked):";
    {
      std::lock_guard<std::mutex> lk(site_mu);
      for (int r = 0; r < nranks; ++r) {
        std::string site = blocked_site[r];
        if (site.empty()) site = "running";
        what += " rank " + std::to_string(r) + ": " + site + ";";
        ranks.push_back({r, std::move(site)});
      }
      deadlock_what = what;
      deadlock_rk = ranks;
    }
    trace::counter_add("vmpi.deadlock", 1.0);
    deadlocked.store(true);
    held.unlock();
    abort_all();
    throw DeadlockError(what, std::move(ranks));
  }

  /// RAII registration of a rank as blocked at `site`.
  class BlockedGuard {
   public:
    BlockedGuard(Hub& h, int rank, std::string site) : h_(h), rank_(rank) {
      {
        std::lock_guard<std::mutex> lk(h_.site_mu);
        h_.blocked_site[rank_] = std::move(site);
      }
      h_.nblocked.fetch_add(1);
    }
    ~BlockedGuard() {
      h_.nblocked.fetch_sub(1);
      std::lock_guard<std::mutex> lk(h_.site_mu);
      h_.blocked_site[rank_].clear();
    }

   private:
    Hub& h_;
    int rank_;
  };

  /// One watchdog bookkeeping step after a timed-out wait: declares
  /// deadlock when warranted, otherwise refreshes `last_progress`.
  void watchdog_tick(std::unique_lock<std::mutex>& held,
                     std::uint64_t& last_progress) {
    const int live = nranks - nfinished.load();
    const int blocked = nblocked.load();
    const std::uint64_t p = progress.load();
    if (blocked >= live && p == last_progress) declare_deadlock(held);
    last_progress = p;
  }
};

Comm::Comm(int rank, std::shared_ptr<Hub> hub)
    : rank_(rank), hub_(std::move(hub)) {}

int Comm::size() const { return hub_->nranks; }

Request Comm::isend_bytes(int dest, int tag,
                          std::span<const std::uint8_t> data) {
  S3D_REQUIRE(dest >= 0 && dest < size(), "isend: bad destination rank");
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->done = true;
  r.state_->len = data.size();

  std::vector<std::uint8_t> payload(data.begin(), data.end());
  if (auto a = fault::probe("vmpi.isend")) {
    fault::apply(a, "vmpi.isend");  // Kind::fail throws, Kind::delay sleeps
    if (a.kind == fault::Kind::drop) return r;  // message lost in transit
    fault::corrupt_bytes(a, payload.data(), payload.size());
  }

  auto& box = hub_->boxes[dest];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.msgs.push_back(Message{rank_, tag, std::move(payload)});
    hub_->progress.fetch_add(1);
  }
  box.cv.notify_all();
  return r;
}

Request Comm::irecv_bytes(int source, int tag, std::span<std::uint8_t> data) {
  S3D_REQUIRE(source >= 0 && source < size(), "irecv: bad source rank");
  Request r;
  r.state_ = std::make_shared<Request::State>();
  auto& s = *r.state_;
  s.is_recv = true;
  s.peer = source;
  s.tag = tag;
  s.buf = data.data();
  s.cap = data.size();
  return r;
}

Request Comm::isend(int dest, int tag, std::span<const double> data) {
  return isend_bytes(dest, tag,
                     {reinterpret_cast<const std::uint8_t*>(data.data()),
                      data.size() * sizeof(double)});
}

Request Comm::irecv(int source, int tag, std::span<double> data) {
  return irecv_bytes(source, tag,
                     {reinterpret_cast<std::uint8_t*>(data.data()),
                      data.size() * sizeof(double)});
}

void Comm::send(int dest, int tag, std::span<const double> data) {
  isend(dest, tag, data);
}

void Comm::recv(int source, int tag, std::span<double> data) {
  Request r = irecv(source, tag, data);
  wait(r);
}

void Comm::wait(Request& req, std::size_t* received_len) {
  S3D_REQUIRE(req.valid(), "wait on an empty request");
  auto& s = *req.state_;
  if (s.done) {
    if (received_len) *received_len = s.len;
    return;
  }
  S3D_ASSERT(s.is_recv);
  auto& box = hub_->boxes[rank_];
  std::unique_lock<std::mutex> lk(box.mu);
  std::optional<Hub::BlockedGuard> guard;
  std::uint64_t last_progress = hub_->progress.load();
  for (;;) {
    hub_->check_abort();
    auto it = std::find_if(box.msgs.begin(), box.msgs.end(),
                           [&](const Message& m) {
                             return m.src == s.peer && m.tag == s.tag;
                           });
    if (it != box.msgs.end()) {
      S3D_REQUIRE(it->data.size() <= s.cap,
                  "vmpi: message longer than receive buffer");
      std::memcpy(s.buf, it->data.data(), it->data.size());
      s.len = it->data.size();
      s.done = true;
      box.msgs.erase(it);
      if (received_len) *received_len = s.len;
      return;
    }
    // About to block: register the site for the watchdog's report. Only
    // after a failed scan, so the found-immediately fast path stays free.
    if (!guard)
      guard.emplace(*hub_, rank_,
                    "irecv(src=" + std::to_string(s.peer) +
                        ", tag=" + std::to_string(s.tag) + ")");
    if (hub_->watchdog_s <= 0.0) {
      box.cv.wait(lk);
    } else if (box.cv.wait_for(lk, std::chrono::duration<double>(
                                       hub_->watchdog_s)) ==
               std::cv_status::timeout) {
      hub_->watchdog_tick(lk, last_progress);
    }
  }
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::barrier(std::source_location loc) {
  collective_check("barrier", loc);
  barrier_body();
}

// The pre-refactor barrier(): fault probe + rendezvous. The allreduce
// internals call this (not the public barrier) so their per-collective
// vmpi.collective probe counts — which seeded fault schedules in the
// resilience tier depend on — are unchanged, and so the checker's own
// agreement barriers can't recurse into another check.
void Comm::barrier_body() {
  if (auto a = fault::probe("vmpi.collective"))
    fault::apply(a, "vmpi.collective");
  barrier_raw();
}

// Pure rendezvous: no fault probe, no checker. The collective-order
// checker's agreement phases ride on this so arming the checker never
// perturbs a seeded vmpi.collective fault schedule.
void Comm::barrier_raw() {
  std::unique_lock<std::mutex> lk(hub_->bar_mu);
  hub_->check_abort();
  const std::uint64_t gen = hub_->bar_gen;
  if (++hub_->bar_count == hub_->nranks) {
    hub_->bar_count = 0;
    ++hub_->bar_gen;
    hub_->progress.fetch_add(1);
    hub_->bar_cv.notify_all();
    return;
  }
  Hub::BlockedGuard guard(*hub_, rank_, "barrier");
  std::uint64_t last_progress = hub_->progress.load();
  for (;;) {
    if (hub_->bar_gen != gen || hub_->aborted.load() ||
        hub_->deadlocked.load())
      break;
    if (hub_->watchdog_s <= 0.0) {
      hub_->bar_cv.wait(lk);
    } else if (hub_->bar_cv.wait_for(lk, std::chrono::duration<double>(
                                             hub_->watchdog_s)) ==
               std::cv_status::timeout) {
      hub_->watchdog_tick(lk, last_progress);
    }
  }
  hub_->check_abort();
}

// Pre-collective agreement on the call-site id (S3D_COLLECTIVE_CHECK).
// Protocol: every rank publishes fnv1a64("<kind> at <file>:<line>"),
// then two raw barriers bracket a snapshot read — the first makes every
// publication visible before anyone compares, the second stops a fast
// rank from re-publishing for its *next* collective while a slow rank is
// still reading this round. On divergence every rank throws the same
// CollectiveMismatchError naming the first differing pair of sites, so
// the class of bug where rank 0 sits in a barrier while rank 1 entered
// an allreduce surfaces as a typed error instead of a deadlock (or,
// worse for same-shape collectives, silently paired wrong values).
void Comm::collective_check(const char* kind, const std::source_location& loc) {
  if (!hub_->coll_check) return;
  const char* file = loc.file_name();
  if (const char* slash = std::strrchr(file, '/')) file = slash + 1;
  const std::string site = std::string(kind) + " at " + file + ":" +
                           std::to_string(loc.line());
  hub_->coll_hash[rank_] = fnv1a64(site.data(), site.size());
  {
    std::lock_guard<std::mutex> lk(hub_->site_mu);
    hub_->coll_site[rank_] = site;
  }
  barrier_raw();  // all publications visible
  bool mismatch = false;
  for (int r = 1; r < size(); ++r)
    if (hub_->coll_hash[r] != hub_->coll_hash[0]) mismatch = true;
  std::vector<CollectiveMismatchError::Site> sites;
  if (mismatch) {
    std::lock_guard<std::mutex> lk(hub_->site_mu);
    sites.reserve(hub_->nranks);
    for (int r = 0; r < hub_->nranks; ++r)
      sites.push_back({r, hub_->coll_site[r]});
  }
  barrier_raw();  // snapshots taken; publications may be reused
  if (!mismatch) return;
  int other = 0;
  for (int r = 1; r < static_cast<int>(sites.size()); ++r)
    if (sites[r].site != sites[0].site) {
      other = r;
      break;
    }
  if (rank_ == 0) trace::counter_add("vmpi.collective_mismatch", 1.0);
  // Message built before the throw-expression: the sites vector is moved
  // into the error, and function arguments are indeterminately sequenced.
  const std::string what = "vmpi: collective mismatch: rank 0 entered " +
                           sites[0].site + " while rank " +
                           std::to_string(other) + " entered " +
                           sites[other].site;
  throw CollectiveMismatchError(what, std::move(sites));
}

double Comm::allreduce_sum(double v, std::source_location loc) {
  collective_check("allreduce_sum", loc);
  hub_->slots[rank_] = v;
  barrier_body();
  double s = 0.0;
  for (int r = 0; r < size(); ++r) s += hub_->slots[r];
  barrier_body();
  return s;
}

double Comm::allreduce_max(double v, std::source_location loc) {
  collective_check("allreduce_max", loc);
  hub_->slots[rank_] = v;
  barrier_body();
  double s = hub_->slots[0];
  for (int r = 1; r < size(); ++r) s = std::max(s, hub_->slots[r]);
  barrier_body();
  return s;
}

double Comm::allreduce_min(double v, std::source_location loc) {
  collective_check("allreduce_min", loc);
  hub_->slots[rank_] = v;
  barrier_body();
  double s = hub_->slots[0];
  for (int r = 1; r < size(); ++r) s = std::min(s, hub_->slots[r]);
  barrier_body();
  return s;
}

void Comm::allreduce_sum(std::span<double> v, std::source_location loc) {
  collective_check("allreduce_sum[]", loc);
  hub_->vec_ptrs[rank_] = v;
  barrier_body();
  std::vector<double> acc(v.size(), 0.0);
  for (int r = 0; r < size(); ++r) {
    const auto& src = hub_->vec_ptrs[r];
    S3D_REQUIRE(src.size() == v.size(), "allreduce_sum: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i) acc[i] += src[i];
  }
  barrier_body();  // everyone has read all inputs
  std::copy(acc.begin(), acc.end(), v.begin());
  barrier_body();
}

void Comm::allreduce_max(std::span<double> v, std::source_location loc) {
  collective_check("allreduce_max[]", loc);
  hub_->vec_ptrs[rank_] = v;
  barrier_body();
  std::vector<double> acc(v.begin(), v.end());
  for (int r = 0; r < size(); ++r) {
    const auto& src = hub_->vec_ptrs[r];
    S3D_REQUIRE(src.size() == v.size(), "allreduce_max: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
      acc[i] = std::max(acc[i], src[i]);
  }
  barrier_body();  // everyone has read all inputs
  std::copy(acc.begin(), acc.end(), v.begin());
  barrier_body();
}

void Comm::allreduce_min(std::span<double> v, std::source_location loc) {
  collective_check("allreduce_min[]", loc);
  hub_->vec_ptrs[rank_] = v;
  barrier_body();
  std::vector<double> acc(v.begin(), v.end());
  for (int r = 0; r < size(); ++r) {
    const auto& src = hub_->vec_ptrs[r];
    S3D_REQUIRE(src.size() == v.size(), "allreduce_min: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
      acc[i] = std::min(acc[i], src[i]);
  }
  barrier_body();  // everyone has read all inputs
  std::copy(acc.begin(), acc.end(), v.begin());
  barrier_body();
}

void run(int nranks, const std::function<void(Comm&)>& fn,
         const RunOptions& opts) {
  S3D_REQUIRE(nranks >= 1, "need at least one rank");
  auto hub = std::make_shared<Comm::Hub>(nranks);
  hub->watchdog_s = opts.watchdog_s;
  hub->coll_check = opts.collective_check;
  if (const char* e = std::getenv("S3D_COLLECTIVE_CHECK");
      e && std::strcmp(e, "0") != 0)
    hub->coll_check = true;
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    trace::set_rank(rank);  // label this thread's trace events
    fault::set_rank(rank);  // and its fault-injection schedule
    try {
      Comm comm(rank, hub);
      fn(comm);
      hub->nfinished.fetch_add(1);
    } catch (...) {
      hub->nfinished.fetch_add(1);
      std::string what = "unknown exception";
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      hub->record_failure(rank, what);
    }
  };

  threads.reserve(nranks - 1);
  for (int r = 1; r < nranks; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();
  // The launching thread keeps rank 0's labels outside run(); restore the
  // fault rank so serial code after a parallel section probes as rank 0.
  fault::set_rank(0);
  if (first_error) std::rethrow_exception(first_error);
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, fn, RunOptions{});
}

Cart::Cart(Comm& comm, int px, int py, int pz, std::array<bool, 3> periodic) {
  S3D_REQUIRE(px * py * pz == comm.size(),
              "Cart: process grid does not match communicator size");
  const int rank = comm.rank();
  coords_ = {rank % px, (rank / px) % py, rank / (px * py)};
  const int p[3] = {px, py, pz};
  auto rank_of = [&](int cx, int cy, int cz) {
    return cx + px * (cy + py * cz);
  };
  for (int a = 0; a < 3; ++a) {
    for (int dir = 0; dir < 2; ++dir) {
      auto c = coords_;
      c[a] += dir == 0 ? -1 : 1;
      if (periodic[a]) c[a] = (c[a] + p[a]) % p[a];
      nb_[a][dir] = (c[a] < 0 || c[a] >= p[a]) ? -1 : rank_of(c[0], c[1], c[2]);
    }
  }
}

}  // namespace s3d::vmpi
