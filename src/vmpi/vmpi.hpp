#pragma once
// vmpi: an in-process message-passing runtime with MPI-like semantics.
//
// The paper's S3D runs over MPI with a 3-D domain decomposition whose only
// communication is non-blocking nearest-neighbour point-to-point plus rare
// reductions (section 2.6). vmpi reproduces exactly that programming model
// with ranks as threads inside one process, so the solver's parallel
// structure is real and testable on a single machine (see DESIGN.md
// substitutions). Semantics:
//   - isend is buffered: it copies the payload and completes immediately;
//   - irecv matches on (source, tag) in posting order;
//   - barrier and allreduce are collective over all ranks;
//   - messages between a (src, dst, tag) triple are non-overtaking.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <source_location>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace s3d::vmpi {

class Comm;

/// Thrown on every rank when the progress watchdog finds all live ranks
/// blocked with no message or collective progress for a full watchdog
/// interval: the run is deadlocked and would otherwise hang forever.
/// Carries the per-rank blocked-site report ("irecv(src=2, tag=7)",
/// "barrier", ...) so the stuck communication pattern is visible.
class DeadlockError : public Error {
 public:
  struct BlockedRank {
    int rank = 0;
    std::string site;  ///< blocked site, or "running"/"finished"
  };

  DeadlockError(const std::string& what, std::vector<BlockedRank> ranks)
      : Error(what), ranks_(std::move(ranks)) {}
  const std::vector<BlockedRank>& blocked() const { return ranks_; }

 private:
  std::vector<BlockedRank> ranks_;
};

/// Thrown on every rank under the S3D_COLLECTIVE_CHECK debug mode when
/// ranks enter *different* collectives: before performing any collective,
/// each rank publishes a call-site id (kind + file:line, hashed) and all
/// ranks agree on it; a mismatch — the class of bug where rank 0 is in a
/// barrier while rank 1 is in an allreduce, which otherwise deadlocks or
/// silently pairs wrong values — becomes this typed error naming both
/// call sites. The static complement is s3dlint's collective-rank rule
/// (DESIGN.md §14).
class CollectiveMismatchError : public Error {
 public:
  struct Site {
    int rank = 0;
    std::string site;  ///< "kind at file:line"
  };

  CollectiveMismatchError(const std::string& what, std::vector<Site> sites)
      : Error(what), sites_(std::move(sites)) {}
  /// Per-rank entered call sites (every rank, not only the mismatched pair).
  const std::vector<Site>& sites() const { return sites_; }

 private:
  std::vector<Site> sites_;
};

/// Thrown on surviving ranks when a peer rank's body exits with an
/// exception: peers are cleanly unblocked out of waits and collectives
/// instead of stranding. run() still rethrows the *original* failure.
class RankFailure : public Error {
 public:
  RankFailure(int rank, const std::string& why)
      : Error("vmpi: rank " + std::to_string(rank) + " failed: " + why),
        rank_(rank) {}
  int failed_rank() const { return rank_; }

 private:
  int rank_ = -1;
};

/// Options for run().
struct RunOptions {
  /// Progress watchdog: when every live rank has been blocked (point-to-
  /// point wait or collective) with zero communication progress for this
  /// many seconds, the run throws DeadlockError instead of hanging.
  /// 0 disables the watchdog.
  double watchdog_s = 30.0;
  /// Collective-order checker: every collective first agrees on its
  /// call-site id across ranks; a mismatch throws CollectiveMismatchError
  /// naming both sites instead of deadlocking. Costs two extra internal
  /// barriers per collective — a debug mode, not a production default.
  /// Also enabled by the S3D_COLLECTIVE_CHECK environment variable.
  bool collective_check = false;
};

/// Handle for a pending non-blocking operation.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Comm;
  struct State;
  std::shared_ptr<State> state_;
};

/// Launch `nranks` ranks, each executing fn(comm). Returns when every rank
/// has finished. The first exception thrown by any rank is rethrown here;
/// the other ranks are unblocked with RankFailure (or DeadlockError when
/// the watchdog fired).
void run(int nranks, const std::function<void(Comm&)>& fn);
void run(int nranks, const std::function<void(Comm&)>& fn,
         const RunOptions& opts);

/// Per-rank communicator handle. Valid only inside run()'s callback.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- Point-to-point (doubles payload; byte payloads via the _bytes
  //     variants used by the I/O layers) ---

  /// Buffered non-blocking send: data is copied out; completes immediately.
  Request isend(int dest, int tag, std::span<const double> data);
  /// Non-blocking receive into `data` (must outlive the wait).
  Request irecv(int source, int tag, std::span<double> data);
  /// Blocking send/recv convenience wrappers.
  void send(int dest, int tag, std::span<const double> data);
  void recv(int source, int tag, std::span<double> data);

  Request isend_bytes(int dest, int tag, std::span<const std::uint8_t> data);
  Request irecv_bytes(int source, int tag, std::span<std::uint8_t> data);

  /// Block until the request completes. Receives report the matched
  /// message length through `received_len` when provided.
  void wait(Request& req, std::size_t* received_len = nullptr);
  void waitall(std::span<Request> reqs);

  // --- Collectives ---
  //
  // The defaulted source_location is the collective-order checker's
  // call-site id (see RunOptions::collective_check): callers never pass
  // it, the compiler stamps the caller's file:line automatically.

  void barrier(std::source_location loc = std::source_location::current());
  double allreduce_sum(
      double v, std::source_location loc = std::source_location::current());
  double allreduce_max(
      double v, std::source_location loc = std::source_location::current());
  double allreduce_min(
      double v, std::source_location loc = std::source_location::current());
  /// Element-wise sum-reduction of a vector across ranks (in place).
  void allreduce_sum(
      std::span<double> v,
      std::source_location loc = std::source_location::current());
  /// Element-wise max/min reductions of a vector across ranks (in place).
  /// One collective for a whole verdict vector: the health sentinel packs
  /// (severity, metric, -dt_suggest, ...) into a single allreduce_max so
  /// every rank derives the identical verdict from identical numbers.
  void allreduce_max(
      std::span<double> v,
      std::source_location loc = std::source_location::current());
  void allreduce_min(
      std::span<double> v,
      std::source_location loc = std::source_location::current());

 private:
  friend void run(int, const std::function<void(Comm&)>&,
                  const RunOptions&);
  struct Hub;
  Comm(int rank, std::shared_ptr<Hub> hub);
  /// Pre-collective agreement on the call-site id (no-op unless the
  /// checker is armed). Throws CollectiveMismatchError on divergence.
  void collective_check(const char* kind, const std::source_location& loc);
  /// The barrier body without the checker prologue (fault probe +
  /// rendezvous) — used by the allreduce internals so their probe/check
  /// counts stay unchanged.
  void barrier_body();
  /// Pure rendezvous (no fault probe): the checker's agreement phases.
  void barrier_raw();
  int rank_ = 0;
  std::shared_ptr<Hub> hub_;
};

/// Halo-exchange helper: a 3-D Cartesian layout over the ranks with
/// per-axis periodicity, built on Comm (mirrors MPI_Cart_create usage).
class Cart {
 public:
  Cart(Comm& comm, int px, int py, int pz, std::array<bool, 3> periodic);

  std::array<int, 3> coords() const { return coords_; }
  /// Rank of the neighbour along axis in direction sign, or -1 at a
  /// physical boundary.
  int neighbor(int axis, int sign) const { return nb_[axis][sign < 0 ? 0 : 1]; }

 private:
  std::array<int, 3> coords_{};
  int nb_[3][2];
};

}  // namespace s3d::vmpi
