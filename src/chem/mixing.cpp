#include "chem/mixing.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace s3d::chem {

namespace {
constexpr double W_C = 12.011, W_H = 1.008, W_O = 15.999, W_N = 14.007;
}

std::vector<double> premixed_fuel_air_Y(const Mechanism& mech,
                                        std::string_view fuel, double phi) {
  S3D_REQUIRE(phi > 0.0, "equivalence ratio must be positive");
  const int i_fuel = mech.index(fuel);
  const int i_o2 = mech.index("O2");
  const int i_n2 = mech.index("N2");
  const Elements& el = mech.species(i_fuel).elements;
  // Stoichiometric O2 moles per mole of fuel CxHyOz: x + y/4 - z/2.
  const double nu_o2 = el.C + el.H / 4.0 - el.O / 2.0;
  S3D_REQUIRE(nu_o2 > 0.0, "species is not a fuel: " + std::string(fuel));

  // Mole basis: phi moles fuel per nu_o2 moles O2 (+ 3.76 N2 each).
  std::vector<double> X(mech.n_species(), 0.0);
  X[i_fuel] = phi;
  X[i_o2] = nu_o2;
  X[i_n2] = nu_o2 * 3.76;
  double sum = 0.0;
  for (double x : X) sum += x;
  for (double& x : X) x /= sum;

  std::vector<double> Y(mech.n_species());
  mech.Y_from_X(X, Y);
  return Y;
}

std::vector<double> stream_Y_from_X(
    const Mechanism& mech,
    const std::vector<std::pair<std::string_view, double>>& fuel_X) {
  std::vector<double> X(mech.n_species(), 0.0);
  double sum = 0.0;
  for (const auto& [name, x] : fuel_X) {
    X[mech.index(name)] = x;
    sum += x;
  }
  S3D_REQUIRE(sum > 0.0, "stream composition is empty");
  for (double& x : X) x /= sum;
  std::vector<double> Y(mech.n_species());
  mech.Y_from_X(X, Y);
  return Y;
}

std::array<double, 4> elemental_mass_fractions(const Mechanism& mech,
                                               std::span<const double> Y) {
  std::array<double, 4> Z{0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < mech.n_species(); ++i) {
    const Species& sp = mech.species(i);
    const double f = Y[i] / sp.W;
    Z[0] += f * sp.elements.C * W_C;
    Z[1] += f * sp.elements.H * W_H;
    Z[2] += f * sp.elements.O * W_O;
    Z[3] += f * sp.elements.N * W_N;
  }
  return Z;
}

double bilger_beta(const Mechanism& mech, std::span<const double> Y) {
  const auto Z = elemental_mass_fractions(mech, Y);
  return 2.0 * Z[0] / W_C + 0.5 * Z[1] / W_H - Z[2] / W_O;
}

double bilger_mixture_fraction(const Mechanism& mech,
                               std::span<const double> Y,
                               std::span<const double> Y_ox,
                               std::span<const double> Y_fuel) {
  const double b = bilger_beta(mech, Y);
  const double b_ox = bilger_beta(mech, Y_ox);
  const double b_fu = bilger_beta(mech, Y_fuel);
  S3D_REQUIRE(std::abs(b_fu - b_ox) > 1e-300,
              "fuel and oxidizer streams are identical");
  return (b - b_ox) / (b_fu - b_ox);
}

double stoichiometric_mixture_fraction(const Mechanism& mech,
                                       std::span<const double> Y_ox,
                                       std::span<const double> Y_fuel) {
  const double b_ox = bilger_beta(mech, Y_ox);
  const double b_fu = bilger_beta(mech, Y_fuel);
  return -b_ox / (b_fu - b_ox);
}

}  // namespace s3d::chem
