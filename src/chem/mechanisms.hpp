#pragma once
// Built-in reaction mechanisms.
//
// - h2_li2004(): detailed hydrogen/air mechanism (9 species, 21 reaction
//   entries incl. duplicates, Troe falloff) with the rate parameters of
//   Li, Zhao, Kazakov & Dryer (2004). This is the chemistry class used by
//   the paper's lifted H2/air jet flame (section 6).
// - ch4_bfer2step(): global 2-step methane/air mechanism (6 species) in the
//   Westbrook-Dryer/BFER form with non-integer orders; stands in for the
//   reduced CH4 mechanism of the paper's premixed Bunsen study (section 7),
//   see DESIGN.md substitutions.
// - ch4_onestep(): single-step methane oxidation; cheap test chemistry.
// - air_inert(): O2/N2, no reactions; used by the non-reacting
//   pressure-wave performance test (section 4.1 model problem).

#include "chem/mechanism.hpp"

namespace s3d::chem {

/// Detailed H2/air mechanism (Li et al. 2004 rate set), N2 inert.
Mechanism h2_li2004();

/// Global 2-step CH4/air mechanism (BFER-style), N2 inert.
Mechanism ch4_bfer2step();

/// Single-step CH4/air test mechanism, N2 inert.
Mechanism ch4_onestep();

/// Syngas (CO/H2/air) mechanism: the H2 subsystem of Li et al. (2004)
/// plus CO oxidation (Davis et al. 2005 rate set). This is the chemistry
/// class of the paper's temporally evolving plane-jet hero runs
/// ("non-premixed flames, 500 million grid points, 16 variables",
/// skeletal CO/H2 kinetics, ref. [16]).
Mechanism syngas_co_h2();

/// Non-reacting O2/N2 air.
Mechanism air_inert();

}  // namespace s3d::chem
