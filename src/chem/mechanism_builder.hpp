#pragma once
// CHEMKIN-style mechanism construction.
//
// MechBuilder accepts reaction equations as strings ("H+O2<=>O+OH",
// "H+O2(+M)<=>HO2(+M)", "H2+M<=>H+H+M") with rate constants in the CGS /
// cal-per-mol units mechanisms are published in, and converts everything to
// SI at build time. This mirrors how the paper's S3D consumed CHEMKIN input
// decks.

#include <string>
#include <string_view>
#include <vector>

#include "chem/mechanism.hpp"

namespace s3d::chem {

/// Incremental mechanism builder. Typical use:
///
///   MechBuilder b(species_list({"H2", "O2", ...}));
///   b.add("H+O2<=>O+OH", 3.547e15, -0.406, 16599);
///   b.add("H+O2(+M)<=>HO2(+M)", 1.475e12, 0.60, 0)
///       .low(6.366e20, -1.72, 524.8).troe(0.8, 1e-30, 1e30)
///       .eff("H2", 2.0).eff("H2O", 11.0);
///   Mechanism mech = b.build("h2_li2004");
class MechBuilder {
 public:
  explicit MechBuilder(std::vector<Species> species);

  /// Fluent handle to the reaction most recently added.
  class RxRef {
   public:
    RxRef(MechBuilder& b, std::size_t r) : b_(b), r_(r) {}
    /// Set the low-pressure (k0) limit of a falloff reaction
    /// (A in CGS, Ea in cal/mol).
    RxRef& low(double A_cgs, double b, double Ea_cal);
    /// Set Troe blending parameters; pass T2 only when the 4-parameter
    /// form is used.
    RxRef& troe(double a, double T3, double T1);
    RxRef& troe(double a, double T3, double T1, double T2);
    /// Set a third-body collision efficiency.
    RxRef& eff(std::string_view sp, double e);
    /// Give an explicit reverse Arrhenius rate (A in CGS, Ea in cal/mol);
    /// reverse orders default to product stoichiometry.
    RxRef& rev(double A_cgs, double b, double Ea_cal);
    /// Override forward concentration orders (global mechanisms).
    RxRef& orders(std::vector<std::pair<std::string_view, double>> ord);

   private:
    MechBuilder& b_;
    std::size_t r_;
  };

  /// Parse `equation` and append a reaction with forward rate
  /// (A in CGS mol-cm-s units, b dimensionless, Ea in cal/mol).
  /// Supports "<=>"/"=" (reversible), "=>" (irreversible), "+M" third
  /// bodies, "(+M)" falloff, and numeric stoichiometric prefixes
  /// (including non-integer, e.g. "1.5O2").
  RxRef add(std::string equation, double A_cgs, double b, double Ea_cal);

  /// Finalize. The builder is left empty.
  Mechanism build(std::string name);

  int index(std::string_view name) const;

 private:
  friend class RxRef;
  double si_A(double A_cgs, double order) const;
  std::vector<Species> species_;
  std::vector<Reaction> reactions_;
};

}  // namespace s3d::chem
