#pragma once
// Built-in species database: NASA-7 thermodynamic fits (GRI-Mech 3.0
// conventions) and Lennard-Jones transport parameters (CHEMKIN tran.dat
// conventions) for the species used by the shipped mechanisms.

#include <string_view>
#include <vector>

#include "chem/species.hpp"

namespace s3d::chem {

/// Look up a species by name in the built-in database; throws s3d::Error
/// for unknown names. Known: H2, H, O, O2, OH, H2O, HO2, H2O2, N2, CH4,
/// CO, CO2, AR.
Species species_from_db(std::string_view name);

/// Convenience: build a species list from names.
std::vector<Species> species_list(const std::vector<std::string_view>& names);

}  // namespace s3d::chem
