#include "chem/mechanism_builder.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace s3d::chem {

namespace {

std::string strip_spaces(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    if (c != ' ') out.push_back(c);
  return out;
}

// Remove every occurrence of `pat` from `s`; returns how many were removed.
int remove_all(std::string& s, std::string_view pat) {
  int n = 0;
  for (std::size_t p; (p = s.find(pat)) != std::string::npos; ++n)
    s.erase(p, pat.size());
  return n;
}

std::vector<std::string> split_plus(const std::string& side) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= side.size(); ++i) {
    if (i == side.size() || side[i] == '+') {
      if (i > start) out.push_back(side.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double total_order(const Reaction& rx) {
  double m = 0.0;
  const auto& ord = rx.forward_orders.empty() ? rx.reactants
                                              : rx.forward_orders;
  for (const auto& t : ord) m += t.nu;
  if (rx.type == Reaction::Type::three_body) m += 1.0;
  return m;
}

}  // namespace

MechBuilder::MechBuilder(std::vector<Species> species)
    : species_(std::move(species)) {}

int MechBuilder::index(std::string_view name) const {
  for (std::size_t i = 0; i < species_.size(); ++i)
    if (species_[i].name == name) return static_cast<int>(i);
  throw Error("MechBuilder: unknown species " + std::string(name));
}

// (1 cm^3/mol)^(m-1)/s -> (m^3/kmol)^(m-1)/s
double MechBuilder::si_A(double A_cgs, double order) const {
  // s3dlint:allow(libm): build-time unit conversion, not step arithmetic
  return A_cgs * std::pow(1.0e-3, order - 1.0);
}

MechBuilder::RxRef MechBuilder::add(std::string equation, double A_cgs,
                                    double b, double Ea_cal) {
  Reaction rx;
  rx.equation = equation;
  std::string eq = strip_spaces(equation);

  // Falloff markers first, so the plain "+M" scan below doesn't see them.
  const int n_falloff = remove_all(eq, "(+M)");
  if (n_falloff > 0) {
    S3D_REQUIRE(n_falloff == 2, "(+M) must appear on both sides: " + equation);
    rx.type = Reaction::Type::falloff;
  }

  std::string lhs, rhs;
  if (auto p = eq.find("<=>"); p != std::string::npos) {
    rx.reversible = true;
    lhs = eq.substr(0, p);
    rhs = eq.substr(p + 3);
  } else if (auto q = eq.find("=>"); q != std::string::npos) {
    rx.reversible = false;
    lhs = eq.substr(0, q);
    rhs = eq.substr(q + 2);
  } else if (auto e = eq.find('='); e != std::string::npos) {
    rx.reversible = true;
    lhs = eq.substr(0, e);
    rhs = eq.substr(e + 1);
  } else {
    throw Error("reaction has no '=': " + equation);
  }

  auto parse_side = [&](const std::string& side,
                        std::vector<StoichTerm>& terms) {
    int n_M = 0;
    for (const auto& tok : split_plus(side)) {
      if (tok == "M") {
        ++n_M;
        continue;
      }
      // Longest numeric prefix whose remainder is a known species.
      double nu = 1.0;
      std::string sp_name = tok;
      std::size_t num_end = 0;
      while (num_end < tok.size() &&
             (std::isdigit(static_cast<unsigned char>(tok[num_end])) ||
              tok[num_end] == '.'))
        ++num_end;
      for (std::size_t cut = num_end; cut > 0; --cut) {
        const std::string rest = tok.substr(cut);
        bool known = false;
        for (const auto& s : species_)
          if (s.name == rest) known = true;
        if (known && !rest.empty()) {
          nu = std::stod(tok.substr(0, cut));
          sp_name = rest;
          break;
        }
      }
      const int sp = index(sp_name);
      // Merge repeated species ("H+H").
      bool merged = false;
      for (auto& t : terms)
        if (t.species == sp) {
          t.nu += nu;
          merged = true;
        }
      if (!merged) terms.push_back({sp, nu});
    }
    return n_M;
  };

  const int ml = parse_side(lhs, rx.reactants);
  const int mr = parse_side(rhs, rx.products);
  if (ml > 0 || mr > 0) {
    S3D_REQUIRE(ml == 1 && mr == 1, "+M must appear on both sides: " + equation);
    S3D_REQUIRE(rx.type != Reaction::Type::falloff,
                "reaction cannot be both +M and (+M): " + equation);
    rx.type = Reaction::Type::three_body;
  }

  rx.fwd.b = b;
  rx.fwd.E_R = Ea_cal / constants::Ru_cal;
  rx.fwd.A = si_A(A_cgs, total_order(rx));

  reactions_.push_back(std::move(rx));
  return RxRef(*this, reactions_.size() - 1);
}

MechBuilder::RxRef& MechBuilder::RxRef::low(double A_cgs, double b,
                                            double Ea_cal) {
  Reaction& rx = b_.reactions_[r_];
  S3D_REQUIRE(rx.type == Reaction::Type::falloff,
              "low() only applies to (+M) reactions: " + rx.equation);
  rx.low.b = b;
  rx.low.E_R = Ea_cal / constants::Ru_cal;
  rx.low.A = b_.si_A(A_cgs, total_order(rx) + 1.0);
  return *this;
}

MechBuilder::RxRef& MechBuilder::RxRef::troe(double a, double T3, double T1) {
  Reaction& rx = b_.reactions_[r_];
  rx.troe = Troe{a, T3, T1, 0.0, false};
  return *this;
}

MechBuilder::RxRef& MechBuilder::RxRef::troe(double a, double T3, double T1,
                                             double T2) {
  Reaction& rx = b_.reactions_[r_];
  rx.troe = Troe{a, T3, T1, T2, true};
  return *this;
}

MechBuilder::RxRef& MechBuilder::RxRef::eff(std::string_view sp, double e) {
  Reaction& rx = b_.reactions_[r_];
  rx.efficiencies.emplace_back(b_.index(sp), e);
  return *this;
}

MechBuilder::RxRef& MechBuilder::RxRef::rev(double A_cgs, double b,
                                            double Ea_cal) {
  Reaction& rx = b_.reactions_[r_];
  double m = 0.0;
  for (const auto& t : rx.products) m += t.nu;
  if (rx.type == Reaction::Type::three_body) m += 1.0;
  Arrhenius a;
  a.b = b;
  a.E_R = Ea_cal / constants::Ru_cal;
  a.A = b_.si_A(A_cgs, m);
  rx.rev = a;
  rx.reversible = true;
  return *this;
}

MechBuilder::RxRef& MechBuilder::RxRef::orders(
    std::vector<std::pair<std::string_view, double>> ord) {
  Reaction& rx = b_.reactions_[r_];
  const double m_old = total_order(rx);
  rx.forward_orders.clear();
  for (const auto& [sp, nu] : ord)
    rx.forward_orders.push_back({b_.index(sp), nu});
  const double m_new = total_order(rx);
  // The published A was in units matching the published orders; re-express.
  // s3dlint:allow(libm): build-time unit conversion, not step arithmetic
  rx.fwd.A *= std::pow(1.0e-3, m_new - m_old);
  return *this;
}

Mechanism MechBuilder::build(std::string name) {
  return Mechanism(std::move(name), std::move(species_),
                   std::move(reactions_));
}

}  // namespace s3d::chem
