#pragma once
// NASA-7 thermodynamic property evaluation (paper section 2.1 relationships).
//
// All properties are returned in SI: cp, cv in J/(kg K) or J/(kmol K) as
// noted, h in J/kg or J/kmol, s in J/(kmol K).

#include <span>

#include "chem/species.hpp"

namespace s3d::chem {

/// Nondimensional cp/R of one species at temperature T.
double cp_R(const Species& sp, double T);

/// Nondimensional h/(R T) of one species (includes enthalpy of formation).
double h_RT(const Species& sp, double T);

/// Nondimensional s/R of one species at 1 atm standard state.
double s_R(const Species& sp, double T);

/// Nondimensional Gibbs energy g/(R T) = h/(R T) - s/R.
double g_RT(const Species& sp, double T);

/// g/(R T) with a caller-staged lnT (must equal std::log(T) bit for
/// bit). One compiled body (never inlined) shared by the scalar and
/// row-batched kinetics stagers: the entropy polynomial consumes the
/// staged lnT instead of deriving its own, which removes one std::log
/// per species per cell from the hot staging loops while keeping both
/// shapes bitwise identical (DESIGN.md §11).
double g_RT_lnT(const Species& sp, double T, double lnT);

/// Molar heat capacity [J/(kmol K)].
double cp_molar(const Species& sp, double T);

/// Molar enthalpy [J/kmol] (sensible + formation).
double h_molar(const Species& sp, double T);

/// Mass-based heat capacity [J/(kg K)].
double cp_mass(const Species& sp, double T);

/// Mass-based enthalpy [J/kg].
double h_mass(const Species& sp, double T);

/// Mass-based internal energy [J/kg]: e = h - R/W * T.
double e_mass(const Species& sp, double T);

}  // namespace s3d::chem
