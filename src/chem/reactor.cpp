#include "chem/reactor.hpp"

#include <algorithm>
#include <cmath>

#include "chem/thermo.hpp"
#include "common/error.hpp"

namespace s3d::chem {

ConstPressureReactor::ConstPressureReactor(const Mechanism& mech,
                                           double pressure)
    : mech_(mech), p_(pressure), Y_(mech.n_species(), 0.0) {
  S3D_REQUIRE(pressure > 0.0, "pressure must be positive");
}

void ConstPressureReactor::set_state(double T, std::span<const double> Y) {
  S3D_REQUIRE(static_cast<int>(Y.size()) == mech_.n_species(),
              "Y size mismatch");
  T_ = T;
  std::copy(Y.begin(), Y.end(), Y_.begin());
  t_ = 0.0;
  dt_ = 1e-9;
}

void ConstPressureReactor::rhs(double T, std::span<const double> Y,
                               std::span<double> dY, double& dT) const {
  const int ns = mech_.n_species();
  const double rho = mech_.density(p_, T, Y);
  double c[kMaxSpecies], wdot[kMaxSpecies];
  for (int i = 0; i < ns; ++i) c[i] = rho * std::max(Y[i], 0.0) / mech_.W(i);
  mech_.production_rates(T, {c, c + ns}, {wdot, wdot + ns});
  double hdot = 0.0;
  for (int i = 0; i < ns; ++i) {
    dY[i] = wdot[i] * mech_.W(i) / rho;
    hdot += h_mass(mech_.species(i), T) * wdot[i] * mech_.W(i);
  }
  dT = -hdot / (rho * mech_.cp_mass_mix(T, Y));
}

namespace {
// Cash-Karp RK4(5) tableau.
constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 3.0 / 5, c5 = 1.0,
                 c6 = 7.0 / 8;
constexpr double a21 = 1.0 / 5;
constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
constexpr double a41 = 3.0 / 10, a42 = -9.0 / 10, a43 = 6.0 / 5;
constexpr double a51 = -11.0 / 54, a52 = 5.0 / 2, a53 = -70.0 / 27,
                 a54 = 35.0 / 27;
constexpr double a61 = 1631.0 / 55296, a62 = 175.0 / 512, a63 = 575.0 / 13824,
                 a64 = 44275.0 / 110592, a65 = 253.0 / 4096;
constexpr double b1 = 37.0 / 378, b3 = 250.0 / 621, b4 = 125.0 / 594,
                 b6 = 512.0 / 1771;
constexpr double d1 = 2825.0 / 27648, d3 = 18575.0 / 48384,
                 d4 = 13525.0 / 55296, d5 = 277.0 / 14336, d6 = 1.0 / 4;
}  // namespace

void ConstPressureReactor::advance(double t_end, double rtol, double atol) {
  const int ns = mech_.n_species();
  const int n = ns + 1;  // state = [Y..., T]

  auto eval = [&](const std::vector<double>& u, std::vector<double>& du) {
    double dT;
    rhs(u[ns], {u.data(), static_cast<std::size_t>(ns)},
        {du.data(), static_cast<std::size_t>(ns)}, dT);
    du[ns] = dT;
  };

  std::vector<double> u(n), utmp(n), k1(n), k2(n), k3(n), k4(n), k5(n), k6(n),
      u5(n), err(n);
  std::copy(Y_.begin(), Y_.end(), u.begin());
  u[ns] = T_;

  while (t_ < t_end) {
    double h = std::min(dt_, t_end - t_);
    eval(u, k1);
    bool accepted = false;
    while (!accepted) {
      auto stage = [&](std::vector<double>& out,
                       std::initializer_list<std::pair<const std::vector<double>*, double>> terms) {
        for (int i = 0; i < n; ++i) {
          double s = 0.0;
          for (const auto& [kv, a] : terms) s += a * (*kv)[i];
          out[i] = u[i] + h * s;
        }
      };
      stage(utmp, {{&k1, a21}});
      eval(utmp, k2);
      stage(utmp, {{&k1, a31}, {&k2, a32}});
      eval(utmp, k3);
      stage(utmp, {{&k1, a41}, {&k2, a42}, {&k3, a43}});
      eval(utmp, k4);
      stage(utmp, {{&k1, a51}, {&k2, a52}, {&k3, a53}, {&k4, a54}});
      eval(utmp, k5);
      stage(utmp, {{&k1, a61}, {&k2, a62}, {&k3, a63}, {&k4, a64}, {&k5, a65}});
      eval(utmp, k6);

      double errnorm = 0.0;
      for (int i = 0; i < n; ++i) {
        u5[i] = u[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] + b6 * k6[i]);
        const double u4 = u[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] +
                                      d5 * k5[i] + d6 * k6[i]);
        const double sc = atol + rtol * std::max(std::abs(u[i]), std::abs(u5[i]));
        const double e = (u5[i] - u4) / sc;
        errnorm = std::max(errnorm, std::abs(e));
      }

      if (errnorm <= 1.0 || h <= 1e-16) {
        accepted = true;
        t_ += h;
        u = u5;
        // Step-size controller (PI-free, classic 0.2 exponent).
        // s3dlint:allow(libm): 0-D reference reactor, outside the DNS step
        const double fac =
            std::clamp(0.9 * std::pow(std::max(errnorm, 1e-10), -0.2), 0.2, 5.0);
        dt_ = std::min(h * fac, 1e-3);
      } else {
        // s3dlint:allow(libm): 0-D reference reactor, outside the DNS step
        h *= std::clamp(0.9 * std::pow(errnorm, -0.25), 0.1, 0.5);
      }
    }
    // Keep mass fractions physical between steps (explicit integrators can
    // undershoot trace species).
    double sum = 0.0;
    for (int i = 0; i < ns; ++i) {
      u[i] = std::max(u[i], 0.0);
      sum += u[i];
    }
    for (int i = 0; i < ns; ++i) u[i] /= sum;
  }

  std::copy(u.begin(), u.begin() + ns, Y_.begin());
  T_ = u[ns];
}

ReactorHistory ConstPressureReactor::advance_recorded(double t_end,
                                                      double sample_dt,
                                                      double rtol,
                                                      double atol) {
  ReactorHistory hist;
  hist.t.push_back(t_);
  hist.T.push_back(T_);
  hist.Y.emplace_back(Y_.begin(), Y_.end());
  while (t_ < t_end - 1e-15) {
    advance(std::min(t_ + sample_dt, t_end), rtol, atol);
    hist.t.push_back(t_);
    hist.T.push_back(T_);
    hist.Y.emplace_back(Y_.begin(), Y_.end());
  }
  return hist;
}

ConstVolumeReactor::ConstVolumeReactor(const Mechanism& mech, double rho)
    : mech_(mech), rho_(rho), Y_(mech.n_species(), 0.0) {
  S3D_REQUIRE(rho > 0.0, "density must be positive");
}

void ConstVolumeReactor::set_state(double T, std::span<const double> Y) {
  S3D_REQUIRE(static_cast<int>(Y.size()) == mech_.n_species(),
              "Y size mismatch");
  T_ = T;
  std::copy(Y.begin(), Y.end(), Y_.begin());
  t_ = 0.0;
  dt_ = 1e-9;
}

double ConstVolumeReactor::pressure() const {
  return mech_.pressure(rho_, T_, Y_);
}

void ConstVolumeReactor::advance(double t_end, double rtol, double atol) {
  // Reuse the constant-pressure reactor's adaptive machinery by running a
  // small embedded RK12 here is not accurate enough; instead integrate
  // with the same Cash-Karp scheme via a local copy of the stepper acting
  // on [Y..., T] with the constant-volume right-hand side.
  const int ns = mech_.n_species();
  const int n = ns + 1;

  auto eval = [&](const std::vector<double>& u, std::vector<double>& du) {
    double c[kMaxSpecies], wdot[kMaxSpecies];
    for (int i = 0; i < ns; ++i)
      c[i] = rho_ * std::max(u[i], 0.0) / mech_.W(i);
    mech_.production_rates(u[ns], {c, static_cast<std::size_t>(ns)},
                           {wdot, static_cast<std::size_t>(ns)});
    double edot = 0.0;
    for (int i = 0; i < ns; ++i) {
      du[i] = wdot[i] * mech_.W(i) / rho_;
      edot += e_mass(mech_.species(i), u[ns]) * wdot[i] * mech_.W(i);
    }
    const double cv = mech_.cv_mass_mix(
        u[ns], {u.data(), static_cast<std::size_t>(ns)});
    du[ns] = -edot / (rho_ * cv);
  };

  std::vector<double> u(n), utmp(n), k1(n), k2(n), k3(n), k4(n), k5(n),
      k6(n), u5(n);
  std::copy(Y_.begin(), Y_.end(), u.begin());
  u[ns] = T_;

  while (t_ < t_end) {
    double h = std::min(dt_, t_end - t_);
    eval(u, k1);
    bool accepted = false;
    while (!accepted) {
      auto stage = [&](std::vector<double>& out,
                       std::initializer_list<std::pair<const std::vector<double>*, double>> terms) {
        for (int i = 0; i < n; ++i) {
          double s = 0.0;
          for (const auto& [kv, a] : terms) s += a * (*kv)[i];
          out[i] = u[i] + h * s;
        }
      };
      stage(utmp, {{&k1, a21}});
      eval(utmp, k2);
      stage(utmp, {{&k1, a31}, {&k2, a32}});
      eval(utmp, k3);
      stage(utmp, {{&k1, a41}, {&k2, a42}, {&k3, a43}});
      eval(utmp, k4);
      stage(utmp, {{&k1, a51}, {&k2, a52}, {&k3, a53}, {&k4, a54}});
      eval(utmp, k5);
      stage(utmp, {{&k1, a61}, {&k2, a62}, {&k3, a63}, {&k4, a64}, {&k5, a65}});
      eval(utmp, k6);

      double errnorm = 0.0;
      for (int i = 0; i < n; ++i) {
        u5[i] = u[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] + b6 * k6[i]);
        const double u4 = u[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] +
                                      d5 * k5[i] + d6 * k6[i]);
        const double sc = atol + rtol * std::max(std::abs(u[i]), std::abs(u5[i]));
        errnorm = std::max(errnorm, std::abs((u5[i] - u4) / sc));
      }
      if (errnorm <= 1.0 || h <= 1e-16) {
        accepted = true;
        t_ += h;
        u = u5;
        // s3dlint:allow(libm): 0-D reference reactor, outside the DNS step
        const double fac =
            std::clamp(0.9 * std::pow(std::max(errnorm, 1e-10), -0.2), 0.2, 5.0);
        dt_ = std::min(h * fac, 1e-3);
      } else {
        // s3dlint:allow(libm): 0-D reference reactor, outside the DNS step
        h *= std::clamp(0.9 * std::pow(errnorm, -0.25), 0.1, 0.5);
      }
    }
    double sum = 0.0;
    for (int i = 0; i < ns; ++i) {
      u[i] = std::max(u[i], 0.0);
      sum += u[i];
    }
    for (int i = 0; i < ns; ++i) u[i] /= sum;
  }

  std::copy(u.begin(), u.begin() + ns, Y_.begin());
  T_ = u[ns];
}

double ignition_delay(const Mechanism& mech, double T0, double p,
                      std::span<const double> Y0, double t_max) {
  ConstPressureReactor r(mech, p);
  r.set_state(T0, Y0);
  // Sample finely enough to locate the steepest temperature rise.
  const int n_samples = 2000;
  const double dt = t_max / n_samples;
  double best_slope = 0.0, t_ign = -1.0;
  double t_prev = 0.0, T_prev = T0;
  for (int s = 1; s <= n_samples; ++s) {
    r.advance(s * dt);
    const double slope = (r.T() - T_prev) / (r.time() - t_prev + 1e-300);
    if (slope > best_slope) {
      best_slope = slope;
      t_ign = 0.5 * (r.time() + t_prev);
    }
    t_prev = r.time();
    T_prev = r.T();
  }
  // Demand a real temperature runaway, not numeric noise.
  if (r.T() < T0 + 200.0) return -1.0;
  return t_ign;
}

std::pair<double, std::vector<double>> equilibrium_products(
    const Mechanism& mech, double T0, double p, std::span<const double> Y0,
    double t_burn) {
  ConstPressureReactor r(mech, p);
  r.set_state(T0, Y0);
  r.advance(t_burn, 1e-5, 1e-9);
  return {r.T(), std::vector<double>(r.Y().begin(), r.Y().end())};
}

}  // namespace s3d::chem
