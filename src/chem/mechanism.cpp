#include "chem/mechanism.hpp"

#include <algorithm>
#include <cmath>

#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace s3d::chem {

using constants::Ru;

double ln_c0_ref() {
  static const double v = std::log(constants::p_ref / constants::Ru);
  return v;
}

double Arrhenius::k(double T, double lnT) const {
  return A * std::exp(b * lnT - E_R / T);
}

namespace {

// c^nu with fast paths for the overwhelmingly common integer exponents and
// a clamp at zero so non-integer orders from global mechanisms never see a
// negative base (transient undershoots in DNS).
double conc_pow(double c, double nu) {
  if (c <= 0.0) return 0.0;
  if (nu == 1.0) return c;
  if (nu == 2.0) return c * c;
  if (nu == 3.0) return c * c * c;
  return std::pow(c, nu);
}

}  // namespace

Mechanism::Mechanism(std::string name, std::vector<Species> species,
                     std::vector<Reaction> reactions)
    : name_(std::move(name)),
      species_(std::move(species)),
      reactions_(std::move(reactions)) {
  S3D_REQUIRE(!species_.empty(), "mechanism needs species");
  S3D_REQUIRE(n_species() <= kMaxSpecies,
              "mechanism exceeds kMaxSpecies; raise the limit");
  dnu_.resize(reactions_.size());
  for (std::size_t r = 0; r < reactions_.size(); ++r) {
    auto& rx = reactions_[r];
    double dnu = 0.0;
    for (const auto& t : rx.products) {
      S3D_REQUIRE(t.species >= 0 && t.species < n_species(),
                  "bad species index in " + rx.equation);
      dnu += t.nu;
    }
    for (const auto& t : rx.reactants) {
      S3D_REQUIRE(t.species >= 0 && t.species < n_species(),
                  "bad species index in " + rx.equation);
      dnu -= t.nu;
    }
    dnu_[r] = dnu;
    if (rx.forward_orders.empty()) rx.forward_orders = rx.reactants;
    if (rx.rev && rx.reverse_orders.empty()) rx.reverse_orders = rx.products;
    if (rx.type == Reaction::Type::falloff)
      S3D_REQUIRE(rx.low.A > 0.0, "falloff reaction needs a low-pressure "
                                  "limit: " + rx.equation);
  }
}

int Mechanism::find(std::string_view sp_name) const {
  for (int i = 0; i < n_species(); ++i)
    if (species_[i].name == sp_name) return i;
  return -1;
}

int Mechanism::index(std::string_view sp_name) const {
  int i = find(sp_name);
  S3D_REQUIRE(i >= 0, "unknown species " + std::string(sp_name));
  return i;
}

double Mechanism::mean_W_from_Y(std::span<const double> Y) const {
  double s = 0.0;
  for (int i = 0; i < n_species(); ++i) s += Y[i] / species_[i].W;
  return 1.0 / s;
}

double Mechanism::mean_W_from_X(std::span<const double> X) const {
  double s = 0.0;
  for (int i = 0; i < n_species(); ++i) s += X[i] * species_[i].W;
  return s;
}

void Mechanism::X_from_Y(std::span<const double> Y,
                         std::span<double> X) const {
  const double W = mean_W_from_Y(Y);
  for (int i = 0; i < n_species(); ++i) X[i] = Y[i] * W / species_[i].W;
}

void Mechanism::Y_from_X(std::span<const double> X,
                         std::span<double> Y) const {
  const double W = mean_W_from_X(X);
  for (int i = 0; i < n_species(); ++i) Y[i] = X[i] * species_[i].W / W;
}

double Mechanism::cp_mass_mix(double T, std::span<const double> Y) const {
  double cp = 0.0;
  for (int i = 0; i < n_species(); ++i) cp += Y[i] * cp_mass(species_[i], T);
  return cp;
}

double Mechanism::cv_mass_mix(double T, std::span<const double> Y) const {
  return cp_mass_mix(T, Y) - Ru / mean_W_from_Y(Y);
}

double Mechanism::h_mass_mix(double T, std::span<const double> Y) const {
  double h = 0.0;
  for (int i = 0; i < n_species(); ++i) h += Y[i] * h_mass(species_[i], T);
  return h;
}

double Mechanism::e_mass_mix(double T, std::span<const double> Y) const {
  return h_mass_mix(T, Y) - Ru / mean_W_from_Y(Y) * T;
}

namespace {
constexpr double kTmin = 50.0;
constexpr double kTmax = 6000.0;
}  // namespace

double Mechanism::T_newton_min() { return kTmin; }
double Mechanism::T_newton_max() { return kTmax; }

double Mechanism::T_from_e(double e, std::span<const double> Y,
                           double T_guess, NewtonStats* stats) const {
  double T = std::clamp(T_guess, kTmin, kTmax);
  double dT = 0.0;
  int it = 0;
  bool converged = false;
  for (; it < 100; ++it) {
    const double f = e_mass_mix(T, Y) - e;
    const double cv = cv_mass_mix(T, Y);
    dT = -f / cv;
    T = std::clamp(T + dT, kTmin, kTmax);
    if (std::abs(dT) < 1e-9 * T) {
      converged = true;
      ++it;
      break;
    }
  }
  if (stats) {
    stats->iterations = it;
    stats->residual = std::abs(dT);
    // A NaN update never satisfies the tolerance, so `converged` already
    // reports non-finite inputs as divergence.
    stats->converged = converged;
    stats->hit_bounds = (T <= kTmin || T >= kTmax);
  }
  return T;
}

double Mechanism::T_from_h(double h, std::span<const double> Y,
                           double T_guess, NewtonStats* stats) const {
  double T = std::clamp(T_guess, kTmin, kTmax);
  double dT = 0.0;
  int it = 0;
  bool converged = false;
  for (; it < 100; ++it) {
    const double f = h_mass_mix(T, Y) - h;
    const double cp = cp_mass_mix(T, Y);
    dT = -f / cp;
    T = std::clamp(T + dT, kTmin, kTmax);
    if (std::abs(dT) < 1e-9 * T) {
      converged = true;
      ++it;
      break;
    }
  }
  if (stats) {
    stats->iterations = it;
    stats->residual = std::abs(dT);
    stats->converged = converged;
    stats->hit_bounds = (T <= kTmin || T >= kTmax);
  }
  return T;
}

double Mechanism::density(double p, double T,
                          std::span<const double> Y) const {
  return p * mean_W_from_Y(Y) / (Ru * T);
}

double Mechanism::pressure(double rho, double T,
                           std::span<const double> Y) const {
  return rho * Ru * T / mean_W_from_Y(Y);
}

void Mechanism::concentrations(double rho, std::span<const double> Y,
                               std::span<double> c) const {
  for (int i = 0; i < n_species(); ++i)
    c[i] = rho * Y[i] / species_[i].W;
}

// Stage the per-cell context (Gibbs energies, third-body total, reference
// concentration) for one cell and run the shared kernel body. Batched rows
// stage the same quantities species-major (chem/batched.cpp) and land in
// the same net_rates_ctx, which is what makes batching bitwise-neutral.
void Mechanism::net_rates(double T, double lnT, std::span<const double> c,
                          double* q_out, double* wdot) const {
  const int ns = n_species();

  // Gibbs energies for equilibrium constants, reusing the staged lnT.
  double gRT[kMaxSpecies];
  for (int i = 0; i < ns; ++i) gRT[i] = g_RT_lnT(species_[i], T, lnT);

  // Total concentration for third bodies.
  double ctot = 0.0;
  for (int i = 0; i < ns; ++i) ctot += std::max(c[i], 0.0);

  KineticsCtx ctx;
  ctx.T = T;
  ctx.lnT = lnT;
  ctx.ctot = ctot;
  // ln of c0 = p_ref/(Ru T) [kmol/m^3], as ln(p_ref/Ru) - lnT: a lone
  // subtract (no contraction hazard) that spends the staged lnT instead
  // of another std::log. The batched stager restates exactly this.
  ctx.ln_c0 = ln_c0_ref() - lnT;
  ctx.gRT = gRT;
  ctx.c = c.data();
  ctx.stride = 1;
  net_rates_ctx(ctx, q_out, wdot, 1);
}

// The pointwise kinetics kernel — the paper's REACTION_RATE cost center.
// Computes, for every reaction, the net rate of progress q_r and
// (optionally) accumulates species production rates. Never inlined: the
// scalar, batched and DLB-remote paths must all execute this one compiled
// body so -O3 cannot contract the arithmetic differently per call site
// (DESIGN.md §11).
__attribute__((noinline)) void Mechanism::net_rates_ctx(
    const KineticsCtx& ctx, double* q_out, double* wdot,
    std::ptrdiff_t out_stride) const {
  const int ns = n_species();
  const double T = ctx.T;
  const double lnT = ctx.lnT;
  const double ln_c0 = ctx.ln_c0;
  const std::ptrdiff_t st = ctx.stride;
  const double* gRT = ctx.gRT;
  const auto conc = [&](int i) { return ctx.c[i * st]; };

  if (wdot)
    for (int i = 0; i < ns; ++i) wdot[i * out_stride] = 0.0;

  for (int r = 0; r < n_reactions(); ++r) {
    const Reaction& rx = reactions_[r];

    double kf = rx.fwd.k(T, lnT);

    // Third-body concentration with efficiencies.
    double cM = ctx.ctot;
    for (const auto& [sp, eff] : rx.efficiencies)
      cM += (eff - 1.0) * std::max(conc(sp), 0.0);

    if (rx.type == Reaction::Type::falloff) {
      const double k0 = rx.low.k(T, lnT);
      const double Pr = std::max(k0 * cM / std::max(kf, 1e-300), 1e-300);
      double F = 1.0;
      if (rx.troe) {
        const Troe& tr = *rx.troe;
        double Fcent = (1.0 - tr.a) * std::exp(-T / tr.T3) +
                       tr.a * std::exp(-T / tr.T1);
        if (tr.has_T2) Fcent += std::exp(-tr.T2 / T);
        Fcent = std::max(Fcent, 1e-30);
        const double log_Fc = std::log10(Fcent);
        const double cF = -0.4 - 0.67 * log_Fc;
        const double nF = 0.75 - 1.27 * log_Fc;
        const double log_Pr = std::log10(Pr);
        const double f1 = (log_Pr + cF) / (nF - 0.14 * (log_Pr + cF));
        F = std::pow(10.0, log_Fc / (1.0 + f1 * f1));
      }
      kf *= Pr / (1.0 + Pr) * F;
    }

    // Forward rate of progress.
    double qf = kf;
    for (const auto& t : rx.forward_orders)
      qf *= conc_pow(conc(t.species), t.nu);

    // Reverse rate of progress.
    double qr = 0.0;
    if (rx.rev) {
      double kr = rx.rev->k(T, lnT);
      qr = kr;
      for (const auto& t : rx.reverse_orders)
        qr *= conc_pow(conc(t.species), t.nu);
    } else if (rx.reversible) {
      // ln Kc = -sum(nu_i g_i/RT) + dnu ln(p_ref/(Ru T))
      double dg = 0.0;
      for (const auto& t : rx.products) dg += t.nu * gRT[t.species * st];
      for (const auto& t : rx.reactants) dg -= t.nu * gRT[t.species * st];
      const double lnKc = -dg + dnu_[r] * ln_c0;
      const double kr = kf * std::exp(std::clamp(-lnKc, -230.0, 230.0));
      qr = kr;
      for (const auto& t : rx.products) qr *= conc_pow(conc(t.species), t.nu);
    }

    double q = qf - qr;
    if (rx.type == Reaction::Type::three_body) q *= cM;

    if (q_out) q_out[r] = q;
    if (wdot) {
      for (const auto& t : rx.products) wdot[t.species * out_stride] += t.nu * q;
      for (const auto& t : rx.reactants) wdot[t.species * out_stride] -= t.nu * q;
    }
  }
}

void Mechanism::production_rates(double T, std::span<const double> c,
                                 std::span<double> wdot) const {
  net_rates(T, std::log(T), c, nullptr, wdot.data());
}

void Mechanism::production_rates_lnT(double T, double lnT,
                                     std::span<const double> c,
                                     std::span<double> wdot) const {
  net_rates(T, lnT, c, nullptr, wdot.data());
}

void Mechanism::rates_of_progress(double T, std::span<const double> c,
                                  std::span<double> q) const {
  net_rates(T, std::log(T), c, q.data(), nullptr);
}

double Mechanism::heat_release_rate(double T, std::span<const double> c) const {
  double wdot[kMaxSpecies];
  net_rates(T, std::log(T), c, nullptr, wdot);
  double hrr = 0.0;
  for (int i = 0; i < n_species(); ++i)
    hrr -= h_molar(species_[i], T) * wdot[i];
  return hrr;
}

}  // namespace s3d::chem
