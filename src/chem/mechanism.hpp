#pragma once
// Reaction mechanism representation and gas-phase kinetics engine.
//
// Replaces the CHEMKIN library the paper links into S3D (section 2.6):
// elementary reversible reactions with modified-Arrhenius rates, third-body
// enhancement, Lindemann/Troe pressure falloff, duplicate reactions,
// explicit reverse rates and non-integer forward orders (for global
// mechanisms). Reverse rates of reversible elementary reactions come from
// the equilibrium constant evaluated with the NASA-7 data.

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chem/species.hpp"

namespace s3d::chem {

/// Maximum species count supported by the stack-allocated kinetics kernels.
inline constexpr int kMaxSpecies = 24;

/// ln(p_ref / Ru), computed once. Every kinetics stager derives the
/// reference-concentration log as ln_c0_ref() - lnT (a lone subtract, no
/// contraction hazard) so the scalar and batched paths agree bit for bit
/// without paying a std::log per cell.
double ln_c0_ref();

/// Modified Arrhenius rate k = A T^b exp(-E_R / T), SI units
/// (A in (m^3/kmol)^(order-1)/s, E_R = Ea/Ru in K).
struct Arrhenius {
  double A = 0.0;
  double b = 0.0;
  double E_R = 0.0;

  double k(double T, double lnT) const;
};

/// Troe falloff blending parameters.
struct Troe {
  double a = 0.0;
  double T3 = 1.0;   ///< T*** [K]
  double T1 = 1.0;   ///< T*   [K]
  double T2 = 0.0;   ///< T**  [K]; only used when has_T2
  bool has_T2 = false;
};

/// One (species index, stoichiometric coefficient) pair.
struct StoichTerm {
  int species = 0;
  double nu = 0.0;
};

/// One reaction. Build with the helpers in mechanism_builder.hpp or fill
/// directly; Mechanism validates on construction.
struct Reaction {
  enum class Type {
    elementary,  ///< k depends on T only
    three_body,  ///< rate multiplied by third-body concentration [M]
    falloff      ///< Lindemann/Troe pressure-dependent (+M) reaction
  };

  std::string equation;  ///< human-readable equation, e.g. "H+O2<=>O+OH"
  Type type = Type::elementary;
  std::vector<StoichTerm> reactants;
  std::vector<StoichTerm> products;
  /// Forward concentration orders; empty => use reactant stoichiometry.
  std::vector<StoichTerm> forward_orders;
  Arrhenius fwd;          ///< high-pressure limit for falloff reactions
  Arrhenius low;          ///< low-pressure limit k0 (falloff only)
  std::optional<Troe> troe;
  bool reversible = true;
  /// Explicit reverse Arrhenius (global mechanisms); when set, overrides
  /// the equilibrium-constant reverse. Reverse orders default to product
  /// stoichiometry.
  std::optional<Arrhenius> rev;
  std::vector<StoichTerm> reverse_orders;
  /// Per-species third-body efficiencies (defaults to 1 for all species);
  /// pairs of (species index, efficiency).
  std::vector<std::pair<int, double>> efficiencies;
};

/// A chemical mechanism: species table plus reaction list, with the
/// kinetics and mixture-thermodynamics kernels S3D++ evaluates pointwise.
class Mechanism {
 public:
  Mechanism(std::string name, std::vector<Species> species,
            std::vector<Reaction> reactions);

  const std::string& name() const { return name_; }
  int n_species() const { return static_cast<int>(species_.size()); }
  int n_reactions() const { return static_cast<int>(reactions_.size()); }

  const Species& species(int i) const { return species_[i]; }
  const std::vector<Species>& all_species() const { return species_; }
  const Reaction& reaction(int r) const { return reactions_[r]; }

  /// Index of a species by name; throws s3d::Error if absent.
  int index(std::string_view sp_name) const;
  /// Index of a species by name, or -1 if absent.
  int find(std::string_view sp_name) const;

  /// Molecular weight of species i [kg/kmol].
  double W(int i) const { return species_[i].W; }

  // --- Mixture thermodynamic state helpers (paper eqs. 5-9) ---

  /// Mean molecular weight from mass fractions [kg/kmol] (paper eq. 8).
  double mean_W_from_Y(std::span<const double> Y) const;
  /// Mean molecular weight from mole fractions [kg/kmol].
  double mean_W_from_X(std::span<const double> X) const;
  /// Convert mass fractions to mole fractions (paper eq. 9).
  void X_from_Y(std::span<const double> Y, std::span<double> X) const;
  /// Convert mole fractions to mass fractions.
  void Y_from_X(std::span<const double> X, std::span<double> Y) const;

  /// Mixture isobaric heat capacity [J/(kg K)].
  double cp_mass_mix(double T, std::span<const double> Y) const;
  /// Mixture isochoric heat capacity [J/(kg K)]; cp - cv = Ru/W.
  double cv_mass_mix(double T, std::span<const double> Y) const;
  /// Mixture specific enthalpy [J/kg] (sensible + chemical).
  double h_mass_mix(double T, std::span<const double> Y) const;
  /// Mixture specific internal energy [J/kg].
  double e_mass_mix(double T, std::span<const double> Y) const;

  /// Convergence record of one T_from_e / T_from_h Newton solve. The
  /// solver's health sentinel consumes this instead of the historical
  /// silent clamp: a non-converged or bound-pegged inversion is a
  /// numerical-health breach, not a value to integrate onwards.
  struct NewtonStats {
    int iterations = 0;       ///< Newton updates performed
    double residual = 0.0;    ///< |dT| of the last update [K]
    bool converged = false;   ///< residual met the relative tolerance
    bool hit_bounds = false;  ///< result pegged at the [Tmin, Tmax] clamp
  };

  /// Temperature bounds the Newton inversions clamp to [K]; states pegged
  /// at either bound are outside the thermodynamic fit range.
  static double T_newton_min();
  static double T_newton_max();

  /// Invert e(T) by Newton iteration (bisection fallback); returns T [K].
  /// When `stats` is non-null the convergence record is reported instead
  /// of silently clamping a diverged solve.
  double T_from_e(double e, std::span<const double> Y, double T_guess,
                  NewtonStats* stats = nullptr) const;
  /// Invert h(T); returns T [K].
  double T_from_h(double h, std::span<const double> Y, double T_guess,
                  NewtonStats* stats = nullptr) const;

  /// Ideal-gas density [kg/m^3] (paper eq. 7).
  double density(double p, double T, std::span<const double> Y) const;
  /// Ideal-gas pressure [Pa].
  double pressure(double rho, double T, std::span<const double> Y) const;

  // --- Kinetics ---

  /// Molar production rates wdot [kmol/(m^3 s)] from temperature and molar
  /// concentrations c [kmol/m^3]. This is the paper's REACTION_RATE kernel.
  void production_rates(double T, std::span<const double> c,
                        std::span<double> wdot) const;

  /// Net rates of progress q_r [kmol/(m^3 s)] per reaction.
  void rates_of_progress(double T, std::span<const double> c,
                         std::span<double> q) const;

  /// Volumetric heat release rate [W/m^3] = -sum_i h_i^molar wdot_i.
  double heat_release_rate(double T, std::span<const double> c) const;

  /// Concentrations [kmol/m^3] from (rho, Y).
  void concentrations(double rho, std::span<const double> Y,
                      std::span<double> c) const;

  /// Staged per-cell kinetics context: the shared ln-T/exp quantities the
  /// scalar path derives inline and the batched row kernels
  /// (chem/batched.hpp) stage ahead of time. `stride` addresses gRT/c as
  /// x[i * stride]; every current stager hands the kernel contiguous
  /// per-cell views (stride = 1) — the batched rows store cell-major so
  /// the hot kernel's access pattern matches the scalar stack arrays —
  /// and all paths run through the one compiled kernel body, the
  /// bitwise-equality contract of DESIGN.md §11.
  struct KineticsCtx {
    double T = 0.0;      ///< temperature [K]
    double lnT = 0.0;    ///< must be std::log(T), bit for bit
    double ctot = 0.0;   ///< sum_i max(c_i, 0), accumulated species-ascending
    double ln_c0 = 0.0;  ///< ln_c0_ref() - lnT (reference concentration)
    const double* gRT = nullptr;  ///< g_RT(species i, T) at gRT[i * stride]
    const double* c = nullptr;    ///< concentrations at c[i * stride]
    std::ptrdiff_t stride = 1;
  };

  /// The one compiled kinetics body (never inlined, DESIGN.md §11): every
  /// production-rate path — scalar calls, batched rows, DLB-hosted work
  /// parcels — lands here, so a rate computed anywhere is bitwise identical
  /// everywhere. Writes q[r] (when non-null, always stride 1) and
  /// wdot[i * out_stride] (when non-null).
  void net_rates_ctx(const KineticsCtx& ctx, double* q, double* wdot,
                     std::ptrdiff_t out_stride) const;

  /// production_rates() with a caller-supplied lnT, which must equal
  /// std::log(T) bit for bit (e.g. reused from a staged primitives pass).
  void production_rates_lnT(double T, double lnT, std::span<const double> c,
                            std::span<double> wdot) const;

 private:
  void net_rates(double T, double lnT, std::span<const double> c, double* q,
                 double* wdot) const;

  std::string name_;
  std::vector<Species> species_;
  std::vector<Reaction> reactions_;
  std::vector<double> dnu_;  ///< per-reaction sum(nu_prod) - sum(nu_react)
};

}  // namespace s3d::chem
