#pragma once
// Zero-dimensional homogeneous reactors with adaptive explicit integration.
//
// Used for mechanism validation (ignition delays, equilibrium approach) and
// to seed the vitiated-coflow composition of the lifted-flame configuration.

#include <span>
#include <vector>

#include "chem/mechanism.hpp"

namespace s3d::chem {

/// Result of one adaptive reactor integration.
struct ReactorHistory {
  std::vector<double> t;   ///< time [s]
  std::vector<double> T;   ///< temperature [K]
  std::vector<std::vector<double>> Y;  ///< mass fractions per sample
};

/// Constant-pressure adiabatic reactor:
///   dY_i/dt = wdot_i W_i / rho,  dT/dt = -sum h_i wdot_i W_i / (rho cp)
class ConstPressureReactor {
 public:
  ConstPressureReactor(const Mechanism& mech, double pressure);

  /// Set the initial state.
  void set_state(double T, std::span<const double> Y);

  double T() const { return T_; }
  double time() const { return t_; }
  std::span<const double> Y() const { return Y_; }

  /// Advance to time `t_end` with embedded Cash-Karp RK4(5) error control;
  /// `rtol`/`atol` bound the per-step error estimate.
  void advance(double t_end, double rtol = 1e-8, double atol = 1e-12);

  /// Advance while recording (t, T, Y) every `sample_dt`.
  ReactorHistory advance_recorded(double t_end, double sample_dt,
                                  double rtol = 1e-8, double atol = 1e-12);

 private:
  void rhs(double T, std::span<const double> Y, std::span<double> dY,
           double& dT) const;

  const Mechanism& mech_;
  double p_;
  double t_ = 0.0;
  double T_ = 300.0;
  double dt_ = 1e-9;  ///< current adaptive step
  std::vector<double> Y_;
};

/// Constant-volume adiabatic reactor (fixed density):
///   dY_i/dt = wdot_i W_i / rho,  dT/dt = -sum e_i wdot_i W_i / (rho cv).
/// Pressure rises as the mixture burns (knock/engine-relevant variant).
class ConstVolumeReactor {
 public:
  ConstVolumeReactor(const Mechanism& mech, double rho);

  void set_state(double T, std::span<const double> Y);

  double T() const { return T_; }
  double time() const { return t_; }
  std::span<const double> Y() const { return Y_; }
  /// Current pressure from the ideal-gas law.
  double pressure() const;

  void advance(double t_end, double rtol = 1e-8, double atol = 1e-12);

 private:
  const Mechanism& mech_;
  double rho_;
  double t_ = 0.0;
  double T_ = 300.0;
  double dt_ = 1e-9;
  std::vector<double> Y_;
};

/// Ignition delay of an initial (T0, p, Y0) state: time of maximum dT/dt.
/// Returns a negative value if no ignition occurs within `t_max`.
double ignition_delay(const Mechanism& mech, double T0, double p,
                      std::span<const double> Y0, double t_max);

/// Integrate a constant-pressure reactor long enough to approach chemical
/// equilibrium and return (T_eq, Y_eq). Useful for building "complete
/// combustion products" coflow streams (paper section 7.2).
std::pair<double, std::vector<double>> equilibrium_products(
    const Mechanism& mech, double T0, double p, std::span<const double> Y0,
    double t_burn = 0.02);

}  // namespace s3d::chem
