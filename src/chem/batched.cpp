#include "chem/batched.hpp"

namespace s3d::chem {

BatchedChemistry::BatchedChemistry(const Mechanism& mech) : mech_(&mech) {}

// Both row entries stage each cell's concentrations with the same
// contraction-free `rho * Y / W` expression as the scalar path
// (Mechanism::concentrations) and land in production_rates_lnT — the
// scalar kinetics entry with the row's staged ln T substituted for the
// per-call std::log. Staging is deliberately interleaved per cell rather
// than phase-separated into row-long loops: the measured step profile
// showed the out-of-order core hides the staging latency under the
// previous cell's kinetics tail, while phase-separated staging serializes
// against the kernel and costs ~10% of the chemistry phase. The batched
// win is therefore exactly the ln-T reuse (zero std::log per cell here;
// one in the scalar path) plus the row-extent traversal the fused pass
// and the DLB parcels need — with results bitwise identical to the
// scalar Mechanism::production_rates path by construction (one compiled
// kinetics body, DESIGN.md §11).

void BatchedChemistry::production_rates_fields(int count, std::size_t n0,
                                               const double* T,
                                               const double* lnT,
                                               const double* rho,
                                               const double* const* Y,
                                               double* wdot) {
  const Mechanism& m = *mech_;
  const int ns = m.n_species();
  double c[kMaxSpecies];
  for (int cell = 0; cell < count; ++cell) {
    const std::size_t n = n0 + static_cast<std::size_t>(cell);
    for (int i = 0; i < ns; ++i) c[i] = rho[n] * Y[i][n] / m.W(i);
    m.production_rates_lnT(
        T[n], lnT[n], {c, static_cast<std::size_t>(ns)},
        {wdot + static_cast<std::size_t>(cell) * ns,
         static_cast<std::size_t>(ns)});
  }
}

void BatchedChemistry::production_rates_batch(int count, const double* T,
                                              const double* lnT,
                                              const double* rho,
                                              const double* Y, double* wdot) {
  const Mechanism& m = *mech_;
  const int ns = m.n_species();
  double c[kMaxSpecies];
  for (int cell = 0; cell < count; ++cell) {
    const double* Yc = Y + static_cast<std::size_t>(cell) * ns;
    for (int i = 0; i < ns; ++i) c[i] = rho[cell] * Yc[i] / m.W(i);
    m.production_rates_lnT(
        T[cell], lnT[cell], {c, static_cast<std::size_t>(ns)},
        {wdot + static_cast<std::size_t>(cell) * ns,
         static_cast<std::size_t>(ns)});
  }
}

}  // namespace s3d::chem
