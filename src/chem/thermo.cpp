#include "chem/thermo.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace s3d::chem {

namespace {
const Nasa7& select(const Species& sp, double T) {
  return T < sp.T_mid ? sp.nasa_low : sp.nasa_high;
}

double cp_R_raw(const Species& sp, double T) {
  const Nasa7& a = select(sp, T);
  return a[0] + T * (a[1] + T * (a[2] + T * (a[3] + T * a[4])));
}

double h_RT_raw(const Species& sp, double T) {
  const Nasa7& a = select(sp, T);
  return a[0] + T * (a[1] / 2 + T * (a[2] / 3 + T * (a[3] / 4 + T * a[4] / 5))) +
         a[5] / T;
}

double s_R_raw(const Species& sp, double T) {
  const Nasa7& a = select(sp, T);
  return a[0] * std::log(T) +
         T * (a[1] + T * (a[2] / 2 + T * (a[3] / 3 + T * a[4] / 4))) + a[6];
}

// Outside the fit's validity range the polynomials are extended with
// constant cp (C1-continuous): h grows linearly, s logarithmically. A hard
// clamp of h would make e = h - R T *decrease* with T just outside the
// range (negative effective cv), which destabilizes the compressible
// solver whenever an acoustic rarefaction dips below T_low.
double edge(const Species& sp, double T) {
  return T < sp.T_low ? sp.T_low : sp.T_high;
}
}  // namespace

double cp_R(const Species& sp, double T) {
  if (T >= sp.T_low && T <= sp.T_high) return cp_R_raw(sp, T);
  return cp_R_raw(sp, edge(sp, T));
}

double h_RT(const Species& sp, double T) {
  if (T >= sp.T_low && T <= sp.T_high) return h_RT_raw(sp, T);
  const double Te = edge(sp, T);
  // h(T) = h(Te) + cp(Te) (T - Te)  =>  h/RT = (h_RT(Te) Te + cp_R(Te) (T - Te)) / T
  return (h_RT_raw(sp, Te) * Te + cp_R_raw(sp, Te) * (T - Te)) / T;
}

double s_R(const Species& sp, double T) {
  if (T >= sp.T_low && T <= sp.T_high) return s_R_raw(sp, T);
  const double Te = edge(sp, T);
  return s_R_raw(sp, Te) + cp_R_raw(sp, Te) * std::log(T / Te);
}

double g_RT(const Species& sp, double T) { return h_RT(sp, T) - s_R(sp, T); }

__attribute__((noinline)) double g_RT_lnT(const Species& sp, double T,
                                          double lnT) {
  if (T >= sp.T_low && T <= sp.T_high) {
    // In-range fast path: the entropy polynomial reuses the staged lnT.
    const Nasa7& a = select(sp, T);
    const double s =
        a[0] * lnT +
        T * (a[1] + T * (a[2] / 2 + T * (a[3] / 3 + T * a[4] / 4))) + a[6];
    return h_RT_raw(sp, T) - s;
  }
  // Rare out-of-range extension: same as the classic path; both kinetics
  // stagers land in this same compiled body, so the bits still agree.
  return h_RT(sp, T) - s_R(sp, T);
}

double cp_molar(const Species& sp, double T) {
  return constants::Ru * cp_R(sp, T);
}

double h_molar(const Species& sp, double T) {
  return constants::Ru * T * h_RT(sp, T);
}

double cp_mass(const Species& sp, double T) {
  return cp_molar(sp, T) / sp.W;
}

double h_mass(const Species& sp, double T) {
  return h_molar(sp, T) / sp.W;
}

double e_mass(const Species& sp, double T) {
  return h_mass(sp, T) - constants::Ru / sp.W * T;
}

}  // namespace s3d::chem
