#pragma once
// Species data: name, molecular weight, elemental composition, NASA-7
// thermodynamic polynomials, and Lennard-Jones transport parameters.
//
// This is the data model that the CHEMKIN / TRANSPORT libraries provided to
// the original S3D (paper section 2.6); here the same information is carried
// by plain structs that mechanisms fill in at construction.

#include <array>
#include <string>

namespace s3d::chem {

/// Geometry class of a molecule, used by kinetic-theory transport.
enum class Geometry { atom = 0, linear = 1, nonlinear = 2 };

/// NASA-7 polynomial set for one temperature range:
///   cp/R  = a0 + a1 T + a2 T^2 + a3 T^3 + a4 T^4
///   h/RT  = a0 + a1/2 T + a2/3 T^2 + a3/4 T^3 + a4/5 T^4 + a5/T
///   s/R   = a0 ln T + a1 T + a2/2 T^2 + a3/3 T^3 + a4/4 T^4 + a6
using Nasa7 = std::array<double, 7>;

/// Elemental composition (atoms per molecule) in the order C, H, O, N.
struct Elements {
  double C = 0, H = 0, O = 0, N = 0;
};

/// Lennard-Jones transport parameters (CHEMKIN tran.dat conventions).
struct TransportData {
  Geometry geometry = Geometry::linear;
  double eps_over_kB = 100.0;   ///< LJ well depth epsilon/kB [K]
  double sigma = 3.5;           ///< LJ collision diameter [Angstrom]
  double dipole = 0.0;          ///< dipole moment [Debye]
  double polarizability = 0.0;  ///< polarizability [Angstrom^3]
  double z_rot = 1.0;           ///< rotational relaxation number at 298 K
};

/// Complete description of one chemical species.
struct Species {
  std::string name;
  double W = 0.0;  ///< molecular weight [kg/kmol]
  Elements elements;
  double T_low = 200.0;   ///< lower validity bound of the thermo fit [K]
  double T_mid = 1000.0;  ///< switch temperature between the two fits [K]
  double T_high = 3500.0; ///< upper validity bound [K]
  Nasa7 nasa_low{};       ///< coefficients for T < T_mid
  Nasa7 nasa_high{};      ///< coefficients for T >= T_mid
  TransportData transport;
};

}  // namespace s3d::chem
