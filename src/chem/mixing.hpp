#pragma once
// Mixture composition helpers: fuel/air mixtures from equivalence ratio,
// elemental mass fractions, and the Bilger mixture fraction used by the
// lifted-flame diagnostics (paper figure 11).

#include <span>
#include <vector>

#include "chem/mechanism.hpp"

namespace s3d::chem {

/// Mass fractions of a premixed fuel/air mixture at equivalence ratio phi.
/// `fuel` must be a hydrocarbon or hydrogen species of the mechanism; air is
/// O2 + 3.76 N2 (by mole). Throws if the mechanism lacks O2 or N2.
std::vector<double> premixed_fuel_air_Y(const Mechanism& mech,
                                        std::string_view fuel, double phi);

/// Mass fractions for a two-stream fuel jet: `fuel_X` mole fractions of the
/// fuel stream (e.g. 65% H2 / 35% N2 in the paper's lifted flame).
std::vector<double> stream_Y_from_X(const Mechanism& mech,
                                    const std::vector<std::pair<std::string_view, double>>& fuel_X);

/// Elemental mass fractions (C, H, O, N order) of a composition Y.
std::array<double, 4> elemental_mass_fractions(const Mechanism& mech,
                                               std::span<const double> Y);

/// Bilger's coupling function beta = 2 Z_C/W_C + Z_H/(2 W_H) - Z_O/W_O.
double bilger_beta(const Mechanism& mech, std::span<const double> Y);

/// Bilger mixture fraction of Y between an oxidizer stream and fuel stream.
double bilger_mixture_fraction(const Mechanism& mech,
                               std::span<const double> Y,
                               std::span<const double> Y_ox,
                               std::span<const double> Y_fuel);

/// Stoichiometric mixture fraction for the given streams.
double stoichiometric_mixture_fraction(const Mechanism& mech,
                                       std::span<const double> Y_ox,
                                       std::span<const double> Y_fuel);

}  // namespace s3d::chem
