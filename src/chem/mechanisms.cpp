#include "chem/mechanisms.hpp"

#include "chem/mechanism_builder.hpp"
#include "chem/species_db.hpp"

namespace s3d::chem {

// Rate parameters from Li, Zhao, Kazakov & Dryer, Int. J. Chem. Kinet. 36
// (2004): A in mol-cm-s, Ea in cal/mol (converted to SI by MechBuilder).
Mechanism h2_li2004() {
  MechBuilder b(
      species_list({"H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2"}));

  // H2/O2 chain reactions.
  b.add("H+O2<=>O+OH", 3.547e15, -0.406, 16599.0);
  b.add("O+H2<=>H+OH", 5.080e4, 2.67, 6290.0);
  b.add("H2+OH<=>H2O+H", 2.160e8, 1.51, 3430.0);
  b.add("O+H2O<=>OH+OH", 2.970e6, 2.02, 13400.0);

  // Dissociation/recombination.
  b.add("H2+M<=>H+H+M", 4.577e19, -1.40, 104380.0)
      .eff("H2", 2.5).eff("H2O", 12.0);
  b.add("O+O+M<=>O2+M", 6.165e15, -0.50, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0);
  b.add("O+H+M<=>OH+M", 4.714e18, -1.00, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0);
  b.add("H+OH+M<=>H2O+M", 3.800e22, -2.00, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0);

  // HO2 formation (the autoignition precursor highlighted in the paper's
  // lifted-flame analysis) and consumption.
  b.add("H+O2(+M)<=>HO2(+M)", 1.475e12, 0.60, 0.0)
      .low(6.366e20, -1.72, 524.8)
      .troe(0.8, 1.0e-30, 1.0e30)
      .eff("H2", 2.0).eff("H2O", 11.0).eff("O2", 0.78);
  b.add("HO2+H<=>H2+O2", 1.660e13, 0.00, 823.0);
  b.add("HO2+H<=>OH+OH", 7.079e13, 0.00, 295.0);
  b.add("HO2+O<=>O2+OH", 3.250e13, 0.00, 0.0);
  b.add("HO2+OH<=>H2O+O2", 2.890e13, 0.00, -497.0);

  // H2O2 chemistry (duplicate HO2+HO2 pair as published).
  b.add("HO2+HO2<=>H2O2+O2", 4.200e14, 0.00, 11982.0);
  b.add("HO2+HO2<=>H2O2+O2", 1.300e11, 0.00, -1629.3);
  b.add("H2O2(+M)<=>OH+OH(+M)", 2.951e14, 0.00, 48430.0)
      .low(1.202e17, 0.00, 45500.0)
      .troe(0.5, 1.0e-30, 1.0e30)
      .eff("H2", 2.5).eff("H2O", 12.0);
  b.add("H2O2+H<=>H2O+OH", 2.410e13, 0.00, 3970.0);
  b.add("H2O2+H<=>HO2+H2", 4.820e13, 0.00, 7950.0);
  b.add("H2O2+O<=>OH+HO2", 9.550e6, 2.00, 3970.0);
  b.add("H2O2+OH<=>HO2+H2O", 1.000e12, 0.00, 0.0);
  b.add("H2O2+OH<=>HO2+H2O", 5.800e14, 0.00, 9557.0);

  return b.build("h2_li2004");
}

// BFER-style global 2-step scheme (Franzelli et al. form): a fuel-breakdown
// step with non-integer orders plus reversible CO oxidation.
Mechanism ch4_bfer2step() {
  MechBuilder b(species_list({"CH4", "O2", "CO", "CO2", "H2O", "N2"}));

  b.add("CH4+1.5O2=>CO+2H2O", 4.9e9, 0.0, 35500.0)
      .orders({{"CH4", 0.50}, {"O2", 0.65}});
  b.add("CO+0.5O2<=>CO2", 2.0e9, 0.0, 12000.0)
      .orders({{"CO", 1.0}, {"O2", 0.5}});

  return b.build("ch4_bfer2step");
}

Mechanism ch4_onestep() {
  MechBuilder b(species_list({"CH4", "O2", "CO2", "H2O", "N2"}));
  b.add("CH4+2O2=>CO2+2H2O", 2.119e11, 0.0, 30000.0)
      .orders({{"CH4", 1.0}, {"O2", 1.0}});
  return b.build("ch4_onestep");
}

// H2 subsystem as in h2_li2004 plus the CO oxidation reactions with
// Davis et al. (2005) rate parameters.
Mechanism syngas_co_h2() {
  MechBuilder b(species_list(
      {"H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "CO", "CO2", "N2"}));

  b.add("H+O2<=>O+OH", 3.547e15, -0.406, 16599.0);
  b.add("O+H2<=>H+OH", 5.080e4, 2.67, 6290.0);
  b.add("H2+OH<=>H2O+H", 2.160e8, 1.51, 3430.0);
  b.add("O+H2O<=>OH+OH", 2.970e6, 2.02, 13400.0);
  b.add("H2+M<=>H+H+M", 4.577e19, -1.40, 104380.0)
      .eff("H2", 2.5).eff("H2O", 12.0).eff("CO", 1.9).eff("CO2", 3.8);
  b.add("O+O+M<=>O2+M", 6.165e15, -0.50, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0).eff("CO", 1.9).eff("CO2", 3.8);
  b.add("O+H+M<=>OH+M", 4.714e18, -1.00, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0).eff("CO", 1.9).eff("CO2", 3.8);
  b.add("H+OH+M<=>H2O+M", 3.800e22, -2.00, 0.0)
      .eff("H2", 2.5).eff("H2O", 12.0).eff("CO", 1.9).eff("CO2", 3.8);
  b.add("H+O2(+M)<=>HO2(+M)", 1.475e12, 0.60, 0.0)
      .low(6.366e20, -1.72, 524.8)
      .troe(0.8, 1.0e-30, 1.0e30)
      .eff("H2", 2.0).eff("H2O", 11.0).eff("O2", 0.78)
      .eff("CO", 1.9).eff("CO2", 3.8);
  b.add("HO2+H<=>H2+O2", 1.660e13, 0.00, 823.0);
  b.add("HO2+H<=>OH+OH", 7.079e13, 0.00, 295.0);
  b.add("HO2+O<=>O2+OH", 3.250e13, 0.00, 0.0);
  b.add("HO2+OH<=>H2O+O2", 2.890e13, 0.00, -497.0);
  b.add("HO2+HO2<=>H2O2+O2", 4.200e14, 0.00, 11982.0);
  b.add("HO2+HO2<=>H2O2+O2", 1.300e11, 0.00, -1629.3);
  b.add("H2O2(+M)<=>OH+OH(+M)", 2.951e14, 0.00, 48430.0)
      .low(1.202e17, 0.00, 45500.0)
      .troe(0.5, 1.0e-30, 1.0e30)
      .eff("H2", 2.5).eff("H2O", 12.0).eff("CO", 1.9).eff("CO2", 3.8);
  b.add("H2O2+H<=>H2O+OH", 2.410e13, 0.00, 3970.0);
  b.add("H2O2+H<=>HO2+H2", 4.820e13, 0.00, 7950.0);
  b.add("H2O2+O<=>OH+HO2", 9.550e6, 2.00, 3970.0);
  b.add("H2O2+OH<=>HO2+H2O", 1.000e12, 0.00, 0.0);
  b.add("H2O2+OH<=>HO2+H2O", 5.800e14, 0.00, 9557.0);

  // CO oxidation.
  b.add("CO+OH<=>CO2+H", 4.760e7, 1.228, 70.0);
  b.add("CO+O2<=>CO2+O", 1.119e12, 0.00, 47700.0);
  b.add("CO+O(+M)<=>CO2(+M)", 1.362e10, 0.00, 2384.0)
      .low(1.173e24, -2.79, 4191.0)
      .eff("H2", 2.0).eff("H2O", 12.0).eff("CO", 1.75).eff("CO2", 3.6);
  b.add("CO+HO2<=>CO2+OH", 3.010e13, 0.00, 23000.0);

  return b.build("syngas_co_h2");
}

Mechanism air_inert() {
  MechBuilder b(species_list({"O2", "N2"}));
  return b.build("air_inert");
}

}  // namespace s3d::chem
