#pragma once
// SoA row-batched chemistry kernels (DESIGN.md §11).
//
// The solver's chemistry cost is per-cell calls into the pointwise
// kinetics kernel: every cell re-derives ln T before walking the NASA-7
// Gibbs evaluations and Arrhenius rates that consume it. BatchedChemistry
// evaluates a contiguous row of cells per call with the row's ln T staged
// once by the fused primitives/transport pass (zero std::log per cell
// here, one per kernel on the scalar path) and every cell landing in the
// SAME compiled kinetics body (Mechanism::net_rates_ctx via
// production_rates_lnT). Batching therefore changes staging and traversal
// only, never per-cell arithmetic: results are bitwise identical to the
// scalar Mechanism::production_rates path, which
// tests/test_chem_batched.cpp (ctest -L equivalence) pins over randomized
// and extreme states. Per-cell staging is interleaved with the kinetics
// calls rather than phase-separated into row-long staging loops — the
// out-of-order core hides interleaved staging under the previous cell's
// kinetics tail, which measured ~10% faster than SoA phase separation on
// the lifted-flame profile.

#include <cstddef>

#include "chem/mechanism.hpp"

namespace s3d::chem {

class BatchedChemistry {
 public:
  explicit BatchedChemistry(const Mechanism& mech);

  const Mechanism& mechanism() const { return *mech_; }

  /// Molar production rates for `count` cells of a contiguous row read
  /// straight from solver fields: T, lnT and rho at [n0 + cell], species
  /// mass fractions from the per-species field pointers Y[i] at
  /// [n0 + cell]. lnT[n] must equal std::log(T[n]) bit for bit. wdot is
  /// written cell-major (wdot[cell * ns + i]).
  void production_rates_fields(int count, std::size_t n0, const double* T,
                               const double* lnT, const double* rho,
                               const double* const* Y, double* wdot);

  /// Same kernel for cell-major (AoS) inputs Y[cell * ns + i]: the shape
  /// DLB work parcels and the equivalence tests drive.
  void production_rates_batch(int count, const double* T, const double* lnT,
                              const double* rho, const double* Y,
                              double* wdot);

 private:
  const Mechanism* mech_;
};

}  // namespace s3d::chem
