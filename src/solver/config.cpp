#include "solver/config.hpp"

#include <cmath>

namespace s3d::solver {

namespace {

void require(bool ok, const char* field, const std::string& why) {
  if (!ok) throw ConfigError(field, why);
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

void AdaptiveOptions::validate(const std::string& prefix) const {
  auto req = [&](bool ok, const char* field, const std::string& why) {
    if (!ok) throw ConfigError(prefix + "." + field, why);
  };
  req(block >= 1, "block", "controller block edge must be >= 1 cell");
  req(finite_positive(atol), "atol", "must be positive and finite");
  req(finite_positive(rtol), "rtol", "must be positive and finite");
  req(std::isfinite(kI) && kI > 0.0, "kI",
      "integral gain must be positive and finite");
  req(std::isfinite(kP) && kP >= 0.0, "kP",
      "proportional gain must be finite and >= 0 (0 = pure I control)");
  req(finite_positive(safety) && safety <= 1.0, "safety",
      "must lie in (0, 1]");
  req(finite_positive(dt_min_ratio) && dt_min_ratio <= 1.0, "dt_min_ratio",
      "must lie in (0, 1]");
  req(std::isfinite(dt_max_ratio) && dt_max_ratio >= dt_min_ratio &&
          dt_max_ratio <= 1.0,
      "dt_max_ratio", "must lie in [dt_min_ratio, 1]");
  req(subcycle_cap >= 1, "subcycle_cap", "must be >= 1");
  req(max_subcycle_retries >= 0, "max_subcycle_retries",
      "must be >= 0 (0 = skip straight to localized rollback)");
  req(max_local_rollbacks >= 0, "max_local_rollbacks",
      "must be >= 0 (0 = skip straight to the global rung)");
  req(dt_recover_after >= 0, "dt_recover_after",
      "must be >= 0 (0 = keep the halved dt, the legacy behavior)");
}

void Config::validate() const {
  require(mech != nullptr, "mech", "mechanism must be set");
  require(mech->n_species() >= 1, "mech", "mechanism has no species");

  const grid::AxisSpec* axes[3] = {&x, &y, &z};
  const char* axis_names[3] = {"x", "y", "z"};
  for (int a = 0; a < 3; ++a) {
    require(axes[a]->n >= 1, axis_names[a],
            "grid dimension must be >= 1 (got " +
                std::to_string(axes[a]->n) + ")");
    if (axes[a]->n > 1)
      require(finite_positive(axes[a]->length), axis_names[a],
              "active axis needs a positive finite length");
    // Axis periodicity must agree with both face BCs (inactive axes carry
    // no faces; the solver ignores them).
    if (axes[a]->n > 1) {
      const bool face_periodic =
          faces[a][0].kind == BcKind::periodic &&
          faces[a][1].kind == BcKind::periodic;
      require(axes[a]->periodic == face_periodic, "faces",
              std::string("axis ") + axis_names[a] +
                  " periodicity must match both face BCs");
    }
    for (int side = 0; side < 2; ++side) {
      const FaceBc& f = faces[a][side];
      if (axes[a]->n <= 1) continue;
      if (f.kind == BcKind::nscbc_outflow) {
        require(finite_positive(f.p_target), "faces",
                "outflow face needs a positive far-field pressure");
        require(finite_positive(f.sigma), "faces",
                "outflow face needs a positive relaxation coefficient");
      }
      require(std::isfinite(f.sponge_width) && f.sponge_width >= 0.0,
              "faces", "sponge_width must be finite and >= 0");
      require(std::isfinite(f.sponge_strength) && f.sponge_strength >= 0.0,
              "faces", "sponge_strength must be finite and >= 0");
    }
  }

  bool any_inflow = false;
  for (int a = 0; a < 3; ++a)
    for (int side = 0; side < 2; ++side)
      if (axes[a]->n > 1 && faces[a][side].kind == BcKind::nscbc_inflow)
        any_inflow = true;
  require(!any_inflow || static_cast<bool>(inflow), "inflow",
          "an nscbc_inflow face requires the inflow generator");

  require(finite_positive(cfl), "cfl",
          "CFL number must be positive and finite");
  require(finite_positive(fourier), "fourier",
          "Fourier number must be positive and finite");
  require(std::isfinite(filter_alpha) && filter_alpha > 0.0 &&
              filter_alpha <= 1.0,
          "filter_alpha", "filter strength must lie in (0, 1]");
  require(filter_interval >= 0, "filter_interval",
          "filter interval must be >= 0 (0 disables the filter)");
  require(finite_positive(T_ref), "T_ref",
          "reference temperature must be positive");
  require(finite_positive(p_ref), "p_ref",
          "reference pressure must be positive");
  require(finite_positive(Pr), "Pr", "Prandtl number must be positive");
  require(std::isfinite(visc_exp), "visc_exp",
          "viscosity exponent must be finite");
  require(std::isfinite(L_relax) && L_relax >= 0.0, "L_relax",
          "relaxation length must be finite and >= 0");
  require(finite_positive(dlb_hot_T), "dlb_hot_T",
          "DLB hot-cell temperature threshold must be positive");
  require(std::isfinite(dlb_hot_weight) && dlb_hot_weight >= 1.0,
          "dlb_hot_weight", "DLB hot-cell weight must be >= 1");
  require(std::isfinite(dlb_imbalance_tol) && dlb_imbalance_tol >= 0.0,
          "dlb_imbalance_tol", "DLB imbalance tolerance must be >= 0");
  require(dlb_parcel_cells >= 1, "dlb_parcel_cells",
          "DLB parcels must carry at least one cell");

  require(checkpoint.base_every >= 1, "checkpoint.base_every",
          "base cadence must be >= 1 (1 = every generation a base)");
  require(checkpoint.block >= 1, "checkpoint.block",
          "delta block granule must be >= 1 double");
  require(checkpoint.queue_depth >= 1, "checkpoint.queue_depth",
          "persist queue must hold at least one generation");
  require(checkpoint.persist_retries >= 0, "checkpoint.persist_retries",
          "must be >= 0 (0 = no retry)");
  require(std::isfinite(checkpoint.backoff_ms) && checkpoint.backoff_ms >= 0.0,
          "checkpoint.backoff_ms", "must be finite and >= 0");
  require(std::isfinite(checkpoint.backoff_cap_ms) &&
              checkpoint.backoff_cap_ms >= checkpoint.backoff_ms,
          "checkpoint.backoff_cap_ms", "must be finite and >= backoff_ms");

  adaptive.validate("adaptive");
}

}  // namespace s3d::solver
