#pragma once
// Fused-pass execution layer (DESIGN.md §10 "Pass fusion").
//
// The paper's node-level performance result comes from collapsing many
// independent sweeps over the ghosted fields into a few fused,
// cache-blocked passes. This layer expresses the RHS and RK stages as a
// small list of such passes:
//
//   FusedPointwise   named pointwise stages applied row by row in one
//                    traversal (one sweep carrying N stages instead of
//                    N sweeps carrying one stage each);
//   batched_deriv    derivatives of many fields along one axis in one
//                    tiled traversal of the line space, optionally
//                    accumulating a divergence (out -= df) directly
//                    into the target so the scratch round-trip of the
//                    unfused path disappears;
//   TripwireAccum    the health sentinel's conserved-state tripwires
//                    (non-finite, negative density, Y drift) evaluated
//                    per interior row inside the final state-committing
//                    pass of a step, so an armed scan costs no separate
//                    sweep.
//
// Every pass counts its traversals into a PassStats so bench_fusion can
// report sweeps-over-memory saved, and runs under a named trace span so
// the kernel profile reports the pass structure. Fusion never changes
// per-cell arithmetic, only traversal structure, so the fused plan is
// bitwise identical to the unfused reference path (proved by the golden
// and test_passes suites; the reference path stays selectable through
// Config::fusion / -DS3D_FUSION=OFF).

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "solver/field_ops.hpp"
#include "solver/layout.hpp"
#include "solver/state.hpp"

namespace s3d::solver {

/// Sweep accounting for a pass plan. A "sweep" is one loop nest
/// traversing the domain; a fused pass over K fields counts one sweep
/// carrying K stages, while the same work unfused counts K sweeps.
struct PassStats {
  long sweeps = 0;  ///< full-domain loop nests executed
  long stages = 0;  ///< pointwise stages / fields carried by the sweeps
  void count(long nstages = 1) {
    ++sweeps;
    stages += nstages;
  }
  void reset() { *this = PassStats{}; }
};

/// One contiguous x-run of cells at fixed (j, k): the granularity at
/// which fused pointwise stages interleave.
struct RowRange {
  std::size_t n0 = 0;  ///< flat index of the cell at i = i0
  int i0 = 0;          ///< first interior-based i of the run
  int count = 0;       ///< cells in the run
  int j = 0, k = 0;    ///< interior-based orthogonal indices
};

using RowFn = std::function<void(const RowRange&)>;

/// A fused pointwise pass: named stages applied row by row, all stages
/// per row, in registration order.
///
/// Legality (DESIGN.md §10): stages must write pairwise-disjoint
/// outputs, and may read any field no stage of the pass writes, plus
/// outputs of earlier stages at the current row only. Stages meeting
/// the stronger condition (reading no staged output at all) commute:
/// any permutation is bitwise identical to sequential application,
/// which test_passes asserts as a property.
class FusedPointwise {
 public:
  explicit FusedPointwise(const char* name) : name_(name) {}

  FusedPointwise& add(const char* stage, RowFn fn) {
    stages_.push_back({stage, std::move(fn)});
    return *this;
  }
  int stages() const { return static_cast<int>(stages_.size()); }
  const char* name() const { return name_; }
  const char* stage_name(int i) const { return stages_[i].name; }

  /// One traversal of the interior, every stage per row.
  void run_interior(const Layout& l, PassStats* stats) const;
  /// One traversal of an explicit row-segment list (the masked-commit
  /// shape of stiff-region subcycling, DESIGN.md §13): every stage per
  /// segment, in list order. Segments use the same RowRange encoding as
  /// the full traversals, so a stage cannot tell a masked run from a
  /// full one — same kernels, same per-cell arithmetic.
  void run_segments(std::span<const RowRange> segs, PassStats* stats) const;
  /// One traversal of interior plus the exchanged ghost shells.
  void run_valid(const Layout& l, const GhostFlags& gh,
                 PassStats* stats) const;
  /// One traversal of the full ghosted box (every row incl. corners).
  void run_full(const Layout& l, PassStats* stats) const;

  /// Reference shape: one full traversal per stage (the unfused loop
  /// structure); bitwise-identical results for any legal pass.
  void run_interior_sequential(const Layout& l, PassStats* stats) const;
  void run_valid_sequential(const Layout& l, const GhostFlags& gh,
                            PassStats* stats) const;

 private:
  struct Stage {
    const char* name;
    RowFn fn;
  };
  template <bool Fused>
  void run_rows(const Layout& l, int ilo, int ihi, int jlo, int jhi, int klo,
                int khi, PassStats* stats) const;

  const char* name_;
  std::vector<Stage> stages_;
};

/// One field of a batched derivative pass.
struct DerivTarget {
  const double* f = nullptr;  ///< ghosted source field
  double* out = nullptr;      ///< target field (same layout)
};

/// d/dx_axis of many fields in one tiled traversal of the line space.
///
/// `accumulate = false` mirrors FieldOps::deriv field by field: every
/// line of the box is visited (interior range along `axis`, all ghosted
/// orthogonal positions) and out = df is assigned. `accumulate = true`
/// is the fused divergence shape: only interior lines are visited and
/// out -= df is applied in place, replacing the unfused
/// write-scratch / read-scratch / subtract triple while staying bitwise
/// identical to it. Lines along non-unit-stride axes are tiled over the
/// unit-stride x range so the working set of a tile stays cache
/// resident across the batched fields.
void batched_deriv(const FieldOps& ops, int axis,
                   std::span<const DerivTarget> fields, bool accumulate,
                   PassStats* stats);

/// Cell code meaning "no cell", mirroring the health sentinel's
/// allreduce encoding (larger than any encodable global index).
inline constexpr double kNoCellCode = 1e300;

/// Thresholds and global-cell encoding for the conserved-state
/// tripwires (matches HealthSentinel::encode_cell bit for bit).
struct TripwireParams {
  double rho_min = 0.0;  ///< density floor
  double y_tol = 1.0;    ///< mass-fraction undershoot tolerance
  int ns = 0;            ///< species count
  int nv = 0;            ///< conserved-variable count
  std::array<int, 3> offset{0, 0, 0};  ///< rank's global index offset
  double NX = 1.0, NY = 1.0;           ///< global grid extents

  double encode_cell(int i, int j, int k) const {
    return (offset[0] + i) + NX * ((offset[1] + j) + NY * (offset[2] + k));
  }
};

/// Accumulated conserved-state tripwire verdict. check_row() applied to
/// every interior row in ascending (k, j, i) order reproduces the health
/// sentinel's separate-sweep scan exactly: first non-finite offender,
/// worst density undershoot, worst mass-fraction drift.
struct TripwireAccum {
  long nonfinite = 0;
  double nonfinite_cell = kNoCellCode;
  double rho_worst = 1e300;  ///< worst (smallest) rho at or below the floor
  double rho_cell = kNoCellCode;
  double y_worst = 0.0;  ///< worst mass-fraction undershoot magnitude
  double y_cell = kNoCellCode;
  long step = -1;  ///< step count the accumulation belongs to

  bool breached() const {
    return nonfinite > 0 || rho_cell < kNoCellCode || y_cell < kNoCellCode;
  }

  /// Evaluate the tripwires over one interior row of the conserved
  /// state: cells [i0, i0 + count) at (j, k), first cell at flat n0.
  void check_row(const State& U, const TripwireParams& p, std::size_t n0,
                 int i0, int count, int j, int k);
};

}  // namespace s3d::solver
