#include "solver/state.hpp"

#include <algorithm>
#include <cmath>

namespace s3d::solver {

void prim_from_conserved(const chem::Mechanism& mech, const State& U,
                         Prim& prim, const PrimOptions& opts,
                         PrimStats* stats) {
  const Layout& l = U.layout();
  const int ns = mech.n_species();
  const double* rho_u = U.var(UIndex::rho);
  const double* mx = U.var(UIndex::mx);
  const double* my = U.var(UIndex::my);
  const double* mz = U.var(UIndex::mz);
  const double* re0 = U.var(UIndex::e0);

  double Yp[chem::kMaxSpecies];

  for (int k = 0; k < l.nz; ++k) {
    for (int j = 0; j < l.ny; ++j) {
      const std::size_t row = l.at(0, j, k);
      for (int i = 0; i < l.nx; ++i) {
        const std::size_t n = row + i;
        const double rho = rho_u[n];
        const double inv_rho = 1.0 / rho;
        const double uu = mx[n] * inv_rho;
        const double vv = my[n] * inv_rho;
        const double ww = mz[n] * inv_rho;

        double ysum = 0.0;
        double y_min_raw = 0.0;
        for (int s = 0; s < ns - 1; ++s) {
          // Clip transient undershoots of trace species; the filter keeps
          // these at round-off scale.
          const double y_raw = U.var(UIndex::Y0 + s)[n] * inv_rho;
          y_min_raw = std::min(y_min_raw, y_raw);
          Yp[s] = std::max(y_raw, 0.0);
          ysum += Yp[s];
        }
        // The last species absorbs the residual; a clipped-to-zero value
        // here means the explicit species overshot a total of one.
        y_min_raw = std::min(y_min_raw, 1.0 - ysum);
        Yp[ns - 1] = std::max(1.0 - ysum, 0.0);
        if (opts.renormalize_y && ysum > 1.0) {
          const double inv_sum = 1.0 / ysum;
          for (int s = 0; s < ns; ++s) Yp[s] *= inv_sum;
        }
        if (stats && y_min_raw < 0.0) {
          ++stats->y_clipped;
          stats->y_most_negative =
              std::min(stats->y_most_negative, y_min_raw);
        }

        const double e0 = re0[n] * inv_rho;
        const double e_int = e0 - 0.5 * (uu * uu + vv * vv + ww * ww);
        const double T_guess = prim.T.data()[n];
        double T;
        if (stats) {
          chem::Mechanism::NewtonStats nw;
          T = mech.T_from_e(e_int, {Yp, static_cast<std::size_t>(ns)},
                            T_guess, &nw);
          if (!nw.converged) ++stats->newton_nonconverged;
          if (nw.hit_bounds) ++stats->newton_hit_bounds;
          if (nw.iterations > stats->newton_max_iterations ||
              (!nw.converged &&
               nw.residual > stats->newton_worst_residual)) {
            stats->newton_max_iterations =
                std::max(stats->newton_max_iterations, nw.iterations);
            stats->worst_cell = static_cast<std::ptrdiff_t>(n);
          }
          if (!nw.converged)
            stats->newton_worst_residual =
                std::max(stats->newton_worst_residual, nw.residual);
        } else {
          T = mech.T_from_e(e_int, {Yp, static_cast<std::size_t>(ns)},
                            T_guess);
        }

        prim.rho.data()[n] = rho;
        prim.u.data()[n] = uu;
        prim.v.data()[n] = vv;
        prim.w.data()[n] = ww;
        prim.T.data()[n] = T;
        const double Wbar =
            mech.mean_W_from_Y({Yp, static_cast<std::size_t>(ns)});
        prim.Wbar.data()[n] = Wbar;
        prim.p.data()[n] = rho * 8314.462618 / Wbar * T;
        for (int s = 0; s < ns; ++s) prim.Y[s].data()[n] = Yp[s];
      }
    }
  }
}

void point_to_conserved(const chem::Mechanism& mech, double rho, double uu,
                        double vv, double ww, double T,
                        std::span<const double> Y,
                        std::span<double> u_point) {
  const int ns = mech.n_species();
  u_point[UIndex::rho] = rho;
  u_point[UIndex::mx] = rho * uu;
  u_point[UIndex::my] = rho * vv;
  u_point[UIndex::mz] = rho * ww;
  const double e = mech.e_mass_mix(T, Y) + 0.5 * (uu * uu + vv * vv + ww * ww);
  u_point[UIndex::e0] = rho * e;
  for (int s = 0; s < ns - 1; ++s) u_point[UIndex::Y0 + s] = rho * Y[s];
}

}  // namespace s3d::solver
