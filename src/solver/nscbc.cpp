// Navier-Stokes characteristic boundary conditions (paper section 2.6,
// refs. Poinsot & Lele; Yoo & Im). LODI-based treatment:
//
// For a face with outward/inward flow, the inviscid normal terms of the
// interior RHS are replaced by a characteristic reconstruction in which
// incoming wave amplitudes are modelled:
//   - subsonic outflow: the single incoming acoustic wave is relaxed
//     toward the far-field pressure, L_in = K (p - p_inf),
//     K = sigma (1 - M^2) c / L;
//   - subsonic inflow: u, v, w, T, Y are held (their LODI time derivatives
//     vanish), density floats through the outgoing acoustic wave.

#include <cmath>

#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "numerics/stencil.hpp"
#include "solver/rhs.hpp"

namespace s3d::solver {

using constants::Ru;

void RhsEvaluator::apply_nscbc(const State& U, double t, State& dUdt) {
  for (int axis : active_axes_) {
    for (int side = 0; side < 2; ++side) {
      const BcKind kind = cfg_.faces[axis][side].kind;
      if (kind == BcKind::periodic) continue;
      // Only the rank owning the physical face applies the condition.
      const bool owns = side == 0 ? !ghosts_.lo[axis] : !ghosts_.hi[axis];
      if (!owns) continue;
      nscbc_face(U, t, dUdt, axis, side);
    }
  }
}

void RhsEvaluator::nscbc_face(const State& U, double t, State& dUdt,
                              int axis, int side) {
  (void)t;
  const FaceBc& face = cfg_.faces[axis][side];
  const int ns = mech_->n_species();
  const Layout& l = l_;
  const int n_axis = l.n(axis);
  const int m0 = side == 0 ? 0 : n_axis - 1;
  // Sampling direction for one-sided stencils: into the interior.
  const int sgn = side == 0 ? +1 : -1;
  const std::ptrdiff_t stride = l.stride(axis);

  const int a1 = (axis + 1) % 3, a2 = (axis + 2) % 3;
  const GField* vel[3] = {&prim_.u, &prim_.v, &prim_.w};

  const double L_relax = cfg_.L_relax > 0.0
                             ? cfg_.L_relax
                             : (axis == 0 ? cfg_.x.length
                                          : axis == 1 ? cfg_.y.length
                                                      : cfg_.z.length);

  double Yp[chem::kMaxSpecies], dY[chem::kMaxSpecies], LY[chem::kMaxSpecies];

  for (int q = 0; q < l.n(a2); ++q) {
    for (int r = 0; r < l.n(a1); ++r) {
      int ijk[3];
      ijk[axis] = m0;
      ijk[a1] = r;
      ijk[a2] = q;
      const std::size_t n = l.at(ijk[0], ijk[1], ijk[2]);

      const double rho = prim_.rho.data()[n];
      const double p = prim_.p.data()[n];
      const double T = prim_.T.data()[n];
      const double Wbar = prim_.Wbar.data()[n];
      const double un = vel[axis]->data()[n];
      const double ut1 = vel[a1]->data()[n];
      const double ut2 = vel[a2]->data()[n];
      for (int s = 0; s < ns; ++s) Yp[s] = prim_.Y[s].data()[n];

      const double cp =
          mech_->cp_mass_mix(T, {Yp, static_cast<std::size_t>(ns)});
      const double cv = cp - Ru / Wbar;
      const double gamma = cp / cv;
      const double c = std::sqrt(gamma * Ru * T / Wbar);

      // One-sided physical derivatives along +axis at the face.
      const double inv_h = ops_.inv_h(axis)[m0];
      auto dn = [&](const double* f) {
        return sgn * numerics::one_sided_deriv(f + n, stride, sgn) * inv_h;
      };
      const double drho = dn(prim_.rho.data());
      const double dp = dn(prim_.p.data());
      const double dun = dn(vel[axis]->data());
      const double dut1 = dn(vel[a1]->data());
      const double dut2 = dn(vel[a2]->data());
      for (int s = 0; s < ns; ++s) dY[s] = dn(prim_.Y[s].data());

      // Characteristic wave amplitudes (Poinsot-Lele).
      double L1 = (un - c) * (dp - rho * c * dun);
      double L5 = (un + c) * (dp + rho * c * dun);
      double L2 = un * (c * c * drho - dp);
      double L3 = un * dut1;
      double L4 = un * dut2;
      for (int s = 0; s < ns; ++s) LY[s] = un * dY[s];

      const double M = std::min(std::abs(un) / c, 0.99);
      const double K = face.sigma * (1.0 - M * M) * c / L_relax;

      bool hold_state = false;  // inflow: primitive state is pinned
      if (face.kind == BcKind::nscbc_outflow) {
        if (side == 1) {
          L1 = K * (p - face.p_target);
          if (un < 0.0) { L2 = L3 = L4 = 0.0; for (int s = 0; s < ns; ++s) LY[s] = 0.0; }
        } else {
          L5 = K * (p - face.p_target);
          if (un > 0.0) { L2 = L3 = L4 = 0.0; for (int s = 0; s < ns; ++s) LY[s] = 0.0; }
        }
      } else if (face.kind == BcKind::nscbc_inflow) {
        hold_state = true;
        // Outgoing acoustic wave is kept from the interior; all other
        // amplitudes follow from d(u,T,Y)/dt = 0 on the face.
        const double L_out = side == 0 ? L1 : L5;
        L1 = L_out;
        L5 = L_out;
        L2 = (gamma - 1.0) * L_out;  // from dT/dt = 0 with fixed Y
        L3 = L4 = 0.0;
        for (int s = 0; s < ns; ++s) LY[s] = 0.0;
      } else {
        continue;  // periodic faces are handled by the halo exchange
      }

      // LODI "d" system.
      const double d1 = (L2 + 0.5 * (L5 + L1)) / (c * c);
      const double d2 = 0.5 * (L5 + L1);
      const double d3 = (L5 - L1) / (2.0 * rho * c);
      const double d4 = L3;
      const double d5 = L4;

      // Primitive time derivatives contributed by the normal terms.
      const double rho_t = -d1;
      const double p_t = -d2;
      const double un_t = hold_state ? 0.0 : -d3;
      const double ut1_t = hold_state ? 0.0 : -d4;
      const double ut2_t = hold_state ? 0.0 : -d5;

      // T_t from the EOS: T = p Wbar / (rho Ru); W_t from Y_t.
      double sumYW_t = 0.0;
      for (int s = 0; s < ns; ++s) sumYW_t += (hold_state ? 0.0 : -LY[s]) / mech_->W(s);
      const double Wbar_t = -Wbar * Wbar * sumYW_t;
      const double T_t = hold_state
                             ? 0.0
                             : T * (p_t / p - rho_t / rho + Wbar_t / Wbar);

      // Conservative time derivatives replacing the normal inviscid part.
      // First remove what the interior scheme put in: recompute the
      // one-sided divergence of the normal Euler fluxes.
      auto euler_flux_div = [&](auto flux_at) {
        // flux_at(offset_index) evaluates the flux at points along the
        // normal line; differentiate one-sidedly.
        double fv[7];
        for (int jj = 0; jj < 7; ++jj) fv[jj] = flux_at(n + sgn * jj * stride);
        return sgn * numerics::one_sided_deriv(fv, 1, 1) * inv_h;
      };

      const double* re0 = U.var(UIndex::e0);
      const double div_mass = euler_flux_div([&](std::size_t m) {
        return prim_.rho.data()[m] * vel[axis]->data()[m];
      });
      const double div_mn = euler_flux_div([&](std::size_t m) {
        return prim_.rho.data()[m] * vel[axis]->data()[m] *
                   vel[axis]->data()[m] +
               prim_.p.data()[m];
      });
      const double div_mt1 = euler_flux_div([&](std::size_t m) {
        return prim_.rho.data()[m] * vel[axis]->data()[m] *
               vel[a1]->data()[m];
      });
      const double div_mt2 = euler_flux_div([&](std::size_t m) {
        return prim_.rho.data()[m] * vel[axis]->data()[m] *
               vel[a2]->data()[m];
      });
      const double div_e = euler_flux_div([&](std::size_t m) {
        return vel[axis]->data()[m] * (re0[m] + prim_.p.data()[m]);
      });

      // Energy pieces for the characteristic replacement.
      double e_int = 0.0, sum_es_Yt = 0.0;
      for (int s = 0; s < ns; ++s) {
        const double es = chem::e_mass(mech_->species(s), T);
        e_int += Yp[s] * es;
        sum_es_Yt += es * (hold_state ? 0.0 : -LY[s]);
      }
      const double ke = 0.5 * (un * un + ut1 * ut1 + ut2 * ut2);
      const double e0 = e_int + ke;
      const double e_t = cv * T_t + sum_es_Yt;
      const double ke_t = un * un_t + ut1 * ut1_t + ut2 * ut2_t;

      // Map normal/tangential components back to x/y/z momentum slots.
      double* d_rho = dUdt.var(UIndex::rho);
      double* d_e = dUdt.var(UIndex::e0);
      double* d_m[3] = {dUdt.var(UIndex::mx), dUdt.var(UIndex::my),
                        dUdt.var(UIndex::mz)};

      d_rho[n] += div_mass + rho_t;
      d_m[axis][n] += div_mn + (un * rho_t + rho * un_t);
      d_m[a1][n] += div_mt1 + (ut1 * rho_t + rho * ut1_t);
      d_m[a2][n] += div_mt2 + (ut2 * rho_t + rho * ut2_t);
      d_e[n] += div_e + (e0 * rho_t + rho * (e_t + ke_t));

      for (int s = 0; s < ns - 1; ++s) {
        const double div_Ys = euler_flux_div([&](std::size_t m) {
          return prim_.rho.data()[m] * prim_.Y[s].data()[m] *
                 vel[axis]->data()[m];
        });
        const double Ys_t = hold_state ? 0.0 : -LY[s];
        dUdt.var(UIndex::Y0 + s)[n] += div_Ys + (Yp[s] * rho_t + rho * Ys_t);
      }
    }
  }
}

}  // namespace s3d::solver
