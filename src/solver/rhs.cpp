#include "solver/rhs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "chem/mixing.hpp"
#include "solver/dt_control.hpp"
#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "common/timer.hpp"
#include "numerics/stencil.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

using constants::Ru;

namespace {

// Iterate the interior; fn(flat_index, i, j, k).
template <typename Fn>
void for_interior(const Layout& l, Fn&& fn) {
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j) {
      const std::size_t row = l.at(0, j, k);
      for (int i = 0; i < l.nx; ++i) fn(row + i, i, j, k);
    }
}

// Iterate interior plus the ghost shells that have been exchanged.
template <typename Fn>
void for_valid(const Layout& l, const GhostFlags& gh, Fn&& fn) {
  const int klo = gh.lo[2] ? -l.gz : 0, khi = l.nz + (gh.hi[2] ? l.gz : 0);
  const int jlo = gh.lo[1] ? -l.gy : 0, jhi = l.ny + (gh.hi[1] ? l.gy : 0);
  const int ilo = gh.lo[0] ? -l.gx : 0, ihi = l.nx + (gh.hi[0] ? l.gx : 0);
  for (int k = klo; k < khi; ++k)
    for (int j = jlo; j < jhi; ++j) {
      const std::size_t row = l.at(ilo, j, k);
      for (int i = 0; i < ihi - ilo; ++i) fn(row + i);
    }
}

// Same traversal as for_valid, one call per contiguous x-row. The fused
// pass (FusedPointwise::run_valid) visits rows in exactly this order.
template <typename Fn>
void for_valid_rows(const Layout& l, const GhostFlags& gh, Fn&& fn) {
  const int klo = gh.lo[2] ? -l.gz : 0, khi = l.nz + (gh.hi[2] ? l.gz : 0);
  const int jlo = gh.lo[1] ? -l.gy : 0, jhi = l.ny + (gh.hi[1] ? l.gy : 0);
  const int ilo = gh.lo[0] ? -l.gx : 0, ihi = l.nx + (gh.hi[0] ? l.gx : 0);
  for (int k = klo; k < khi; ++k)
    for (int j = jlo; j < jhi; ++j) fn(l.at(ilo, j, k), ihi - ilo);
}

// Convective-flux row kernels shared by the fused and unfused paths.
// noinline pins ONE compiled body per kernel: both traversals execute
// identical machine code over identical row extents, so the compiler's
// FP-contraction choices (FMA formation is context-sensitive at -O3)
// cannot make the two paths round differently. Inlining either side
// would re-specialize the loop and break the bitwise contract.
__attribute__((noinline)) void flux_mass_row(const double* rho,
                                             const double* ub, double* f,
                                             std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    f[n] = rho[n] * ub[n];
  }
}

__attribute__((noinline)) void flux_momentum_row(
    const double* rho, const double* ua, const double* ub, const double* pp,
    const double* taup, double* f, std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = rho[n] * ua[n] * ub[n];
    if (pp) v += pp[n];
    if (taup) v -= taup[n];
    f[n] = v;
  }
}

__attribute__((noinline)) void flux_energy_row(
    const double* re0, const double* pp, const double* ub,
    const double* const* uas, const double* const* taus, int na,
    const double* qb, double* f, std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = ub[n] * (re0[n] + pp[n]);
    for (int a = 0; a < na; ++a) v -= taus[a][n] * uas[a][n];
    if (qb) v += qb[n];
    f[n] = v;
  }
}

__attribute__((noinline)) void flux_species_row(const double* rho,
                                                const double* Ys,
                                                const double* ub,
                                                const double* Jp, double* f,
                                                std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = rho[n] * Ys[n] * ub[n];
    if (Jp) v += Jp[n];
    f[n] = v;
  }
}

// Diffusive-flux row kernels shared by the batched pass and the
// per-point reference path (which calls them with count = 1). Same
// noinline contract as the convective kernels above: one compiled body
// per multiply-add expression, so batching can never round differently
// (DESIGN.md §11).

// Stress tensor rows, paper eq. 14.
__attribute__((noinline)) void stress_row(const double* mu,
                                          const double* const* dudx,
                                          double* const* tau,
                                          const int* axes, int na,
                                          std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    const double m = mu[n];
    double divu = 0.0;
    for (int ia = 0; ia < na; ++ia) {
      const int a = axes[ia];
      divu += dudx[a * 3 + a][n];
    }
    for (int ia = 0; ia < na; ++ia) {
      const int a = axes[ia];
      for (int ib = 0; ib < na; ++ib) {
        const int b = axes[ib];
        double tv = m * (dudx[a * 3 + b][n] + dudx[b * 3 + a][n]);
        if (a == b) tv -= (2.0 / 3.0) * m * divu;
        tau[a * 3 + b][n] = tv;
      }
    }
  }
}

// Species diffusive-flux rows, paper eqs. 18-19 plus the correction
// velocity enforcing eq. 15, with the optional Soret term of eq. 16.
// J holds dY_s/dx_a on entry and the corrected fluxes on exit. D is the
// row-local cell-major diffusivity block (D[c * ns + s]); `soret` is the
// per-species constant ratio table, or nullptr when the term is off.
__attribute__((noinline)) void species_flux_row(
    const double* rho_f, const double* T_f, const double* Wbar_f,
    const double* const* Y_f, const double* const* gradW,
    const double* const* gradT, double* const* J, const double* D,
    const double* soret, const int* axes, int na, int ns, std::size_t n0,
    int count) {
  double Jp[chem::kMaxSpecies][3];
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    const double T = T_f[n];
    const double rho = rho_f[n];
    const double Wbar = Wbar_f[n];
    double sumJ[3] = {0, 0, 0};
    for (int s = 0; s < ns; ++s) {
      const double Yp = Y_f[s][n];
      const double rD = rho * D[static_cast<std::size_t>(c) * ns + s];
      const double so = soret ? soret[s] * Yp / T : 0.0;
      for (int ia = 0; ia < na; ++ia) {
        const int a = axes[ia];
        const double gy = J[s * 3 + a][n];  // holds dY_s/dx_a
        double jv = -rD * (gy + Yp * gradW[a][n] / Wbar);
        if (soret) jv -= rD * so * gradT[a][n];
        Jp[s][a] = jv;
        sumJ[a] += jv;
      }
    }
    for (int s = 0; s < ns; ++s)
      for (int ia = 0; ia < na; ++ia) {
        const int a = axes[ia];
        J[s * 3 + a][n] = Jp[s][a] - Y_f[s][n] * sumJ[a];
      }
  }
}

// Heat-flux rows, paper eq. 20: Fourier + species-enthalpy transport.
// The per-cell species enthalpies are staged once per cell instead of
// once per (axis, species) pair — the same h_mass(sp, T) values in the
// same accumulation order, so hoisting is bitwise-neutral.
__attribute__((noinline)) void heat_flux_row(
    const double* T_f, const double* lam_f, const double* const* gradT,
    const double* const* J, double* const* q, const chem::Species* sps,
    const int* axes, int na, int ns, std::size_t n0, int count) {
  double h[chem::kMaxSpecies];
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    const double T = T_f[n];
    for (int s = 0; s < ns; ++s) h[s] = chem::h_mass(sps[s], T);
    for (int ia = 0; ia < na; ++ia) {
      const int a = axes[ia];
      double qa = -lam_f[n] * gradT[a][n];
      for (int s = 0; s < ns; ++s) qa += h[s] * J[s * 3 + a][n];
      q[a][n] = qa;
    }
  }
}

}  // namespace

RhsEvaluator::RhsEvaluator(const Config& cfg, const grid::Mesh& mesh,
                           const Layout& l, std::array<int, 3> offset,
                           GhostFlags ghosts, Halo halo, vmpi::Comm* comm)
    : cfg_(cfg),
      mesh_(&mesh),
      l_(l),
      offset_(offset),
      ghosts_(ghosts),
      ops_(l, mesh, offset, ghosts),
      halo_(std::move(halo)),
      mech_(cfg.mech),
      fits_(*cfg.mech),
      bchem_(*cfg.mech) {
  S3D_REQUIRE(mech_ != nullptr, "Config.mech must be set");
  const int ns = mech_->n_species();

  prim_.allocate(l_, ns);
  // Benign defaults in never-written ghost corners so pointwise math over
  // stale cells cannot produce NaN/Inf that would slow everything down.
  prim_.rho.fill(1.0);
  prim_.p.fill(cfg_.p_ref);
  prim_.Wbar.fill(28.0);

  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      dudx_[a][b] = GField(l_);
      tau_[a][b] = GField(l_);
    }
    gradW_[a] = GField(l_);
    gradT_[a] = GField(l_);
    q_[a] = GField(l_);
  }
  J_.resize(ns);
  for (int s = 0; s < ns; ++s)
    for (int a = 0; a < 3; ++a) J_[s][a] = GField(l_);
  mu_f_ = GField(l_, 1.8e-5);
  lam_f_ = GField(l_, 0.026);
  lnT_f_ = GField(l_);
  flux_tmp_ = GField(l_);
  deriv_tmp_ = GField(l_);
  if (cfg_.fusion) {
    flux_bufs_.resize(n_conserved(ns));
    for (auto& f : flux_bufs_) f = GField(l_);
  }

  for (int a = 0; a < 3; ++a)
    if (l_.active(a)) active_axes_.push_back(a);

  // Batched-kernel plumbing: stable pointer tables for the shared row
  // kernels and row-local scratch (DESIGN.md §11). Batching rides the
  // fused plan only; the unfused path is the per-point reference.
  use_batching_ = cfg_.fusion && cfg_.batching;
  Wvec_.resize(ns);
  soret_ratio_.resize(ns);
  Yptr_.resize(ns);
  for (int s = 0; s < ns; ++s) {
    Wvec_[s] = mech_->W(s);
    soret_ratio_[s] = transport::soret_ratio(mech_->species(s));
    Yptr_[s] = prim_.Y[s].data();
  }
  const std::size_t rowlen = static_cast<std::size_t>(l_.nx);
  row_X_.resize(rowlen * ns);
  row_Y_.resize(rowlen * ns);
  row_D_.resize(rowlen * ns);
  row_wdot_.resize(rowlen * ns);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      dudx_p_[a * 3 + b] = dudx_[a][b].data();
      tau_p_[a * 3 + b] = tau_[a][b].data();
    }
    gradW_p_[a] = gradW_[a].data();
    gradT_p_[a] = gradT_[a].data();
    q_p_[a] = q_[a].data();
  }
  J_p_.resize(static_cast<std::size_t>(ns) * 3);
  for (int s = 0; s < ns; ++s)
    for (int a = 0; a < 3; ++a) J_p_[s * 3 + a] = J_[s][a].data();

  if (comm != nullptr && comm->size() > 1 && cfg_.chem_dlb)
    dlb_ = std::make_unique<ChemDlb>(*mech_, cfg_, *comm);

  // Calibrate the constant-Lewis / power-law closures at the reference
  // state (air-like if the mechanism has O2 and N2, else equimolar).
  std::vector<double> Xr(ns, 0.0), Yr(ns);
  const int io2 = mech_->find("O2"), in2 = mech_->find("N2");
  if (io2 >= 0 && in2 >= 0) {
    Xr[io2] = 0.21;
    Xr[in2] = 0.79;
  } else {
    std::fill(Xr.begin(), Xr.end(), 1.0 / ns);
  }
  mech_->Y_from_X(Xr, Yr);
  const double Tr = cfg_.T_ref, pr = cfg_.p_ref;
  const double rho_r = mech_->density(pr, Tr, Yr);
  const double cp_r = mech_->cp_mass_mix(Tr, Yr);
  const double lam_r = fits_.mixture_conductivity(Tr, Xr);
  std::vector<double> Dr(ns);
  fits_.mixture_diffusion(Tr, pr, Xr, Dr);
  Le_.resize(ns);
  for (int s = 0; s < ns; ++s) Le_[s] = lam_r / (rho_r * cp_r * Dr[s]);
  mu_ref_pl_ = fits_.mixture_viscosity(Tr, Xr);
}

// The one compiled per-cell transport-property body (never inlined): the
// per-point reference computes lnT itself and the batched pass reads it
// from the staged lnT field, but both land here with the same doubles,
// so the properties are bitwise identical across modes (DESIGN.md §11).
__attribute__((noinline)) void RhsEvaluator::compute_transport_point(
    double T, double lnT, double rho, double cp, const double* X, double& mu,
    double& lam, double* D) const {
  const int ns = mech_->n_species();
  switch (cfg_.transport) {
    case TransportModel::power_law: {
      // s3dlint:allow(libm): inside the shared noinline transport kernel
      mu = mu_ref_pl_ * std::pow(T / cfg_.T_ref, cfg_.visc_exp);
      lam = mu * cp / cfg_.Pr;
      const double alpha = lam / (rho * cp);
      for (int s = 0; s < ns; ++s) D[s] = alpha / Le_[s];
      return;
    }
    case TransportModel::constant_lewis: {
      mu = fits_.mixture_viscosity_lnT(lnT, {X, static_cast<std::size_t>(ns)});
      lam = fits_.mixture_conductivity_lnT(lnT,
                                           {X, static_cast<std::size_t>(ns)});
      const double alpha = lam / (rho * cp);
      for (int s = 0; s < ns; ++s) D[s] = alpha / Le_[s];
      return;
    }
    case TransportModel::mixture_averaged: {
      mu = fits_.mixture_viscosity_lnT(lnT, {X, static_cast<std::size_t>(ns)});
      lam = fits_.mixture_conductivity_lnT(lnT,
                                           {X, static_cast<std::size_t>(ns)});
      // p from the ideal-gas law at this point: D ~ 1/p handled inside.
      const double p = rho * Ru * T /
                       mech_->mean_W_from_X({X, static_cast<std::size_t>(ns)});
      fits_.mixture_diffusion_lnT(lnT, p, {X, static_cast<std::size_t>(ns)},
                                  {D, static_cast<std::size_t>(ns)});
      return;
    }
  }
}

void RhsEvaluator::eval(const State& U, double t, State& dUdt) {
  trace::Span sp_eval("rhs.eval", "solver");
  Timer phase;
  const int ns = mech_->n_species();
  const int nv = n_conserved(ns);

  // ---- 1. primitives ----
  phase.reset();
  {
    trace::Span sp("rhs.primitives", "solver");
    const PrimOptions popts{.renormalize_y = cfg_.y_renormalize};
    if (cfg_.count_y_clips) {
      PrimStats pstats;
      prim_from_conserved(*mech_, U, prim_, popts, &pstats);
      if (pstats.y_clipped > 0)
        trace::counter_add("health.y_clip",
                           static_cast<double>(pstats.y_clipped));
      if (pstats.newton_nonconverged > 0)
        trace::counter_add("health.newton_nonconverged",
                           static_cast<double>(pstats.newton_nonconverged));
    } else {
      prim_from_conserved(*mech_, U, prim_, popts);
    }
    pass_stats_.count(nv);  // one sweep producing all primitive fields
  }
  timers_.primitives += phase.seconds();

  // ---- 2. halo exchange of primitives (paper: ghost zone construction
  //         via non-blocking nearest-neighbour messages) ----
  phase.reset();
  {
    std::vector<double*> fields = {prim_.rho.data(), prim_.u.data(),
                                   prim_.v.data(),   prim_.w.data(),
                                   prim_.T.data(),   prim_.p.data(),
                                   prim_.Wbar.data()};
    // Total energy is needed in ghost shells for the convective flux;
    // exchange it directly from U (interior is owned by the integrator).
    fields.push_back(const_cast<double*>(U.var(UIndex::e0)));
    for (int s = 0; s < ns; ++s) fields.push_back(prim_.Y[s].data());
    halo_.exchange(fields);
  }
  timers_.halo += phase.seconds();

  if (cfg_.include_viscous) {
    // ---- 3. gradients ----
    phase.reset();
    if (cfg_.fusion) {
      // One batched pass per axis: all 5 + ns gradient fields share each
      // tiled traversal of the line space.
      trace::Span sp("pass.grad", "solver");
      std::vector<DerivTarget> targets;
      targets.reserve(5 + static_cast<std::size_t>(ns));
      for (int a : active_axes_) {
        targets.clear();
        targets.push_back({prim_.u.data(), dudx_[0][a].data()});
        targets.push_back({prim_.v.data(), dudx_[1][a].data()});
        targets.push_back({prim_.w.data(), dudx_[2][a].data()});
        targets.push_back({prim_.T.data(), gradT_[a].data()});
        targets.push_back({prim_.Wbar.data(), gradW_[a].data()});
        for (int s = 0; s < ns; ++s)
          targets.push_back({prim_.Y[s].data(), J_[s][a].data()});
        batched_deriv(ops_, a, targets, /*accumulate=*/false, &pass_stats_);
      }
    } else {
      trace::Span sp("rhs.gradients", "solver");
      for (int a : active_axes_) {
        ops_.deriv(prim_.u, a, dudx_[0][a]);
        ops_.deriv(prim_.v, a, dudx_[1][a]);
        ops_.deriv(prim_.w, a, dudx_[2][a]);
        ops_.deriv(prim_.T, a, gradT_[a]);
        ops_.deriv(prim_.Wbar, a, gradW_[a]);
        for (int s = 0; s < ns; ++s) ops_.deriv(prim_.Y[s], a, J_[s][a]);
        pass_stats_.sweeps += 5 + ns;
        pass_stats_.stages += 5 + ns;
      }
    }
    timers_.gradients += phase.seconds();

    // ---- 4. transport properties and diffusive fluxes (interior) ----
    // This is the COMPUTESPECIESDIFFFLUX / COMPUTEHEATFLUX kernel family
    // of the paper's fig. 2/4. The batched shape stages shared per-cell
    // quantities row by row as passes.* stages; the per-point shape is
    // the reference. Both call the same compiled row kernels, so they
    // are bitwise identical (DESIGN.md §11).
    phase.reset();
    if (use_batching_)
      eval_diffusive_batched();
    else
      eval_diffusive_pointwise();
    timers_.diffusive_flux += phase.seconds();

    // ---- 5. halo exchange of diffusive fluxes ----
    phase.reset();
    {
      std::vector<double*> fields;
      for (int a : active_axes_) {
        for (int b : active_axes_)
          if (b >= a) fields.push_back(tau_[a][b].data());
        fields.push_back(q_[a].data());
        for (int s = 0; s < ns; ++s) fields.push_back(J_[s][a].data());
      }
      halo_.exchange(fields);
      // Symmetric lower triangle mirrors the exchanged upper triangle.
      for (int a : active_axes_)
        for (int b : active_axes_)
          if (b < a) tau_[a][b] = tau_[b][a];
    }
    timers_.halo += phase.seconds();
  }

  // ---- 6. total flux divergences ----
  phase.reset();
  if (cfg_.fusion) {
    eval_convective_fused(U, dUdt);
  } else {
  trace::Span sp_conv("rhs.convective", "solver");
  auto du_all = dUdt.flat();
  std::fill(du_all.begin(), du_all.end(), 0.0);
  pass_stats_.count();  // dUdt zero-fill (same single sweep when fused)

  const double* re0 = U.var(UIndex::e0);
  const bool visc = cfg_.include_viscous;
  for (int b : active_axes_) {
    const GField& ub = b == 0 ? prim_.u : b == 1 ? prim_.v : prim_.w;

    auto add_div = [&](int v) {
      ops_.deriv(flux_tmp_.data(), b, deriv_tmp_.data(), deriv_tmp_.size());
      double* out = dUdt.var(v);
      for_interior(l_, [&](std::size_t n, int, int, int) {
        out[n] -= deriv_tmp_.data()[n];
      });
      pass_stats_.count();  // assemble sweep (counted at each call site)
      pass_stats_.count();  // derivative sweep
      pass_stats_.count();  // subtract sweep
    };

    // Mass: rho u_b.
    for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
      flux_mass_row(prim_.rho.data(), ub.data(), flux_tmp_.data(), n0,
                    count);
    });
    add_div(UIndex::rho);

    // Momentum components (only active axes can carry momentum).
    for (int a : active_axes_) {
      const GField& ua = a == 0 ? prim_.u : a == 1 ? prim_.v : prim_.w;
      const double* taup = visc ? tau_[a][b].data() : nullptr;
      const double* pdiag = a == b ? prim_.p.data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_momentum_row(prim_.rho.data(), ua.data(), ub.data(), pdiag,
                          taup, flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::mx + a);
    }

    // Total energy: u_b (rho e0 + p) - (tau . u)_b + q_b.
    {
      const double* uas[3] = {nullptr, nullptr, nullptr};
      const double* taus[3] = {nullptr, nullptr, nullptr};
      int na = 0;
      if (visc)
        for (int a : active_axes_) {
          uas[na] = a == 0 ? prim_.u.data()
                           : a == 1 ? prim_.v.data() : prim_.w.data();
          taus[na] = tau_[a][b].data();
          ++na;
        }
      const double* qb = visc ? q_[b].data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_energy_row(re0, prim_.p.data(), ub.data(), uas, taus, na, qb,
                        flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::e0);
    }

    // Species (first ns-1): rho Y_s u_b + J_sb.
    for (int s = 0; s < ns - 1; ++s) {
      const double* Jp = visc ? J_[s][b].data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_species_row(prim_.rho.data(), prim_.Y[s].data(), ub.data(), Jp,
                         flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::Y0 + s);
    }
  }
  }
  timers_.convective += phase.seconds();

  // ---- 7. chemistry (paper's REACTION_RATE kernel) ----
  if (cfg_.include_chemistry && mech_->n_reactions() > 0) {
    phase.reset();
    eval_chemistry(dUdt);
    timers_.reaction_rate += phase.seconds();
  }

  // ---- 8. characteristic boundary conditions + absorbing layers ----
  phase.reset();
  {
    trace::Span sp("rhs.boundary", "solver");
    apply_nscbc(U, t, dUdt);
    apply_sponges(U, dUdt);
  }
  timers_.boundary += phase.seconds();

  ++timers_.evals;
  (void)nv;
}

// Per-point reference for the diffusive phase: one cell at a time, every
// row kernel invoked with count = 1. Because these are the SAME compiled
// noinline bodies the batched pass drives over full rows, the two shapes
// agree bitwise (test_transport_batched + the golden fused/unfused
// cross-check enforce this continuously).
void RhsEvaluator::eval_diffusive_pointwise() {
  trace::Span sp("rhs.diffusive_flux", "solver");
  const int ns = mech_->n_species();
  const double* soret = cfg_.include_soret ? soret_ratio_.data() : nullptr;
  const chem::Species* sps = mech_->all_species().data();
  const int* axes = active_axes_.data();
  const int na = static_cast<int>(active_axes_.size());
  double X[chem::kMaxSpecies], Yp[chem::kMaxSpecies], D[chem::kMaxSpecies];
  for_interior(l_, [&](std::size_t n, int, int, int) {
    const double T = prim_.T.data()[n];
    const double lnT = std::log(T);  // s3dlint:allow(libm): THE one log(T)
    const double rho = prim_.rho.data()[n];
    const double Wbar = prim_.Wbar.data()[n];
    for (int s = 0; s < ns; ++s) {
      Yp[s] = prim_.Y[s].data()[n];
      X[s] = Yp[s] * Wbar / Wvec_[s];
    }
    const double cp =
        mech_->cp_mass_mix(T, {Yp, static_cast<std::size_t>(ns)});
    double mu, lam;
    compute_transport_point(T, lnT, rho, cp, X, mu, lam, D);
    mu_f_.data()[n] = mu;
    lam_f_.data()[n] = lam;
    stress_row(mu_f_.data(), dudx_p_.data(), tau_p_.data(), axes, na, n, 1);
    species_flux_row(prim_.rho.data(), prim_.T.data(), prim_.Wbar.data(),
                     Yptr_.data(), gradW_p_.data(), gradT_p_.data(),
                     J_p_.data(), D, soret, axes, na, ns, n, 1);
    heat_flux_row(prim_.T.data(), lam_f_.data(), gradT_p_.data(), J_p_.data(),
                  q_p_.data(), sps, axes, na, ns, n, 1);
  });
  pass_stats_.count();  // single fused sweep in both diffusive shapes
}

// Batched diffusive phase: a named pass over interior rows. Stage "lnT"
// evaluates the one std::log(T) per cell this evaluation; every later
// consumer (mixture fits here, kinetics in pass.chem_source) reuses it.
// Stage "transport_props" stages X cell-major and runs the shared
// per-cell property kernel; the flux stages drive the shared row kernels
// over the whole row extent at once.
void RhsEvaluator::eval_diffusive_batched() {
  trace::Span sp("rhs.diffusive_flux", "solver");
  const int ns = mech_->n_species();
  const double* soret = cfg_.include_soret ? soret_ratio_.data() : nullptr;
  const chem::Species* sps = mech_->all_species().data();
  const int* axes = active_axes_.data();
  const int na = static_cast<int>(active_axes_.size());
  const double* Tf = prim_.T.data();
  const double* rhof = prim_.rho.data();
  const double* Wbarf = prim_.Wbar.data();
  double* lnTf = lnT_f_.data();

  FusedPointwise pass("pass.transport_flux");
  pass.add("lnT", [Tf, lnTf](const RowRange& r) {
    for (int c = 0; c < r.count; ++c) {
      const std::size_t n = r.n0 + static_cast<std::size_t>(c);
      lnTf[n] = std::log(Tf[n]);  // s3dlint:allow(libm): THE one log(T)
    }
  });
  pass.add("transport_props",
           [this, ns, Tf, rhof, Wbarf, lnTf](const RowRange& r) {
             for (int c = 0; c < r.count; ++c) {
               const std::size_t n = r.n0 + static_cast<std::size_t>(c);
               double* Yc = row_Y_.data() + static_cast<std::size_t>(c) * ns;
               double* Xc = row_X_.data() + static_cast<std::size_t>(c) * ns;
               const double Wbar = Wbarf[n];
               for (int s = 0; s < ns; ++s) {
                 const double Ysp = Yptr_[s][n];
                 Yc[s] = Ysp;
                 Xc[s] = Ysp * Wbar / Wvec_[s];
               }
               const double cp = mech_->cp_mass_mix(
                   Tf[n], {Yc, static_cast<std::size_t>(ns)});
               double mu, lam;
               compute_transport_point(
                   Tf[n], lnTf[n], rhof[n], cp, Xc, mu, lam,
                   row_D_.data() + static_cast<std::size_t>(c) * ns);
               mu_f_.data()[n] = mu;
               lam_f_.data()[n] = lam;
             }
           });
  pass.add("stress", [this, axes, na](const RowRange& r) {
    stress_row(mu_f_.data(), dudx_p_.data(), tau_p_.data(), axes, na, r.n0,
               r.count);
  });
  pass.add("species_flux",
           [this, soret, axes, na, ns, Tf, rhof, Wbarf](const RowRange& r) {
             species_flux_row(rhof, Tf, Wbarf, Yptr_.data(), gradW_p_.data(),
                              gradT_p_.data(), J_p_.data(), row_D_.data(),
                              soret, axes, na, ns, r.n0, r.count);
           });
  pass.add("heat_flux", [this, sps, axes, na, ns, Tf](const RowRange& r) {
    heat_flux_row(Tf, lam_f_.data(), gradT_p_.data(), J_p_.data(), q_p_.data(),
                  sps, axes, na, ns, r.n0, r.count);
  });
  pass.run_interior(l_, &pass_stats_);
}

// Chemistry phase. With DLB armed, begin_eval ships this rank's surplus
// hot cells and returns the ascending skip list; the local kernel walks
// rows in segments between skipped cells, and finish_eval scatters the
// hosted results. Both local shapes and the DLB-hosted remote all funnel
// through Mechanism::net_rates_ctx + chem_apply_wdot_cell, so every
// rank-count / batching combination produces identical bits.
void RhsEvaluator::eval_chemistry(State& dUdt) {
  trace::Span sp("chem.reaction_rate", "chem");
  const int ns = mech_->n_species();

  const std::vector<std::size_t>* skip = nullptr;
  if (dlb_) skip = &dlb_->begin_eval(prim_, l_);
  const std::size_t skipN = skip ? skip->size() : 0;
  std::size_t scur = 0;  // cursor into the ascending skip list

  if (use_batching_) {
    const double* Tf = prim_.T.data();
    const double* rhof = prim_.rho.data();
    double* lnTf = lnT_f_.data();
    FusedPointwise pass("pass.chem_source");
    if (!cfg_.include_viscous) {
      // No transport pass ran this evaluation, so stage ln T here.
      pass.add("lnT", [Tf, lnTf](const RowRange& r) {
        for (int c = 0; c < r.count; ++c) {
          const std::size_t n = r.n0 + static_cast<std::size_t>(c);
          lnTf[n] = std::log(Tf[n]);  // s3dlint:allow(libm): one log(T)
        }
      });
    }
    pass.add("chem_source", [&, ns, Tf, rhof, lnTf](const RowRange& r) {
      int c = 0;
      while (c < r.count) {
        if (scur < skipN &&
            (*skip)[scur] == r.n0 + static_cast<std::size_t>(c)) {
          ++scur;
          ++c;
          continue;
        }
        const int run0 = c;
        while (c < r.count &&
               !(scur < skipN &&
                 (*skip)[scur] == r.n0 + static_cast<std::size_t>(c)))
          ++c;
        const int len = c - run0;
        bchem_.production_rates_fields(
            len, r.n0 + static_cast<std::size_t>(run0), Tf, lnTf, rhof,
            Yptr_.data(), row_wdot_.data());
        for (int cc = 0; cc < len; ++cc)
          chem_apply_wdot_cell(
              dUdt, r.n0 + static_cast<std::size_t>(run0 + cc),
              row_wdot_.data() + static_cast<std::size_t>(cc) * ns,
              Wvec_.data(), ns);
      }
    });
    pass.run_interior(l_, &pass_stats_);
  } else {
    double c[chem::kMaxSpecies], wdot[chem::kMaxSpecies];
    for_interior(l_, [&](std::size_t n, int, int, int) {
      if (scur < skipN && (*skip)[scur] == n) {
        ++scur;
        return;
      }
      const double rho = prim_.rho.data()[n];
      const double T = prim_.T.data()[n];
      for (int s = 0; s < ns; ++s)
        c[s] = rho * prim_.Y[s].data()[n] / Wvec_[s];
      mech_->production_rates(T, {c, static_cast<std::size_t>(ns)},
                              {wdot, static_cast<std::size_t>(ns)});
      chem_apply_wdot_cell(dUdt, n, wdot, Wvec_.data(), ns);
    });
    pass_stats_.count();
  }

  if (dlb_) dlb_->finish_eval(dUdt);
}

// Fused convective phase: per axis, ONE pointwise pass assembles every
// conserved variable's flux into flux_bufs_ and ONE batched derivative
// pass accumulates all the divergences into dUdt. Both paths call the
// same noinline flux_*_row kernels over the same row extents, so the
// results are bitwise identical by construction; only the traversal
// structure changes (2 sweeps per axis instead of 3 * nv).
void RhsEvaluator::eval_convective_fused(const State& U, State& dUdt) {
  trace::Span sp_conv("rhs.convective", "solver");
  const int ns = mech_->n_species();
  auto du_all = dUdt.flat();
  std::fill(du_all.begin(), du_all.end(), 0.0);
  pass_stats_.count();  // dUdt zero-fill

  const double* re0 = U.var(UIndex::e0);
  const bool visc = cfg_.include_viscous;
  const double* rho = prim_.rho.data();
  const double* pp = prim_.p.data();
  const double* uvw[3] = {prim_.u.data(), prim_.v.data(), prim_.w.data()};

  std::vector<DerivTarget> divs;
  for (int b : active_axes_) {
    const double* ub = uvw[b];

    FusedPointwise pass("pass.flux_assemble");
    divs.clear();

    // Mass: rho u_b.
    {
      double* fb = flux_bufs_[UIndex::rho].data();
      pass.add("mass", [=](const RowRange& r) {
        flux_mass_row(rho, ub, fb, r.n0, r.count);
      });
      divs.push_back({fb, dUdt.var(UIndex::rho)});
    }

    // Momentum components (only active axes can carry momentum).
    for (int a : active_axes_) {
      const double* ua = uvw[a];
      const double* taup = visc ? tau_[a][b].data() : nullptr;
      const double* pdiag = a == b ? pp : nullptr;
      double* fm = flux_bufs_[UIndex::mx + a].data();
      pass.add("momentum", [=](const RowRange& r) {
        flux_momentum_row(rho, ua, ub, pdiag, taup, fm, r.n0, r.count);
      });
      divs.push_back({fm, dUdt.var(UIndex::mx + a)});
    }

    // Total energy: u_b (rho e0 + p) - (tau . u)_b + q_b.
    {
      std::array<const double*, 3> uas{};
      std::array<const double*, 3> taus{};
      int na = 0;
      if (visc)
        for (int a : active_axes_) {
          uas[na] = uvw[a];
          taus[na] = tau_[a][b].data();
          ++na;
        }
      const double* qb = visc ? q_[b].data() : nullptr;
      double* fe = flux_bufs_[UIndex::e0].data();
      pass.add("energy", [=](const RowRange& r) {
        flux_energy_row(re0, pp, ub, uas.data(), taus.data(), na, qb, fe,
                        r.n0, r.count);
      });
      divs.push_back({fe, dUdt.var(UIndex::e0)});
    }

    // Species (first ns-1): rho Y_s u_b + J_sb.
    for (int s = 0; s < ns - 1; ++s) {
      const double* Ys = prim_.Y[s].data();
      const double* Jp = visc ? J_[s][b].data() : nullptr;
      double* fs = flux_bufs_[UIndex::Y0 + s].data();
      pass.add("species", [=](const RowRange& r) {
        flux_species_row(rho, Ys, ub, Jp, fs, r.n0, r.count);
      });
      divs.push_back({fs, dUdt.var(UIndex::Y0 + s)});
    }

    {
      trace::Span sp("pass.flux_assemble", "solver");
      pass.run_valid(l_, ghosts_, &pass_stats_);
    }
    {
      trace::Span sp("pass.flux_div", "solver");
      batched_deriv(ops_, b, divs, /*accumulate=*/true, &pass_stats_);
    }
  }
}

// Absorbing layers ahead of outflow faces: relax toward the same-(T,Y,u)
// state at the target pressure, whose conserved vector is (p_t/p) U, with a
// cubic strength ramp. Damps the wave pile-up the reduced-order boundary
// closures would otherwise accumulate.
void RhsEvaluator::apply_sponges(const State& U, State& dUdt) {
  for (int axis : active_axes_) {
    for (int side = 0; side < 2; ++side) {
      const FaceBc& face = cfg_.faces[axis][side];
      if (face.sponge_width <= 0.0) continue;
      if (face.kind != BcKind::nscbc_outflow) continue;

      // Face coordinate in global mesh space.
      const auto& xs = mesh_->coords(axis);
      const double x_face = side == 0 ? xs.front() : xs.back();
      // Reference sound speed for the relaxation rate.
      const double c_ref = std::sqrt(1.3 * Ru * cfg_.T_ref / 28.0);
      const double sig0 =
          face.sponge_strength * c_ref / face.sponge_width;
      const int nv = dUdt.nv();

      for_interior(l_, [&](std::size_t n, int i, int j, int k) {
        const int idx3[3] = {i, j, k};
        const double x = xs[offset_[axis] + idx3[axis]];
        const double dist = std::abs(x - x_face);
        if (dist >= face.sponge_width) return;
        const double xi = 1.0 - dist / face.sponge_width;
        const double sig = sig0 * xi * xi * xi;
        const double p = prim_.p.data()[n];
        const double fac = sig * (1.0 - face.p_target / p);
        for (int v = 0; v < nv; ++v)
          dUdt.var(v)[n] -= fac * U.var(v)[n];
      });
    }
  }
}

void RhsEvaluator::scan_cell_dt(
    const std::function<void(double, int, int, int)>& sink) const {
  const int ns = mech_->n_species();
  double Le_min = 1.0;
  for (int s = 0; s < ns; ++s) Le_min = std::min(Le_min, Le_[s]);
  double Yp[chem::kMaxSpecies];

  for_interior(l_, [&](std::size_t n, int i, int j, int k) {
    const double T = prim_.T.data()[n];
    const double rho = prim_.rho.data()[n];
    const double Wbar = prim_.Wbar.data()[n];
    for (int s = 0; s < ns; ++s) Yp[s] = prim_.Y[s].data()[n];
    const double cp =
        mech_->cp_mass_mix(T, {Yp, static_cast<std::size_t>(ns)});
    const double gamma = cp / (cp - Ru / Wbar);
    const double c = std::sqrt(gamma * Ru * T / Wbar);
    const double vel[3] = {prim_.u.data()[n], prim_.v.data()[n],
                           prim_.w.data()[n]};
    const int idx3[3] = {i, j, k};
    double dt = 1e30;
    double h_min = 1e30;
    for (int a : active_axes_) {
      const double h = 1.0 / ops_.inv_h(a)[idx3[a]];
      h_min = std::min(h_min, h);
      dt = std::min(dt, cfg_.cfl * h / (std::abs(vel[a]) + c));
    }
    if (cfg_.include_viscous) {
      const double nu = mu_f_.data()[n] / rho;
      const double alpha = lam_f_.data()[n] / (rho * cp);
      const double dmax = std::max(nu, alpha / Le_min);
      dt = std::min(dt, cfg_.fourier * h_min * h_min / std::max(dmax, 1e-30));
    }
    sink(dt, i, j, k);
  });
}

double RhsEvaluator::suggest_dt() const {
  double dt = 1e30;
  scan_cell_dt(
      [&](double dtc, int, int, int) { dt = std::min(dt, dtc); });
  return dt;
}

void RhsEvaluator::suggest_dt_blocks(const BlockMap& map,
                                     std::span<double> out) const {
  S3D_REQUIRE(static_cast<int>(out.size()) == map.n_blocks(),
              "suggest_dt_blocks: out must hold n_blocks() entries");
  std::fill(out.begin(), out.end(), 1e300);
  scan_cell_dt([&](double dtc, int i, int j, int k) {
    const int b = map.block_of_global(offset_[0] + i, offset_[1] + j,
                                      offset_[2] + k);
    out[static_cast<std::size_t>(b)] =
        std::min(out[static_cast<std::size_t>(b)], dtc);
  });
}

}  // namespace s3d::solver
