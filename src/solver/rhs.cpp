#include "solver/rhs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "chem/mixing.hpp"
#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "common/timer.hpp"
#include "numerics/stencil.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

using constants::Ru;

namespace {

// Iterate the interior; fn(flat_index, i, j, k).
template <typename Fn>
void for_interior(const Layout& l, Fn&& fn) {
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j) {
      const std::size_t row = l.at(0, j, k);
      for (int i = 0; i < l.nx; ++i) fn(row + i, i, j, k);
    }
}

// Iterate interior plus the ghost shells that have been exchanged.
template <typename Fn>
void for_valid(const Layout& l, const GhostFlags& gh, Fn&& fn) {
  const int klo = gh.lo[2] ? -l.gz : 0, khi = l.nz + (gh.hi[2] ? l.gz : 0);
  const int jlo = gh.lo[1] ? -l.gy : 0, jhi = l.ny + (gh.hi[1] ? l.gy : 0);
  const int ilo = gh.lo[0] ? -l.gx : 0, ihi = l.nx + (gh.hi[0] ? l.gx : 0);
  for (int k = klo; k < khi; ++k)
    for (int j = jlo; j < jhi; ++j) {
      const std::size_t row = l.at(ilo, j, k);
      for (int i = 0; i < ihi - ilo; ++i) fn(row + i);
    }
}

// Same traversal as for_valid, one call per contiguous x-row. The fused
// pass (FusedPointwise::run_valid) visits rows in exactly this order.
template <typename Fn>
void for_valid_rows(const Layout& l, const GhostFlags& gh, Fn&& fn) {
  const int klo = gh.lo[2] ? -l.gz : 0, khi = l.nz + (gh.hi[2] ? l.gz : 0);
  const int jlo = gh.lo[1] ? -l.gy : 0, jhi = l.ny + (gh.hi[1] ? l.gy : 0);
  const int ilo = gh.lo[0] ? -l.gx : 0, ihi = l.nx + (gh.hi[0] ? l.gx : 0);
  for (int k = klo; k < khi; ++k)
    for (int j = jlo; j < jhi; ++j) fn(l.at(ilo, j, k), ihi - ilo);
}

// Convective-flux row kernels shared by the fused and unfused paths.
// noinline pins ONE compiled body per kernel: both traversals execute
// identical machine code over identical row extents, so the compiler's
// FP-contraction choices (FMA formation is context-sensitive at -O3)
// cannot make the two paths round differently. Inlining either side
// would re-specialize the loop and break the bitwise contract.
__attribute__((noinline)) void flux_mass_row(const double* rho,
                                             const double* ub, double* f,
                                             std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    f[n] = rho[n] * ub[n];
  }
}

__attribute__((noinline)) void flux_momentum_row(
    const double* rho, const double* ua, const double* ub, const double* pp,
    const double* taup, double* f, std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = rho[n] * ua[n] * ub[n];
    if (pp) v += pp[n];
    if (taup) v -= taup[n];
    f[n] = v;
  }
}

__attribute__((noinline)) void flux_energy_row(
    const double* re0, const double* pp, const double* ub,
    const double* const* uas, const double* const* taus, int na,
    const double* qb, double* f, std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = ub[n] * (re0[n] + pp[n]);
    for (int a = 0; a < na; ++a) v -= taus[a][n] * uas[a][n];
    if (qb) v += qb[n];
    f[n] = v;
  }
}

__attribute__((noinline)) void flux_species_row(const double* rho,
                                                const double* Ys,
                                                const double* ub,
                                                const double* Jp, double* f,
                                                std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    double v = rho[n] * Ys[n] * ub[n];
    if (Jp) v += Jp[n];
    f[n] = v;
  }
}

}  // namespace

RhsEvaluator::RhsEvaluator(const Config& cfg, const grid::Mesh& mesh,
                           const Layout& l, std::array<int, 3> offset,
                           GhostFlags ghosts, Halo halo)
    : cfg_(cfg),
      mesh_(&mesh),
      l_(l),
      offset_(offset),
      ghosts_(ghosts),
      ops_(l, mesh, offset, ghosts),
      halo_(std::move(halo)),
      mech_(cfg.mech),
      fits_(*cfg.mech) {
  S3D_REQUIRE(mech_ != nullptr, "Config.mech must be set");
  const int ns = mech_->n_species();

  prim_.allocate(l_, ns);
  // Benign defaults in never-written ghost corners so pointwise math over
  // stale cells cannot produce NaN/Inf that would slow everything down.
  prim_.rho.fill(1.0);
  prim_.p.fill(cfg_.p_ref);
  prim_.Wbar.fill(28.0);

  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      dudx_[a][b] = GField(l_);
      tau_[a][b] = GField(l_);
    }
    gradW_[a] = GField(l_);
    gradT_[a] = GField(l_);
    q_[a] = GField(l_);
  }
  J_.resize(ns);
  for (int s = 0; s < ns; ++s)
    for (int a = 0; a < 3; ++a) J_[s][a] = GField(l_);
  mu_f_ = GField(l_, 1.8e-5);
  lam_f_ = GField(l_, 0.026);
  flux_tmp_ = GField(l_);
  deriv_tmp_ = GField(l_);
  if (cfg_.fusion) {
    flux_bufs_.resize(n_conserved(ns));
    for (auto& f : flux_bufs_) f = GField(l_);
  }

  for (int a = 0; a < 3; ++a)
    if (l_.active(a)) active_axes_.push_back(a);

  // Calibrate the constant-Lewis / power-law closures at the reference
  // state (air-like if the mechanism has O2 and N2, else equimolar).
  std::vector<double> Xr(ns, 0.0), Yr(ns);
  const int io2 = mech_->find("O2"), in2 = mech_->find("N2");
  if (io2 >= 0 && in2 >= 0) {
    Xr[io2] = 0.21;
    Xr[in2] = 0.79;
  } else {
    std::fill(Xr.begin(), Xr.end(), 1.0 / ns);
  }
  mech_->Y_from_X(Xr, Yr);
  const double Tr = cfg_.T_ref, pr = cfg_.p_ref;
  const double rho_r = mech_->density(pr, Tr, Yr);
  const double cp_r = mech_->cp_mass_mix(Tr, Yr);
  const double lam_r = fits_.mixture_conductivity(Tr, Xr);
  std::vector<double> Dr(ns);
  fits_.mixture_diffusion(Tr, pr, Xr, Dr);
  Le_.resize(ns);
  for (int s = 0; s < ns; ++s) Le_[s] = lam_r / (rho_r * cp_r * Dr[s]);
  mu_ref_pl_ = fits_.mixture_viscosity(Tr, Xr);
}

void RhsEvaluator::compute_transport_point(double T, double lnT, double rho,
                                           double cp, const double* X,
                                           double& mu, double& lam,
                                           double* D) const {
  const int ns = mech_->n_species();
  switch (cfg_.transport) {
    case TransportModel::power_law: {
      mu = mu_ref_pl_ * std::pow(T / cfg_.T_ref, cfg_.visc_exp);
      lam = mu * cp / cfg_.Pr;
      const double alpha = lam / (rho * cp);
      for (int s = 0; s < ns; ++s) D[s] = alpha / Le_[s];
      return;
    }
    case TransportModel::constant_lewis: {
      mu = fits_.mixture_viscosity(T, {X, static_cast<std::size_t>(ns)});
      lam = fits_.mixture_conductivity(T, {X, static_cast<std::size_t>(ns)});
      const double alpha = lam / (rho * cp);
      for (int s = 0; s < ns; ++s) D[s] = alpha / Le_[s];
      return;
    }
    case TransportModel::mixture_averaged: {
      mu = fits_.mixture_viscosity(T, {X, static_cast<std::size_t>(ns)});
      lam = fits_.mixture_conductivity(T, {X, static_cast<std::size_t>(ns)});
      // p from the ideal-gas law at this point: D ~ 1/p handled inside.
      const double p = rho * Ru * T /
                       mech_->mean_W_from_X({X, static_cast<std::size_t>(ns)});
      fits_.mixture_diffusion(T, p, {X, static_cast<std::size_t>(ns)},
                              {D, static_cast<std::size_t>(ns)});
      return;
    }
  }
}

void RhsEvaluator::eval(const State& U, double t, State& dUdt) {
  trace::Span sp_eval("rhs.eval", "solver");
  Timer phase;
  const int ns = mech_->n_species();
  const int nv = n_conserved(ns);

  // ---- 1. primitives ----
  phase.reset();
  {
    trace::Span sp("rhs.primitives", "solver");
    const PrimOptions popts{.renormalize_y = cfg_.y_renormalize};
    if (cfg_.count_y_clips) {
      PrimStats pstats;
      prim_from_conserved(*mech_, U, prim_, popts, &pstats);
      if (pstats.y_clipped > 0)
        trace::counter_add("health.y_clip",
                           static_cast<double>(pstats.y_clipped));
      if (pstats.newton_nonconverged > 0)
        trace::counter_add("health.newton_nonconverged",
                           static_cast<double>(pstats.newton_nonconverged));
    } else {
      prim_from_conserved(*mech_, U, prim_, popts);
    }
    pass_stats_.count(nv);  // one sweep producing all primitive fields
  }
  timers_.primitives += phase.seconds();

  // ---- 2. halo exchange of primitives (paper: ghost zone construction
  //         via non-blocking nearest-neighbour messages) ----
  phase.reset();
  {
    std::vector<double*> fields = {prim_.rho.data(), prim_.u.data(),
                                   prim_.v.data(),   prim_.w.data(),
                                   prim_.T.data(),   prim_.p.data(),
                                   prim_.Wbar.data()};
    // Total energy is needed in ghost shells for the convective flux;
    // exchange it directly from U (interior is owned by the integrator).
    fields.push_back(const_cast<double*>(U.var(UIndex::e0)));
    for (int s = 0; s < ns; ++s) fields.push_back(prim_.Y[s].data());
    halo_.exchange(fields);
  }
  timers_.halo += phase.seconds();

  if (cfg_.include_viscous) {
    // ---- 3. gradients ----
    phase.reset();
    if (cfg_.fusion) {
      // One batched pass per axis: all 5 + ns gradient fields share each
      // tiled traversal of the line space.
      trace::Span sp("pass.grad", "solver");
      std::vector<DerivTarget> targets;
      targets.reserve(5 + static_cast<std::size_t>(ns));
      for (int a : active_axes_) {
        targets.clear();
        targets.push_back({prim_.u.data(), dudx_[0][a].data()});
        targets.push_back({prim_.v.data(), dudx_[1][a].data()});
        targets.push_back({prim_.w.data(), dudx_[2][a].data()});
        targets.push_back({prim_.T.data(), gradT_[a].data()});
        targets.push_back({prim_.Wbar.data(), gradW_[a].data()});
        for (int s = 0; s < ns; ++s)
          targets.push_back({prim_.Y[s].data(), J_[s][a].data()});
        batched_deriv(ops_, a, targets, /*accumulate=*/false, &pass_stats_);
      }
    } else {
      trace::Span sp("rhs.gradients", "solver");
      for (int a : active_axes_) {
        ops_.deriv(prim_.u, a, dudx_[0][a]);
        ops_.deriv(prim_.v, a, dudx_[1][a]);
        ops_.deriv(prim_.w, a, dudx_[2][a]);
        ops_.deriv(prim_.T, a, gradT_[a]);
        ops_.deriv(prim_.Wbar, a, gradW_[a]);
        for (int s = 0; s < ns; ++s) ops_.deriv(prim_.Y[s], a, J_[s][a]);
        pass_stats_.sweeps += 5 + ns;
        pass_stats_.stages += 5 + ns;
      }
    }
    timers_.gradients += phase.seconds();

    // ---- 4. transport properties and diffusive fluxes (interior) ----
    // This is the COMPUTESPECIESDIFFFLUX / COMPUTEHEATFLUX kernel family
    // of the paper's fig. 2/4.
    phase.reset();
    {
    trace::Span sp("rhs.diffusive_flux", "solver");
    double X[chem::kMaxSpecies], Yp[chem::kMaxSpecies], D[chem::kMaxSpecies];
    double Jp[chem::kMaxSpecies][3];
    for_interior(l_, [&](std::size_t n, int, int, int) {
      const double T = prim_.T.data()[n];
      const double lnT = std::log(T);
      const double rho = prim_.rho.data()[n];
      const double Wbar = prim_.Wbar.data()[n];
      for (int s = 0; s < ns; ++s) {
        Yp[s] = prim_.Y[s].data()[n];
        X[s] = Yp[s] * Wbar / mech_->W(s);
      }
      const double cp =
          mech_->cp_mass_mix(T, {Yp, static_cast<std::size_t>(ns)});
      double mu, lam;
      compute_transport_point(T, lnT, rho, cp, X, mu, lam, D);
      mu_f_.data()[n] = mu;
      lam_f_.data()[n] = lam;

      // Stress tensor, paper eq. 14.
      double divu = 0.0;
      for (int a : active_axes_) divu += dudx_[a][a].data()[n];
      for (int a : active_axes_)
        for (int b : active_axes_) {
          double tv = mu * (dudx_[a][b].data()[n] + dudx_[b][a].data()[n]);
          if (a == b) tv -= (2.0 / 3.0) * mu * divu;
          tau_[a][b].data()[n] = tv;
        }

      // Species diffusive fluxes, paper eqs. 18-19, with the correction
      // that enforces eq. 15 (sum of fluxes = 0). The optional Soret term
      // is the second term of eq. 16 with constant thermal-diffusion
      // ratios.
      double sumJ[3] = {0, 0, 0};
      for (int s = 0; s < ns; ++s) {
        const double rD = rho * D[s];
        const double soret =
            cfg_.include_soret
                ? transport::soret_ratio(mech_->species(s)) * Yp[s] / T
                : 0.0;
        for (int a : active_axes_) {
          const double gy = J_[s][a].data()[n];  // holds dY_s/dx_a
          double j = -rD * (gy + Yp[s] * gradW_[a].data()[n] / Wbar);
          if (cfg_.include_soret) j -= rD * soret * gradT_[a].data()[n];
          Jp[s][a] = j;
          sumJ[a] += j;
        }
      }
      for (int s = 0; s < ns; ++s)
        for (int a : active_axes_)
          J_[s][a].data()[n] = Jp[s][a] - Yp[s] * sumJ[a];

      // Heat flux, paper eq. 20: Fourier + species-enthalpy transport.
      for (int a : active_axes_) {
        double qa = -lam * gradT_[a].data()[n];
        for (int s = 0; s < ns; ++s)
          qa += chem::h_mass(mech_->species(s), T) * J_[s][a].data()[n];
        q_[a].data()[n] = qa;
      }
    });
    pass_stats_.count();  // already a single fused sweep in both paths
    }
    timers_.diffusive_flux += phase.seconds();

    // ---- 5. halo exchange of diffusive fluxes ----
    phase.reset();
    {
      std::vector<double*> fields;
      for (int a : active_axes_) {
        for (int b : active_axes_)
          if (b >= a) fields.push_back(tau_[a][b].data());
        fields.push_back(q_[a].data());
        for (int s = 0; s < ns; ++s) fields.push_back(J_[s][a].data());
      }
      halo_.exchange(fields);
      // Symmetric lower triangle mirrors the exchanged upper triangle.
      for (int a : active_axes_)
        for (int b : active_axes_)
          if (b < a) tau_[a][b] = tau_[b][a];
    }
    timers_.halo += phase.seconds();
  }

  // ---- 6. total flux divergences ----
  phase.reset();
  if (cfg_.fusion) {
    eval_convective_fused(U, dUdt);
  } else {
  trace::Span sp_conv("rhs.convective", "solver");
  auto du_all = dUdt.flat();
  std::fill(du_all.begin(), du_all.end(), 0.0);
  pass_stats_.count();  // dUdt zero-fill (same single sweep when fused)

  const double* re0 = U.var(UIndex::e0);
  const bool visc = cfg_.include_viscous;
  for (int b : active_axes_) {
    const GField& ub = b == 0 ? prim_.u : b == 1 ? prim_.v : prim_.w;

    auto add_div = [&](int v) {
      ops_.deriv(flux_tmp_.data(), b, deriv_tmp_.data(), deriv_tmp_.size());
      double* out = dUdt.var(v);
      for_interior(l_, [&](std::size_t n, int, int, int) {
        out[n] -= deriv_tmp_.data()[n];
      });
      pass_stats_.count();  // assemble sweep (counted at each call site)
      pass_stats_.count();  // derivative sweep
      pass_stats_.count();  // subtract sweep
    };

    // Mass: rho u_b.
    for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
      flux_mass_row(prim_.rho.data(), ub.data(), flux_tmp_.data(), n0,
                    count);
    });
    add_div(UIndex::rho);

    // Momentum components (only active axes can carry momentum).
    for (int a : active_axes_) {
      const GField& ua = a == 0 ? prim_.u : a == 1 ? prim_.v : prim_.w;
      const double* taup = visc ? tau_[a][b].data() : nullptr;
      const double* pdiag = a == b ? prim_.p.data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_momentum_row(prim_.rho.data(), ua.data(), ub.data(), pdiag,
                          taup, flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::mx + a);
    }

    // Total energy: u_b (rho e0 + p) - (tau . u)_b + q_b.
    {
      const double* uas[3] = {nullptr, nullptr, nullptr};
      const double* taus[3] = {nullptr, nullptr, nullptr};
      int na = 0;
      if (visc)
        for (int a : active_axes_) {
          uas[na] = a == 0 ? prim_.u.data()
                           : a == 1 ? prim_.v.data() : prim_.w.data();
          taus[na] = tau_[a][b].data();
          ++na;
        }
      const double* qb = visc ? q_[b].data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_energy_row(re0, prim_.p.data(), ub.data(), uas, taus, na, qb,
                        flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::e0);
    }

    // Species (first ns-1): rho Y_s u_b + J_sb.
    for (int s = 0; s < ns - 1; ++s) {
      const double* Jp = visc ? J_[s][b].data() : nullptr;
      for_valid_rows(l_, ghosts_, [&](std::size_t n0, int count) {
        flux_species_row(prim_.rho.data(), prim_.Y[s].data(), ub.data(), Jp,
                         flux_tmp_.data(), n0, count);
      });
      add_div(UIndex::Y0 + s);
    }
  }
  }
  timers_.convective += phase.seconds();

  // ---- 7. chemistry (paper's REACTION_RATE kernel) ----
  if (cfg_.include_chemistry && mech_->n_reactions() > 0) {
    phase.reset();
    trace::Span sp("chem.reaction_rate", "chem");
    double c[chem::kMaxSpecies], wdot[chem::kMaxSpecies];
    for_interior(l_, [&](std::size_t n, int, int, int) {
      const double rho = prim_.rho.data()[n];
      const double T = prim_.T.data()[n];
      for (int s = 0; s < ns; ++s)
        c[s] = rho * prim_.Y[s].data()[n] / mech_->W(s);
      mech_->production_rates(T, {c, static_cast<std::size_t>(ns)},
                              {wdot, static_cast<std::size_t>(ns)});
      for (int s = 0; s < ns - 1; ++s)
        dUdt.var(UIndex::Y0 + s)[n] += wdot[s] * mech_->W(s);
    });
    pass_stats_.count();
    timers_.reaction_rate += phase.seconds();
  }

  // ---- 8. characteristic boundary conditions + absorbing layers ----
  phase.reset();
  {
    trace::Span sp("rhs.boundary", "solver");
    apply_nscbc(U, t, dUdt);
    apply_sponges(U, dUdt);
  }
  timers_.boundary += phase.seconds();

  ++timers_.evals;
  (void)nv;
}

// Fused convective phase: per axis, ONE pointwise pass assembles every
// conserved variable's flux into flux_bufs_ and ONE batched derivative
// pass accumulates all the divergences into dUdt. Both paths call the
// same noinline flux_*_row kernels over the same row extents, so the
// results are bitwise identical by construction; only the traversal
// structure changes (2 sweeps per axis instead of 3 * nv).
void RhsEvaluator::eval_convective_fused(const State& U, State& dUdt) {
  trace::Span sp_conv("rhs.convective", "solver");
  const int ns = mech_->n_species();
  auto du_all = dUdt.flat();
  std::fill(du_all.begin(), du_all.end(), 0.0);
  pass_stats_.count();  // dUdt zero-fill

  const double* re0 = U.var(UIndex::e0);
  const bool visc = cfg_.include_viscous;
  const double* rho = prim_.rho.data();
  const double* pp = prim_.p.data();
  const double* uvw[3] = {prim_.u.data(), prim_.v.data(), prim_.w.data()};

  std::vector<DerivTarget> divs;
  for (int b : active_axes_) {
    const double* ub = uvw[b];

    FusedPointwise pass("pass.flux_assemble");
    divs.clear();

    // Mass: rho u_b.
    {
      double* fb = flux_bufs_[UIndex::rho].data();
      pass.add("mass", [=](const RowRange& r) {
        flux_mass_row(rho, ub, fb, r.n0, r.count);
      });
      divs.push_back({fb, dUdt.var(UIndex::rho)});
    }

    // Momentum components (only active axes can carry momentum).
    for (int a : active_axes_) {
      const double* ua = uvw[a];
      const double* taup = visc ? tau_[a][b].data() : nullptr;
      const double* pdiag = a == b ? pp : nullptr;
      double* fm = flux_bufs_[UIndex::mx + a].data();
      pass.add("momentum", [=](const RowRange& r) {
        flux_momentum_row(rho, ua, ub, pdiag, taup, fm, r.n0, r.count);
      });
      divs.push_back({fm, dUdt.var(UIndex::mx + a)});
    }

    // Total energy: u_b (rho e0 + p) - (tau . u)_b + q_b.
    {
      std::array<const double*, 3> uas{};
      std::array<const double*, 3> taus{};
      int na = 0;
      if (visc)
        for (int a : active_axes_) {
          uas[na] = uvw[a];
          taus[na] = tau_[a][b].data();
          ++na;
        }
      const double* qb = visc ? q_[b].data() : nullptr;
      double* fe = flux_bufs_[UIndex::e0].data();
      pass.add("energy", [=](const RowRange& r) {
        flux_energy_row(re0, pp, ub, uas.data(), taus.data(), na, qb, fe,
                        r.n0, r.count);
      });
      divs.push_back({fe, dUdt.var(UIndex::e0)});
    }

    // Species (first ns-1): rho Y_s u_b + J_sb.
    for (int s = 0; s < ns - 1; ++s) {
      const double* Ys = prim_.Y[s].data();
      const double* Jp = visc ? J_[s][b].data() : nullptr;
      double* fs = flux_bufs_[UIndex::Y0 + s].data();
      pass.add("species", [=](const RowRange& r) {
        flux_species_row(rho, Ys, ub, Jp, fs, r.n0, r.count);
      });
      divs.push_back({fs, dUdt.var(UIndex::Y0 + s)});
    }

    {
      trace::Span sp("pass.flux_assemble", "solver");
      pass.run_valid(l_, ghosts_, &pass_stats_);
    }
    {
      trace::Span sp("pass.flux_div", "solver");
      batched_deriv(ops_, b, divs, /*accumulate=*/true, &pass_stats_);
    }
  }
}

// Absorbing layers ahead of outflow faces: relax toward the same-(T,Y,u)
// state at the target pressure, whose conserved vector is (p_t/p) U, with a
// cubic strength ramp. Damps the wave pile-up the reduced-order boundary
// closures would otherwise accumulate.
void RhsEvaluator::apply_sponges(const State& U, State& dUdt) {
  for (int axis : active_axes_) {
    for (int side = 0; side < 2; ++side) {
      const FaceBc& face = cfg_.faces[axis][side];
      if (face.sponge_width <= 0.0) continue;
      if (face.kind != BcKind::nscbc_outflow) continue;

      // Face coordinate in global mesh space.
      const auto& xs = mesh_->coords(axis);
      const double x_face = side == 0 ? xs.front() : xs.back();
      // Reference sound speed for the relaxation rate.
      const double c_ref = std::sqrt(1.3 * Ru * cfg_.T_ref / 28.0);
      const double sig0 =
          face.sponge_strength * c_ref / face.sponge_width;
      const int nv = dUdt.nv();

      for_interior(l_, [&](std::size_t n, int i, int j, int k) {
        const int idx3[3] = {i, j, k};
        const double x = xs[offset_[axis] + idx3[axis]];
        const double dist = std::abs(x - x_face);
        if (dist >= face.sponge_width) return;
        const double xi = 1.0 - dist / face.sponge_width;
        const double sig = sig0 * xi * xi * xi;
        const double p = prim_.p.data()[n];
        const double fac = sig * (1.0 - face.p_target / p);
        for (int v = 0; v < nv; ++v)
          dUdt.var(v)[n] -= fac * U.var(v)[n];
      });
    }
  }
}

double RhsEvaluator::suggest_dt() const {
  const int ns = mech_->n_species();
  double dt = 1e30;
  double Le_min = 1.0;
  for (int s = 0; s < ns; ++s) Le_min = std::min(Le_min, Le_[s]);
  double Yp[chem::kMaxSpecies];

  for_interior(l_, [&](std::size_t n, int i, int j, int k) {
    const double T = prim_.T.data()[n];
    const double rho = prim_.rho.data()[n];
    const double Wbar = prim_.Wbar.data()[n];
    for (int s = 0; s < ns; ++s) Yp[s] = prim_.Y[s].data()[n];
    const double cp =
        mech_->cp_mass_mix(T, {Yp, static_cast<std::size_t>(ns)});
    const double gamma = cp / (cp - Ru / Wbar);
    const double c = std::sqrt(gamma * Ru * T / Wbar);
    const double vel[3] = {prim_.u.data()[n], prim_.v.data()[n],
                           prim_.w.data()[n]};
    const int idx3[3] = {i, j, k};
    double h_min = 1e30;
    for (int a : active_axes_) {
      const double h = 1.0 / ops_.inv_h(a)[idx3[a]];
      h_min = std::min(h_min, h);
      dt = std::min(dt, cfg_.cfl * h / (std::abs(vel[a]) + c));
    }
    if (cfg_.include_viscous) {
      const double nu = mu_f_.data()[n] / rho;
      const double alpha = lam_f_.data()[n] / (rho * cp);
      const double dmax = std::max(nu, alpha / Le_min);
      dt = std::min(dt, cfg_.fourier * h_min * h_min / std::max(dmax, 1e-30));
    }
  });
  return dt;
}

}  // namespace s3d::solver
