#pragma once
// Post-processing diagnostics used by the paper's analyses:
//   - Bilger mixture fraction field and scatter data (fig. 11),
//   - reaction progress variable c from O2 (paper section 7.3) and |grad c|
//     conditional statistics (fig. 13),
//   - flame-surface contour length in 2-D slices (fig. 12 proxy),
//   - turbulence statistics for Table 1 (u', length scales, Re_t, Ka, Da).

#include <span>
#include <utility>
#include <vector>

#include "chem/mechanism.hpp"
#include "grid/mesh.hpp"
#include "solver/field_ops.hpp"
#include "solver/state.hpp"

namespace s3d::solver {

/// Bilger mixture fraction at every (valid) point of `prim`.
GField mixture_fraction_field(const chem::Mechanism& mech, const Prim& prim,
                              const Layout& l, std::span<const double> Y_ox,
                              std::span<const double> Y_fuel);

/// Progress variable c linear in Y_O2: c = (Y_u - Y_O2) / (Y_u - Y_b),
/// clipped to [0, 1] (paper: c = 0 in reactants, 1 in products).
GField progress_variable_field(const chem::Mechanism& mech, const Prim& prim,
                               const Layout& l, double Y_o2_unburnt,
                               double Y_o2_burnt);

/// |grad f| over the interior (ghost shells of f must be valid where
/// flagged; physical boundaries use one-sided closures).
GField gradient_magnitude(const FieldOps& ops, const GField& f);

/// Accumulates conditional statistics of `value` binned on `cond`.
class ConditionalStats {
 public:
  ConditionalStats(double lo, double hi, int nbins);

  void add(double cond, double value);
  /// Merge another accumulator (e.g. across snapshots or ranks).
  void merge(const ConditionalStats& other);

  int nbins() const { return static_cast<int>(count_.size()); }
  double bin_center(int b) const;
  long count(int b) const { return count_[b]; }
  double mean(int b) const;
  double stddev(int b) const;

 private:
  double lo_, hi_;
  std::vector<long> count_;
  std::vector<double> sum_, sum2_;
};

/// Length of the iso-contour f = iso in the z = k plane (marching squares
/// with linear interpolation). For the Bunsen cases this measures flame
/// surface (per unit z) and its growth with wrinkling.
double contour_length_2d(const GField& f, const Layout& l,
                         const grid::Mesh& mesh, std::array<int, 3> offset,
                         double iso, int k = 0);

/// Scatter samples (a, b) on the plane of constant local x-index i.
std::vector<std::pair<double, double>> plane_scatter(const GField& a,
                                                     const GField& b,
                                                     const Layout& l, int i);

/// RMS fluctuation of a component about its mean over a y-z window at
/// local x-index i (window given in local j/k index ranges).
double rms_on_plane(const GField& f, const Layout& l, int i, int j0, int j1,
                    int k0, int k1);

/// Integral length scale from the two-point autocorrelation of `f` along
/// axis `axis` at fixed other indices: integral of the normalized
/// autocorrelation up to its first zero crossing.
double integral_length_scale(const GField& f, const Layout& l,
                             const grid::Mesh& mesh,
                             std::array<int, 3> offset, int axis, int i_fix,
                             int j_fix, int k_fix);

/// Mean turbulent-kinetic-energy dissipation rate over the interior:
/// eps = 2 nu <S_ij S_ij> computed from the velocity-gradient fields.
/// `nu` is a representative kinematic viscosity.
double mean_dissipation(const FieldOps& ops, const Prim& prim,
                        const Layout& l, double nu);

}  // namespace s3d::solver
