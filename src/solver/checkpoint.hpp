#pragma once
// The three file kinds S3D emits and the paper's workflow manages
// (section 9):
//   (i)   restart files -- the conserved state ("the bulk of the analysis
//         data"); binary, self-describing, bit-exact round trip;
//   (ii)  analysis files -- named 1-D profiles and 2-D slices of derived
//         quantities, written more frequently than restarts (the paper's
//         "netcdf" files; here a compact self-describing binary plus text
//         traces the workflow's plot stage consumes);
//   (iii) min/max ASCII files -- per-variable extrema for the dashboard.

#include <map>
#include <string>
#include <vector>

#include "solver/solver.hpp"

namespace s3d::solver {

/// Write the solver's conserved state (interior only) with grid/time
/// metadata. Serial solvers only (a parallel run writes per-rank files via
/// the I/O layer; see iosim for the shared-file strategies).
void write_restart(const std::string& path, const Solver& s);

/// Restore a restart file into `s`; grid extents and variable count must
/// match. Restores the simulation time; the state is bit-exact.
void read_restart(const std::string& path, Solver& s);

/// Simulation time recorded in a restart file (cheap header peek).
double restart_time(const std::string& path);

/// The "netcdf" analysis-file substitute: named 1-D profiles and 2-D
/// slices in one self-describing binary container.
class AnalysisFile {
 public:
  /// Add an x-y trace (the workflow plots these).
  void add_profile(const std::string& name, std::vector<double> x,
                   std::vector<double> y);
  /// Add a 2-D slice stored row-major (ny rows of nx).
  void add_slice(const std::string& name, int nx, int ny,
                 std::vector<double> data);

  const std::vector<std::string>& profile_names() const { return p_names_; }
  const std::vector<std::string>& slice_names() const { return s_names_; }
  const std::pair<std::vector<double>, std::vector<double>>& profile(
      const std::string& name) const;
  /// Slice extents and data.
  std::tuple<int, int, const std::vector<double>*> slice(
      const std::string& name) const;

  void write(const std::string& path) const;
  static AnalysisFile read(const std::string& path);

  /// Export every profile as whitespace x-y text files next to `stem`
  /// (stem + "_" + name + ".xy"), the format the workflow's PlotXYActor
  /// consumes. Returns the written paths.
  std::vector<std::string> export_xy(const std::string& stem) const;

 private:
  std::vector<std::string> p_names_, s_names_;
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      profiles_;
  std::map<std::string, std::tuple<int, int, std::vector<double>>> slices_;
};

/// Write a min/max ASCII file ("var min max" per line, the dashboard
/// format).
void write_minmax(const std::string& path,
                  const std::map<std::string, std::pair<double, double>>& mm);

/// Collect min/max of the standard monitored variables (T, p, u, |Y_i|
/// maxima for the radical species present) from the current primitives.
std::map<std::string, std::pair<double, double>> collect_minmax(Solver& s);

}  // namespace s3d::solver
