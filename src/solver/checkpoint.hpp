#pragma once
// The three file kinds S3D emits and the paper's workflow manages
// (section 9):
//   (i)   restart files -- the conserved state ("the bulk of the analysis
//         data"); binary, self-describing, bit-exact round trip;
//   (ii)  analysis files -- named 1-D profiles and 2-D slices of derived
//         quantities, written more frequently than restarts (the paper's
//         "netcdf" files; here a compact self-describing binary plus text
//         traces the workflow's plot stage consumes);
//   (iii) min/max ASCII files -- per-variable extrema for the dashboard.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solver/ckpt_store.hpp"
#include "solver/solver.hpp"

namespace s3d::solver {

/// Write the solver's conserved state (interior only) with grid/time
/// metadata. Serial solvers only (a parallel run writes per-rank files via
/// the I/O layer; see iosim for the shared-file strategies). Durable:
/// the image is staged to `<path>.tmp` and atomically renamed into place,
/// so a crash mid-write never leaves a half-written restart at `path`.
void write_restart(const std::string& path, const Solver& s);

/// Restore a restart file into `s`; grid extents and variable count must
/// match. Restores the simulation time; the state is bit-exact. The
/// solver is only touched after the trailing checksum verifies, so a
/// corrupted file cannot half-load.
void read_restart(const std::string& path, Solver& s);

/// Simulation time recorded in a restart file (cheap header peek).
double restart_time(const std::string& path);

/// Rotating, manifest-tracked series of restart generations
/// (DESIGN.md "Resilience" + §12): `dir/stem.g<NNNNNN>.rst` plus a
/// `dir/stem.manifest` listing generations newest-first. Since the delta
/// checkpoint store landed this is a thin facade over CkptStore: base
/// generations stay byte-identical restart files, intermediate
/// generations are block-delta records, the manifest carries per-entry
/// validity bits, and (when opt.write_behind) a persister thread takes
/// the file I/O off the step path. Recovery walks the generation table
/// newest-first, skipping known-invalid entries in O(1).
class RestartSeries {
 public:
  RestartSeries(std::string dir, std::string stem, int keep_last = 3,
                CkptOptions opt = {});
  ~RestartSeries();
  RestartSeries(const RestartSeries&) = delete;
  RestartSeries& operator=(const RestartSeries&) = delete;

  const std::string& dir() const;
  const std::string& stem() const;
  int keep_last() const;

  std::string path(long gen) const;
  std::string manifest_path() const;

  /// Checkpoint the solver as generation `gen` (typically its step
  /// count), update the manifest and prune old generations. With
  /// write-behind enabled this costs one encode + bounded enqueue.
  void write(const Solver& s, long gen);

  /// Known generations, newest first (manifest union directory scan, so
  /// a lost or corrupted manifest degrades to the scan).
  std::vector<long> generations() const;

  /// Validate-and-load one generation; false (with the reason in `err`)
  /// when the file is missing, corrupt, or mismatched.
  bool try_load(long gen, Solver& s, std::string* err = nullptr) const;

  /// Load the newest generation that validates; returns its number, or
  /// -1 when no valid generation exists. Skipped generations are
  /// reported through `skipped` ("gen N: reason") when provided.
  long read_latest(Solver& s, std::vector<std::string>* skipped = nullptr)
      const;

  /// Block until queued write-behind persists have settled (no-op when
  /// synchronous).
  void drain() const;

  /// Store accounting (delta ratio, persist failures, queue high-water).
  CkptStats stats() const;

 private:
  std::unique_ptr<CkptStore> store_;
};

/// The "netcdf" analysis-file substitute: named 1-D profiles and 2-D
/// slices in one self-describing binary container.
class AnalysisFile {
 public:
  /// Add an x-y trace (the workflow plots these).
  void add_profile(const std::string& name, std::vector<double> x,
                   std::vector<double> y);
  /// Add a 2-D slice stored row-major (ny rows of nx).
  void add_slice(const std::string& name, int nx, int ny,
                 std::vector<double> data);

  const std::vector<std::string>& profile_names() const { return p_names_; }
  const std::vector<std::string>& slice_names() const { return s_names_; }
  const std::pair<std::vector<double>, std::vector<double>>& profile(
      const std::string& name) const;
  /// Slice extents and data.
  std::tuple<int, int, const std::vector<double>*> slice(
      const std::string& name) const;

  void write(const std::string& path) const;
  static AnalysisFile read(const std::string& path);

  /// Export every profile as whitespace x-y text files next to `stem`
  /// (stem + "_" + name + ".xy"), the format the workflow's PlotXYActor
  /// consumes. Returns the written paths.
  std::vector<std::string> export_xy(const std::string& stem) const;

 private:
  std::vector<std::string> p_names_, s_names_;
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      profiles_;
  std::map<std::string, std::tuple<int, int, std::vector<double>>> slices_;
};

/// Write a min/max ASCII file ("var min max" per line, the dashboard
/// format).
void write_minmax(const std::string& path,
                  const std::map<std::string, std::pair<double, double>>& mm);

/// Collect min/max of the standard monitored variables (T, p, u, |Y_i|
/// maxima for the radical species present) from the current primitives.
std::map<std::string, std::pair<double, double>> collect_minmax(Solver& s);

}  // namespace s3d::solver
