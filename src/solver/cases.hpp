#pragma once
// Ready-made problem configurations reproducing the paper's runs:
//   - pressure_wave_case: the single-node performance model problem of
//     section 4.1 (non-reacting pressure wave on a periodic box),
//   - lifted_jet_case: the autoigniting lifted H2/N2 jet flame in hot
//     coflow of section 6 (65% H2 / 35% N2 at 400 K into 1100 K air),
//   - bunsen_case: the lean premixed CH4/air slot Bunsen flame of section
//     7 (phi = 0.7, 800 K reactants, hot-products coflow), parameterized
//     by turbulence intensity for cases A/B/C of Table 1.
//
// Scaled-down defaults run in minutes on one core (see DESIGN.md sizing
// policy); every dimension is adjustable.

#include <memory>
#include <vector>

#include "solver/config.hpp"
#include "solver/turbulence.hpp"

namespace s3d::solver {

/// A complete run setup: configuration, initial condition, inflow
/// turbulence, and the stream compositions needed by the diagnostics.
struct CaseSetup {
  Config cfg;
  InitFn init;
  std::shared_ptr<SyntheticTurbulence> turb;
  std::vector<double> Y_fuel;  ///< fuel-stream composition
  std::vector<double> Y_ox;    ///< oxidizer/coflow composition
  double Z_st = 0.0;           ///< stoichiometric mixture fraction
  double Y_o2_unburnt = 0.0;   ///< progress-variable endpoints (premixed)
  double Y_o2_burnt = 0.0;
  double T_burnt = 0.0;        ///< adiabatic product temperature (premixed)
};

/// Section 4.1 model problem: quiescent air with a Gaussian pressure pulse
/// on an n^3 (or n x n x 1 for two_d) periodic box.
CaseSetup pressure_wave_case(int n, bool two_d = false);

struct LiftedJetParams {
  int nx = 192, ny = 144;
  double Lx = 0.012, Ly = 0.012;  ///< [m]
  double slot_h = 0.0012;         ///< jet width [m]
  double u_jet = 120.0;           ///< [m/s]
  double u_coflow = 4.0;          ///< [m/s]
  double T_fuel = 400.0;          ///< [K]
  double T_coflow = 1100.0;       ///< [K] (above H2 crossover: autoignitive)
  double p = 101325.0;
  double u_rms = 12.0;            ///< inflow turbulence intensity [m/s]
  double turb_len = 0.0006;       ///< inflow turbulence length scale [m]
  double y_stretch = 1.2;         ///< transverse mesh stretching
  TransportModel transport = TransportModel::constant_lewis;
  std::uint64_t seed = 0x5eed;
};

/// Lifted turbulent H2/N2 jet flame in heated coflow (paper section 6).
CaseSetup lifted_jet_case(const LiftedJetParams& p);

struct BunsenParams {
  int nx = 144, ny = 120;
  double Lx = 0.012, Ly = 0.009;
  double slot_h = 0.0012;
  double u_jet = 60.0;
  double u_coflow = 15.0;
  double phi = 0.7;      ///< equivalence ratio (paper: 0.7)
  double T_unburnt = 800.0;
  double p = 101325.0;
  double u_rms = 5.0;    ///< inflow turbulence intensity [m/s]
  double turb_len = 0.0008;
  double y_stretch = 1.0;
  TransportModel transport = TransportModel::power_law;
  std::uint64_t seed = 0xb0b;
};

/// Lean premixed CH4/air slot-burner Bunsen flame (paper section 7).
CaseSetup bunsen_case(const BunsenParams& p);

struct TemporalJetParams {
  int nx = 128, ny = 112;
  double Lx = 0.008, Ly = 0.01;
  double jet_h = 0.0015;   ///< central fuel-stream width [m]
  double dU = 90.0;        ///< velocity difference between the streams
  double T0 = 500.0;       ///< both streams preheated (ref. [16])
  double p = 101325.0;
  double u_rms = 6.0;      ///< broadband perturbation in the shear layers
  double turb_len = 0.0006;
  double T_ignite = 1500.0;  ///< ignition-strip temperature at Z_st
  std::uint64_t seed = 0x7e3;
};

/// Temporally evolving plane syngas (CO/H2) jet flame -- the paper's
/// non-premixed hero-run class ("500 million grid points, 16 variables",
/// skeletal CO/H2 kinetics). Periodic in x; the central fuel stream moves
/// +x and the surrounding oxidizer -x, shear layers roll up in time. The
/// flames are ignited by hot strips at the two stoichiometric interfaces.
CaseSetup temporal_jet_case(const TemporalJetParams& p);

struct CounterflowParams {
  int nx = 128, ny = 64;
  double Lx = 0.01, Ly = 0.005;
  double strain = 2400.0;  ///< peak opposed-flow strain rate [1/s]
  double delta = 0.0006;   ///< mixing-layer thickness [m]
  double T_fuel = 300.0;   ///< cold diluted-H2 stream [K]
  double T_ox = 1350.0;    ///< hot-air stream [K] (above H2 crossover)
  double p = 101325.0;
  double u_rms = 2.0;      ///< mixing-layer perturbation intensity [m/s]
  double turb_len = 0.0008;
  std::uint64_t seed = 0xcf10;
};

/// Counterflow ignition: a cold diluted-H2 stream against hot air in an
/// opposed-flow mixing layer. Run as an initial-value problem (the vmpi
/// inflow contract supports only the low-x face): the opposed velocity
/// profile u = -a x decays away from the stagnation region, both x faces
/// are sponged NSCBC outflows, and ignition kernels develop where the
/// mixing layer sits in hot, low-strain fluid.
CaseSetup counterflow_ignition_case(const CounterflowParams& p);

struct HitAutoignitionParams {
  int n = 64;
  bool two_d = true;
  double L = 0.004;     ///< periodic box edge [m]
  double phi = 0.4;     ///< lean premixed H2/air equivalence ratio
  double T0 = 1100.0;   ///< mean temperature [K] (autoignitive)
  double dT = 120.0;    ///< hot/cold-spot amplitude [K]
  double p = 101325.0;
  double u_rms = 4.0;   ///< initial turbulence intensity [m/s]
  double turb_len = 0.001;
  std::uint64_t seed = 0xa170;
};

/// Homogeneous-isotropic-turbulence auto-ignition: a periodic box of lean
/// premixed H2/air near the autoignition limit, seeded with a synthetic
/// turbulence field and spatially-correlated temperature spots, so the
/// hottest kernels ignite first and fronts propagate into the colder
/// fluid (the paper's compression-ignition HCCI direction, section 6.1).
CaseSetup hit_autoignition_case(const HitAutoignitionParams& p);

}  // namespace s3d::solver
