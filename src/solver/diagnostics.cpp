#include "solver/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "chem/mixing.hpp"
#include "common/error.hpp"

namespace s3d::solver {

namespace {
// Visit interior plus exchanged ghost shells pointwise.
template <typename Fn>
void for_valid(const Layout& l, const GhostFlags& gh, Fn&& fn) {
  const int klo = gh.lo[2] ? -l.gz : 0, khi = l.nz + (gh.hi[2] ? l.gz : 0);
  const int jlo = gh.lo[1] ? -l.gy : 0, jhi = l.ny + (gh.hi[1] ? l.gy : 0);
  const int ilo = gh.lo[0] ? -l.gx : 0, ihi = l.nx + (gh.hi[0] ? l.gx : 0);
  for (int k = klo; k < khi; ++k)
    for (int j = jlo; j < jhi; ++j)
      for (int i = ilo; i < ihi; ++i) fn(i, j, k);
}
}  // namespace

GField mixture_fraction_field(const chem::Mechanism& mech, const Prim& prim,
                              const Layout& l, std::span<const double> Y_ox,
                              std::span<const double> Y_fuel) {
  GField Z(l);
  const int ns = mech.n_species();
  const double b_ox = chem::bilger_beta(mech, Y_ox);
  const double b_fu = chem::bilger_beta(mech, Y_fuel);
  double Yp[chem::kMaxSpecies];
  // Compute everywhere (stale physical ghosts produce harmless garbage that
  // derivative closures never read).
  for (std::size_t n = 0; n < Z.size(); ++n) {
    for (int s = 0; s < ns; ++s) Yp[s] = prim.Y[s].data()[n];
    const double b = chem::bilger_beta(mech, {Yp, static_cast<std::size_t>(ns)});
    Z.data()[n] = (b - b_ox) / (b_fu - b_ox);
  }
  return Z;
}

GField progress_variable_field(const chem::Mechanism& mech, const Prim& prim,
                               const Layout& l, double Y_o2_unburnt,
                               double Y_o2_burnt) {
  GField c(l);
  const int io2 = mech.index("O2");
  const double denom = Y_o2_unburnt - Y_o2_burnt;
  S3D_REQUIRE(std::abs(denom) > 1e-300, "degenerate progress variable");
  for (std::size_t n = 0; n < c.size(); ++n) {
    const double v = (Y_o2_unburnt - prim.Y[io2].data()[n]) / denom;
    c.data()[n] = std::clamp(v, 0.0, 1.0);
  }
  return c;
}

GField gradient_magnitude(const FieldOps& ops, const GField& f) {
  const Layout& l = ops.layout();
  GField g(l), d(l);
  for (int a = 0; a < 3; ++a) {
    if (!l.active(a)) continue;
    ops.deriv(f, a, d);
    for (std::size_t n = 0; n < g.size(); ++n)
      g.data()[n] += d.data()[n] * d.data()[n];
  }
  for (std::size_t n = 0; n < g.size(); ++n)
    g.data()[n] = std::sqrt(g.data()[n]);
  return g;
}

ConditionalStats::ConditionalStats(double lo, double hi, int nbins)
    : lo_(lo), hi_(hi), count_(nbins, 0), sum_(nbins, 0.0), sum2_(nbins, 0.0) {
  S3D_REQUIRE(hi > lo && nbins > 0, "bad conditional-stats bins");
}

void ConditionalStats::add(double cond, double value) {
  if (cond < lo_ || cond >= hi_) return;
  const int b = static_cast<int>((cond - lo_) / (hi_ - lo_) * nbins());
  if (b < 0 || b >= nbins()) return;
  ++count_[b];
  sum_[b] += value;
  sum2_[b] += value * value;
}

void ConditionalStats::merge(const ConditionalStats& other) {
  S3D_REQUIRE(other.nbins() == nbins(), "bin mismatch in merge");
  for (int b = 0; b < nbins(); ++b) {
    count_[b] += other.count_[b];
    sum_[b] += other.sum_[b];
    sum2_[b] += other.sum2_[b];
  }
}

double ConditionalStats::bin_center(int b) const {
  return lo_ + (b + 0.5) * (hi_ - lo_) / nbins();
}

double ConditionalStats::mean(int b) const {
  return count_[b] > 0 ? sum_[b] / count_[b] : 0.0;
}

double ConditionalStats::stddev(int b) const {
  if (count_[b] < 2) return 0.0;
  const double m = mean(b);
  const double v = sum2_[b] / count_[b] - m * m;
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

double contour_length_2d(const GField& f, const Layout& l,
                         const grid::Mesh& mesh, std::array<int, 3> offset,
                         double iso, int k) {
  S3D_REQUIRE(l.active(0) && l.active(1), "contour needs an x-y plane");
  double total = 0.0;
  auto xc = [&](int i) { return mesh.coord(0, offset[0] + i); };
  auto yc = [&](int j) { return mesh.coord(1, offset[1] + j); };

  // Corner values exactly on the contour would make the strict crossing
  // test miss segments; nudge them off by a value-scale epsilon.
  const double nudge = 1e-12 * (std::abs(iso) + 1.0) + 1e-300;
  auto val = [&](int i, int j) {
    const double v = f(i, j, k);
    return v == iso ? iso + nudge : v;
  };
  for (int j = 0; j + 1 < l.ny; ++j) {
    for (int i = 0; i + 1 < l.nx; ++i) {
      const double v00 = val(i, j), v10 = val(i + 1, j);
      const double v01 = val(i, j + 1), v11 = val(i + 1, j + 1);
      // Collect iso-crossings on the four cell edges.
      struct Pt { double x, y; };
      Pt pts[4];
      int np = 0;
      auto edge = [&](double a, double b, double xa, double ya, double xb,
                      double yb) {
        if ((a - iso) * (b - iso) < 0.0) {
          const double t = (iso - a) / (b - a);
          pts[np++] = {xa + t * (xb - xa), ya + t * (yb - ya)};
        }
      };
      edge(v00, v10, xc(i), yc(j), xc(i + 1), yc(j));          // bottom
      edge(v10, v11, xc(i + 1), yc(j), xc(i + 1), yc(j + 1));  // right
      edge(v11, v01, xc(i + 1), yc(j + 1), xc(i), yc(j + 1));  // top
      edge(v01, v00, xc(i), yc(j + 1), xc(i), yc(j));          // left
      if (np == 2) {
        total += std::hypot(pts[1].x - pts[0].x, pts[1].y - pts[0].y);
      } else if (np == 4) {
        // Saddle: pair crossings (0-1, 2-3); ambiguity is negligible for
        // length statistics.
        total += std::hypot(pts[1].x - pts[0].x, pts[1].y - pts[0].y);
        total += std::hypot(pts[3].x - pts[2].x, pts[3].y - pts[2].y);
      }
    }
  }
  return total;
}

std::vector<std::pair<double, double>> plane_scatter(const GField& a,
                                                     const GField& b,
                                                     const Layout& l, int i) {
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(l.ny) * l.nz);
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      out.emplace_back(a(i, j, k), b(i, j, k));
  return out;
}

double rms_on_plane(const GField& f, const Layout&, int i, int j0, int j1,
                    int k0, int k1) {
  double sum = 0.0, sum2 = 0.0;
  long n = 0;
  for (int k = k0; k < k1; ++k)
    for (int j = j0; j < j1; ++j) {
      const double v = f(i, j, k);
      sum += v;
      sum2 += v * v;
      ++n;
    }
  if (n < 2) return 0.0;
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double integral_length_scale(const GField& f, const Layout& l,
                             const grid::Mesh& mesh,
                             std::array<int, 3> offset, int axis, int i_fix,
                             int j_fix, int k_fix) {
  S3D_REQUIRE(l.active(axis), "axis inactive");
  const int n = l.n(axis);
  // Extract the line and subtract its mean.
  std::vector<double> line(n);
  for (int s = 0; s < n; ++s) {
    int ijk[3] = {i_fix, j_fix, k_fix};
    ijk[axis] = s;
    line[s] = f(ijk[0], ijk[1], ijk[2]);
  }
  double mean = 0.0;
  for (double v : line) mean += v;
  mean /= n;
  for (double& v : line) v -= mean;

  // Autocorrelation (periodic-agnostic, biased estimator).
  double r0 = 0.0;
  for (double v : line) r0 += v * v;
  if (r0 <= 0.0) return 0.0;

  const double h = (mesh.coord(axis, offset[axis] + n - 1) -
                    mesh.coord(axis, offset[axis])) / (n - 1);
  double integral = 0.0;
  for (int lag = 1; lag < n / 2; ++lag) {
    double r = 0.0;
    for (int s = 0; s + lag < n; ++s) r += line[s] * line[s + lag];
    r /= (n - lag);
    const double rho = r / (r0 / n);
    if (rho <= 0.0) break;  // integrate to first zero crossing
    integral += rho * h;
  }
  return integral;
}

double mean_dissipation(const FieldOps& ops, const Prim& prim,
                        const Layout& l, double nu) {
  GField d(l);
  // Accumulate 2 <S_ij S_ij> using the symmetric part of grad u.
  std::vector<std::vector<GField>> g(3, std::vector<GField>(3));
  const GField* vel[3] = {&prim.u, &prim.v, &prim.w};
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      g[a][b] = GField(l);
      if (l.active(b)) ops.deriv(*vel[a], b, g[a][b]);
    }
  double acc = 0.0;
  long n = 0;
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        double ss = 0.0;
        for (int a = 0; a < 3; ++a)
          for (int b = 0; b < 3; ++b) {
            const double s_ab = 0.5 * (g[a][b](i, j, k) + g[b][a](i, j, k));
            ss += s_ab * s_ab;
          }
        acc += 2.0 * ss;
        ++n;
      }
  return nu * acc / std::max<long>(n, 1);
}

}  // namespace s3d::solver
