#pragma once
// Conserved-variable state and primitive-variable workspace.
//
// Conserved vector per grid point (paper eqs. 1-4):
//   U = [rho, rho u, rho v, rho w, rho e0, rho Y_1 .. rho Y_{Ns-1}]
// The last species is recovered from sum(Y) = 1 (paper eq. 6).

#include <span>
#include <vector>

#include "chem/mechanism.hpp"
#include "solver/layout.hpp"

namespace s3d::solver {

/// Indices into the conserved vector.
struct UIndex {
  static constexpr int rho = 0;
  static constexpr int mx = 1;
  static constexpr int my = 2;
  static constexpr int mz = 3;
  static constexpr int e0 = 4;
  static constexpr int Y0 = 5;  ///< first of Ns-1 partial densities
};

/// Number of conserved variables for a mechanism with ns species.
inline int n_conserved(int ns) { return 5 + ns - 1; }

/// Flat conserved state over a ghosted box: nv contiguous GField-shaped
/// blocks so the whole state is one span for the RK integrator.
class State {
 public:
  State() = default;
  State(const Layout& l, int nv)
      : l_(l), nv_(nv), block_(l.total()), u_(block_ * nv, 0.0) {}

  const Layout& layout() const { return l_; }
  int nv() const { return nv_; }

  double* var(int v) { return u_.data() + block_ * v; }
  const double* var(int v) const { return u_.data() + block_ * v; }

  double& at(int v, int i, int j, int k) { return var(v)[l_.at(i, j, k)]; }
  double at(int v, int i, int j, int k) const {
    return var(v)[l_.at(i, j, k)];
  }

  std::span<double> flat() { return u_; }
  std::span<const double> flat() const { return u_; }
  std::size_t block() const { return block_; }

 private:
  Layout l_;
  int nv_ = 0;
  std::size_t block_ = 0;
  std::vector<double> u_;
};

/// Primitive fields recomputed from U at every RHS evaluation. All carry
/// ghosts; interiors are filled by prim_from_conserved, ghosts by halo
/// exchange / periodic wrap.
struct Prim {
  GField rho, u, v, w, T, p;
  GField Wbar;              ///< mean molecular weight
  std::vector<GField> Y;    ///< ns mass fractions

  void allocate(const Layout& l, int ns) {
    rho = GField(l);
    u = GField(l);
    v = GField(l);
    w = GField(l);
    T = GField(l, 300.0);
    p = GField(l);
    Wbar = GField(l);
    Y.assign(ns, GField(l));
  }
};

/// Knobs for the conserved->primitive conversion boundary.
struct PrimOptions {
  /// Renormalize the clipped mass-fraction vector to sum to one instead
  /// of dumping the clipped mass into the last species (the historical
  /// behaviour). Off by default: switching it on changes the integrated
  /// trajectory, so it is a per-run decision, never a silent one.
  bool renormalize_y = false;
};

/// Per-call accounting of what the prim boundary had to repair or could
/// not invert — the health sentinel's window into the Newton solve and
/// the dispersion-error Y undershoots that were historically clipped
/// silently.
struct PrimStats {
  long y_clipped = 0;            ///< cells with at least one negative Y clipped
  double y_most_negative = 0.0;  ///< most negative raw mass fraction seen
  long newton_nonconverged = 0;  ///< cells whose T Newton did not converge
  long newton_hit_bounds = 0;    ///< cells pegged at the [Tmin, Tmax] clamp
  int newton_max_iterations = 0;
  double newton_worst_residual = 0.0;  ///< |dT| [K] of the worst cell
  std::ptrdiff_t worst_cell = -1;      ///< flat index of the worst cell
};

/// Fill Prim interiors (plus any already-valid ghost region is ignored)
/// from the conserved state. prim.T seeds the Newton iteration for T.
/// `opts` selects the mass-fraction repair policy; `stats`, when non-null,
/// collects clip/convergence accounting (the nullptr path compiles to the
/// historical zero-overhead loop).
void prim_from_conserved(const chem::Mechanism& mech, const State& U,
                         Prim& prim, const PrimOptions& opts = {},
                         PrimStats* stats = nullptr);

/// Build the conserved state at one point from primitives.
void point_to_conserved(const chem::Mechanism& mech, double rho, double uu,
                        double vv, double ww, double T,
                        std::span<const double> Y, std::span<double> u_point);

}  // namespace s3d::solver
