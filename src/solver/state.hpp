#pragma once
// Conserved-variable state and primitive-variable workspace.
//
// Conserved vector per grid point (paper eqs. 1-4):
//   U = [rho, rho u, rho v, rho w, rho e0, rho Y_1 .. rho Y_{Ns-1}]
// The last species is recovered from sum(Y) = 1 (paper eq. 6).

#include <span>
#include <vector>

#include "chem/mechanism.hpp"
#include "solver/layout.hpp"

namespace s3d::solver {

/// Indices into the conserved vector.
struct UIndex {
  static constexpr int rho = 0;
  static constexpr int mx = 1;
  static constexpr int my = 2;
  static constexpr int mz = 3;
  static constexpr int e0 = 4;
  static constexpr int Y0 = 5;  ///< first of Ns-1 partial densities
};

/// Number of conserved variables for a mechanism with ns species.
inline int n_conserved(int ns) { return 5 + ns - 1; }

/// Flat conserved state over a ghosted box: nv contiguous GField-shaped
/// blocks so the whole state is one span for the RK integrator.
class State {
 public:
  State() = default;
  State(const Layout& l, int nv)
      : l_(l), nv_(nv), block_(l.total()), u_(block_ * nv, 0.0) {}

  const Layout& layout() const { return l_; }
  int nv() const { return nv_; }

  double* var(int v) { return u_.data() + block_ * v; }
  const double* var(int v) const { return u_.data() + block_ * v; }

  double& at(int v, int i, int j, int k) { return var(v)[l_.at(i, j, k)]; }
  double at(int v, int i, int j, int k) const {
    return var(v)[l_.at(i, j, k)];
  }

  std::span<double> flat() { return u_; }
  std::span<const double> flat() const { return u_; }
  std::size_t block() const { return block_; }

 private:
  Layout l_;
  int nv_ = 0;
  std::size_t block_ = 0;
  std::vector<double> u_;
};

/// Primitive fields recomputed from U at every RHS evaluation. All carry
/// ghosts; interiors are filled by prim_from_conserved, ghosts by halo
/// exchange / periodic wrap.
struct Prim {
  GField rho, u, v, w, T, p;
  GField Wbar;              ///< mean molecular weight
  std::vector<GField> Y;    ///< ns mass fractions

  void allocate(const Layout& l, int ns) {
    rho = GField(l);
    u = GField(l);
    v = GField(l);
    w = GField(l);
    T = GField(l, 300.0);
    p = GField(l);
    Wbar = GField(l);
    Y.assign(ns, GField(l));
  }
};

/// Fill Prim interiors (plus any already-valid ghost region is ignored)
/// from the conserved state. `T_prev` seeds the Newton iteration for T.
void prim_from_conserved(const chem::Mechanism& mech, const State& U,
                         Prim& prim);

/// Build the conserved state at one point from primitives.
void point_to_conserved(const chem::Mechanism& mech, double rho, double uu,
                        double vv, double ww, double T,
                        std::span<const double> Y, std::span<double> u_point);

}  // namespace s3d::solver
