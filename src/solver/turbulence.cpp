#include "solver/turbulence.hpp"

#include <cmath>

#include "common/error.hpp"

namespace s3d::solver {

namespace {
constexpr double kPi = 3.14159265358979323846;

// von Karman-like energy spectrum shape (unnormalized): peaks near k_e.
double spectrum_shape(double k, double k_e) {
  const double r = k / k_e;
  // s3dlint:allow(libm): init-only synthetic-spectrum sampling
  return std::pow(r, 4) / std::pow(1.0 + r * r, 17.0 / 6.0);
}
}  // namespace

SyntheticTurbulence::SyntheticTurbulence(double u_rms, double length,
                                         int n_modes, std::uint64_t seed,
                                         bool two_d)
    : u_rms_(u_rms), length_(length) {
  S3D_REQUIRE(u_rms >= 0.0 && length > 0.0 && n_modes > 0,
              "bad turbulence parameters");
  Rng rng(seed);
  const double k_e = 2.0 * kPi / length;

  modes_.resize(n_modes);
  for (auto& m : modes_) {
    // Log-uniform wavenumber magnitude spanning ~1.5 decades around k_e,
    // weighted by the spectrum so energy concentrates near k_e.
    // s3dlint:allow(libm): init-only synthetic-spectrum sampling
    const double k_mag = k_e * std::pow(10.0, rng.uniform(-0.7, 0.8));
    const double amp = std::sqrt(spectrum_shape(k_mag, k_e));

    std::array<double, 3> khat;
    if (two_d) {
      const double th = rng.uniform(0.0, 2.0 * kPi);
      khat = {std::cos(th), std::sin(th), 0.0};
      // In-plane unit vector perpendicular to k.
      m.sigma = {-khat[1] * amp, khat[0] * amp, 0.0};
    } else {
      const double ct = rng.uniform(-1.0, 1.0);
      const double st = std::sqrt(1.0 - ct * ct);
      const double ph = rng.uniform(0.0, 2.0 * kPi);
      khat = {st * std::cos(ph), st * std::sin(ph), ct};
      // Random direction perpendicular to k: project a random vector.
      std::array<double, 3> r{rng.normal(), rng.normal(), rng.normal()};
      const double dot = r[0] * khat[0] + r[1] * khat[1] + r[2] * khat[2];
      for (int a = 0; a < 3; ++a) r[a] -= dot * khat[a];
      const double norm =
          std::sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]) + 1e-300;
      for (int a = 0; a < 3; ++a) m.sigma[a] = r[a] / norm * amp;
    }
    for (int a = 0; a < 3; ++a) m.k[a] = khat[a] * k_mag;
    m.phase = rng.uniform(0.0, 2.0 * kPi);
  }

  // Normalize so the mean per-component variance equals u_rms^2.
  double var = 0.0;
  for (const auto& m : modes_)
    for (int a = 0; a < 3; ++a) var += 2.0 * m.sigma[a] * m.sigma[a];
  const int ncomp = two_d ? 2 : 3;
  var /= ncomp;
  const double scale = var > 0.0 ? u_rms / std::sqrt(var) : 0.0;
  for (auto& m : modes_)
    for (int a = 0; a < 3; ++a) m.sigma[a] *= scale;
}

std::array<double, 3> SyntheticTurbulence::velocity(double x, double y,
                                                    double z) const {
  std::array<double, 3> u{0.0, 0.0, 0.0};
  for (const auto& m : modes_) {
    const double arg = m.k[0] * x + m.k[1] * y + m.k[2] * z + m.phase;
    const double c = 2.0 * std::cos(arg);
    u[0] += c * m.sigma[0];
    u[1] += c * m.sigma[1];
    u[2] += c * m.sigma[2];
  }
  return u;
}

}  // namespace s3d::solver
