#pragma once
// Ghosted-field memory layout for the solver.
//
// Every solver field is stored with `kNg` ghost layers along each *active*
// axis (inactive axes -- n == 1 -- carry no ghosts, which is how 1-D and
// 2-D runs fall out of the 3-D code). Indices passed to Layout are
// interior-based: i in [-gx, nx+gx).

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "numerics/stencil.hpp"

namespace s3d::solver {

/// Ghost width used by all solver fields (filter needs 5).
inline constexpr int kNg = numerics::kGhostFilter;

/// Describes the local (per-rank) ghosted box.
struct Layout {
  int nx = 1, ny = 1, nz = 1;  ///< interior extents
  int gx = 0, gy = 0, gz = 0;  ///< ghost widths per axis

  static Layout make(int nx, int ny, int nz) {
    Layout l;
    l.nx = nx;
    l.ny = ny;
    l.nz = nz;
    l.gx = nx > 1 ? kNg : 0;
    l.gy = ny > 1 ? kNg : 0;
    l.gz = nz > 1 ? kNg : 0;
    return l;
  }

  int sx() const { return nx + 2 * gx; }
  int sy() const { return ny + 2 * gy; }
  int sz() const { return nz + 2 * gz; }
  std::size_t total() const {
    return static_cast<std::size_t>(sx()) * sy() * sz();
  }
  std::size_t interior() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }

  /// Flat index from interior-based (i, j, k).
  std::size_t at(int i, int j, int k) const {
    S3D_ASSERT(i >= -gx && i < nx + gx && j >= -gy && j < ny + gy &&
               k >= -gz && k < nz + gz);
    return static_cast<std::size_t>(k + gz) * sy() * sx() +
           static_cast<std::size_t>(j + gy) * sx() + (i + gx);
  }

  std::ptrdiff_t stride(int axis) const {
    switch (axis) {
      case 0: return 1;
      case 1: return sx();
      default: return static_cast<std::ptrdiff_t>(sx()) * sy();
    }
  }

  int n(int axis) const { return axis == 0 ? nx : axis == 1 ? ny : nz; }
  int g(int axis) const { return axis == 0 ? gx : axis == 1 ? gy : gz; }
  bool active(int axis) const { return n(axis) > 1; }
};

/// A scalar field over a ghosted Layout box.
class GField {
 public:
  GField() = default;
  explicit GField(const Layout& l, double init = 0.0)
      : l_(l), data_(l.total(), init) {}

  const Layout& layout() const { return l_; }
  double& operator()(int i, int j, int k) { return data_[l_.at(i, j, k)]; }
  double operator()(int i, int j, int k) const {
    return data_[l_.at(i, j, k)];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  Layout l_;
  std::vector<double> data_;
};

}  // namespace s3d::solver
