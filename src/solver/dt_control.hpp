#pragma once
// Per-block adaptive time integration (DESIGN.md §13 "Adaptive dt").
//
// The production S3D codes this repo reproduces survive ignition kernels
// and near-blow-up transients through LOCAL error control: the flame
// front integrates on its own clock while the far field keeps its large
// step (the SMC / nekCRF multirate designs in PAPERS.md). This header is
// the controller half of that machinery:
//
//   BlockMap       a fixed tiling of the GLOBAL interior into cubic
//                  controller blocks. Block ids derive only from global
//                  indices, so the id of any cell — and everything keyed
//                  by it — is identical on every rank decomposition.
//   DtController   per-block PI controller on the embedded RK error
//                  norm. Per-rank partial norms are combined with ONE
//                  vmpi allreduce over the block vector (max norms, so
//                  the combination is summation-order free), after which
//                  every rank updates the identical controller state with
//                  the identical arithmetic: the block→dt map agrees
//                  bitwise across ranks by construction, mirroring the
//                  severity-ordered HealthReport verdict.
//
// The integration half (masked substeps, the escalation ladder) lives in
// solver.cpp / health.cpp; seam coupling and the determinism argument are
// documented in DESIGN.md §13.

#include <functional>
#include <span>
#include <vector>

#include "solver/config.hpp"
#include "solver/passes.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::solver {

/// Fixed global tiling of the interior into `opt.block`-cell cubes
/// (edge blocks may be thinner). Also owns the global→local projection:
/// which interior row segments of THIS rank fall in a given block set.
class BlockMap {
 public:
  /// Global interior extents (NX, NY, NZ), block edge in cells, and the
  /// local box (layout + global offset of its first interior cell).
  BlockMap(int NX, int NY, int NZ, int block, const Layout& l,
           std::array<int, 3> offset);

  int n_blocks() const { return nbx_ * nby_ * nbz_; }
  int nbx() const { return nbx_; }
  int nby() const { return nby_; }
  int nbz() const { return nbz_; }

  /// Block id of a GLOBAL interior cell (identical on every rank).
  int block_of_global(int gi, int gj, int gk) const {
    return (gi / b_) + nbx_ * ((gj / b_) + nby_ * (gk / b_));
  }
  int block_of_global(const std::array<int, 3>& c) const {
    return block_of_global(c[0], c[1], c[2]);
  }

  /// Visit every LOCAL interior row split at block boundaries: fn(block,
  /// seg) with seg a contiguous x-run lying entirely in one block. Rows
  /// ascend in (k, j, x) order; segment boundaries depend only on the
  /// global tiling, so a cell lands in the same (block, arithmetic)
  /// pairing on every decomposition.
  void visit_rows(
      const std::function<void(int block, const RowRange& seg)>& fn) const;

  /// Local interior row segments covered by `blocks` (global ids, any
  /// order, duplicates allowed). Ranks owning no cell of any listed
  /// block get an empty list — they still participate in collective
  /// calls, just with no cells to commit.
  std::vector<RowRange> segments(std::span<const int> blocks) const;

  /// The block set plus its face neighbors (6-connectivity, clamped at
  /// the domain boundary), sorted and deduplicated — the rung-2 widened
  /// mask of the escalation ladder.
  std::vector<int> widen(std::span<const int> blocks) const;

  /// Total interior cells of one block (global count, decomposition
  /// independent; edge blocks may be smaller than block^3).
  long block_cells(int b) const;

 private:
  int NX_, NY_, NZ_, b_;
  int nbx_, nby_, nbz_;
  Layout l_;
  std::array<int, 3> off_;
};

/// Per-block PI dt controller. All state updates run on every rank from
/// identically-reduced inputs, so ratio()/stiff()/subcycles() agree
/// bitwise across any decomposition.
class DtController {
 public:
  DtController(const BlockMap& map, const AdaptiveOptions& opt);

  /// Collective controller update from per-rank partial block error
  /// norms (Linf of |e|/(atol + rtol |u|) over the rank's cells of each
  /// block; 0 for blocks the rank owns no cell of). One allreduce_max
  /// over the block vector, then the identical PI update everywhere.
  void observe(std::span<const double> local_err, vmpi::Comm* comm);

  /// Clamp each block's dt ratio by its own stable dt (collective:
  /// allreduce_min over the block vector). `local_dt` holds per-rank
  /// partial per-block stable dts (1e300 where the rank owns no cell);
  /// `base_dt` is the global step the ratios are relative to.
  void clamp_stable(std::span<const double> local_dt, double base_dt,
                    vmpi::Comm* comm);

  /// Tripwire feedback: a collectively-agreed breach cell pins its
  /// block to the dt floor (the PI loop relaxes it back as clean error
  /// observations come in). Deterministic: callers pass the block of
  /// the collective HealthReport cell, identical on every rank.
  void force_floor(int block);

  /// Per-block dt as a fraction of the global step, in
  /// [dt_min_ratio, dt_max_ratio].
  double ratio(int b) const { return ratio_[b]; }
  double min_ratio() const;

  /// Substeps a block takes per global step: ceil(1/ratio), capped.
  int subcycles(int b) const;

  /// Blocks with ratio < 1, sorted ascending (empty: nothing stiff).
  const std::vector<int>& stiff() const { return stiff_; }
  /// Max subcycle count over the stiff set (1 when nothing is stiff):
  /// the shared local clock of one masked subcycled integration.
  int max_subcycles() const;

  int n_blocks() const { return static_cast<int>(ratio_.size()); }

 private:
  void refresh_stiff();

  const BlockMap& map_;
  AdaptiveOptions opt_;
  std::vector<double> ratio_;
  std::vector<double> err_prev_;
  std::vector<int> stiff_;
};

}  // namespace s3d::solver
