#include "solver/field_ops.hpp"

#include <algorithm>

#include "numerics/stencil.hpp"

namespace s3d::solver {

FieldOps::FieldOps(const Layout& l, const grid::Mesh& mesh,
                   std::array<int, 3> offset, GhostFlags ghosts)
    : l_(l), ghosts_(ghosts) {
  for (int a = 0; a < 3; ++a) {
    const int n = l.n(a);
    inv_h_[a].resize(n);
    const auto& metric = mesh.inv_spacing(a);
    for (int i = 0; i < n; ++i) {
      const int gi = offset[a] + i;
      S3D_REQUIRE(gi < static_cast<int>(metric.size()),
                  "rank offset outside global mesh");
      inv_h_[a][i] = metric[gi];
    }
  }
}

// Iterate over all lines of the box along `axis`; fn(base_flat_index).
// Lines run over the *interior* range of `axis` but all ghosted positions
// of the orthogonal axes are visited, so derived fields are also valid in
// the (already-exchanged) ghost shells of the other directions.
template <typename LineFn>
void FieldOps::for_each_line(int axis, LineFn&& fn) const {
  const int a1 = (axis + 1) % 3, a2 = (axis + 2) % 3;
  const int n1 = l_.n(a1), g1 = l_.g(a1);
  const int n2 = l_.n(a2), g2 = l_.g(a2);
  for (int q = -g2; q < n2 + g2; ++q) {
    for (int r = -g1; r < n1 + g1; ++r) {
      int ijk[3] = {0, 0, 0};
      ijk[a1] = r;
      ijk[a2] = q;
      fn(l_.at(ijk[0], ijk[1], ijk[2]));
    }
  }
}

void FieldOps::deriv(const double* f, int axis, double* out,
                     std::size_t out_size) const {
  if (!l_.active(axis)) {
    std::fill(out, out + out_size, 0.0);
    return;
  }
  const std::ptrdiff_t s = l_.stride(axis);
  const int n = l_.n(axis);
  const numerics::LineBC bc{ghosts_.lo[axis], ghosts_.hi[axis]};
  const double* inv = inv_h_[axis].data();
  for_each_line(axis, [&](std::size_t base) {
    numerics::deriv_line_metric(f + base, s, out + base, s, n, inv, bc);
  });
}

void FieldOps::filter_axis(const double* f, int axis, double alpha,
                           double* out) const {
  if (!l_.active(axis)) return;
  const std::ptrdiff_t s = l_.stride(axis);
  const int n = l_.n(axis);
  const numerics::LineBC bc{ghosts_.lo[axis], ghosts_.hi[axis]};
  for_each_line(axis, [&](std::size_t base) {
    numerics::filter_line(f + base, s, out + base, s, n, alpha, bc);
  });
}

}  // namespace s3d::solver
