#pragma once
// Ghost-zone exchange (paper section 2.6: "a ghost-zone is constructed at
// the processor boundaries by non-blocking MPI sends and receives among
// the nearest neighbors in the 3D processor topology").
//
// Works in two modes:
//   - serial: periodic axes wrap locally, physical boundaries are left to
//     the one-sided closures;
//   - parallel (vmpi): slabs are packed and exchanged with Cartesian
//     neighbours using non-blocking sends/receives; periodic wrap happens
//     through the topology. Axis exchanges are sequenced x, y, z with
//     slabs spanning the other axes' ghost shells so corners fill in.

#include <array>
#include <vector>

#include "solver/layout.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::solver {

class Halo {
 public:
  /// Serial constructor. `periodic` marks axes that wrap.
  Halo(const Layout& l, std::array<bool, 3> periodic);

  /// Parallel constructor: `comm` and `cart` describe this rank's place in
  /// the process grid. Each axis wraps through the topology when periodic.
  Halo(const Layout& l, std::array<bool, 3> periodic, vmpi::Comm* comm,
       const vmpi::Cart* cart);

  /// Exchange ghost shells of all fields (raw storage over the shared
  /// layout; GField::data() or State::var() pointers).
  void exchange(const std::vector<double*>& fields);
  /// Convenience overload for GFields.
  void exchange_fields(const std::vector<GField*>& fields);

 private:
  void exchange_axis_local(double* f, int axis);
  void exchange_axis_parallel(const std::vector<double*>& fields, int axis);

  Layout l_;
  std::array<bool, 3> periodic_;
  vmpi::Comm* comm_ = nullptr;
  const vmpi::Cart* cart_ = nullptr;
};

}  // namespace s3d::solver
