#pragma once
// Unified delta checkpoint store (DESIGN.md §12).
//
// The paper's terascale runs live or die by checkpoint/restart economics:
// restart files are "the bulk of the analysis data" and the workflow
// (section 9) manages them continuously. PR 2/3 kept full-state copies in
// both tiers — the in-memory SnapshotRing and the on-disk RestartSeries
// rewrote whole generations synchronously inside the step loop. This
// subsystem reworks both after Portus's checkpoint server (PAPERS.md):
//
//   base + deltas   a full "base" image every K generations, block-level
//                   dirty deltas (raw new blocks, per-block checksums)
//                   chained between them; folding the oldest delta into
//                   the base on prune keeps the retained chain closed;
//   generation      every generation carries a validity bit, so recovery
//   table           skips known-bad entries in O(1) without re-reading
//                   files, and a lost manifest degrades to a directory
//                   scan that classifies files by header magic;
//   write-behind    a dedicated persister thread drains a bounded queue
//                   through the iosim retry/backoff policy, so a series
//                   write costs the step path one encode + enqueue; a
//                   crash (or exhausted retry budget) mid-persist marks
//                   only that generation invalid — the previous one
//                   stays restorable (files land by atomic temp+rename).
//
// Restores are bitwise identical to the PR-2 full-copy path: a base file
// IS a restart file (same bytes), and delta blocks store the raw new
// values, so base + replay reproduces the image exactly.
//
// Fault sites: "checkpoint.write" (per append, as before),
// "checkpoint.delta" (delta encode), "checkpoint.persist" (per persist
// attempt, retried), "restart.read" (per chain load).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "solver/config.hpp"
#include "solver/solver.hpp"

namespace s3d::solver {

/// Restart-file magic (shared with write_restart/read_restart: a base
/// generation is byte-identical to a standalone restart file).
constexpr std::uint64_t kRestartMagic = 0x53334452535452ull;  // "S3DRSTR"
/// Delta-generation magic ("S3DDLT"); same .rst naming, distinguished by
/// header peek.
constexpr std::uint64_t kDeltaMagic = 0x533344444c54ull;

/// One flat snapshot: clock, step counter and a payload of doubles. The
/// disk store carries the restart payload (interior of each conserved
/// variable then the Newton warm-start T field, x fastest); the ring
/// carries the full ghosted fields. Both delta through the same codec.
struct CkptImage {
  int nx = 0, ny = 0, nz = 0, nv = 0;  ///< dims of the disk payload
  double t = 0.0;
  std::int64_t steps = 0;
  std::vector<double> data;
};

/// Dirty blocks of one image against its predecessor: raw new values, so
/// applying them onto the predecessor reproduces the image bitwise.
struct CkptDelta {
  std::uint64_t total = 0;            ///< doubles in the full image
  std::vector<std::uint32_t> blocks;  ///< dirty block indices, ascending
  std::vector<double> payload;        ///< concatenated block contents
};

/// memcmp-based block diff (granule = `block` doubles; sizes must match).
CkptDelta diff_image(const std::vector<double>& prev,
                     const std::vector<double>& next, int block);
/// In-place replay of `d` onto `data` (sized d.total).
void apply_delta(std::vector<double>& data, const CkptDelta& d, int block);

/// Interior-only gather of the solver's restart payload (the exact
/// variable/row order of write_restart).
CkptImage image_from_solver(const Solver& s);
/// Scatter an image back; checks dims ("restart grid/variable mismatch")
/// and restores the clock (invalidating the cached dt).
void commit_image(const CkptImage& img, Solver& s);

/// Byte-identical to the PR-2 restart-file format (magic, dims, t, steps,
/// payload, trailing FNV-1a over header fields + payload).
std::string serialize_base(const CkptImage& img);
/// Parse + verify a base/restart image. `expect` (nx, ny, nz, nv) is
/// enforced before the checksum when given; errors carry `path`.
CkptImage parse_base(const std::string& image, const std::string& path,
                     const int* expect);

/// Durable write: stage to <path>.tmp, flush, rename into place.
void atomic_write_file(const std::string& path, const std::string& image);
/// Whole-file slurp; a missing/unreadable file throws
/// "cannot open <kind>: <path> (missing or unreadable)".
std::string read_file_image(const std::string& path, const char* kind);

/// In-memory delta ring backing SnapshotRing: the front entry is a full
/// base image, later entries are chained block deltas, and the newest
/// image is kept materialized so restores cost one copy. Evicting the
/// front folds the next delta into the base; with opt.delta off every
/// entry is a full copy (the PR-3 ring).
class DeltaRing {
 public:
  DeltaRing(int depth, const CkptOptions& opt);

  void push(CkptImage img);
  /// The newest image, materialized (requires !empty()).
  const CkptImage& newest() const;
  void pop_newest();

  bool empty() const { return ring_.empty(); }
  int size() const { return static_cast<int>(ring_.size()); }
  long newest_step() const;
  /// Payload bytes actually retained (entries + materialized head).
  std::size_t bytes() const;

 private:
  void rebuild_head();
  struct Entry {
    double t = 0.0;
    std::int64_t steps = 0;
    bool is_base = true;
    std::vector<double> base;  ///< full payload when is_base
    CkptDelta delta;           ///< vs the previous entry otherwise
  };
  int depth_;
  CkptOptions opt_;
  std::deque<Entry> ring_;  ///< oldest first; front always a base
  CkptImage head_;          ///< materialization of ring_.back()
};

/// One generation-table entry.
struct CkptGen {
  long gen = -1;
  bool is_base = true;
  long prev = -1;  ///< predecessor generation in the delta chain
  int chain = 0;   ///< deltas since the chain's base (0 for a base)
  bool valid = true;      ///< cleared on failure: recovery skips in O(1)
  bool persisted = false; ///< file durable on disk
  std::uint64_t bytes = 0;
};

/// Cumulative store accounting (bench_resilience reports these).
struct CkptStats {
  long bases = 0;
  long deltas = 0;
  long folds = 0;               ///< prune-time delta-into-base folds
  std::uint64_t logical_bytes = 0;  ///< full-image bytes represented
  std::uint64_t written_bytes = 0;  ///< bytes actually serialized
  long enqueued = 0;
  long persisted = 0;
  long persist_failures = 0;  ///< generations invalidated by persist
  long invalidated = 0;       ///< validity bits cleared (incl. cascades)
  int queue_hwm = 0;          ///< persist-queue high-water mark
  double persist_ms_total = 0.0;  ///< wall time inside persist I/O
  /// written/logical compression: 1 = no dedup, smaller = better.
  double dedup_ratio() const {
    return logical_bytes == 0
               ? 1.0
               : static_cast<double>(written_bytes) /
                     static_cast<double>(logical_bytes);
  }
};

/// The on-disk store behind RestartSeries: generation table + delta
/// files + (optional) write-behind persister. File naming and the base
/// format are unchanged from PR 2 (`dir/stem.g<NNNNNN>.rst` plus
/// `dir/stem.manifest`), so existing directories remain readable.
class CkptStore {
 public:
  CkptStore(std::string dir, std::string stem, int keep_last,
            CkptOptions opt);
  ~CkptStore();
  CkptStore(const CkptStore&) = delete;
  CkptStore& operator=(const CkptStore&) = delete;

  const std::string& dir() const { return dir_; }
  const std::string& stem() const { return stem_; }
  int keep_last() const { return keep_last_; }
  const CkptOptions& options() const { return opt_; }

  std::string path(long gen) const;
  std::string manifest_path() const;

  /// Checkpoint the solver as generation `gen`: encode (base or delta
  /// against the previous generation) and persist — synchronously, or
  /// via the write-behind queue (one bounded enqueue on this thread).
  void append(const Solver& s, long gen);

  /// Known generations, newest first (table ∪ directory scan). Drains
  /// the persist queue first, so listed generations are settled.
  std::vector<long> generations() const;

  /// Validate-and-load one generation (base + delta replay). On failure
  /// the offending generation — and every later delta chained through
  /// it — is marked invalid. Drains the persist queue first.
  bool try_load(long gen, Solver& s, std::string* err = nullptr) const;

  /// Load the newest generation that validates: an O(1) table walk picks
  /// each candidate (invalid entries are skipped without touching disk),
  /// try_load verifies it. Returns the generation or -1; newly
  /// discovered failures are reported through `skipped` ("gen N: why").
  long restore_latest(Solver& s,
                      std::vector<std::string>* skipped = nullptr) const;

  /// Block until every queued generation has been persisted (no-op when
  /// synchronous).
  void drain() const;

  CkptStats stats() const;

 private:
  struct Task {
    long gen = -1;
    std::string image;   ///< serialized bytes (empty: dropped write)
    bool dropped = false;
  };

  // --- table / manifest (mu_ held unless noted) ---
  void load_table();             ///< manifest parse + directory scan
  void sync_scan_locked();       ///< fold unknown on-disk files into the table
  void write_manifest_locked() const;
  std::optional<CkptGen> classify_file(long gen) const;  ///< header peek (no lock)
  void invalidate_cascade_locked(long gen) const;
  long newest_valid_locked() const;

  // --- persist path ---
  void enqueue(Task task);
  void persist_one(Task task);   ///< retry loop + atomic write + prune
  void prune_fold();             ///< drop beyond keep_last, folding first
  void drain_locked(std::unique_lock<std::mutex>& lk) const;
  void worker_loop(int owner_rank);

  bool chain_for_locked(long gen, std::vector<CkptGen>* chain,
                        std::string* err) const;

  std::string dir_, stem_;
  int keep_last_;
  CkptOptions opt_;
  int owner_rank_ = 0;  ///< rank label for trace/fault on the persister

  mutable std::mutex mu_;
  mutable std::map<long, CkptGen> table_;
  mutable std::optional<CkptImage> shadow_;  ///< last appended/loaded image
  mutable long shadow_gen_ = -1;
  mutable bool force_base_ = false;  ///< self-heal after a persist failure
  mutable CkptStats stats_;

  // write-behind machinery
  std::deque<Task> queue_;
  mutable bool working_ = false;
  bool stop_ = false;
  std::thread worker_;
  mutable std::condition_variable cv_work_;   ///< queue became non-empty
  mutable std::condition_variable cv_space_;  ///< queue has room
  mutable std::condition_variable cv_idle_;   ///< queue empty and idle
};

}  // namespace s3d::solver
