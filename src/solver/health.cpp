#include "solver/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>

#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

namespace {

/// Sentinel cell code meaning "no cell" — larger than any encodable
/// global index, so an allreduce_min over codes ignores it (shared with
/// the in-pass tripwires).
constexpr double kNoCell = kNoCellCode;
/// Sentinel dt meaning "no local estimate" (its negation loses every
/// allreduce_max against a real estimate).
constexpr double kNoDt = 1e300;

void require_opt(bool ok, const char* field, const std::string& why) {
  if (!ok) throw ConfigError(field, why);
}

}  // namespace

const char* breach_name(Breach b) {
  switch (b) {
    case Breach::none: return "health.none";
    case Breach::dt_violation: return "health.dt_violation";
    case Breach::y_sum: return "health.y_sum";
    case Breach::newton: return "health.newton";
    case Breach::temperature: return "health.temperature";
    case Breach::negative_density: return "health.negative_density";
    case Breach::non_finite: return "health.non_finite";
    case Breach::injected: return "health.injected";
  }
  return "health.unknown";
}

std::string HealthReport::message() const {
  std::string m = site();
  m += " at step " + std::to_string(step);
  if (rank >= 0) m += ", rank " + std::to_string(rank);
  if (cell[0] >= 0)
    m += ", cell (" + std::to_string(cell[0]) + ", " +
         std::to_string(cell[1]) + ", " + std::to_string(cell[2]) + ")";
  char buf[64];
  std::snprintf(buf, sizeof buf, ": value %.6g (threshold %.6g)", value,
                threshold);
  m += buf;
  return m;
}

// ---------------------------------------------------------------------------
// SnapshotRing

SnapshotRing::SnapshotRing(int depth, CkptOptions opt)
    : ring_(depth, opt) {}

void SnapshotRing::capture(const Solver& s) {
  // The payload is the FULL ghosted conserved state plus the full
  // warm-start temperature field — deliberately wider than the restart
  // payload, so a restored solver replays ghost exchange and the Newton
  // iteration bitwise (same contract as before the delta ring).
  CkptImage img;
  img.t = s.time();
  img.steps = s.steps_taken();
  const auto u = s.state().flat();
  const GField& T = s.rhs().prim().T;
  img.data.reserve(u.size() + T.size());
  img.data.assign(u.begin(), u.end());
  img.data.insert(img.data.end(), T.data(), T.data() + T.size());
  // Plugin-state sidecar (DESIGN.md §15): appended after the solver
  // payload so a restore rewinds plugin accumulators with the state.
  if (sidecar_.save) sidecar_.save(img.data);
  ring_.push(std::move(img));
}

void SnapshotRing::restore_newest(Solver& s) const {
  const CkptImage& sn = ring_.newest();
  auto u = s.state().flat();
  GField& T = s.rhs().prim().T;
  const std::size_t base = u.size() + T.size();
  S3D_REQUIRE(sn.data.size() >= base,
              "snapshot does not match the solver's state size");
  const auto split =
      sn.data.begin() + static_cast<std::ptrdiff_t>(u.size());
  std::copy(sn.data.begin(), split, u.begin());
  std::copy(split, split + static_cast<std::ptrdiff_t>(T.size()), T.data());
  if (sn.data.size() > base) {
    S3D_REQUIRE(sidecar_.load,
                "snapshot carries a plugin sidecar but none is installed");
    const std::size_t got = sidecar_.load(
        std::span<const double>(sn.data.data() + base,
                                sn.data.size() - base));
    S3D_REQUIRE(got == sn.data.size() - base,
                "plugin sidecar did not consume its snapshot block");
  }
  s.set_time(sn.t, static_cast<int>(sn.steps));  // invalidates cached dt
}

void SnapshotRing::restore_cells(Solver& s,
                                 std::span<const RowRange> segs) const {
  const CkptImage& sn = ring_.newest();
  State& U = s.state();
  GField& T = s.rhs().prim().T;
  S3D_REQUIRE(sn.data.size() >= U.flat().size() + T.size(),
              "snapshot does not match the solver's state size");
  const int nv = U.nv();
  const std::size_t fsz = U.block();
  for (const RowRange& r : segs) {
    const auto count = static_cast<std::size_t>(r.count);
    for (int v = 0; v < nv; ++v) {
      const double* src =
          sn.data.data() + static_cast<std::size_t>(v) * fsz + r.n0;
      std::copy(src, src + count, U.var(v) + r.n0);
    }
    const double* tsrc =
        sn.data.data() + static_cast<std::size_t>(nv) * fsz + r.n0;
    std::copy(tsrc, tsrc + count, T.data() + r.n0);
  }
}

double SnapshotRing::newest_time() const { return ring_.newest().t; }

void SnapshotRing::pop_newest() { ring_.pop_newest(); }

// ---------------------------------------------------------------------------
// HealthSentinel

HealthSentinel::HealthSentinel(Solver& s, const HealthConfig& hc,
                               vmpi::Comm* comm)
    : s_(s), hc_(hc), comm_(comm) {}

double HealthSentinel::encode_cell(int i, int j, int k) const {
  const auto off = s_.offset();
  const double NX = s_.mesh().nx();
  const double NY = s_.mesh().ny();
  return (off[0] + i) + NX * ((off[1] + j) + NY * (off[2] + k));
}

TripwireParams HealthSentinel::params() const {
  TripwireParams p;
  p.rho_min = hc_.rho_min;
  p.y_tol = hc_.y_tol;
  p.ns = s_.rhs().mech().n_species();
  p.nv = s_.state().nv();
  p.offset = s_.offset();
  p.NX = s_.mesh().nx();
  p.NY = s_.mesh().ny();
  return p;
}

bool HealthSentinel::arm_in_pass() {
  if (!hc_.enabled || !hc_.in_pass) return false;
  return s_.arm_tripwires(params());
}

HealthSentinel::LocalVerdict HealthSentinel::local_scan(
    double /*dt_used*/, const TripwireAccum* pre) {
  LocalVerdict v;
  v.cell_code = kNoCell;
  v.dt_suggest = kNoDt;

  const Layout& l = s_.layout();
  const State& U = s_.state();

  // Pass 1: conserved-state tripwires. Cheap (no Newton), and they gate
  // pass 2 so the primitive inversion never runs on garbage. An armed
  // step already accumulated the identical verdict inside its final
  // fused pass (same rows, same order, same comparisons) — reuse it and
  // this sweep disappears.
  TripwireAccum acc;
  if (pre) {
    acc = *pre;
  } else {
    const TripwireParams p = params();
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        acc.check_row(U, p, l.at(0, j, k), 0, l.nx, j, k);
  }

  if (acc.nonfinite > 0) {
    v.breach = Breach::non_finite;
    v.metric = static_cast<double>(acc.nonfinite);
    v.cell_code = acc.nonfinite_cell;
    v.threshold = 0.0;
    return v;
  }
  if (acc.rho_cell < kNoCell) {
    v.breach = Breach::negative_density;
    v.metric = hc_.rho_min - acc.rho_worst;  // excess below the floor
    v.cell_code = acc.rho_cell;
    v.threshold = hc_.rho_min;
    return v;
  }
  const double y_worst = acc.y_worst;
  const double y_cell = acc.y_cell;

  // Pass 2: primitive inversion under full accounting. Warm-started from
  // the existing T field, so on a healthy state this is one cheap Newton
  // iteration per cell; the refresh also leaves the primitives (and the
  // dt suggestion below) consistent with the committed state.
  PrimOptions popts;
  popts.renormalize_y = s_.rhs().config().y_renormalize;
  PrimStats stats;
  prim_from_conserved(s_.rhs().mech(), U, s_.rhs().prim(), popts, &stats);

  // T-bounds tripwire over the just-refreshed (cache-resident) T field.
  // Deliberately NOT folded into the Newton loop itself: perturbing that
  // kernel changes its code generation (FP contraction) and breaks the
  // bitwise golden contract, so only the conserved-state pass 1 above is
  // fused away (into the step's final pass) by the in-pass tripwires.
  double t_excess = 0.0, t_cell = kNoCell, t_thresh = hc_.T_max;
  const GField& T = s_.rhs().prim().T;
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j) {
      const std::size_t row = l.at(0, j, k);
      for (int i = 0; i < l.nx; ++i) {
        const double Tv = T.data()[row + i];
        const double ex = std::max(Tv - hc_.T_max, hc_.T_min - Tv);
        if (ex > 0.0 && ex > t_excess) {
          t_excess = ex;
          t_cell = encode_cell(i, j, k);
          t_thresh = Tv > hc_.T_max ? hc_.T_max : hc_.T_min;
        }
      }
    }

  const bool newton_bad = stats.newton_nonconverged > 0 ||
                          stats.newton_max_iterations > hc_.newton_max_iters;

  if (t_cell < kNoCell) {
    v.breach = Breach::temperature;
    v.metric = t_excess;  // kelvins outside [T_min, T_max]
    v.cell_code = t_cell;
    v.threshold = t_thresh;
  } else if (newton_bad) {
    v.breach = Breach::newton;
    // Non-convergence dominates any iteration count in the reduce.
    v.metric = stats.newton_nonconverged > 0
                   ? 1e4 + static_cast<double>(stats.newton_nonconverged)
                   : static_cast<double>(stats.newton_max_iterations);
    v.threshold = static_cast<double>(hc_.newton_max_iters);
    if (stats.worst_cell >= 0) {
      const auto f = static_cast<std::size_t>(stats.worst_cell);
      const auto sx = static_cast<std::size_t>(l.sx());
      const auto sy = static_cast<std::size_t>(l.sy());
      v.cell_code = encode_cell(static_cast<int>(f % sx) - l.gx,
                                static_cast<int>((f / sx) % sy) - l.gy,
                                static_cast<int>(f / (sx * sy)) - l.gz);
    }
  } else if (y_cell < kNoCell) {
    v.breach = Breach::y_sum;
    v.metric = y_worst;  // worst mass-fraction undershoot magnitude
    v.cell_code = y_cell;
    v.threshold = hc_.y_tol;
  }

  v.dt_suggest = s_.rhs().suggest_dt();
  return v;
}

HealthReport HealthSentinel::scan(double dt_used) {
  if (!hc_.enabled) return {};
  trace::Span sp("health.scan", "health");
  ++scans_;

  // In-pass verdict from an armed step, valid only if it scanned exactly
  // the state we are judging now (same step count, no poisoning below).
  std::optional<TripwireAccum> pre = s_.take_tripwires();
  if (pre && pre->step != s_.steps_taken()) pre.reset();

  bool injected = false;
  if (auto a = fault::probe("solver.health")) {
    switch (a.kind) {
      case fault::Kind::drop:
        return {};  // sentinel blinded: this scan is skipped outright
      case fault::Kind::corrupt: {
        // The poison lands after the armed pass ran, so the accumulated
        // verdict no longer describes the state; fall back to the sweep.
        pre.reset();
        // Poison one interior value so recovery from a real contamination
        // can be exercised deterministically.
        const Layout& l = s_.layout();
        State& U = s_.state();
        const auto r = static_cast<std::uint64_t>(a.rng);
        const auto nx = static_cast<std::uint64_t>(l.nx);
        const auto ny = static_cast<std::uint64_t>(l.ny);
        const auto nz = static_cast<std::uint64_t>(l.nz);
        const int i = static_cast<int>(r % nx);
        const int j = static_cast<int>((r / nx) % ny);
        const int k = static_cast<int>((r / (nx * ny)) % nz);
        const int vv =
            static_cast<int>((r >> 32) % static_cast<std::uint64_t>(U.nv()));
        U.var(vv)[l.at(i, j, k)] =
            std::numeric_limits<double>::quiet_NaN();
        break;
      }
      case fault::Kind::fail:
        // Surfaced as the top-severity breach instead of a thrown
        // InjectedFault: a single-rank fault must produce the identical
        // collective verdict (and rollback) on every rank.
        injected = true;
        break;
      default:
        fault::apply(a, "solver.health");  // delay
    }
  }

  if (pre) trace::counter_add("health.in_pass_scans", 1.0);
  LocalVerdict lv = local_scan(dt_used, pre ? &*pre : nullptr);
  if (injected) {
    lv.breach = Breach::injected;
    lv.metric = 1.0;
    lv.threshold = 0.0;
    lv.cell_code = encode_cell(0, 0, 0);
  }

  // Collective verdict, stage 1: severity (max) and stable dt (min via
  // negated max) in one reduce. Stages 2-4 run only on breach.
  double gsev = static_cast<double>(static_cast<int>(lv.breach));
  double gdt = lv.dt_suggest;
  if (comm_) {
    std::array<double, 2> v{gsev, -lv.dt_suggest};
    comm_->allreduce_max(v);
    gsev = v[0];
    gdt = -v[1];
  }

  HealthReport rep;
  rep.step = s_.steps_taken();
  const auto sev = static_cast<Breach>(static_cast<int>(gsev));

  if (sev == Breach::none) {
    // dt check: decided from the reduced stable dt, so every rank reaches
    // the same verdict even though the estimate is rank-local.
    if (hc_.check_dt && gdt < kNoDt && dt_used > hc_.dt_safety * gdt) {
      rep.breach = Breach::dt_violation;
      rep.value = dt_used / gdt;
      rep.threshold = hc_.dt_safety;
    }
  } else {
    rep.breach = sev;
    const bool mine = lv.breach == sev;
    double gmetric = lv.metric;
    double gcell = mine ? lv.cell_code : kNoCell;
    double grank = -1.0;
    if (comm_) {
      std::array<double, 1> m{mine ? lv.metric : -kNoCell};
      comm_->allreduce_max(m);
      gmetric = m[0];
      std::array<double, 1> c{mine && lv.metric == gmetric ? lv.cell_code
                                                           : kNoCell};
      comm_->allreduce_min(c);
      gcell = c[0];
      std::array<double, 1> rk{mine && lv.metric == gmetric &&
                                       lv.cell_code == gcell
                                   ? static_cast<double>(comm_->rank())
                                   : kNoCell};
      comm_->allreduce_min(rk);
      grank = rk[0] < kNoCell ? rk[0] : -1.0;
    }
    rep.value = gmetric;
    rep.rank = static_cast<int>(grank);
    rep.threshold = mine ? lv.threshold : 0.0;
    if (comm_) {
      // Thresholds are config-derived except temperature's bound choice;
      // make the report field identical on every rank.
      std::array<double, 1> th{rep.threshold};
      comm_->allreduce_max(th);
      rep.threshold = th[0];
    }
    if (gcell < kNoCell) {
      const auto idx = static_cast<long long>(std::llround(gcell));
      const long long NX = s_.mesh().nx();
      const long long NY = s_.mesh().ny();
      rep.cell = {static_cast<int>(idx % NX),
                  static_cast<int>((idx / NX) % NY),
                  static_cast<int>(idx / (NX * NY))};
    }
  }

  if (rep.breach != Breach::none && (!comm_ || comm_->rank() == 0)) {
    trace::counter_add("health.breaches", 1.0);
    trace::counter_add(rep.site(), 1.0);
  }
  return rep;
}

// ---------------------------------------------------------------------------
// run_guarded

void GuardOptions::validate() const {
  require_opt(health.scan_every >= 1, "guard.scan_every", "must be >= 1");
  require_opt(std::isfinite(health.rho_min) && health.rho_min >= 0.0,
              "guard.rho_min", "must be finite and >= 0");
  require_opt(std::isfinite(health.T_min) && std::isfinite(health.T_max) &&
                  health.T_min < health.T_max,
              "guard.T_bounds", "need finite T_min < T_max");
  require_opt(std::isfinite(health.y_tol) && health.y_tol > 0.0,
              "guard.y_tol", "must be positive and finite");
  require_opt(health.newton_max_iters >= 1, "guard.newton_max_iters",
              "must be >= 1");
  require_opt(std::isfinite(health.dt_safety) && health.dt_safety > 0.0,
              "guard.dt_safety", "must be positive and finite");
  require_opt(snapshot_every >= 1, "guard.snapshot_every", "must be >= 1");
  require_opt(ring_depth >= 1, "guard.ring_depth", "must be >= 1");
  require_opt(max_rollbacks >= 0, "guard.max_rollbacks", "must be >= 0");
  require_opt(retries_per_snapshot >= 1, "guard.retries_per_snapshot",
              "must be >= 1");
  require_opt(std::isfinite(dt_factor) && dt_factor > 0.0 && dt_factor < 1.0,
              "guard.dt_factor", "must lie in (0, 1)");
  require_opt(std::isfinite(dt_min) && dt_min >= 0.0, "guard.dt_min",
              "must be finite and >= 0");
  require_opt(std::isfinite(dt_fixed) && dt_fixed >= 0.0, "guard.dt_fixed",
              "must be finite and >= 0 (0 = automatic)");
  require_opt(dt_every >= 0, "guard.dt_every", "must be >= 0");
  if (adaptive) adaptive->validate("guard.adaptive");
}

namespace {

/// Collective newest-valid-generation restore from a (per-rank) restart
/// series: every rank proposes its newest remaining generation, the
/// decomposition agrees on the smallest proposal, votes on its validity,
/// and either restores it everywhere or discards it everywhere. Returns
/// the restored generation, or -1 when any rank runs out.
long restore_from_series(Solver& s, RestartSeries& series, vmpi::Comm* comm) {
  if (!comm) return series.read_latest(s);
  const auto gens = series.generations();  // newest first
  std::size_t idx = 0;
  while (true) {
    const double cand =
        idx < gens.size() ? static_cast<double>(gens[idx]) : -1.0;
    const double chosen = comm->allreduce_min(cand);
    if (chosen < 0.0) return -1;
    const auto g = static_cast<long>(chosen);
    while (idx < gens.size() && gens[idx] > g) ++idx;
    const bool ok =
        idx < gens.size() && gens[idx] == g && series.try_load(g, s);
    if (comm->allreduce_min(ok ? 1.0 : 0.0) > 0.5) return g;
    while (idx < gens.size() && gens[idx] >= g) ++idx;
  }
}

/// Total cells covered by a segment list (this rank's share of a mask).
long cells_of(std::span<const RowRange> segs) {
  long c = 0;
  for (const RowRange& r : segs) c += r.count;
  return c;
}

/// Masked pre-step capture for proactive subcycling: the stiff blocks'
/// conserved values + warm-start T, segment by segment (the ladder's
/// breach path restores from the snapshot ring instead).
std::vector<double> capture_cells(Solver& s,
                                  std::span<const RowRange> segs) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(cells_of(segs)) *
              static_cast<std::size_t>(s.state().nv() + 1));
  const State& U = s.state();
  const GField& T = s.rhs().prim().T;
  for (const RowRange& r : segs) {
    for (int v = 0; v < U.nv(); ++v) {
      const double* src = U.var(v) + r.n0;
      buf.insert(buf.end(), src, src + r.count);
    }
    const double* tsrc = T.data() + r.n0;
    buf.insert(buf.end(), tsrc, tsrc + r.count);
  }
  return buf;
}

void restore_captured_cells(Solver& s, std::span<const RowRange> segs,
                            const std::vector<double>& buf) {
  State& U = s.state();
  GField& T = s.rhs().prim().T;
  const double* src = buf.data();
  for (const RowRange& r : segs) {
    for (int v = 0; v < U.nv(); ++v) {
      std::copy(src, src + r.count, U.var(v) + r.n0);
      src += r.count;
    }
    std::copy(src, src + r.count, T.data() + r.n0);
    src += r.count;
  }
}

}  // namespace

GuardReport run_guarded(Solver& s, int nsteps, const GuardOptions& opts,
                        vmpi::Comm* comm) {
  opts.validate();
  GuardReport rep;
  const long start0 = s.steps_taken();
  const long target = start0 + std::max(nsteps, 0);
  const bool armed = opts.health.enabled;
  const bool rank0 = !comm || comm->rank() == 0;

  // Resolve the adaptive policy: explicit override, else the solver
  // Config's. The build-noadapt lane compiles the ladder away entirely,
  // so -DS3D_ADAPTIVE=OFF provably matches the global-halving goldens.
  AdaptiveOptions ad =
      opts.adaptive ? *opts.adaptive : s.rhs().config().adaptive;
#ifdef S3D_ADAPTIVE_OFF
  ad.enabled = false;
#endif
  const bool adaptive = armed && ad.enabled;

  HealthSentinel sentinel(s, opts.health, comm);
  // The ring inherits the run's checkpoint options: delta compression
  // keeps deep rings affordable, and restores stay bitwise either way.
  SnapshotRing ring(opts.ring_depth, s.rhs().config().checkpoint);
  // Plugin accumulators ride every capture from here on (DESIGN.md §15).
  if (opts.sidecar.save || opts.sidecar.load) ring.set_sidecar(opts.sidecar);
  // Seed the ring so even a first-step breach has a rollback point.
  if (armed && target > start0) ring.capture(s);

  // Controller state: the BlockMap tiles GLOBAL indices and every
  // controller update runs from collectively-reduced inputs, so the
  // block→dt map — and every ladder decision below — is identical on
  // every rank of any decomposition.
  std::optional<BlockMap> bmap;
  std::optional<DtController> ctrl;
  std::vector<double> berr, bdt;
  if (adaptive) {
    bmap.emplace(s.mesh().nx(), s.mesh().ny(), s.mesh().nz(), ad.block,
                 s.layout(), s.offset());
    ctrl.emplace(*bmap, ad);
    if (ad.cfl_clamp) bdt.resize(static_cast<std::size_t>(bmap->n_blocks()));
  }
  const Layout& lay = s.layout();
  const long ncell_local =
      static_cast<long>(lay.nx) * lay.ny * lay.nz;

  HealthReport last;
  double scale = 1.0;
  int retries_here = 0;
  double base_dt = -1.0;
  int clean_streak = 0;       ///< scanned-clean steps since the last breach
  int episode_subcycles = 0;  ///< rung-1 attempts in the current episode

  // Masked subcycled integration of `segs` across [t0, t0 + dt]: nsub
  // substeps on the blocks' own clock against the frozen far field,
  // landing exactly on the far field's clock t1 (the committed t after
  // the global step — re-imposed bit-exactly rather than summed, so
  // subcycling never skews the clock).
  const auto subcycle = [&](std::span<const RowRange> segs, double t0,
                            double t1, double dt, int nsub) {
    const int st1 = s.steps_taken();
    s.set_time(t0, st1);
    for (int m = 0; m < nsub; ++m) s.step_region(dt / nsub, segs);
    s.set_time(t1, st1);
    rep.subcycle_steps += nsub;
    rep.executed_cell_steps += cells_of(segs) * nsub;
    if (rank0) trace::counter_add("health.subcycle_count",
                                  static_cast<double>(nsub));
  };

  while (s.steps_taken() < target) {
    const long st = s.steps_taken();
    // dt re-estimation points are *absolute* step counts, so a rollback
    // replays the same estimation schedule deterministically.
    if (base_dt < 0.0 ||
        (opts.dt_every > 0 && (st - start0) % opts.dt_every == 0)) {
      base_dt = opts.dt_fixed > 0.0 ? opts.dt_fixed : s.stable_dt();
      if (adaptive && ad.cfl_clamp) {
        // Per-block CFL refinement: blocks whose own stable dt sits
        // below the (possibly fixed) global step get flagged stiff
        // before they ever breach.
        s.rhs().suggest_dt_blocks(*bmap, bdt);
        ctrl->clamp_stable(bdt, base_dt * scale, comm);
      }
    }
    const double dt = base_dt * scale;
    if (opts.dt_min > 0.0 && dt < opts.dt_min)
      throw HealthError(
          last, "dt fell below dt_min after " +
                    std::to_string(rep.rollbacks) + " rollbacks");

    const bool will_scan =
        armed && ((st + 1 - start0) % opts.health.scan_every == 0 ||
                  st + 1 == target);

    // Proactive stiff-region subcycling: the far field takes ONE step at
    // dt while blocks whose controller dt fell below it redo theirs at
    // dt/nsub on a shared local clock. Captured pre-step values are the
    // rewind point; the committed global step provides the frozen seam.
    std::vector<RowRange> stiff_segs;
    if (adaptive && !ctrl->stiff().empty())
      stiff_segs = bmap->segments(ctrl->stiff());
    const bool stiff_step = adaptive && !ctrl->stiff().empty();

    // Arm the in-pass tripwires when this step will be scanned — unless
    // subcycling will mutate the state again after the step commits, in
    // which case the in-pass verdict would be stale and the scan must
    // sweep the final state separately.
    if (will_scan && !stiff_step) sentinel.arm_in_pass();
    if (adaptive && will_scan)
      s.arm_error_estimate(*bmap, ad.atol, ad.rtol, &berr);

    std::vector<double> presnap;
    if (stiff_step) presnap = capture_cells(s, stiff_segs);
    const double t0 = s.time();
    s.step(dt);
    rep.executed_cell_steps += ncell_local;

    if (stiff_step) {
      const double t1 = s.time();
      restore_captured_cells(s, stiff_segs, presnap);
      rep.discarded_cell_steps += cells_of(stiff_segs);
      subcycle(stiff_segs, t0, t1, dt, ctrl->max_subcycles());
    }

    const long now = s.steps_taken();
    const bool scanned =
        armed &&
        ((now - start0) % opts.health.scan_every == 0 || now == target);
    HealthReport verdict;
    if (scanned) verdict = sentinel.scan(dt);

    // --- escalation ladder, rungs 1-2: localized recovery -------------
    // Only sound when the collective verdict names a cell and the ring's
    // newest snapshot is the immediate pre-step state (the default
    // snapshot_every == 1 cadence guarantees it on scanned-clean runs);
    // otherwise the breach falls straight to the global rungs.
    if (verdict.breach != Breach::none && adaptive) {
      while (verdict.breach != Breach::none && verdict.cell[0] >= 0 &&
             !ring.empty() && ring.newest_step() == now - 1) {
        const int b = bmap->block_of_global(verdict.cell);
        // Tripwire feedback into the controller: the breaching block is
        // pinned to the dt floor so the proactive path keeps subcycling
        // it until clean error observations relax it back.
        ctrl->force_floor(b);
        int rung;
        std::vector<int> blocks{b};
        int nsub;
        if (episode_subcycles < ad.max_subcycle_retries) {
          // Rung 1: subcycle the breaching block, doubling the local
          // clock on every retry of this episode.
          rung = 1;
          nsub = std::min(ad.subcycle_cap,
                          std::max(2, ctrl->subcycles(b))
                              << episode_subcycles);
        } else if (rep.local_rollbacks < ad.max_local_rollbacks) {
          // Rung 2: widen the rollback to the face-neighbor blocks (the
          // breach may be fed across the seam) at the full local clock.
          rung = 2;
          blocks = bmap->widen(blocks);
          nsub = ad.subcycle_cap;
        } else {
          break;  // localized budgets exhausted: escalate globally
        }
        const auto segs = bmap->segments(blocks);
        const double t1 = s.time();
        ring.restore_cells(s, segs);
        rep.discarded_cell_steps += cells_of(segs);
        subcycle(segs, ring.newest_time(), t1, dt, nsub);
        ++episode_subcycles;

        HealthEvent ev;
        ev.report = verdict;
        ev.rung = rung;
        ev.rolled_back_to = ring.newest_step();
        ev.dt_scale = scale;  // the global dt is NOT scaled by rungs 1-2
        rep.events.push_back(std::move(ev));
        if (rung == 1) {
          ++rep.subcycle_recoveries;
          if (rank0) trace::counter_add("health.ladder.subcycle", 1.0);
        } else {
          ++rep.local_rollbacks;
          if (rank0)
            trace::counter_add("health.ladder.local_rollback", 1.0);
        }
        // Judge the repaired state with a full collective scan; a clean
        // verdict exits the ladder with the far field untouched.
        verdict = sentinel.scan(dt);
      }
    }

    if (verdict.breach == Breach::none) {
      if (scanned && adaptive) {
        // Feed the controller (ONE collective reduce over the block
        // vector) and publish the block-dt floor.
        ctrl->observe(berr, comm);
        if (rank0)
          trace::gauge_set("health.dt_min", dt * ctrl->min_ratio());
        ++clean_streak;
        // A halved dt is a recovery posture, not a permanent sentence:
        // once the breach has stayed clear, return to the controller-
        // chosen base dt instead of integrating the rest of the run at
        // the crippled step (the legacy behavior, kept when disabled).
        if (scale < 1.0 && ad.dt_recover_after > 0 &&
            clean_streak >= ad.dt_recover_after) {
          scale = 1.0;
          base_dt = -1.0;
          if (rank0) {
            trace::counter_add("health.dt_recovered", 1.0);
            trace::gauge_set("health.dt_scale", scale);
          }
        }
      }
      episode_subcycles = 0;  // a clean scan ends the breach episode
      // Plugin consumers sample scanned-clean states only, BEFORE the
      // capture below — so the snapshot at this step already carries the
      // post-sample accumulators and a later rollback to it replays
      // without double-counting (DESIGN.md §15).
      if (scanned && opts.on_clean_step) opts.on_clean_step(now);
      // Snapshots are taken only from scanned-clean states.
      if (scanned && (now - start0) % opts.snapshot_every == 0 &&
          now < target) {
        ring.capture(s);
        retries_here = 0;  // progress: retries count anew from here
      }
      continue;
    }

    // --- rungs 3-4: global rollback, shrink dt, retry under budget ---
    last = verdict;
    clean_streak = 0;
    if (rep.rollbacks >= opts.max_rollbacks)
      throw HealthError(verdict, "rollback budget (" +
                                     std::to_string(opts.max_rollbacks) +
                                     ") exhausted");
    ++rep.rollbacks;

    if (retries_here >= opts.retries_per_snapshot && !ring.empty()) {
      ring.pop_newest();  // this point keeps failing: roll back deeper
      retries_here = 0;
    }

    HealthEvent ev;
    ev.report = verdict;
    ev.rung = 3;
    if (!ring.empty()) {
      ring.restore_newest(s);
    } else if (opts.fallback) {
      const long gen = restore_from_series(s, *opts.fallback, comm);
      if (gen < 0)
        throw HealthError(verdict,
                          "snapshot ring and restart series both exhausted");
      ev.from_series = true;
      ev.rung = 4;
      ++rep.series_restores;
      if (rank0) {
        trace::counter_add("health.series_restores", 1.0);
        if (adaptive)
          trace::counter_add("health.ladder.series_restore", 1.0);
      }
      ring.capture(s);
    } else {
      throw HealthError(verdict,
                        "snapshot ring exhausted (no fallback series)");
    }
    ++retries_here;
    scale *= opts.dt_factor;
    base_dt = -1.0;  // the restored state needs a fresh estimate
    rep.discarded_cell_steps += (now - s.steps_taken()) * ncell_local;
    if (rank0) {
      trace::counter_add("health.rollbacks", 1.0);
      if (adaptive && ev.rung == 3)
        trace::counter_add("health.ladder.global_rollback", 1.0);
      trace::gauge_set("health.dt_scale", scale);
    }
    ev.rolled_back_to = s.steps_taken();
    ev.dt_scale = scale;
    rep.events.push_back(std::move(ev));
  }

  rep.completed = true;
  rep.final_steps = s.steps_taken();
  rep.scans = sentinel.scans();
  rep.dt_scale = scale;
  return rep;
}

}  // namespace s3d::solver
