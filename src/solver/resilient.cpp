#include "solver/resilient.hpp"

#include <mutex>
#include <string>

#include "trace/trace.hpp"

namespace s3d::solver {

std::vector<long> checkpoint_schedule(int nsteps, int checkpoint_every) {
  std::vector<long> bounds;
  if (checkpoint_every <= 0) {
    if (nsteps > 0) bounds.push_back(nsteps);
    return bounds;
  }
  for (long s = checkpoint_every; s < nsteps; s += checkpoint_every)
    bounds.push_back(s);
  if (nsteps > 0) bounds.push_back(nsteps);
  return bounds;
}

namespace {

// Advance `s` to `nsteps` along the checkpoint schedule. Chunk boundaries
// are absolute step counts, so a solver restored at a boundary replays
// the same chunking (and therefore the same dt re-estimation points) as
// an uninterrupted run.
void advance_chunked(Solver& s, const std::vector<long>& bounds,
                     RestartSeries& series, const ResilienceConfig& rc,
                     vmpi::Comm* comm = nullptr) {
  for (long target : bounds) {
    if (target <= s.steps_taken()) continue;
    if (rc.guard) {
      GuardOptions g = rc.guard_opts;
      g.fallback = &series;
      run_guarded(s, static_cast<int>(target - s.steps_taken()), g, comm);
    } else {
      s.run(static_cast<int>(target - s.steps_taken()));
    }
    series.write(s, s.steps_taken());
    // With synchronous persistence the barrier makes "generation durable
    // on every rank" a run-wide event. With write-behind the file may
    // still be in the persist queue here — that is the point of the
    // queue — and recovery copes: the collective vote only accepts a
    // generation that validates on all ranks, and a failed attempt
    // drains every rank's queue (series destructor) before the retry.
    if (comm) comm->barrier();
  }
  // Settle the final generation so a caller observing success observes
  // durable files (no-op for synchronous stores).
  series.drain();
}

std::string attempt_failed(int attempt, const char* what) {
  return "attempt " + std::to_string(attempt) + " failed: " + what;
}

}  // namespace

ResilienceReport run_resilient(Solver& s, const InitFn& init, int nsteps,
                               const ResilienceConfig& rc) {
  ResilienceReport rep;
  RestartSeries series(rc.dir, rc.stem, rc.keep_last,
                       rc.store.value_or(s.rhs().config().checkpoint));
  const auto bounds = checkpoint_schedule(nsteps, rc.checkpoint_every);
  for (int attempt = 1; attempt <= rc.max_attempts; ++attempt) {
    ++rep.attempts;
    try {
      std::vector<std::string> skipped;
      const long gen = series.read_latest(s, &skipped);
      for (const auto& sk : skipped)
        rep.events.push_back("skipped " + sk);
      if (gen < 0) {
        s.initialize(init);
        s.set_time(0.0, 0);
        if (attempt > 1)
          rep.events.push_back("no valid generation; restarted from t=0");
      } else if (attempt > 1) {
        rep.events.push_back("restored generation " + std::to_string(gen));
      }
      advance_chunked(s, bounds, series, rc);
      rep.succeeded = true;
      rep.final_steps = s.steps_taken();
      return rep;
    } catch (const std::exception& e) {
      rep.events.push_back(attempt_failed(attempt, e.what()));
      trace::counter_add("resilience.failures", 1.0);
      if (attempt < rc.max_attempts) ++rep.recoveries;
    }
  }
  rep.events.push_back("attempt budget exhausted (" +
                       std::to_string(rc.max_attempts) + ")");
  return rep;
}

ResilienceReport run_resilient(const Config& cfg, const InitFn& init,
                               int nsteps, const ResilienceConfig& rc,
                               int px, int py, int pz,
                               const FinalizeFn& finalize) {
  ResilienceReport rep;
  const auto bounds = checkpoint_schedule(nsteps, rc.checkpoint_every);
  const int nranks = px * py * pz;
  for (int attempt = 1; attempt <= rc.max_attempts; ++attempt) {
    ++rep.attempts;
    std::mutex ev_mu;
    std::vector<std::string> events;
    try {
      vmpi::run(
          nranks,
          [&](vmpi::Comm& comm) {
            Solver s(cfg, comm, px, py, pz);
            RestartSeries series(
                rc.dir, rc.stem + ".r" + std::to_string(comm.rank()),
                rc.keep_last, rc.store.value_or(cfg.checkpoint));
            // Collective generation agreement: every rank walks the same
            // schedule boundaries newest-first and votes; a generation is
            // used only when it validates on all ranks, so one corrupted
            // per-rank file rolls the whole decomposition back together.
            long gen = -1;
            for (auto it = bounds.rbegin(); it != bounds.rend(); ++it) {
              std::string err;
              const bool ok = series.try_load(*it, s, &err);
              if (!ok && !err.empty() &&
                  err.find("missing or unreadable") == std::string::npos) {
                std::lock_guard<std::mutex> lk(ev_mu);
                events.push_back("rank " + std::to_string(comm.rank()) +
                                 " skipped gen " + std::to_string(*it) +
                                 ": " + err);
              }
              if (comm.allreduce_min(ok ? 1.0 : 0.0) > 0.5) {
                gen = *it;
                break;
              }
            }
            if (gen < 0) {
              s.initialize(init);
              s.set_time(0.0, 0);
            }
            advance_chunked(s, bounds, series, rc, &comm);
            if (finalize) finalize(s, comm);
          },
          rc.vmpi);
      rep.events.insert(rep.events.end(), events.begin(), events.end());
      rep.succeeded = true;
      rep.final_steps = nsteps;
      return rep;
    } catch (const std::exception& e) {
      rep.events.insert(rep.events.end(), events.begin(), events.end());
      rep.events.push_back(attempt_failed(attempt, e.what()));
      trace::counter_add("resilience.failures", 1.0);
      if (attempt < rc.max_attempts) ++rep.recoveries;
    }
  }
  rep.events.push_back("attempt budget exhausted (" +
                       std::to_string(rc.max_attempts) + ")");
  return rep;
}

}  // namespace s3d::solver
