#pragma once
// Synthetic turbulence for inflow forcing and initial conditions.
//
// Kraichnan-style random Fourier modes: a divergence-free velocity field
//   u'(x) = 2 sum_m  a_m  cos(k_m . x + phi_m) sigma_m,   sigma_m  k_m
// with wavevectors sampled from a von Karman-like energy spectrum around a
// prescribed integral length scale and amplitudes normalized so the RMS of
// each component is u_rms. The paper's slot-jet DNS feed turbulent
// fluctuations at the inflow plane by sweeping a frozen field with Taylor's
// hypothesis (sections 6.2, 7.2); SyntheticTurbulence::at_inflow does
// exactly that.

#include <array>
#include <vector>

#include "common/random.hpp"

namespace s3d::solver {

class SyntheticTurbulence {
 public:
  /// @param u_rms    target RMS of each fluctuation component [m/s]
  /// @param length   energy-containing (integral-like) length scale [m]
  /// @param n_modes  number of Fourier modes
  /// @param seed     RNG seed (runs are reproducible)
  /// @param two_d    restrict wavevectors and fluctuations to the x-y plane
  SyntheticTurbulence(double u_rms, double length, int n_modes,
                      std::uint64_t seed = 0x711b, bool two_d = false);

  /// Frozen-field fluctuation velocity at a point.
  std::array<double, 3> velocity(double x, double y, double z) const;

  /// Taylor-hypothesis inflow fluctuation: the frozen field swept past the
  /// inflow plane at convection speed U_c, i.e. velocity(-U_c t, y, z).
  std::array<double, 3> at_inflow(double t, double U_c, double y,
                                  double z) const {
    return velocity(-U_c * t, y, z);
  }

  double u_rms() const { return u_rms_; }
  double length_scale() const { return length_; }

 private:
  struct Mode {
    std::array<double, 3> k;
    std::array<double, 3> sigma;  ///< amplitude vector, perpendicular to k
    double phase;
  };
  std::vector<Mode> modes_;
  double u_rms_;
  double length_;
};

}  // namespace s3d::solver
