#include "solver/cases.hpp"

#include <algorithm>
#include <cmath>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/reactor.hpp"

namespace s3d::solver {

namespace {

// Smooth top-hat jet profile: 1 inside |y| < h/2, 0 outside, tanh
// shoulders of thickness delta.
double jet_profile(double y, double h, double delta) {
  return 0.5 * (std::tanh((y + 0.5 * h) / delta) -
                std::tanh((y - 0.5 * h) / delta));
}

}  // namespace

CaseSetup pressure_wave_case(int n, bool two_d) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::air_inert());
  cs.cfg.mech = mech;
  const double L = 0.01;
  cs.cfg.x = {n, L, true};
  cs.cfg.y = {n, L, true};
  cs.cfg.z = {two_d ? 1 : n, L, two_d ? false : true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cs.cfg.faces[a]) f.kind = BcKind::periodic;
  cs.cfg.transport = TransportModel::power_law;
  cs.cfg.T_ref = 300.0;

  cs.Y_ox = chem::stream_Y_from_X(*mech, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_air = cs.Y_ox;
  cs.init = [L, Y_air](double x, double y, double z, InflowState& s,
                       double& p) {
    s.u = s.v = s.w = 0.0;
    s.T = 300.0;
    s.Y.fill(0.0);
    for (std::size_t i = 0; i < Y_air.size(); ++i) s.Y[i] = Y_air[i];
    // s3dlint:allow(libm): init-only IC, one call site for all ranks
    const double r2 = std::pow(x - 0.5 * L, 2) + std::pow(y - 0.5 * L, 2) +
                      std::pow(z - 0.5 * L, 2);
    p = 101325.0 * (1.0 + 0.01 * std::exp(-r2 / std::pow(0.1 * L, 2)));
  };
  return cs;
}

CaseSetup lifted_jet_case(const LiftedJetParams& prm) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  Config& cfg = cs.cfg;
  cfg.mech = mech;
  cfg.x = {prm.nx, prm.Lx, false};
  cfg.y = {prm.ny, prm.Ly, false, prm.y_stretch, -0.5 * prm.Ly};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {BcKind::nscbc_inflow, prm.p, 0.25};
  cfg.faces[0][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.12 * prm.Lx, 0.4};
  cfg.faces[1][0] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.15 * prm.Ly, 0.4};
  cfg.faces[1][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.15 * prm.Ly, 0.4};
  cfg.transport = prm.transport;
  cfg.T_ref = 900.0;
  cfg.p_ref = prm.p;

  // Fuel stream: 65% H2 / 35% N2 by volume (paper section 6.2).
  cs.Y_fuel = chem::stream_Y_from_X(*mech, {{"H2", 0.65}, {"N2", 0.35}});
  cs.Y_ox = chem::stream_Y_from_X(*mech, {{"O2", 0.21}, {"N2", 0.79}});
  cs.Z_st = chem::stoichiometric_mixture_fraction(*mech, cs.Y_ox, cs.Y_fuel);

  cs.turb = std::make_shared<SyntheticTurbulence>(prm.u_rms, prm.turb_len,
                                                  64, prm.seed, true);

  const double delta = prm.slot_h / 8.0;
  const auto Yf = cs.Y_fuel;
  const auto Yo = cs.Y_ox;
  const double h = prm.slot_h;
  auto profile_state = [=, turb = cs.turb](double t, double y, double z,
                                           InflowState& s) {
    const double f = jet_profile(y, h, delta);
    s.T = prm.T_coflow + (prm.T_fuel - prm.T_coflow) * f;
    for (std::size_t i = 0; i < Yf.size(); ++i)
      s.Y[i] = Yo[i] + (Yf[i] - Yo[i]) * f;
    const auto up = turb->at_inflow(t, prm.u_jet, y, z);
    s.u = prm.u_coflow + (prm.u_jet - prm.u_coflow) * f + f * up[0];
    s.v = f * up[1];
    s.w = 0.0;
  };
  cfg.inflow = [profile_state](double t, double y, double z, InflowState& s) {
    s.Y.fill(0.0);
    profile_state(t, y, z, s);
  };
  const double p0 = prm.p;
  cs.init = [profile_state, p0](double /*x*/, double y, double z,
                                InflowState& s, double& p) {
    s.Y.fill(0.0);
    profile_state(0.0, y, z, s);  // columnar extension of the inflow
    p = p0;
  };
  return cs;
}

CaseSetup bunsen_case(const BunsenParams& prm) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::ch4_bfer2step());
  Config& cfg = cs.cfg;
  cfg.mech = mech;
  cfg.x = {prm.nx, prm.Lx, false};
  cfg.y = {prm.ny, prm.Ly, false, prm.y_stretch, -0.5 * prm.Ly};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {BcKind::nscbc_inflow, prm.p, 0.25};
  cfg.faces[0][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.12 * prm.Lx, 0.4};
  cfg.faces[1][0] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.15 * prm.Ly, 0.4};
  cfg.faces[1][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.15 * prm.Ly, 0.4};
  cfg.transport = prm.transport;
  cfg.T_ref = prm.T_unburnt;
  cfg.p_ref = prm.p;

  // Unburnt reactants and their complete-combustion products (the coflow
  // is the hot-products "pilot", paper section 7.2).
  auto Yu = chem::premixed_fuel_air_Y(*mech, "CH4", prm.phi);
  auto [Tb, Yb] =
      chem::equilibrium_products(*mech, 1600.0, prm.p, Yu, 0.05);
  // Shift the product temperature to the adiabatic value from T_unburnt:
  // h(Tb') = h(T_unburnt, Yu).
  const double h_u = mech->h_mass_mix(prm.T_unburnt, Yu);
  const double T_ad = mech->T_from_h(h_u, Yb, Tb);

  cs.Y_fuel = Yu;
  cs.Y_ox = Yb;
  cs.Y_o2_unburnt = Yu[mech->index("O2")];
  cs.Y_o2_burnt = Yb[mech->index("O2")];
  cs.T_burnt = T_ad;

  cs.turb = std::make_shared<SyntheticTurbulence>(prm.u_rms, prm.turb_len,
                                                  64, prm.seed, true);

  const double delta = prm.slot_h / 8.0;
  const double h = prm.slot_h;
  auto blend = [=](double f, InflowState& s) {
    s.T = T_ad + (prm.T_unburnt - T_ad) * f;
    for (std::size_t i = 0; i < Yu.size(); ++i)
      s.Y[i] = Yb[i] + (Yu[i] - Yb[i]) * f;
  };
  cfg.inflow = [=, turb = cs.turb](double t, double y, double z,
                                   InflowState& s) {
    s.Y.fill(0.0);
    const double f = jet_profile(y, h, delta);
    blend(f, s);
    const auto up = turb->at_inflow(t, prm.u_jet, y, z);
    s.u = prm.u_coflow + (prm.u_jet - prm.u_coflow) * f + f * up[0];
    s.v = f * up[1];
    s.w = 0.0;
  };
  const double p0 = prm.p;
  const double Lx = prm.Lx;
  cs.init = [=](double x, double y, double /*z*/, InflowState& s,
                double& p) {
    s.Y.fill(0.0);
    // The reactant column burns out by mid-domain initially: a planar
    // flame sheet that subsequently wrinkles (paper fig. 12: "the flame is
    // initially planar at the inlet").
    const double burnout = 0.5 * (1.0 + std::tanh((x - 0.45 * Lx) /
                                                  (0.06 * Lx)));
    const double f = jet_profile(y, h, delta) * (1.0 - burnout);
    blend(f, s);
    s.u = prm.u_coflow + (prm.u_jet - prm.u_coflow) * f;
    s.v = s.w = 0.0;
    p = p0;
  };
  return cs;
}

CaseSetup temporal_jet_case(const TemporalJetParams& prm) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::syngas_co_h2());
  Config& cfg = cs.cfg;
  cfg.mech = mech;
  cfg.x = {prm.nx, prm.Lx, true};
  cfg.y = {prm.ny, prm.Ly, false, 0.0, -0.5 * prm.Ly};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0].kind = BcKind::periodic;
  cfg.faces[0][1].kind = BcKind::periodic;
  cfg.faces[1][0] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.12 * prm.Ly, 0.4};
  cfg.faces[1][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.12 * prm.Ly, 0.4};
  cfg.transport = TransportModel::power_law;
  cfg.T_ref = prm.T0;
  cfg.p_ref = prm.p;

  // Streams of Hawkes et al. (2007): fuel 50% CO / 10% H2 / 40% N2,
  // oxidizer 25% O2 / 75% N2, both at T0.
  cs.Y_fuel = chem::stream_Y_from_X(
      *mech, {{"CO", 0.50}, {"H2", 0.10}, {"N2", 0.40}});
  cs.Y_ox = chem::stream_Y_from_X(*mech, {{"O2", 0.25}, {"N2", 0.75}});
  cs.Z_st = chem::stoichiometric_mixture_fraction(*mech, cs.Y_ox, cs.Y_fuel);

  cs.turb = std::make_shared<SyntheticTurbulence>(prm.u_rms, prm.turb_len,
                                                  64, prm.seed, true);

  const double delta = prm.jet_h / 10.0;
  const auto Yf = cs.Y_fuel;
  const auto Yo = cs.Y_ox;
  const double p0 = prm.p;
  cs.init = [=, turb = cs.turb](double x, double y, double /*z*/,
                                InflowState& s, double& p) {
    s.Y.fill(0.0);
    const double f = jet_profile(y, prm.jet_h, delta);
    for (std::size_t i = 0; i < Yf.size(); ++i)
      s.Y[i] = Yo[i] + (Yf[i] - Yo[i]) * f;
    // Counter-flowing streams; perturbations confined to the shear layers.
    // s3dlint:allow(libm): init-only IC, one call site for all ranks
    const double shear =
        std::exp(-std::pow((std::abs(y) - 0.5 * prm.jet_h) / (2 * delta), 2));
    const auto up = turb->velocity(x, y, 0.0);
    s.u = prm.dU * (f - 0.5) + shear * up[0];
    s.v = shear * up[1];
    s.w = 0.0;
    // Hot ignition strips at the two fuel/oxidizer interfaces.
    s.T = prm.T0 + (prm.T_ignite - prm.T0) * shear;
    p = p0;
  };
  return cs;
}

CaseSetup counterflow_ignition_case(const CounterflowParams& prm) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  Config& cfg = cs.cfg;
  cfg.mech = mech;
  cfg.x = {prm.nx, prm.Lx, false, 0.0, -0.5 * prm.Lx};
  cfg.y = {prm.ny, prm.Ly, true};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.1 * prm.Lx, 0.4};
  cfg.faces[0][1] = {BcKind::nscbc_outflow, prm.p, 0.25, 0.1 * prm.Lx, 0.4};
  cfg.faces[1][0].kind = BcKind::periodic;
  cfg.faces[1][1].kind = BcKind::periodic;
  cfg.transport = TransportModel::power_law;
  cfg.T_ref = 900.0;
  cfg.p_ref = prm.p;

  // Cold diluted fuel (30% H2 / 70% N2) against hot air.
  cs.Y_fuel = chem::stream_Y_from_X(*mech, {{"H2", 0.30}, {"N2", 0.70}});
  cs.Y_ox = chem::stream_Y_from_X(*mech, {{"O2", 0.21}, {"N2", 0.79}});
  cs.Z_st = chem::stoichiometric_mixture_fraction(*mech, cs.Y_ox, cs.Y_fuel);

  cs.turb = std::make_shared<SyntheticTurbulence>(prm.u_rms, prm.turb_len,
                                                  64, prm.seed, true);

  const auto Yf = cs.Y_fuel;
  const auto Yo = cs.Y_ox;
  const double p0 = prm.p;
  cs.init = [=, turb = cs.turb](double x, double y, double /*z*/,
                                InflowState& s, double& p) {
    s.Y.fill(0.0);
    // Mixing layer centered on the stagnation plane x = 0: fuel fills
    // x < 0, oxidizer x > 0.
    const double Z = 0.5 * (1.0 - std::tanh(x / prm.delta));
    s.T = prm.T_ox + (prm.T_fuel - prm.T_ox) * Z;
    for (std::size_t i = 0; i < Yf.size(); ++i)
      s.Y[i] = Yo[i] + (Yf[i] - Yo[i]) * Z;
    // Opposed streams, u = -a x near the stagnation plane, decaying
    // toward the outflow faces so the sponges see a quiet far field.
    // s3dlint:allow(libm): init-only IC, one call site for all ranks
    const double envelope = std::exp(-std::pow(x / (0.3 * prm.Lx), 2));
    const double shear = std::exp(-std::pow(x / (2.0 * prm.delta), 2));
    const auto up = turb->velocity(x, y, 0.0);
    s.u = -prm.strain * x * envelope + shear * up[0];
    s.v = shear * up[1];
    s.w = 0.0;
    p = p0;
  };
  return cs;
}

CaseSetup hit_autoignition_case(const HitAutoignitionParams& prm) {
  CaseSetup cs;
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  Config& cfg = cs.cfg;
  cfg.mech = mech;
  cfg.x = {prm.n, prm.L, true};
  cfg.y = {prm.n, prm.L, true};
  cfg.z = {prm.two_d ? 1 : prm.n, prm.L, prm.two_d ? false : true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = BcKind::periodic;
  cfg.transport = TransportModel::power_law;
  cfg.T_ref = prm.T0;
  cfg.p_ref = prm.p;

  // Lean premixed reactants and their equilibrium products: the premixed
  // progress-variable endpoints for the conditional diagnostics.
  auto Yu = chem::premixed_fuel_air_Y(*mech, "H2", prm.phi);
  auto [Tb, Yb] = chem::equilibrium_products(*mech, 1400.0, prm.p, Yu, 0.05);
  const double h_u = mech->h_mass_mix(prm.T0, Yu);
  const double T_ad = mech->T_from_h(h_u, Yb, Tb);
  cs.Y_fuel = Yu;
  cs.Y_ox = Yb;
  cs.Y_o2_unburnt = Yu[mech->index("O2")];
  cs.Y_o2_burnt = Yb[mech->index("O2")];
  cs.T_burnt = T_ad;

  cs.turb = std::make_shared<SyntheticTurbulence>(prm.u_rms, prm.turb_len,
                                                  64, prm.seed, prm.two_d);
  // A second, independent synthetic field shapes the temperature spots so
  // thermal and velocity fluctuations are uncorrelated at t = 0.
  auto spots = std::make_shared<SyntheticTurbulence>(
      1.0, prm.turb_len, 64, prm.seed ^ 0x9e3779b97f4a7c15ull, prm.two_d);

  const double p0 = prm.p;
  cs.init = [=, turb = cs.turb](double x, double y, double z,
                                InflowState& s, double& p) {
    s.Y.fill(0.0);
    for (std::size_t i = 0; i < Yu.size(); ++i) s.Y[i] = Yu[i];
    const auto up = turb->velocity(x, y, z);
    s.u = up[0];
    s.v = up[1];
    s.w = up[2];
    const double th =
        std::clamp(spots->velocity(x, y, z)[0], -2.0, 2.0);
    s.T = prm.T0 + prm.dT * th;
    p = p0;
  };
  return cs;
}

}  // namespace s3d::solver
