#pragma once
// Fault-tolerant run drivers (DESIGN.md "Resilience").
//
// The paper's multi-day campaigns survive because checkpoint/restart is
// the recovery mechanism: when a component dies the job is resubmitted
// from the newest restart files (sections 5 and 9). run_resilient() is
// that loop as a library: advance in checkpoint-interval chunks writing
// a rotating RestartSeries, and when a step, checkpoint, or peer rank
// throws, restore the newest generation that validates on every rank and
// retry under a bounded attempt budget.
//
// Determinism contract: chunks always start at checkpoint boundaries and
// dt is re-estimated at each chunk start, so a recovered run replays the
// exact dt schedule of an uninterrupted run — final fields are bitwise
// identical to a fault-free run of the same driver (the golden
// resilience test asserts this per variable).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "solver/checkpoint.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::solver {

struct ResilienceConfig {
  std::string dir;             ///< checkpoint directory
  std::string stem = "restart";
  int checkpoint_every = 5;    ///< steps between generations
  int keep_last = 3;           ///< generations retained per rank
  int max_attempts = 5;        ///< total attempt budget (1 = no retry)
  vmpi::RunOptions vmpi;       ///< watchdog options for the parallel driver
  /// Run each chunk under the health sentinel (run_guarded) instead of
  /// bare run(): numerical breaches climb the escalation ladder in
  /// memory first (guard_opts.adaptive / Config::adaptive select the
  /// localized rungs; DESIGN.md §13), and only a HealthError escaping
  /// the guard consumes a restore-and-retry attempt here.
  /// guard_opts.fallback is wired to this driver's own RestartSeries,
  /// so the ladder's last rung and the attempt loop share one set of
  /// generations.
  bool guard = false;
  GuardOptions guard_opts;
  /// Checkpoint-store tuning for this driver's RestartSeries (delta
  /// cadence, write-behind persister, retry budget; DESIGN.md §12).
  /// Unset: the solver Config's `checkpoint` options apply.
  std::optional<CkptOptions> store;
};

struct ResilienceReport {
  bool succeeded = false;
  int attempts = 0;    ///< attempt bodies started (1 = fault-free)
  int recoveries = 0;  ///< failures absorbed by restore-and-retry
  long final_steps = 0;
  std::vector<std::string> events;  ///< human-readable recovery log
};

/// Serial driver: bring `s` to `nsteps` total steps, checkpointing every
/// `checkpoint_every` steps into rc.dir. On failure, restores the newest
/// valid generation (or re-applies `init` when none survives) and
/// retries. Never throws for absorbed faults; report.succeeded is false
/// when the attempt budget is exhausted (the last error is in events).
ResilienceReport run_resilient(Solver& s, const InitFn& init, int nsteps,
                               const ResilienceConfig& rc);

/// Per-rank hook run inside the successful attempt after `nsteps` is
/// reached (collect checksums, write diagnostics, ...).
using FinalizeFn = std::function<void(Solver&, vmpi::Comm&)>;

/// Parallel driver: each attempt is a fresh vmpi::run over a
/// (px, py, pz) decomposition; rank k checkpoints `stem.r<k>`. Recovery
/// is collective — a generation counts only when every rank's file
/// validates (allreduce vote walking the deterministic checkpoint
/// schedule newest-first) — so a generation corrupted on one rank rolls
/// every rank back together. RankFailure/DeadlockError from vmpi are
/// absorbed like any other fault, up to the attempt budget.
ResilienceReport run_resilient(const Config& cfg, const InitFn& init,
                               int nsteps, const ResilienceConfig& rc,
                               int px, int py, int pz,
                               const FinalizeFn& finalize = {});

/// The checkpoint-boundary schedule both drivers follow: step counts
/// after each chunk of at most `checkpoint_every` steps, ascending.
std::vector<long> checkpoint_schedule(int nsteps, int checkpoint_every);

}  // namespace s3d::solver
