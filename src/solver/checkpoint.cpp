#include "solver/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "solver/ckpt_store.hpp"

namespace s3d::solver {

namespace {

constexpr std::uint64_t kAnalysisMagic = 0x533344414e4cull;  // "S3DANL"

/// Bounds-checked cursor over an in-memory file image; every read that
/// would run past the end throws a typed error naming the file.
class ByteReader {
 public:
  ByteReader(const std::string& image, const std::string& path)
      : data_(image), path_(path) {}

  template <typename T>
  T get() {
    require(sizeof(T), "value");
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_str() {
    const auto n = get<std::uint32_t>();
    require(n, "string");
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<double> get_vec() {
    const auto n = get<std::uint64_t>();
    S3D_REQUIRE(n <= remaining() / sizeof(double),
                "corrupt array length in " + path_);
    std::vector<double> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n, const char* what) {
    S3D_REQUIRE(n <= remaining(),
                std::string("truncated ") + what + " in " + path_);
  }
  const std::string& data_;
  std::string path_;
  std::size_t pos_ = 0;
};

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  S3D_REQUIRE(is.good(), "truncated file");
  return v;
}
void put_str(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void put_vec(std::ostream& os, const std::vector<double>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

}  // namespace

void write_restart(const std::string& path, const Solver& s) {
  // Serialization and the fault-site semantics live in the checkpoint
  // store's codec (ckpt_store.cpp); a standalone restart file is exactly
  // a base generation.
  std::string image = serialize_base(image_from_solver(s));
  if (auto a = fault::probe("checkpoint.write")) {
    fault::apply(a, "checkpoint.write");  // Kind::fail throws before any I/O
    if (a.kind == fault::Kind::drop) return;
    // Kind::corrupt lands a full-length but bit-damaged image on disk —
    // exactly what read_restart's checksum and RestartSeries::read_latest
    // must catch.
    fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(image.data()),
                         image.size());
  }
  atomic_write_file(path, image);
}

void read_restart(const std::string& path, Solver& s) {
  std::string image = read_file_image(path, "restart file");
  if (auto a = fault::probe("restart.read")) {
    fault::apply(a, "restart.read");  // Kind::fail models a read error
    fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(image.data()),
                         image.size());
  }
  const int expect[4] = {s.layout().nx, s.layout().ny, s.layout().nz,
                         s.state().nv()};
  // The solver is only touched after parse_base has verified the trailing
  // checksum, so a corrupted file cannot half-load.
  commit_image(parse_base(image, path, expect), s);
}

double restart_time(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(),
              "cannot open restart file: " + path + " (missing or unreadable)");
  S3D_REQUIRE(get<std::uint64_t>(f) == kRestartMagic,
              "not a restart file: " + path);
  for (int i = 0; i < 4; ++i) get<std::int32_t>(f);
  return get<double>(f);
}

RestartSeries::RestartSeries(std::string dir, std::string stem, int keep_last,
                             CkptOptions opt)
    : store_(std::make_unique<CkptStore>(std::move(dir), std::move(stem),
                                         keep_last, opt)) {}

RestartSeries::~RestartSeries() = default;

const std::string& RestartSeries::dir() const { return store_->dir(); }
const std::string& RestartSeries::stem() const { return store_->stem(); }
int RestartSeries::keep_last() const { return store_->keep_last(); }

std::string RestartSeries::path(long gen) const { return store_->path(gen); }

std::string RestartSeries::manifest_path() const {
  return store_->manifest_path();
}

std::vector<long> RestartSeries::generations() const {
  return store_->generations();
}

void RestartSeries::write(const Solver& s, long gen) {
  store_->append(s, gen);
}

bool RestartSeries::try_load(long gen, Solver& s, std::string* err) const {
  return store_->try_load(gen, s, err);
}

long RestartSeries::read_latest(Solver& s,
                                std::vector<std::string>* skipped) const {
  return store_->restore_latest(s, skipped);
}

void RestartSeries::drain() const { store_->drain(); }

CkptStats RestartSeries::stats() const { return store_->stats(); }

void AnalysisFile::add_profile(const std::string& name,
                               std::vector<double> x,
                               std::vector<double> y) {
  S3D_REQUIRE(x.size() == y.size(), "profile x/y size mismatch: " + name);
  if (!profiles_.count(name)) p_names_.push_back(name);
  profiles_[name] = {std::move(x), std::move(y)};
}

void AnalysisFile::add_slice(const std::string& name, int nx, int ny,
                             std::vector<double> data) {
  S3D_REQUIRE(static_cast<std::size_t>(nx) * ny == data.size(),
              "slice size mismatch: " + name);
  if (!slices_.count(name)) s_names_.push_back(name);
  slices_[name] = {nx, ny, std::move(data)};
}

const std::pair<std::vector<double>, std::vector<double>>&
AnalysisFile::profile(const std::string& name) const {
  auto it = profiles_.find(name);
  S3D_REQUIRE(it != profiles_.end(), "no such profile: " + name);
  return it->second;
}

std::tuple<int, int, const std::vector<double>*> AnalysisFile::slice(
    const std::string& name) const {
  auto it = slices_.find(name);
  S3D_REQUIRE(it != slices_.end(), "no such slice: " + name);
  return {std::get<0>(it->second), std::get<1>(it->second),
          &std::get<2>(it->second)};
}

void AnalysisFile::write(const std::string& path) const {
  std::ostringstream f(std::ios::binary);
  put(f, kAnalysisMagic);
  put<std::uint32_t>(f, static_cast<std::uint32_t>(p_names_.size()));
  for (const auto& n : p_names_) {
    put_str(f, n);
    put_vec(f, profiles_.at(n).first);
    put_vec(f, profiles_.at(n).second);
  }
  put<std::uint32_t>(f, static_cast<std::uint32_t>(s_names_.size()));
  for (const auto& n : s_names_) {
    const auto& [nx, ny, data] = slices_.at(n);
    put_str(f, n);
    put<std::int32_t>(f, nx);
    put<std::int32_t>(f, ny);
    put_vec(f, data);
  }
  // Trailing integrity checksum over the whole payload, restart-style:
  // read() rejects bit flips instead of returning silently wrong plots.
  std::string image = std::move(f).str();
  Fnv1a64 hash;
  hash.update(image.data(), image.size());
  std::uint64_t digest = hash.digest();
  image.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  atomic_write_file(path, image);
}

AnalysisFile AnalysisFile::read(const std::string& path) {
  const std::string image = read_file_image(path, "analysis file");
  S3D_REQUIRE(image.size() >= sizeof(std::uint64_t) * 2,
              "truncated analysis file: " + path);
  const std::size_t payload = image.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, image.data() + payload, sizeof(stored));
  Fnv1a64 hash;
  hash.update(image.data(), payload);
  S3D_REQUIRE(stored == hash.digest(),
              "analysis file checksum mismatch (corrupted file): " + path +
                  ": stored=" + hex64(stored) +
                  " computed=" + hex64(hash.digest()));
  ByteReader r(image, path);
  S3D_REQUIRE(r.get<std::uint64_t>() == kAnalysisMagic,
              "not an analysis file: " + path);
  AnalysisFile out;
  const auto np = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < np; ++i) {
    const std::string name = r.get_str();
    auto x = r.get_vec();
    auto y = r.get_vec();
    out.add_profile(name, std::move(x), std::move(y));
  }
  const auto ns = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < ns; ++i) {
    const std::string name = r.get_str();
    const int nx = r.get<std::int32_t>();
    const int ny = r.get<std::int32_t>();
    out.add_slice(name, nx, ny, r.get_vec());
  }
  return out;
}

std::vector<std::string> AnalysisFile::export_xy(
    const std::string& stem) const {
  std::vector<std::string> written;
  for (const auto& n : p_names_) {
    const auto& [x, y] = profiles_.at(n);
    const std::string path = stem + "_" + n + ".xy";
    std::ofstream f(path);
    for (std::size_t i = 0; i < x.size(); ++i)
      f << x[i] << ' ' << y[i] << '\n';
    written.push_back(path);
  }
  return written;
}

void write_minmax(
    const std::string& path,
    const std::map<std::string, std::pair<double, double>>& mm) {
  std::ofstream f(path);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  for (const auto& [var, v] : mm) f << var << ' ' << v.first << ' '
                                    << v.second << '\n';
}

std::map<std::string, std::pair<double, double>> collect_minmax(Solver& s) {
  const auto& prim = s.primitives();
  const Layout& l = s.layout();
  std::map<std::string, std::pair<double, double>> mm;
  auto scan = [&](const std::string& name, const GField& f) {
    double lo = 1e300, hi = -1e300;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          lo = std::min(lo, f(i, j, k));
          hi = std::max(hi, f(i, j, k));
        }
    mm[name] = {lo, hi};
  };
  scan("T", prim.T);
  scan("p", prim.p);
  scan("u", prim.u);
  scan("v", prim.v);
  const auto& mech = s.rhs().mech();
  for (const char* sp : {"OH", "HO2", "CO", "CH4", "H2"}) {
    const int idx = mech.find(sp);
    if (idx >= 0) scan(std::string("Y_") + sp, prim.Y[idx]);
  }
  return mm;
}

}  // namespace s3d::solver
