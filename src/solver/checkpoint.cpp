#include "solver/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace s3d::solver {

namespace {

constexpr std::uint64_t kRestartMagic = 0x53334452535452ull;  // "S3DRSTR"
constexpr std::uint64_t kAnalysisMagic = 0x533344414e4cull;   // "S3DANL"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  S3D_REQUIRE(is.good(), "truncated file");
  return v;
}
void put_str(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string get_str(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  S3D_REQUIRE(is.good(), "truncated string");
  return s;
}
void put_vec(std::ostream& os, const std::vector<double>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}
std::vector<double> get_vec(std::istream& is) {
  const auto n = get<std::uint64_t>(is);
  std::vector<double> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  S3D_REQUIRE(is.good(), "truncated array");
  return v;
}

}  // namespace

void write_restart(const std::string& path, const Solver& s) {
  const Layout& l = s.layout();
  std::ofstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  Fnv1a64 hash;
  put(f, kRestartMagic);
  put<std::int32_t>(f, l.nx);
  put<std::int32_t>(f, l.ny);
  put<std::int32_t>(f, l.nz);
  put<std::int32_t>(f, s.state().nv());
  put<double>(f, s.time());
  put<std::int64_t>(f, s.steps_taken());
  hash.update_value<std::int32_t>(l.nx);
  hash.update_value<std::int32_t>(l.ny);
  hash.update_value<std::int32_t>(l.nz);
  hash.update_value<std::int32_t>(s.state().nv());
  hash.update_value<double>(s.time());
  hash.update_value<std::int64_t>(s.steps_taken());
  // Interior of each conserved variable, x fastest.
  for (int v = 0; v < s.state().nv(); ++v) {
    const double* var = s.state().var(v);
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        f.write(reinterpret_cast<const char*>(var + row),
                static_cast<std::streamsize>(l.nx * sizeof(double)));
        hash.update(var + row, l.nx * sizeof(double));
      }
  }
  // Trailing integrity checksum over header fields + payload; read_restart
  // refuses corrupted or truncated files instead of silently loading them.
  put<std::uint64_t>(f, hash.digest());
  S3D_REQUIRE(f.good(), "write failed: " + path);
}

void read_restart(const std::string& path, Solver& s) {
  const Layout& l = s.layout();
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  S3D_REQUIRE(get<std::uint64_t>(f) == kRestartMagic,
              "not a restart file: " + path);
  Fnv1a64 hash;
  const int nx = get<std::int32_t>(f);
  const int ny = get<std::int32_t>(f);
  const int nz = get<std::int32_t>(f);
  const int nv = get<std::int32_t>(f);
  S3D_REQUIRE(nx == l.nx && ny == l.ny && nz == l.nz &&
                  nv == s.state().nv(),
              "restart grid/variable mismatch: " + path);
  const double t = get<double>(f);
  const auto steps = get<std::int64_t>(f);
  hash.update_value<std::int32_t>(nx);
  hash.update_value<std::int32_t>(ny);
  hash.update_value<std::int32_t>(nz);
  hash.update_value<std::int32_t>(nv);
  hash.update_value<double>(t);
  hash.update_value<std::int64_t>(steps);
  // Stage into scratch: the solver state is only touched once the
  // checksum has verified, so a corrupted file cannot half-load.
  std::vector<std::vector<double>> staged(
      static_cast<std::size_t>(nv),
      std::vector<double>(static_cast<std::size_t>(nx) * ny * nz));
  for (int v = 0; v < nv; ++v) {
    f.read(reinterpret_cast<char*>(staged[v].data()),
           static_cast<std::streamsize>(staged[v].size() * sizeof(double)));
    S3D_REQUIRE(f.good(), "truncated restart: " + path);
    hash.update(staged[v].data(), staged[v].size() * sizeof(double));
  }
  const auto stored = get<std::uint64_t>(f);
  S3D_REQUIRE(stored == hash.digest(),
              "restart checksum mismatch (corrupted file): " + path);
  for (int v = 0; v < nv; ++v) {
    double* var = s.state().var(v);
    const double* src = staged[v].data();
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        std::memcpy(var + row, src, nx * sizeof(double));
        src += nx;
      }
  }
  s.set_time(t, static_cast<int>(steps));
}

double restart_time(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  S3D_REQUIRE(get<std::uint64_t>(f) == kRestartMagic,
              "not a restart file: " + path);
  for (int i = 0; i < 4; ++i) get<std::int32_t>(f);
  return get<double>(f);
}

void AnalysisFile::add_profile(const std::string& name,
                               std::vector<double> x,
                               std::vector<double> y) {
  S3D_REQUIRE(x.size() == y.size(), "profile x/y size mismatch: " + name);
  if (!profiles_.count(name)) p_names_.push_back(name);
  profiles_[name] = {std::move(x), std::move(y)};
}

void AnalysisFile::add_slice(const std::string& name, int nx, int ny,
                             std::vector<double> data) {
  S3D_REQUIRE(static_cast<std::size_t>(nx) * ny == data.size(),
              "slice size mismatch: " + name);
  if (!slices_.count(name)) s_names_.push_back(name);
  slices_[name] = {nx, ny, std::move(data)};
}

const std::pair<std::vector<double>, std::vector<double>>&
AnalysisFile::profile(const std::string& name) const {
  auto it = profiles_.find(name);
  S3D_REQUIRE(it != profiles_.end(), "no such profile: " + name);
  return it->second;
}

std::tuple<int, int, const std::vector<double>*> AnalysisFile::slice(
    const std::string& name) const {
  auto it = slices_.find(name);
  S3D_REQUIRE(it != slices_.end(), "no such slice: " + name);
  return {std::get<0>(it->second), std::get<1>(it->second),
          &std::get<2>(it->second)};
}

void AnalysisFile::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  put(f, kAnalysisMagic);
  put<std::uint32_t>(f, static_cast<std::uint32_t>(p_names_.size()));
  for (const auto& n : p_names_) {
    put_str(f, n);
    put_vec(f, profiles_.at(n).first);
    put_vec(f, profiles_.at(n).second);
  }
  put<std::uint32_t>(f, static_cast<std::uint32_t>(s_names_.size()));
  for (const auto& n : s_names_) {
    const auto& [nx, ny, data] = slices_.at(n);
    put_str(f, n);
    put<std::int32_t>(f, nx);
    put<std::int32_t>(f, ny);
    put_vec(f, data);
  }
  S3D_REQUIRE(f.good(), "write failed: " + path);
}

AnalysisFile AnalysisFile::read(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  S3D_REQUIRE(get<std::uint64_t>(f) == kAnalysisMagic,
              "not an analysis file: " + path);
  AnalysisFile out;
  const auto np = get<std::uint32_t>(f);
  for (std::uint32_t i = 0; i < np; ++i) {
    const std::string name = get_str(f);
    auto x = get_vec(f);
    auto y = get_vec(f);
    out.add_profile(name, std::move(x), std::move(y));
  }
  const auto ns = get<std::uint32_t>(f);
  for (std::uint32_t i = 0; i < ns; ++i) {
    const std::string name = get_str(f);
    const int nx = get<std::int32_t>(f);
    const int ny = get<std::int32_t>(f);
    out.add_slice(name, nx, ny, get_vec(f));
  }
  return out;
}

std::vector<std::string> AnalysisFile::export_xy(
    const std::string& stem) const {
  std::vector<std::string> written;
  for (const auto& n : p_names_) {
    const auto& [x, y] = profiles_.at(n);
    const std::string path = stem + "_" + n + ".xy";
    std::ofstream f(path);
    for (std::size_t i = 0; i < x.size(); ++i)
      f << x[i] << ' ' << y[i] << '\n';
    written.push_back(path);
  }
  return written;
}

void write_minmax(
    const std::string& path,
    const std::map<std::string, std::pair<double, double>>& mm) {
  std::ofstream f(path);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  for (const auto& [var, v] : mm) f << var << ' ' << v.first << ' '
                                    << v.second << '\n';
}

std::map<std::string, std::pair<double, double>> collect_minmax(Solver& s) {
  const auto& prim = s.primitives();
  const Layout& l = s.layout();
  std::map<std::string, std::pair<double, double>> mm;
  auto scan = [&](const std::string& name, const GField& f) {
    double lo = 1e300, hi = -1e300;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          lo = std::min(lo, f(i, j, k));
          hi = std::max(hi, f(i, j, k));
        }
    mm[name] = {lo, hi};
  };
  scan("T", prim.T);
  scan("p", prim.p);
  scan("u", prim.u);
  scan("v", prim.v);
  const auto& mech = s.rhs().mech();
  for (const char* sp : {"OH", "HO2", "CO", "CH4", "H2"}) {
    const int idx = mech.find(sp);
    if (idx >= 0) scan(std::string("Y_") + sp, prim.Y[idx]);
  }
  return mm;
}

}  // namespace s3d::solver
