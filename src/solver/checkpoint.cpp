#include "solver/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"

namespace s3d::solver {

namespace {

namespace stdfs = std::filesystem;

constexpr std::uint64_t kRestartMagic = 0x53334452535452ull;  // "S3DRSTR"
constexpr std::uint64_t kAnalysisMagic = 0x533344414e4cull;   // "S3DANL"

/// Write `image` durably: stage to <path>.tmp, flush, then rename into
/// place. A crash (or injected fault) mid-write never leaves a partial
/// file at `path` — at worst a stale .tmp that the next write replaces.
void atomic_write_file(const std::string& path, const std::string& image) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    S3D_REQUIRE(f.good(), "cannot open for writing: " + tmp);
    f.write(image.data(), static_cast<std::streamsize>(image.size()));
    f.flush();
    S3D_REQUIRE(f.good(), "write failed: " + tmp);
  }
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  S3D_REQUIRE(!ec, "rename failed: " + tmp + " -> " + path + ": " +
                       ec.message());
}

/// Bounds-checked cursor over an in-memory file image; every read that
/// would run past the end throws a typed error naming the file.
class ByteReader {
 public:
  ByteReader(const std::string& image, const std::string& path)
      : data_(image), path_(path) {}

  template <typename T>
  T get() {
    require(sizeof(T), "value");
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_str() {
    const auto n = get<std::uint32_t>();
    require(n, "string");
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<double> get_vec() {
    const auto n = get<std::uint64_t>();
    S3D_REQUIRE(n <= remaining() / sizeof(double),
                "corrupt array length in " + path_);
    std::vector<double> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n, const char* what) {
    S3D_REQUIRE(n <= remaining(),
                std::string("truncated ") + what + " in " + path_);
  }
  const std::string& data_;
  std::string path_;
  std::size_t pos_ = 0;
};

std::string read_file_image(const std::string& path, const char* kind) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), std::string("cannot open ") + kind + ": " + path +
                            " (missing or unreadable)");
  std::ostringstream ss;
  ss << f.rdbuf();
  return std::move(ss).str();
}

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  S3D_REQUIRE(is.good(), "truncated file");
  return v;
}
void put_str(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void put_vec(std::ostream& os, const std::vector<double>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

}  // namespace

void write_restart(const std::string& path, const Solver& s) {
  const Layout& l = s.layout();
  std::ostringstream f(std::ios::binary);
  Fnv1a64 hash;
  put(f, kRestartMagic);
  put<std::int32_t>(f, l.nx);
  put<std::int32_t>(f, l.ny);
  put<std::int32_t>(f, l.nz);
  put<std::int32_t>(f, s.state().nv());
  put<double>(f, s.time());
  put<std::int64_t>(f, s.steps_taken());
  hash.update_value<std::int32_t>(l.nx);
  hash.update_value<std::int32_t>(l.ny);
  hash.update_value<std::int32_t>(l.nz);
  hash.update_value<std::int32_t>(s.state().nv());
  hash.update_value<double>(s.time());
  hash.update_value<std::int64_t>(s.steps_taken());
  // Interior of each conserved variable, x fastest, followed by the
  // primitive temperature field. T is genuine solver state, not a derived
  // quantity: prim_from_conserved warm-starts its Newton solve from the
  // previous T, so restarts replay bitwise only if T is restored too.
  const double* T_field = s.rhs().prim().T.data();
  for (int v = 0; v < s.state().nv() + 1; ++v) {
    const double* var =
        v < s.state().nv() ? s.state().var(v) : T_field;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        f.write(reinterpret_cast<const char*>(var + row),
                static_cast<std::streamsize>(l.nx * sizeof(double)));
        hash.update(var + row, l.nx * sizeof(double));
      }
  }
  // Trailing integrity checksum over header fields + payload; read_restart
  // refuses corrupted or truncated files instead of silently loading them.
  put<std::uint64_t>(f, hash.digest());

  std::string image = std::move(f).str();
  if (auto a = fault::probe("checkpoint.write")) {
    fault::apply(a, "checkpoint.write");  // Kind::fail throws before any I/O
    if (a.kind == fault::Kind::drop) return;
    // Kind::corrupt lands a full-length but bit-damaged image on disk —
    // exactly what read_restart's checksum and RestartSeries::read_latest
    // must catch.
    fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(image.data()),
                         image.size());
  }
  atomic_write_file(path, image);
}

void read_restart(const std::string& path, Solver& s) {
  const Layout& l = s.layout();
  std::string image = read_file_image(path, "restart file");
  if (auto a = fault::probe("restart.read")) {
    fault::apply(a, "restart.read");  // Kind::fail models a read error
    fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(image.data()),
                         image.size());
  }
  ByteReader r(image, path);
  S3D_REQUIRE(r.get<std::uint64_t>() == kRestartMagic,
              "not a restart file: " + path);
  Fnv1a64 hash;
  const int nx = r.get<std::int32_t>();
  const int ny = r.get<std::int32_t>();
  const int nz = r.get<std::int32_t>();
  const int nv = r.get<std::int32_t>();
  S3D_REQUIRE(nx == l.nx && ny == l.ny && nz == l.nz &&
                  nv == s.state().nv(),
              "restart grid/variable mismatch: " + path);
  const double t = r.get<double>();
  const auto steps = r.get<std::int64_t>();
  hash.update_value<std::int32_t>(nx);
  hash.update_value<std::int32_t>(ny);
  hash.update_value<std::int32_t>(nz);
  hash.update_value<std::int32_t>(nv);
  hash.update_value<double>(t);
  hash.update_value<std::int64_t>(steps);
  // Stage into scratch: the solver state is only touched once the
  // checksum has verified, so a corrupted file cannot half-load.
  // nv conserved variables plus the temperature field (see write_restart).
  const int nrec = nv + 1;
  const std::size_t pts = static_cast<std::size_t>(nx) * ny * nz;
  S3D_REQUIRE(r.remaining() >= static_cast<std::size_t>(nrec) * pts *
                                       sizeof(double) +
                                   sizeof(std::uint64_t),
              "truncated restart: " + path);
  std::vector<std::vector<double>> staged(static_cast<std::size_t>(nrec));
  for (int v = 0; v < nrec; ++v) {
    staged[v].resize(pts);
    std::memcpy(staged[v].data(), image.data() + r.pos() +
                                      static_cast<std::size_t>(v) * pts *
                                          sizeof(double),
                pts * sizeof(double));
    hash.update(staged[v].data(), pts * sizeof(double));
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, image.data() + r.pos() +
                           static_cast<std::size_t>(nrec) * pts *
                               sizeof(double),
              sizeof(stored));
  S3D_REQUIRE(stored == hash.digest(),
              "restart checksum mismatch (corrupted file): " + path +
                  ": stored=" + hex64(stored) +
                  " computed=" + hex64(hash.digest()));
  for (int v = 0; v < nrec; ++v) {
    double* var =
        v < nv ? s.state().var(v) : s.rhs().prim().T.data();
    const double* src = staged[v].data();
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        std::memcpy(var + row, src, nx * sizeof(double));
        src += nx;
      }
  }
  s.set_time(t, static_cast<int>(steps));
}

double restart_time(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(),
              "cannot open restart file: " + path + " (missing or unreadable)");
  S3D_REQUIRE(get<std::uint64_t>(f) == kRestartMagic,
              "not a restart file: " + path);
  for (int i = 0; i < 4; ++i) get<std::int32_t>(f);
  return get<double>(f);
}

RestartSeries::RestartSeries(std::string dir, std::string stem, int keep_last)
    : dir_(std::move(dir)), stem_(std::move(stem)), keep_last_(keep_last) {
  S3D_REQUIRE(keep_last_ >= 1, "RestartSeries: keep_last must be >= 1");
}

std::string RestartSeries::path(long gen) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".g%06ld.rst", gen);
  return dir_ + "/" + stem_ + buf;
}

std::string RestartSeries::manifest_path() const {
  return dir_ + "/" + stem_ + ".manifest";
}

std::vector<long> RestartSeries::generations() const {
  std::set<long, std::greater<long>> gens;
  {
    std::ifstream f(manifest_path());
    std::string line;
    while (std::getline(f, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ss(line);
      long g;
      if (ss >> g) gens.insert(g);
    }
  }
  // Directory scan as fallback: a lost manifest must not orphan good
  // restart files.
  std::error_code ec;
  const std::string prefix = stem_ + ".g";
  for (const auto& e : stdfs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() != prefix.size() + 10 || name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - 4, 4, ".rst") != 0)
      continue;
    const std::string digits = name.substr(prefix.size(), 6);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    gens.insert(std::stol(digits));
  }
  return {gens.begin(), gens.end()};
}

void RestartSeries::write(const Solver& s, long gen) {
  std::error_code ec;
  stdfs::create_directories(dir_, ec);
  write_restart(path(gen), s);
  // Refresh the manifest (newest first) and prune beyond keep_last.
  std::set<long, std::greater<long>> gens;
  for (long g : generations()) gens.insert(g);
  gens.insert(gen);
  std::ostringstream m;
  m << "# RestartSeries manifest for '" << stem_ << "' (newest first)\n";
  int kept = 0;
  std::vector<long> pruned;
  for (long g : gens) {
    if (kept < keep_last_) {
      m << g << "\n";
      ++kept;
    } else {
      pruned.push_back(g);
    }
  }
  atomic_write_file(manifest_path(), m.str());
  for (long g : pruned) stdfs::remove(path(g), ec);
}

bool RestartSeries::try_load(long gen, Solver& s, std::string* err) const {
  try {
    read_restart(path(gen), s);
    return true;
  } catch (const Error& e) {
    if (err) *err = e.what();
    return false;
  }
}

long RestartSeries::read_latest(Solver& s,
                                std::vector<std::string>* skipped) const {
  for (long gen : generations()) {
    std::string err;
    if (try_load(gen, s, &err)) return gen;
    if (skipped)
      skipped->push_back("gen " + std::to_string(gen) + ": " + err);
  }
  return -1;
}

void AnalysisFile::add_profile(const std::string& name,
                               std::vector<double> x,
                               std::vector<double> y) {
  S3D_REQUIRE(x.size() == y.size(), "profile x/y size mismatch: " + name);
  if (!profiles_.count(name)) p_names_.push_back(name);
  profiles_[name] = {std::move(x), std::move(y)};
}

void AnalysisFile::add_slice(const std::string& name, int nx, int ny,
                             std::vector<double> data) {
  S3D_REQUIRE(static_cast<std::size_t>(nx) * ny == data.size(),
              "slice size mismatch: " + name);
  if (!slices_.count(name)) s_names_.push_back(name);
  slices_[name] = {nx, ny, std::move(data)};
}

const std::pair<std::vector<double>, std::vector<double>>&
AnalysisFile::profile(const std::string& name) const {
  auto it = profiles_.find(name);
  S3D_REQUIRE(it != profiles_.end(), "no such profile: " + name);
  return it->second;
}

std::tuple<int, int, const std::vector<double>*> AnalysisFile::slice(
    const std::string& name) const {
  auto it = slices_.find(name);
  S3D_REQUIRE(it != slices_.end(), "no such slice: " + name);
  return {std::get<0>(it->second), std::get<1>(it->second),
          &std::get<2>(it->second)};
}

void AnalysisFile::write(const std::string& path) const {
  std::ostringstream f(std::ios::binary);
  put(f, kAnalysisMagic);
  put<std::uint32_t>(f, static_cast<std::uint32_t>(p_names_.size()));
  for (const auto& n : p_names_) {
    put_str(f, n);
    put_vec(f, profiles_.at(n).first);
    put_vec(f, profiles_.at(n).second);
  }
  put<std::uint32_t>(f, static_cast<std::uint32_t>(s_names_.size()));
  for (const auto& n : s_names_) {
    const auto& [nx, ny, data] = slices_.at(n);
    put_str(f, n);
    put<std::int32_t>(f, nx);
    put<std::int32_t>(f, ny);
    put_vec(f, data);
  }
  // Trailing integrity checksum over the whole payload, restart-style:
  // read() rejects bit flips instead of returning silently wrong plots.
  std::string image = std::move(f).str();
  Fnv1a64 hash;
  hash.update(image.data(), image.size());
  std::uint64_t digest = hash.digest();
  image.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  atomic_write_file(path, image);
}

AnalysisFile AnalysisFile::read(const std::string& path) {
  const std::string image = read_file_image(path, "analysis file");
  S3D_REQUIRE(image.size() >= sizeof(std::uint64_t) * 2,
              "truncated analysis file: " + path);
  const std::size_t payload = image.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, image.data() + payload, sizeof(stored));
  Fnv1a64 hash;
  hash.update(image.data(), payload);
  S3D_REQUIRE(stored == hash.digest(),
              "analysis file checksum mismatch (corrupted file): " + path +
                  ": stored=" + hex64(stored) +
                  " computed=" + hex64(hash.digest()));
  ByteReader r(image, path);
  S3D_REQUIRE(r.get<std::uint64_t>() == kAnalysisMagic,
              "not an analysis file: " + path);
  AnalysisFile out;
  const auto np = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < np; ++i) {
    const std::string name = r.get_str();
    auto x = r.get_vec();
    auto y = r.get_vec();
    out.add_profile(name, std::move(x), std::move(y));
  }
  const auto ns = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < ns; ++i) {
    const std::string name = r.get_str();
    const int nx = r.get<std::int32_t>();
    const int ny = r.get<std::int32_t>();
    out.add_slice(name, nx, ny, r.get_vec());
  }
  return out;
}

std::vector<std::string> AnalysisFile::export_xy(
    const std::string& stem) const {
  std::vector<std::string> written;
  for (const auto& n : p_names_) {
    const auto& [x, y] = profiles_.at(n);
    const std::string path = stem + "_" + n + ".xy";
    std::ofstream f(path);
    for (std::size_t i = 0; i < x.size(); ++i)
      f << x[i] << ' ' << y[i] << '\n';
    written.push_back(path);
  }
  return written;
}

void write_minmax(
    const std::string& path,
    const std::map<std::string, std::pair<double, double>>& mm) {
  std::ofstream f(path);
  S3D_REQUIRE(f.good(), "cannot open " + path);
  for (const auto& [var, v] : mm) f << var << ' ' << v.first << ' '
                                    << v.second << '\n';
}

std::map<std::string, std::pair<double, double>> collect_minmax(Solver& s) {
  const auto& prim = s.primitives();
  const Layout& l = s.layout();
  std::map<std::string, std::pair<double, double>> mm;
  auto scan = [&](const std::string& name, const GField& f) {
    double lo = 1e300, hi = -1e300;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          lo = std::min(lo, f(i, j, k));
          hi = std::max(hi, f(i, j, k));
        }
    mm[name] = {lo, hi};
  };
  scan("T", prim.T);
  scan("p", prim.p);
  scan("u", prim.u);
  scan("v", prim.v);
  const auto& mech = s.rhs().mech();
  for (const char* sp : {"OH", "HO2", "CO", "CH4", "H2"}) {
    const int idx = mech.find(sp);
    if (idx >= 0) scan(std::string("Y_") + sp, prim.Y[idx]);
  }
  return mm;
}

}  // namespace s3d::solver
