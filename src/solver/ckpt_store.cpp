#include "solver/ckpt_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "iosim/simfs.hpp"
#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

namespace {

namespace stdfs = std::filesystem;

void sleep_s(double seconds) {
  if (seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Bounds-checked cursor over an in-memory file image (restart-style
/// typed errors naming the file).
class ByteReader {
 public:
  ByteReader(const std::string& image, const std::string& path)
      : data_(image), path_(path) {}

  template <typename T>
  T get() {
    S3D_REQUIRE(sizeof(T) <= remaining(), "truncated value in " + path_);
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void raw(void* dst, std::size_t n) {
    S3D_REQUIRE(n <= remaining(), "truncated payload in " + path_);
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  const std::string& data_;
  std::string path_;
  std::size_t pos_ = 0;
};

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::size_t block_len(std::uint64_t total, std::uint32_t idx, int block) {
  const std::uint64_t lo = static_cast<std::uint64_t>(idx) * block;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(block), total - lo));
}

}  // namespace

// ---------------------------------------------------------------------------
// io helpers (shared with checkpoint.cpp)

void atomic_write_file(const std::string& path, const std::string& image) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    S3D_REQUIRE(f.good(), "cannot open for writing: " + tmp);
    f.write(image.data(), static_cast<std::streamsize>(image.size()));
    f.flush();
    S3D_REQUIRE(f.good(), "write failed: " + tmp);
  }
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  S3D_REQUIRE(!ec,
              "rename failed: " + tmp + " -> " + path + ": " + ec.message());
}

std::string read_file_image(const std::string& path, const char* kind) {
  std::ifstream f(path, std::ios::binary);
  S3D_REQUIRE(f.good(), std::string("cannot open ") + kind + ": " + path +
                            " (missing or unreadable)");
  std::ostringstream ss;
  ss << f.rdbuf();
  return std::move(ss).str();
}

// ---------------------------------------------------------------------------
// image gather/scatter

CkptImage image_from_solver(const Solver& s) {
  const Layout& l = s.layout();
  CkptImage img;
  img.nx = l.nx;
  img.ny = l.ny;
  img.nz = l.nz;
  img.nv = s.state().nv();
  img.t = s.time();
  img.steps = s.steps_taken();
  const std::size_t pts = static_cast<std::size_t>(l.nx) * l.ny * l.nz;
  img.data.resize(static_cast<std::size_t>(img.nv + 1) * pts);
  // Interior of each conserved variable, x fastest, then the primitive
  // temperature field: T is genuine solver state (prim_from_conserved
  // warm-starts its Newton solve from it), so restores replay bitwise
  // only if T travels with the image.
  const double* T_field = s.rhs().prim().T.data();
  double* dst = img.data.data();
  for (int v = 0; v < img.nv + 1; ++v) {
    const double* var = v < img.nv ? s.state().var(v) : T_field;
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        std::memcpy(dst, var + row, static_cast<std::size_t>(l.nx) *
                                        sizeof(double));
        dst += l.nx;
      }
  }
  return img;
}

void commit_image(const CkptImage& img, Solver& s) {
  const Layout& l = s.layout();
  S3D_REQUIRE(img.nx == l.nx && img.ny == l.ny && img.nz == l.nz &&
                  img.nv == s.state().nv(),
              "restart grid/variable mismatch: image does not fit this "
              "solver");
  const std::size_t pts = static_cast<std::size_t>(l.nx) * l.ny * l.nz;
  S3D_REQUIRE(img.data.size() ==
                  static_cast<std::size_t>(img.nv + 1) * pts,
              "checkpoint image payload size mismatch");
  const double* src = img.data.data();
  for (int v = 0; v < img.nv + 1; ++v) {
    double* var = v < img.nv ? s.state().var(v) : s.rhs().prim().T.data();
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j) {
        const std::size_t row = l.at(0, j, k);
        std::memcpy(var + row, src, static_cast<std::size_t>(l.nx) *
                                        sizeof(double));
        src += l.nx;
      }
  }
  s.set_time(img.t, static_cast<int>(img.steps));  // invalidates cached dt
}

// ---------------------------------------------------------------------------
// base (restart-file) serialization — byte-identical to PR 2

std::string serialize_base(const CkptImage& img) {
  std::ostringstream f(std::ios::binary);
  Fnv1a64 hash;
  put(f, kRestartMagic);
  put<std::int32_t>(f, img.nx);
  put<std::int32_t>(f, img.ny);
  put<std::int32_t>(f, img.nz);
  put<std::int32_t>(f, img.nv);
  put<double>(f, img.t);
  put<std::int64_t>(f, img.steps);
  hash.update_value<std::int32_t>(img.nx);
  hash.update_value<std::int32_t>(img.ny);
  hash.update_value<std::int32_t>(img.nz);
  hash.update_value<std::int32_t>(img.nv);
  hash.update_value<double>(img.t);
  hash.update_value<std::int64_t>(img.steps);
  f.write(reinterpret_cast<const char*>(img.data.data()),
          static_cast<std::streamsize>(img.data.size() * sizeof(double)));
  hash.update(img.data.data(), img.data.size() * sizeof(double));
  // Trailing integrity checksum over header fields + payload; the reader
  // refuses corrupted or truncated files instead of silently loading them.
  put<std::uint64_t>(f, hash.digest());
  return std::move(f).str();
}

CkptImage parse_base(const std::string& image, const std::string& path,
                     const int* expect) {
  ByteReader r(image, path);
  S3D_REQUIRE(r.remaining() >= sizeof(std::uint64_t) &&
                  [&] {
                    std::uint64_t m = 0;
                    std::memcpy(&m, image.data(), sizeof(m));
                    return m == kRestartMagic;
                  }(),
              "not a restart file: " + path);
  r.get<std::uint64_t>();  // magic, checked above
  CkptImage img;
  Fnv1a64 hash;
  img.nx = r.get<std::int32_t>();
  img.ny = r.get<std::int32_t>();
  img.nz = r.get<std::int32_t>();
  img.nv = r.get<std::int32_t>();
  if (expect)
    S3D_REQUIRE(img.nx == expect[0] && img.ny == expect[1] &&
                    img.nz == expect[2] && img.nv == expect[3],
                "restart grid/variable mismatch: " + path);
  img.t = r.get<double>();
  img.steps = r.get<std::int64_t>();
  hash.update_value<std::int32_t>(img.nx);
  hash.update_value<std::int32_t>(img.ny);
  hash.update_value<std::int32_t>(img.nz);
  hash.update_value<std::int32_t>(img.nv);
  hash.update_value<double>(img.t);
  hash.update_value<std::int64_t>(img.steps);
  const std::size_t pts = static_cast<std::size_t>(img.nx) * img.ny * img.nz;
  const std::size_t nrec = static_cast<std::size_t>(img.nv) + 1;
  S3D_REQUIRE(img.nx >= 1 && img.ny >= 1 && img.nz >= 1 && img.nv >= 1 &&
                  r.remaining() >= nrec * pts * sizeof(double) +
                                       sizeof(std::uint64_t),
              "truncated restart: " + path);
  img.data.resize(nrec * pts);
  r.raw(img.data.data(), img.data.size() * sizeof(double));
  hash.update(img.data.data(), img.data.size() * sizeof(double));
  const auto stored = r.get<std::uint64_t>();
  S3D_REQUIRE(stored == hash.digest(),
              "restart checksum mismatch (corrupted file): " + path +
                  ": stored=" + hex64(stored) +
                  " computed=" + hex64(hash.digest()));
  return img;
}

// ---------------------------------------------------------------------------
// delta codec

CkptDelta diff_image(const std::vector<double>& prev,
                     const std::vector<double>& next, int block) {
  S3D_REQUIRE(prev.size() == next.size(),
              "delta diff: image sizes differ");
  S3D_REQUIRE(block >= 1, "delta diff: block granule must be >= 1");
  CkptDelta d;
  d.total = next.size();
  const std::uint64_t nblocks =
      (d.total + static_cast<std::uint64_t>(block) - 1) / block;
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * block;
    const std::size_t len =
        block_len(d.total, static_cast<std::uint32_t>(b), block);
    if (std::memcmp(prev.data() + lo, next.data() + lo,
                    len * sizeof(double)) != 0) {
      d.blocks.push_back(static_cast<std::uint32_t>(b));
      d.payload.insert(d.payload.end(), next.begin() + lo,
                       next.begin() + lo + len);
    }
  }
  return d;
}

void apply_delta(std::vector<double>& data, const CkptDelta& d, int block) {
  S3D_REQUIRE(data.size() == d.total,
              "delta replay: image size does not match the delta record");
  std::size_t off = 0;
  for (const std::uint32_t b : d.blocks) {
    const std::size_t lo = static_cast<std::size_t>(b) * block;
    const std::size_t len = block_len(d.total, b, block);
    S3D_REQUIRE(lo + len <= data.size() && off + len <= d.payload.size(),
                "delta replay: block out of range");
    std::memcpy(data.data() + lo, d.payload.data() + off,
                len * sizeof(double));
    off += len;
  }
}

namespace {

/// Delta file layout: magic, dims, t, steps, gen, prev, block, total,
/// ndirty, then {idx u32, block FNV u64, payload} per dirty block, and a
/// trailing whole-file FNV (over everything before it) so any single bit
/// flip is rejected before the record is interpreted.
std::string serialize_delta(const CkptImage& img, const CkptDelta& d,
                            long gen, long prev, int block) {
  std::ostringstream f(std::ios::binary);
  put(f, kDeltaMagic);
  put<std::int32_t>(f, img.nx);
  put<std::int32_t>(f, img.ny);
  put<std::int32_t>(f, img.nz);
  put<std::int32_t>(f, img.nv);
  put<double>(f, img.t);
  put<std::int64_t>(f, img.steps);
  put<std::int64_t>(f, static_cast<std::int64_t>(gen));
  put<std::int64_t>(f, static_cast<std::int64_t>(prev));
  put<std::int32_t>(f, block);
  put<std::uint64_t>(f, d.total);
  put<std::uint64_t>(f, static_cast<std::uint64_t>(d.blocks.size()));
  std::size_t off = 0;
  for (const std::uint32_t b : d.blocks) {
    const std::size_t len = block_len(d.total, b, block);
    put<std::uint32_t>(f, b);
    put<std::uint64_t>(f, fnv1a64(d.payload.data() + off,
                                  len * sizeof(double)));
    f.write(reinterpret_cast<const char*>(d.payload.data() + off),
            static_cast<std::streamsize>(len * sizeof(double)));
    off += len;
  }
  std::string image = std::move(f).str();
  const std::uint64_t digest = fnv1a64(image.data(), image.size());
  image.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  return image;
}

struct ParsedDelta {
  CkptImage header;  ///< dims + t + steps (no payload)
  CkptDelta delta;
  long gen = -1;
  long prev = -1;
  int block = 0;
};

ParsedDelta parse_delta(const std::string& image, const std::string& path,
                        const int* expect) {
  S3D_REQUIRE(image.size() >= 2 * sizeof(std::uint64_t),
              "truncated delta checkpoint: " + path);
  // Whole-file checksum first: any flip anywhere is a checksum mismatch,
  // never a confusing parse error on damaged lengths.
  const std::size_t payload = image.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, image.data() + payload, sizeof(stored));
  const std::uint64_t computed = fnv1a64(image.data(), payload);
  S3D_REQUIRE(stored == computed,
              "delta checksum mismatch (corrupted file): " + path +
                  ": stored=" + hex64(stored) +
                  " computed=" + hex64(computed));
  ByteReader r(image, path);
  S3D_REQUIRE(r.get<std::uint64_t>() == kDeltaMagic,
              "not a delta checkpoint: " + path);
  ParsedDelta p;
  p.header.nx = r.get<std::int32_t>();
  p.header.ny = r.get<std::int32_t>();
  p.header.nz = r.get<std::int32_t>();
  p.header.nv = r.get<std::int32_t>();
  if (expect)
    S3D_REQUIRE(p.header.nx == expect[0] && p.header.ny == expect[1] &&
                    p.header.nz == expect[2] && p.header.nv == expect[3],
                "restart grid/variable mismatch: " + path);
  p.header.t = r.get<double>();
  p.header.steps = r.get<std::int64_t>();
  p.gen = static_cast<long>(r.get<std::int64_t>());
  p.prev = static_cast<long>(r.get<std::int64_t>());
  p.block = r.get<std::int32_t>();
  S3D_REQUIRE(p.block >= 1, "corrupt delta block granule in " + path);
  p.delta.total = r.get<std::uint64_t>();
  const auto ndirty = r.get<std::uint64_t>();
  p.delta.blocks.reserve(static_cast<std::size_t>(ndirty));
  for (std::uint64_t i = 0; i < ndirty; ++i) {
    const auto b = r.get<std::uint32_t>();
    const auto bsum = r.get<std::uint64_t>();
    const std::size_t len = block_len(p.delta.total, b, p.block);
    S3D_REQUIRE(static_cast<std::uint64_t>(b) * p.block < p.delta.total,
                "delta block out of range in " + path);
    const std::size_t off = p.delta.payload.size();
    p.delta.payload.resize(off + len);
    r.raw(p.delta.payload.data() + off, len * sizeof(double));
    S3D_REQUIRE(fnv1a64(p.delta.payload.data() + off,
                        len * sizeof(double)) == bsum,
                "delta block checksum mismatch (corrupted file): " + path +
                    ": block " + std::to_string(b));
    p.delta.blocks.push_back(b);
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// DeltaRing

DeltaRing::DeltaRing(int depth, const CkptOptions& opt)
    : depth_(depth), opt_(opt) {
  S3D_REQUIRE(depth >= 1, "snapshot ring depth must be >= 1");
  S3D_REQUIRE(opt_.block >= 1, "snapshot ring delta block must be >= 1");
}

void DeltaRing::push(CkptImage img) {
  if (!ring_.empty())
    S3D_REQUIRE(img.data.size() == head_.data.size(),
                "snapshot does not match the solver's state size");
  Entry e;
  e.t = img.t;
  e.steps = img.steps;
  if (ring_.empty() || !opt_.delta) {
    e.is_base = true;
    e.base = img.data;
  } else {
    e.is_base = false;
    e.delta = diff_image(head_.data, img.data, opt_.block);
  }
  ring_.push_back(std::move(e));
  head_ = std::move(img);
  if (static_cast<int>(ring_.size()) > depth_) {
    // Evict the oldest entry; fold its successor into the base first so
    // the front of the ring stays a full image.
    if (ring_.size() > 1 && !ring_[1].is_base) {
      apply_delta(ring_[0].base, ring_[1].delta, opt_.block);
      ring_[1].base = std::move(ring_[0].base);
      ring_[1].is_base = true;
      ring_[1].delta = CkptDelta{};
    }
    ring_.pop_front();
  }
}

const CkptImage& DeltaRing::newest() const {
  S3D_REQUIRE(!ring_.empty(), "snapshot ring is empty");
  return head_;
}

void DeltaRing::pop_newest() {
  S3D_REQUIRE(!ring_.empty(), "snapshot ring is empty");
  ring_.pop_back();
  if (!ring_.empty()) rebuild_head();
}

void DeltaRing::rebuild_head() {
  std::vector<double> data = ring_.front().base;
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    if (ring_[i].is_base)
      data = ring_[i].base;
    else
      apply_delta(data, ring_[i].delta, opt_.block);
  }
  head_.t = ring_.back().t;
  head_.steps = ring_.back().steps;
  head_.data = std::move(data);
}

long DeltaRing::newest_step() const {
  return ring_.empty() ? -1 : static_cast<long>(ring_.back().steps);
}

std::size_t DeltaRing::bytes() const {
  std::size_t b = ring_.empty() ? 0 : head_.data.size() * sizeof(double);
  for (const auto& e : ring_)
    b += e.base.size() * sizeof(double) +
         e.delta.payload.size() * sizeof(double) +
         e.delta.blocks.size() * sizeof(std::uint32_t);
  return b;
}

// ---------------------------------------------------------------------------
// CkptStore

CkptStore::CkptStore(std::string dir, std::string stem, int keep_last,
                     CkptOptions opt)
    : dir_(std::move(dir)),
      stem_(std::move(stem)),
      keep_last_(keep_last),
      opt_(opt),
      owner_rank_(fault::current_rank()) {
  S3D_REQUIRE(keep_last_ >= 1, "RestartSeries: keep_last must be >= 1");
  S3D_REQUIRE(opt_.base_every >= 1 && opt_.block >= 1 &&
                  opt_.queue_depth >= 1 && opt_.persist_retries >= 0,
              "RestartSeries: malformed checkpoint options");
  std::lock_guard<std::mutex> lk(mu_);
  load_table();
}

CkptStore::~CkptStore() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  if (worker_.joinable()) worker_.join();  // drains the remaining queue
}

std::string CkptStore::path(long gen) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".g%06ld.rst", gen);
  return dir_ + "/" + stem_ + buf;
}

std::string CkptStore::manifest_path() const {
  return dir_ + "/" + stem_ + ".manifest";
}

std::optional<CkptGen> CkptStore::classify_file(long gen) const {
  std::ifstream f(path(gen), std::ios::binary);
  if (!f.good()) return std::nullopt;
  std::uint64_t magic = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!f.good()) return std::nullopt;
  CkptGen e;
  e.gen = gen;
  e.persisted = true;
  if (magic == kRestartMagic) return e;
  if (magic != kDeltaMagic) return std::nullopt;
  // Delta header peek: skip dims/t/steps/gen, read the prev link.
  f.seekg(static_cast<std::streamoff>(8 + 16 + 8 + 8 + 8));
  std::int64_t prev = -1;
  f.read(reinterpret_cast<char*>(&prev), sizeof(prev));
  if (!f.good()) return std::nullopt;
  e.is_base = false;
  e.prev = static_cast<long>(prev);
  const auto pit = table_.find(e.prev);
  e.chain = pit != table_.end() ? pit->second.chain + 1 : opt_.base_every;
  return e;
}

void CkptStore::load_table() {
  std::ifstream f(manifest_path());
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long gen = -1;
    if (!(ss >> gen)) continue;
    char kind = 0;
    long prev = -1;
    int chain = 0, valid = 1;
    if (ss >> kind >> prev >> chain >> valid) {
      CkptGen e;
      e.gen = gen;
      e.is_base = kind != 'd';
      e.prev = prev;
      e.chain = chain;
      e.valid = valid != 0;
      e.persisted = true;
      table_[gen] = e;
    } else if (auto e = classify_file(gen)) {
      // PR-2 manifest (generation numbers only): classify by header peek.
      table_[gen] = *e;
    }
  }
  sync_scan_locked();
}

void CkptStore::sync_scan_locked() {
  // Directory scan as fallback: a lost manifest must not orphan good
  // generation files.
  std::error_code ec;
  const std::string prefix = stem_ + ".g";
  std::vector<long> found;
  for (const auto& e : stdfs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() != prefix.size() + 10 ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - 4, 4, ".rst") != 0)
      continue;
    const std::string digits = name.substr(prefix.size(), 6);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    found.push_back(std::stol(digits));
  }
  std::sort(found.begin(), found.end());  // classify parents before children
  for (const long g : found)
    if (!table_.count(g))
      if (auto e = classify_file(g)) table_[g] = *e;
}

void CkptStore::write_manifest_locked() const {
  std::ostringstream m;
  m << "# CkptStore manifest for '" << stem_ << "' (newest first)\n";
  m << "# gen kind(b=base,d=delta) prev chain valid\n";
  for (auto it = table_.rbegin(); it != table_.rend(); ++it) {
    const CkptGen& e = it->second;
    m << e.gen << ' ' << (e.is_base ? 'b' : 'd') << ' ' << e.prev << ' '
      << e.chain << ' ' << (e.valid ? 1 : 0) << "\n";
  }
  atomic_write_file(manifest_path(), m.str());
}

void CkptStore::invalidate_cascade_locked(long gen) const {
  auto it = table_.find(gen);
  if (it == table_.end()) return;
  if (it->second.valid) {
    it->second.valid = false;
    ++stats_.invalidated;
  }
  // One ascending sweep kills every later delta whose chain passes
  // through an invalid link (prev < gen always, so one pass suffices).
  for (auto jt = table_.upper_bound(gen); jt != table_.end(); ++jt) {
    CkptGen& e = jt->second;
    if (e.is_base || !e.valid) continue;
    const auto pit = table_.find(e.prev);
    if (pit == table_.end() || !pit->second.valid) {
      e.valid = false;
      ++stats_.invalidated;
    }
  }
}

long CkptStore::newest_valid_locked() const {
  for (auto it = table_.rbegin(); it != table_.rend(); ++it)
    if (it->second.valid) return it->first;
  return -1;
}

bool CkptStore::chain_for_locked(long gen, std::vector<CkptGen>* chain,
                                 std::string* err) const {
  long cur = gen;
  for (int hop = 0; hop < 1 << 20; ++hop) {
    auto it = table_.find(cur);
    if (it == table_.end()) {
      if (auto e = classify_file(cur)) {
        it = table_.emplace(cur, *e).first;
      } else {
        if (err)
          *err = "cannot open restart file: " + path(cur) +
                 " (missing or unreadable)";
        return false;
      }
    }
    if (!it->second.valid) {
      if (err)
        *err = "generation " + std::to_string(cur) +
               " marked invalid in the generation table";
      return false;
    }
    chain->push_back(it->second);
    if (it->second.is_base) {
      std::reverse(chain->begin(), chain->end());  // base first
      return true;
    }
    cur = it->second.prev;
    if (cur < 0) break;
  }
  if (err)
    *err = "generation " + std::to_string(gen) +
           " has a broken delta chain (no base)";
  return false;
}

void CkptStore::append(const Solver& s, long gen) {
  CkptImage img = image_from_solver(s);
  const std::uint64_t logical =
      static_cast<std::uint64_t>(img.data.size()) * sizeof(double);

  bool base = true;
  long prev = -1;
  int chain = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Rewriting at or below an existing generation abandons that
    // timeline (recovery rewound the run); its entries are dead.
    table_.erase(table_.lower_bound(gen), table_.end());
    if (opt_.delta && !force_base_ && shadow_ && shadow_gen_ >= 0 &&
        shadow_gen_ < gen && shadow_->data.size() == img.data.size()) {
      const auto pit = table_.find(shadow_gen_);
      if (pit != table_.end() && pit->second.valid &&
          pit->second.chain + 1 < opt_.base_every) {
        base = false;
        prev = shadow_gen_;
        chain = pit->second.chain + 1;
      }
    }
  }

  std::string bytes;
  if (!base) {
    const CkptDelta d = diff_image(shadow_->data, img.data, opt_.block);
    bytes = serialize_delta(img, d, gen, prev, opt_.block);
    if (auto a = fault::probe("checkpoint.delta")) {
      fault::apply(a, "checkpoint.delta");  // Kind::fail throws pre-commit
      fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(bytes.data()),
                           bytes.size());
    }
  } else {
    bytes = serialize_base(img);
  }

  bool dropped = false;
  if (auto a = fault::probe("checkpoint.write")) {
    fault::apply(a, "checkpoint.write");  // Kind::fail throws before any I/O
    if (a.kind == fault::Kind::drop) {
      dropped = true;
    } else {
      // Kind::corrupt lands a full-length but bit-damaged image on disk —
      // exactly what the checksums and restore_latest must catch.
      fault::corrupt_bytes(a, reinterpret_cast<std::uint8_t*>(bytes.data()),
                           bytes.size());
    }
  }

  std::error_code ec;
  stdfs::create_directories(dir_, ec);

  {
    std::lock_guard<std::mutex> lk(mu_);
    CkptGen e;
    e.gen = gen;
    e.is_base = base;
    e.prev = prev;
    e.chain = chain;
    e.bytes = bytes.size();
    table_[gen] = e;
    shadow_ = std::move(img);
    shadow_gen_ = gen;
    if (base) {
      force_base_ = false;
      ++stats_.bases;
    } else {
      ++stats_.deltas;
    }
    stats_.logical_bytes += logical;
    stats_.written_bytes += bytes.size();
    if (owner_rank_ == 0) {
      trace::counter_add(base ? "ckpt.base_gens" : "ckpt.delta_gens", 1.0);
      trace::counter_add("ckpt.logical_bytes",
                         static_cast<double>(logical));
      trace::gauge_set("ckpt.delta_ratio", stats_.dedup_ratio());
    }
  }

  Task task;
  task.gen = gen;
  task.dropped = dropped;
  if (!dropped) task.image = std::move(bytes);
  if (opt_.write_behind)
    enqueue(std::move(task));
  else
    persist_one(std::move(task));
}

void CkptStore::enqueue(Task task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!worker_.joinable())
      worker_ = std::thread(&CkptStore::worker_loop, this, owner_rank_);
    cv_space_.wait(lk, [&] {
      return static_cast<int>(queue_.size()) < opt_.queue_depth || stop_;
    });
    queue_.push_back(std::move(task));
    ++stats_.enqueued;
    stats_.queue_hwm =
        std::max(stats_.queue_hwm, static_cast<int>(queue_.size()));
    if (owner_rank_ == 0)
      trace::gauge_set("ckpt.queue_hwm",
                       static_cast<double>(stats_.queue_hwm));
  }
  cv_work_.notify_one();
}

void CkptStore::worker_loop(int owner_rank) {
  // The persister acts on the owning rank's behalf: fault call counters
  // and trace events must attribute to it, not to a phantom rank 0.
  fault::set_rank(owner_rank);
  trace::set_rank(owner_rank);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      working_ = true;
    }
    cv_space_.notify_one();
    persist_one(std::move(task));
    {
      std::lock_guard<std::mutex> lk(mu_);
      working_ = false;
    }
    cv_idle_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    working_ = false;
  }
  cv_idle_.notify_all();
}

void CkptStore::persist_one(Task task) {
  std::exception_ptr failure;
  double ms = 0.0;
  if (!task.dropped) {
    const iosim::RetryPolicy retry{opt_.persist_retries,
                                   opt_.backoff_ms * 1e-3,
                                   opt_.backoff_cap_ms * 1e-3};
    const auto t0 = std::chrono::steady_clock::now();
    for (int attempt = 0;; ++attempt) {
      if (auto a = fault::probe("checkpoint.persist")) {
        if (a.kind == fault::Kind::fail) {
          if (attempt >= retry.retries) {
            try {
              fault::apply(a, "checkpoint.persist");  // throws InjectedFault
            } catch (...) {
              failure = std::current_exception();
            }
            break;
          }
          sleep_s(retry.delay(attempt));
          continue;
        }
        if (a.kind == fault::Kind::delay) {
          fault::apply(a, "checkpoint.persist");  // sleeps
        } else if (a.kind == fault::Kind::drop) {
          task.dropped = true;
        } else {
          // Kind::corrupt: the damage happens on the wire — the file
          // lands full-length but bit-flipped, for the checksums to find.
          fault::corrupt_bytes(
              a, reinterpret_cast<std::uint8_t*>(task.image.data()),
              task.image.size());
        }
      }
      if (task.dropped) break;
      try {
        atomic_write_file(path(task.gen), task.image);
        break;
      } catch (const Error&) {
        if (attempt >= retry.retries) {
          failure = std::current_exception();
          break;
        }
        sleep_s(retry.delay(attempt));
      }
    }
    ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.persist_ms_total += ms;
    const auto it = table_.find(task.gen);
    if (it != table_.end()) {
      if (!failure) {
        it->second.persisted = !task.dropped;
        ++stats_.persisted;
      } else {
        // Crash-consistency contract: an exhausted persist marks only
        // this generation (and deltas chained through it) invalid; the
        // previous generation stays restorable, and the next append
        // self-heals by forcing a fresh base.
        invalidate_cascade_locked(task.gen);
        ++stats_.persist_failures;
        force_base_ = true;
      }
    }
    write_manifest_locked();
    if (owner_rank_ == 0) {
      if (!failure) {
        trace::counter_add("ckpt.bytes_written",
                           static_cast<double>(task.image.size()));
        trace::counter_add("ckpt.persist_ms", ms);
      } else {
        trace::counter_add("ckpt.persist_failures", 1.0);
      }
    }
  }

  prune_fold();

  if (failure && !opt_.write_behind) std::rethrow_exception(failure);
}

void CkptStore::prune_fold() {
  std::vector<long> victims;
  long fold_gen = -1;
  std::vector<CkptGen> fold_chain;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (static_cast<long>(table_.size()) <= keep_last_) return;
    std::vector<long> gens;
    for (auto it = table_.rbegin(); it != table_.rend(); ++it)
      gens.push_back(it->first);
    const long oldest_kept = gens[static_cast<std::size_t>(keep_last_) - 1];
    for (std::size_t i = static_cast<std::size_t>(keep_last_);
         i < gens.size(); ++i)
      victims.push_back(gens[i]);
    const auto it = table_.find(oldest_kept);
    if (it != table_.end() && !it->second.is_base && it->second.valid) {
      // The oldest retained generation is a delta whose chain crosses
      // the victims: fold it into a base before their files vanish.
      std::string err;
      if (chain_for_locked(oldest_kept, &fold_chain, &err))
        fold_gen = oldest_kept;
      else
        invalidate_cascade_locked(oldest_kept);  // chain already broken
    }
  }

  if (fold_gen >= 0) {
    try {
      CkptImage img;
      for (std::size_t i = 0; i < fold_chain.size(); ++i) {
        const CkptGen& link = fold_chain[i];
        const std::string image =
            read_file_image(path(link.gen), "restart file");
        if (link.is_base) {
          img = parse_base(image, path(link.gen), nullptr);
        } else {
          const ParsedDelta d = parse_delta(image, path(link.gen), nullptr);
          apply_delta(img.data, d.delta, d.block);
          img.t = d.header.t;
          img.steps = d.header.steps;
        }
      }
      atomic_write_file(path(fold_gen), serialize_base(img));
      std::lock_guard<std::mutex> lk(mu_);
      auto it = table_.find(fold_gen);
      if (it != table_.end()) {
        it->second.is_base = true;
        it->second.prev = -1;
        it->second.chain = 0;
        it->second.bytes =
            img.data.size() * sizeof(double) + 48 + sizeof(std::uint64_t);
        ++stats_.folds;
        if (owner_rank_ == 0) trace::counter_add("ckpt.folds", 1.0);
        // Chain depths shrank for everything downstream of the new base.
        for (auto jt = table_.upper_bound(fold_gen); jt != table_.end();
             ++jt) {
          if (jt->second.is_base) continue;
          const auto pit = table_.find(jt->second.prev);
          if (pit != table_.end())
            jt->second.chain = pit->second.chain + 1;
        }
      }
    } catch (const Error&) {
      std::lock_guard<std::mutex> lk(mu_);
      invalidate_cascade_locked(fold_gen);
    }
  }

  std::error_code ec;
  for (const long g : victims) stdfs::remove(path(g), ec);
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const long g : victims) table_.erase(g);
    write_manifest_locked();
  }
}

void CkptStore::drain_locked(std::unique_lock<std::mutex>& lk) const {
  cv_idle_.wait(lk, [&] { return queue_.empty() && !working_; });
}

void CkptStore::drain() const {
  if (!opt_.write_behind) return;
  std::unique_lock<std::mutex> lk(mu_);
  drain_locked(lk);
}

std::vector<long> CkptStore::generations() const {
  drain();
  std::lock_guard<std::mutex> lk(mu_);
  const_cast<CkptStore*>(this)->sync_scan_locked();
  std::vector<long> gens;
  for (auto it = table_.rbegin(); it != table_.rend(); ++it)
    gens.push_back(it->first);
  return gens;
}

bool CkptStore::try_load(long gen, Solver& s, std::string* err) const {
  drain();
  std::vector<CkptGen> chain;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::string why;
    if (!chain_for_locked(gen, &chain, &why)) {
      // A broken chain makes this generation unrecoverable: record that
      // in the table so restore_latest never retries it.
      if (table_.count(gen)) invalidate_cascade_locked(gen);
      if (err) *err = why;
      return false;
    }
  }

  const int expect[4] = {s.layout().nx, s.layout().ny, s.layout().nz,
                         s.state().nv()};
  try {
    std::vector<std::string> images;
    images.reserve(chain.size());
    for (const CkptGen& link : chain)
      images.push_back(read_file_image(path(link.gen), "restart file"));
    if (auto a = fault::probe("restart.read")) {
      fault::apply(a, "restart.read");  // Kind::fail models a read error
      fault::corrupt_bytes(
          a, reinterpret_cast<std::uint8_t*>(images.back().data()),
          images.back().size());
    }
    CkptImage img;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const CkptGen& link = chain[i];
      if (link.is_base) {
        img = parse_base(images[i], path(link.gen), expect);
      } else {
        const ParsedDelta d = parse_delta(images[i], path(link.gen), expect);
        S3D_REQUIRE(d.gen == link.gen && d.prev == link.prev,
                    "delta chain link mismatch: " + path(link.gen));
        apply_delta(img.data, d.delta, d.block);
        img.t = d.header.t;
        img.steps = d.header.steps;
      }
    }
    commit_image(img, s);
    std::lock_guard<std::mutex> lk(mu_);
    shadow_ = std::move(img);
    shadow_gen_ = gen;
    return true;
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lk(mu_);
    invalidate_cascade_locked(gen);
    if (err) *err = e.what();
    return false;
  }
}

long CkptStore::restore_latest(Solver& s,
                               std::vector<std::string>* skipped) const {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const_cast<CkptStore*>(this)->sync_scan_locked();
  }
  for (;;) {
    long gen = -1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      gen = newest_valid_locked();
    }
    if (gen < 0) return -1;
    std::string err;
    if (try_load(gen, s, &err)) return gen;
    if (skipped)
      skipped->push_back("gen " + std::to_string(gen) + ": " + err);
    // try_load marked `gen` invalid; the walk continues strictly older.
  }
}

CkptStats CkptStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace s3d::solver
