#include "solver/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "solver/config.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

namespace {

std::string fmt_real(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

/// Schema + factory builder for one scenario over a parameter struct P:
/// each declaration records the ParamSpec AND the typed setter that
/// parses/range-checks an override into the struct field, so the two can
/// never drift apart.
template <class P>
class Def {
 public:
  using Setter =
      std::function<void(P&, const std::string&, const std::string&)>;

  Def(std::string name, std::string desc,
      std::function<CaseSetup(const P&)> make)
      : make_(std::move(make)) {
    sc_.name = std::move(name);
    sc_.description = std::move(desc);
  }

  Def& i(const std::string& key, int P::* f, long lo, long hi,
         const std::string& help) {
    P d{};
    spec({key, ParamSpec::Kind::integer, std::to_string(d.*f),
          static_cast<double>(lo), static_cast<double>(hi), help},
         [f, lo, hi](P& p, const std::string& field, const std::string& v) {
           const long x = parse_int_param(field, v);
           require_range(field, static_cast<double>(x),
                         static_cast<double>(lo), static_cast<double>(hi));
           p.*f = static_cast<int>(x);
         });
    return *this;
  }

  Def& u64(const std::string& key, std::uint64_t P::* f,
           const std::string& help) {
    P d{};
    spec({key, ParamSpec::Kind::integer, std::to_string(d.*f), 0.0, 9.2e18,
          help},
         [f](P& p, const std::string& field, const std::string& v) {
           const long x = parse_int_param(field, v);
           require_range(field, static_cast<double>(x), 0.0, 9.2e18);
           p.*f = static_cast<std::uint64_t>(x);
         });
    return *this;
  }

  Def& r(const std::string& key, double P::* f, double lo, double hi,
         const std::string& help) {
    P d{};
    spec({key, ParamSpec::Kind::real, fmt_real(d.*f), lo, hi, help},
         [f, lo, hi](P& p, const std::string& field, const std::string& v) {
           const double x = parse_real_param(field, v);
           require_range(field, x, lo, hi);
           p.*f = x;
         });
    return *this;
  }

  Def& b(const std::string& key, bool P::* f, const std::string& help) {
    P d{};
    spec({key, ParamSpec::Kind::boolean, d.*f ? "true" : "false", 0.0, 1.0,
          help},
         [f](P& p, const std::string& field, const std::string& v) {
           p.*f = parse_bool_param(field, v);
         });
    return *this;
  }

  Def& transport(const std::string& key, TransportModel P::* f,
                 const std::string& help) {
    P d{};
    const char* defname = d.*f == TransportModel::mixture_averaged
                              ? "mixture_averaged"
                              : d.*f == TransportModel::constant_lewis
                                    ? "constant_lewis"
                                    : "power_law";
    spec({key, ParamSpec::Kind::text, defname, 0.0, 0.0, help},
         [f](P& p, const std::string& field, const std::string& v) {
           if (v == "mixture_averaged")
             p.*f = TransportModel::mixture_averaged;
           else if (v == "constant_lewis")
             p.*f = TransportModel::constant_lewis;
           else if (v == "power_law")
             p.*f = TransportModel::power_law;
           else
             throw ConfigError(field,
                               "must be one of mixture_averaged, "
                               "constant_lewis, power_law (got '" +
                                   v + "')");
         });
    return *this;
  }

  Scenario done() {
    Scenario sc = std::move(sc_);
    sc.make = [name = sc.name, setters = std::move(setters_),
               make = std::move(make_)](const ParamMap& overrides) {
      P p{};
      for (const auto& [key, set] : setters) {
        auto it = overrides.find(key);
        if (it != overrides.end())
          set(p, "scenario." + name + "." + key, it->second);
      }
      return make(p);
    };
    return sc;
  }

 private:
  static void require_range(const std::string& field, double x, double lo,
                            double hi) {
    if (x < lo || x > hi)
      throw ConfigError(field, "value " + fmt_real(x) + " outside [" +
                                   fmt_real(lo) + ", " + fmt_real(hi) + "]");
  }

  void spec(ParamSpec ps, Setter set) {
    setters_.emplace_back(ps.key, std::move(set));
    sc_.schema.push_back(std::move(ps));
  }

  Scenario sc_;
  std::function<CaseSetup(const P&)> make_;
  std::vector<std::pair<std::string, Setter>> setters_;
};

struct PressureWaveParams {
  int n = 32;
  bool two_d = false;
};

}  // namespace

long parse_int_param(const std::string& field, const std::string& v) {
  if (v.empty()) throw ConfigError(field, "empty value");
  char* end = nullptr;
  errno = 0;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size())
    throw ConfigError(field, "'" + v + "' is not an integer");
  return x;
}

double parse_real_param(const std::string& field, const std::string& v) {
  if (v.empty()) throw ConfigError(field, "empty value");
  char* end = nullptr;
  errno = 0;
  const double x = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size())
    throw ConfigError(field, "'" + v + "' is not a number");
  return x;
}

bool parse_bool_param(const std::string& field, const std::string& v) {
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  throw ConfigError(field, "'" + v + "' is not a boolean (true/false/1/0)");
}

void parse_kv(const std::string& field, const std::string& arg,
              ParamMap& into) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ConfigError(field, "'" + arg + "' is not of the form key=value");
  into[arg.substr(0, eq)] = arg.substr(eq + 1);
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg;
  return reg;
}

void ScenarioRegistry::add(Scenario sc) {
  auto [it, inserted] = map_.emplace(sc.name, std::move(sc));
  if (!inserted)
    throw ScenarioError("scenario '" + it->first + "' already registered");
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return map_.count(name) != 0;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  auto it = map_.find(name);
  if (it == map_.end())
    throw ScenarioError("unknown scenario '" + name +
                        "' (registered: " + join(names()) + ")");
  return it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

CaseSetup ScenarioRegistry::build(const std::string& name,
                                  const ParamMap& overrides) const {
  const Scenario& sc = at(name);
  for (const auto& [k, v] : overrides) {
    (void)v;
    bool known = false;
    for (const auto& ps : sc.schema) known = known || ps.key == k;
    if (!known) {
      std::vector<std::string> keys;
      keys.reserve(sc.schema.size());
      for (const auto& ps : sc.schema) keys.push_back(ps.key);
      throw ConfigError("scenario." + name + "." + k,
                        "unknown parameter (known: " + join(keys) + ")");
    }
  }
  CaseSetup cs = sc.make(overrides);
  cs.cfg.validate();
  trace::counter_add("scenario.build", 1.0);
  return cs;
}

ScenarioRegistry::ScenarioRegistry() {
  add(Def<PressureWaveParams>(
          "pressure_wave",
          "non-reacting pressure pulse on a periodic box (section 4.1)",
          [](const PressureWaveParams& p) {
            return pressure_wave_case(p.n, p.two_d);
          })
          .i("n", &PressureWaveParams::n, 8, 1024, "points per axis")
          .b("two_d", &PressureWaveParams::two_d, "collapse z to one plane")
          .done());

  add(Def<LiftedJetParams>(
          "lifted_jet",
          "autoigniting lifted H2/N2 jet flame in hot coflow (section 6)",
          [](const LiftedJetParams& p) { return lifted_jet_case(p); })
          .i("nx", &LiftedJetParams::nx, 8, 4096, "streamwise points")
          .i("ny", &LiftedJetParams::ny, 8, 4096, "transverse points")
          .r("Lx", &LiftedJetParams::Lx, 1e-4, 1.0, "domain length [m]")
          .r("Ly", &LiftedJetParams::Ly, 1e-4, 1.0, "domain height [m]")
          .r("slot_h", &LiftedJetParams::slot_h, 1e-5, 0.1, "jet width [m]")
          .r("u_jet", &LiftedJetParams::u_jet, 0.0, 2000.0, "jet speed [m/s]")
          .r("u_coflow", &LiftedJetParams::u_coflow, 0.0, 2000.0,
             "coflow speed [m/s]")
          .r("T_fuel", &LiftedJetParams::T_fuel, 200.0, 3000.0,
             "fuel stream temperature [K]")
          .r("T_coflow", &LiftedJetParams::T_coflow, 200.0, 3000.0,
             "coflow temperature [K]")
          .r("p", &LiftedJetParams::p, 1e3, 1e7, "pressure [Pa]")
          .r("u_rms", &LiftedJetParams::u_rms, 0.0, 500.0,
             "inflow turbulence intensity [m/s]")
          .r("turb_len", &LiftedJetParams::turb_len, 1e-6, 1.0,
             "turbulence length scale [m]")
          .r("y_stretch", &LiftedJetParams::y_stretch, 1.0, 4.0,
             "transverse mesh stretching")
          .transport("transport", &LiftedJetParams::transport,
                     "transport model")
          .u64("seed", &LiftedJetParams::seed, "turbulence seed")
          .done());

  add(Def<BunsenParams>(
          "bunsen",
          "lean premixed CH4/air slot Bunsen flame (section 7)",
          [](const BunsenParams& p) { return bunsen_case(p); })
          .i("nx", &BunsenParams::nx, 8, 4096, "streamwise points")
          .i("ny", &BunsenParams::ny, 8, 4096, "transverse points")
          .r("Lx", &BunsenParams::Lx, 1e-4, 1.0, "domain length [m]")
          .r("Ly", &BunsenParams::Ly, 1e-4, 1.0, "domain height [m]")
          .r("slot_h", &BunsenParams::slot_h, 1e-5, 0.1, "slot width [m]")
          .r("u_jet", &BunsenParams::u_jet, 0.0, 2000.0, "jet speed [m/s]")
          .r("u_coflow", &BunsenParams::u_coflow, 0.0, 2000.0,
             "coflow speed [m/s]")
          .r("phi", &BunsenParams::phi, 0.05, 10.0, "equivalence ratio")
          .r("T_unburnt", &BunsenParams::T_unburnt, 200.0, 3000.0,
             "reactant temperature [K]")
          .r("p", &BunsenParams::p, 1e3, 1e7, "pressure [Pa]")
          .r("u_rms", &BunsenParams::u_rms, 0.0, 500.0,
             "inflow turbulence intensity [m/s]")
          .r("turb_len", &BunsenParams::turb_len, 1e-6, 1.0,
             "turbulence length scale [m]")
          .r("y_stretch", &BunsenParams::y_stretch, 1.0, 4.0,
             "transverse mesh stretching")
          .transport("transport", &BunsenParams::transport,
                     "transport model")
          .u64("seed", &BunsenParams::seed, "turbulence seed")
          .done());

  add(Def<TemporalJetParams>(
          "temporal_jet",
          "temporally evolving plane CO/H2 jet flame (hero-run class)",
          [](const TemporalJetParams& p) { return temporal_jet_case(p); })
          .i("nx", &TemporalJetParams::nx, 8, 4096, "streamwise points")
          .i("ny", &TemporalJetParams::ny, 8, 4096, "transverse points")
          .r("Lx", &TemporalJetParams::Lx, 1e-4, 1.0, "domain length [m]")
          .r("Ly", &TemporalJetParams::Ly, 1e-4, 1.0, "domain height [m]")
          .r("jet_h", &TemporalJetParams::jet_h, 1e-5, 0.1,
             "fuel-stream width [m]")
          .r("dU", &TemporalJetParams::dU, 0.0, 2000.0,
             "stream velocity difference [m/s]")
          .r("T0", &TemporalJetParams::T0, 200.0, 3000.0,
             "stream temperature [K]")
          .r("p", &TemporalJetParams::p, 1e3, 1e7, "pressure [Pa]")
          .r("u_rms", &TemporalJetParams::u_rms, 0.0, 500.0,
             "shear-layer perturbation intensity [m/s]")
          .r("turb_len", &TemporalJetParams::turb_len, 1e-6, 1.0,
             "turbulence length scale [m]")
          .r("T_ignite", &TemporalJetParams::T_ignite, 300.0, 3000.0,
             "ignition-strip temperature [K]")
          .u64("seed", &TemporalJetParams::seed, "turbulence seed")
          .done());

  add(Def<CounterflowParams>(
          "counterflow_ignition",
          "cold diluted-H2 vs hot-air opposed-flow ignition",
          [](const CounterflowParams& p) {
            return counterflow_ignition_case(p);
          })
          .i("nx", &CounterflowParams::nx, 8, 4096, "axial points")
          .i("ny", &CounterflowParams::ny, 8, 4096, "transverse points")
          .r("Lx", &CounterflowParams::Lx, 1e-4, 1.0, "domain length [m]")
          .r("Ly", &CounterflowParams::Ly, 1e-4, 1.0, "domain height [m]")
          .r("strain", &CounterflowParams::strain, 0.0, 1e6,
             "peak strain rate [1/s]")
          .r("delta", &CounterflowParams::delta, 1e-6, 0.1,
             "mixing-layer thickness [m]")
          .r("T_fuel", &CounterflowParams::T_fuel, 200.0, 3000.0,
             "fuel stream temperature [K]")
          .r("T_ox", &CounterflowParams::T_ox, 200.0, 3000.0,
             "oxidizer temperature [K]")
          .r("p", &CounterflowParams::p, 1e3, 1e7, "pressure [Pa]")
          .r("u_rms", &CounterflowParams::u_rms, 0.0, 500.0,
             "perturbation intensity [m/s]")
          .r("turb_len", &CounterflowParams::turb_len, 1e-6, 1.0,
             "turbulence length scale [m]")
          .u64("seed", &CounterflowParams::seed, "turbulence seed")
          .done());

  add(Def<HitAutoignitionParams>(
          "hit_autoignition",
          "lean premixed H2/air HIT auto-ignition in a periodic box",
          [](const HitAutoignitionParams& p) {
            return hit_autoignition_case(p);
          })
          .i("n", &HitAutoignitionParams::n, 8, 1024, "points per axis")
          .b("two_d", &HitAutoignitionParams::two_d,
             "collapse z to one plane")
          .r("L", &HitAutoignitionParams::L, 1e-4, 1.0, "box edge [m]")
          .r("phi", &HitAutoignitionParams::phi, 0.05, 10.0,
             "equivalence ratio")
          .r("T0", &HitAutoignitionParams::T0, 200.0, 3000.0,
             "mean temperature [K]")
          .r("dT", &HitAutoignitionParams::dT, 0.0, 2000.0,
             "temperature-spot amplitude [K]")
          .r("p", &HitAutoignitionParams::p, 1e3, 1e7, "pressure [Pa]")
          .r("u_rms", &HitAutoignitionParams::u_rms, 0.0, 500.0,
             "turbulence intensity [m/s]")
          .r("turb_len", &HitAutoignitionParams::turb_len, 1e-6, 1.0,
             "turbulence length scale [m]")
          .u64("seed", &HitAutoignitionParams::seed, "turbulence seed")
          .done());
}

}  // namespace s3d::solver
