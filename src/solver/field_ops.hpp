#pragma once
// Derivative and filter operators applied to ghosted solver fields, with
// the mesh metric (stretched axes) folded in.

#include <array>

#include "grid/mesh.hpp"
#include "solver/layout.hpp"

namespace s3d::solver {

/// Whether each axis side has valid ghost data (periodic wrap or a
/// parallel neighbour); false selects the one-sided boundary closures.
struct GhostFlags {
  std::array<bool, 3> lo{false, false, false};
  std::array<bool, 3> hi{false, false, false};
};

/// Physical-space derivative and filter operators for one local box.
class FieldOps {
 public:
  /// `offset` = global index of this rank's first interior point per axis.
  FieldOps(const Layout& l, const grid::Mesh& mesh,
           std::array<int, 3> offset, GhostFlags ghosts);

  const Layout& layout() const { return l_; }
  const GhostFlags& ghosts() const { return ghosts_; }

  /// out(interior) = d f / d x_axis. Inactive axes produce zeros.
  void deriv(const GField& f, int axis, GField& out) const {
    deriv(f.data(), axis, out.data(), out.size());
  }
  void deriv(const double* f, int axis, double* out, std::size_t out_size) const;

  /// Filter f along `axis` into `out` (interior only).
  void filter_axis(const GField& f, int axis, double alpha,
                   GField& out) const {
    filter_axis(f.data(), axis, alpha, out.data());
  }
  void filter_axis(const double* f, int axis, double alpha, double* out) const;

  /// Local slice of the metric (d xi / dx) for an axis.
  const std::vector<double>& inv_h(int axis) const { return inv_h_[axis]; }

 private:
  template <typename LineFn>
  void for_each_line(int axis, LineFn&& fn) const;

  Layout l_;
  GhostFlags ghosts_;
  std::array<std::vector<double>, 3> inv_h_;
};

}  // namespace s3d::solver
