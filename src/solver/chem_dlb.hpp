#pragma once
// Chemistry dynamic load balancing over vmpi (DESIGN.md §11).
//
// Stiff reacting cells concentrate in ignition kernels and flame fronts,
// so a uniform domain decomposition hands some ranks far more chemistry
// work per step than others (the cure Yang et al.'s chemistry-DLB work
// applies to S3D, see PAPERS.md). This layer rebalances the
// REACTION_RATE kernel only — the one cost that varies per cell — and is
// built so any rank count reproduces the serial answer bitwise:
//
//   1. Every rank classifies its interior cells with a deterministic
//      cost model: a cell with T >= Config::dlb_hot_T is "hot" and costs
//      dlb_hot_weight, any other cell costs 1. No timers, no seeds.
//   2. The per-rank (load, hot-cell count) vector is allreduced, so
//      every rank holds identical numbers and computes the IDENTICAL
//      transfer plan (dlb_plan is a pure function of that vector).
//   3. Donor ranks pack their surplus hot cells — the first ones in
//      interior (k, j, i) traversal order — into fixed-size work parcels
//      of primitive state [T, rho, Y...] and isend them (vmpi isend is
//      buffered, so the send-first/serve/collect ordering cannot
//      deadlock). Hosts evaluate the parcels with the SAME compiled
//      batched kinetics kernel the owner would have used and return the
//      rates; per-(src, dst, tag) non-overtaking delivery keeps parcel
//      order deterministic, so no cell indices travel on the wire.
//   4. The owner skips the shipped cells in its local kernel and
//      scatters the returned rates through the same shared applier
//      (chem_apply_wdot_cell). Each cell's dUdt entries are touched
//      exactly once, so application order across cells is irrelevant to
//      the bits.
//
// test_rank_invariance pins DLB-armed 1/2/8-rank steps against the
// DLB-off serial reference and pins the parcel counts.

#include <cstddef>
#include <span>
#include <vector>

#include "chem/batched.hpp"
#include "solver/config.hpp"
#include "solver/layout.hpp"
#include "solver/state.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::solver {

/// One planned move of `cells` hot cells from rank src to rank dst.
struct DlbTransfer {
  int src = 0;
  int dst = 0;
  long cells = 0;
};

/// Deterministic, seed-free transfer plan: a pure function of the
/// allreduced per-rank loads and hot-cell counts, so every rank computes
/// the identical plan redundantly. Greedy largest-surplus ->
/// largest-deficit matching with rank-ascending tie-breaks; empty when
/// max load <= (1 + imbalance_tol) * mean load.
std::vector<DlbTransfer> dlb_plan(std::span<const double> loads,
                                  std::span<const double> hot,
                                  double hot_weight, double imbalance_tol);

/// Cumulative per-rank DLB execution statistics.
struct DlbStats {
  long evals = 0;          ///< RHS evaluations the layer participated in
  long evals_engaged = 0;  ///< evaluations with a non-empty global plan
  long parcels_sent = 0;   ///< work parcels this rank shipped out
  long parcels_hosted = 0; ///< work parcels this rank evaluated for peers
  long cells_shipped = 0;
  long cells_hosted = 0;
};

/// The one compiled body applying a cell's chemistry source into dUdt
/// (never inlined): the local per-point loop, the batched chemistry pass
/// and the DLB result scatter all land here, so `dUdt += wdot * W`
/// contracts identically everywhere (DESIGN.md §11).
void chem_apply_wdot_cell(State& dUdt, std::size_t n, const double* wdot,
                          const double* W, int ns);

/// Per-evaluation DLB driver owned by the RHS evaluator. All methods are
/// collective over the communicator: the caller must invoke them on
/// every rank of every evaluation (the engagement condition is derived
/// from Config, which is uniform across ranks).
class ChemDlb {
 public:
  ChemDlb(const chem::Mechanism& mech, const Config& cfg, vmpi::Comm& comm);

  /// Phase 1 (collective, before the local chemistry kernel): classify,
  /// allreduce the cost vector, plan, ship this rank's surplus parcels
  /// and host+serve parcels addressed here. Returns the ascending flat
  /// indices of local interior cells shipped away this evaluation; the
  /// local kernel must skip exactly these cells.
  const std::vector<std::size_t>& begin_eval(const Prim& prim,
                                             const Layout& l);

  /// Phase 2 (after the local kernel): collect the hosted results for
  /// the shipped cells and apply them into dUdt.
  void finish_eval(State& dUdt);

  const DlbStats& stats() const { return stats_; }

 private:
  void ship(const DlbTransfer& t, const Prim& prim, std::size_t hot_cursor);
  void host(const DlbTransfer& t);

  const chem::Mechanism* mech_;
  chem::BatchedChemistry bchem_;
  Config cfg_;
  vmpi::Comm* comm_;
  std::vector<double> W_;  ///< species molecular weights

  std::vector<std::size_t> hot_idx_;  ///< hot cells, traversal order
  std::vector<std::size_t> shipped_;  ///< cells shipped this evaluation

  /// One outstanding result parcel: the cells it covers (in parcel
  /// order), the posted irecv and its landing buffer.
  struct PendingResult {
    std::size_t cell0 = 0;  ///< index into shipped_ of the first cell
    int count = 0;
    vmpi::Request req;
    std::vector<double> buf;
  };
  std::vector<PendingResult> pending_;

  // Host-side scratch (parcel unpack + batched evaluation).
  std::vector<double> work_, host_T_, host_lnT_, host_rho_, host_Y_,
      host_wdot_;

  DlbStats stats_;
};

}  // namespace s3d::solver
