#include "solver/dt_control.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace s3d::solver {

namespace {

/// Per-update growth clamp on the PI factor: one observation may at most
/// halve or double... — actually [1/5, 5] per PI-controller convention
/// (Gustafsson): wild error spikes shrink dt fast but never to zero in
/// one step, and recovery back toward the global step is gradual enough
/// that a freshly-calmed block is not immediately re-flagged.
constexpr double kFacMin = 0.2;
constexpr double kFacMax = 5.0;

/// Error floor for the pow() arguments: a block with (near-)zero
/// observed error grows at the clamped maximum rate instead of dividing
/// by zero.
constexpr double kErrFloor = 1e-12;

}  // namespace

// ---------------------------------------------------------------------------
// BlockMap

BlockMap::BlockMap(int NX, int NY, int NZ, int block, const Layout& l,
                   std::array<int, 3> offset)
    : NX_(NX), NY_(NY), NZ_(NZ), b_(block), l_(l), off_(offset) {
  S3D_REQUIRE(block >= 1, "BlockMap: block edge must be >= 1");
  nbx_ = (NX_ + b_ - 1) / b_;
  nby_ = (NY_ + b_ - 1) / b_;
  nbz_ = (NZ_ + b_ - 1) / b_;
}

void BlockMap::visit_rows(
    const std::function<void(int block, const RowRange& seg)>& fn) const {
  for (int k = 0; k < l_.nz; ++k) {
    const int bk = (off_[2] + k) / b_;
    for (int j = 0; j < l_.ny; ++j) {
      const int bj = (off_[1] + j) / b_;
      const int brow = nbx_ * (bj + nby_ * bk);
      int i = 0;
      while (i < l_.nx) {
        const int gi = off_[0] + i;
        const int bi = gi / b_;
        // Run ends at the block's global x edge or the local row's end.
        const int run = std::min((bi + 1) * b_ - gi, l_.nx - i);
        RowRange seg;
        seg.n0 = l_.at(i, j, k);
        seg.i0 = i;
        seg.count = run;
        seg.j = j;
        seg.k = k;
        fn(bi + brow, seg);
        i += run;
      }
    }
  }
}

std::vector<RowRange> BlockMap::segments(std::span<const int> blocks) const {
  std::vector<char> in(static_cast<std::size_t>(n_blocks()), 0);
  for (int b : blocks)
    if (b >= 0 && b < n_blocks()) in[static_cast<std::size_t>(b)] = 1;
  std::vector<RowRange> segs;
  visit_rows([&](int b, const RowRange& seg) {
    if (!in[static_cast<std::size_t>(b)]) return;
    // Merge with the previous segment when contiguous in the same row
    // (adjacent selected blocks): fewer, longer runs for the kernels.
    if (!segs.empty()) {
      RowRange& p = segs.back();
      if (p.j == seg.j && p.k == seg.k && p.i0 + p.count == seg.i0) {
        p.count += seg.count;
        return;
      }
    }
    segs.push_back(seg);
  });
  return segs;
}

std::vector<int> BlockMap::widen(std::span<const int> blocks) const {
  std::vector<int> out;
  for (int b : blocks) {
    const int bi = b % nbx_;
    const int bj = (b / nbx_) % nby_;
    const int bk = b / (nbx_ * nby_);
    out.push_back(b);
    if (bi > 0) out.push_back(b - 1);
    if (bi + 1 < nbx_) out.push_back(b + 1);
    if (bj > 0) out.push_back(b - nbx_);
    if (bj + 1 < nby_) out.push_back(b + nbx_);
    if (bk > 0) out.push_back(b - nbx_ * nby_);
    if (bk + 1 < nbz_) out.push_back(b + nbx_ * nby_);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

long BlockMap::block_cells(int b) const {
  const int bi = b % nbx_;
  const int bj = (b / nbx_) % nby_;
  const int bk = b / (nbx_ * nby_);
  const long ex = std::min((bi + 1) * b_, NX_) - bi * b_;
  const long ey = std::min((bj + 1) * b_, NY_) - bj * b_;
  const long ez = std::min((bk + 1) * b_, NZ_) - bk * b_;
  return ex * ey * ez;
}

// ---------------------------------------------------------------------------
// DtController

DtController::DtController(const BlockMap& map, const AdaptiveOptions& opt)
    : map_(map), opt_(opt) {
  opt_.validate("adaptive");
  const auto n = static_cast<std::size_t>(map.n_blocks());
  ratio_.assign(n, opt_.dt_max_ratio);
  // "At tolerance" history: the P term is neutral on the first
  // observation instead of punishing every block for having none.
  err_prev_.assign(n, 1.0);
}

void DtController::observe(std::span<const double> local_err,
                           vmpi::Comm* comm) {
  S3D_REQUIRE(local_err.size() == ratio_.size(),
              "DtController::observe: block vector size mismatch");
  // Stage 1: one allreduce lands the identical global Linf error per
  // block on every rank (max over partials is order-invariant, unlike a
  // sum — this is why the norm is Linf). Non-finite estimates (a block
  // that went NaN on the observed step) are sanitized to "very bad"
  // BEFORE the reduce — NaN would both poison the PI state permanently
  // and make the max rank-order-sensitive.
  std::vector<double> err(local_err.begin(), local_err.end());
  for (double& e : err)
    if (!std::isfinite(e)) e = 1e12;
  if (comm) comm->allreduce_max(std::span<double>(err));

  // Stage 2: identical PI update everywhere. E = 1 means at tolerance;
  // the classic Gustafsson form dt *= safety * E^-(kI+kP) * E_prev^kP
  // damps oscillation between shrink and regrow.
  for (std::size_t b = 0; b < ratio_.size(); ++b) {
    const double E = std::max(err[b], kErrFloor);
    // s3dlint:allow(libm): PI controller on allreduced (rank-identical)
    // errors; feeds dt selection, not field arithmetic.
    double fac = opt_.safety * std::pow(E, -(opt_.kI + opt_.kP)) *
                 std::pow(err_prev_[b], opt_.kP);
    fac = std::clamp(fac, kFacMin, kFacMax);
    ratio_[b] =
        std::clamp(ratio_[b] * fac, opt_.dt_min_ratio, opt_.dt_max_ratio);
    err_prev_[b] = E;
  }
  refresh_stiff();
}

void DtController::clamp_stable(std::span<const double> local_dt,
                                double base_dt, vmpi::Comm* comm) {
  S3D_REQUIRE(local_dt.size() == ratio_.size(),
              "DtController::clamp_stable: block vector size mismatch");
  // min via negated allreduce_max, matching the sentinel's dt reduce.
  std::vector<double> neg(local_dt.size());
  for (std::size_t b = 0; b < neg.size(); ++b) neg[b] = -local_dt[b];
  if (comm) comm->allreduce_max(std::span<double>(neg));
  for (std::size_t b = 0; b < ratio_.size(); ++b) {
    const double dt_b = -neg[b];
    if (!(base_dt > 0.0) || dt_b >= 1e300) continue;
    const double r = std::clamp(dt_b / base_dt, opt_.dt_min_ratio,
                                opt_.dt_max_ratio);
    ratio_[b] = std::min(ratio_[b], r);
  }
  refresh_stiff();
}

void DtController::force_floor(int block) {
  S3D_REQUIRE(block >= 0 && block < n_blocks(),
              "DtController::force_floor: block out of range");
  ratio_[static_cast<std::size_t>(block)] = opt_.dt_min_ratio;
  // A breach invalidates the error history: restart the PI loop for
  // this block from "very bad" so regrowth is earned, not inherited.
  err_prev_[static_cast<std::size_t>(block)] = 1.0;
  refresh_stiff();
}

double DtController::min_ratio() const {
  double r = opt_.dt_max_ratio;
  for (double v : ratio_) r = std::min(r, v);
  return r;
}

int DtController::subcycles(int b) const {
  const double r = ratio_[static_cast<std::size_t>(b)];
  const int n = static_cast<int>(std::ceil(1.0 / r - 1e-12));
  return std::clamp(n, 1, opt_.subcycle_cap);
}

int DtController::max_subcycles() const {
  int n = 1;
  for (int b : stiff_) n = std::max(n, subcycles(b));
  return n;
}

void DtController::refresh_stiff() {
  stiff_.clear();
  for (int b = 0; b < n_blocks(); ++b)
    if (ratio_[static_cast<std::size_t>(b)] < 1.0 - 1e-12)
      stiff_.push_back(b);
}

}  // namespace s3d::solver
