#include "solver/solver.hpp"

#include <algorithm>
#include <cmath>

#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

Solver::Solver(const Config& cfg) : scheme_(numerics::rk_carpenter_kennedy4()) {
  setup(cfg, nullptr, 1, 1, 1);
}

Solver::Solver(const Config& cfg, vmpi::Comm& comm, int px, int py, int pz)
    : scheme_(numerics::rk_carpenter_kennedy4()) {
  setup(cfg, &comm, px, py, pz);
}

void Solver::setup(const Config& cfg, vmpi::Comm* comm, int px, int py,
                   int pz) {
  cfg_ = cfg;
  comm_ = comm;
  cfg_.validate();  // typed ConfigError before any allocation
  S3D_REQUIRE(cfg_.mech != nullptr, "Config.mech must be set");
  const int ns = cfg_.mech->n_species();

  mesh_ = std::make_unique<grid::Mesh>(cfg_.x, cfg_.y, cfg_.z);

  std::array<bool, 3> periodic{cfg_.x.periodic, cfg_.y.periodic,
                               cfg_.z.periodic};
  const grid::AxisSpec* specs[3] = {&cfg_.x, &cfg_.y, &cfg_.z};
  for (int a = 0; a < 3; ++a) {
    if (specs[a]->n <= 1) continue;  // inactive axis: faces are unused
    const bool face_periodic = cfg_.faces[a][0].kind == BcKind::periodic &&
                               cfg_.faces[a][1].kind == BcKind::periodic;
    S3D_REQUIRE(periodic[a] == face_periodic,
                "axis periodicity must match both face BCs");
  }

  Layout l;
  GhostFlags gh;
  if (comm) {
    grid::Decomp dec(mesh_->nx(), mesh_->ny(), mesh_->nz(), px, py, pz);
    S3D_REQUIRE(dec.nranks() == comm->size(),
                "process grid does not match communicator");
    cart_ = std::make_unique<vmpi::Cart>(*comm, px, py, pz, periodic);
    const auto c = cart_->coords();
    std::array<int, 3> ext{};
    for (int a = 0; a < 3; ++a) {
      auto [b, e] = dec.local_range(a, c[a]);
      offset_[a] = b;
      ext[a] = e - b;
    }
    l = Layout::make(ext[0], ext[1], ext[2]);
    for (int a = 0; a < 3; ++a) {
      gh.lo[a] = cart_->neighbor(a, -1) >= 0;
      gh.hi[a] = cart_->neighbor(a, +1) >= 0;
    }
  } else {
    l = Layout::make(mesh_->nx(), mesh_->ny(), mesh_->nz());
    for (int a = 0; a < 3; ++a) {
      gh.lo[a] = periodic[a] && l.active(a);
      gh.hi[a] = gh.lo[a];
    }
  }

  Halo halo = comm ? Halo(l, periodic, comm, cart_.get())
                   : Halo(l, periodic);
  halo_state_ = std::make_unique<Halo>(halo);
  rhs_ = std::make_unique<RhsEvaluator>(cfg_, *mesh_, l, offset_, gh, halo);

  const int nv = n_conserved(ns);
  U_ = State(l, nv);
  dU_ = State(l, nv);
  k_ = State(l, nv);
  filt_tmp_ = GField(l);
}

void Solver::initialize(const InitFn& init) {
  const Layout& l = rhs_->layout();
  const int ns = cfg_.mech->n_species();
  InflowState s;
  double u_pt[32];
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        double p = cfg_.p_ref;
        init(coord(0, i), coord(1, j), coord(2, k), s, p);
        const double rho = cfg_.mech->density(
            p, s.T, {s.Y.data(), static_cast<std::size_t>(ns)});
        point_to_conserved(*cfg_.mech, rho, s.u, s.v, s.w, s.T,
                           {s.Y.data(), static_cast<std::size_t>(ns)},
                           {u_pt, static_cast<std::size_t>(n_conserved(ns))});
        for (int v = 0; v < U_.nv(); ++v)
          U_.var(v)[l.at(i, j, k)] = u_pt[v];
      }
  t_ = 0.0;
  steps_ = 0;
  dt_cached_ = -1.0;
}

void Solver::step(double dt) {
  if (auto a = fault::probe("solver.step")) fault::apply(a, "solver.step");
  trace::Span sp_step("solver.step", "solver");
  auto k = k_.flat();
  auto u = U_.flat();
  std::fill(k.begin(), k.end(), 0.0);
  for (int s = 0; s < scheme_.stages(); ++s) {
    trace::Span sp_stage("solver.rk_stage", "solver");
    rhs_->eval(U_, t_ + scheme_.C[s] * dt, dU_);
    const double A = scheme_.A[s], B = scheme_.B[s];
    const auto& du = dU_.flat();
    for (std::size_t i = 0; i < u.size(); ++i) {
      k[i] = A * k[i] + dt * du[i];
      u[i] += B * k[i];
    }
  }
  t_ += dt;
  ++steps_;
  enforce_inflow();
  if (cfg_.filter_interval > 0 && steps_ % cfg_.filter_interval == 0)
    apply_filter();
  trace::gauge_set("solver.t", t_);
}

void Solver::enforce_inflow() {
  if (!cfg_.inflow) return;
  const Layout& l = rhs_->layout();
  const int ns = cfg_.mech->n_species();
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = 0; side < 2; ++side) {
      if (cfg_.faces[axis][side].kind != BcKind::nscbc_inflow) continue;
      const bool owns =
          side == 0 ? !rhs_->ops().ghosts().lo[axis] : !rhs_->ops().ghosts().hi[axis];
      if (!owns) continue;
      S3D_REQUIRE(axis == 0 && side == 0,
                  "inflow is supported on the low-x face");
      InflowState s;
      double u_pt[32];
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j) {
          cfg_.inflow(t_, coord(1, j), coord(2, k), s);
          const std::size_t n = l.at(0, j, k);
          // Density continues to float (the outgoing characteristic owns
          // it); velocity, temperature and composition are imposed.
          const double rho = U_.var(UIndex::rho)[n];
          point_to_conserved(*cfg_.mech, rho, s.u, s.v, s.w, s.T,
                             {s.Y.data(), static_cast<std::size_t>(ns)},
                             {u_pt, static_cast<std::size_t>(U_.nv())});
          for (int v = 0; v < U_.nv(); ++v) U_.var(v)[n] = u_pt[v];
        }
    }
  }
}

void Solver::apply_filter() {
  trace::Span sp("solver.filter", "solver");
  const Layout& l = rhs_->layout();
  std::vector<double*> vars;
  for (int v = 0; v < U_.nv(); ++v) vars.push_back(U_.var(v));
  for (int axis = 0; axis < 3; ++axis) {
    if (!l.active(axis)) continue;
    halo_state_->exchange(vars);
    for (double* f : vars) {
      rhs_->ops().filter_axis(f, axis, cfg_.filter_alpha, filt_tmp_.data());
      // Copy filtered interior back.
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j) {
          const std::size_t row = l.at(0, j, k);
          std::copy(filt_tmp_.data() + row, filt_tmp_.data() + row + l.nx,
                    f + row);
        }
    }
  }
}

double Solver::stable_dt() {
  trace::Span sp("solver.stable_dt", "solver");
  // Ensure primitives (and transport fields) reflect the current state.
  rhs_->eval(U_, t_, dU_);
  double dt = rhs_->suggest_dt();
  if (comm_) dt = comm_->allreduce_min(dt);
  return dt;
}

void Solver::run(int nsteps, const std::function<void(int)>& monitor,
                 int dt_every) {
  for (int s = 0; s < nsteps; ++s) {
    if (dt_cached_ < 0.0 || (dt_every > 0 && s % dt_every == 0))
      dt_cached_ = stable_dt();
    step(dt_cached_);
    if (monitor) monitor(s);
  }
}

const Prim& Solver::primitives() {
  prim_from_conserved(*cfg_.mech, U_, rhs_->prim());
  const int ns = cfg_.mech->n_species();
  std::vector<double*> fields = {
      rhs_->prim().rho.data(), rhs_->prim().u.data(), rhs_->prim().v.data(),
      rhs_->prim().w.data(),   rhs_->prim().T.data(), rhs_->prim().p.data(),
      rhs_->prim().Wbar.data()};
  for (int s = 0; s < ns; ++s) fields.push_back(rhs_->prim().Y[s].data());
  halo_state_->exchange(fields);
  return rhs_->prim();
}

}  // namespace s3d::solver
