#include "solver/solver.hpp"

#include <algorithm>
#include <cmath>

#include "resilience/fault.hpp"
#include "trace/trace.hpp"

namespace s3d::solver {

namespace {

// 2N low-storage RK update over one contiguous row, shared by the plain
// per-variable sweep and the fused final pass. noinline pins one
// compiled body so the two traversals cannot round differently (FMA
// formation at -O3 is context-sensitive; see the flux_*_row kernels in
// rhs.cpp for the same pattern).
__attribute__((noinline)) void rk_axpy_row(double* kv, double* uv,
                                           const double* duv, double A,
                                           double B, double dt,
                                           std::size_t n0, int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    kv[n] = A * kv[n] + dt * duv[n];
    uv[n] += B * kv[n];
  }
}

// Embedded-error accumulation rows (adaptive dt, DESIGN.md §13), armed
// steps only. noinline for the same reason as rk_axpy_row: one compiled
// body regardless of call context, so the estimate — which feeds a
// bitwise cross-rank contract through the controller — cannot round
// differently between traversals.
__attribute__((noinline)) void err_first_row(double* ev, const double* kv,
                                             const double* duv, double B,
                                             double dt, std::size_t n0,
                                             int count) {
  // Stage 1: e = B_1 k_1 - dt f(u_n)  (k_1 = dt f(u_n) already).
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    ev[n] = B * kv[n] - dt * duv[n];
  }
}

__attribute__((noinline)) void err_accum_row(double* ev, const double* kv,
                                             double B, std::size_t n0,
                                             int count) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    ev[n] += B * kv[n];
  }
}

/// Linf of |e| / (atol + rtol |u|) over one contiguous run. Max-reduced
/// per block by the caller: order-invariant, so the block norm is
/// identical however the run is split across ranks.
__attribute__((noinline)) double err_norm_run(const double* ev,
                                              const double* uv, double atol,
                                              double rtol, std::size_t n0,
                                              int count) {
  double m = 0.0;
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    const double w = std::abs(ev[n]) / (atol + rtol * std::abs(uv[n]));
    m = std::max(m, w);
  }
  return m;
}

}  // namespace

Solver::Solver(const Config& cfg) : scheme_(numerics::rk_carpenter_kennedy4()) {
  setup(cfg, nullptr, 1, 1, 1);
}

Solver::Solver(const Config& cfg, vmpi::Comm& comm, int px, int py, int pz)
    : scheme_(numerics::rk_carpenter_kennedy4()) {
  setup(cfg, &comm, px, py, pz);
}

void Solver::setup(const Config& cfg, vmpi::Comm* comm, int px, int py,
                   int pz) {
  cfg_ = cfg;
  comm_ = comm;
  cfg_.validate();  // typed ConfigError before any allocation
  S3D_REQUIRE(cfg_.mech != nullptr, "Config.mech must be set");
  const int ns = cfg_.mech->n_species();

  mesh_ = std::make_unique<grid::Mesh>(cfg_.x, cfg_.y, cfg_.z);

  std::array<bool, 3> periodic{cfg_.x.periodic, cfg_.y.periodic,
                               cfg_.z.periodic};
  const grid::AxisSpec* specs[3] = {&cfg_.x, &cfg_.y, &cfg_.z};
  for (int a = 0; a < 3; ++a) {
    if (specs[a]->n <= 1) continue;  // inactive axis: faces are unused
    const bool face_periodic = cfg_.faces[a][0].kind == BcKind::periodic &&
                               cfg_.faces[a][1].kind == BcKind::periodic;
    S3D_REQUIRE(periodic[a] == face_periodic,
                "axis periodicity must match both face BCs");
  }

  Layout l;
  GhostFlags gh;
  if (comm) {
    grid::Decomp dec(mesh_->nx(), mesh_->ny(), mesh_->nz(), px, py, pz);
    S3D_REQUIRE(dec.nranks() == comm->size(),
                "process grid does not match communicator");
    cart_ = std::make_unique<vmpi::Cart>(*comm, px, py, pz, periodic);
    const auto c = cart_->coords();
    std::array<int, 3> ext{};
    for (int a = 0; a < 3; ++a) {
      auto [b, e] = dec.local_range(a, c[a]);
      offset_[a] = b;
      ext[a] = e - b;
    }
    l = Layout::make(ext[0], ext[1], ext[2]);
    for (int a = 0; a < 3; ++a) {
      gh.lo[a] = cart_->neighbor(a, -1) >= 0;
      gh.hi[a] = cart_->neighbor(a, +1) >= 0;
    }
  } else {
    l = Layout::make(mesh_->nx(), mesh_->ny(), mesh_->nz());
    for (int a = 0; a < 3; ++a) {
      gh.lo[a] = periodic[a] && l.active(a);
      gh.hi[a] = gh.lo[a];
    }
  }

  Halo halo = comm ? Halo(l, periodic, comm, cart_.get())
                   : Halo(l, periodic);
  halo_state_ = std::make_unique<Halo>(halo);
  rhs_ = std::make_unique<RhsEvaluator>(cfg_, *mesh_, l, offset_, gh, halo,
                                        comm);

  const int nv = n_conserved(ns);
  U_ = State(l, nv);
  dU_ = State(l, nv);
  k_ = State(l, nv);
  filt_tmp_ = GField(l);
}

void Solver::initialize(const InitFn& init) {
  const Layout& l = rhs_->layout();
  const int ns = cfg_.mech->n_species();
  InflowState s;
  double u_pt[32];
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        double p = cfg_.p_ref;
        init(coord(0, i), coord(1, j), coord(2, k), s, p);
        const double rho = cfg_.mech->density(
            p, s.T, {s.Y.data(), static_cast<std::size_t>(ns)});
        point_to_conserved(*cfg_.mech, rho, s.u, s.v, s.w, s.T,
                           {s.Y.data(), static_cast<std::size_t>(ns)},
                           {u_pt, static_cast<std::size_t>(n_conserved(ns))});
        for (int v = 0; v < U_.nv(); ++v)
          U_.var(v)[l.at(i, j, k)] = u_pt[v];
      }
  t_ = 0.0;
  steps_ = 0;
  dt_cached_ = -1.0;
}

// Fold-point selection for in-pass tripwires (DESIGN.md §10): the
// tripwires must ride the LAST pass that mutates U during a step. When
// the filter runs that step, its commit pass is last (inflow precedes
// it); with no filter and no inflow face the final RK axpy pass is;
// inflow without a filter leaves a host loop last, so there is no fused
// pass to fold into and the sentinel keeps its separate sweep. Only
// Config enters the decision, so every rank folds identically.
Solver::TripFold Solver::tripwire_fold(long next_step) const {
  if (!cfg_.fusion) return TripFold::none;
  const Layout& l = rhs_->layout();
  const bool any_axis = l.active(0) || l.active(1) || l.active(2);
  if (cfg_.filter_interval > 0 && next_step % cfg_.filter_interval == 0 &&
      any_axis)
    return TripFold::filter;
  if (cfg_.inflow)
    for (int a = 0; a < 3; ++a)
      for (int sd = 0; sd < 2; ++sd)
        if (cfg_.faces[a][sd].kind == BcKind::nscbc_inflow)
          return TripFold::none;
  return TripFold::rk;
}

bool Solver::arm_tripwires(const TripwireParams& p) {
  if (tripwire_fold(steps_ + 1) == TripFold::none) return false;
  trip_params_ = p;
  trip_acc_ = TripwireAccum{};
  trip_armed_ = true;
  return true;
}

std::optional<TripwireAccum> Solver::take_tripwires() {
  auto r = trip_result_;
  trip_result_.reset();
  return r;
}

void Solver::step(double dt) {
  if (auto a = fault::probe("solver.step")) fault::apply(a, "solver.step");
  trace::Span sp_step("solver.step", "solver");
  const TripFold fold =
      trip_armed_ ? tripwire_fold(steps_ + 1) : TripFold::none;
  auto k = k_.flat();
  std::fill(k.begin(), k.end(), 0.0);
  pass_stats_.count();  // k zero-fill
  for (int s = 0; s < scheme_.stages(); ++s) {
    trace::Span sp_stage("solver.rk_stage", "solver");
    rhs_->eval(U_, t_ + scheme_.C[s] * dt, dU_);
    const double A = scheme_.A[s], B = scheme_.B[s];
    if (fold == TripFold::rk && s == scheme_.stages() - 1) {
      // Final RK axpy as a fused pass with the tripwire stage riding it:
      // every branch calls the same rk_axpy_row kernel over the same
      // rows, so the committed state is bitwise identical; the armed
      // scan costs no extra sweep.
      trace::Span sp_pass("pass.rk_axpy", "solver");
      const Layout& l = rhs_->layout();
      FusedPointwise pass("pass.rk_axpy");
      for (int v = 0; v < U_.nv(); ++v) {
        double* kv = k_.var(v);
        double* uv = U_.var(v);
        const double* duv = dU_.var(v);
        pass.add("axpy", [=](const RowRange& r) {
          rk_axpy_row(kv, uv, duv, A, B, dt, r.n0, r.count);
        });
      }
      pass.add("tripwire", [this, &l](const RowRange& r) {
        if (r.j < 0 || r.j >= l.ny || r.k < 0 || r.k >= l.nz) return;
        trip_acc_.check_row(U_, trip_params_,
                            r.n0 + static_cast<std::size_t>(0 - r.i0), 0,
                            l.nx, r.j, r.k);
      });
      pass.run_full(l, &pass_stats_);
    } else {
      // Same kernel over the same full-box rows, one variable at a time.
      const Layout& l = rhs_->layout();
      const int ilo = -l.gx, count = l.nx + 2 * l.gx;
      for (int v = 0; v < U_.nv(); ++v) {
        double* kv = k_.var(v);
        double* uv = U_.var(v);
        const double* duv = dU_.var(v);
        for (int kk = -l.gz; kk < l.nz + l.gz; ++kk)
          for (int j = -l.gy; j < l.ny + l.gy; ++j)
            rk_axpy_row(kv, uv, duv, A, B, dt, l.at(ilo, j, kk), count);
      }
      pass_stats_.count(U_.nv());
    }
    if (err_out_) {
      // Armed embedded-error accumulation: one interior sweep per
      // variable per stage, reading the just-committed k (and at stage
      // 1 the stage RHS). Touches no solver field the RK commit reads,
      // so the committed trajectory is untouched.
      const Layout& l = rhs_->layout();
      for (int v = 0; v < U_.nv(); ++v) {
        double* ev = err_.var(v);
        const double* kv = k_.var(v);
        const double* duv = dU_.var(v);
        for (int kk = 0; kk < l.nz; ++kk)
          for (int j = 0; j < l.ny; ++j) {
            const std::size_t n0 = l.at(0, j, kk);
            if (s == 0)
              err_first_row(ev, kv, duv, B, dt, n0, l.nx);
            else
              err_accum_row(ev, kv, B, n0, l.nx);
          }
      }
      pass_stats_.count(U_.nv());
    }
  }
  if (err_out_) {
    // Per-block Linf of the weighted error against the committed RK
    // solution (pre-filter: the estimate judges the integrator, not the
    // dealiasing filter). Block segmentation follows the global tiling,
    // so every cell contributes to the same block on any decomposition.
    err_out_->assign(static_cast<std::size_t>(err_map_->n_blocks()), 0.0);
    for (int v = 0; v < U_.nv(); ++v) {
      const double* ev = err_.var(v);
      const double* uv = U_.var(v);
      err_map_->visit_rows([&](int b, const RowRange& r) {
        double& m = (*err_out_)[static_cast<std::size_t>(b)];
        m = std::max(
            m, err_norm_run(ev, uv, err_atol_, err_rtol_, r.n0, r.count));
      });
    }
    pass_stats_.count(U_.nv());
    err_map_ = nullptr;
    err_out_ = nullptr;  // one-shot
  }
  t_ += dt;
  ++steps_;
  enforce_inflow();
  if (cfg_.filter_interval > 0 && steps_ % cfg_.filter_interval == 0)
    apply_filter(fold == TripFold::filter);
  if (trip_armed_) {
    trip_acc_.step = steps_;
    trip_result_ = trip_acc_;
    trip_armed_ = false;
  }
  trace::gauge_set("solver.t", t_);
}

void Solver::arm_error_estimate(const BlockMap& map, double atol,
                                double rtol, std::vector<double>* out) {
  S3D_REQUIRE(out != nullptr, "arm_error_estimate: out must be non-null");
  if (err_.nv() == 0) err_ = State(rhs_->layout(), U_.nv());
  err_map_ = &map;
  err_atol_ = atol;
  err_rtol_ = rtol;
  err_out_ = out;
}

void Solver::step_region(double dt, std::span<const RowRange> segs) {
  trace::Span sp_step("solver.substep", "solver");
  auto k = k_.flat();
  std::fill(k.begin(), k.end(), 0.0);
  pass_stats_.count();  // k zero-fill
  for (int s = 0; s < scheme_.stages(); ++s) {
    trace::Span sp_stage("solver.rk_stage", "solver");
    rhs_->eval(U_, t_ + scheme_.C[s] * dt, dU_);
    const double A = scheme_.A[s], B = scheme_.B[s];
    FusedPointwise pass("pass.rk_axpy_region");
    for (int v = 0; v < U_.nv(); ++v) {
      double* kv = k_.var(v);
      double* uv = U_.var(v);
      const double* duv = dU_.var(v);
      pass.add("axpy", [=](const RowRange& r) {
        rk_axpy_row(kv, uv, duv, A, B, dt, r.n0, r.count);
      });
    }
    trace::Span sp_pass("pass.rk_axpy_region", "solver");
    pass.run_segments(segs, &pass_stats_);
  }
  t_ += dt;
}

void Solver::enforce_inflow() {
  if (!cfg_.inflow) return;
  const Layout& l = rhs_->layout();
  const int ns = cfg_.mech->n_species();
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = 0; side < 2; ++side) {
      if (cfg_.faces[axis][side].kind != BcKind::nscbc_inflow) continue;
      const bool owns =
          side == 0 ? !rhs_->ops().ghosts().lo[axis] : !rhs_->ops().ghosts().hi[axis];
      if (!owns) continue;
      S3D_REQUIRE(axis == 0 && side == 0,
                  "inflow is supported on the low-x face");
      InflowState s;
      double u_pt[32];
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j) {
          cfg_.inflow(t_, coord(1, j), coord(2, k), s);
          const std::size_t n = l.at(0, j, k);
          // Density continues to float (the outgoing characteristic owns
          // it); velocity, temperature and composition are imposed.
          const double rho = U_.var(UIndex::rho)[n];
          point_to_conserved(*cfg_.mech, rho, s.u, s.v, s.w, s.T,
                             {s.Y.data(), static_cast<std::size_t>(ns)},
                             {u_pt, static_cast<std::size_t>(U_.nv())});
          for (int v = 0; v < U_.nv(); ++v) U_.var(v)[n] = u_pt[v];
        }
    }
  }
}

void Solver::apply_filter(bool fold_tripwires) {
  trace::Span sp("solver.filter", "solver");
  const Layout& l = rhs_->layout();
  std::vector<double*> vars;
  for (int v = 0; v < U_.nv(); ++v) vars.push_back(U_.var(v));
  int last_axis = -1;
  for (int a = 0; a < 3; ++a)
    if (l.active(a)) last_axis = a;
  for (int axis = 0; axis < 3; ++axis) {
    if (!l.active(axis)) continue;
    halo_state_->exchange(vars);
    if (fold_tripwires && axis == last_axis) {
      // Fused commit: filter every variable into its own buffer, then
      // ONE pass copies all interiors back with the tripwire stage
      // riding it — the last mutation of the step, so the accumulated
      // verdict sees exactly the state the separate sweep would.
      if (fbuf_.size() != vars.size()) {
        fbuf_.clear();
        for (std::size_t v = 0; v < vars.size(); ++v) fbuf_.emplace_back(l);
      }
      FusedPointwise pass("pass.filter_commit");
      for (std::size_t v = 0; v < vars.size(); ++v) {
        rhs_->ops().filter_axis(vars[v], axis, cfg_.filter_alpha,
                                fbuf_[v].data());
        pass_stats_.count();
        const double* fv = fbuf_[v].data();
        double* uv = vars[v];
        pass.add("copy_back", [=](const RowRange& r) {
          std::copy(fv + r.n0, fv + r.n0 + r.count, uv + r.n0);
        });
      }
      pass.add("tripwire", [this](const RowRange& r) {
        trip_acc_.check_row(U_, trip_params_, r.n0, r.i0, r.count, r.j,
                            r.k);
      });
      trace::Span sp_pass("pass.filter_commit", "solver");
      pass.run_interior(l, &pass_stats_);
      continue;
    }
    for (double* f : vars) {
      rhs_->ops().filter_axis(f, axis, cfg_.filter_alpha, filt_tmp_.data());
      pass_stats_.count();
      // Copy filtered interior back.
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j) {
          const std::size_t row = l.at(0, j, k);
          std::copy(filt_tmp_.data() + row, filt_tmp_.data() + row + l.nx,
                    f + row);
        }
      pass_stats_.count();
    }
  }
}

double Solver::stable_dt() {
  trace::Span sp("solver.stable_dt", "solver");
  // Ensure primitives (and transport fields) reflect the current state.
  rhs_->eval(U_, t_, dU_);
  double dt = rhs_->suggest_dt();
  if (comm_) dt = comm_->allreduce_min(dt);
  return dt;
}

void Solver::run(int nsteps, const std::function<void(int)>& monitor,
                 int dt_every) {
  for (int s = 0; s < nsteps; ++s) {
    if (dt_cached_ < 0.0 || (dt_every > 0 && s % dt_every == 0))
      dt_cached_ = stable_dt();
    step(dt_cached_);
    if (monitor) monitor(s);
  }
}

const Prim& Solver::primitives() {
  prim_from_conserved(*cfg_.mech, U_, rhs_->prim());
  const int ns = cfg_.mech->n_species();
  std::vector<double*> fields = {
      rhs_->prim().rho.data(), rhs_->prim().u.data(), rhs_->prim().v.data(),
      rhs_->prim().w.data(),   rhs_->prim().T.data(), rhs_->prim().p.data(),
      rhs_->prim().Wbar.data()};
  for (int s = 0; s < ns; ++s) fields.push_back(rhs_->prim().Y[s].data());
  halo_state_->exchange(fields);
  return rhs_->prim();
}

}  // namespace s3d::solver
