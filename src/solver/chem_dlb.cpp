#include "solver/chem_dlb.hpp"

#include <algorithm>
#include <cmath>

#include "trace/trace.hpp"

namespace s3d::solver {

namespace {
// Distinct from the halo tags (100-105) and any collective internals:
// DLB traffic must never match a neighbour-exchange irecv.
constexpr int kTagWork = 7100;
constexpr int kTagResult = 7101;
}  // namespace

std::vector<DlbTransfer> dlb_plan(std::span<const double> loads,
                                  std::span<const double> hot,
                                  double hot_weight, double imbalance_tol) {
  const int P = static_cast<int>(loads.size());
  if (P <= 1) return {};
  double total = 0.0, max_load = 0.0;
  for (int r = 0; r < P; ++r) {
    total += loads[r];
    max_load = std::max(max_load, loads[r]);
  }
  const double avg = total / P;
  if (avg <= 0.0 || max_load <= (1.0 + imbalance_tol) * avg) return {};

  // Donors ship at most their surplus worth of hot cells (and no more
  // than they have); takers accept at most their deficit worth. Sorting
  // by size with rank-ascending tie-breaks keeps the greedy matching a
  // pure, order-stable function of the allreduced vector.
  struct Node {
    int rank;
    long cells;
  };
  std::vector<Node> donors, takers;
  for (int r = 0; r < P; ++r) {
    const double surplus = loads[r] - avg;
    if (surplus > 0.0) {
      const long c = std::min(static_cast<long>(hot[r]),
                              static_cast<long>(surplus / hot_weight));
      if (c > 0) donors.push_back({r, c});
    } else {
      const long c = static_cast<long>(-surplus / hot_weight);
      if (c > 0) takers.push_back({r, c});
    }
  }
  auto by_size = [](const Node& a, const Node& b) {
    if (a.cells != b.cells) return a.cells > b.cells;
    return a.rank < b.rank;
  };
  std::sort(donors.begin(), donors.end(), by_size);
  std::sort(takers.begin(), takers.end(), by_size);

  std::vector<DlbTransfer> plan;
  std::size_t di = 0, ti = 0;
  while (di < donors.size() && ti < takers.size()) {
    const long m = std::min(donors[di].cells, takers[ti].cells);
    if (m > 0) plan.push_back({donors[di].rank, takers[ti].rank, m});
    donors[di].cells -= m;
    takers[ti].cells -= m;
    if (donors[di].cells == 0) ++di;
    if (takers[ti].cells == 0) ++ti;
  }
  return plan;
}

// Never inlined: the per-point chemistry loop, the batched chemistry pass
// and the DLB result scatter all apply sources through this one compiled
// body, so the `+= wdot * W` contraction is identical everywhere
// (DESIGN.md §11).
__attribute__((noinline)) void chem_apply_wdot_cell(State& dUdt,
                                                    std::size_t n,
                                                    const double* wdot,
                                                    const double* W, int ns) {
  for (int s = 0; s < ns - 1; ++s)
    dUdt.var(UIndex::Y0 + s)[n] += wdot[s] * W[s];
}

ChemDlb::ChemDlb(const chem::Mechanism& mech, const Config& cfg,
                 vmpi::Comm& comm)
    : mech_(&mech), bchem_(mech), cfg_(cfg), comm_(&comm) {
  W_.resize(mech.n_species());
  for (int s = 0; s < mech.n_species(); ++s) W_[s] = mech.W(s);
}

const std::vector<std::size_t>& ChemDlb::begin_eval(const Prim& prim,
                                                    const Layout& l) {
  shipped_.clear();
  pending_.clear();
  ++stats_.evals;

  const int P = comm_->size();
  const int me = comm_->rank();

  // 1. Deterministic cost classification in interior traversal order.
  hot_idx_.clear();
  const double* T = prim.T.data();
  long total = 0;
  for (int k = 0; k < l.nz; ++k)
    for (int j = 0; j < l.ny; ++j) {
      const std::size_t row = l.at(0, j, k);
      for (int i = 0; i < l.nx; ++i)
        if (T[row + i] >= cfg_.dlb_hot_T) hot_idx_.push_back(row + i);
      total += l.nx;
    }
  const long nhot = static_cast<long>(hot_idx_.size());
  const double load =
      static_cast<double>(total - nhot) + cfg_.dlb_hot_weight * nhot;
  trace::gauge_set("dlb.load", load);

  // 2. One allreduce; since every rank contributes zeros outside its own
  // slots, the summed vector is exact and identical everywhere.
  std::vector<double> v(static_cast<std::size_t>(2) * P, 0.0);
  v[me] = load;
  v[P + me] = static_cast<double>(nhot);
  comm_->allreduce_sum(std::span<double>(v));

  // 3. Identical plan on every rank.
  const auto plan =
      dlb_plan({v.data(), static_cast<std::size_t>(P)},
               {v.data() + P, static_cast<std::size_t>(P)},
               cfg_.dlb_hot_weight, cfg_.dlb_imbalance_tol);
  if (plan.empty()) return shipped_;
  ++stats_.evals_engaged;

  // 4. Ship first (vmpi isend is buffered, so sends always complete),
  // then serve parcels addressed here; owners collect in finish_eval
  // after their local kernel, overlapping local and remote work.
  std::size_t cursor = 0;
  for (const auto& t : plan)
    if (t.src == me) {
      ship(t, prim, cursor);
      cursor += static_cast<std::size_t>(t.cells);
    }
  for (const auto& t : plan)
    if (t.dst == me) host(t);
  return shipped_;
}

void ChemDlb::ship(const DlbTransfer& t, const Prim& prim,
                   std::size_t hot_cursor) {
  const int ns = mech_->n_species();
  const double* T = prim.T.data();
  const double* rho = prim.rho.data();
  long remaining = t.cells;
  std::size_t pos = hot_cursor;
  while (remaining > 0) {
    const int chunk = static_cast<int>(
        std::min<long>(remaining, cfg_.dlb_parcel_cells));
    work_.resize(static_cast<std::size_t>(2 + ns) * chunk);
    double* w = work_.data();
    for (int c = 0; c < chunk; ++c) {
      const std::size_t n = hot_idx_[pos + c];
      *w++ = T[n];
      *w++ = rho[n];
      for (int s = 0; s < ns; ++s) *w++ = prim.Y[s].data()[n];
    }
    comm_->isend(t.dst, kTagWork, {work_.data(), work_.size()});

    PendingResult pr;
    pr.cell0 = shipped_.size();
    pr.count = chunk;
    pr.buf.resize(static_cast<std::size_t>(chunk) * ns);
    pr.req = comm_->irecv(t.dst, kTagResult, {pr.buf.data(), pr.buf.size()});
    for (int c = 0; c < chunk; ++c) shipped_.push_back(hot_idx_[pos + c]);
    pending_.push_back(std::move(pr));

    ++stats_.parcels_sent;
    stats_.cells_shipped += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  trace::counter_add("dlb.cells_shipped", static_cast<double>(t.cells));
}

void ChemDlb::host(const DlbTransfer& t) {
  const int ns = mech_->n_species();
  long remaining = t.cells;
  while (remaining > 0) {
    const int chunk = static_cast<int>(
        std::min<long>(remaining, cfg_.dlb_parcel_cells));
    work_.resize(static_cast<std::size_t>(2 + ns) * chunk);
    comm_->recv(t.src, kTagWork, {work_.data(), work_.size()});

    host_T_.resize(chunk);
    host_lnT_.resize(chunk);
    host_rho_.resize(chunk);
    host_Y_.resize(static_cast<std::size_t>(chunk) * ns);
    host_wdot_.resize(static_cast<std::size_t>(chunk) * ns);
    const double* w = work_.data();
    for (int c = 0; c < chunk; ++c) {
      host_T_[c] = *w++;
      host_rho_[c] = *w++;
      for (int s = 0; s < ns; ++s)
        host_Y_[static_cast<std::size_t>(c) * ns + s] = *w++;
      // Same double in, same libm out: bitwise identical to the ln T the
      // owner would have staged for this cell.
      // s3dlint:allow(libm): mirrors the owner's staged one-log-per-cell
      host_lnT_[c] = std::log(host_T_[c]);
    }
    bchem_.production_rates_batch(chunk, host_T_.data(), host_lnT_.data(),
                                  host_rho_.data(), host_Y_.data(),
                                  host_wdot_.data());
    comm_->isend(t.src, kTagResult, {host_wdot_.data(), host_wdot_.size()});

    ++stats_.parcels_hosted;
    stats_.cells_hosted += chunk;
    remaining -= chunk;
  }
  trace::counter_add("dlb.cells_hosted", static_cast<double>(t.cells));
}

void ChemDlb::finish_eval(State& dUdt) {
  const int ns = mech_->n_species();
  for (auto& pr : pending_) {
    comm_->wait(pr.req);
    for (int c = 0; c < pr.count; ++c)
      chem_apply_wdot_cell(dUdt, shipped_[pr.cell0 + c],
                           pr.buf.data() + static_cast<std::size_t>(c) * ns,
                           W_.data(), ns);
  }
  pending_.clear();
}

}  // namespace s3d::solver
