#pragma once
// Time-integration driver: owns the mesh, the conserved state, and the RHS
// evaluator; advances with the low-storage Runge-Kutta scheme, applies the
// 10th-order filter, and enforces the (possibly turbulent) inflow plane.

#include <functional>
#include <memory>
#include <optional>

#include <span>
#include <vector>

#include "numerics/rk.hpp"
#include "solver/config.hpp"
#include "solver/dt_control.hpp"
#include "solver/rhs.hpp"

namespace s3d::solver {

class Solver {
 public:
  /// Serial solver over the whole domain.
  explicit Solver(const Config& cfg);

  /// Parallel solver: this rank's share of a (px, py, pz) decomposition.
  Solver(const Config& cfg, vmpi::Comm& comm, int px, int py, int pz);

  /// Apply the initial condition over the local interior.
  void initialize(const InitFn& init);

  /// One RK step of size dt at the current time.
  void step(double dt);

  /// One RK step of size dt committing ONLY the listed interior row
  /// segments (stiff-region subcycling, DESIGN.md §13). Every stage
  /// still evaluates the full-domain RHS — the masked cells read the
  /// committed far field through the ordinary ghost machinery, which is
  /// the conservative, rank-invariant seam coupling — but the commits
  /// run through the same noinline rk_axpy_row kernel restricted to the
  /// segments, so a masked cell's update is bitwise the update a full
  /// step would have given it against the same surroundings. Advances
  /// the clock by dt; the step counter, filter, and inflow imposition
  /// stay with the caller (the escalation ladder owns that
  /// bookkeeping). Collective when parallel: every rank must call it
  /// the same number of times (an empty segment list is fine — the RHS
  /// halo exchanges and DLB collectives still participate).
  void step_region(double dt, std::span<const RowRange> segs);

  /// Arm the embedded-error estimator for the NEXT step(): accumulate
  /// e = sum_s B_s k_s - dt f(u_n) alongside the RK commits (the CK4
  /// solution minus the embedded forward-Euler solution sharing stage
  /// 1 — a first-order embedded estimate costing no extra RHS
  /// evaluation), then reduce per-block Linf norms of
  /// |e| / (atol + rtol |u_{n+1}|) into `out`, indexed by block id
  /// (0 where this rank owns no cell: the identity of the collective
  /// max-reduce the controller applies). One-shot — the step clears the
  /// arming. Unarmed steps skip every estimator sweep and stay
  /// bit-identical to a build without the estimator.
  void arm_error_estimate(const BlockMap& map, double atol, double rtol,
                          std::vector<double>* out);

  /// Advance `nsteps` with automatic dt (re-estimated every `dt_every`
  /// steps); invokes monitor(step_index) when provided.
  void run(int nsteps, const std::function<void(int)>& monitor = {},
           int dt_every = 5);

  /// Stable dt from the current state (parallel-reduced when parallel).
  double stable_dt();

  double time() const { return t_; }
  int steps_taken() const { return steps_; }
  /// Restore clock/step counter (restart-file loading). Invalidates the
  /// cached dt: the restored state need not resemble the one the cache
  /// was computed from.
  void set_time(double t, int steps) {
    t_ = t;
    steps_ = steps;
    invalidate_dt_cache();
  }

  /// Drop the cached automatic dt so the next run() re-estimates it from
  /// the current state. Must be called whenever the state is replaced
  /// behind the solver's back (restart load, health-sentinel rollback):
  /// a dt computed from the pre-restore state can exceed the stable dt
  /// of the restored one.
  void invalidate_dt_cache() { dt_cached_ = -1.0; }
  /// Cached automatic dt from the last run() estimation, or -1 when the
  /// cache is invalid (regression hook for the invalidation contract).
  double cached_dt() const { return dt_cached_; }

  /// Recompute primitives from the current conserved state (diagnostics;
  /// ghost shells are re-exchanged too) and return them.
  const Prim& primitives();

  State& state() { return U_; }
  const State& state() const { return U_; }
  const Layout& layout() const { return rhs_->layout(); }
  const grid::Mesh& mesh() const { return *mesh_; }
  RhsEvaluator& rhs() { return *rhs_; }
  const RhsEvaluator& rhs() const { return *rhs_; }
  /// Global index offset of the local box.
  std::array<int, 3> offset() const { return offset_; }

  /// Physical coordinate of local interior index along an axis.
  double coord(int axis, int local_idx) const {
    return mesh_->coord(axis, offset_[axis] + local_idx);
  }

  /// Arm the conserved-state tripwires to ride the final fused pass of
  /// the NEXT step() (DESIGN.md §10): the filter's commit pass when the
  /// filter runs that step, else the final RK axpy pass. Returns false
  /// when no fused pass is last (fusion off, or an inflow face mutates
  /// the state after the last pass) — the caller keeps its separate
  /// sweep then. The decision derives only from Config, so every rank
  /// of a decomposition folds identically.
  bool arm_tripwires(const TripwireParams& p);
  /// Tripwire verdict accumulated by the last armed step (cleared).
  std::optional<TripwireAccum> take_tripwires();

  /// Sweep accounting for the integrator's own passes (RK axpy, filter);
  /// add RhsEvaluator::pass_stats() for the full per-step plan.
  const PassStats& pass_stats() const { return pass_stats_; }
  void reset_pass_stats() { pass_stats_.reset(); }

 private:
  enum class TripFold { none, rk, filter };
  TripFold tripwire_fold(long next_step) const;
  void setup(const Config& cfg, vmpi::Comm* comm, int px, int py, int pz);
  void enforce_inflow();
  void apply_filter(bool fold_tripwires = false);

  Config cfg_;
  const BlockMap* err_map_ = nullptr;   ///< armed error-estimate tiling
  double err_atol_ = 0.0, err_rtol_ = 0.0;
  std::vector<double>* err_out_ = nullptr;
  State err_;  ///< embedded-error register (allocated on first arming)
  std::unique_ptr<grid::Mesh> mesh_;
  std::unique_ptr<vmpi::Cart> cart_;
  vmpi::Comm* comm_ = nullptr;
  std::array<int, 3> offset_{0, 0, 0};
  std::unique_ptr<RhsEvaluator> rhs_;
  std::unique_ptr<Halo> halo_state_;  ///< for filtering U
  State U_, dU_, k_;
  GField filt_tmp_;
  /// Per-variable filter buffers for the fused commit pass (lazily
  /// allocated the first time a tripwire-armed step filters).
  std::vector<GField> fbuf_;
  numerics::RkScheme scheme_;
  PassStats pass_stats_;
  bool trip_armed_ = false;
  TripwireParams trip_params_;
  TripwireAccum trip_acc_;
  std::optional<TripwireAccum> trip_result_;
  double t_ = 0.0;
  double dt_cached_ = -1.0;
  int steps_ = 0;
};

}  // namespace s3d::solver
