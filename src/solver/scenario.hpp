#pragma once
// Scenario plugin registry (DESIGN.md §15): every ready-made case from
// src/solver/cases.* registers a name, a typed parameter schema, and a
// CaseSetup factory, so workloads are selected and parameterized by
// string key=value pairs ("config, not code") instead of per-example
// driver programs. The registry is a deterministic ordered map (the
// s3dlint unordered-container rule applies to this TU), names() is
// sorted, and every built CaseSetup passes Config::validate() before it
// reaches a caller — a malformed override is a typed ConfigError naming
// the exact "scenario.<name>.<key>" field, an unknown name a typed
// ScenarioError listing what IS registered.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "solver/cases.hpp"

namespace s3d::solver {

/// Thrown for unknown scenario names (the message lists every registered
/// name) and for duplicate registrations.
class ScenarioError : public Error {
 public:
  explicit ScenarioError(const std::string& what) : Error(what) {}
};

/// One declared scenario parameter: key, type, printable default, and —
/// for numeric kinds — the closed validity range enforced before the
/// factory runs.
struct ParamSpec {
  enum class Kind { integer, real, boolean, text };
  std::string key;
  Kind kind = Kind::real;
  std::string def;   ///< printable default (schema listings, --describe)
  double min = 0.0;  ///< numeric kinds: inclusive range
  double max = 0.0;
  std::string help;
};

/// Ordered key -> value override map ("nx" -> "48"). Ordered so schema
/// application and error reporting are deterministic.
using ParamMap = std::map<std::string, std::string>;

/// A registered scenario: name, schema, and the CaseSetup factory. The
/// factory receives overrides that already passed key-membership
/// checking; its typed setters re-parse and range-check each value,
/// throwing ConfigError("scenario.<name>.<key>", why) on violation.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ParamSpec> schema;
  std::function<CaseSetup(const ParamMap&)> make;
};

/// Process-wide scenario registry. The built-in scenarios register in
/// the constructor; user code may add() more (duplicate names throw).
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  void add(Scenario sc);
  bool contains(const std::string& name) const;
  const Scenario& at(const std::string& name) const;
  /// Registered names, sorted (the map order).
  std::vector<std::string> names() const;

  /// Validate `overrides` against the schema (unknown keys, parse
  /// failures and range violations are typed ConfigErrors), run the
  /// factory, then run Config::validate() on the result.
  CaseSetup build(const std::string& name,
                  const ParamMap& overrides = {}) const;

 private:
  ScenarioRegistry();
  std::map<std::string, Scenario> map_;
};

// --- Typed parameter parsing (shared with the analysis registry and the
//     scenario-runner CLI) ---

/// Strict full-string parses; failures throw ConfigError(field, why).
long parse_int_param(const std::string& field, const std::string& v);
double parse_real_param(const std::string& field, const std::string& v);
bool parse_bool_param(const std::string& field, const std::string& v);

/// Split one "key=value" token into `into` (later duplicates win).
/// Malformed tokens (no '=', empty key) throw ConfigError(field, why).
void parse_kv(const std::string& field, const std::string& arg,
              ParamMap& into);

}  // namespace s3d::solver
