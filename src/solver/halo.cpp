#include "solver/halo.hpp"

#include <cstring>

#include "trace/trace.hpp"

namespace s3d::solver {

Halo::Halo(const Layout& l, std::array<bool, 3> periodic)
    : l_(l), periodic_(periodic) {}

Halo::Halo(const Layout& l, std::array<bool, 3> periodic, vmpi::Comm* comm,
           const vmpi::Cart* cart)
    : l_(l), periodic_(periodic), comm_(comm), cart_(cart) {}

namespace {

// Visit all (i, j, k) of a slab: `axis` runs over [a_begin, a_end), the
// orthogonal axes run over their full ghosted extents.
template <typename Fn>
void slab(const Layout& l, int axis, int a_begin, int a_end, Fn&& fn) {
  const int a1 = (axis + 1) % 3, a2 = (axis + 2) % 3;
  int ijk[3];
  for (int q = -l.g(a2); q < l.n(a2) + l.g(a2); ++q) {
    for (int r = -l.g(a1); r < l.n(a1) + l.g(a1); ++r) {
      for (int s = a_begin; s < a_end; ++s) {
        ijk[axis] = s;
        ijk[a1] = r;
        ijk[a2] = q;
        fn(ijk[0], ijk[1], ijk[2]);
      }
    }
  }
}

}  // namespace

void Halo::exchange_axis_local(double* f, int axis) {
  const int n = l_.n(axis), g = l_.g(axis);
  // Low ghosts <- high interior; high ghosts <- low interior.
  slab(l_, axis, -g, 0, [&](int i, int j, int k) {
    int src[3] = {i, j, k};
    src[axis] += n;
    f[l_.at(i, j, k)] = f[l_.at(src[0], src[1], src[2])];
  });
  slab(l_, axis, n, n + g, [&](int i, int j, int k) {
    int src[3] = {i, j, k};
    src[axis] -= n;
    f[l_.at(i, j, k)] = f[l_.at(src[0], src[1], src[2])];
  });
}

void Halo::exchange_axis_parallel(const std::vector<double*>& fields,
                                  int axis) {
  const int n = l_.n(axis), g = l_.g(axis);
  const int nb_lo = cart_->neighbor(axis, -1);
  const int nb_hi = cart_->neighbor(axis, +1);

  // Pack order: for each field, slab points in deterministic order.
  auto pack = [&](int a_begin, int a_end) {
    std::vector<double> buf;
    buf.reserve(fields.size() * g * l_.total() / std::max(l_.n(axis), 1));
    for (double* f : fields)
      slab(l_, axis, a_begin, a_end,
           [&](int i, int j, int k) { buf.push_back(f[l_.at(i, j, k)]); });
    return buf;
  };
  auto unpack = [&](const std::vector<double>& buf, int a_begin, int a_end) {
    std::size_t p = 0;
    for (double* f : fields)
      slab(l_, axis, a_begin, a_end,
           [&](int i, int j, int k) { f[l_.at(i, j, k)] = buf[p++]; });
    S3D_ASSERT(p == buf.size());
  };

  const int tag_up = 100 + axis * 2;      // data moving toward +axis
  const int tag_down = 101 + axis * 2;    // data moving toward -axis

  std::vector<double> send_hi, send_lo, recv_lo_buf, recv_hi_buf;
  std::vector<vmpi::Request> reqs;

  const std::size_t slab_elems =
      fields.size() * static_cast<std::size_t>(g) *
      (l_.n((axis + 1) % 3) + 2 * l_.g((axis + 1) % 3)) *
      (l_.n((axis + 2) % 3) + 2 * l_.g((axis + 2) % 3));

  if (nb_hi >= 0) {
    send_hi = pack(n - g, n);  // my top interior -> neighbour's low ghosts
    reqs.push_back(comm_->isend(nb_hi, tag_up, send_hi));
    recv_hi_buf.resize(slab_elems);
    reqs.push_back(comm_->irecv(nb_hi, tag_down, recv_hi_buf));
  }
  if (nb_lo >= 0) {
    send_lo = pack(0, g);  // my bottom interior -> neighbour's high ghosts
    reqs.push_back(comm_->isend(nb_lo, tag_down, send_lo));
    recv_lo_buf.resize(slab_elems);
    reqs.push_back(comm_->irecv(nb_lo, tag_up, recv_lo_buf));
  }
  const std::size_t sent = (send_hi.size() + send_lo.size()) * sizeof(double);
  trace::counter_add("halo.bytes", static_cast<double>(sent));
  {
    trace::Span wait_sp("halo.wait", "halo");
    wait_sp.set_bytes(sent);
    comm_->waitall(reqs);
  }
  if (nb_lo >= 0) unpack(recv_lo_buf, -g, 0);
  if (nb_hi >= 0) unpack(recv_hi_buf, n, n + g);
}

void Halo::exchange(const std::vector<double*>& fields) {
  trace::Span sp("halo.exchange", "halo");
  for (int axis = 0; axis < 3; ++axis) {
    if (!l_.active(axis)) continue;
    if (comm_ && cart_) {
      // A rank that is its own neighbour (single rank along a periodic
      // axis) wraps locally.
      const bool self_lo = cart_->neighbor(axis, -1) == comm_->rank();
      const bool self_hi = cart_->neighbor(axis, +1) == comm_->rank();
      if (self_lo && self_hi) {
        for (double* f : fields) exchange_axis_local(f, axis);
      } else if (cart_->neighbor(axis, -1) >= 0 ||
                 cart_->neighbor(axis, +1) >= 0) {
        exchange_axis_parallel(fields, axis);
      }
    } else if (periodic_[axis]) {
      for (double* f : fields) exchange_axis_local(f, axis);
    }
  }
}

void Halo::exchange_fields(const std::vector<GField*>& fields) {
  std::vector<double*> raw;
  raw.reserve(fields.size());
  for (GField* f : fields) raw.push_back(f->data());
  exchange(raw);
}

}  // namespace s3d::solver
