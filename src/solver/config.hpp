#pragma once
// Solver configuration: domain, chemistry, boundary conditions, numerics
// parameters. One Config fully describes a run (the paper's "problem
// configuration" sections 6.2 / 7.2).

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "chem/mechanism.hpp"
#include "common/error.hpp"
#include "grid/mesh.hpp"

namespace s3d::solver {

/// Thrown by Config::validate(): a malformed run configuration, named by
/// the offending field so drivers can report exactly what to fix.
class ConfigError : public Error {
 public:
  ConfigError(std::string field, const std::string& why)
      : Error("invalid Config." + field + ": " + why),
        field_(std::move(field)) {}
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// Boundary treatment of one face (paper section 2.6: NSCBC).
enum class BcKind {
  periodic,        ///< wrap (both faces of the axis must be periodic)
  nscbc_outflow,   ///< subsonic non-reflecting outflow, pressure relaxation
  nscbc_inflow,    ///< subsonic inflow: u, v, w, T, Y imposed, rho floats
};

/// Per-face boundary spec.
struct FaceBc {
  BcKind kind = BcKind::periodic;
  double p_target = 101325.0;  ///< far-field pressure for outflow faces
  double sigma = 0.25;         ///< outflow relaxation coefficient
  /// Absorbing-layer width [m] ahead of an outflow face (0 = none). The
  /// reduced-order boundary closures stall outgoing waves; a cubic-ramped
  /// sponge that relaxes pressure toward p_target absorbs them first. The
  /// relaxation preserves T, Y and u (target state is (p_target/p) U).
  double sponge_width = 0.0;
  double sponge_strength = 1.0;  ///< multiplies c/width at the wall
};

/// The primitive state an inflow face imposes at a boundary point.
struct InflowState {
  double u = 0.0, v = 0.0, w = 0.0;
  double T = 300.0;
  /// Mass fractions, size = mechanism species count.
  std::array<double, chem::kMaxSpecies> Y{};
};

/// Inflow generator: fills `s` for boundary point (y, z) at time t.
using InflowFn =
    std::function<void(double t, double y, double z, InflowState& s)>;

/// Initial condition: fills the primitive state and pressure at (x, y, z).
using InitFn = std::function<void(double x, double y, double z,
                                  InflowState& s, double& p)>;

/// Molecular-transport closure used by the RHS.
enum class TransportModel {
  /// Full mixture-averaged model (paper eqs. 14, 17-20): kinetic-theory
  /// fits, Wilke viscosity, Mathur conductivity, per-species D_i^mix.
  mixture_averaged,
  /// Wilke/Mathur mu and lambda, species diffusivities from constant
  /// per-species Lewis numbers calibrated at a reference state (a standard
  /// S3D option; much cheaper in the inner loop).
  constant_lewis,
  /// Power-law mu(T), constant Prandtl and Lewis numbers; the classic
  /// cheap DNS closure, used by the scaled-down benchmark runs.
  power_law,
};

/// Checkpoint-store policy (DESIGN.md §12): how the unified delta
/// checkpoint store behind SnapshotRing and RestartSeries encodes and
/// persists generations.
struct CkptOptions {
  /// Delta generations: a full "base" image every base_every generations
  /// with block-level dirty deltas (per-block checksums) in between, so
  /// deeper rings and longer series fit the memory/disk budget. Off:
  /// every generation is a full base image (the PR-2 behavior).
  bool delta = true;
  int base_every = 4;  ///< generations between full base images
  int block = 1024;    ///< delta block granule [doubles]
  /// Write-behind persistence: RestartSeries::write costs one bounded
  /// enqueue on the step path and a dedicated persister thread drains
  /// the queue through the retry/backoff policy below. Off (default):
  /// writes are synchronous — fully durable when write() returns, which
  /// is what the recovery drivers' generation-vote barrier assumes.
  bool write_behind = false;
  int queue_depth = 4;      ///< bounded persist queue (enqueue blocks when full)
  int persist_retries = 3;  ///< attempts per generation ("checkpoint.persist")
  double backoff_ms = 1.0;       ///< first-retry delay (real time)
  double backoff_cap_ms = 16.0;  ///< backoff ceiling
};

/// Per-block adaptive time integration (DESIGN.md §13): a PI error
/// controller over a fixed global block tiling drives per-block dt from
/// embedded RK error estimates; blocks whose dt falls below the global
/// step subcycle locally while the far field takes one step, and health
/// breaches recover through an escalation ladder (subcycle the breaching
/// block → localized rollback → global rollback with dt halving →
/// restart series) instead of always rolling the whole domain back.
/// The controller state is reduced collectively (one allreduce over the
/// block vector) so every rank holds the identical block→dt map bitwise.
/// Off by default: a disarmed run is bit-identical to the pre-adaptive
/// stepper. Building with -DS3D_ADAPTIVE=OFF hard-disables the ladder
/// (the build-noadapt verify lane proves the OFF path matches the
/// global-halving goldens).
struct AdaptiveOptions {
  bool enabled = false;
  /// Cells per axis of one controller block. The tiling is over GLOBAL
  /// interior indices, so block ids — and the block→dt map — do not
  /// depend on the rank decomposition.
  int block = 8;
  /// Embedded-error weights: the per-block norm is the max over cells
  /// and conserved variables of |e| / (atol + rtol |u|). Both are
  /// scalar weights over SI-unit conserved variables (tune per
  /// problem); the defaults are deliberately permissive — a healthy
  /// CFL-limited step sits an order below tolerance, while a block
  /// drifting toward blow-up overshoots it by orders of magnitude.
  /// The absolute floor also keeps sign-changing variables (momentum)
  /// from flagging their zero crossings, where rtol |u| vanishes.
  double atol = 1.0;
  double rtol = 1e-2;
  /// PI gains: dt ratio update factor = safety * E^-(kI+kP) * E_prev^kP
  /// on the normalized block error E (E = 1 means at tolerance).
  double kI = 0.35;
  double kP = 0.20;
  double safety = 0.9;
  /// Per-block dt as a fraction of the global step, clamped to
  /// [dt_min_ratio, dt_max_ratio]; a ratio below 1 marks the block
  /// stiff and it subcycles at ceil(1/ratio) substeps (capped).
  double dt_min_ratio = 0.0625;
  double dt_max_ratio = 1.0;
  int subcycle_cap = 16;
  /// Clamp each block's dt by its own CFL/Fourier stable dt too (the
  /// per-block refinement of RhsEvaluator::suggest_dt). Off by default:
  /// with an automatic global dt the clamp can never bind (the global
  /// dt is already the min over blocks); it matters under dt_fixed.
  bool cfl_clamp = false;
  /// Escalation-ladder budgets: rung-1 subcycle retries per breach
  /// episode (consecutive breaches without an intervening clean scan)
  /// before widening to rung 2, and total rung-2 localized rollbacks
  /// per run before a breach escalates straight to the global rung.
  int max_subcycle_retries = 2;
  int max_local_rollbacks = 8;
  /// Clean scans after a global-rung dt halving before the controller-
  /// chosen dt scale (1.0) is restored; 0 keeps the halved dt for the
  /// rest of the run (the legacy behavior).
  int dt_recover_after = 2;

  /// Typed ConfigError ("<prefix>.field") for malformed knobs.
  void validate(const std::string& prefix) const;
};

struct Config {
  grid::AxisSpec x{1, 1.0, true};
  grid::AxisSpec y{1, 1.0, true};
  grid::AxisSpec z{1, 1.0, true};

  std::shared_ptr<const chem::Mechanism> mech;

  TransportModel transport = TransportModel::mixture_averaged;
  /// Reference state for calibrating constant-Lewis / power-law closures.
  double T_ref = 800.0;
  double p_ref = 101325.0;
  double Pr = 0.708;        ///< Prandtl number for power_law
  double visc_exp = 0.7;    ///< mu ~ (T/T_ref)^visc_exp for power_law

  /// faces[axis][side]: side 0 = low, 1 = high.
  std::array<std::array<FaceBc, 2>, 3> faces{};

  InflowFn inflow;  ///< required when any face is nscbc_inflow

  double cfl = 0.8;            ///< acoustic CFL number
  double fourier = 0.4;        ///< diffusive stability number
  double filter_alpha = 0.999; ///< filter strength (paper: 10th-order)
  int filter_interval = 1;     ///< apply filter every N steps

  bool include_viscous = true;   ///< viscous + diffusive terms on/off
  bool include_chemistry = true;
  /// Soret (thermal diffusion) term of paper eq. 16, with constant
  /// per-species thermal-diffusion ratios (significant for H2/H; the
  /// paper notes Soret matters mainly for premixed flames).
  bool include_soret = false;

  /// Characteristic domain length for outflow relaxation K (defaults to
  /// x-length when 0).
  double L_relax = 0.0;

  /// Fused-pass execution (DESIGN.md §10): evaluate the RHS and RK
  /// stages as a small list of fused, cache-blocked sweeps (batched
  /// derivatives, fused flux assembly/divergence, in-pass health
  /// tripwires). Bitwise identical to the unfused reference path, which
  /// remains selectable here; building with -DS3D_FUSION=OFF flips the
  /// default so an entire test lane exercises the reference path.
#ifdef S3D_FUSION_OFF
  bool fusion = false;
#else
  bool fusion = true;
#endif

  /// Row-batched chemistry/transport kernels (DESIGN.md §11): stage the
  /// shared per-cell quantities (ln T, Gibbs energies, concentrations)
  /// over contiguous rows and ride the fused traversal as passes.*
  /// stages, instead of per-point calls that re-derive them. Effective
  /// only with `fusion` on (the unfused path IS the per-point
  /// reference). Bitwise identical to per-point — the batched and
  /// per-point paths execute the same compiled kernel bodies — which
  /// ctest -L equivalence and the golden fused/unfused cross-check pin.
  /// Building with -DS3D_BATCH=OFF flips the default so the per-point
  /// reference stays continuously tested.
#ifdef S3D_BATCH_OFF
  bool batching = false;
#else
  bool batching = true;
#endif

  /// Chemistry dynamic load balancing over vmpi (DESIGN.md §11): when
  /// reacting cells concentrate in a few ranks' subdomains, overloaded
  /// ranks pack surplus hot cells into work parcels, ship them to
  /// underloaded ranks, and scatter the returned rates back. The
  /// assignment is deterministic and seed-free — every rank derives the
  /// identical transfer plan from one allreduced cost vector, and the
  /// shipped cells run the same compiled kinetics kernel — so any rank
  /// count reproduces the serial answer bitwise (test_rank_invariance
  /// pins it). Engages only when size > 1 and the measured imbalance
  /// exceeds dlb_imbalance_tol. -DS3D_DLB=OFF flips the build default
  /// (the build-nodlb verify lane).
#ifdef S3D_DLB_OFF
  bool chem_dlb = false;
#else
  bool chem_dlb = true;
#endif
  /// Cells with T >= dlb_hot_T count as "hot" (reacting) in the DLB
  /// cost model; the threshold reads the resolved temperature field, so
  /// the classification is identical on every rank count.
  double dlb_hot_T = 1200.0;
  /// Modeled chemistry cost of a hot cell relative to a cold one.
  double dlb_hot_weight = 8.0;
  /// Engage DLB only when max rank load > (1 + tol) * mean load.
  double dlb_imbalance_tol = 0.10;
  /// Max cells per shipped work parcel (bounds message size).
  int dlb_parcel_cells = 64;

  /// Prim-boundary mass-fraction repair (see PrimOptions in state.hpp):
  /// renormalize clipped Y vectors whose explicit species sum past one,
  /// instead of only zeroing the implied last species. Changes the
  /// trajectory, so it is off by default and never applied silently.
  bool y_renormalize = false;
  /// Count prim-boundary clip events into the `health.y_clip` trace
  /// counter (and collect Newton convergence stats each RHS evaluation).
  bool count_y_clips = false;

  /// Checkpoint-store policy for the snapshot ring and restart series
  /// built from this configuration (run_guarded / run_resilient pass it
  /// through; ResilienceConfig::store overrides it per driver).
  CkptOptions checkpoint;

  /// Per-block adaptive time integration policy (DESIGN.md §13) for
  /// guarded runs of this configuration (GuardOptions::adaptive and
  /// ResilienceConfig::adaptive override it per driver).
  AdaptiveOptions adaptive;

  /// Check the configuration for malformed values (non-positive grid
  /// dims or lengths, missing/empty mechanism, bad CFL / Fourier /
  /// filter factors, face inconsistencies); throws ConfigError naming
  /// the offending field. Solver construction calls this, so every
  /// driver gets the typed report before any allocation.
  void validate() const;
};

}  // namespace s3d::solver
