#pragma once
// Right-hand-side assembly for the compressible reacting Navier-Stokes
// equations in conservative form (paper eqs. 1-4):
//
//   d(rho)/dt    = -div(rho u)
//   d(rho u)/dt  = -div(rho u u) - grad p + div tau
//   d(rho e0)/dt = -div(u (rho e0 + p)) + div(tau . u) - div q
//   d(rho Y)/dt  = -div(rho Y u) - div J + W wdot
//
// with tau from eq. 14, J from the mixture-averaged model eqs. 18-19 plus
// the correction velocity that enforces eq. 15, and q from eq. 20.
//
// Evaluation order per call (which is also S3D's structure):
//   1. primitives from U (interior), 2. halo exchange of primitives,
//   3. gradients + transport + diffusive fluxes (interior),
//   4. halo exchange of diffusive fluxes, 5. total flux divergences and
//      chemistry, 6. NSCBC boundary corrections.

#include <array>
#include <functional>
#include <memory>
#include <span>

#include "chem/batched.hpp"
#include "solver/chem_dlb.hpp"
#include "solver/config.hpp"
#include "solver/field_ops.hpp"
#include "solver/halo.hpp"
#include "solver/passes.hpp"
#include "solver/state.hpp"
#include "transport/transport.hpp"

namespace s3d::solver {

/// Per-kernel wall-clock accounting (feeds the paper's fig. 2 profile).
struct RhsTimers {
  double primitives = 0.0;
  double halo = 0.0;
  double gradients = 0.0;
  double transport_props = 0.0;
  double diffusive_flux = 0.0;
  double reaction_rate = 0.0;
  double convective = 0.0;
  double boundary = 0.0;
  int evals = 0;
};

class BlockMap;  // dt_control.hpp: the adaptive controller's global tiling

class RhsEvaluator {
 public:
  /// `offset`: global index of this rank's first interior point per axis;
  /// `ghosts`: which sides have exchanged ghost shells; `halo` performs
  /// the exchanges (serial or parallel). `comm` (optional) enables the
  /// chemistry dynamic-load-balancing layer when Config::chem_dlb is on
  /// and the communicator spans more than one rank.
  RhsEvaluator(const Config& cfg, const grid::Mesh& mesh, const Layout& l,
               std::array<int, 3> offset, GhostFlags ghosts, Halo halo,
               vmpi::Comm* comm = nullptr);

  /// Evaluate dU/dt at time t. Interiors of dUdt are written; its ghost
  /// entries are zeroed.
  void eval(const State& U, double t, State& dUdt);

  /// Primitive fields from the most recent eval (valid incl. exchanged
  /// ghost shells).
  const Prim& prim() const { return prim_; }
  Prim& prim() { return prim_; }

  /// Stable time step from the most recent primitives: acoustic CFL plus
  /// diffusive limit (serial estimate; reduce across ranks for parallel).
  double suggest_dt() const;

  /// Per-block refinement of suggest_dt() (adaptive dt, DESIGN.md §13):
  /// min stable dt over this rank's cells of each controller block, 1e300
  /// where the rank owns none. Same per-cell arithmetic as suggest_dt()
  /// (the global estimate equals the min over this vector), feeding the
  /// controller's per-block CFL clamp. `out` must hold map.n_blocks().
  void suggest_dt_blocks(const BlockMap& map, std::span<double> out) const;

  const RhsTimers& timers() const { return timers_; }
  void reset_timers() { timers_ = RhsTimers{}; }

  /// Sweep accounting for the pass plan (both paths count, so
  /// bench_fusion can report sweeps saved by fusion).
  const PassStats& pass_stats() const { return pass_stats_; }
  void reset_pass_stats() { pass_stats_.reset(); }

  /// Chemistry DLB execution statistics, or nullptr when the layer is
  /// not armed (serial run, single rank, or Config::chem_dlb off).
  const DlbStats* dlb_stats() const {
    return dlb_ ? &dlb_->stats() : nullptr;
  }

  const Layout& layout() const { return l_; }
  const FieldOps& ops() const { return ops_; }
  const chem::Mechanism& mech() const { return *cfg_.mech; }
  const Config& config() const { return cfg_; }

 private:
  /// Shared per-cell stable-dt scan: sink(dt_cell, i, j, k) over the
  /// interior. suggest_dt() and suggest_dt_blocks() both reduce it (by
  /// min), so the two estimates cannot drift apart.
  void scan_cell_dt(
      const std::function<void(double, int, int, int)>& sink) const;
  void compute_transport_point(double T, double lnT, double rho, double cp,
                               const double* X, double& mu, double& lam,
                               double* D) const;
  void eval_diffusive_pointwise();
  void eval_diffusive_batched();
  void eval_chemistry(State& dUdt);
  void eval_convective_fused(const State& U, State& dUdt);
  void apply_nscbc(const State& U, double t, State& dUdt);
  void nscbc_face(const State& U, double t, State& dUdt, int axis, int side);
  void apply_sponges(const State& U, State& dUdt);

  Config cfg_;
  const grid::Mesh* mesh_;
  Layout l_;
  std::array<int, 3> offset_;
  GhostFlags ghosts_;
  FieldOps ops_;
  Halo halo_;
  std::shared_ptr<const chem::Mechanism> mech_;
  transport::TransportFits fits_;

  Prim prim_;
  // Work fields.
  std::array<std::array<GField, 3>, 3> dudx_;  ///< dudx_[comp][axis]
  std::array<GField, 3> gradW_;
  std::array<GField, 3> gradT_;
  std::vector<std::array<GField, 3>> J_;  ///< per species, per axis
  std::array<std::array<GField, 3>, 3> tau_;
  std::array<GField, 3> q_;
  GField mu_f_, lam_f_;
  /// Staged ln T field for the batched kernels: written once per
  /// evaluation (transport pass, or the chemistry pass when viscous
  /// terms are off) and reused by every consumer of std::log(T).
  GField lnT_f_;
  GField flux_tmp_, deriv_tmp_;
  /// Per-variable flux buffers for the fused convective pass (allocated
  /// only when Config::fusion): one assemble pass writes all nv fluxes,
  /// one batched divergence pass consumes them.
  std::vector<GField> flux_bufs_;

  std::vector<double> Le_;       ///< constant Lewis numbers
  double mu_ref_pl_ = 1.8e-5;    ///< power-law reference viscosity
  std::vector<int> active_axes_;

  /// Row-batched kernels engage only on the fused plan: the unfused
  /// path IS the per-point reference (Config::batching docs).
  bool use_batching_ = false;
  chem::BatchedChemistry bchem_;
  std::unique_ptr<ChemDlb> dlb_;
  std::vector<double> Wvec_;         ///< species molecular weights
  std::vector<double> soret_ratio_;  ///< per-species Soret ratios
  std::vector<const double*> Yptr_;  ///< prim_.Y[s] base pointers
  // Row scratch for the batched passes (cell-major, l_.nx cells max).
  std::vector<double> row_X_, row_Y_, row_D_, row_wdot_;
  // Pointer tables for the shared diffusive row kernels ([a*3+b], [s*3+a]).
  std::array<const double*, 9> dudx_p_{};
  std::array<double*, 9> tau_p_{};
  std::array<const double*, 3> gradW_p_{}, gradT_p_{};
  std::array<double*, 3> q_p_{};
  std::vector<double*> J_p_;

  RhsTimers timers_;
  PassStats pass_stats_;
};

}  // namespace s3d::solver
