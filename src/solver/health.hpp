#pragma once
// Numerical health sentinel with collective rollback-and-retry timestep
// control (DESIGN.md "Numerical health & recovery").
//
// PR 2 made S3D++ survive *external* faults; this subsystem closes the
// *internal* gap the paper's production S3D handles with error trapping
// and timestep control: stiff-chemistry blow-ups, Newton non-convergence
// in the conserved->primitive inversion, NaN/Inf contamination, and CFL
// violations must not let a terascale allocation integrate garbage or
// die without a diagnosis.
//
// Three pieces:
//   HealthSentinel  scans the committed state after a step for breaches
//                   (non-finite U, rho <= rho_min, T outside mechanism
//                   bounds, |sum Y - 1| beyond tolerance, Newton
//                   iteration/residual overrun, dt above the stable-dt
//                   safety factor) and reduces the per-rank verdicts to
//                   one *collective* verdict through vmpi allreduces, so
//                   every rank of a decomposition takes the identical
//                   action deterministically.
//   SnapshotRing    an in-memory ring of full state snapshots (conserved
//                   vector plus the Newton warm-start temperature field,
//                   clock and step counter) restored bitwise on breach.
//   run_guarded     the driver: advance under the sentinel; on breach
//                   recover through the escalation ladder (DESIGN.md
//                   §13) — with adaptive dt enabled, first subcycle the
//                   breaching block(s), then roll back only those blocks
//                   from the delta ring, and only when the localized
//                   rungs are exhausted fall to the global rungs: roll
//                   the whole domain back to the newest snapshot (older
//                   ring entries when retries at one point are
//                   exhausted, then the PR-2 RestartSeries when the ring
//                   itself runs dry), shrink dt by a bounded factor, and
//                   re-advance under a rollback budget. Budget
//                   exhaustion throws HealthError carrying the final
//                   HealthReport — never a silent continuation.
//
// Determinism contract: scan verdicts derive only from allreduced
// quantities, snapshots are captured at step-count boundaries, and dt is
// re-estimated at fixed absolute step counts, so a guarded run recovers
// at the same points with the same dt schedule on every decomposition —
// the golden health test asserts bitwise-identical final fields across
// 1-, 2- and 8-rank runs of the same blow-up.

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "solver/checkpoint.hpp"
#include "solver/ckpt_store.hpp"
#include "solver/dt_control.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::solver {

/// Breach taxonomy, ascending severity; the collective verdict is the
/// max across ranks, so ordering decides which site is reported when
/// several trip at once.
enum class Breach : int {
  none = 0,
  dt_violation,      ///< dt_used exceeded the stable-dt safety factor
  y_sum,             ///< raw mass fractions left [0 - tol, 1 + tol]
  newton,            ///< T Newton iteration-count/residual overrun
  temperature,       ///< T outside the configured mechanism bounds
  negative_density,  ///< rho at or below rho_min
  non_finite,        ///< NaN/Inf in the conserved state
  injected,          ///< armed `solver.health` fault reported as a breach
};

/// Stable site name ("health.non_finite", ...) for traces and reports.
const char* breach_name(Breach b);

/// Sentinel thresholds. Defaults are deliberately loose: the sentinel is
/// a tripwire for states that are already numerically doomed, not a
/// physics validator.
struct HealthConfig {
  bool enabled = true;  ///< disarmed sentinel: scans compile to nothing
  int scan_every = 1;   ///< steps between scans
  double rho_min = 1e-4;      ///< [kg/m^3] density floor
  double T_min = 100.0;       ///< [K] breach below
  double T_max = 5000.0;      ///< [K] breach above
  /// |sum Y - 1| / undershoot tolerance. Routine dispersion-error
  /// undershoots in shear layers reach a few 1e-3 (the prim boundary
  /// clips them silently or, counted, as health.y_clip) — the breach
  /// threshold sits an order above that noise floor.
  double y_tol = 1e-2;
  int newton_max_iters = 50;  ///< Newton iteration-count overrun
  bool check_dt = true;       ///< compare dt_used against stable dt
  double dt_safety = 1.5;     ///< breach when dt_used > dt_safety * stable
  /// Fold the conserved-state tripwires into the final fused pass of an
  /// armed step (DESIGN.md §10) so the scan costs no separate sweep.
  /// Requires Config::fusion and a caller that arms before stepping
  /// (run_guarded does); the verdict is bit-identical to the separate
  /// sweep, which remains the fallback whenever folding is impossible.
  bool in_pass = true;
};

/// Structured description of one (collective) breach verdict.
struct HealthReport {
  Breach breach = Breach::none;
  long step = 0;  ///< step count at which the scan tripped
  int rank = -1;  ///< rank owning the worst cell (-1: serial / n.a.)
  std::array<int, 3> cell{-1, -1, -1};  ///< global ijk of the worst cell
  double value = 0.0;      ///< breach metric (count, excess, ratio ...)
  double threshold = 0.0;  ///< the configured limit it crossed
  const char* site() const { return breach_name(breach); }
  std::string message() const;
};

/// Thrown when the rollback budget (or every restore source) is
/// exhausted: the run fails loudly with the final verdict attached.
class HealthError : public Error {
 public:
  HealthError(const HealthReport& rep, const std::string& context)
      : Error("health: " + context + ": " + rep.message()), rep_(rep) {}
  const HealthReport& report() const { return rep_; }

 private:
  HealthReport rep_;
};

/// Plugin-state sidecar riding the snapshot ring (DESIGN.md §15): `save`
/// appends a fixed-length block of doubles (e.g. analysis accumulators)
/// to every captured image, `load` consumes exactly that block on a
/// global restore and returns the count consumed — so plugin state rolls
/// back bitwise with the solver state it summarizes. The block length
/// must stay constant for the lifetime of a ring (the delta codec diffs
/// equal-sized images).
struct StateSidecar {
  std::function<void(std::vector<double>&)> save;
  std::function<std::size_t(std::span<const double>)> load;
};

/// In-memory ring of full solver snapshots (conserved state, Newton
/// warm-start T field, clock, step counter). Restores are bitwise.
/// Backed by the delta ring of the checkpoint store (DESIGN.md §12):
/// with opt.delta (the default) only the first retained entry is a full
/// copy and later entries store dirty blocks against their predecessor,
/// so deep rings cost far less than depth * state-size; with opt.delta
/// off every entry is a full copy (the PR-3 behavior). Either way the
/// newest image stays materialized and restores are bitwise.
class SnapshotRing {
 public:
  explicit SnapshotRing(int depth, CkptOptions opt = {});

  void capture(const Solver& s);
  /// Restore the newest snapshot (kept in the ring for further retries).
  void restore_newest(Solver& s) const;
  /// Localized rollback (DESIGN.md §13): restore ONLY the listed
  /// interior row segments (conserved vars + warm-start T) from the
  /// newest snapshot, leaving every other cell and the solver clock
  /// untouched — the escalation ladder re-integrates the restored
  /// region to the far field's clock afterwards. Rides the delta ring's
  /// materialized newest image, so a block restore costs the masked
  /// cells, not a full-state copy.
  void restore_cells(Solver& s, std::span<const RowRange> segs) const;
  /// Drop the newest snapshot to roll back deeper.
  void pop_newest();

  /// Install a plugin-state sidecar: captures append its payload after
  /// the solver state, restore_newest() hands the tail back to `load`.
  /// Localized restores (restore_cells) leave the sidecar untouched —
  /// rungs 1-2 never rewind the step the plugins sampled.
  void set_sidecar(StateSidecar sc) { sidecar_ = std::move(sc); }

  bool empty() const { return ring_.empty(); }
  int size() const { return ring_.size(); }
  long newest_step() const { return ring_.newest_step(); }
  double newest_time() const;
  std::size_t bytes() const { return ring_.bytes(); }

 private:
  DeltaRing ring_;
  StateSidecar sidecar_;
};

/// Per-step health scanner. scan() is collective when a communicator is
/// given: every rank returns the identical verdict.
class HealthSentinel {
 public:
  HealthSentinel(Solver& s, const HealthConfig& hc, vmpi::Comm* comm);

  /// Scan the committed state; `dt_used` is the step size just taken.
  /// Refreshes the primitive workspace (warm-started Newton) as a side
  /// effect when the conserved state is clean. Collective. Consumes the
  /// solver's in-pass tripwire verdict when the last step was armed.
  HealthReport scan(double dt_used);

  /// Arm the solver's in-pass tripwires for the next step (no-op
  /// returning false when disabled, HealthConfig::in_pass is off, or the
  /// step cannot fold them — the next scan() then sweeps separately).
  bool arm_in_pass();
  /// Tripwire thresholds/encoding matching this sentinel's host sweep.
  TripwireParams params() const;

  long scans() const { return scans_; }

 private:
  struct LocalVerdict {
    Breach breach = Breach::none;
    double metric = 0.0;       ///< finite severity metric for the reduce
    double cell_code = 0.0;    ///< encoded global cell of the worst site
    double threshold = 0.0;
    double dt_suggest = 1e300; ///< local stable dt (for the dt check)
  };
  LocalVerdict local_scan(double dt_used, const TripwireAccum* pre);
  double encode_cell(int i, int j, int k) const;

  Solver& s_;
  HealthConfig hc_;
  vmpi::Comm* comm_;
  long scans_ = 0;
};

/// Rollback-and-retry policy for run_guarded.
struct GuardOptions {
  HealthConfig health;

  int snapshot_every = 1;  ///< steps between ring captures
  int ring_depth = 2;      ///< snapshots retained in memory
  int max_rollbacks = 10;  ///< total rollback budget for the whole run
  /// Retries at one snapshot before rolling back to an older one.
  int retries_per_snapshot = 4;
  double dt_factor = 0.5;  ///< dt scale multiplier applied per rollback
  double dt_min = 0.0;     ///< fail when the scaled dt falls below (0: off)

  double dt_fixed = 0.0;   ///< fixed base dt when > 0 (else stable_dt())
  int dt_every = 5;        ///< stable-dt re-estimation cadence (steps)

  /// Last-resort restore source once the ring is exhausted (PR-2
  /// checkpoint series); consulted collectively in parallel runs.
  RestartSeries* fallback = nullptr;

  /// Per-block adaptive time integration override (DESIGN.md §13).
  /// Unset: the solver Config's `adaptive` options apply. When the
  /// resolved options are enabled, run_guarded drives the PI dt
  /// controller, proactive stiff-region subcycling, and the breach
  /// escalation ladder (subcycle → localized rollback → global rollback
  /// with dt halving → series restore); disabled, behavior is exactly
  /// the legacy global-halving policy. Builds with -DS3D_ADAPTIVE=OFF
  /// force-disable it regardless of this setting.
  std::optional<AdaptiveOptions> adaptive;

  /// Plugin-state sidecar (DESIGN.md §15): installed on the guard's
  /// snapshot ring so plugin accumulators (in-situ analyses) are
  /// captured with every clean-state snapshot and restored bitwise on
  /// global rollbacks. Note the rung-4 RestartSeries fallback carries no
  /// sidecar: after a series restore the ring is reseeded with the
  /// plugins' CURRENT state.
  StateSidecar sidecar;
  /// Invoked after every scanned-clean committed step (and before the
  /// snapshot capture at that step), with the absolute step count. This
  /// is where in-situ consumers sample: breached steps never fire it,
  /// and a rollback restores the sidecar to the post-hook state of the
  /// restored step, so accumulators are never double-counted across
  /// recoveries. Consumers with a cadence should key it off the absolute
  /// step count they are handed.
  std::function<void(long)> on_clean_step;

  /// Typed ConfigError for malformed budgets/factors/thresholds.
  void validate() const;
};

/// One recovery event of a guarded run.
struct HealthEvent {
  HealthReport report;
  long rolled_back_to = -1;  ///< step count restored to
  double dt_scale = 1.0;     ///< dt scale in effect after the rollback
  bool from_series = false;  ///< restored from the RestartSeries fallback
  /// Escalation-ladder rung that handled the breach (DESIGN.md §13):
  /// 1 = breaching block(s) subcycled, 2 = widened localized rollback,
  /// 3 = global rollback with dt scaling, 4 = RestartSeries restore.
  /// Rungs 1-2 touch only the masked blocks; the global dt is never
  /// scaled by them.
  int rung = 3;
};

struct GuardReport {
  bool completed = false;
  long final_steps = 0;
  int rollbacks = 0;
  int series_restores = 0;
  long scans = 0;
  double dt_scale = 1.0;  ///< final dt scale (1.0: no breach ever)
  std::vector<HealthEvent> events;

  // Escalation-ladder accounting (zero when adaptive is disabled).
  int subcycle_recoveries = 0;  ///< rung-1 localized recovery attempts
  int local_rollbacks = 0;      ///< rung-2 widened localized rollbacks
  long subcycle_steps = 0;      ///< masked substeps committed (all causes)
  /// Work accounting for the wasted-work metric (THIS rank's cells):
  /// cell-steps executed (full steps, re-steps, masked substeps) and
  /// cell-steps later discarded by a restore of any rung. A fault-free
  /// run has discarded == 0 and executed == nsteps * local cells.
  long executed_cell_steps = 0;
  long discarded_cell_steps = 0;
};

/// Advance `s` by `nsteps` under the sentinel. Pass the communicator the
/// solver was built with for parallel runs (collective verdicts and
/// restores); nullptr for serial. Throws HealthError when the rollback
/// budget, the dt floor, or every restore source is exhausted.
GuardReport run_guarded(Solver& s, int nsteps, const GuardOptions& opts,
                        vmpi::Comm* comm = nullptr);

}  // namespace s3d::solver
