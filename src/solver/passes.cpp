#include "solver/passes.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/stencil.hpp"

namespace s3d::solver {

namespace {

/// Unit-stride tile width for batched lines along non-x axes: the tile's
/// cache lines stay resident while every batched field's lines over it
/// are evaluated.
constexpr int kTileX = 32;

}  // namespace

template <bool Fused>
void FusedPointwise::run_rows(const Layout& l, int ilo, int ihi, int jlo,
                              int jhi, int klo, int khi,
                              PassStats* stats) const {
  const int count = ihi - ilo;
  if constexpr (Fused) {
    if (stats) stats->count(stages());
    for (int k = klo; k < khi; ++k)
      for (int j = jlo; j < jhi; ++j) {
        const RowRange r{l.at(ilo, j, k), ilo, count, j, k};
        for (const Stage& s : stages_) s.fn(r);
      }
  } else {
    for (const Stage& s : stages_) {
      if (stats) stats->count(1);
      for (int k = klo; k < khi; ++k)
        for (int j = jlo; j < jhi; ++j)
          s.fn(RowRange{l.at(ilo, j, k), ilo, count, j, k});
    }
  }
}

void FusedPointwise::run_interior(const Layout& l, PassStats* stats) const {
  run_rows<true>(l, 0, l.nx, 0, l.ny, 0, l.nz, stats);
}

void FusedPointwise::run_segments(std::span<const RowRange> segs,
                                  PassStats* stats) const {
  if (stats) stats->count(stages());
  for (const RowRange& r : segs)
    for (const Stage& s : stages_) s.fn(r);
}

void FusedPointwise::run_valid(const Layout& l, const GhostFlags& gh,
                               PassStats* stats) const {
  run_rows<true>(l, gh.lo[0] ? -l.gx : 0, l.nx + (gh.hi[0] ? l.gx : 0),
                 gh.lo[1] ? -l.gy : 0, l.ny + (gh.hi[1] ? l.gy : 0),
                 gh.lo[2] ? -l.gz : 0, l.nz + (gh.hi[2] ? l.gz : 0), stats);
}

void FusedPointwise::run_full(const Layout& l, PassStats* stats) const {
  run_rows<true>(l, -l.gx, l.nx + l.gx, -l.gy, l.ny + l.gy, -l.gz,
                 l.nz + l.gz, stats);
}

void FusedPointwise::run_interior_sequential(const Layout& l,
                                             PassStats* stats) const {
  run_rows<false>(l, 0, l.nx, 0, l.ny, 0, l.nz, stats);
}

void FusedPointwise::run_valid_sequential(const Layout& l,
                                          const GhostFlags& gh,
                                          PassStats* stats) const {
  run_rows<false>(l, gh.lo[0] ? -l.gx : 0, l.nx + (gh.hi[0] ? l.gx : 0),
                  gh.lo[1] ? -l.gy : 0, l.ny + (gh.hi[1] ? l.gy : 0),
                  gh.lo[2] ? -l.gz : 0, l.nz + (gh.hi[2] ? l.gz : 0), stats);
}

void batched_deriv(const FieldOps& ops, int axis,
                   std::span<const DerivTarget> fields, bool accumulate,
                   PassStats* stats) {
  const Layout& l = ops.layout();
  if (stats) stats->count(static_cast<long>(fields.size()));
  if (!l.active(axis)) {
    // FieldOps::deriv zeroes the whole output on an inactive axis; the
    // accumulate form subtracts those zeros, which is the identity.
    if (!accumulate)
      for (const DerivTarget& t : fields)
        std::fill(t.out, t.out + l.total(), 0.0);
    return;
  }

  const std::ptrdiff_t s = l.stride(axis);
  const int n = l.n(axis);
  const numerics::LineBC bc{ops.ghosts().lo[axis], ops.ghosts().hi[axis]};
  const double* inv = ops.inv_h(axis).data();

  auto lines = [&](std::size_t base) {
    for (const DerivTarget& t : fields) {
      if (accumulate)
        numerics::deriv_line_metric_sub(t.f + base, s, t.out + base, s, n,
                                        inv, bc);
      else
        numerics::deriv_line_metric(t.f + base, s, t.out + base, s, n, inv,
                                    bc);
    }
  };

  // Assign mode mirrors the unfused operator: outputs are produced for
  // every ghosted orthogonal position. Accumulate mode is the fused
  // divergence: only interior lines exist (ghost entries of the target
  // are never touched, matching the interior-only subtraction it
  // replaces).
  if (axis == 0) {
    const int jlo = accumulate ? 0 : -l.gy, jhi = accumulate ? l.ny : l.ny + l.gy;
    const int klo = accumulate ? 0 : -l.gz, khi = accumulate ? l.nz : l.nz + l.gz;
    for (int k = klo; k < khi; ++k)
      for (int j = jlo; j < jhi; ++j) lines(l.at(0, j, k));
    return;
  }

  // Lines along y or z: tile the unit-stride x range so a tile's cache
  // lines are reused across the whole field batch before moving on.
  const int ilo = accumulate ? 0 : -l.gx, ihi = accumulate ? l.nx : l.nx + l.gx;
  if (axis == 1) {
    const int klo = accumulate ? 0 : -l.gz, khi = accumulate ? l.nz : l.nz + l.gz;
    for (int k = klo; k < khi; ++k)
      for (int i0 = ilo; i0 < ihi; i0 += kTileX)
        for (int i = i0; i < std::min(i0 + kTileX, ihi); ++i)
          lines(l.at(i, 0, k));
  } else {
    const int jlo = accumulate ? 0 : -l.gy, jhi = accumulate ? l.ny : l.ny + l.gy;
    for (int j = jlo; j < jhi; ++j)
      for (int i0 = ilo; i0 < ihi; i0 += kTileX)
        for (int i = i0; i < std::min(i0 + kTileX, ihi); ++i)
          lines(l.at(i, j, 0));
  }
}

void TripwireAccum::check_row(const State& U, const TripwireParams& p,
                              std::size_t n0, int i0, int count, int j,
                              int k) {
  for (int c = 0; c < count; ++c) {
    const std::size_t n = n0 + static_cast<std::size_t>(c);
    const int i = i0 + c;
    bool cell_finite = true;
    for (int v = 0; v < p.nv; ++v)
      if (!std::isfinite(U.var(v)[n])) {
        ++nonfinite;
        cell_finite = false;
      }
    if (!cell_finite) {
      // Rows arrive in ascending (k, j, i) order, so the first offender
      // is the global-code minimum — deterministic across runs and
      // identical to the sentinel's separate-sweep scan.
      if (nonfinite_cell >= kNoCellCode)
        nonfinite_cell = p.encode_cell(i, j, k);
      continue;
    }
    const double rho = U.var(UIndex::rho)[n];
    if (rho <= p.rho_min) {
      if (rho < rho_worst) {
        rho_worst = rho;
        rho_cell = p.encode_cell(i, j, k);
      }
      continue;  // mass fractions are meaningless without density
    }
    double ysum = 0.0, ymin = 0.0;
    for (int sp = 0; sp < p.ns - 1; ++sp) {
      const double y = U.var(UIndex::Y0 + sp)[n] / rho;
      ysum += y;
      if (y < ymin) ymin = y;
    }
    const double ylast = 1.0 - ysum;
    if (ylast < ymin) ymin = ylast;
    if (-ymin > p.y_tol && -ymin > y_worst) {
      y_worst = -ymin;
      y_cell = p.encode_cell(i, j, k);
    }
  }
}

}  // namespace s3d::solver
