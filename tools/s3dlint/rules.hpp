#pragma once
// s3dlint rule engine: the five determinism invariants (DESIGN.md §14)
// expressed as token-level checks over the lexed tree.
//
//   libm             exp/log/pow calls outside the whitelisted shared-
//                    kernel TUs (the one-contraction / one-log rule)
//   noinline-kernel  every registered shared row kernel still carries
//                    __attribute__((noinline))
//   unordered        unordered containers in solver/DLB planning paths
//                    (iteration order is unspecified -> rank divergence)
//   xref             dotted registry names referenced by tests must exist
//                    as literals in src (trace counters, fault sites)
//   collective-rank  vmpi collectives nested under rank-conditional
//                    branches (heuristic; the runtime complement is the
//                    S3D_COLLECTIVE_CHECK mode in src/vmpi)
//
// Each rule can be waived per line with `// s3dlint:allow(rule): reason`.

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace s3dlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Config {
  // libm
  std::set<std::string> libm_fns;
  std::vector<std::string> libm_scope;  ///< path prefixes the rule covers
  std::vector<std::string> libm_tus;    ///< whitelisted TU stems (no ext)
  // noinline-kernel
  struct Kernel {
    std::string file;  ///< repo-relative path holding the definition
    std::string name;
  };
  std::vector<Kernel> kernels;
  // unordered
  std::vector<std::string> unordered_scope;
  std::set<std::string> unordered_types;
  // collective-rank
  std::vector<std::string> collective_scope;
  std::set<std::string> collective_fns;
  std::set<std::string> rank_idents;
  // xref
  std::vector<std::string> xref_prefixes;
  std::set<std::string> xref_skip_ext;  ///< file-like suffixes to ignore
  std::set<std::string> xref_extra;     ///< names allowed without a src hit
};

/// Parse the line-oriented config ("key value value..." lines, `#`
/// comments). Returns false and sets *err on a malformed line.
bool parse_config(const std::string& text, Config* cfg, std::string* err);

/// Run every rule over the lexed files. Paths must be repo-relative with
/// forward slashes ("src/...", "tests/..."); the xref rule derives its
/// definition set from the src/ files and its reference set from tests/.
std::vector<Finding> run_rules(const Config& cfg,
                               const std::vector<FileScan>& files);

/// Individual rules (exposed for the fixture tests).
std::vector<Finding> rule_libm(const Config& cfg, const FileScan& f);
std::vector<Finding> rule_unordered(const Config& cfg, const FileScan& f);
std::vector<Finding> rule_collective_rank(const Config& cfg,
                                          const FileScan& f);
std::vector<Finding> rule_noinline_kernels(
    const Config& cfg, const std::vector<FileScan>& files);
std::vector<Finding> rule_xref(const Config& cfg,
                               const std::vector<FileScan>& files);

/// True when `path` starts with any of the given prefixes.
bool in_scope(const std::string& path, const std::vector<std::string>& scope);

}  // namespace s3dlint
