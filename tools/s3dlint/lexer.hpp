#pragma once
// s3dlint token scanner.
//
// A deliberately small lexical pass — not a C++ parser. It splits a
// translation unit into identifier/punctuator tokens with line numbers,
// collects string literals, and records `s3dlint:allow(rule,...)` waiver
// comments. Comments and literal *contents* are invisible to the token
// stream, so rules never fire on prose. The determinism rules this feeds
// (DESIGN.md §14) are all expressible at token level; anything needing
// real semantic analysis belongs in the clang-tidy lane instead.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace s3dlint {

/// One lexical token: an identifier/number or a single punctuator
/// character. Multi-character operators are not glued together; the rules
/// only ever look for identifiers adjacent to `(`, `.`, `->`, `::`.
struct Token {
  std::string text;
  int line = 0;
};

/// A string literal with its (start) line. `value` is the unescaped-ish
/// raw content between the quotes; escape sequences are kept verbatim
/// except \" so registry names compare exactly.
struct StrLit {
  std::string value;
  int line = 0;
};

/// Lexical view of one file.
struct FileScan {
  std::string path;  ///< repo-relative, forward slashes
  std::vector<Token> tokens;
  std::vector<StrLit> strings;
  /// line -> rules waived via `// s3dlint:allow(rule1,rule2): reason`.
  /// A trailing waiver (code before it on the line) covers its own line
  /// and the next; a standalone comment line covers the following
  /// statement-ish span (three lines) so multi-line expressions fit.
  std::map<int, std::set<std::string>> waivers;
  std::set<int> standalone_waivers;  ///< waiver lines with no code before
};

/// Lex `content` (the text of the file at `path`).
FileScan scan_file(const std::string& path, const std::string& content);

/// True when a finding of `rule` on `line` is covered by a waiver comment
/// on the same or the preceding line.
bool waived(const FileScan& f, const std::string& rule, int line);

}  // namespace s3dlint
