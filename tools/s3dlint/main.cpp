// s3dlint — the repo's determinism lint (DESIGN.md §14).
//
// Token-level static checks over src/ + tests/ that pin the bitwise
// contract the perf layers rely on: shared-kernel libm containment,
// noinline on registered row kernels, no unordered iteration in planning
// paths, test<->src registry cross-reference, and collectives under
// rank-conditionals. Registered as the `ctest -L lint` tier; run directly:
//
//   s3dlint --root <repo> [--config <file>] [--list-waivers]
//
// Exit 0: clean. Exit 1: findings (printed one per line as
// `file:line: [rule] message`). Exit 2: usage/config error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  *ok = in.good();
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool wanted_source(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config;
  bool list_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--config" && i + 1 < argc) {
      config = argv[++i];
    } else if (a == "--list-waivers") {
      list_waivers = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: s3dlint --root <repo> [--config <file>] "
                   "[--list-waivers]\n";
      return 0;
    } else {
      std::cerr << "s3dlint: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (config.empty()) config = root + "/tools/s3dlint/s3dlint.conf";

  bool ok = false;
  const std::string conf_text = slurp(config, &ok);
  if (!ok) {
    std::cerr << "s3dlint: cannot read config " << config << "\n";
    return 2;
  }
  s3dlint::Config cfg;
  std::string err;
  if (!s3dlint::parse_config(conf_text, &cfg, &err)) {
    std::cerr << "s3dlint: " << err << "\n";
    return 2;
  }

  // Collect src/ + tests/ sources. Lint fixtures carry seeded violations
  // on purpose and are excluded (they are also .cxx, not .cpp, as a
  // second guard).
  std::vector<s3dlint::FileScan> files;
  std::size_t nwaivers = 0;
  for (const char* top : {"src", "tests"}) {
    const fs::path base = fs::path(root) / top;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() &&
          it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !wanted_source(it->path())) continue;
      bool read_ok = false;
      const std::string text = slurp(it->path(), &read_ok);
      if (!read_ok) {
        std::cerr << "s3dlint: cannot read " << it->path() << "\n";
        return 2;
      }
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      files.push_back(s3dlint::scan_file(rel, text));
      for (const auto& [line, rules] : files.back().waivers) {
        nwaivers += rules.size();
        if (list_waivers)
          for (const auto& r : rules)
            std::cout << rel << ":" << line << ": waiver [" << r << "]\n";
      }
    }
  }

  const auto findings = s3dlint::run_rules(cfg, files);
  for (const auto& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  std::cout << "s3dlint: " << findings.size() << " finding(s), " << nwaivers
            << " waiver(s) over " << files.size() << " files\n";
  return findings.empty() ? 0 : 1;
}
