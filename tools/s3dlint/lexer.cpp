#include "lexer.hpp"

#include <cctype>

namespace s3dlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse waiver comments out of a comment body: `s3dlint:allow(a,b)`.
void parse_waiver(const std::string& comment, int line, FileScan& out) {
  const std::string key = "s3dlint:allow(";
  auto pos = comment.find(key);
  if (pos == std::string::npos) return;
  pos += key.size();
  const auto end = comment.find(')', pos);
  if (end == std::string::npos) return;
  std::string rules = comment.substr(pos, end - pos);
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) out.waivers[line].insert(cur);
    cur.clear();
  };
  for (char c : rules) {
    if (c == ',')
      flush();
    else if (!std::isspace(static_cast<unsigned char>(c)))
      cur += c;
  }
  flush();
}

}  // namespace

FileScan scan_file(const std::string& path, const std::string& content) {
  FileScan out;
  out.path = path;
  const std::size_t n = content.size();
  int line = 1;
  std::size_t i = 0;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? content[i + k] : '\0';
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Line comment: capture for waivers, skip.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && content[j] != '\n') ++j;
      const bool had = out.waivers.count(line) > 0;
      parse_waiver(content.substr(i + 2, j - i - 2), line, out);
      if (!had && out.waivers.count(line) &&
          (out.tokens.empty() || out.tokens.back().line != line))
        out.standalone_waivers.insert(line);
      i = j;
      continue;
    }
    // Block comment: may span lines; waivers attach to the line the
    // marker appears on.
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      int start = line;
      std::string body;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        body += content[j];
        ++j;
      }
      parse_waiver(body, start, out);
      i = j + 2 <= n ? j + 2 : n;
      continue;
    }
    // String literal (including the common prefixes). Raw strings get a
    // minimal R"( ... )" treatment.
    if (c == '"') {
      // Raw string?
      bool raw = false;
      if (i >= 1 && content[i - 1] == 'R') {
        // delimiters between " and ( — match until )delim"
        raw = true;
      }
      std::size_t j = i + 1;
      std::string lit;
      if (raw) {
        std::string delim;
        while (j < n && content[j] != '(') delim += content[j++];
        ++j;  // past '('
        const std::string close = ")" + delim + "\"";
        const auto endp = content.find(close, j);
        const std::size_t stop = endp == std::string::npos ? n : endp;
        for (std::size_t k = j; k < stop; ++k) {
          if (content[k] == '\n') ++line;
          lit += content[k];
        }
        j = stop == n ? n : stop + close.size();
      } else {
        while (j < n && content[j] != '"') {
          if (content[j] == '\\' && j + 1 < n) {
            lit += content[j];
            lit += content[j + 1];
            j += 2;
            continue;
          }
          if (content[j] == '\n') ++line;  // unterminated; be forgiving
          lit += content[j++];
        }
        ++j;  // past closing quote
      }
      out.strings.push_back({lit, line});
      i = j;
      continue;
    }
    // Char literal: skip content so 'x' never looks like an identifier.
    // Only when it cannot be a digit separator (1'000'000).
    if (c == '\'' &&
        !(i >= 1 && std::isdigit(static_cast<unsigned char>(content[i - 1])))) {
      std::size_t j = i + 1;
      while (j < n && content[j] != '\'') {
        if (content[j] == '\\') ++j;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(content[j])) ++j;
      out.tokens.push_back({content.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(content[j]) || content[j] == '\'' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E'))))
        ++j;
      out.tokens.push_back({content.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c)))
      out.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return out;
}

bool waived(const FileScan& f, const std::string& rule, int line) {
  for (int l : {line, line - 1, line - 2, line - 3}) {
    auto it = f.waivers.find(l);
    if (it == f.waivers.end() ||
        !(it->second.count(rule) || it->second.count("all")))
      continue;
    if (l >= line - 1 || f.standalone_waivers.count(l)) return true;
  }
  return false;
}

}  // namespace s3dlint
