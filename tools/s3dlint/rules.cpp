#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace s3dlint {

namespace {

/// Path stem: strip the extension ("src/chem/thermo.cpp" -> "src/chem/thermo").
std::string stem(const std::string& path) {
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path;
  return path.substr(0, dot);
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() &&
         s.compare(s.size() - p.size(), p.size(), p) == 0;
}

}  // namespace

bool in_scope(const std::string& path,
              const std::vector<std::string>& scope) {
  return std::any_of(scope.begin(), scope.end(), [&](const std::string& p) {
    return starts_with(path, p);
  });
}

bool parse_config(const std::string& text, Config* cfg, std::string* err) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    std::vector<std::string> vals;
    for (std::string v; ls >> v;) vals.push_back(v);
    auto need = [&](std::size_t n) {
      if (vals.size() >= n) return true;
      if (err)
        *err = "config line " + std::to_string(lineno) + ": '" + key +
               "' needs at least " + std::to_string(n) + " value(s)";
      return false;
    };
    if (key == "libm_fn") {
      if (!need(1)) return false;
      cfg->libm_fns.insert(vals.begin(), vals.end());
    } else if (key == "libm_scope") {
      if (!need(1)) return false;
      cfg->libm_scope.insert(cfg->libm_scope.end(), vals.begin(), vals.end());
    } else if (key == "libm_tu") {
      if (!need(1)) return false;
      cfg->libm_tus.insert(cfg->libm_tus.end(), vals.begin(), vals.end());
    } else if (key == "kernel") {
      if (!need(2)) return false;
      cfg->kernels.push_back({vals[0], vals[1]});
    } else if (key == "unordered_scope") {
      if (!need(1)) return false;
      cfg->unordered_scope.insert(cfg->unordered_scope.end(), vals.begin(),
                                  vals.end());
    } else if (key == "unordered_type") {
      if (!need(1)) return false;
      cfg->unordered_types.insert(vals.begin(), vals.end());
    } else if (key == "collective_scope") {
      if (!need(1)) return false;
      cfg->collective_scope.insert(cfg->collective_scope.end(), vals.begin(),
                                   vals.end());
    } else if (key == "collective_fn") {
      if (!need(1)) return false;
      cfg->collective_fns.insert(vals.begin(), vals.end());
    } else if (key == "rank_ident") {
      if (!need(1)) return false;
      cfg->rank_idents.insert(vals.begin(), vals.end());
    } else if (key == "xref_prefix") {
      if (!need(1)) return false;
      cfg->xref_prefixes.insert(cfg->xref_prefixes.end(), vals.begin(),
                                vals.end());
    } else if (key == "xref_skip_ext") {
      if (!need(1)) return false;
      cfg->xref_skip_ext.insert(vals.begin(), vals.end());
    } else if (key == "xref_extra") {
      if (!need(1)) return false;
      cfg->xref_extra.insert(vals.begin(), vals.end());
    } else {
      if (err)
        *err = "config line " + std::to_string(lineno) +
               ": unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rule: libm

std::vector<Finding> rule_libm(const Config& cfg, const FileScan& f) {
  std::vector<Finding> out;
  if (!in_scope(f.path, cfg.libm_scope)) return out;
  const std::string st = stem(f.path);
  for (const auto& tu : cfg.libm_tus)
    if (st == tu) return out;  // whitelisted shared-kernel TU
  const auto& tk = f.tokens;
  for (std::size_t i = 0; i < tk.size(); ++i) {
    if (!cfg.libm_fns.count(tk[i].text)) continue;
    if (i + 1 >= tk.size() || tk[i + 1].text != "(") continue;
    // Skip member calls (obj.log(...), p->exp(...)): '.' or the '>' of
    // '->' directly before the identifier.
    if (i > 0 && (tk[i - 1].text == "." || tk[i - 1].text == ">")) continue;
    if (waived(f, "libm", tk[i].line)) continue;
    out.push_back(
        {f.path, tk[i].line, "libm",
         "call to '" + tk[i].text +
             "' outside the whitelisted shared-kernel TUs: transcendental "
             "rounding/contraction decisions must live in one compiled "
             "body (DESIGN.md §14); move it into a shared noinline kernel "
             "or waive with `// s3dlint:allow(libm): <why>`"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: unordered

std::vector<Finding> rule_unordered(const Config& cfg, const FileScan& f) {
  std::vector<Finding> out;
  if (!in_scope(f.path, cfg.unordered_scope)) return out;
  for (const auto& t : f.tokens) {
    if (!cfg.unordered_types.count(t.text)) continue;
    if (waived(f, "unordered", t.line)) continue;
    out.push_back(
        {f.path, t.line, "unordered",
         "'" + t.text +
             "' in a deterministic planning path: iteration order is "
             "unspecified and can diverge across ranks/builds; use "
             "std::map/std::set or a sorted vector (DESIGN.md §14)"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: collective-rank
//
// Heuristic brace-tracking pass. A condition is "rank-conditional" when
// it mentions a rank identifier next to a comparison. Scopes inherit the
// property; a braced `else` of a rank-conditional `if` counts too. The
// runtime S3D_COLLECTIVE_CHECK mode catches what this heuristic cannot.

std::vector<Finding> rule_collective_rank(const Config& cfg,
                                          const FileScan& f) {
  std::vector<Finding> out;
  if (!in_scope(f.path, cfg.collective_scope)) return out;
  const auto& tk = f.tokens;

  struct Scope {
    bool rank_cond = false;
    bool is_if = false;
  };
  std::vector<Scope> scopes;
  bool pending_if_rank = false;   // an if-condition just parsed
  bool pending_is_if = false;     // `{` about to open belongs to an if/else
  bool just_closed_if_rank = false;  // for `else` attachment
  int single_stmt_rank = 0;       // >0: inside unbraced rank-if statement

  auto cur_rank = [&] {
    return !scopes.empty() && scopes.back().rank_cond;
  };

  for (std::size_t i = 0; i < tk.size(); ++i) {
    const std::string& t = tk[i].text;
    if (t == "if" && i + 1 < tk.size() && tk[i + 1].text == "(") {
      // Scan the condition.
      int depth = 0;
      std::size_t j = i + 1;
      bool has_rank = false, has_cmp = false;
      for (; j < tk.size(); ++j) {
        if (tk[j].text == "(") ++depth;
        if (tk[j].text == ")" && --depth == 0) break;
        if (cfg.rank_idents.count(tk[j].text)) has_rank = true;
        if (tk[j].text == "=" || tk[j].text == "<" || tk[j].text == ">" ||
            tk[j].text == "!")
          has_cmp = true;
      }
      pending_if_rank = (has_rank && has_cmp) || cur_rank();
      pending_is_if = true;
      if (j + 1 < tk.size() && tk[j + 1].text != "{" && pending_if_rank &&
          !(tk[j + 1].text == "if"))  // unbraced body: flag until ';'
        single_stmt_rank = 1;
      i = j;
      continue;
    }
    if (t == "else") {
      const bool rank_else = just_closed_if_rank || cur_rank();
      if (i + 1 < tk.size() && tk[i + 1].text == "{") {
        pending_if_rank = rank_else;
        pending_is_if = true;
      } else if (rank_else && i + 1 < tk.size() && tk[i + 1].text != "if") {
        single_stmt_rank = 1;
      }
      continue;
    }
    if (t == "{") {
      Scope s;
      s.rank_cond = pending_is_if ? pending_if_rank : cur_rank();
      s.is_if = pending_is_if;
      scopes.push_back(s);
      pending_is_if = false;
      pending_if_rank = false;
      continue;
    }
    if (t == "}") {
      if (!scopes.empty()) {
        just_closed_if_rank = scopes.back().is_if && scopes.back().rank_cond;
        scopes.pop_back();
      }
      continue;
    }
    if (t == ";" && single_stmt_rank) {
      single_stmt_rank = 0;
      just_closed_if_rank = true;
      continue;
    }
    if ((cur_rank() || single_stmt_rank) && cfg.collective_fns.count(t) &&
        i + 1 < tk.size() && tk[i + 1].text == "(") {
      if (waived(f, "collective-rank", tk[i].line)) continue;
      out.push_back(
          {f.path, tk[i].line, "collective-rank",
           "collective '" + t +
               "' under a rank-conditional branch: ranks taking different "
               "paths reach different collective sequences and deadlock or "
               "silently mismatch (DESIGN.md §14); hoist the collective or "
               "waive with `// s3dlint:allow(collective-rank): <why>`"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: noinline-kernel

std::vector<Finding> rule_noinline_kernels(
    const Config& cfg, const std::vector<FileScan>& files) {
  std::vector<Finding> out;
  for (const auto& k : cfg.kernels) {
    const FileScan* f = nullptr;
    for (const auto& fs : files)
      if (fs.path == k.file) {
        f = &fs;
        break;
      }
    if (!f) {
      out.push_back({k.file, 0, "noinline-kernel",
                     "registered kernel file not found (kernel '" + k.name +
                         "'); update tools/s3dlint/s3dlint.conf if the "
                         "kernel moved"});
      continue;
    }
    const auto& tk = f->tokens;
    bool seen = false, pinned = false;
    int first_line = 0;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].text != k.name || i + 1 >= tk.size() ||
          tk[i + 1].text != "(")
        continue;
      if (!seen) first_line = tk[i].line;
      seen = true;
      // Look back through the declaration for the noinline attribute,
      // stopping at the previous statement/scope boundary.
      const std::size_t lo = i > 60 ? i - 60 : 0;
      for (std::size_t j = i; j-- > lo;) {
        const std::string& b = tk[j].text;
        if (b == ";" || b == "}" || b == "{") break;
        if (b == "noinline") {
          pinned = true;
          break;
        }
      }
      if (pinned) break;
    }
    if (!seen)
      out.push_back({k.file, 0, "noinline-kernel",
                     "registered kernel '" + k.name +
                         "' not found in this file; update "
                         "tools/s3dlint/s3dlint.conf if it was renamed"});
    else if (!pinned)
      out.push_back(
          {k.file, first_line, "noinline-kernel",
           "shared row kernel '" + k.name +
               "' lost __attribute__((noinline)): without it the fused and "
               "unfused traversals can inline into different contraction "
               "contexts and the bitwise contract breaks (DESIGN.md §14)"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: xref

namespace {

/// Dotted-identifier shape: `seg(.seg)+` with identifier segments, an
/// optional trailing dot (a concatenation base like "health.ladder.").
bool dotted_name(const std::string& s) {
  if (s.empty() || s.find('/') != std::string::npos) return false;
  int segs = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t j = i;
    if (!(std::isalpha(static_cast<unsigned char>(s[j])) || s[j] == '_'))
      return false;
    while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                            s[j] == '_'))
      ++j;
    ++segs;
    if (j == s.size()) break;
    if (s[j] != '.') return false;
    i = j + 1;
    if (i == s.size()) break;  // trailing dot OK
  }
  return segs >= 2;
}

}  // namespace

std::vector<Finding> rule_xref(const Config& cfg,
                               const std::vector<FileScan>& files) {
  std::vector<Finding> out;
  std::set<std::string> defs = cfg.xref_extra;
  for (const auto& f : files) {
    if (!starts_with(f.path, "src/")) continue;
    for (const auto& s : f.strings) defs.insert(s.value);
  }
  for (const auto& f : files) {
    if (!starts_with(f.path, "tests/")) continue;
    for (const auto& s : f.strings) {
      const std::string& v = s.value;
      bool matched = false;
      for (const auto& p : cfg.xref_prefixes)
        if (starts_with(v, p)) {
          matched = true;
          break;
        }
      if (!matched || !dotted_name(v)) continue;
      bool skip = false;
      for (const auto& e : cfg.xref_skip_ext)
        if (ends_with(v, "." + e)) {
          skip = true;
          break;
        }
      if (skip) continue;
      bool ok;
      if (v.back() == '.') {
        // Concatenation base: any defined name under this prefix will do.
        auto it = defs.lower_bound(v);
        ok = it != defs.end() && starts_with(*it, v);
      } else {
        ok = defs.count(v) > 0;
      }
      if (ok || waived(f, "xref", s.line)) continue;
      out.push_back(
          {f.path, s.line, "xref",
           "registry name \"" + v +
               "\" is referenced by tests but defined nowhere in src/: "
               "likely a typo'd trace counter or fault-site name — the "
               "test would silently assert on a counter that never "
               "increments (DESIGN.md §14)"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

std::vector<Finding> run_rules(const Config& cfg,
                               const std::vector<FileScan>& files) {
  std::vector<Finding> out;
  for (const auto& f : files) {
    auto a = rule_libm(cfg, f);
    out.insert(out.end(), a.begin(), a.end());
    auto b = rule_unordered(cfg, f);
    out.insert(out.end(), b.begin(), b.end());
    auto c = rule_collective_rank(cfg, f);
    out.insert(out.end(), c.begin(), c.end());
  }
  auto d = rule_noinline_kernels(cfg, files);
  out.insert(out.end(), d.begin(), d.end());
  auto e = rule_xref(cfg, files);
  out.insert(out.end(), e.begin(), e.end());
  std::sort(out.begin(), out.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) return x.file < y.file;
    if (x.line != y.line) return x.line < y.line;
    return x.rule < y.rule;
  });
  return out;
}

}  // namespace s3dlint
