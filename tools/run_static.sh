#!/usr/bin/env bash
# One-shot static-analysis / hardened-lane driver (DESIGN.md §14).
#
# Usage: tools/run_static.sh [lane...]
#   lanes: lint werror asan ubsan tsan tidy   (default: lint werror)
#
# Each lane configures an isolated build tree under build-static/ so the
# developer's default build/ is never reconfigured. `lint` is fast
# (seconds once built); the sanitizer lanes rebuild the world and run the
# relevant test tiers, so they are opt-in. `tidy` requires clang-tidy on
# PATH and uses the repo .clang-tidy config (gated behind -DS3D_TIDY).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
lanes=("$@")
[ ${#lanes[@]} -eq 0 ] && lanes=(lint werror)

build() { # name cmake-args...
  local name="$1"; shift
  dir="$root/build-static/$name"
  cmake -B "$dir" -S "$root" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

for lane in "${lanes[@]}"; do
  echo "== lane: $lane =="
  case "$lane" in
    lint)
      # The determinism lint + its rule-efficacy suite: ctest -L lint.
      build lint -DS3D_WERROR=ON
      (cd "$dir" && ctest -L lint --output-on-failure)
      ;;
    werror)
      # Whole tree at -Wall -Wextra -Werror; compiling IS the test.
      build werror -DS3D_WERROR=ON
      echo "werror: clean"
      ;;
    asan)
      # AddressSanitizer + LeakSanitizer over the unit-ish tiers.
      build asan -DS3D_SANITIZE=address -DS3D_WERROR=ON
      (cd "$dir" && ASAN_OPTIONS=detect_leaks=1 \
        ctest -L "resilience|equivalence|checkpoint|adaptive|lint|plugin" \
              --output-on-failure)
      ;;
    ubsan)
      # UBSan aborts on the first diagnosed op (-fno-sanitize-recover).
      # The golden-record comparisons skip themselves under any sanitizer
      # (S3D_SANITIZER_LANE): committed goldens pin the default build's FP
      # codegen, which instrumentation perturbs; every within-build
      # bitwise contract still runs at full strength.
      build ubsan -DS3D_SANITIZE=undefined -DS3D_WERROR=ON
      (cd "$dir" && ctest -L "resilience|equivalence|passes|lint|plugin" \
              --output-on-failure)
      ;;
    tsan)
      build tsan -DS3D_SANITIZE=thread -DS3D_WERROR=ON
      (cd "$dir" && ctest -L "resilience|equivalence|checkpoint|adaptive|plugin" \
              -E "^Golden" --output-on-failure)
      ;;
    tidy)
      command -v clang-tidy >/dev/null ||
        { echo "tidy: clang-tidy not on PATH; skipping" >&2; exit 3; }
      build tidy -DS3D_TIDY=ON
      echo "tidy: clean"
      ;;
    *)
      echo "unknown lane '$lane' (lint werror asan ubsan tsan tidy)" >&2
      exit 2
      ;;
  esac
done
echo "run_static: all lanes passed"
