// s3d::fault unit tests: plan matching (Nth-call, probability, rank
// targeting, firing caps), typed InjectedFault, deterministic corruption
// placement, and — the core contract — schedule determinism: the same
// seed and plans produce the identical fault schedule on 1 and 8 ranks,
// with tracing enabled, regardless of thread interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "resilience/fault.hpp"
#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace fault = s3d::fault;
namespace trace = s3d::trace;
namespace vmpi = s3d::vmpi;

#ifndef S3D_FAULTS_DISABLED

namespace {

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 42) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

/// (site, rank, call) triples from the fired log, sorted (cross-rank
/// interleaving in the raw log is scheduling-dependent; the per-rank
/// content is not).
std::vector<std::tuple<std::string, int, long>> sorted_fires() {
  std::vector<std::tuple<std::string, int, long>> v;
  for (const auto& f : fault::fired_log())
    v.emplace_back(f.site, f.rank, f.call);
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

TEST(Fault, UnarmedProbeIsNone) {
  FaultSession fs;
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(static_cast<bool>(fault::probe("nowhere")));
}

TEST(Fault, NthCallFiresExactlyOnce) {
  FaultSession fs;
  fault::arm({.site = "t.nth", .kind = fault::Kind::fail, .nth = 2});
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i)
    fired.push_back(static_cast<bool>(fault::probe("t.nth")));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fault::fires_at("t.nth"), 1);
}

TEST(Fault, MaxFiresCapsProbabilityPlans) {
  FaultSession fs;
  fault::arm({.site = "t.cap",
              .kind = fault::Kind::fail,
              .nth = -1,
              .probability = 1.0,
              .max_fires = 2});
  int n = 0;
  for (int i = 0; i < 10; ++i)
    if (fault::probe("t.cap")) ++n;
  EXPECT_EQ(n, 2);
}

TEST(Fault, RankTargetingRestrictsFiring) {
  FaultSession fs;
  fault::arm({.site = "t.rank", .kind = fault::Kind::fail, .nth = 0,
              .rank = 1});
  fault::set_rank(0);
  EXPECT_FALSE(static_cast<bool>(fault::probe("t.rank")));
  fault::set_rank(1);
  EXPECT_TRUE(static_cast<bool>(fault::probe("t.rank")));
  fault::set_rank(0);
}

TEST(Fault, ApplyThrowsTypedInjectedFaultWithContext) {
  FaultSession fs;
  fault::arm({.site = "t.throw", .kind = fault::Kind::fail, .nth = 0});
  const auto a = fault::probe("t.throw");
  ASSERT_TRUE(static_cast<bool>(a));
  try {
    fault::apply(a, "t.throw");
    FAIL() << "apply(fail) did not throw";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.site(), "t.throw");
    EXPECT_NE(std::string(e.what()).find("t.throw"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
  }
}

TEST(Fault, CorruptionPlacementIsDeterministicAndReversible) {
  FaultSession fs;
  fault::arm({.site = "t.corrupt", .kind = fault::Kind::corrupt, .nth = 0});
  const auto a = fault::probe("t.corrupt");
  ASSERT_EQ(a.kind, fault::Kind::corrupt);

  std::vector<std::uint8_t> buf(257, 0xab), ref = buf;
  ASSERT_TRUE(fault::corrupt_bytes(a, buf.data(), buf.size()));
  int ndiff = 0;
  std::size_t where = 0;
  for (std::size_t i = 0; i < buf.size(); ++i)
    if (buf[i] != ref[i]) {
      ++ndiff;
      where = i;
    }
  EXPECT_EQ(ndiff, 1);
  EXPECT_EQ(buf[where], static_cast<std::uint8_t>(ref[where] ^ 0x40));

  // Same action word -> same placement.
  std::vector<std::uint8_t> again = ref;
  fault::corrupt_bytes(a, again.data(), again.size());
  EXPECT_EQ(again, buf);
}

TEST(Fault, SameSeedSamePlanSameSchedule) {
  FaultSession fs(0xabcdef);
  const fault::Plan plan{.site = "t.prob",
                         .kind = fault::Kind::fail,
                         .nth = -1,
                         .probability = 0.3,
                         .max_fires = -1};
  const auto run_once = [&] {
    fault::set_seed(0xabcdef);
    fault::arm(plan);
    for (int i = 0; i < 200; ++i) fault::probe("t.prob");
    auto fires = sorted_fires();
    fault::reset();
    return fires;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.empty()) << "p=0.3 over 200 calls never fired";
  EXPECT_LT(a.size(), 200u);
  EXPECT_EQ(a, b);

  // A different seed draws a different schedule.
  fault::set_seed(0x1234);
  fault::arm(plan);
  for (int i = 0; i < 200; ++i) fault::probe("t.prob");
  const auto c = sorted_fires();
  EXPECT_NE(a, c);
}

TEST(Fault, ScheduleIsIdenticalOn1And8RanksUnderTrace) {
  // The per-rank fault schedule must be a pure function of (seed, site,
  // plan, rank): the same on every run, on any rank count, with tracing
  // on (trace probes must not perturb the fault stream).
  trace::clear();
  trace::set_enabled(true);
  const fault::Plan plan{.site = "t.mpi",
                         .kind = fault::Kind::delay,
                         .nth = -1,
                         .probability = 0.25,
                         .max_fires = -1,
                         .delay_ms = 0.0};

  const auto run_ranks = [&](int nranks) {
    fault::set_seed(77);
    fault::arm(plan);
    vmpi::run(nranks, [](vmpi::Comm& comm) {
      for (int i = 0; i < 100; ++i) fault::probe("t.mpi");
      comm.barrier();
    });
    auto fires = sorted_fires();
    fault::reset();
    return fires;
  };

  const auto eight_a = run_ranks(8);
  const auto eight_b = run_ranks(8);
  EXPECT_EQ(eight_a, eight_b) << "8-rank schedule not reproducible";
  EXPECT_FALSE(eight_a.empty());

  // Rank 0's sequence in the 8-rank run matches the 1-rank run exactly.
  const auto one = run_ranks(1);
  std::vector<std::tuple<std::string, int, long>> eight_rank0;
  for (const auto& f : eight_a)
    if (std::get<1>(f) == 0) eight_rank0.push_back(f);
  EXPECT_EQ(one, eight_rank0);

  trace::set_enabled(false);
  trace::clear();
}

TEST(Fault, SetSeedClearsCountersSoSchedulesReplay) {
  FaultSession fs;
  fault::arm({.site = "t.reset", .kind = fault::Kind::fail, .nth = 0});
  EXPECT_TRUE(static_cast<bool>(fault::probe("t.reset")));
  EXPECT_FALSE(static_cast<bool>(fault::probe("t.reset")));
  // set_seed keeps plans armed but rewinds counters, firing caps and the
  // log: the exact schedule replays.
  fault::set_seed(42);
  EXPECT_TRUE(fault::fired_log().empty());
  EXPECT_TRUE(static_cast<bool>(fault::probe("t.reset")));
}

#endif  // S3D_FAULTS_DISABLED
