// I/O simulator tests: filesystem model semantics, the fig. 8 checkpoint
// layout, and end-to-end correctness of all four writers (every method
// must produce the identical canonical file image).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "iosim/simfs.hpp"
#include "resilience/fault.hpp"
#include "iosim/workload.hpp"
#include "iosim/writers.hpp"

namespace io = s3d::iosim;

namespace {
io::FsParams tiny_fs(bool store = true) {
  io::FsParams p;
  p.name = "tiny";
  p.n_servers = 4;
  p.stripe_size = 1024;
  p.server_bw = 1e8;
  p.request_latency = 1e-4;
  p.lock_revoke = 1e-3;
  p.mds_service = 1e-3;
  p.store_data = store;
  return p;
}

io::CheckpointSpec tiny_spec() {
  io::CheckpointSpec s;
  s.nx = 4;
  s.ny = 4;
  s.nz = 4;
  s.px = 2;
  s.py = 2;
  s.pz = 2;
  return s;
}
}  // namespace

TEST(SimFS, OpensSerializeAtMds) {
  io::SimFS fs(tiny_fs(false));
  double d1 = 0, d2 = 0, d3 = 0;
  fs.open("a", 0.0, &d1);
  fs.open("b", 0.0, &d2);
  fs.open("c", 0.0, &d3);
  EXPECT_NEAR(d1, 1e-3, 1e-12);
  EXPECT_NEAR(d2, 2e-3, 1e-12);
  EXPECT_NEAR(d3, 3e-3, 1e-12);
}

TEST(SimFS, WriteTimeScalesWithBytes) {
  io::SimFS fs(tiny_fs(false));
  double d = 0;
  const int fd = fs.open("f", 0.0, &d);
  const double t1 = fs.write(fd, 0, 0, 512, d);
  // Same stripe, same client: no revocation, just service time.
  const double t2 = fs.write(fd, 0, 512, 512, t1);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR((t2 - t1), 1e-4 + 512 / 1e8, 1e-9);
}

TEST(SimFS, FalseSharingSerializesAndCharges) {
  io::SimFS fs(tiny_fs(false));
  double d = 0;
  const int fd = fs.open("f", 0.0, &d);
  // Two clients write disjoint halves of the same 1 kB stripe at the same
  // time: the second must wait for the first and pay revocation + RMW.
  const double t1 = fs.write(fd, 0, 0, 512, d);
  const double t2 = fs.write(fd, 1, 512, 512, d);
  EXPECT_GE(t2, t1);  // serialized
  EXPECT_EQ(fs.stats().n_lock_conflicts, 1);
  EXPECT_EQ(fs.stats().n_rmw, 1);
}

TEST(SimFS, AlignedWritesFromDifferentClientsDoNotConflict) {
  io::SimFS fs(tiny_fs(false));
  double d = 0;
  const int fd = fs.open("f", 0.0, &d);
  fs.write(fd, 0, 0, 1024, d);      // stripe 0 (server 0)
  fs.write(fd, 1, 1024, 1024, d);   // stripe 1 (server 1)
  EXPECT_EQ(fs.stats().n_lock_conflicts, 0);
  EXPECT_EQ(fs.stats().n_rmw, 0);
}

TEST(SimFS, StripesMapRoundRobinToServers) {
  // Writes to stripes 0 and 4 (both server 0 with 4 servers) serialize on
  // the server even from the same client.
  io::SimFS fs(tiny_fs(false));
  double d = 0;
  const int fd = fs.open("f", 0.0, &d);
  const double t1 = fs.write(fd, 0, 0, 1024, 0.0);
  const double t2 = fs.write(fd, 0, 4 * 1024, 1024, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(SimFS, StoresData) {
  io::SimFS fs(tiny_fs(true));
  double d = 0;
  const int fd = fs.open("f", 0.0, &d);
  std::vector<std::uint8_t> v{1, 2, 3, 4};
  fs.write(fd, 0, 10, 4, d, v.data());
  const auto& data = fs.file_data("f");
  ASSERT_EQ(data.size(), 14u);
  EXPECT_EQ(data[10], 1);
  EXPECT_EQ(data[13], 4);
}

TEST(Workload, ChunksTileEachScalarExactly) {
  auto spec = tiny_spec();
  // Union of all procs' chunks must cover [0, total) exactly once.
  std::vector<int> cover(spec.total_bytes(), 0);
  for (int p = 0; p < spec.nprocs(); ++p)
    io::for_each_chunk(spec, p, [&](const io::Chunk& c) {
      for (std::size_t b = c.offset; b < c.offset + c.len; ++b) ++cover[b];
    });
  for (std::size_t b = 0; b < cover.size(); ++b)
    ASSERT_EQ(cover[b], 1) << "byte " << b;
}

TEST(Workload, PerProcBytesMatchSpec) {
  auto spec = tiny_spec();
  for (int p = 0; p < spec.nprocs(); ++p) {
    std::size_t bytes = 0;
    io::for_each_chunk(spec, p, [&](const io::Chunk& c) { bytes += c.len; });
    EXPECT_EQ(bytes, spec.bytes_per_proc());
  }
}

TEST(Workload, FourthDimensionNotPartitioned) {
  // Paper fig. 8(b): each proc contributes to every 4th-dim index; with
  // 16 scalars, each proc's chunk count = 16 * ny * nz.
  auto spec = tiny_spec();
  long n = 0;
  io::for_each_chunk(spec, 3, [&](const io::Chunk&) { ++n; });
  EXPECT_EQ(n, 16L * spec.ny * spec.nz);
}

// ---- Writers: every method must produce the identical file image ----

namespace {
void check_shared_file_content(io::SimFS& fs, const io::CheckpointSpec& spec,
                               const std::string& name) {
  const auto& data = fs.file_data(name);
  ASSERT_EQ(data.size(), spec.total_bytes());
  for (std::size_t b = 0; b < data.size(); ++b)
    ASSERT_EQ(data[b], io::expected_byte(b)) << "byte " << b;
}
}  // namespace

TEST(Writers, NativeCollectiveProducesCanonicalFile) {
  io::SimFS fs(tiny_fs(true));
  auto spec = tiny_spec();
  auto r = io::write_native_collective(fs, spec, {}, 0, 0.0);
  EXPECT_EQ(r.bytes, spec.total_bytes());
  check_shared_file_content(fs, spec, "ckpt0.field");
}

TEST(Writers, CachingProducesCanonicalFile) {
  io::SimFS fs(tiny_fs(true));
  auto spec = tiny_spec();
  auto r = io::write_mpiio_caching(fs, spec, {}, 0, 0.0);
  EXPECT_EQ(r.bytes, spec.total_bytes());
  check_shared_file_content(fs, spec, "ckpt0.field");
}

TEST(Writers, WriteBehindProducesCanonicalFile) {
  io::SimFS fs(tiny_fs(true));
  auto spec = tiny_spec();
  auto r = io::write_write_behind(fs, spec, {}, 0, 0.0);
  EXPECT_EQ(r.bytes, spec.total_bytes());
  check_shared_file_content(fs, spec, "ckpt0.field");
}

TEST(Writers, FortranProducesPerProcessFilesWithLocalStreams) {
  io::SimFS fs(tiny_fs(true));
  auto spec = tiny_spec();
  auto r = io::write_fortran(fs, spec, {}, 0, 0.0);
  EXPECT_EQ(r.bytes, spec.total_bytes());
  for (int p = 0; p < spec.nprocs(); ++p) {
    const auto& data = fs.file_data("ckpt0.p" + std::to_string(p));
    ASSERT_EQ(data.size(), spec.bytes_per_proc());
    // Private file = concatenation of the proc's global chunks.
    std::size_t pos = 0;
    bool ok = true;
    io::for_each_chunk(spec, p, [&](const io::Chunk& c) {
      for (std::size_t b = 0; b < c.len; ++b)
        if (data[pos + b] != io::expected_byte(c.offset + b)) ok = false;
      pos += c.len;
    });
    EXPECT_TRUE(ok) << "proc " << p;
  }
}

TEST(Writers, AlignedMethodsAvoidFalseSharing) {
  // With page size == stripe size, caching and write-behind must generate
  // zero RMW cycles, while the unaligned native collective must generate
  // some.
  auto spec = tiny_spec();
  {
    io::SimFS fs(tiny_fs(false));
    io::write_mpiio_caching(fs, spec, {}, 0, 0.0);
    EXPECT_EQ(fs.stats().n_rmw, 0);
  }
  {
    io::SimFS fs(tiny_fs(false));
    io::write_write_behind(fs, spec, {}, 0, 0.0);
    EXPECT_EQ(fs.stats().n_rmw, 0);
  }
  {
    io::SimFS fs(tiny_fs(false));
    io::write_native_collective(fs, spec, {}, 0, 0.0);
    EXPECT_GT(fs.stats().n_lock_conflicts + fs.stats().n_rmw, 0);
  }
}

TEST(Writers, FortranPaysOpenCostProportionalToProcs) {
  auto spec = tiny_spec();  // 8 procs
  io::SimFS fs(tiny_fs(false));
  auto r8 = io::write_fortran(fs, spec, {}, 0, 0.0);
  // 8 opens serialized at 1 ms each.
  EXPECT_NEAR(r8.open_time, 8e-3, 1e-9);

  io::SimFS fs2(tiny_fs(false));
  auto rc = io::write_native_collective(fs2, spec, {}, 0, 0.0);
  EXPECT_NEAR(rc.open_time, 1e-3, 1e-9);  // one shared open
}

TEST(Writers, TimesArePositiveAndFinite) {
  auto spec = tiny_spec();
  io::SimFS fs(io::lustre_like());
  for (auto* f : {&io::write_fortran, &io::write_native_collective,
                  &io::write_mpiio_caching, &io::write_write_behind}) {
    auto r = (*f)(fs, spec, {}, 0, 0.0);
    EXPECT_GT(r.write_time, 0.0);
    EXPECT_GT(r.bandwidth(), 0.0);
  }
}

// --- Resilience: descriptive errors and transient-write retry ---

TEST(SimFS, FileDataErrorsAreDescriptive) {
  io::SimFS fs(tiny_fs(true));
  try {
    fs.file_data("ghost.bin");
    FAIL() << "missing file returned data";
  } catch (const s3d::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ghost.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("tiny"), std::string::npos)
        << "filesystem name missing from: " << what;
  }

  io::SimFS fs2(tiny_fs(false));
  double done = 0.0;
  const int fd = fs2.open("a.bin", 0.0, &done);
  fs2.write(fd, 0, 0, 8, done);
  try {
    fs2.file_data("a.bin");
    FAIL() << "store_data=false returned data";
  } catch (const s3d::Error& e) {
    EXPECT_NE(std::string(e.what()).find("store_data"), std::string::npos)
        << e.what();
  }
}

#ifndef S3D_FAULTS_DISABLED

namespace {
struct FaultSession {
  FaultSession() { s3d::fault::set_seed(99); }
  ~FaultSession() { s3d::fault::reset(); }
};
}  // namespace

TEST(SimFS, TransientWriteFaultsRetryWithBackoff) {
  FaultSession fsess;
  // Two consecutive transient failures on the first write call, then
  // clean: the write must succeed after two backoff delays.
  s3d::fault::arm({.site = "iosim.write", .kind = s3d::fault::Kind::fail,
                   .nth = 0});
  s3d::fault::arm({.site = "iosim.write", .kind = s3d::fault::Kind::fail,
                   .nth = 1});
  auto p = tiny_fs(false);
  io::SimFS fs(p);
  double done = 0.0;
  const int fd = fs.open("ck.bin", 0.0, &done);
  const double t = fs.write(fd, 0, 0, 1024, done);
  EXPECT_EQ(fs.stats().n_retried_writes, 1);
  EXPECT_EQ(fs.stats().n_retries, 2);
  // Exponential: retry_backoff + 2*retry_backoff.
  EXPECT_NEAR(fs.stats().retry_delay_s, 3 * p.retry_backoff, 1e-12);
  EXPECT_GE(t, done + 3 * p.retry_backoff);
  EXPECT_EQ(fs.file_size("ck.bin"), 1024u);
}

TEST(SimFS, PersistentWriteFaultExhaustsRetryBudget) {
  FaultSession fsess;
  s3d::fault::arm({.site = "iosim.write", .kind = s3d::fault::Kind::fail,
                   .nth = -1, .probability = 1.0, .max_fires = -1});
  auto p = tiny_fs(false);
  p.write_retries = 2;
  io::SimFS fs(p);
  double done = 0.0;
  const int fd = fs.open("ck.bin", 0.0, &done);
  EXPECT_THROW(fs.write(fd, 0, 0, 64, done), s3d::fault::InjectedFault);
  EXPECT_EQ(fs.stats().n_retries, 2);
  EXPECT_EQ(fs.stats().n_writes, 0) << "failed write was accounted";
}

TEST(SimFS, DroppedWritesAreCountedNotStored) {
  FaultSession fsess;
  s3d::fault::arm({.site = "iosim.write", .kind = s3d::fault::Kind::drop,
                   .nth = 0});
  io::SimFS fs(tiny_fs(true));
  double done = 0.0;
  const int fd = fs.open("d.bin", 0.0, &done);
  const std::vector<std::uint8_t> payload(64, 0x5a);
  fs.write(fd, 0, 0, payload.size(), done, payload.data());
  EXPECT_EQ(fs.stats().n_dropped_writes, 1);
  EXPECT_EQ(fs.file_size("d.bin"), 0u) << "dropped write landed";
  // The next write goes through.
  fs.write(fd, 0, 0, payload.size(), done, payload.data());
  EXPECT_EQ(fs.file_size("d.bin"), payload.size());
}

TEST(SimFS, CorruptedWriteDamagesExactlyOneStoredByte) {
  FaultSession fsess;
  s3d::fault::arm({.site = "iosim.write", .kind = s3d::fault::Kind::corrupt,
                   .nth = 0});
  io::SimFS fs(tiny_fs(true));
  double done = 0.0;
  const int fd = fs.open("c.bin", 0.0, &done);
  const std::vector<std::uint8_t> payload(128, 0x11);
  fs.write(fd, 0, 0, payload.size(), done, payload.data());
  const auto& stored = fs.file_data("c.bin");
  ASSERT_EQ(stored.size(), payload.size());
  int ndiff = 0;
  for (std::size_t i = 0; i < payload.size(); ++i)
    if (stored[i] != payload[i]) ++ndiff;
  EXPECT_EQ(ndiff, 1) << "silent corruption should flip exactly one byte";
}

#endif  // S3D_FAULTS_DISABLED
