// Golden pins for the two scenarios introduced with the plugin registry
// (DESIGN.md §15), built THROUGH ScenarioRegistry::build rather than the
// case factories — so the registry's typed-override path (string parse,
// range check, Config::validate) is itself under bitwise regression, on
// top of the usual 1-vs-8-rank and fused-vs-unfused pins from
// golden_common.hpp.
//
// counterflow_ignition: both x faces NSCBC (non-periodic), y periodic;
// 32x24 over {4,2,1} keeps every local extent above the ghost width.
// hit_autoignition: fully periodic 2-D box; 32x32 over {4,2,1}.

#include "golden_common.hpp"

#include "solver/scenario.hpp"

namespace sv = s3d::solver;
using s3d_golden::run_golden_case;

TEST(GoldenScenarios, CounterflowIgnitionTiny) {
  const auto cs = sv::ScenarioRegistry::instance().build(
      "counterflow_ignition", {{"nx", "32"},
                               {"ny", "24"},
                               {"Lx", "0.004"},
                               {"Ly", "0.002"}});
  run_golden_case("counterflow_tiny", cs, 3, true);
}

TEST(GoldenScenarios, HitAutoignitionTiny) {
  const auto cs = sv::ScenarioRegistry::instance().build(
      "hit_autoignition", {{"n", "32"}, {"L", "0.002"}});
  run_golden_case("hit_autoignition_tiny", cs, 3, true);
}
