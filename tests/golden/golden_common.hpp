#pragma once
// Shared golden-run machinery (factored from test_golden_runs.cpp so the
// scenario-registry goldens reuse the identical record format and
// invariance checks).
//
// Each case runs a tiny, fully seeded configuration for a few steps on
// 1 rank and on a multi-rank decomposition, in BOTH execution modes
// (Config::fusion on and off), then:
//   - asserts the decompositions produce bitwise-identical interior
//     fields (rank-count invariance inside the harness itself),
//   - asserts the fused pass plan reproduces the unfused reference path
//     bit for bit (the DESIGN.md §10 fusion contract),
//   - compares per-variable FNV-1a checksums, the final time (hexfloat,
//     bitwise), and both modes' trace call-count summaries against the
//     committed record in tests/golden/data/.
//
// Refresh intentionally with S3D_GOLDEN_REFRESH=1 and commit the diff
// (procedure in DESIGN.md "Observability").

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d_golden {

namespace sv = s3d::solver;
namespace vmpi = s3d::vmpi;
namespace trace = s3d::trace;

struct GoldenRecord {
  std::string t_final_hex;               ///< hexfloat of the final time
  long steps = 0;                        ///< steps taken
  std::vector<std::string> checksums;    ///< per-variable FNV-1a (hex64)
  std::map<std::string, long> spans;     ///< unfused kernel -> total calls
  std::map<std::string, long> spans_fused;  ///< fused-mode span counts
};

inline std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// Run the case on a (px, py, pz) decomposition with tracing on and
// collect everything the golden record covers. `fusion` selects the
// execution mode regardless of the build's S3D_FUSION default.
inline GoldenRecord run_case(const sv::CaseSetup& setup, int nsteps, int px,
                             int py, int pz, bool fusion) {
  const int NX = setup.cfg.x.n, NY = setup.cfg.y.n, NZ = setup.cfg.z.n;
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * NX * NY * NZ);
  GoldenRecord rec;
  sv::Config cfg = setup.cfg;
  cfg.fusion = fusion;

  trace::clear();
  trace::set_enabled(true);
  vmpi::run(px * py * pz, [&](vmpi::Comm& comm) {
    sv::Solver s(cfg, comm, px, py, pz);
    s.initialize(setup.init);
    s.run(nsteps);
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i)
            global[static_cast<std::size_t>(v) * NX * NY * NZ +
                   static_cast<std::size_t>(off[2] + k) * NX * NY +
                   static_cast<std::size_t>(off[1] + j) * NX +
                   (off[0] + i)] = var[l.at(i, j, k)];
    }
    if (comm.rank() == 0) {
      rec.t_final_hex = hexfloat(s.time());
      rec.steps = s.steps_taken();
    }
    comm.barrier();
  });
  const auto summary = trace::summarize();
  trace::set_enabled(false);
  for (const auto& k : summary.kernels) rec.spans[k.name] = k.total_calls();
  trace::clear();

  const std::size_t pts = static_cast<std::size_t>(NX) * NY * NZ;
  for (int v = 0; v < nv; ++v)
    rec.checksums.push_back(s3d::hex64(s3d::fnv1a64(
        global.data() + static_cast<std::size_t>(v) * pts,
        pts * sizeof(double))));
  return rec;
}

inline std::string golden_path(const std::string& name) {
  return std::string(S3D_GOLDEN_DIR) + "/" + name + ".golden";
}

inline void save(const std::string& name, const GoldenRecord& rec) {
  std::ofstream f(golden_path(name));
  ASSERT_TRUE(f.good()) << "cannot write " << golden_path(name);
  f << "# S3D++ golden record for case '" << name << "'.\n"
    << "# Regenerate intentionally: S3D_GOLDEN_REFRESH=1 ctest -L golden\n"
    << "t " << rec.t_final_hex << "\n"
    << "steps " << rec.steps << "\n";
  for (std::size_t v = 0; v < rec.checksums.size(); ++v)
    f << "checksum " << v << " " << rec.checksums[v] << "\n";
  for (const auto& [kname, calls] : rec.spans)
    f << "span " << kname << " " << calls << "\n";
  for (const auto& [kname, calls] : rec.spans_fused)
    f << "span_fused " << kname << " " << calls << "\n";
}

inline bool load(const std::string& name, GoldenRecord& rec) {
  std::ifstream f(golden_path(name));
  if (!f.good()) return false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "t") {
      ss >> rec.t_final_hex;
    } else if (key == "steps") {
      ss >> rec.steps;
    } else if (key == "checksum") {
      std::size_t idx;
      std::string sum;
      ss >> idx >> sum;
      rec.checksums.resize(std::max(rec.checksums.size(), idx + 1));
      rec.checksums[idx] = sum;
    } else if (key == "span") {
      std::string kname;
      long calls;
      ss >> kname >> calls;
      rec.spans[kname] = calls;
    } else if (key == "span_fused") {
      std::string kname;
      long calls;
      ss >> kname >> calls;
      rec.spans_fused[kname] = calls;
    }
  }
  return true;
}

inline void run_golden_case(const std::string& name,
                            const sv::CaseSetup& setup, int nsteps,
                            bool reacting,
                            std::array<int, 3> decomp = {4, 2, 1}) {
  const auto serial = run_case(setup, nsteps, 1, 1, 1, /*fusion=*/false);
  const auto parallel = run_case(setup, nsteps, decomp[0], decomp[1],
                                 decomp[2], /*fusion=*/false);
  const auto serial_f = run_case(setup, nsteps, 1, 1, 1, /*fusion=*/true);
  const auto parallel_f = run_case(setup, nsteps, decomp[0], decomp[1],
                                   decomp[2], /*fusion=*/true);

  // Rank-count invariance is part of the harness contract: 1-rank and
  // multi-rank runs must agree bitwise before either is compared to disk.
  ASSERT_EQ(parallel.checksums, serial.checksums)
      << name << ": 1-rank and multi-rank unfused fields diverged";
  ASSERT_EQ(parallel_f.checksums, serial_f.checksums)
      << name << ": 1-rank and multi-rank fused fields diverged";
  EXPECT_EQ(parallel.t_final_hex, serial.t_final_hex);
  EXPECT_EQ(parallel.steps, serial.steps);

  // The fusion contract (DESIGN.md §10): the fused pass plan changes
  // traversal structure only, never per-cell arithmetic.
  ASSERT_EQ(serial_f.checksums, serial.checksums)
      << name << ": fused and unfused fields diverged";
  EXPECT_EQ(serial_f.t_final_hex, serial.t_final_hex)
      << name << ": fused and unfused final times diverged";

#ifndef S3D_TRACE_DISABLED
  // The instrumentation itself is under regression: the expected
  // subsystems must have produced spans in both modes.
  for (const char* required :
       {"solver.step", "solver.rk_stage", "rhs.eval", "halo.exchange"})
    EXPECT_TRUE(parallel.spans.count(required))
        << name << ": no trace spans from " << required;
  for (const char* required : {"pass.grad", "pass.flux_assemble",
                               "pass.flux_div"})
    EXPECT_TRUE(parallel_f.spans.count(required))
        << name << ": fused mode ran without " << required;
  if (reacting) {
    EXPECT_TRUE(parallel.spans.count("chem.reaction_rate"))
        << name << ": chemistry ran untraced";
  }
#endif

  if (std::getenv("S3D_GOLDEN_REFRESH") != nullptr) {
    GoldenRecord rec = serial;
    rec.spans_fused = serial_f.spans;
    save(name, rec);
    GTEST_SKIP() << "golden record refreshed: " << golden_path(name);
  }

#ifdef S3D_SANITIZER_LANE
  // The committed record pins the *default* build's FP codegen;
  // sanitizer instrumentation perturbs instruction selection enough to
  // change the trajectory's bits. The within-build contracts above
  // (rank invariance, fused==unfused) already ran at full strength —
  // only the cross-build disk comparison is skipped.
  GTEST_SKIP() << "golden records pin the default build's FP codegen";
#endif

  GoldenRecord gold;
  ASSERT_TRUE(load(name, gold))
      << "missing golden record " << golden_path(name)
      << " — generate with S3D_GOLDEN_REFRESH=1";
  EXPECT_EQ(serial.t_final_hex, gold.t_final_hex)
      << name << ": t_final drifted";
  EXPECT_EQ(serial.steps, gold.steps);
  ASSERT_EQ(serial.checksums.size(), gold.checksums.size());
  for (std::size_t v = 0; v < gold.checksums.size(); ++v)
    EXPECT_EQ(serial.checksums[v], gold.checksums[v])
        << name << ": field checksum drifted for variable " << v;
#ifndef S3D_TRACE_DISABLED
  EXPECT_EQ(serial.spans, gold.spans)
      << name << ": unfused trace summary drifted (kernel set or counts)";
  EXPECT_EQ(serial_f.spans, gold.spans_fused)
      << name << ": fused trace summary drifted (kernel set or counts)";
#endif
}

}  // namespace s3d_golden
