// Golden-run regression harness for the direct case factories.
//
// The shared machinery (record format, 1-vs-8-rank and fused-vs-unfused
// bitwise pins, trace-summary comparison, S3D_GOLDEN_REFRESH) lives in
// golden_common.hpp; this file only selects the cases. Any drift —
// numerics, chemistry, halo exchange, RNG, instrumentation coverage —
// fails the test.

#include "golden_common.hpp"

namespace sv = s3d::solver;
using s3d_golden::run_golden_case;

TEST(GoldenRuns, LiftedJetTiny) {
  sv::LiftedJetParams p;
  p.nx = 32;
  p.ny = 24;
  run_golden_case("lifted_jet_tiny", sv::lifted_jet_case(p), 3, true);
}

TEST(GoldenRuns, BunsenTiny) {
  sv::BunsenParams p;
  p.nx = 32;
  p.ny = 24;
  run_golden_case("bunsen_tiny", sv::bunsen_case(p), 3, true);
}

TEST(GoldenRuns, PressureWaveTiny) {
  // Non-reacting control: isolates numerics/halo drift from chemistry.
  // 16^3 over 2x2x2 keeps every local extent above the ghost width.
  run_golden_case("pressure_wave_tiny", sv::pressure_wave_case(16), 3,
                  false, {2, 2, 2});
}
