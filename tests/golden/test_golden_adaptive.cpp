// Golden localized-recovery regression (ctest -L golden / -L adaptive).
//
// One case: a healthy pressure-wave cube whose step-2 scan reports an
// injected single-rank breach at global cell (0,0,0) — block 0 of the
// adaptive tiling. With the escalation ladder enabled the guard must
// recover through rung 1 alone: restore ONLY block 0 from the snapshot
// ring, subcycle it back to the far field's clock, and keep the global
// dt untouched — no global rollback, no dt halving anywhere outside the
// breaching block. Because the verdict, the block map, and every masked
// kernel are collective/bitwise, the recovered final fields must be
// BITWISE IDENTICAL across 1-, 2- and 8-rank decompositions, which this
// test asserts, alongside a committed record in data/ pinning the
// recovery structure (rung counts, final dt scale, final time).
//
// Builds with -DS3D_ADAPTIVE=OFF compile the ladder away; the test
// skips there (the build-noadapt lane proves the legacy goldens hold).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "solver/cases.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace fault = s3d::fault;
namespace vmpi = s3d::vmpi;

namespace {

constexpr int kN = 16;     ///< cube edge (2x2x2-decomposable)
constexpr int kSteps = 4;  ///< guarded steps to complete

struct AdaptiveGolden {
  std::string t_final_hex;
  long steps = 0;
  int subcycle_recoveries = 0;
  int local_rollbacks = 0;
  int rollbacks = 0;
  std::string dt_scale_hex;
  std::vector<std::string> checksums;  ///< per-variable FNV-1a (hex64)
};

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

sv::GuardOptions guard_options() {
  sv::GuardOptions opts;
  sv::AdaptiveOptions ad;
  ad.enabled = true;
  ad.block = 8;  // 16^3 -> 2x2x2 controller blocks
  opts.adaptive = ad;
  return opts;
}

// Run the guarded case with the injected single-rank breach on a
// (px, py, pz) decomposition and collect the global fields plus the
// recovery structure.
AdaptiveGolden run_case(int px, int py, int pz) {
  const sv::CaseSetup setup = sv::pressure_wave_case(kN);
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * kN * kN * kN);
  AdaptiveGolden rec;

  // Rank 0 alone reports an injected failure at its second scan; the
  // collective verdict names global cell (0,0,0) -> block 0 on every
  // decomposition, so the ladder's action is decomposition-invariant.
  fault::set_seed(2026);
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::fail,
              .nth = 1,
              .rank = 0,
              .max_fires = 1});

  vmpi::run(px * py * pz, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    const sv::GuardOptions opts = guard_options();
    const auto rep = sv::run_guarded(s, kSteps, opts, &comm);
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.rollbacks, 0)
        << "a single-block breach must never go global";
    EXPECT_EQ(rep.subcycle_recoveries, 1);
    EXPECT_EQ(rep.dt_scale, 1.0)
        << "rung 1 must not scale the global dt";
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i)
            global[static_cast<std::size_t>(v) * kN * kN * kN +
                   static_cast<std::size_t>(off[2] + k) * kN * kN +
                   static_cast<std::size_t>(off[1] + j) * kN +
                   (off[0] + i)] = var[l.at(i, j, k)];
    }
    if (comm.rank() == 0) {
      rec.t_final_hex = hexfloat(s.time());
      rec.steps = s.steps_taken();
      rec.subcycle_recoveries = rep.subcycle_recoveries;
      rec.local_rollbacks = rep.local_rollbacks;
      rec.rollbacks = rep.rollbacks;
      rec.dt_scale_hex = hexfloat(rep.dt_scale);
    }
    comm.barrier();
  });
  fault::reset();

  const std::size_t pts = static_cast<std::size_t>(kN) * kN * kN;
  for (int v = 0; v < nv; ++v)
    rec.checksums.push_back(s3d::hex64(s3d::fnv1a64(
        global.data() + static_cast<std::size_t>(v) * pts,
        pts * sizeof(double))));
  return rec;
}

std::string golden_path() {
  return std::string(S3D_GOLDEN_DIR) + "/adaptive_recovery.golden";
}

void save(const AdaptiveGolden& rec) {
  std::ofstream f(golden_path());
  ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
  f << "# S3D++ golden record for the localized (rung-1) breach recovery"
       " case.\n"
    << "# Regenerate intentionally: S3D_GOLDEN_REFRESH=1 ctest -L golden\n"
    << "t " << rec.t_final_hex << "\n"
    << "steps " << rec.steps << "\n"
    << "subcycle_recoveries " << rec.subcycle_recoveries << "\n"
    << "local_rollbacks " << rec.local_rollbacks << "\n"
    << "rollbacks " << rec.rollbacks << "\n"
    << "dt_scale " << rec.dt_scale_hex << "\n";
  for (std::size_t v = 0; v < rec.checksums.size(); ++v)
    f << "checksum " << v << " " << rec.checksums[v] << "\n";
}

bool load(AdaptiveGolden& rec) {
  std::ifstream f(golden_path());
  if (!f.good()) return false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "t") {
      ss >> rec.t_final_hex;
    } else if (key == "steps") {
      ss >> rec.steps;
    } else if (key == "subcycle_recoveries") {
      ss >> rec.subcycle_recoveries;
    } else if (key == "local_rollbacks") {
      ss >> rec.local_rollbacks;
    } else if (key == "rollbacks") {
      ss >> rec.rollbacks;
    } else if (key == "dt_scale") {
      ss >> rec.dt_scale_hex;
    } else if (key == "checksum") {
      std::size_t idx;
      std::string sum;
      ss >> idx >> sum;
      rec.checksums.resize(std::max(rec.checksums.size(), idx + 1));
      rec.checksums[idx] = sum;
    }
  }
  return true;
}

}  // namespace

TEST(GoldenAdaptive, LocalizedRecoveryBitwiseAcrossDecompositions) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  const auto serial = run_case(1, 1, 1);
  const auto two = run_case(2, 1, 1);
  const auto eight = run_case(2, 2, 2);

  // The decomposition-invariance contract extends through the localized
  // rungs: identical verdicts, identical masked recovery, identical
  // fields — including on ranks owning no cell of the breaching block.
  ASSERT_EQ(two.checksums, serial.checksums)
      << "1-rank and 2-rank recovered fields diverged";
  ASSERT_EQ(eight.checksums, serial.checksums)
      << "1-rank and 8-rank recovered fields diverged";
  EXPECT_EQ(two.t_final_hex, serial.t_final_hex);
  EXPECT_EQ(eight.t_final_hex, serial.t_final_hex);
  EXPECT_EQ(two.subcycle_recoveries, serial.subcycle_recoveries);
  EXPECT_EQ(eight.subcycle_recoveries, serial.subcycle_recoveries);
  EXPECT_EQ(two.dt_scale_hex, serial.dt_scale_hex);
  EXPECT_EQ(eight.dt_scale_hex, serial.dt_scale_hex);
  EXPECT_EQ(serial.steps, kSteps);

  if (std::getenv("S3D_GOLDEN_REFRESH") != nullptr) {
    save(serial);
    GTEST_SKIP() << "golden record refreshed: " << golden_path();
  }

  AdaptiveGolden gold;
  ASSERT_TRUE(load(gold)) << "missing golden record " << golden_path()
                          << " — generate with S3D_GOLDEN_REFRESH=1";
  EXPECT_EQ(serial.t_final_hex, gold.t_final_hex) << "t_final drifted";
  EXPECT_EQ(serial.steps, gold.steps);
  EXPECT_EQ(serial.subcycle_recoveries, gold.subcycle_recoveries)
      << "recovery schedule drifted";
  EXPECT_EQ(serial.local_rollbacks, gold.local_rollbacks);
  EXPECT_EQ(serial.rollbacks, gold.rollbacks);
  EXPECT_EQ(serial.dt_scale_hex, gold.dt_scale_hex);
  ASSERT_EQ(serial.checksums.size(), gold.checksums.size());
  for (std::size_t v = 0; v < serial.checksums.size(); ++v)
    EXPECT_EQ(serial.checksums[v], gold.checksums[v])
        << "variable " << v << " drifted";
}
