// Golden health-recovery regression (ctest -L golden / -L health).
//
// One case: a pressure-wave cube driven with a fixed dt ~20x the stable
// limit. Unguarded, the run provably diverges (asserted in-harness).
// Under run_guarded the sentinel detects each breach, rolls back to the
// in-memory snapshot ring, halves dt and completes — and because every
// verdict is collective and every restore bitwise, the recovered final
// fields must be BITWISE IDENTICAL across 1-, 2- and 8-rank
// decompositions of the same run. The committed record in data/ also
// pins the recovery structure (rollback count, final dt scale, final
// time) against drift.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace vmpi = s3d::vmpi;

namespace {

constexpr int kN = 16;        ///< cube edge (2x2x2-decomposable)
constexpr int kSteps = 4;     ///< guarded steps to complete
constexpr double kDtFactor = 20.0;  ///< fixed dt in units of stable dt

struct HealthGolden {
  std::string t_final_hex;
  long steps = 0;
  int rollbacks = 0;
  std::string dt_scale_hex;
  std::vector<std::string> checksums;  ///< per-variable FNV-1a (hex64)
};

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

sv::GuardOptions guard_options() {
  sv::GuardOptions opts;
  // The blow-up is organic: let the state actually diverge and the scan
  // catch the contamination, rather than tripping the dt check first.
  opts.health.check_dt = false;
  opts.max_rollbacks = 30;
  // Keep retrying at the newest snapshot: the ring never pops empty, so
  // recovery needs no on-disk fallback.
  opts.retries_per_snapshot = 100;
  opts.ring_depth = 2;
  return opts;
}

// Run the guarded blow-up on a (px, py, pz) decomposition and collect the
// global fields plus the recovery structure.
HealthGolden run_guarded_case(double dt_fixed, int px, int py, int pz) {
  const sv::CaseSetup setup = sv::pressure_wave_case(kN);
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * kN * kN * kN);
  HealthGolden rec;

  vmpi::run(px * py * pz, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    sv::GuardOptions opts = guard_options();
    opts.dt_fixed = dt_fixed;
    const auto rep = sv::run_guarded(s, kSteps, opts, &comm);
    EXPECT_TRUE(rep.completed);
    EXPECT_GE(rep.rollbacks, 1)
        << "the blow-up dt must actually trigger recovery";
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i)
            global[static_cast<std::size_t>(v) * kN * kN * kN +
                   static_cast<std::size_t>(off[2] + k) * kN * kN +
                   static_cast<std::size_t>(off[1] + j) * kN +
                   (off[0] + i)] = var[l.at(i, j, k)];
    }
    if (comm.rank() == 0) {
      rec.t_final_hex = hexfloat(s.time());
      rec.steps = s.steps_taken();
      rec.rollbacks = rep.rollbacks;
      rec.dt_scale_hex = hexfloat(rep.dt_scale);
    }
    comm.barrier();
  });

  const std::size_t pts = static_cast<std::size_t>(kN) * kN * kN;
  for (int v = 0; v < nv; ++v)
    rec.checksums.push_back(s3d::hex64(s3d::fnv1a64(
        global.data() + static_cast<std::size_t>(v) * pts,
        pts * sizeof(double))));
  return rec;
}

std::string golden_path() {
  return std::string(S3D_GOLDEN_DIR) + "/health_recovery.golden";
}

void save(const HealthGolden& rec) {
  std::ofstream f(golden_path());
  ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
  f << "# S3D++ golden record for the guarded blow-up recovery case.\n"
    << "# Regenerate intentionally: S3D_GOLDEN_REFRESH=1 ctest -L golden\n"
    << "t " << rec.t_final_hex << "\n"
    << "steps " << rec.steps << "\n"
    << "rollbacks " << rec.rollbacks << "\n"
    << "dt_scale " << rec.dt_scale_hex << "\n";
  for (std::size_t v = 0; v < rec.checksums.size(); ++v)
    f << "checksum " << v << " " << rec.checksums[v] << "\n";
}

bool load(HealthGolden& rec) {
  std::ifstream f(golden_path());
  if (!f.good()) return false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "t") {
      ss >> rec.t_final_hex;
    } else if (key == "steps") {
      ss >> rec.steps;
    } else if (key == "rollbacks") {
      ss >> rec.rollbacks;
    } else if (key == "dt_scale") {
      ss >> rec.dt_scale_hex;
    } else if (key == "checksum") {
      std::size_t idx;
      std::string sum;
      ss >> idx >> sum;
      rec.checksums.resize(std::max(rec.checksums.size(), idx + 1));
      rec.checksums[idx] = sum;
    }
  }
  return true;
}

}  // namespace

TEST(GoldenHealth, GuardedBlowupRecoversBitwiseAcrossDecompositions) {
  const sv::CaseSetup setup = sv::pressure_wave_case(kN);

  // The fixed dt is computed once (serially) and passed verbatim to every
  // decomposition, mirroring how a production run would misconfigure it.
  double dt0 = 0.0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    dt0 = s.stable_dt();
  }
  const double dt_fixed = kDtFactor * dt0;

  // Prove the case diverges unguarded: stepped blind at this dt the state
  // must go non-finite (or the sentinel itself is pointless here).
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    bool diverged = false;
    for (int n = 0; n < 30 && !diverged; ++n) {
      s.step(dt_fixed);
      const auto& l = s.layout();
      for (int v = 0; v < s.state().nv() && !diverged; ++v)
        for (int k = 0; k < l.nz && !diverged; ++k)
          for (int j = 0; j < l.ny && !diverged; ++j)
            for (int i = 0; i < l.nx && !diverged; ++i)
              if (!std::isfinite(s.state().at(v, i, j, k))) diverged = true;
    }
    ASSERT_TRUE(diverged)
        << "blow-up dt no longer diverges unguarded; raise kDtFactor";
  }

  const auto serial = run_guarded_case(dt_fixed, 1, 1, 1);
  const auto two = run_guarded_case(dt_fixed, 2, 1, 1);
  const auto eight = run_guarded_case(dt_fixed, 2, 2, 2);

  // The decomposition-invariance contract extends through recovery:
  // identical verdicts, identical rollback schedule, identical fields.
  ASSERT_EQ(two.checksums, serial.checksums)
      << "1-rank and 2-rank recovered fields diverged";
  ASSERT_EQ(eight.checksums, serial.checksums)
      << "1-rank and 8-rank recovered fields diverged";
  EXPECT_EQ(two.t_final_hex, serial.t_final_hex);
  EXPECT_EQ(eight.t_final_hex, serial.t_final_hex);
  EXPECT_EQ(two.rollbacks, serial.rollbacks);
  EXPECT_EQ(eight.rollbacks, serial.rollbacks);
  EXPECT_EQ(two.dt_scale_hex, serial.dt_scale_hex);
  EXPECT_EQ(eight.dt_scale_hex, serial.dt_scale_hex);
  EXPECT_EQ(serial.steps, kSteps);

  if (std::getenv("S3D_GOLDEN_REFRESH") != nullptr) {
    save(serial);
    GTEST_SKIP() << "golden record refreshed: " << golden_path();
  }

  HealthGolden gold;
  ASSERT_TRUE(load(gold)) << "missing golden record " << golden_path()
                          << " — generate with S3D_GOLDEN_REFRESH=1";
  EXPECT_EQ(serial.t_final_hex, gold.t_final_hex) << "t_final drifted";
  EXPECT_EQ(serial.steps, gold.steps);
  EXPECT_EQ(serial.rollbacks, gold.rollbacks) << "recovery schedule drifted";
  EXPECT_EQ(serial.dt_scale_hex, gold.dt_scale_hex);
  ASSERT_EQ(serial.checksums.size(), gold.checksums.size());
  for (std::size_t v = 0; v < gold.checksums.size(); ++v)
    EXPECT_EQ(serial.checksums[v], gold.checksums[v])
        << "recovered field checksum drifted for variable " << v;
}
