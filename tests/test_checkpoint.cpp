// Restart / analysis / min-max file tests: bit-exact state round trips,
// restart-continuation equivalence, self-describing analysis containers,
// and the workflow-facing exports.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <numbers>
#include <string>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/random.hpp"
#include "solver/checkpoint.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fs = std::filesystem;
using std::numbers::pi;

namespace {

sv::Config small_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void wavy_init(double x, double y, double, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * pi * x / 0.01);
  st.v = 1.0 * std::cos(2 * pi * y / 0.01);
  st.w = 0.0;
  st.T = 300.0 + 8.0 * std::sin(2 * pi * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct TmpPath {
  std::string p;
  explicit TmpPath(const std::string& name)
      : p((fs::temp_directory_path() / name).string()) {}
  ~TmpPath() { std::remove(p.c_str()); }
};

}  // namespace

TEST(Restart, RoundTripIsBitExact) {
  TmpPath path("s3dpp_restart_test.bin");
  auto cfg = small_cfg();
  sv::Solver a(cfg);
  a.initialize(wavy_init);
  a.run(7);
  sv::write_restart(path.p, a);

  sv::Solver b(cfg);
  b.initialize(wavy_init);  // different state before loading
  b.run(2);
  sv::read_restart(path.p, b);

  EXPECT_DOUBLE_EQ(b.time(), a.time());
  EXPECT_EQ(b.steps_taken(), a.steps_taken());
  const auto& l = a.layout();
  for (int v = 0; v < a.state().nv(); ++v)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i)
        ASSERT_EQ(b.state().at(v, i, j, 0), a.state().at(v, i, j, 0))
            << v << "," << i << "," << j;
}

TEST(Restart, ContinuationMatchesUninterruptedRun) {
  TmpPath path("s3dpp_restart_cont.bin");
  auto cfg = small_cfg();

  sv::Solver full(cfg);
  full.initialize(wavy_init);
  const double dt = 0.5 * full.stable_dt();
  for (int s = 0; s < 10; ++s) full.step(dt);

  sv::Solver first(cfg);
  first.initialize(wavy_init);
  // Match `full`'s eval sequence: stable_dt() runs one RHS evaluation,
  // which advances the Newton warm-start temperature state that restart
  // files now capture. With identical sequences the continuation is
  // bitwise identical, not merely close.
  (void)first.stable_dt();
  for (int s = 0; s < 5; ++s) first.step(dt);
  sv::write_restart(path.p, first);

  sv::Solver second(cfg);
  second.initialize(wavy_init);
  sv::read_restart(path.p, second);
  for (int s = 0; s < 5; ++s) second.step(dt);

  const auto& l = full.layout();
  for (int j = 0; j < l.ny; ++j)
    for (int i = 0; i < l.nx; ++i)
      ASSERT_DOUBLE_EQ(second.state().at(sv::UIndex::rho, i, j, 0),
                       full.state().at(sv::UIndex::rho, i, j, 0));
}

TEST(Restart, HeaderPeekAndMismatchRejection) {
  TmpPath path("s3dpp_restart_hdr.bin");
  auto cfg = small_cfg();
  sv::Solver a(cfg);
  a.initialize(wavy_init);
  a.run(3);
  sv::write_restart(path.p, a);
  EXPECT_DOUBLE_EQ(sv::restart_time(path.p), a.time());

  // A solver with different extents must refuse the file.
  auto cfg2 = small_cfg();
  cfg2.x.n = 16;
  sv::Solver b(cfg2);
  b.initialize(wavy_init);
  EXPECT_THROW(sv::read_restart(path.p, b), s3d::Error);
}

TEST(Restart, RandomizedStateRoundTripsBitwise) {
  // Property test: arbitrary (not physically meaningful) state contents,
  // including denormals-in-spirit tiny values, negatives, and exact
  // zeros, must survive write/read bit-for-bit.
  auto cfg = small_cfg();
  for (std::uint64_t seed : {1ull, 0xfeedull, 0x123456789ull}) {
    TmpPath path("s3dpp_restart_prop_" + std::to_string(seed) + ".bin");
    sv::Solver a(cfg);
    a.initialize(wavy_init);
    s3d::Rng rng(seed);
    const auto& l = a.layout();
    for (int v = 0; v < a.state().nv(); ++v)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          const int kind = rng.uniform_int(0, 9);
          double val = rng.uniform(-1e8, 1e8);
          if (kind == 0) val = 0.0;
          if (kind == 1) val = rng.uniform(-1e-300, 1e-300);
          a.state().at(v, i, j, 0) = val;
        }
    a.set_time(rng.uniform(0.0, 1.0), static_cast<int>(seed % 1000));
    sv::write_restart(path.p, a);

    sv::Solver b(cfg);
    b.initialize(wavy_init);
    sv::read_restart(path.p, b);
    EXPECT_EQ(b.time(), a.time());
    EXPECT_EQ(b.steps_taken(), a.steps_taken());
    for (int v = 0; v < a.state().nv(); ++v)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          ASSERT_EQ(b.state().at(v, i, j, 0), a.state().at(v, i, j, 0))
              << "seed " << seed << " @ " << v << "," << i << "," << j;
  }
}

TEST(Restart, CorruptedByteIsDetectedNotLoaded) {
  TmpPath path("s3dpp_restart_corrupt.bin");
  auto cfg = small_cfg();
  sv::Solver a(cfg);
  a.initialize(wavy_init);
  a.run(3);
  sv::write_restart(path.p, a);

  const auto clean = [&] {
    std::ifstream f(path.p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  }();
  ASSERT_GT(clean.size(), 64u);

  // Flip one byte at several positions spread across the payload (and one
  // in the trailing checksum itself); every corruption must be rejected,
  // and the target solver's state must be left untouched.
  s3d::Rng rng(0xc0ffee);
  std::vector<std::size_t> positions = {64, clean.size() / 2,
                                        clean.size() - 1};
  for (int extra = 0; extra < 5; ++extra)
    positions.push_back(static_cast<std::size_t>(
        rng.uniform_int(64, static_cast<int>(clean.size()) - 1)));

  for (const std::size_t pos : positions) {
    std::string bad = clean;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    {
      std::ofstream f(path.p, std::ios::binary | std::ios::trunc);
      f.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    const double before = b.state().at(sv::UIndex::rho, 3, 3, 0);
    try {
      sv::read_restart(path.p, b);
      FAIL() << "corrupted byte at offset " << pos << " loaded silently";
    } catch (const s3d::Error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
          << "offset " << pos << " reported: " << e.what();
    }
    EXPECT_EQ(b.state().at(sv::UIndex::rho, 3, 3, 0), before)
        << "state mutated by a rejected restart (offset " << pos << ")";
  }

  // The pristine file still loads (the harness above really did corrupt
  // the copy, not the original).
  {
    std::ofstream f(path.p, std::ios::binary | std::ios::trunc);
    f.write(clean.data(), static_cast<std::streamsize>(clean.size()));
  }
  sv::Solver c(cfg);
  c.initialize(wavy_init);
  sv::read_restart(path.p, c);
  EXPECT_EQ(c.time(), a.time());
}

TEST(Restart, TruncatedFileIsRejected) {
  TmpPath path("s3dpp_restart_trunc.bin");
  auto cfg = small_cfg();
  sv::Solver a(cfg);
  a.initialize(wavy_init);
  sv::write_restart(path.p, a);
  const auto full_size = fs::file_size(path.p);
  fs::resize_file(path.p, full_size - 9);  // clip checksum + last byte
  sv::Solver b(cfg);
  b.initialize(wavy_init);
  EXPECT_THROW(sv::read_restart(path.p, b), s3d::Error);
}

TEST(Restart, RejectsGarbageFile) {
  TmpPath path("s3dpp_restart_bad.bin");
  {
    std::ofstream f(path.p, std::ios::binary);
    f << "this is not a restart file";
  }
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  EXPECT_THROW(sv::read_restart(path.p, s), s3d::Error);
}

TEST(AnalysisFile, RoundTripsProfilesAndSlices) {
  TmpPath path("s3dpp_analysis.bin");
  sv::AnalysisFile a;
  a.add_profile("T_centerline", {0, 1, 2}, {300, 400, 500});
  a.add_profile("Y_OH", {0, 0.5}, {1e-4, 2e-4});
  a.add_slice("T_xy", 3, 2, {1, 2, 3, 4, 5, 6});
  a.write(path.p);

  auto b = sv::AnalysisFile::read(path.p);
  ASSERT_EQ(b.profile_names().size(), 2u);
  ASSERT_EQ(b.slice_names().size(), 1u);
  const auto& [x, y] = b.profile("T_centerline");
  EXPECT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(y[2], 500.0);
  const auto [nx, ny, data] = b.slice("T_xy");
  EXPECT_EQ(nx, 3);
  EXPECT_EQ(ny, 2);
  EXPECT_DOUBLE_EQ((*data)[5], 6.0);
}

TEST(AnalysisFile, ExportsWorkflowReadableXY) {
  sv::AnalysisFile a;
  a.add_profile("trace", {0, 1, 2, 3}, {5, 6, 7, 8});
  const std::string stem =
      (fs::temp_directory_path() / "s3dpp_xy_test").string();
  auto files = a.export_xy(stem);
  ASSERT_EQ(files.size(), 1u);
  std::ifstream f(files[0]);
  double x, y;
  int n = 0;
  while (f >> x >> y) ++n;
  EXPECT_EQ(n, 4);
  std::remove(files[0].c_str());
}

TEST(AnalysisFile, MissingNameThrows) {
  sv::AnalysisFile a;
  EXPECT_THROW(a.profile("nope"), s3d::Error);
  EXPECT_THROW(a.slice("nope"), s3d::Error);
}

TEST(MinMax, CollectAndWrite) {
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  s.run(2);
  auto mm = sv::collect_minmax(s);
  ASSERT_TRUE(mm.count("T"));
  EXPECT_LT(mm["T"].first, mm["T"].second);
  EXPECT_GT(mm["T"].first, 250.0);

  TmpPath path("s3dpp_minmax.txt");
  sv::write_minmax(path.p, mm);
  std::ifstream f(path.p);
  std::string var;
  double lo, hi;
  int n = 0;
  while (f >> var >> lo >> hi) {
    EXPECT_LE(lo, hi);
    ++n;
  }
  EXPECT_GE(n, 4);
}
