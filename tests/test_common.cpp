// Common-module tests: fields, error handling, RNG, table printing.

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/field.hpp"
#include "common/random.hpp"
#include "common/table.hpp"

using namespace s3d;

TEST(Field3, IndexingIsXFastest) {
  Field3 f(4, 3, 2);
  f(1, 0, 0) = 1.0;
  f(0, 1, 0) = 2.0;
  f(0, 0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[4], 2.0);
  EXPECT_DOUBLE_EQ(f[12], 3.0);
}

TEST(Field3, FillAndSize) {
  Field3 f(5, 4, 3, 7.5);
  EXPECT_EQ(f.size(), 60u);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_DOUBLE_EQ(f[i], 7.5);
  f.fill(-1.0);
  EXPECT_DOUBLE_EQ(f(4, 3, 2), -1.0);
}

TEST(Field3, RejectsNonPositiveExtents) {
  EXPECT_THROW(Field3(0, 1, 1), Error);
}

TEST(Field4, ComponentsAreContiguous) {
  Field4 f(3, 2, 1, 4);
  f(0, 0, 0, 2) = 9.0;
  auto c2 = f.comp(2);
  EXPECT_EQ(c2.size(), 6u);
  EXPECT_DOUBLE_EQ(c2[0], 9.0);
  // Different components do not alias.
  f.comp(1)[0] = 5.0;
  EXPECT_DOUBLE_EQ(f(0, 0, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(f(0, 0, 0, 2), 9.0);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    S3D_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng r(99);
  double s = 0, s2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(1.0, 2.0);
    s += v;
    s2 += v * v;
  }
  EXPECT_NEAR(s / n, 1.0, 0.1);
  EXPECT_NEAR(s2 / n - (s / n) * (s / n), 4.0, 0.3);
}

TEST(Table, AlignsColumnsAndPrintsRule) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(Table::num(1.0, 4), "1");
  EXPECT_EQ(Table::num(0.5, 4), "0.5");
  EXPECT_EQ(Table::num(123456.0, 4), "1.235e+05");
}
