// Analysis plugin registry suite (ctest -L plugin, also -L health via
// multi_labels.cmake): typed registry error paths, the fused consumer
// contract (N active analyses ride ONE interior traversal), accumulator
// snapshot/restore bitwise roundtrips, the health-sentinel sidecar (no
// double-counting across rung-1 and rung-3 recoveries, bitwise replay of
// a faulted run), collective agreement under S3D_COLLECTIVE_CHECK, and
// the iosim-style emission retry/drop policy (DESIGN.md §15).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "resilience/fault.hpp"
#include "solver/health.hpp"
#include "solver/scenario.hpp"
#include "solver/solver.hpp"
#include "viz/analysis.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace viz = s3d::viz;
namespace fault = s3d::fault;
namespace vmpi = s3d::vmpi;

namespace {

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 2026) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

/// Small reacting premixed box: periodic, progress-variable endpoints
/// populated, cheap enough for multi-run determinism tests.
sv::CaseSetup hit_case(int n = 16) {
  return sv::ScenarioRegistry::instance().build(
      "hit_autoignition", {{"n", std::to_string(n)}});
}

/// Small non-premixed jet: mixture-fraction streams for the Z-based
/// passes, non-periodic x (margin-exclusion coverage for apriori).
sv::CaseSetup jet_case() {
  return sv::ScenarioRegistry::instance().build("lifted_jet",
                                                {{"nx", "32"},
                                                 {"ny", "16"},
                                                 {"Lx", "0.004"},
                                                 {"Ly", "0.002"},
                                                 {"u_jet", "80"},
                                                 {"u_rms", "6"}});
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::string tmp_dir(const char* tag) {
  const std::string d = std::string("/tmp/s3dpp_analysis_") + tag;
  std::filesystem::create_directories(d);
  return d;
}

}  // namespace

TEST(AnalysisRegistry, ListsEveryBuiltinSorted) {
  const auto names = viz::AnalysisRegistry::instance().names();
  const std::vector<std::string> expect = {
      "apriori_subgrid", "conditional_means", "insitu_render",
      "scalar_dissipation"};
  EXPECT_EQ(names, expect);
}

TEST(AnalysisRegistry, UnknownNameListsRegisteredAnalyses) {
  try {
    viz::AnalysisRegistry::instance().at("no_such_pass");
    FAIL() << "expected AnalysisError";
  } catch (const viz::AnalysisError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_pass"), std::string::npos);
    EXPECT_NE(msg.find("conditional_means"), std::string::npos);
    EXPECT_NE(msg.find("scalar_dissipation"), std::string::npos);
  }
}

TEST(AnalysisRegistry, DuplicateRegistrationThrows) {
  viz::AnalysisSpec dup;
  dup.name = "conditional_means";
  dup.make = [](const sv::ParamMap&) {
    return std::unique_ptr<viz::AnalysisPass>();
  };
  EXPECT_THROW(viz::AnalysisRegistry::instance().add(std::move(dup)),
               viz::AnalysisError);
}

TEST(AnalysisRegistry, ParameterValidationIsTyped) {
  auto& reg = viz::AnalysisRegistry::instance();
  try {
    reg.build("conditional_means", {{"bogus", "1"}});
    FAIL() << "expected ConfigError";
  } catch (const sv::ConfigError& e) {
    // s3dlint:allow(xref): field is composed at runtime from the key
    EXPECT_EQ(e.field(), "analysis.conditional_means.bogus");
    EXPECT_NE(std::string(e.what()).find("bins"), std::string::npos);
  }
  EXPECT_THROW(reg.build("conditional_means", {{"bins", "one"}}),
               sv::ConfigError);
  EXPECT_THROW(reg.build("conditional_means", {{"bins", "1"}}),
               sv::ConfigError);
  EXPECT_THROW(reg.build("scalar_dissipation", {{"D", "-1"}}),
               sv::ConfigError);
  EXPECT_THROW(reg.build("apriori_subgrid", {{"width", "9"}}),
               sv::ConfigError);
}

TEST(AnalysisDriver, FusedConsumersShareOneTraversal) {
  const auto cs = jet_case();
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  viz::AnalysisDriver d(cs);
  d.add("conditional_means");
  d.add("scalar_dissipation");
  d.add("apriori_subgrid");
  d.attach(s);
  d.invoke(0);
  EXPECT_EQ(d.pass_stats().sweeps, 1)
      << "three analyses must ride one interior traversal";
  EXPECT_EQ(d.pass_stats().stages, 3);
  d.invoke(1);
  EXPECT_EQ(d.pass_stats().sweeps, 2);
  EXPECT_EQ(d.invocations(), 2);
}

TEST(AnalysisDriver, UnusableScenarioPairingIsTyped) {
  const auto cs = sv::ScenarioRegistry::instance().build(
      "pressure_wave", {{"n", "12"}, {"two_d", "true"}});
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  {
    viz::AnalysisDriver d(cs);
    d.add("conditional_means");
    d.attach(s);
    EXPECT_THROW(d.invoke(0), viz::AnalysisError)
        << "inert case: nothing to condition on";
  }
  // Premixed case: Z-stream passes must refuse rather than misread the
  // unburnt/burnt endpoints as mixing streams.
  const auto hit = hit_case(16);
  sv::Solver sh(hit.cfg);
  sh.initialize(hit.init);
  viz::AnalysisDriver d2(hit);
  d2.add("scalar_dissipation");
  d2.attach(sh);
  EXPECT_THROW(d2.invoke(0), viz::AnalysisError);
}

TEST(AnalysisDriver, AprioriMarginExcludesPhysicalBoundariesOnly) {
  // Periodic box: every interior cell is a filter center.
  const auto hit = hit_case(16);
  sv::Solver sh(hit.cfg);
  sh.initialize(hit.init);
  viz::AnalysisDriver dh(hit);
  dh.add("apriori_subgrid", {{"width", "2"}});
  dh.attach(sh);
  dh.invoke(0);
  std::vector<double> acc;
  dh.snapshot(acc);
  ASSERT_EQ(acc.size(), 6u);
  EXPECT_EQ(acc[0], 16.0 * 16.0);

  // Non-periodic x: cells within the half-width of the global x faces
  // are excluded; periodic y keeps its full extent.
  const auto jet = jet_case();
  sv::Solver sj(jet.cfg);
  sj.initialize(jet.init);
  viz::AnalysisDriver dj(jet);
  dj.add("apriori_subgrid", {{"width", "2"}});
  dj.attach(sj);
  dj.invoke(0);
  acc.clear();
  dj.snapshot(acc);
  const double ny_total = jet.cfg.y.periodic ? 16.0 : 12.0;
  EXPECT_EQ(acc[0], (32.0 - 4.0) * ny_total);
}

TEST(AnalysisDriver, SnapshotRestoreRoundtripIsBitwise) {
  const auto cs = jet_case();
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  viz::AnalysisDriver a(cs);
  a.add("conditional_means", {{"bins", "16"}});
  a.add("scalar_dissipation", {{"bins", "16"}});
  a.attach(s);
  a.invoke(0);
  s.run(2, {}, 5);
  a.invoke(2);

  std::vector<double> snap;
  a.snapshot(snap);
  ASSERT_FALSE(snap.empty());

  viz::AnalysisDriver b(cs);
  b.add("conditional_means", {{"bins", "16"}});
  b.add("scalar_dissipation", {{"bins", "16"}});
  EXPECT_EQ(b.restore(snap), snap.size());
  std::vector<double> snap2;
  b.snapshot(snap2);
  EXPECT_TRUE(bitwise_equal(snap, snap2));
  // Rendered outputs agree too: same accumulators, same CSV bytes.
  EXPECT_EQ(a.passes()[0]->csv(), b.passes()[0]->csv());
  EXPECT_EQ(a.passes()[1]->csv(), b.passes()[1]->csv());

  // A short block is a loud failure, not a silent partial restore.
  snap.pop_back();
  EXPECT_THROW(b.restore(snap), s3d::Error);
}

TEST(AnalysisDriver, RestoreContinueReplaysAccumulatorsBitwise) {
  const auto cs = hit_case(16);
  // Continuous reference: 8 steps, sampling every 2.
  std::vector<double> ref;
  {
    sv::Solver s(cs.cfg);
    s.initialize(cs.init);
    viz::AnalysisDriver d(cs, {.interval = 2});
    d.add("conditional_means");
    d.attach(s);
    s.run(8, [&](int) { d.on_step(s.steps_taken()); }, 4);
    d.snapshot(ref);
  }
  // Interrupted run: snapshot mid-way, restore into a FRESH driver
  // (the checkpoint-restart shape), continue to the same step count.
  std::vector<double> got;
  {
    sv::Solver s(cs.cfg);
    s.initialize(cs.init);
    std::vector<double> mid;
    {
      viz::AnalysisDriver d(cs, {.interval = 2});
      d.add("conditional_means");
      d.attach(s);
      s.run(4, [&](int) { d.on_step(s.steps_taken()); }, 4);
      d.snapshot(mid);
    }
    viz::AnalysisDriver d2(cs, {.interval = 2});
    d2.add("conditional_means");
    ASSERT_EQ(d2.restore(mid), mid.size());
    d2.attach(s);
    s.run(4, [&](int) { d2.on_step(s.steps_taken()); }, 4);
    d2.snapshot(got);
  }
  EXPECT_TRUE(bitwise_equal(ref, got));
}

TEST(AnalysisSidecar, Rung3GlobalRollbackNeverDoubleCounts) {
  auto guarded_samples = [](bool with_fault) {
    FaultSession fs_;
    if (with_fault)
      fault::arm({.site = "solver.health",
                  .kind = fault::Kind::corrupt,
                  .nth = 2,
                  .max_fires = 1});
    const auto cs = hit_case(16);
    sv::Solver s(cs.cfg);
    s.initialize(cs.init);
    viz::AnalysisDriver d(cs, {.interval = 1});
    d.add("conditional_means");
    d.attach(s);
    sv::GuardOptions opts;  // adaptive off: breaches go straight global
    opts.sidecar = d.sidecar();
    opts.on_clean_step = [&](long step) { d.on_step(step); };
    const auto rep = sv::run_guarded(s, 6, opts);
    EXPECT_TRUE(rep.completed);
    if (with_fault) {
      EXPECT_GE(rep.rollbacks, 1);
    }
    std::vector<double> snap;
    d.snapshot(snap);
    double samples = 0.0;
    for (std::size_t b = 0; b < snap.size() / 3; ++b) samples += snap[b];
    return std::pair<double, std::vector<double>>(samples, snap);
  };
  const auto clean = guarded_samples(false);
  const auto faulted = guarded_samples(true);
  // Every committed step sampled exactly once, breached attempts never:
  // the rollback restored the accumulators with the state.
  EXPECT_EQ(clean.first, 6.0 * 16 * 16);
  EXPECT_EQ(faulted.first, 6.0 * 16 * 16)
      << "re-integrated steps must not double-count";
  // Replay determinism: the same faulted run is bitwise repeatable.
  const auto faulted2 = guarded_samples(true);
  EXPECT_TRUE(bitwise_equal(faulted.second, faulted2.second));
}

TEST(AnalysisSidecar, Rung1LocalizedRecoveryKeepsAccumulators) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  const auto cs = hit_case(16);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  viz::AnalysisDriver d(cs, {.interval = 1});
  d.add("conditional_means");
  d.attach(s);
  sv::GuardOptions opts;
  sv::AdaptiveOptions ad;
  ad.enabled = true;
  ad.subcycle_cap = 4;
  opts.adaptive = ad;
  opts.sidecar = d.sidecar();
  opts.on_clean_step = [&](long step) { d.on_step(step); };
  const auto rep = sv::run_guarded(s, 6, opts);
  EXPECT_TRUE(rep.completed);
  ASSERT_GE(rep.events.size(), 1u);
  EXPECT_LE(rep.events[0].rung, 2) << "corrupt breach should stay local";
  std::vector<double> snap;
  d.snapshot(snap);
  double samples = 0.0;
  for (std::size_t b = 0; b < snap.size() / 3; ++b) samples += snap[b];
  EXPECT_EQ(samples, 6.0 * 16 * 16)
      << "rungs 1-2 leave the sidecar untouched; every committed step "
         "samples exactly once";
}

TEST(AnalysisDriver, CollectivesAgreeAcrossRanksUnderCheck) {
  const auto cs = hit_case(16);
  vmpi::RunOptions ro;
  ro.collective_check = true;
  vmpi::run(
      2,
      [&](vmpi::Comm& comm) {
        sv::Solver s(cs.cfg, comm, 1, 2, 1);
        s.initialize(cs.init);
        viz::AnalysisDriver d(cs, {.interval = 2});
        d.add("conditional_means");
        d.add("apriori_subgrid");
        d.attach(s, &comm);
        s.run(4, [&](int) { d.on_step(s.steps_taken()); }, 4);
        // After finish() every rank holds identical accumulators.
        std::vector<double> snap;
        d.snapshot(snap);
        std::vector<double> mx = snap, mn = snap;
        comm.allreduce_max(std::span<double>(mx));
        comm.allreduce_min(std::span<double>(mn));
        for (std::size_t i = 0; i < snap.size(); ++i) {
          EXPECT_EQ(mx[i], snap[i]);
          EXPECT_EQ(mn[i], snap[i]);
        }
      },
      ro);
}

TEST(AnalysisEmit, RetriesTransientFaultsAndDropsOnExhaustion) {
  FaultSession fs_;
  const auto cs = hit_case(16);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  viz::AnalysisOptions opt;
  opt.out_dir = tmp_dir("emit");
  opt.emit_retries = 3;
  opt.backoff_ms = 0.0;
  viz::AnalysisDriver d(cs, opt);
  d.add("conditional_means");
  d.attach(s);
  d.invoke(0);

  // One transient failure on the first attempt: the retry writes it.
  fault::arm({.site = "analysis.emit",
              .kind = fault::Kind::fail,
              .nth = 0,
              .max_fires = 1});
  auto paths = d.emit(0);
  ASSERT_EQ(paths.size(), 2u) << "pass CSV + summary JSON";
  for (const auto& p : paths) EXPECT_TRUE(std::filesystem::exists(p)) << p;

  // Persistent failure: every attempt fires -> dropped, never fatal.
  fault::reset();
  fault::arm({.site = "analysis.emit",
              .kind = fault::Kind::fail,
              .probability = 1.0,
              .max_fires = -1});
  EXPECT_NO_THROW(paths = d.emit(1));
  EXPECT_TRUE(paths.empty());
}

TEST(RenderAnalysis, RegistryBuildsAndRejectsUnknownField) {
  const auto dir = tmp_dir("render");
  auto pass = viz::AnalysisRegistry::instance().build(
      "insitu_render", {{"dir", dir}, {"field", "nope"}});
  const auto cs = hit_case(16);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  const auto& prim = s.primitives();
  viz::AnalysisContext ctx{s, cs, prim, 0, 0.0, nullptr};
  EXPECT_THROW(pass->prepare(ctx), viz::AnalysisError);

  auto ok = viz::AnalysisRegistry::instance().build(
      "insitu_render", {{"dir", dir}, {"field", "T"}});
  ok->prepare(ctx);
  ok->finish(ctx);
  auto* ra = dynamic_cast<viz::RenderAnalysis*>(ok.get());
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->frames_written(), 1);
  EXPECT_TRUE(std::filesystem::exists(dir + "/T_0.ppm"));
}
