// Numerics tests: derivative order of accuracy, exactness on polynomials,
// filter spectral behaviour, and Runge-Kutta convergence order.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "numerics/rk.hpp"
#include "numerics/stencil.hpp"

namespace num = s3d::numerics;
using std::numbers::pi;

namespace {

// A line buffer with ghost space on both sides; `p()` points at interior 0.
struct Line {
  explicit Line(int n) : n(n), buf(n + 2 * num::kGhostFilter, 0.0) {}
  double* p() { return buf.data() + num::kGhostFilter; }
  const double* p() const { return buf.data() + num::kGhostFilter; }
  int n;
  std::vector<double> buf;

  // Fill interior + ghosts with f over a periodic domain [0, L).
  template <typename F>
  void fill_periodic(F f, double L) {
    const double h = L / n;
    for (int i = -num::kGhostFilter; i < n + num::kGhostFilter; ++i) {
      double x = std::fmod(i * h + 10 * L, L);
      p()[i] = f(x);
    }
  }
  // Fill only interior with f over [0, L] inclusive endpoints.
  template <typename F>
  void fill_bounded(F f, double L) {
    const double h = L / (n - 1);
    for (int i = 0; i < n; ++i) p()[i] = f(i * h);
  }
};

double max_deriv_error_periodic(int n) {
  const double L = 2 * pi;
  Line f(n);
  f.fill_periodic([](double x) { return std::sin(x); }, L);
  std::vector<double> df(n);
  num::deriv_line(f.p(), 1, df.data(), 1, n, n / L, {true, true});
  double err = 0.0;
  const double h = L / n;
  for (int i = 0; i < n; ++i)
    err = std::max(err, std::abs(df[i] - std::cos(i * h)));
  return err;
}

}  // namespace

TEST(Deriv, ExactForConstant) {
  Line f(32);
  f.fill_periodic([](double) { return 3.7; }, 1.0);
  std::vector<double> df(32);
  num::deriv_line(f.p(), 1, df.data(), 1, 32, 32.0, {true, true});
  for (double d : df) EXPECT_NEAR(d, 0.0, 1e-12);
}

TEST(Deriv, ExactForPolynomialsUpToDegree8Interior) {
  // The 8th-order central stencil differentiates degree <= 8 polynomials
  // exactly (interior points).
  const int n = 24;
  const double h = 0.1;
  Line f(n);
  auto poly = [](double x) {
    double v = 0.0;
    for (int p = 0; p <= 8; ++p) v += std::pow(x - 1.0, p) / (p + 1.0);
    return v;
  };
  auto dpoly = [](double x) {
    double v = 0.0;
    for (int p = 1; p <= 8; ++p) v += p * std::pow(x - 1.0, p - 1) / (p + 1.0);
    return v;
  };
  for (int i = -num::kGhost; i < n + num::kGhost; ++i) f.p()[i] = poly(i * h);
  std::vector<double> df(n);
  num::deriv_line(f.p(), 1, df.data(), 1, n, 1.0 / h, {true, true});
  for (int i = 0; i < n; ++i) {
    const double scale = std::max(1.0, std::abs(dpoly(i * h)));
    EXPECT_NEAR(df[i], dpoly(i * h), 1e-9 * scale) << i;
  }
}

TEST(Deriv, EighthOrderConvergencePeriodic) {
  const double e1 = max_deriv_error_periodic(16);
  const double e2 = max_deriv_error_periodic(32);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 7.5);
  EXPECT_LT(rate, 9.0);
}

TEST(Deriv, BoundedDomainConvergesAtLeastThirdOrder) {
  // With the reduced-order closures, global convergence is limited by the
  // boundary treatment; verify it is still high-order overall.
  auto err = [](int n) {
    const double L = 1.0;
    Line f(n);
    f.fill_bounded([](double x) { return std::sin(2.5 * x); }, L);
    std::vector<double> df(n);
    const double h = L / (n - 1);
    num::deriv_line(f.p(), 1, df.data(), 1, n, 1.0 / h, {false, false});
    double e = 0.0;
    for (int i = 0; i < n; ++i)
      e = std::max(e, std::abs(df[i] - 2.5 * std::cos(2.5 * i * h)));
    return e;
  };
  const double e1 = err(33), e2 = err(65);
  // The neutrally-stable central closure cascade bottoms out at 2nd order
  // one point in from the boundary; expect ~2nd-order decay.
  EXPECT_GT(std::log2(e1 / e2), 1.9);
}

TEST(Deriv, StridedAccessMatchesContiguous) {
  const int n = 20;
  Line f(n);
  f.fill_periodic([](double x) { return std::exp(std::sin(x)); }, 2 * pi);
  std::vector<double> df1(n);
  num::deriv_line(f.p(), 1, df1.data(), 1, n, 1.0, {true, true});

  // Copy into a strided buffer (stride 7).
  std::vector<double> wide((n + 2 * num::kGhost) * 7, 0.0);
  for (int i = -num::kGhost; i < n + num::kGhost; ++i)
    wide[(i + num::kGhost) * 7] = f.p()[i];
  std::vector<double> df2(n * 3, 0.0);
  num::deriv_line(wide.data() + num::kGhost * 7, 7, df2.data(), 3, n, 1.0,
                  {true, true});
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(df1[i], df2[i * 3]);
}

TEST(Deriv, MetricVersionAppliesPointwiseScale) {
  const int n = 16;
  Line f(n);
  f.fill_periodic([](double x) { return std::sin(x); }, 2 * pi);
  std::vector<double> inv_h(n);
  for (int i = 0; i < n; ++i) inv_h[i] = 1.0 + 0.1 * i;
  std::vector<double> d1(n), d2(n);
  num::deriv_line(f.p(), 1, d1.data(), 1, n, 1.0, {true, true});
  num::deriv_line_metric(f.p(), 1, d2.data(), 1, n, inv_h.data(),
                         {true, true});
  for (int i = 0; i < n; ++i) EXPECT_NEAR(d2[i], d1[i] * inv_h[i], 1e-14);
}

TEST(Filter, PreservesConstants) {
  const int n = 40;
  Line f(n);
  f.fill_periodic([](double) { return 2.5; }, 1.0);
  std::vector<double> out(n);
  num::filter_line(f.p(), 1, out.data(), 1, n, 1.0, {true, true});
  for (double v : out) EXPECT_NEAR(v, 2.5, 1e-13);
}

TEST(Filter, RemovesNyquistSawtooth) {
  // The +1/-1 sawtooth is the grid's highest mode; the 10th-order filter
  // must annihilate it in one application (transfer = 1 - alpha at pi).
  const int n = 40;
  Line f(n);
  for (int i = -num::kGhostFilter; i < n + num::kGhostFilter; ++i)
    f.p()[i] = (((i % 2) + 2) % 2 == 0) ? 1.0 : -1.0;
  std::vector<double> out(n);
  num::filter_line(f.p(), 1, out.data(), 1, n, 1.0, {true, true});
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Filter, BarelyTouchesSmoothModes) {
  // A k=2 mode on 64 points: theta = 2*pi*2/64, damping ~ sin^10(theta/2)
  // ~ 8e-11 -- the filter must be imperceptible on resolved scales.
  const int n = 64;
  Line f(n);
  f.fill_periodic([](double x) { return std::sin(2.0 * x); }, 2 * pi);
  std::vector<double> out(n);
  num::filter_line(f.p(), 1, out.data(), 1, n, 1.0, {true, true});
  for (int i = 0; i < n; ++i) EXPECT_NEAR(out[i], f.p()[i], 1e-8);
}

TEST(Filter, TransferFunctionMatchesMeasuredDamping) {
  // Property check across wavenumbers: measured per-application damping of
  // a pure mode equals filter_transfer.
  const int n = 64;
  for (int k : {4, 8, 16, 24, 32}) {
    Line f(n);
    f.fill_periodic([&](double x) { return std::cos(k * x); }, 2 * pi);
    std::vector<double> out(n);
    num::filter_line(f.p(), 1, out.data(), 1, n, 1.0, {true, true});
    const double theta = 2 * pi * k / n;
    const double expected = num::filter_transfer(theta, 1.0);
    // Compare at a point where cos(k x) = 1 (i = 0).
    EXPECT_NEAR(out[0], expected, 1e-10) << "k=" << k;
  }
}

TEST(Filter, NonPeriodicBoundaryIsStable) {
  // Near non-ghosted boundaries the reduced-order filters must not amplify.
  const int n = 30;
  Line f(n);
  f.fill_bounded([](double x) { return std::sin(20 * x) + x; }, 1.0);
  std::vector<double> out(n);
  num::filter_line(f.p(), 1, out.data(), 1, n, 1.0, {false, false});
  double in_max = 0.0, out_max = 0.0;
  for (int i = 0; i < n; ++i) {
    in_max = std::max(in_max, std::abs(f.p()[i]));
    out_max = std::max(out_max, std::abs(out[i]));
  }
  EXPECT_LE(out_max, in_max * 1.0 + 1e-12);
}

// ---- Runge-Kutta ----

namespace {
double rk_error(const num::RkScheme& scheme, int steps) {
  // du/dt = lambda u with u(0)=1; compare to exp at t=1.
  num::LowStorageRk rk(scheme);
  std::vector<double> u{1.0};
  const double dt = 1.0 / steps;
  for (int s = 0; s < steps; ++s) {
    rk.step(u, s * dt, dt,
            [](std::span<const double> x, double, std::span<double> dx) {
              dx[0] = -2.0 * x[0];
            });
  }
  return std::abs(u[0] - std::exp(-2.0));
}
}  // namespace

TEST(Rk, CarpenterKennedyIsFourthOrder) {
  const double e1 = rk_error(num::rk_carpenter_kennedy4(), 10);
  const double e2 = rk_error(num::rk_carpenter_kennedy4(), 20);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 3.7);
  EXPECT_LT(rate, 4.6);
}

TEST(Rk, WilliamsonIsThirdOrder) {
  const double e1 = rk_error(num::rk_williamson3(), 10);
  const double e2 = rk_error(num::rk_williamson3(), 20);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 2.7);
  EXPECT_LT(rate, 3.6);
}

TEST(Rk, EulerIsFirstOrder) {
  const double e1 = rk_error(num::rk_euler(), 100);
  const double e2 = rk_error(num::rk_euler(), 200);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 0.8);
  EXPECT_LT(rate, 1.2);
}

TEST(Rk, StageTimesAreConsistent) {
  // C[s] must equal sum of B up to stage s-1 ... for 2N schemes the stage
  // time is determined by the A/B recurrence; verify by integrating
  // du/dt = f(t) (state-independent) where the quadrature must be 4th
  // order accurate.
  num::LowStorageRk rk(num::rk_carpenter_kennedy4());
  std::vector<double> u{0.0};
  const int steps = 16;
  const double dt = 1.0 / steps;
  for (int s = 0; s < steps; ++s)
    rk.step(u, s * dt, dt,
            [](std::span<const double>, double t, std::span<double> dx) {
              dx[0] = t * t * t;
            });
  EXPECT_NEAR(u[0], 0.25, 1e-8);
}

TEST(Rk, VectorStateComponentsIndependent) {
  num::LowStorageRk rk(num::rk_carpenter_kennedy4());
  std::vector<double> u{1.0, 2.0, -1.0};
  rk.step(u, 0.0, 0.01,
          [](std::span<const double> x, double, std::span<double> dx) {
            for (std::size_t i = 0; i < x.size(); ++i) dx[i] = -x[i];
          });
  EXPECT_NEAR(u[0], std::exp(-0.01), 1e-10);
  EXPECT_NEAR(u[1], 2 * std::exp(-0.01), 1e-10);
  EXPECT_NEAR(u[2], -std::exp(-0.01), 1e-10);
}
