// Workflow engine tests: token routing, checkpoint/retry fault tolerance,
// file watching with completion markers, morphing, provenance lineage, and
// the full three-pipeline S3D monitoring workflow.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "resilience/fault.hpp"
#include "workflow/actors.hpp"
#include "workflow/s3d_pipeline.hpp"

namespace wf = s3d::workflow;
namespace fs = std::filesystem;

namespace {

// Fresh scratch dir per test.
class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("s3dpp_wf_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  fs::path file(const std::string& name, const std::string& content) {
    const fs::path p = base_ / name;
    std::ofstream f(p);
    f << content;
    return p;
  }

  fs::path base_;
};

// Simple sink actor collecting tokens.
class Sink : public wf::Actor {
 public:
  Sink() : Actor("sink") {}
  bool fire() override {
    bool any = false;
    while (has_input()) {
      got.push_back(take());
      any = true;
    }
    return any;
  }
  std::vector<wf::Token> got;
};

}  // namespace

TEST_F(WorkflowTest, TokensFlowThroughConnections) {
  wf::ProcessFileActor pass(
      "pass", [](const wf::Token& in, wf::Token& out) {
        out["path"] = in.path();
        return true;
      },
      base_ / "pass.log");
  Sink sink;
  pass.connect("out", sink);
  pass.in("in").push(wf::Token("alpha"));
  pass.in("in").push(wf::Token("beta"));

  wf::Workflow g("t");
  g.add(&pass);
  g.add(&sink);
  g.run_until_idle();
  ASSERT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(sink.got[0].path(), "alpha");
  EXPECT_EQ(sink.got[1].path(), "beta");
}

TEST_F(WorkflowTest, ProcessFileRetriesThenSucceeds) {
  const fs::path src = file("a.dat", "data");
  auto inner = wf::copy_op(base_ / "dst");
  wf::ProcessFileActor p("copy", wf::flaky_op(inner, 2), base_ / "p.log",
                         /*max_retries=*/2);
  Sink sink;
  p.connect("out", sink);
  p.in("in").push(wf::Token(src.string()));
  wf::Workflow g("t");
  g.add(&p);
  g.add(&sink);
  g.run_until_idle();
  EXPECT_EQ(p.executed(), 1);
  EXPECT_EQ(p.failed(), 0);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_TRUE(fs::exists(base_ / "dst" / "a.dat"));
}

TEST_F(WorkflowTest, ProcessFileGivesUpAfterRetriesAndLogsError) {
  const fs::path src = file("a.dat", "data");
  wf::ProcessFileActor p(
      "fail", [](const wf::Token&, wf::Token&) { return false; },
      base_ / "p.log", 1);
  Sink err;
  p.connect("error", err);
  p.in("in").push(wf::Token(src.string()));
  wf::Workflow g("t");
  g.add(&p);
  g.add(&err);
  g.run_until_idle();
  EXPECT_EQ(p.failed(), 1);
  ASSERT_EQ(err.got.size(), 1u);
  EXPECT_EQ(err.got[0].get("status"), "failed");
  std::ifstream elog(base_ / "p.log.errors");
  std::string line;
  EXPECT_TRUE(std::getline(elog, line));
}

TEST_F(WorkflowTest, CheckpointSkipsCompletedWorkAfterRestart) {
  const fs::path src = file("a.dat", "data");
  const fs::path log = base_ / "cp.log";
  long copies = 0;
  auto counting = [&](const wf::Token& in, wf::Token& out) {
    ++copies;
    return wf::copy_op(base_ / "dst")(in, out);
  };
  {
    wf::ProcessFileActor p("copy", counting, log);
    Sink s;
    p.connect("out", s);
    p.in("in").push(wf::Token(src.string()));
    wf::Workflow g("t");
    g.add(&p);
    g.add(&s);
    g.run_until_idle();
    EXPECT_EQ(p.executed(), 1);
  }
  // "Restart" the workflow: a new actor instance with the same log must
  // skip the completed input but still emit downstream.
  {
    wf::ProcessFileActor p("copy", counting, log);
    Sink s;
    p.connect("out", s);
    p.in("in").push(wf::Token(src.string()));
    wf::Workflow g("t");
    g.add(&p);
    g.add(&s);
    g.run_until_idle();
    EXPECT_EQ(p.executed(), 0);
    EXPECT_EQ(p.skipped(), 1);
    ASSERT_EQ(s.got.size(), 1u);
    EXPECT_EQ(s.got[0].get("status"), "skipped");
  }
  EXPECT_EQ(copies, 1);
}

TEST_F(WorkflowTest, FileWatcherEmitsOncePerFileAndHonorsMarkers) {
  wf::FileWatcherActor w("w", base_, ".restart", /*require_marker=*/true);
  Sink s;
  w.connect("out", s);
  wf::Workflow g("t");
  g.add(&w);
  g.add(&s);

  file("x.restart", "incomplete");  // no marker yet
  g.run_until_idle();
  EXPECT_EQ(s.got.size(), 0u);

  file("x.restart.done", "");
  g.run_until_idle();
  ASSERT_EQ(s.got.size(), 1u);

  // No duplicate emission on later sweeps.
  g.run_until_idle();
  EXPECT_EQ(s.got.size(), 1u);
}

TEST_F(WorkflowTest, MorphCombinesGroups) {
  wf::MorphActor m("m", 3, base_ / "out");
  Sink s;
  m.connect("out", s);
  for (int i = 0; i < 7; ++i) {
    const std::string n = std::to_string(i);
    const std::string name = "p" + n + ".bin";
    const std::string body = "piece" + n;
    m.in("in").push(wf::Token(file(name, body).string()));
  }
  wf::Workflow g("t");
  g.add(&m);
  g.add(&s);
  g.run_until_idle();
  // 7 pieces -> 2 morphed files, 1 left pending.
  ASSERT_EQ(s.got.size(), 2u);
  std::ifstream f(s.got[0].path(), std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "piece0piece1piece2");
}

TEST_F(WorkflowTest, ProvenanceLineageTracksThroughPipeline) {
  wf::ProvenanceStore prov;
  prov.record("morph", "/run/a.restart", "/work/m0.dat", "ok");
  prov.record("morph", "/run/b.restart", "/work/m0.dat", "ok");
  prov.record("transfer", "/work/m0.dat", "/remote/m0.dat", "ok");
  auto lin = prov.lineage("/remote/m0.dat");
  EXPECT_EQ(lin.size(), 3u);  // both restarts + the morphed file
  EXPECT_EQ(prov.count("morph"), 2);
}

TEST_F(WorkflowTest, SvgPlotWritten) {
  wf::write_svg_polyline(base_ / "p.svg", {0, 1, 2}, {3, 1, 2}, "demo");
  std::ifstream f(base_ / "p.svg");
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("<svg"), std::string::npos);
  EXPECT_NE(all.find("polyline"), std::string::npos);
}

TEST_F(WorkflowTest, FullS3dMonitoringWorkflow) {
  wf::S3dWorkflowDirs dirs{base_ / "run",  base_ / "work",
                           base_ / "remote", base_ / "hpss",
                           base_ / "dash", base_ / "logs"};
  wf::ProvenanceStore prov;
  wf::S3dMonitoringWorkflow mon(dirs, /*restart_pieces=*/4, &prov);
  wf::FakeSimulation sim(dirs.run_dir, 4);

  for (int step = 0; step < 3; ++step) {
    sim.emit_step(step);
    mon.pump();  // workflow keeps up with the simulation
  }

  // Restart pipeline: 3 morphed files transferred and archived.
  EXPECT_EQ(mon.transfer().executed(), 3);
  EXPECT_EQ(mon.archiver().executed(), 3);
  EXPECT_TRUE(fs::exists(dirs.remote_dir / "morph_0.dat"));
  EXPECT_TRUE(fs::exists(dirs.archive_dir / "catalog.txt"));

  // Netcdf pipeline: plots in the dashboard.
  EXPECT_TRUE(fs::exists(dirs.dashboard_dir / "step0.svg"));
  EXPECT_TRUE(fs::exists(dirs.dashboard_dir / "step2.svg"));

  // Min/max pipeline: dashboard traces for both variables, 3 samples.
  EXPECT_EQ(mon.dashboard().samples("T"), 3);
  EXPECT_EQ(mon.dashboard().samples("P"), 3);
  EXPECT_TRUE(fs::exists(dirs.dashboard_dir / "dashboard.txt"));
  EXPECT_TRUE(fs::exists(dirs.dashboard_dir / "T_max.svg"));

  // Provenance: a remote morph file descends from 4 restart pieces.
  const auto lin = prov.lineage((dirs.remote_dir / "morph_0.dat").string());
  EXPECT_GE(lin.size(), 5u);  // 4 pieces + work-dir morph file
}

TEST_F(WorkflowTest, WorkflowRestartSkipsArchivedTransfers) {
  wf::S3dWorkflowDirs dirs{base_ / "run",  base_ / "work",
                           base_ / "remote", base_ / "hpss",
                           base_ / "dash", base_ / "logs"};
  wf::FakeSimulation sim(dirs.run_dir, 2);
  sim.emit_step(0);
  {
    wf::S3dMonitoringWorkflow mon(dirs, 2);
    mon.pump();
    EXPECT_EQ(mon.transfer().executed(), 1);
  }
  // New workflow instance (a restart): the watcher re-discovers the file,
  // morph regenerates it, but transfer/archive skip via their checkpoint
  // logs.
  {
    wf::S3dMonitoringWorkflow mon(dirs, 2);
    mon.pump();
    EXPECT_EQ(mon.transfer().executed(), 0);
    EXPECT_EQ(mon.transfer().skipped(), 1);
    EXPECT_EQ(mon.archiver().skipped(), 1);
  }
}

// --- Engine-level firing faults: retry then dead-letter ---

namespace {

// Throws from fire() `fails` times before working normally.
struct FlakyActor : wf::Actor {
  int fails_left;
  int processed = 0;
  explicit FlakyActor(int fails) : Actor("flaky"), fails_left(fails) {}
  bool fire() override {
    if (!has_input()) return false;
    if (fails_left > 0) {
      --fails_left;
      throw s3d::Error("flaky actor exploded");
    }
    take();
    ++processed;
    return true;
  }
};

struct SinkActor : wf::Actor {
  std::vector<wf::Token> got;
  SinkActor() : Actor("sink") {}
  bool fire() override {
    if (!has_input()) return false;
    got.push_back(take());
    return true;
  }
};

}  // namespace

TEST(WorkflowEngine, TransientFiringFailuresAreRetried) {
  FlakyActor flaky(2);
  flaky.in("in").push(wf::Token("x"));
  wf::Workflow w("retry");
  w.fire_retries = 2;
  w.add(&flaky);
  const long fired = w.run_until_idle();
  EXPECT_EQ(flaky.processed, 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(w.stats().fire_errors, 2);
  EXPECT_EQ(w.stats().retries, 2);
  EXPECT_EQ(w.stats().dead_letters, 0);
}

TEST(WorkflowEngine, ExhaustedRetriesRouteDeadLetterDownstream) {
  FlakyActor flaky(3);  // one full attempt cycle (1 + 2 retries) fails
  SinkActor sink;
  flaky.connect("error", sink);
  flaky.in("in").push(wf::Token("x"));
  wf::Workflow w("deadletter");
  w.fire_retries = 2;
  w.add(&flaky);
  w.add(&sink);
  w.run_until_idle();

  // The poisoned firing dead-lettered; the token itself was processed on
  // the next sweep once the actor recovered.
  EXPECT_EQ(w.stats().dead_letters, 1);
  EXPECT_EQ(w.stats().fire_errors, 3);
  EXPECT_EQ(flaky.processed, 1);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].get("actor"), "flaky");
  EXPECT_EQ(sink.got[0].get("workflow"), "deadletter");
  EXPECT_NE(sink.got[0].get("error").find("exploded"), std::string::npos);
}

TEST(WorkflowEngine, PersistentFailureIsBoundedByDeadLetters) {
  // An actor that never recovers must not wedge run_until_idle: each
  // sweep dead-letters once and the sweep budget bounds the loop.
  FlakyActor flaky(1 << 28);
  flaky.in("in").push(wf::Token("x"));
  wf::Workflow w("poison");
  w.fire_retries = 1;
  w.add(&flaky);
  w.run_until_idle(/*max_sweeps=*/5);
  EXPECT_EQ(flaky.processed, 0);
  EXPECT_EQ(w.stats().dead_letters, 5);
  EXPECT_EQ(flaky.out("error").size(), 5u);
}

#ifndef S3D_FAULTS_DISABLED

TEST(WorkflowEngine, InjectedFireFaultIsRetriedTransparently) {
  s3d::fault::set_seed(7);
  s3d::fault::arm({.site = "workflow.fire",
                   .kind = s3d::fault::Kind::fail,
                   .nth = 0});
  FlakyActor healthy(0);
  healthy.in("in").push(wf::Token("x"));
  wf::Workflow w("injected");
  w.add(&healthy);
  w.run_until_idle();
  s3d::fault::reset();

  EXPECT_EQ(healthy.processed, 1);
  EXPECT_EQ(w.stats().fire_errors, 1);
  EXPECT_EQ(w.stats().retries, 1);
  EXPECT_EQ(w.stats().dead_letters, 0);
}

#endif  // S3D_FAULTS_DISABLED
