// Tests for the extension features: syngas CO/H2 chemistry, the
// constant-volume reactor, and the temporally evolving plane-jet case
// (the paper's non-premixed hero-run class).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/reactor.hpp"
#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"

namespace chem = s3d::chem;
namespace sv = s3d::solver;

namespace {
const chem::Mechanism& syngas() {
  static const chem::Mechanism m = chem::syngas_co_h2();
  return m;
}
}  // namespace

TEST(Syngas, MechanismShape) {
  const auto& m = syngas();
  EXPECT_EQ(m.n_species(), 11);
  EXPECT_EQ(m.n_reactions(), 25);  // 21 H2 entries + 4 CO reactions
  EXPECT_GE(m.index("CO"), 0);
  EXPECT_GE(m.index("CO2"), 0);
}

TEST(Syngas, ChemistryConservesMassAndElements) {
  const auto& m = syngas();
  std::vector<double> c(m.n_species()), wdot(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) c[i] = 1.5e-3 / (1 + i % 4);
  m.production_rates(1500.0, c, wdot);
  double mass = 0.0, C = 0.0, O = 0.0, H = 0.0, scale = 1e-30;
  for (int i = 0; i < m.n_species(); ++i) {
    mass += wdot[i] * m.W(i);
    C += wdot[i] * m.species(i).elements.C;
    O += wdot[i] * m.species(i).elements.O;
    H += wdot[i] * m.species(i).elements.H;
    scale += std::abs(wdot[i]) * m.W(i);
  }
  EXPECT_LE(std::abs(mass), 1e-10 * scale);
  EXPECT_LE(std::abs(C), 1e-10 * scale);
  EXPECT_LE(std::abs(O), 1e-10 * scale);
  EXPECT_LE(std::abs(H), 1e-10 * scale);
}

TEST(Syngas, COConvertsToCO2InHotProducts) {
  const auto& m = syngas();
  // Syngas/air blend at the Hawkes streams' stoichiometric proportion.
  auto Yf = chem::stream_Y_from_X(m, {{"CO", 0.5}, {"H2", 0.1}, {"N2", 0.4}});
  auto Yo = chem::stream_Y_from_X(m, {{"O2", 0.25}, {"N2", 0.75}});
  const double Z = chem::stoichiometric_mixture_fraction(m, Yo, Yf);
  std::vector<double> Y(m.n_species());
  for (int i = 0; i < m.n_species(); ++i)
    Y[i] = (1 - Z) * Yo[i] + Z * Yf[i];
  // Slightly lean of stoichiometric so equilibrium CO is modest.
  for (int i = 0; i < m.n_species(); ++i)
    Y[i] = (1 - 0.8 * Z) * Yo[i] + 0.8 * Z * Yf[i];
  auto [Teq, Yeq] = chem::equilibrium_products(m, 1400.0, 101325.0, Y, 0.01);
  EXPECT_GT(Teq, 2000.0);
  EXPECT_GT(Yeq[m.index("CO2")], 2 * Yeq[m.index("CO")]);
}

TEST(Syngas, IgnitionDelayDecreasesWithTemperature) {
  const auto& m = syngas();
  auto Yf = chem::stream_Y_from_X(m, {{"CO", 0.5}, {"H2", 0.1}, {"N2", 0.4}});
  auto Yo = chem::stream_Y_from_X(m, {{"O2", 0.25}, {"N2", 0.75}});
  std::vector<double> Y(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) Y[i] = 0.85 * Yo[i] + 0.15 * Yf[i];
  const double t_lo = chem::ignition_delay(m, 1150.0, 101325.0, Y, 5e-3);
  const double t_hi = chem::ignition_delay(m, 1400.0, 101325.0, Y, 5e-3);
  ASSERT_GT(t_lo, 0.0);
  ASSERT_GT(t_hi, 0.0);
  EXPECT_LT(t_hi, t_lo);
}

TEST(ConstVolumeReactor, PressureRisesOnBurn) {
  const auto& m = chem::h2_li2004();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  const double rho = m.density(101325.0, 1100.0, Y0);
  chem::ConstVolumeReactor r(m, rho);
  r.set_state(1100.0, Y0);
  const double p0 = r.pressure();
  r.advance(2e-3, 1e-6, 1e-10);
  EXPECT_GT(r.T(), 2400.0);
  // Constant-volume combustion raises the pressure substantially
  // (roughly T_b/T_0 with the mole-count change).
  EXPECT_GT(r.pressure(), 1.8 * p0);
  EXPECT_LT(r.pressure(), 4.0 * p0);
}

TEST(ConstVolumeReactor, HotterThanConstPressureBurn) {
  // The same initial state burns hotter at constant volume (no expansion
  // work).
  const auto& m = chem::h2_li2004();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  const double T0 = 1200.0, p0 = 101325.0;
  const double rho = m.density(p0, T0, Y0);
  chem::ConstVolumeReactor rv(m, rho);
  rv.set_state(T0, Y0);
  rv.advance(2e-3, 1e-6, 1e-10);
  chem::ConstPressureReactor rp(m, p0);
  rp.set_state(T0, Y0);
  rp.advance(2e-3, 1e-6, 1e-10);
  EXPECT_GT(rv.T(), rp.T() + 100.0);
}

TEST(ConstVolumeReactor, MassFractionsStayNormalized) {
  const auto& m = syngas();
  auto Yo = chem::stream_Y_from_X(m, {{"O2", 0.25}, {"N2", 0.75}});
  auto Yf = chem::stream_Y_from_X(m, {{"CO", 0.5}, {"H2", 0.1}, {"N2", 0.4}});
  std::vector<double> Y(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) Y[i] = 0.8 * Yo[i] + 0.2 * Yf[i];
  chem::ConstVolumeReactor r(m, 0.4);
  r.set_state(1300.0, Y);
  r.advance(1e-3, 1e-6, 1e-10);
  double sum = 0.0;
  for (double y : r.Y()) {
    EXPECT_GE(y, 0.0);
    sum += y;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TemporalJet, ShortRunDevelopsShearAndBurns) {
  sv::TemporalJetParams prm;
  prm.nx = 64;
  prm.ny = 64;
  prm.Lx = 0.005;
  prm.Ly = 0.006;
  prm.jet_h = 0.0012;
  prm.dU = 70.0;
  prm.u_rms = 5.0;
  prm.T_ignite = 1800.0;  // short ignition delay so the test stays quick
  auto cs = sv::temporal_jet_case(prm);
  ASSERT_GT(cs.Z_st, 0.2);
  ASSERT_LT(cs.Z_st, 0.6);

  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(150);
  const auto& prim = s.primitives();
  const auto& l = s.layout();
  const auto& mech = *cs.cfg.mech;
  double T_max = 0.0, co2_max = 0.0;
  double u_top = 0.0, u_bottom = 0.0;
  for (int j = 0; j < l.ny; ++j)
    for (int i = 0; i < l.nx; ++i) {
      EXPECT_TRUE(std::isfinite(prim.T(i, j, 0)));
      T_max = std::max(T_max, prim.T(i, j, 0));
      co2_max = std::max(co2_max, prim.Y[mech.index("CO2")](i, j, 0));
      if (j == l.ny / 2) u_top = std::max(u_top, prim.u(i, j, 0));
      if (j == 2) u_bottom = std::min(u_bottom, prim.u(i, j, 0));
    }
  EXPECT_GT(T_max, 1600.0);      // the ignition strips stay hot
  EXPECT_GT(co2_max, 1e-5);      // CO oxidation is active
  EXPECT_GT(u_top, 20.0);        // central stream moves +x
  EXPECT_LT(u_bottom, -20.0);    // outer stream moves -x
}

TEST(TemporalJet, MixtureFractionBracketsStreams) {
  sv::TemporalJetParams prm;
  prm.nx = 48;
  prm.ny = 48;
  prm.Lx = 0.004;
  prm.Ly = 0.005;
  auto cs = sv::temporal_jet_case(prm);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(10);
  auto& prim = s.primitives();
  auto Z = sv::mixture_fraction_field(*cs.cfg.mech, prim, s.layout(),
                                      cs.Y_ox, cs.Y_fuel);
  double zmin = 1.0, zmax = 0.0;
  for (int j = 0; j < s.layout().ny; ++j)
    for (int i = 0; i < s.layout().nx; ++i) {
      zmin = std::min(zmin, Z(i, j, 0));
      zmax = std::max(zmax, Z(i, j, 0));
    }
  EXPECT_LT(zmin, 0.05);
  EXPECT_GT(zmax, 0.9);
}
