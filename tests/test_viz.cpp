// Visualization tests: image output, transfer functions, volume rendering
// with multivariate fusion, parallel coordinates, time histograms, and
// masked correlation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "viz/insitu.hpp"
#include "viz/render.hpp"
#include "viz/trispace.hpp"

namespace viz = s3d::viz;
namespace sv = s3d::solver;

TEST(Image, PpmRoundTripHeaderAndSize) {
  viz::Image img(7, 5, {1, 0, 0});
  const std::string path = "/tmp/s3dpp_test.ppm";
  img.write_ppm(path);
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w, h, maxv;
  f >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 7);
  EXPECT_EQ(h, 5);
  EXPECT_EQ(maxv, 255);
  f.get();  // single whitespace
  std::vector<char> data(7 * 5 * 3);
  f.read(data.data(), data.size());
  EXPECT_EQ(f.gcount(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 255);  // red
  EXPECT_EQ(static_cast<unsigned char>(data[1]), 0);
  std::remove(path.c_str());
}

TEST(Image, ColormapsAreBoundedAndMonotoneBrightness) {
  for (auto cmap : {viz::colormap_hot, viz::colormap_cool, viz::colormap_viridis}) {
    double prev = -1.0;
    for (double t = 0.0; t <= 1.0; t += 0.1) {
      const auto c = cmap(t);
      EXPECT_GE(c.r, 0.0);
      EXPECT_LE(c.r, 1.0);
      EXPECT_GE(c.g, 0.0);
      EXPECT_LE(c.b, 1.0);
      const double lum = 0.3 * c.r + 0.6 * c.g + 0.1 * c.b;
      EXPECT_GE(lum, prev - 0.05);  // roughly increasing brightness
      prev = lum;
    }
  }
}

TEST(TransferFunction, VolumeOpacityRamp) {
  viz::TransferFunction tf;
  tf.lo = 0.0;
  tf.hi = 2.0;
  tf.opacity = 0.8;
  EXPECT_DOUBLE_EQ(tf.alpha(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tf.alpha(2.0), 0.8);
  EXPECT_DOUBLE_EQ(tf.alpha(1.0), 0.4);
  EXPECT_DOUBLE_EQ(tf.alpha(-5.0), 0.0);  // clamped below window
}

TEST(TransferFunction, IsoWindowMode) {
  viz::TransferFunction tf;
  tf.iso = 0.5;
  tf.iso_width = 0.1;
  tf.opacity = 1.0;
  EXPECT_DOUBLE_EQ(tf.alpha(0.5), 1.0);
  EXPECT_NEAR(tf.alpha(0.55), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(tf.alpha(0.7), 0.0);
}

TEST(Render, SliceMapsValuesToColormap) {
  sv::Layout l = sv::Layout::make(8, 8, 1);
  sv::GField f(l);
  f(3, 4, 0) = 1.0;
  auto img = viz::render_slice(f, 0.0, 1.0, viz::colormap_hot, 2);
  EXPECT_EQ(img.width(), 16);
  EXPECT_EQ(img.height(), 16);
  // Hot colormap: value 1 -> white-ish, value 0 -> black.
  // y is flipped: j=4 -> row (8-1-4)*2 = 6.
  EXPECT_GT(img.at(6, 6).r, 0.9);
  EXPECT_LT(img.at(0, 0).r, 0.05);
}

TEST(Render, FusedLayersBothVisible) {
  // Two fields with disjoint hot spots: the fused image must show both.
  sv::Layout l = sv::Layout::make(16, 16, 1);
  sv::GField a(l), b(l);
  a(4, 8, 0) = 1.0;
  b(12, 8, 0) = 1.0;
  viz::TransferFunction tfa;
  tfa.color = viz::colormap_hot;
  tfa.opacity = 1.0;
  viz::TransferFunction tfb;
  tfb.color = viz::colormap_cool;
  tfb.opacity = 1.0;
  viz::VolumeRenderer vr(2);
  auto img = vr.render({{&a, tfa}, {&b, tfb}}, 1);
  const int row = 16 - 1 - 8;
  // a's spot: hot colormap at 1.0 -> strong red channel.
  EXPECT_GT(img.at(4, row).r, 0.5);
  // b's spot: cool colormap -> strong blue channel.
  EXPECT_GT(img.at(12, row).b, 0.5);
  // Empty location stays background.
  EXPECT_LT(img.at(0, 0).r + img.at(0, 0).g + img.at(0, 0).b, 0.05);
}

TEST(Render, CompositingOccludesAlongRay) {
  // 3-D: an opaque near sample hides a far sample along the cast axis.
  sv::Layout l = sv::Layout::make(4, 4, 8);
  sv::GField f(l);
  f(2, 2, 0) = 1.0;  // near (cast axis = z, front at k=0)
  f(2, 2, 7) = 1.0;  // far
  viz::TransferFunction tf;
  tf.opacity = 1.0;  // fully opaque at value 1
  tf.color = [](double) { return viz::Rgb{1, 0, 0}; };
  viz::VolumeRenderer vr(2);
  auto img = vr.render({{&f, tf}}, 1);
  // Pixel at (x=2, y flipped row of j=2): red 1.0 from the near sample
  // only; if the far sample leaked, color would exceed 1 pre-clamp (we
  // can't observe that), so instead verify via transmittance by making
  // the near sample half-opaque.
  EXPECT_GT(img.at(2, 4 - 1 - 2).r, 0.95);
}

TEST(ParallelCoords, CorrelatedFieldsConcentrateOnDiagonal) {
  sv::Layout l = sv::Layout::make(32, 32, 1);
  sv::GField a(l), b(l);
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 32; ++i) {
      a(i, j, 0) = i / 31.0;
      b(i, j, 0) = i / 31.0;  // perfectly correlated
    }
  viz::ParallelCoords pc({{"a", &a, 0.0, 1.0}, {"b", &b, 0.0, 1.0}}, 8);
  pc.accumulate();
  EXPECT_EQ(pc.total_selected(), 32 * 32);
  long diag = 0, off = 0;
  for (int b0 = 0; b0 < 8; ++b0)
    for (int b1 = 0; b1 < 8; ++b1)
      (b0 == b1 ? diag : off) += pc.density(0, b0, b1);
  EXPECT_EQ(off, 0);
  EXPECT_EQ(diag, 32 * 32);
}

TEST(ParallelCoords, BrushRestrictsSelection) {
  sv::Layout l = sv::Layout::make(16, 1, 1);
  sv::GField a(l), b(l);
  for (int i = 0; i < 16; ++i) {
    a(i, 0, 0) = i / 15.0;
    b(i, 0, 0) = 1.0 - i / 15.0;
  }
  viz::ParallelCoords pc({{"a", &a, 0.0, 1.0}, {"b", &b, 0.0, 1.0}}, 4);
  pc.accumulate({viz::Brush{0, 0.0, 0.5}});
  // Only the points with a <= 0.5 are selected.
  EXPECT_EQ(pc.total_selected(), 8);
}

TEST(TimeHistogram, TracksDistributionShift) {
  sv::Layout l = sv::Layout::make(64, 1, 1);
  sv::GField f(l);
  viz::TimeHistogram th(0.0, 1.0, 4);
  f.fill(0.1);
  th.add_snapshot(f);
  f.fill(0.9);
  th.add_snapshot(f);
  EXPECT_EQ(th.nsnapshots(), 2);
  EXPECT_GT(th.count(0, 0), 0);
  EXPECT_EQ(th.count(0, 3), 0);
  EXPECT_GT(th.count(1, 3), 0);
  EXPECT_EQ(th.count(1, 0), 0);
}

TEST(Trispace, MaskedCorrelationSigns) {
  sv::Layout l = sv::Layout::make(64, 1, 1);
  sv::GField a(l), b(l), c(l);
  for (int i = 0; i < 64; ++i) {
    a(i, 0, 0) = i;
    b(i, 0, 0) = -2.0 * i;
    c(i, 0, 0) = (i % 2 == 0) ? 1.0 : -1.0;
  }
  EXPECT_NEAR(viz::masked_correlation(a, b, nullptr), -1.0, 1e-12);
  EXPECT_NEAR(viz::masked_correlation(a, a, nullptr), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(viz::masked_correlation(a, c, nullptr)), 0.0, 0.1);
}

TEST(Trispace, NearIsoMaskSelectsBand) {
  sv::Layout l = sv::Layout::make(16, 1, 1);
  sv::GField f(l);
  for (int i = 0; i < 16; ++i) f(i, 0, 0) = i / 15.0;
  auto mask = viz::near_iso_mask(f, 0.5, 0.1);
  int n = 0;
  for (int i = 0; i < 16; ++i)
    if (mask(i, 0, 0)) ++n;
  EXPECT_GE(n, 2);
  EXPECT_LE(n, 5);
}

TEST(InSitu, WritesFramesAtInterval) {
  sv::Layout l = sv::Layout::make(8, 8, 1);
  sv::GField f(l);
  f.fill(0.5);
  viz::InSituVis vis("/tmp", 5);
  viz::TransferFunction tf;
  vis.add_product({"s3dpp_insitu_test", [&]() { return &f; }, tf});
  for (int s = 0; s < 11; ++s) vis.on_step(s);
  EXPECT_EQ(vis.frames_written(), 3);  // steps 0, 5, 10
  EXPECT_GE(vis.overhead_seconds(), 0.0);
  for (int s : {0, 5, 10}) {
    const std::string p =
        "/tmp/s3dpp_insitu_test_" + std::to_string(s) + ".ppm";
    std::ifstream check(p);
    EXPECT_TRUE(check.good()) << p;
    std::remove(p.c_str());
  }
}
