// Collective-order checker (vmpi, S3D_COLLECTIVE_CHECK / DESIGN.md §14).
//
// The bitwise contract requires every rank to execute the identical
// collective sequence. The checker turns a violation — rank 0 in a
// barrier while rank 1 entered an allreduce — into a typed
// CollectiveMismatchError naming both call sites, instead of a deadlock
// (or silently mis-paired reduction values when the shapes happen to
// agree). These tests pin: the typed error and its site report, that
// matched sequences pass through the checker unperturbed (identical
// reduction results), the environment-variable arming path, and that
// "0" disarms it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "vmpi/vmpi.hpp"

namespace vmpi = s3d::vmpi;

namespace {

/// RAII setenv/unsetenv so a failing assertion can't leak the variable
/// into later tests (the checker reads it at every vmpi::run entry).
struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  const char* name_;
};

vmpi::RunOptions checked() {
  vmpi::RunOptions opts;
  opts.collective_check = true;
  return opts;
}

}  // namespace

TEST(CollectiveCheck, MismatchThrowsTypedErrorNamingBothSites) {
  try {
    vmpi::run(
        2,
        [](vmpi::Comm& comm) {
          if (comm.rank() == 0)
            comm.barrier();
          else
            comm.allreduce_sum(1.0);
        },
        checked());
    FAIL() << "mismatched collectives must not complete";
  } catch (const vmpi::CollectiveMismatchError& e) {
    const std::string what = e.what();
    // The message names both entered call sites, kind + file:line.
    EXPECT_NE(what.find("barrier at test_collective_check.cpp:"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("allreduce_sum at test_collective_check.cpp:"),
              std::string::npos)
        << what;
    // And the structured report covers every rank.
    ASSERT_EQ(e.sites().size(), 2u);
    EXPECT_EQ(e.sites()[0].rank, 0);
    EXPECT_NE(e.sites()[0].site.find("barrier"), std::string::npos);
    EXPECT_EQ(e.sites()[1].rank, 1);
    EXPECT_NE(e.sites()[1].site.find("allreduce_sum"), std::string::npos);
  }
}

TEST(CollectiveCheck, SameKindDifferentCallSiteIsAMismatch) {
  // Same collective *kind* from different source lines is still a
  // sequence divergence: the ranks are not executing the same program
  // point, which is exactly the bug class that silently pairs wrong
  // values when the shapes happen to agree.
  try {
    vmpi::run(
        2,
        [](vmpi::Comm& comm) {
          if (comm.rank() == 0) {
            comm.allreduce_max(1.0);
          } else {
            comm.allreduce_max(2.0);
          }
        },
        checked());
    FAIL() << "divergent call sites must not complete";
  } catch (const vmpi::CollectiveMismatchError& e) {
    ASSERT_EQ(e.sites().size(), 2u);
    EXPECT_NE(e.sites()[0].site, e.sites()[1].site);
  }
}

TEST(CollectiveCheck, MatchedSequencePassesAndValuesAreExact) {
  // A matched program must pass through the armed checker with bitwise
  // identical reduction results on every rank.
  constexpr int kRanks = 4;
  std::vector<double> sums(kRanks), maxs(kRanks), mins(kRanks);
  vmpi::run(
      kRanks,
      [&](vmpi::Comm& comm) {
        const int me = comm.rank();
        comm.barrier();
        sums[me] = comm.allreduce_sum(static_cast<double>(me + 1));
        maxs[me] = comm.allreduce_max(static_cast<double>(me));
        std::vector<double> v = {static_cast<double>(me), 10.0 - me};
        comm.allreduce_min(std::span<double>(v));
        mins[me] = v[0] + v[1];
        comm.barrier();
      },
      checked());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(sums[r], 10.0);
    EXPECT_EQ(maxs[r], 3.0);
    EXPECT_EQ(mins[r], 0.0 + (10.0 - (kRanks - 1)));
  }
}

TEST(CollectiveCheck, SingleDivergentRankIsNamedInTheReport) {
  // Four ranks, one strays: the report carries all four sites so the
  // divergent rank is identifiable without re-running.
  try {
    vmpi::run(
        4,
        [](vmpi::Comm& comm) {
          if (comm.rank() == 2)
            comm.allreduce_min(0.0);
          else
            comm.barrier();
        },
        checked());
    FAIL() << "mismatched collectives must not complete";
  } catch (const vmpi::CollectiveMismatchError& e) {
    ASSERT_EQ(e.sites().size(), 4u);
    int divergent = 0;
    for (const auto& s : e.sites())
      if (s.site.find("allreduce_min") != std::string::npos) {
        ++divergent;
        EXPECT_EQ(s.rank, 2);
      }
    EXPECT_EQ(divergent, 1);
  }
}

TEST(CollectiveCheck, EnvVarArmsTheChecker) {
  ScopedEnv env("S3D_COLLECTIVE_CHECK", "1");
  EXPECT_THROW(vmpi::run(2,
                         [](vmpi::Comm& comm) {
                           if (comm.rank() == 0)
                             comm.barrier();
                           else
                             comm.allreduce_sum(1.0);
                         }),
               vmpi::CollectiveMismatchError);
}

TEST(CollectiveCheck, EnvVarZeroLeavesCheckerDisarmed) {
  // "0" must read as off — and with the checker off, a *matched*
  // sequence runs with zero checker barriers (the disarmed path is the
  // production default; this also guards the env parse).
  ScopedEnv env("S3D_COLLECTIVE_CHECK", "0");
  double sum = 0.0;
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const double s = comm.allreduce_sum(1.0);
    if (comm.rank() == 0) sum = s;
  });
  EXPECT_EQ(sum, 2.0);
}

TEST(CollectiveCheck, CheckerOffMismatchedShapesStillDeadlockViaWatchdog) {
  // Contrast case: without the checker the same bug is only caught by
  // the (slow, site-blind) progress watchdog as a DeadlockError. This
  // pins the "before" behavior the checker improves on, with a short
  // watchdog so the tier stays fast.
  vmpi::RunOptions opts;
  opts.watchdog_s = 0.2;
  EXPECT_THROW(vmpi::run(2,
                         [](vmpi::Comm& comm) {
                           if (comm.rank() == 0) {
                             comm.barrier();
                             comm.barrier();
                           } else {
                             comm.barrier();
                           }
                         },
                         opts),
               vmpi::DeadlockError);
}
