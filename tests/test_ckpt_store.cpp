// Delta checkpoint store tests (DESIGN.md §12): base/delta chains with
// bitwise restores, fold-on-prune across a pruned base, generation-table
// recovery with interleaved valid/invalid/missing generations, O(1)
// skip of known-invalid entries, write-behind persistence equivalence,
// crash-mid-persist consistency, the checkpoint.delta / checkpoint.persist
// fault sites, and the delta-backed snapshot ring.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "solver/checkpoint.hpp"
#include "solver/ckpt_store.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;
namespace fs = std::filesystem;

namespace {

sv::Config small_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void wavy_init(double x, double y, double z, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * 3.14159265358979 * x / 0.01);
  st.v = 1.0 * std::cos(2 * 3.14159265358979 * y / 0.01);
  st.w = 0.5 * std::sin(2 * 3.14159265358979 * z / 0.01);
  st.T = 300.0 + 8.0 * std::sin(2 * 3.14159265358979 * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct TmpDir {
  fs::path p;
  explicit TmpDir(const std::string& name)
      : p(fs::temp_directory_path() / name) {
    fs::remove_all(p);
    fs::create_directories(p);
  }
  ~TmpDir() {
    std::error_code ec;
    fs::remove_all(p, ec);
  }
  std::string str() const { return p.string(); }
};

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 2026) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

std::uint64_t state_checksum(const sv::Solver& s) {
  s3d::Fnv1a64 h;
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          h.update_value(s.state().at(v, i, j, k));
  h.update_value(s.time());
  const long steps = s.steps_taken();
  h.update_value(steps);
  return h.digest();
}

void flip_byte(const std::string& path, std::size_t pos) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(pos));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(pos));
  f.put(static_cast<char>(c ^ 0x40));
}

std::uint64_t file_magic(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::uint64_t m = 0;
  f.read(reinterpret_cast<char*>(&m), sizeof(m));
  return f.good() ? m : 0;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

}  // namespace

// ---------------------------------------------------------------------------
// codec

TEST(DeltaCodec, DiffApplyRoundTripsBitwise) {
  std::vector<double> prev(1000), next;
  for (std::size_t i = 0; i < prev.size(); ++i)
    prev[i] = std::sin(static_cast<double>(i));
  next = prev;
  next[3] = -7.25;          // block 0
  next[777] = 1.0 / 3.0;    // block 6
  next[999] = 0.0;          // tail block (partial: 1000 = 7*128 + 104)

  const sv::CkptDelta d = sv::diff_image(prev, next, 128);
  EXPECT_EQ(d.total, 1000u);
  EXPECT_EQ(d.blocks, (std::vector<std::uint32_t>{0, 6, 7}));
  // Dirty payload = two full blocks + the 104-double tail.
  EXPECT_EQ(d.payload.size(), 128u + 128u + 104u);

  std::vector<double> replay = prev;
  sv::apply_delta(replay, d, 128);
  EXPECT_EQ(std::memcmp(replay.data(), next.data(),
                        next.size() * sizeof(double)),
            0);

  // Identical images produce an empty delta: that is the dedup.
  const sv::CkptDelta none = sv::diff_image(next, next, 128);
  EXPECT_TRUE(none.blocks.empty());
  EXPECT_TRUE(none.payload.empty());
}

TEST(DeltaCodec, ChainRoundTripIsBitwisePerGeneration) {
  TmpDir dir("s3dpp_ckpt_chain");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 4;
  opt.block = 256;
  sv::RestartSeries series(dir.str(), "ckpt", /*keep_last=*/16, opt);

  std::vector<long> gens;
  std::vector<std::uint64_t> want;
  for (long gen = 1; gen <= 8; ++gen) {
    s.run(1);
    series.write(s, gen);
    gens.push_back(gen);
    want.push_back(state_checksum(s));
  }
  // Cadence check: gens 1 and 5 are bases, the rest chained deltas.
  EXPECT_EQ(file_magic(series.path(1)), sv::kRestartMagic);
  EXPECT_EQ(file_magic(series.path(2)), sv::kDeltaMagic);
  EXPECT_EQ(file_magic(series.path(5)), sv::kRestartMagic);
  EXPECT_EQ(file_magic(series.path(8)), sv::kDeltaMagic);

  for (std::size_t i = 0; i < gens.size(); ++i) {
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    std::string err;
    ASSERT_TRUE(series.try_load(gens[i], b, &err)) << err;
    EXPECT_EQ(state_checksum(b), want[i]) << "gen " << gens[i];
  }
}

// ---------------------------------------------------------------------------
// fold-on-prune

TEST(CkptStore, FoldAcrossPrunedBaseKeepsChainRestorable) {
  TmpDir dir("s3dpp_ckpt_fold");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 4;  // gens 2(b), 4(d), 6(d), 8(d)
  sv::RestartSeries series(dir.str(), "ckpt", /*keep_last=*/3, opt);

  std::vector<std::uint64_t> want;
  for (long gen : {2, 4, 6, 8}) {
    s.run(2);
    series.write(s, gen);
    want.push_back(state_checksum(s));
  }
  // Pruning gen 2 (the base) folded gen 4 into a base so 6 and 8 still
  // replay; the chain never dangles off a deleted file.
  EXPECT_EQ(series.generations(), (std::vector<long>{8, 6, 4}));
  EXPECT_FALSE(fs::exists(series.path(2)));
  EXPECT_EQ(file_magic(series.path(4)), sv::kRestartMagic) << "not folded";
  EXPECT_EQ(series.stats().folds, 1);

  const long gens[] = {4, 6, 8};
  for (int i = 0; i < 3; ++i) {
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    std::string err;
    ASSERT_TRUE(series.try_load(gens[i], b, &err)) << err;
    EXPECT_EQ(state_checksum(b), want[i + 1]) << "gen " << gens[i];
  }
}

// ---------------------------------------------------------------------------
// generation-table recovery

TEST(CkptStore, ManifestRecoveryWithInterleavedBadGenerations) {
  TmpDir dir("s3dpp_ckpt_interleaved");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 2;  // gens 2(b), 4(d), 6(b), 8(d), 10(b)
  std::uint64_t want4 = 0;
  {
    sv::RestartSeries w(dir.str(), "ckpt", /*keep_last=*/8, opt);
    for (long gen : {2, 4, 6, 8, 10}) {
      s.run(2);
      w.write(s, gen);
      if (gen == 4) want4 = state_checksum(s);
    }
  }
  // Newest corrupted, the gen-6 base deleted outright (which also orphans
  // the gen-8 delta chained on it).
  flip_byte(
      (fs::path(dir.str()) / "ckpt.g000010.rst").string(),
      fs::file_size(fs::path(dir.str()) / "ckpt.g000010.rst") / 2);
  fs::remove(fs::path(dir.str()) / "ckpt.g000006.rst");

  // A fresh store (fresh table) must walk 10 (corrupt), 8 (broken chain),
  // 6 (missing) and land on the intact 4 -> 2 chain.
  sv::RestartSeries series(dir.str(), "ckpt", 8, opt);
  sv::Solver b(cfg);
  b.initialize(wavy_init);
  std::vector<std::string> skipped;
  EXPECT_EQ(series.read_latest(b, &skipped), 4);
  ASSERT_EQ(skipped.size(), 3u);
  EXPECT_NE(skipped[0].find("gen 10"), std::string::npos) << skipped[0];
  EXPECT_NE(skipped[0].find("checksum"), std::string::npos) << skipped[0];
  EXPECT_NE(skipped[1].find("gen 8"), std::string::npos) << skipped[1];
  EXPECT_NE(skipped[2].find("gen 6"), std::string::npos) << skipped[2];
  EXPECT_EQ(state_checksum(b), want4);
}

TEST(CkptStore, InvalidGenerationsSkipInO1WithoutReread) {
  TmpDir dir("s3dpp_ckpt_o1skip");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::RestartSeries series(dir.str(), "ckpt", 4);
  s.run(2);
  series.write(s, 2);
  const auto want = state_checksum(s);
  s.run(2);
  series.write(s, 4);

  flip_byte(series.path(4), fs::file_size(series.path(4)) / 2);

  // First walk discovers the corruption and records the validity bit.
  sv::Solver b(cfg);
  b.initialize(wavy_init);
  std::vector<std::string> skipped;
  EXPECT_EQ(series.read_latest(b, &skipped), 2);
  EXPECT_EQ(skipped.size(), 1u);

  // Second walk must not touch gen 4 at all: with its file deleted, any
  // re-read attempt would surface as a "missing" skip message.
  fs::remove(series.path(4));
  sv::Solver c(cfg);
  c.initialize(wavy_init);
  skipped.clear();
  EXPECT_EQ(series.read_latest(c, &skipped), 2);
  EXPECT_TRUE(skipped.empty()) << skipped[0];
  EXPECT_EQ(state_checksum(c), want);
}

// ---------------------------------------------------------------------------
// write-behind persistence

TEST(CkptStore, WriteBehindLandsIdenticalFilesToSynchronous) {
  TmpDir sync_dir("s3dpp_ckpt_sync");
  TmpDir wb_dir("s3dpp_ckpt_wb");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions sync_opt;
  sync_opt.delta = true;
  sync_opt.base_every = 3;
  sv::CkptOptions wb_opt = sync_opt;
  wb_opt.write_behind = true;
  wb_opt.queue_depth = 2;

  sv::RestartSeries sync_s(sync_dir.str(), "ckpt", 4, sync_opt);
  sv::RestartSeries wb_s(wb_dir.str(), "ckpt", 4, wb_opt);
  for (long gen : {2, 4, 6, 8, 10}) {
    s.run(1);
    sync_s.write(s, gen);
    wb_s.write(s, gen);
  }
  wb_s.drain();

  EXPECT_EQ(wb_s.generations(), sync_s.generations());
  for (long gen : wb_s.generations())
    EXPECT_EQ(slurp(wb_s.path(gen)), slurp(sync_s.path(gen)))
        << "gen " << gen;
  EXPECT_EQ(wb_s.stats().persisted, 5);
  EXPECT_GE(wb_s.stats().queue_hwm, 1);
  // Every cell moves each step, so deltas here are full-dirty: the ratio
  // sits at ~1 (delta framing overhead only). The dedup win is asserted
  // on quiescent captures in the snapshot-ring test below.
  EXPECT_EQ(wb_s.stats().bases, 2);
  EXPECT_EQ(wb_s.stats().deltas, 3);
  EXPECT_LT(wb_s.stats().dedup_ratio(), 1.05);
}

TEST(CkptStore, KillMidPersistLeavesPreviousGenerationRestorable) {
  TmpDir dir("s3dpp_ckpt_kill");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 4;
  opt.write_behind = true;
  opt.persist_retries = 1;
  opt.backoff_ms = 0.01;
  opt.backoff_cap_ms = 0.02;
  sv::RestartSeries series(dir.str(), "ckpt", 4, opt);

  s.run(2);
  series.write(s, 2);
  series.drain();
  const auto want2 = state_checksum(s);

  // Every persist attempt for the next generation dies (the injected
  // equivalent of the node crashing mid-persist, retries included).
  FaultSession fsess(7);
  fault::arm({.site = "checkpoint.persist",
              .kind = fault::Kind::fail,
              .probability = 1.0,
              .max_fires = 2});  // first attempt + its retry
  s.run(2);
  series.write(s, 4);
  series.drain();
  EXPECT_EQ(fault::fires_at("checkpoint.persist"), 2);
  fault::reset();
  EXPECT_EQ(series.stats().persist_failures, 1);

  // The previous generation survived: the failed gen is skipped via its
  // validity bit (silently — no file was ever at its path) and gen 2
  // restores bitwise.
  sv::Solver b(cfg);
  b.initialize(wavy_init);
  std::vector<std::string> skipped;
  EXPECT_EQ(series.read_latest(b, &skipped), 2);
  EXPECT_TRUE(skipped.empty()) << skipped[0];
  EXPECT_EQ(state_checksum(b), want2);

  // Self-heal: the next generation refuses to chain through the hole and
  // forces a fresh base.
  s.run(2);
  series.write(s, 6);
  series.drain();
  EXPECT_EQ(file_magic(series.path(6)), sv::kRestartMagic);
  sv::Solver c(cfg);
  c.initialize(wavy_init);
  std::string err;
  EXPECT_TRUE(series.try_load(6, c, &err)) << err;
  EXPECT_EQ(state_checksum(c), state_checksum(s));
}

// ---------------------------------------------------------------------------
// fault sites

TEST(CkptFaults, DeltaEncodeFailThrowsBeforeCommit) {
  TmpDir dir("s3dpp_ckpt_deltafail");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 4;
  sv::RestartSeries series(dir.str(), "ckpt", 4, opt);

  s.run(2);
  series.write(s, 2);  // base: the delta site is not consulted
  const auto want = state_checksum(s);

  FaultSession fsess(3);
  fault::arm({.site = "checkpoint.delta", .kind = fault::Kind::fail, .nth = 0});
  s.run(2);
  EXPECT_THROW(series.write(s, 4), fault::InjectedFault);
  fault::reset();

  // The failed append left no trace: gen 2 is still the newest.
  sv::Solver b(cfg);
  b.initialize(wavy_init);
  EXPECT_EQ(series.read_latest(b), 2);
  EXPECT_EQ(state_checksum(b), want);
}

TEST(CkptFaults, CorruptAndDelayKindsAreCaughtOrAbsorbed) {
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions opt;
  opt.delta = true;
  opt.base_every = 4;

  {  // checkpoint.delta corrupt: checksum rejects the generation.
    TmpDir dir("s3dpp_ckpt_deltacorrupt");
    sv::RestartSeries series(dir.str(), "ckpt", 4, opt);
    s.run(1);
    series.write(s, 1);
    const auto want = state_checksum(s);
    FaultSession fsess(5);
    fault::arm(
        {.site = "checkpoint.delta", .kind = fault::Kind::corrupt, .nth = 0});
    s.run(1);
    series.write(s, 2);
    fault::reset();
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    std::vector<std::string> skipped;
    EXPECT_EQ(series.read_latest(b, &skipped), 1);
    ASSERT_EQ(skipped.size(), 1u);
    EXPECT_NE(skipped[0].find("checksum"), std::string::npos) << skipped[0];
    EXPECT_EQ(state_checksum(b), want);
  }

  {  // checkpoint.persist corrupt on a base poisons its whole chain.
    TmpDir dir("s3dpp_ckpt_persistcorrupt");
    sv::RestartSeries series(dir.str(), "ckpt", 4, opt);
    FaultSession fsess(9);
    fault::arm(
        {.site = "checkpoint.persist", .kind = fault::Kind::corrupt, .nth = 0});
    s.run(1);
    series.write(s, 1);  // base lands bit-flipped on disk
    s.run(1);
    series.write(s, 2);  // delta chained on the poisoned base
    fault::reset();
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    std::vector<std::string> skipped;
    EXPECT_EQ(series.read_latest(b, &skipped), -1);
    EXPECT_GE(skipped.size(), 2u);
  }

  {  // checkpoint.persist delay: slower, never wrong.
    TmpDir dir("s3dpp_ckpt_persistdelay");
    sv::CkptOptions wb = opt;
    wb.write_behind = true;
    sv::RestartSeries series(dir.str(), "ckpt", 4, wb);
    FaultSession fsess(13);
    fault::arm({.site = "checkpoint.persist",
                .kind = fault::Kind::delay,
                .nth = 0,
                .delay_ms = 2.0});
    s.run(1);
    series.write(s, 1);
    s.run(1);
    series.write(s, 2);
    series.drain();
    fault::reset();
    sv::Solver b(cfg);
    b.initialize(wavy_init);
    std::vector<std::string> skipped;
    EXPECT_EQ(series.read_latest(b, &skipped), 2);
    EXPECT_TRUE(skipped.empty());
    EXPECT_EQ(state_checksum(b), state_checksum(s));
  }
}

// ---------------------------------------------------------------------------
// delta-backed snapshot ring

TEST(DeltaSnapshotRing, DeltaAndFullCopyRestoresMatchBitwise) {
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::CkptOptions delta_opt;  // defaults: delta on
  sv::CkptOptions full_opt;
  full_opt.delta = false;

  sv::SnapshotRing delta_ring(3, delta_opt);
  sv::SnapshotRing full_ring(3, full_opt);
  std::vector<std::uint64_t> want;
  for (int i = 0; i < 3; ++i) {
    s.run(1);
    delta_ring.capture(s);
    full_ring.capture(s);
    want.push_back(state_checksum(s));
  }

  sv::Solver a(cfg), b(cfg);
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  delta_ring.restore_newest(a);
  full_ring.restore_newest(b);
  EXPECT_EQ(state_checksum(a), want[2]);
  EXPECT_EQ(state_checksum(b), want[2]);

  delta_ring.pop_newest();
  full_ring.pop_newest();
  delta_ring.restore_newest(a);
  full_ring.restore_newest(b);
  EXPECT_EQ(state_checksum(a), want[1]);
  EXPECT_EQ(state_checksum(b), want[1]);
  EXPECT_EQ(delta_ring.newest_step(), full_ring.newest_step());
}

TEST(DeltaSnapshotRing, RepeatedCapturesDeduplicate) {
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  s.run(1);

  sv::CkptOptions delta_opt;
  sv::CkptOptions full_opt;
  full_opt.delta = false;

  sv::SnapshotRing delta_ring(3, delta_opt);
  sv::SnapshotRing full_ring(3, full_opt);
  for (int i = 0; i < 3; ++i) {  // identical state: deltas are empty
    delta_ring.capture(s);
    full_ring.capture(s);
  }
  EXPECT_EQ(delta_ring.size(), 3);
  // Delta ring retains ~2 images (base + materialized head, empty
  // deltas); the full-copy ring retains 4 (3 entries + head).
  EXPECT_LT(delta_ring.bytes(), full_ring.bytes() * 3 / 4)
      << "unchanged captures should cost (nearly) nothing";

  sv::Solver b(cfg);
  b.initialize(wavy_init);
  delta_ring.pop_newest();
  delta_ring.restore_newest(b);
  EXPECT_EQ(state_checksum(b), state_checksum(s));
}

// ---------------------------------------------------------------------------
// config knobs

TEST(CkptConfig, MalformedKnobsThrowTypedErrors) {
  auto cfg = small_cfg();
  cfg.validate();

  auto bad = cfg;
  bad.checkpoint.base_every = 0;
  EXPECT_THROW(bad.validate(), sv::ConfigError);
  bad = cfg;
  bad.checkpoint.block = 0;
  EXPECT_THROW(bad.validate(), sv::ConfigError);
  bad = cfg;
  bad.checkpoint.queue_depth = 0;
  EXPECT_THROW(bad.validate(), sv::ConfigError);
  bad = cfg;
  bad.checkpoint.persist_retries = -1;
  EXPECT_THROW(bad.validate(), sv::ConfigError);
  bad = cfg;
  bad.checkpoint.backoff_cap_ms = bad.checkpoint.backoff_ms - 1.0;
  EXPECT_THROW(bad.validate(), sv::ConfigError);
}
