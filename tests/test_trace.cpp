// s3d::trace unit tests: runtime gating, span/counter/gauge recording,
// per-rank labelling through vmpi, summary aggregation, and the Chrome
// trace exporter's JSON.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace trace = s3d::trace;

namespace {

std::string tmp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct TraceSession {
  TraceSession() {
    trace::clear();
    trace::set_enabled(true);
  }
  ~TraceSession() {
    trace::set_enabled(false);
    trace::clear();
  }
};

}  // namespace

#ifndef S3D_TRACE_DISABLED

TEST(Trace, DisabledByDefaultRecordsNothing) {
  trace::set_enabled(false);
  trace::clear();
  {
    trace::Span sp("ghost", "test");
    trace::counter_add("ghost.count", 1.0);
    trace::gauge_set("ghost.gauge", 2.0);
  }
  const auto s = trace::summarize();
  EXPECT_TRUE(s.kernels.empty());
  EXPECT_TRUE(s.counters.empty());
}

TEST(Trace, SpanRecordsDurationAndCategory) {
  TraceSession session;
  {
    trace::Span sp("unit.work", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto s = trace::summarize();
  const auto* k = s.find("unit.work");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->category, "test");
  EXPECT_EQ(k->total_calls(), 1);
  EXPECT_GE(k->total_s(), 0.002);
}

TEST(Trace, CancelAndStop) {
  TraceSession session;
  {
    trace::Span sp("unit.cancelled", "test");
    sp.cancel();
  }
  {
    trace::Span sp("unit.stopped", "test");
    sp.stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // the sleep happens after stop(): must not count
  const auto s = trace::summarize();
  EXPECT_EQ(s.find("unit.cancelled"), nullptr);
  const auto* k = s.find("unit.stopped");
  ASSERT_NE(k, nullptr);
  EXPECT_LT(k->total_s(), 0.005);
}

TEST(Trace, CountersAccumulateAndGaugesKeepLastValue) {
  TraceSession session;
  trace::counter_add("unit.bytes", 100.0);
  trace::counter_add("unit.bytes", 150.0);
  trace::gauge_set("unit.level", 1.0);
  trace::gauge_set("unit.level", 42.0);
  const auto s = trace::summarize();
  const auto* c = s.find_counter("unit.bytes");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->is_gauge);
  EXPECT_EQ(c->samples, 2);
  EXPECT_DOUBLE_EQ(c->total, 250.0);
  const auto* g = s.find_counter("unit.level");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->is_gauge);
  EXPECT_DOUBLE_EQ(g->total, 42.0);
}

TEST(Trace, VmpiRanksLabelTheirEvents) {
  TraceSession session;
  s3d::vmpi::run(4, [](s3d::vmpi::Comm& comm) {
    trace::Span sp("unit.rank_work", "test");
    trace::counter_add("unit.rank_count", 1.0);
    comm.barrier();
  });
  const auto s = trace::summarize();
  const auto* k = s.find("unit.rank_work");
  ASSERT_NE(k, nullptr);
  ASSERT_EQ(k->ranks.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(k->ranks[r].rank, r);
    EXPECT_EQ(k->ranks[r].calls, 1);
  }
  const auto* c = s.find_counter("unit.rank_count");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->total, 4.0);
}

TEST(Trace, InternReturnsStablePointers) {
  const char* a = trace::intern("wf.some-actor");
  const char* b = trace::intern("wf.some-actor");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "wf.some-actor");
  EXPECT_NE(a, trace::intern("wf.other-actor"));
}

TEST(Trace, ChromeTraceIsValidJson) {
  TraceSession session;
  s3d::vmpi::run(2, [](s3d::vmpi::Comm&) {
    trace::Span sp("unit.json \"quoted\"", "test");
    sp.set_bytes(1234);
    trace::counter_add("unit.json_counter", 3.5);
  });
  const std::string path = tmp_file("s3dpp_trace_test.json");
  ASSERT_TRUE(trace::write_chrome_trace(path));
  const std::string body = slurp(path);
  std::remove(path.c_str());

  // Structural JSON checks: array form, balanced braces, escaped quotes,
  // required chrome-trace keys, both rank rows present.
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body[body.find_last_not_of("\n ")], ']');
  long depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_str) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(body.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(body.find("\"bytes\":1234"), std::string::npos);
  EXPECT_NE(body.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(body.find("\"tid\":1"), std::string::npos);
}

TEST(Trace, SummaryTableRenders) {
  TraceSession session;
  { trace::Span sp("unit.row", "test"); }
  trace::counter_add("unit.metric", 7.0);
  std::ostringstream os;
  trace::write_summary(os);
  const std::string body = os.str();
  EXPECT_NE(body.find("unit.row"), std::string::npos);
  EXPECT_NE(body.find("unit.metric"), std::string::npos);
  EXPECT_NE(body.find("max rank"), std::string::npos);
}

TEST(Trace, ClearDropsEverything) {
  TraceSession session;
  { trace::Span sp("unit.gone", "test"); }
  trace::clear();
  EXPECT_TRUE(trace::summarize().kernels.empty());
}

TEST(Trace, ConcurrentRecordingIsSafe) {
  TraceSession session;
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&go, t] {
      trace::set_rank(t);
      go.fetch_add(1);
      while (go.load() < 4) {
      }
      for (int i = 0; i < 1000; ++i) {
        trace::Span sp("unit.concurrent", "test");
        trace::counter_add("unit.concurrent_count", 1.0);
      }
    });
  for (auto& th : threads) th.join();
  const auto s = trace::summarize();
  const auto* k = s.find("unit.concurrent");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->total_calls(), 4000);
  EXPECT_DOUBLE_EQ(s.find_counter("unit.concurrent_count")->total, 4000.0);
}

#else  // compiled-out build: the API must still link and stay silent

TEST(Trace, CompiledOutIsInert) {
  trace::set_enabled(true);
  { trace::Span sp("unit.noop", "test"); }
  trace::counter_add("unit.noop", 1.0);
  EXPECT_FALSE(trace::enabled());
  EXPECT_TRUE(trace::summarize().kernels.empty());
  const std::string path = tmp_file("s3dpp_trace_disabled.json");
  ASSERT_TRUE(trace::write_chrome_trace(path));
  EXPECT_EQ(slurp(path), "[]\n");
  std::remove(path.c_str());
}

#endif
