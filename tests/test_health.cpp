// Health-sentinel suite (ctest -L health): breach detection and the
// collective rollback-and-retry driver, the dt-cache invalidation
// contract, the counted mass-fraction clip knob, Config::validate()
// property checks over malformed configs, and stable_dt() behaviour on
// extreme states.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "solver/checkpoint.hpp"
#include "solver/health.hpp"
#include "solver/resilient.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;
namespace vmpi = s3d::vmpi;
namespace trace = s3d::trace;
namespace fs = std::filesystem;

namespace {

sv::Config small_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void wavy_init(double x, double y, double z, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * 3.14159265358979 * x / 0.01);
  st.v = 1.0 * std::cos(2 * 3.14159265358979 * y / 0.01);
  st.w = 0.5 * std::sin(2 * 3.14159265358979 * z / 0.01);
  st.T = 300.0 + 8.0 * std::sin(2 * 3.14159265358979 * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct TmpDir {
  fs::path p;
  explicit TmpDir(const std::string& name)
      : p(fs::temp_directory_path() / name) {
    fs::remove_all(p);
    fs::create_directories(p);
  }
  ~TmpDir() {
    std::error_code ec;
    fs::remove_all(p, ec);
  }
  std::string str() const { return p.string(); }
};

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 2026) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

std::uint64_t state_checksum(const sv::Solver& s) {
  s3d::Fnv1a64 h;
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          h.update_value(s.state().at(v, i, j, k));
  h.update_value(s.time());
  const long steps = s.steps_taken();
  h.update_value(steps);
  return h.digest();
}

bool state_all_finite(const sv::Solver& s) {
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          if (!std::isfinite(s.state().at(v, i, j, k))) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Satellite: dt-cache invalidation on external state restore.

TEST(DtCache, InvalidatedOnRestartLoad) {
  TmpDir dir("s3d_health_dtcache");
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  s.run(3);
  ASSERT_GT(s.cached_dt(), 0.0) << "run() must leave a cached dt behind";
  sv::write_restart(dir.str() + "/r.rst", s);
  s.run(2);
  ASSERT_GT(s.cached_dt(), 0.0);
  sv::read_restart(dir.str() + "/r.rst", s);
  // A dt computed from the pre-restore state must not leak into the
  // restored one.
  EXPECT_LT(s.cached_dt(), 0.0);
  EXPECT_EQ(s.steps_taken(), 3);
}

TEST(DtCache, InvalidatedBySnapshotRollback) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  s.run(2);
  sv::SnapshotRing ring(2);
  ring.capture(s);
  s.run(3);
  ASSERT_GT(s.cached_dt(), 0.0);
  ring.restore_newest(s);
  EXPECT_LT(s.cached_dt(), 0.0);
  EXPECT_EQ(s.steps_taken(), 2);
}

TEST(DtCache, ExplicitInvalidation) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  s.run(1);
  ASSERT_GT(s.cached_dt(), 0.0);
  s.invalidate_dt_cache();
  EXPECT_LT(s.cached_dt(), 0.0);
}

// ---------------------------------------------------------------------------
// Satellite: counted, opt-in clamp-and-renormalize at the prim boundary.

TEST(PrimBoundary, ClipIsCountedWithWorstOffender) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  const auto& l = s.layout();
  // Push one partial density slightly negative (a dispersion-error
  // undershoot) and count the repair.
  const double rho = s.state().at(sv::UIndex::rho, 3, 4, 0);
  s.state().at(sv::UIndex::Y0, 3, 4, 0) = -1e-3 * rho;

  sv::PrimStats stats;
  sv::prim_from_conserved(s.rhs().mech(), s.state(), s.rhs().prim(), {},
                          &stats);
  EXPECT_EQ(stats.y_clipped, 1);
  EXPECT_NEAR(stats.y_most_negative, -1e-3, 1e-12);
  EXPECT_EQ(stats.worst_cell >= 0, true);

  // The historical policy dumps the clipped mass into the last species:
  // the stored fractions still sum to one.
  double ysum = 0.0;
  for (const auto& Y : s.rhs().prim().Y) ysum += Y.data()[l.at(3, 4, 0)];
  EXPECT_NEAR(ysum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.rhs().prim().Y[0].data()[l.at(3, 4, 0)], 0.0);
}

TEST(PrimBoundary, RenormalizeKnobKeepsUnitSum) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  const auto& l = s.layout();
  const double rho = s.state().at(sv::UIndex::rho, 5, 2, 0);
  // Overshoot: the stored species alone exceeds a sum of one, so the
  // recovered last species would go negative.
  s.state().at(sv::UIndex::Y0, 5, 2, 0) = 1.2 * rho;

  sv::PrimOptions opts;
  opts.renormalize_y = true;
  sv::PrimStats stats;
  sv::prim_from_conserved(s.rhs().mech(), s.state(), s.rhs().prim(), opts,
                          &stats);
  double ysum = 0.0;
  for (const auto& Y : s.rhs().prim().Y) ysum += Y.data()[l.at(5, 2, 0)];
  EXPECT_NEAR(ysum, 1.0, 1e-12);
  for (const auto& Y : s.rhs().prim().Y)
    EXPECT_GE(Y.data()[l.at(5, 2, 0)], 0.0);
}

TEST(PrimBoundary, YClipCounterTraced) {
  trace::clear();
  trace::set_enabled(true);
  sv::Config cfg = small_cfg();
  cfg.count_y_clips = true;
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  const double rho = s.state().at(sv::UIndex::rho, 7, 3, 0);
  s.state().at(sv::UIndex::Y0, 7, 3, 0) = -1e-4 * rho;
  s.step(1e-9);  // one RHS eval suffices to cross the prim boundary
  trace::set_enabled(false);
  const auto sum = trace::summarize();
  const auto* c = sum.find_counter("health.y_clip");
  ASSERT_NE(c, nullptr) << "counted knob must emit the health.y_clip counter";
  EXPECT_GE(c->total, 1.0);
  trace::clear();
}

// ---------------------------------------------------------------------------
// Satellite: Config::validate() typed errors over malformed configs.

TEST(ConfigValidate, AcceptsWellFormed) {
  EXPECT_NO_THROW(small_cfg().validate());
}

TEST(ConfigValidate, PropertyMalformedConfigsThrowTyped) {
  const double bad_vals[] = {std::numeric_limits<double>::quiet_NaN(),
                             -std::numeric_limits<double>::infinity(), -1.0,
                             0.0};
  struct Mutation {
    const char* field;  ///< expected ConfigError::field()
    std::function<void(sv::Config&, double)> apply;
    bool zero_ok;  ///< 0.0 is a legal value for this field
  };
  const std::vector<Mutation> mutations = {
      {"cfl", [](sv::Config& c, double v) { c.cfl = v; }, false},
      {"fourier", [](sv::Config& c, double v) { c.fourier = v; }, false},
      {"filter_alpha", [](sv::Config& c, double v) { c.filter_alpha = v; },
       false},
      {"T_ref", [](sv::Config& c, double v) { c.T_ref = v; }, false},
      {"p_ref", [](sv::Config& c, double v) { c.p_ref = v; }, false},
      {"Pr", [](sv::Config& c, double v) { c.Pr = v; }, false},
      {"x", [](sv::Config& c, double v) { c.x.length = v; }, false},
  };
  for (const auto& m : mutations) {
    for (double v : bad_vals) {
      if (m.zero_ok && v == 0.0) continue;
      sv::Config cfg = small_cfg();
      m.apply(cfg, v);
      try {
        cfg.validate();
        FAIL() << "Config." << m.field << " = " << v << " must be rejected";
      } catch (const sv::ConfigError& e) {
        EXPECT_EQ(e.field(), m.field);
      }
    }
  }
}

TEST(ConfigValidate, StructuralErrors) {
  {
    sv::Config cfg = small_cfg();
    cfg.mech = nullptr;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
  {
    sv::Config cfg = small_cfg();
    cfg.x.n = 0;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
  {
    // Periodicity flag contradicting the face BCs.
    sv::Config cfg = small_cfg();
    cfg.x.periodic = false;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
  {
    // An inflow face without an inflow generator.
    sv::Config cfg = small_cfg();
    cfg.x.periodic = false;
    cfg.faces[0][0].kind = sv::BcKind::nscbc_inflow;
    cfg.faces[0][1].kind = sv::BcKind::nscbc_outflow;
    cfg.faces[0][1].p_target = 101325.0;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
  {
    // Outflow face with a nonsensical far-field pressure.
    sv::Config cfg = small_cfg();
    cfg.x.periodic = false;
    cfg.faces[0][0].kind = sv::BcKind::nscbc_outflow;
    cfg.faces[0][1].kind = sv::BcKind::nscbc_outflow;
    cfg.faces[0][0].p_target = -5.0;
    cfg.faces[0][1].p_target = 101325.0;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
  {
    sv::Config cfg = small_cfg();
    cfg.filter_interval = -1;
    EXPECT_THROW(cfg.validate(), sv::ConfigError);
  }
}

TEST(ConfigValidate, SolverConstructorRejectsMalformed) {
  sv::Config cfg = small_cfg();
  cfg.cfl = -0.5;
  EXPECT_THROW(sv::Solver s(cfg), sv::ConfigError);
}

// ---------------------------------------------------------------------------
// Satellite: stable_dt() under extreme states.

namespace {

double stable_dt_for(const sv::Config& cfg, const sv::InitFn& init) {
  sv::Solver s(cfg);
  s.initialize(init);
  return s.stable_dt();
}

}  // namespace

TEST(StableDt, FiniteOnExtremeStates) {
  const auto quiescent = [](double, double, double, sv::InflowState& st,
                            double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 300.0;
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  };
  const auto near_vacuum = [](double, double, double, sv::InflowState& st,
                              double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 300.0;
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 5.0;  // ~5e-5 kg/m^3
  };
  const auto hot_spot = [](double x, double y, double, sv::InflowState& st,
                           double& p) {
    const double r2 = (x - 0.005) * (x - 0.005) + (y - 0.005) * (y - 0.005);
    st.u = st.v = st.w = 0.0;
    st.T = 300.0 + 2200.0 * std::exp(-r2 / (0.001 * 0.001));
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  };

  const double dt_q = stable_dt_for(small_cfg(), quiescent);
  const double dt_v = stable_dt_for(small_cfg(), near_vacuum);
  const double dt_h = stable_dt_for(small_cfg(), hot_spot);
  for (double dt : {dt_q, dt_v, dt_h}) {
    EXPECT_TRUE(std::isfinite(dt));
    EXPECT_GT(dt, 0.0);
  }
  // A zero-velocity state is still acoustically limited: the dt must not
  // blow up to the pure-diffusive bound.
  EXPECT_LT(dt_q, 1e-3);
  // Hot gas is faster gas: the acoustic limit must tighten.
  EXPECT_LT(dt_h, dt_q);
  // Near-vacuum: the diffusive limit (nu = mu/rho huge) must tighten, not
  // overflow.
  EXPECT_LT(dt_v, dt_q);
}

TEST(StableDt, MonotoneUnderGridRefinement) {
  double prev = std::numeric_limits<double>::infinity();
  for (int n : {12, 24, 48}) {
    sv::Config cfg = small_cfg();
    cfg.x.n = n;
    cfg.y.n = n / 2;
    const double dt = stable_dt_for(cfg, wavy_init);
    ASSERT_TRUE(std::isfinite(dt));
    ASSERT_GT(dt, 0.0);
    EXPECT_LT(dt, prev) << "refining the grid must shrink the stable dt";
    prev = dt;
  }
}

// ---------------------------------------------------------------------------
// Tentpole: the sentinel and run_guarded.

TEST(HealthSentinel, CleanRunNoBreach) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  const auto rep = sv::run_guarded(s, 6, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_EQ(rep.scans, 6);
  EXPECT_EQ(rep.final_steps, 6);
  EXPECT_DOUBLE_EQ(rep.dt_scale, 1.0);
  EXPECT_TRUE(rep.events.empty());
}

TEST(HealthSentinel, DisarmedSentinelScansNothing) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  opts.health.enabled = false;
  const auto rep = sv::run_guarded(s, 4, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.scans, 0);
}

TEST(HealthSentinel, GuardOptionsValidate) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  opts.dt_factor = 1.5;
  EXPECT_THROW(sv::run_guarded(s, 1, opts), sv::ConfigError);
  opts = {};
  opts.ring_depth = 0;
  EXPECT_THROW(sv::run_guarded(s, 1, opts), sv::ConfigError);
  opts = {};
  opts.health.T_min = 400.0;
  opts.health.T_max = 300.0;
  EXPECT_THROW(sv::run_guarded(s, 1, opts), sv::ConfigError);
}

TEST(HealthSentinel, RecoversFromInjectedNaN) {
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  const auto rep = sv::run_guarded(s, 8, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.final_steps, 8);
  ASSERT_EQ(rep.rollbacks, 1);
  ASSERT_EQ(rep.events.size(), 1u);
  const auto& ev = rep.events[0];
  EXPECT_EQ(ev.report.breach, sv::Breach::non_finite);
  EXPECT_GE(ev.report.value, 1.0);  // at least one poisoned value
  EXPECT_GE(ev.report.cell[0], 0);  // worst cell resolved
  EXPECT_EQ(std::string(ev.report.site()), "health.non_finite");
  EXPECT_DOUBLE_EQ(ev.dt_scale, 0.5);
  EXPECT_TRUE(state_all_finite(s));
  EXPECT_EQ(fault::fires_at("solver.health"), 1);
}

TEST(HealthSentinel, RecoveryIsDeterministic) {
  const auto guarded_run = [] {
    FaultSession fs_;
    fault::arm({.site = "solver.health",
                .kind = fault::Kind::corrupt,
                .nth = 3,
                .max_fires = 1});
    sv::Solver s(small_cfg());
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    const auto rep = sv::run_guarded(s, 8, opts);
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.rollbacks, 1);
    return state_checksum(s);
  };
  EXPECT_EQ(guarded_run(), guarded_run());
}

TEST(HealthSentinel, OversizedFixedDtIsCaughtAndShrunk) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  const double dt0 = s.stable_dt();
  sv::Solver s2(small_cfg());
  s2.initialize(wavy_init);
  sv::GuardOptions opts;
  opts.dt_fixed = 8.0 * dt0;  // far beyond the safety factor
  opts.max_rollbacks = 10;
  opts.retries_per_snapshot = 10;  // keep every retry at the seed snapshot
  const auto rep = sv::run_guarded(s2, 6, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.rollbacks, 1);
  // 8x needs at least three halvings to drop under dt_safety = 1.5.
  EXPECT_LE(rep.dt_scale, 0.25);
  EXPECT_TRUE(state_all_finite(s2));
  // Whatever the first symptom was (dt check or a blown-up state), the
  // guard must have reported it with a structured breach.
  ASSERT_FALSE(rep.events.empty());
  EXPECT_NE(rep.events[0].report.breach, sv::Breach::none);
}

TEST(HealthSentinel, BudgetExhaustionThrowsWithReport) {
  FaultSession fs_;
  // Corrupt every scan: recovery can never make progress.
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = -1,
              .probability = 1.0,
              .max_fires = -1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  opts.max_rollbacks = 3;
  try {
    sv::run_guarded(s, 6, opts);
    FAIL() << "budget exhaustion must throw HealthError";
  } catch (const sv::HealthError& e) {
    EXPECT_EQ(e.report().breach, sv::Breach::non_finite);
    EXPECT_NE(std::string(e.what()).find("rollback budget"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("health.non_finite"),
              std::string::npos);
  }
}

TEST(HealthSentinel, RingExhaustedFallsBackToRestartSeries) {
  TmpDir dir("s3d_health_series");
  FaultSession fs_;
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  s.run(4);
  sv::RestartSeries series(dir.str(), "g");
  series.write(s, s.steps_taken());

  // Two consecutive corruptions with a depth-1 ring and a single retry
  // per snapshot: the second breach pops the ring empty and must restore
  // from the series.
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = -1,
              .probability = 1.0,
              .max_fires = 2});
  sv::GuardOptions opts;
  opts.ring_depth = 1;
  opts.retries_per_snapshot = 1;
  opts.fallback = &series;
  const auto rep = sv::run_guarded(s, 4, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.final_steps, 8);
  EXPECT_EQ(rep.rollbacks, 2);
  EXPECT_EQ(rep.series_restores, 1);
  ASSERT_EQ(rep.events.size(), 2u);
  EXPECT_FALSE(rep.events[0].from_series);
  EXPECT_TRUE(rep.events[1].from_series);
  EXPECT_EQ(rep.events[1].rolled_back_to, 4);
  EXPECT_TRUE(state_all_finite(s));
}

TEST(HealthSentinel, CollectiveVerdictFromSingleRankFault) {
  FaultSession fs_;
  // Rank 0 alone observes an injected failure; the collective verdict
  // must roll back every rank identically.
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::fail,
              .nth = 1,
              .rank = 0,
              .max_fires = 1});
  std::vector<sv::GuardReport> reps(2);
  std::vector<std::uint64_t> sums(2);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    sv::Solver s(small_cfg(), comm, 2, 1, 1);
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    reps[comm.rank()] = sv::run_guarded(s, 6, opts, &comm);
    sums[comm.rank()] = state_checksum(s);
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(reps[r].completed);
    EXPECT_EQ(reps[r].rollbacks, 1) << "rank " << r;
    ASSERT_EQ(reps[r].events.size(), 1u) << "rank " << r;
    EXPECT_EQ(reps[r].events[0].report.breach, sv::Breach::injected);
    // Both ranks agree the breach came from rank 0.
    EXPECT_EQ(reps[r].events[0].report.rank, 0);
  }
  // Both ranks took the rollback at the same step.
  EXPECT_EQ(reps[0].events[0].rolled_back_to,
            reps[1].events[0].rolled_back_to);
}

TEST(HealthSentinel, SentinelBreachCountersTraced) {
  trace::clear();
  trace::set_enabled(true);
  {
    FaultSession fs_;
    fault::arm({.site = "solver.health",
                .kind = fault::Kind::corrupt,
                .nth = 1,
                .max_fires = 1});
    sv::Solver s(small_cfg());
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    const auto rep = sv::run_guarded(s, 5, opts);
    EXPECT_TRUE(rep.completed);
  }
  trace::set_enabled(false);
  const auto sum = trace::summarize();
  const auto* breaches = sum.find_counter("health.breaches");
  const auto* site = sum.find_counter("health.non_finite");
  const auto* rollbacks = sum.find_counter("health.rollbacks");
  ASSERT_NE(breaches, nullptr);
  ASSERT_NE(site, nullptr);
  ASSERT_NE(rollbacks, nullptr);
  EXPECT_GE(breaches->total, 1.0);
  EXPECT_GE(site->total, 1.0);
  EXPECT_GE(rollbacks->total, 1.0);
  const auto* scan = sum.find("health.scan");
  ASSERT_NE(scan, nullptr) << "scan cost must be visible as a span";
  EXPECT_GE(scan->total_calls(), 5);
  trace::clear();
}

TEST(HealthSentinel, GuardedResilientDriverAbsorbsCorruption) {
  TmpDir dir("s3d_health_resilient");
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 4,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  sv::ResilienceConfig rc;
  rc.dir = dir.str();
  rc.checkpoint_every = 3;
  rc.guard = true;
  const auto rep = sv::run_resilient(s, wavy_init, 9, rc);
  EXPECT_TRUE(rep.succeeded);
  // The sentinel absorbed the corruption in memory: no driver-level
  // restore-and-retry attempt was consumed.
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_EQ(rep.recoveries, 0);
  EXPECT_EQ(rep.final_steps, 9);
  EXPECT_TRUE(state_all_finite(s));
  EXPECT_EQ(fault::fires_at("solver.health"), 1);
}

TEST(SnapshotRing, DepthRotationAndBytes) {
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::SnapshotRing ring(2);
  EXPECT_TRUE(ring.empty());
  ring.capture(s);
  s.run(1);
  ring.capture(s);
  s.run(1);
  ring.capture(s);  // depth 2: the step-0 snapshot rotates out
  EXPECT_EQ(ring.size(), 2);
  EXPECT_EQ(ring.newest_step(), 2);
  EXPECT_GT(ring.bytes(), 0u);
  ring.pop_newest();
  EXPECT_EQ(ring.newest_step(), 1);
  ring.restore_newest(s);
  EXPECT_EQ(s.steps_taken(), 1);
}
