// Equivalence tier (ctest -L equivalence): the SoA row-batched chemistry
// kernels of chem/batched.hpp must reproduce the scalar pointwise
// kinetics path BIT FOR BIT — not approximately — over randomized and
// extreme thermochemical states. Batching is a staging/traversal change
// only; both shapes funnel into the one compiled
// Mechanism::net_rates_ctx body (DESIGN.md §11), so any bit of drift
// here is a real kernel-sharing regression, and EXPECT_EQ on the raw
// IEEE-754 payloads is the right comparison.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "chem/batched.hpp"
#include "chem/mechanisms.hpp"

namespace chem = s3d::chem;

namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// One batch of thermochemical states, Y cell-major.
struct Batch {
  int count = 0;
  std::vector<double> T, lnT, rho, Y;
};

Batch random_batch(const chem::Mechanism& m, int count, unsigned seed) {
  const int ns = m.n_species();
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uT(260.0, 3100.0);
  std::uniform_real_distribution<double> urho(0.05, 5.0);
  std::uniform_real_distribution<double> uy(0.0, 1.0);
  Batch b;
  b.count = count;
  b.T.resize(count);
  b.lnT.resize(count);
  b.rho.resize(count);
  b.Y.resize(static_cast<std::size_t>(count) * ns);
  for (int c = 0; c < count; ++c) {
    b.T[c] = uT(rng);
    b.rho[c] = urho(rng);
    double sum = 0.0;
    for (int s = 0; s < ns; ++s) {
      const double y = uy(rng);
      b.Y[static_cast<std::size_t>(c) * ns + s] = y;
      sum += y;
    }
    for (int s = 0; s < ns; ++s)
      b.Y[static_cast<std::size_t>(c) * ns + s] /= sum;
  }
  for (int c = 0; c < count; ++c) b.lnT[c] = std::log(b.T[c]);
  return b;
}

/// States the solver actually produces under stress: temperatures at and
/// beyond the fit window, vanishing / exactly-zero / slightly-negative
/// mass fractions (what the health layer's clipping deals in), and
/// un-normalized compositions.
Batch extreme_batch(const chem::Mechanism& m) {
  const int ns = m.n_species();
  Batch b = random_batch(m, 8, 77u);
  auto Yrow = [&](int c) {
    return b.Y.data() + static_cast<std::size_t>(c) * ns;
  };
  b.T[0] = 250.0;   // cold clamp edge of the transport/thermo fits
  b.T[1] = 3200.0;  // hot fit edge
  b.T[2] = 305.123456789;
  for (int s = 0; s < ns; ++s) Yrow(0)[s] = 0.0;  // inert vacuum-ish cell
  Yrow(0)[ns - 1] = 1.0;
  for (int s = 0; s < ns; ++s) Yrow(1)[s] = 1e-280;  // denormal-adjacent
  Yrow(1)[0] = 1.0;
  Yrow(2)[0] = -1e-9;  // pre-clip negative mass fraction
  Yrow(2)[1] = -1e-22;
  for (int s = 0; s < ns; ++s) Yrow(3)[s] *= 1.5;  // un-normalized
  b.rho[4] = 1e-3;
  b.rho[5] = 50.0;
  for (int c = 0; c < b.count; ++c) b.lnT[c] = std::log(b.T[c]);
  return b;
}

/// The per-point reference: exactly what the unfused RHS chemistry loop
/// does — molar concentrations from rho Y / W, then the scalar
/// Mechanism::production_rates call, one cell at a time.
std::vector<double> scalar_reference(const chem::Mechanism& m,
                                     const Batch& b) {
  const int ns = m.n_species();
  std::vector<double> wdot(static_cast<std::size_t>(b.count) * ns);
  std::vector<double> c(ns), w(ns);
  for (int cell = 0; cell < b.count; ++cell) {
    for (int s = 0; s < ns; ++s)
      c[s] = b.rho[cell] * b.Y[static_cast<std::size_t>(cell) * ns + s] /
             m.W(s);
    m.production_rates(b.T[cell], c, w);
    for (int s = 0; s < ns; ++s)
      wdot[static_cast<std::size_t>(cell) * ns + s] = w[s];
  }
  return wdot;
}

void expect_bitwise(const std::vector<double>& want,
                    const std::vector<double>& got, const char* what) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(bits(want[i]), bits(got[i]))
        << what << ": bit drift at flat index " << i << " (" << want[i]
        << " vs " << got[i] << ")";
}

void check_mechanism(const chem::Mechanism& m) {
  chem::BatchedChemistry bc(m);
  // 257 cells: odd, larger than any row the tiny cases use, and larger
  // than the default DLB parcel so chunked shapes get exercised too.
  for (unsigned seed : {1u, 2u, 3u}) {
    const Batch b = random_batch(m, 257, seed);
    const auto ref = scalar_reference(m, b);
    std::vector<double> got(ref.size());
    bc.production_rates_batch(b.count, b.T.data(), b.lnT.data(),
                              b.rho.data(), b.Y.data(), got.data());
    expect_bitwise(ref, got, m.name().c_str());
  }
}

}  // namespace

TEST(ChemBatched, MatchesScalarH2) { check_mechanism(chem::h2_li2004()); }

TEST(ChemBatched, MatchesScalarSyngas) {
  check_mechanism(chem::syngas_co_h2());
}

TEST(ChemBatched, MatchesScalarCh4TwoStep) {
  check_mechanism(chem::ch4_bfer2step());
}

TEST(ChemBatched, MatchesScalarOnExtremeStates) {
  for (const auto& m : {chem::h2_li2004(), chem::syngas_co_h2()}) {
    chem::BatchedChemistry bc(m);
    const Batch b = extreme_batch(m);
    const auto ref = scalar_reference(m, b);
    std::vector<double> got(ref.size());
    bc.production_rates_batch(b.count, b.T.data(), b.lnT.data(),
                              b.rho.data(), b.Y.data(), got.data());
    expect_bitwise(ref, got, "extreme states");
  }
}

// The solver-facing entry reads T/rho straight from (ghosted) fields and
// species mass fractions through per-species base pointers. Must agree
// with the AoS entry (and hence the scalar path) bit for bit.
TEST(ChemBatched, FieldsEntryMatchesBatchEntry) {
  const chem::Mechanism m = chem::h2_li2004();
  const int ns = m.n_species();
  chem::BatchedChemistry bc(m);
  const int count = 33;
  const Batch b = random_batch(m, count, 9u);

  // Lay the batch out like solver fields: a ghost offset of 7 cells, one
  // contiguous array per species.
  const std::size_t n0 = 7;
  const std::size_t len = n0 + count + 3;
  std::vector<double> Tf(len, 300.0), lnTf(len, 0.0), rhof(len, 1.0);
  std::vector<std::vector<double>> Yf(ns, std::vector<double>(len, 0.0));
  std::vector<const double*> Yp(ns);
  for (int s = 0; s < ns; ++s) Yp[s] = Yf[s].data();
  for (int c = 0; c < count; ++c) {
    Tf[n0 + c] = b.T[c];
    lnTf[n0 + c] = b.lnT[c];
    rhof[n0 + c] = b.rho[c];
    for (int s = 0; s < ns; ++s)
      Yf[s][n0 + c] = b.Y[static_cast<std::size_t>(c) * ns + s];
  }

  std::vector<double> want(static_cast<std::size_t>(count) * ns);
  bc.production_rates_batch(count, b.T.data(), b.lnT.data(), b.rho.data(),
                            b.Y.data(), want.data());
  std::vector<double> got(want.size());
  bc.production_rates_fields(count, n0, Tf.data(), lnTf.data(), rhof.data(),
                             Yp.data(), got.data());
  expect_bitwise(want, got, "fields entry");
}

// Parcel-size invariance: the DLB host evaluates shipped cells in
// parcels of Config::dlb_parcel_cells, so chunking must not change the
// bits — the same cells in one batch of N, in singleton batches, and in
// ragged chunks must all agree exactly.
TEST(ChemBatched, BatchSizeInvariance) {
  const chem::Mechanism m = chem::syngas_co_h2();
  const int ns = m.n_species();
  chem::BatchedChemistry bc(m);
  const int count = 61;
  const Batch b = random_batch(m, count, 21u);

  std::vector<double> whole(static_cast<std::size_t>(count) * ns);
  bc.production_rates_batch(count, b.T.data(), b.lnT.data(), b.rho.data(),
                            b.Y.data(), whole.data());

  for (int chunk : {1, 2, 7, 64}) {
    std::vector<double> got(whole.size());
    for (int c0 = 0; c0 < count; c0 += chunk) {
      const int n = std::min(chunk, count - c0);
      bc.production_rates_batch(
          n, b.T.data() + c0, b.lnT.data() + c0, b.rho.data() + c0,
          b.Y.data() + static_cast<std::size_t>(c0) * ns,
          got.data() + static_cast<std::size_t>(c0) * ns);
    }
    expect_bitwise(whole, got, "chunked batch");
  }
}

// The lnT-taking scalar entry with a caller-staged std::log(T) must be
// indistinguishable from the classic entry that derives it internally —
// the contract that lets the batched passes stage ln T once per cell.
TEST(ChemBatched, LnTEntryMatchesScalar) {
  const chem::Mechanism m = chem::h2_li2004();
  const int ns = m.n_species();
  const Batch b = random_batch(m, 64, 5u);
  std::vector<double> c(ns), w1(ns), w2(ns);
  for (int cell = 0; cell < b.count; ++cell) {
    for (int s = 0; s < ns; ++s)
      c[s] = b.rho[cell] * b.Y[static_cast<std::size_t>(cell) * ns + s] /
             m.W(s);
    m.production_rates(b.T[cell], c, w1);
    m.production_rates_lnT(b.T[cell], std::log(b.T[cell]), c, w2);
    for (int s = 0; s < ns; ++s)
      ASSERT_EQ(bits(w1[s]), bits(w2[s]))
          << "cell " << cell << " species " << s;
  }
}
