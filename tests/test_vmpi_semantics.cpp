// vmpi semantics stress tests (the documented contract in vmpi.hpp):
//   - messages between a (src, dst, tag) triple are non-overtaking, even
//     under randomized send interleavings and randomized receive order;
//   - allreduce returns the identical value on every rank;
//   - an exception thrown by one rank is rethrown by vmpi::run and aborts
//     peers blocked in waits/collectives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "vmpi/vmpi.hpp"

namespace vmpi = s3d::vmpi;

namespace {

constexpr int kRanks = 8;
constexpr int kTags = 3;

struct PlannedMsg {
  int src, dst, tag;
  std::uint64_t seq;  ///< per-(src, dst, tag) sequence number, from 0
};

// Deterministic global plan every rank can reconstruct from the seed: a
// shuffled multiset of messages with per-triple sequence numbers assigned
// in (shuffled) plan order — the order each sender will post them.
std::vector<PlannedMsg> make_plan(std::uint64_t seed, int n_msgs) {
  s3d::Rng rng(seed);
  std::vector<PlannedMsg> plan;
  plan.reserve(n_msgs);
  for (int m = 0; m < n_msgs; ++m) {
    PlannedMsg pm;
    pm.src = rng.uniform_int(0, kRanks - 1);
    pm.dst = rng.uniform_int(0, kRanks - 1);
    pm.tag = rng.uniform_int(0, kTags - 1);
    pm.seq = 0;
    plan.push_back(pm);
  }
  // Assign per-triple sequence numbers in plan order.
  std::uint64_t counts[kRanks][kRanks][kTags] = {};
  for (auto& pm : plan) pm.seq = counts[pm.src][pm.dst][pm.tag]++;
  return plan;
}

}  // namespace

TEST(VmpiSemantics, NonOvertakingPerTripleUnderRandomizedOrderings) {
  for (std::uint64_t seed : {0x5eed1ull, 0x5eed2ull, 0x5eed3ull}) {
    const auto plan = make_plan(seed, 400);
    vmpi::run(kRanks, [&](vmpi::Comm& comm) {
      const int me = comm.rank();

      // Send my share in plan order (which interleaves destinations and
      // tags arbitrarily), preserving per-triple posting order — exactly
      // the ordering the non-overtaking guarantee is stated over.
      for (const auto& pm : plan)
        if (pm.src == me) {
          const double payload = static_cast<double>(pm.seq);
          comm.isend(pm.dst, pm.tag, {&payload, 1});
        }

      // Receive: collect my inbound (src, tag) streams, then drain them in
      // a per-rank randomized round-robin so matching order is stressed.
      struct Stream {
        int src, tag;
        std::uint64_t expect = 0, total = 0;
      };
      std::vector<Stream> streams;
      for (const auto& pm : plan)
        if (pm.dst == me) {
          auto it = std::find_if(streams.begin(), streams.end(),
                                 [&](const Stream& s) {
                                   return s.src == pm.src && s.tag == pm.tag;
                                 });
          if (it == streams.end()) {
            streams.push_back(Stream{pm.src, pm.tag, 0, 1});
          } else {
            ++it->total;
          }
        }
      s3d::Rng rng(seed * 1000003u + static_cast<std::uint64_t>(me));
      std::shuffle(streams.begin(), streams.end(), rng.engine());

      std::uint64_t remaining = 0;
      for (const auto& s : streams) remaining += s.total;
      while (remaining > 0) {
        const int pick = rng.uniform_int(0, static_cast<int>(streams.size()) - 1);
        Stream& s = streams[pick];
        if (s.expect == s.total) continue;  // stream drained
        double payload = -1.0;
        comm.recv(s.src, s.tag, {&payload, 1});
        // Non-overtaking: the next message on this triple must carry the
        // next sequence number.
        ASSERT_EQ(static_cast<std::uint64_t>(payload), s.expect)
            << "overtaking on (" << s.src << " -> " << me << ", tag "
            << s.tag << ")";
        ++s.expect;
        --remaining;
      }
      comm.barrier();
    });
  }
}

TEST(VmpiSemantics, AllreduceAgreesOnAllRanks) {
  std::vector<double> sums(kRanks), maxs(kRanks), mins(kRanks);
  std::vector<std::vector<double>> vecs(kRanks);
  vmpi::run(kRanks, [&](vmpi::Comm& comm) {
    const int me = comm.rank();
    s3d::Rng rng(0xa11eed + static_cast<std::uint64_t>(me));
    const double mine = rng.uniform(-1e6, 1e6);
    sums[me] = comm.allreduce_sum(mine);
    maxs[me] = comm.allreduce_max(mine);
    mins[me] = comm.allreduce_min(mine);
    std::vector<double> v = {mine, -mine, 1.0};
    comm.allreduce_sum(std::span<double>(v));
    vecs[me] = v;
  });
  for (int r = 1; r < kRanks; ++r) {
    // Bitwise agreement: every rank reduced the same slots in the same
    // order.
    EXPECT_EQ(sums[r], sums[0]) << "allreduce_sum diverged on rank " << r;
    EXPECT_EQ(maxs[r], maxs[0]);
    EXPECT_EQ(mins[r], mins[0]);
    ASSERT_EQ(vecs[r].size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(vecs[r][i], vecs[0][i]);
  }
  EXPECT_DOUBLE_EQ(vecs[0][2], static_cast<double>(kRanks));
  EXPECT_LE(mins[0], maxs[0]);
}

TEST(VmpiSemantics, ExceptionInOneRankIsRethrownAndUnblocksPeers) {
  EXPECT_THROW(
      vmpi::run(kRanks,
                [&](vmpi::Comm& comm) {
                  if (comm.rank() == 3) throw s3d::Error("rank 3 exploded");
                  // Every other rank blocks on a receive that will never
                  // be matched; the abort must wake them.
                  double buf = 0.0;
                  comm.recv((comm.rank() + 1) % kRanks, 99, {&buf, 1});
                }),
      s3d::Error);

  // Peers blocked in a collective must be released too.
  EXPECT_THROW(vmpi::run(kRanks,
                         [&](vmpi::Comm& comm) {
                           if (comm.rank() == 0)
                             throw s3d::Error("rank 0 exploded");
                           comm.barrier();
                         }),
               s3d::Error);

  // And the runtime stays usable afterwards.
  double total = 0.0;
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const double s = comm.allreduce_sum(1.0);
    if (comm.rank() == 0) total = s;
  });
  EXPECT_DOUBLE_EQ(total, 2.0);
}
