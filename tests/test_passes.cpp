// Fused-pass execution layer (DESIGN.md §10): bitwise contracts.
//
// Fusion must never change per-cell arithmetic, only traversal
// structure. These tests pin that contract at every layer:
//   - batched_deriv (assign) against the per-field FieldOps::deriv,
//   - batched_deriv (accumulate) against the unfused scratch-buffer
//     write / read / subtract triple it replaces,
//   - FusedPointwise stage permutations against sequential sweeps
//     (the commuting-stage legality property),
//   - a full fused RHS evaluation and multi-step solver runs against
//     the unfused reference path (Config::fusion off),
//   - the in-pass health tripwire verdict against the sentinel's
//     separate-sweep scan, including a guarded blow-up recovery run
//     across 1/2/8-rank decompositions checked against the committed
//     golden record in tests/golden/data/.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/field_ops.hpp"
#include "solver/health.hpp"
#include "solver/passes.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace vmpi = s3d::vmpi;

namespace {

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Bitwise comparison with a diagnosis of the first differing element.
::testing::AssertionResult bitwise_equal(const double* a, const double* b,
                                         std::size_t n, const char* what) {
  for (std::size_t i = 0; i < n; ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
      return ::testing::AssertionFailure()
             << what << ": first difference at flat element " << i << ": "
             << hexfloat(a[i]) << " vs " << hexfloat(b[i]);
  return ::testing::AssertionSuccess();
}

/// Deterministic smooth-plus-wiggle fill covering ghosts, distinct per
/// field id so batched fields cannot alias to the same data.
void fill_field(const sv::Layout& l, double* f, int id) {
  for (int k = -l.gz; k < l.nz + l.gz; ++k)
    for (int j = -l.gy; j < l.ny + l.gy; ++j)
      for (int i = -l.gx; i < l.nx + l.gx; ++i)
        f[l.at(i, j, k)] = std::sin(0.3 * i + 0.7 * j - 0.4 * k + 1.3 * id) +
                           0.01 * std::cos(2.1 * i * j + 0.5 * k + id);
}

struct OpsBox {
  sv::Layout l;
  s3d::grid::Mesh mesh;
  sv::FieldOps ops;
  OpsBox(int nx, int ny, int nz, bool periodic, double stretch_y = 0.0)
      : l(sv::Layout::make(nx, ny, nz)),
        mesh({nx, 0.01, periodic}, {ny, 0.02, periodic, stretch_y},
             {nz, 0.015, periodic}),
        ops(l, mesh, {0, 0, 0}, ghosts(periodic)) {}
  sv::GhostFlags ghosts(bool periodic) const {
    sv::GhostFlags gh;
    for (int a = 0; a < 3; ++a) gh.lo[a] = gh.hi[a] = periodic;
    return gh;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// batched_deriv, assign mode: one tiled traversal per axis must equal the
// per-field operator bit for bit, with and without ghosted boundaries and
// with a stretched (per-point metric) axis.

TEST(BatchedDeriv, AssignMatchesPerFieldDeriv) {
  for (const bool periodic : {true, false}) {
    for (const double stretch : {0.0, 1.5}) {
      if (periodic && stretch > 0.0) continue;  // unsupported mesh combo
      OpsBox box(12, 10, 9, periodic, stretch);
      const sv::Layout& l = box.l;
      constexpr int kFields = 4;
      std::vector<sv::GField> src(kFields), out(kFields), ref(kFields);
      for (int f = 0; f < kFields; ++f) {
        src[f] = sv::GField(l);
        out[f] = sv::GField(l);
        ref[f] = sv::GField(l);
        fill_field(l, src[f].data(), f);
      }
      for (int axis = 0; axis < 3; ++axis) {
        std::vector<sv::DerivTarget> targets;
        for (int f = 0; f < kFields; ++f) {
          targets.push_back({src[f].data(), out[f].data()});
          box.ops.deriv(src[f], axis, ref[f]);
        }
        sv::PassStats stats;
        sv::batched_deriv(box.ops, axis, targets, /*accumulate=*/false,
                          &stats);
        EXPECT_EQ(stats.sweeps, 1);
        EXPECT_EQ(stats.stages, kFields);
        for (int f = 0; f < kFields; ++f)
          EXPECT_TRUE(bitwise_equal(out[f].data(), ref[f].data(), l.total(),
                                    "assign deriv"))
              << "axis " << axis << " field " << f << " periodic " << periodic
              << " stretch " << stretch;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// batched_deriv, accumulate mode: out -= d/dx_axis(f) in place must equal
// the unfused triple (derivative into scratch, subtract scratch over the
// interior) bit for bit — the FMA-contraction hazard this mode's rounding
// barrier exists for.

TEST(BatchedDeriv, AccumulateMatchesScratchPair) {
  for (const bool periodic : {true, false}) {
    for (const double stretch : {0.0, 1.5}) {
      if (periodic && stretch > 0.0) continue;  // unsupported mesh combo
      OpsBox box(12, 10, 9, periodic, stretch);
      const sv::Layout& l = box.l;
      constexpr int kFields = 3;
      std::vector<sv::GField> src(kFields), out(kFields), ref(kFields);
      sv::GField scratch(l);
      for (int f = 0; f < kFields; ++f) {
        src[f] = sv::GField(l);
        out[f] = sv::GField(l);
        ref[f] = sv::GField(l);
        fill_field(l, src[f].data(), f);
        fill_field(l, out[f].data(), 10 + f);  // pre-existing accumulation
        std::memcpy(ref[f].data(), out[f].data(),
                    l.total() * sizeof(double));
      }
      for (int axis = 0; axis < 3; ++axis) {
        // Unfused reference: scratch round-trip, interior subtraction.
        for (int f = 0; f < kFields; ++f) {
          box.ops.deriv(src[f].data(), axis, scratch.data(), scratch.size());
          for (int k = 0; k < l.nz; ++k)
            for (int j = 0; j < l.ny; ++j) {
              const std::size_t row = l.at(0, j, k);
              for (int i = 0; i < l.nx; ++i)
                ref[f].data()[row + i] -= scratch.data()[row + i];
            }
        }
        std::vector<sv::DerivTarget> targets;
        for (int f = 0; f < kFields; ++f)
          targets.push_back({src[f].data(), out[f].data()});
        sv::batched_deriv(box.ops, axis, targets, /*accumulate=*/true,
                          nullptr);
        for (int f = 0; f < kFields; ++f)
          EXPECT_TRUE(bitwise_equal(out[f].data(), ref[f].data(), l.total(),
                                    "accumulate deriv"))
              << "axis " << axis << " field " << f << " periodic " << periodic
              << " stretch " << stretch;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FusedPointwise legality property: stages that read no staged output
// commute — every registration order, fused or sequential, over every
// traversal shape, produces bitwise-identical fields.

TEST(FusedPointwise, StagePermutationsAreBitwiseIdentical) {
  OpsBox box(10, 8, 6, true);
  const sv::Layout& l = box.l;
  constexpr int kStages = 3;
  std::vector<sv::GField> in(kStages);
  for (int s = 0; s < kStages; ++s) {
    in[s] = sv::GField(l);
    fill_field(l, in[s].data(), s);
  }

  auto build = [&](const int order[kStages],
                   std::vector<sv::GField>& out) -> sv::FusedPointwise {
    sv::FusedPointwise pass("test.permute");
    for (int p = 0; p < kStages; ++p) {
      const int s = order[p];
      const double* a = in[s].data();
      const double* b = in[(s + 1) % kStages].data();
      double* o = out[s].data();
      pass.add("stage", [=](const sv::RowRange& r) {
        for (int c = 0; c < r.count; ++c) {
          const std::size_t n = r.n0 + static_cast<std::size_t>(c);
          o[n] = a[n] * b[n] + 0.5 * a[n];
        }
      });
    }
    return pass;
  };

  const int orders[][kStages] = {{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}};
  std::vector<sv::GField> ref(kStages);
  for (int s = 0; s < kStages; ++s) ref[s] = sv::GField(l, 0.0);
  build(orders[0], ref).run_interior_sequential(l, nullptr);

  for (const auto& order : orders) {
    for (const char* shape : {"interior", "valid", "full"}) {
      std::vector<sv::GField> out(kStages);
      for (int s = 0; s < kStages; ++s) out[s] = sv::GField(l, 0.0);
      sv::PassStats stats;
      sv::FusedPointwise pass = build(order, out);
      if (std::strcmp(shape, "interior") == 0)
        pass.run_interior(l, &stats);
      else if (std::strcmp(shape, "valid") == 0)
        pass.run_valid(l, box.ghosts(true), &stats);
      else
        pass.run_full(l, &stats);
      EXPECT_EQ(stats.sweeps, 1);
      EXPECT_EQ(stats.stages, kStages);
      // Interior values agree across permutations and shapes (the wider
      // shapes additionally write ghost rows, checked via full-box
      // comparison between same-shape runs below).
      for (int s = 0; s < kStages; ++s)
        for (int k = 0; k < l.nz; ++k)
          for (int j = 0; j < l.ny; ++j) {
            const std::size_t row = l.at(0, j, k);
            EXPECT_TRUE(bitwise_equal(out[s].data() + row,
                                      ref[s].data() + row, l.nx,
                                      "permuted stage interior"))
                << "stage " << s << " shape " << shape;
          }
    }
  }

  // Fused vs sequential over the full ghosted box, same order.
  std::vector<sv::GField> fused(kStages), seq(kStages);
  for (int s = 0; s < kStages; ++s) {
    fused[s] = sv::GField(l, 0.0);
    seq[s] = sv::GField(l, 0.0);
  }
  build(orders[0], fused).run_valid(l, box.ghosts(true), nullptr);
  build(orders[0], seq).run_valid_sequential(l, box.ghosts(true), nullptr);
  for (int s = 0; s < kStages; ++s)
    EXPECT_TRUE(bitwise_equal(fused[s].data(), seq[s].data(), l.total(),
                              "fused vs sequential"));
}

// ---------------------------------------------------------------------------
// Full fused RHS evaluation against the unfused reference path.

namespace {

void expect_eval_bitwise(const sv::CaseSetup& setup, const char* name) {
  sv::Config on = setup.cfg, off = setup.cfg;
  on.fusion = true;
  off.fusion = false;
  sv::Solver sf(on), su(off);
  sf.initialize(setup.init);
  su.initialize(setup.init);

  const int nv = sf.state().nv();
  sv::State df(sf.layout(), nv), du(su.layout(), nv);
  sf.rhs().eval(sf.state(), 0.0, df);
  su.rhs().eval(su.state(), 0.0, du);

  const sv::Layout& l = sf.layout();
  for (int v = 0; v < nv; ++v)
    EXPECT_TRUE(bitwise_equal(df.var(v), du.var(v), l.total(), name))
        << "dUdt variable " << v;

  // Fusion strictly reduces sweeps while carrying the same stage count
  // through the gradient and convective phases.
  EXPECT_LT(sf.rhs().pass_stats().sweeps, su.rhs().pass_stats().sweeps)
      << name << ": fused path did not reduce sweep count";
}

void expect_steps_bitwise(const sv::CaseSetup& setup, int nsteps,
                          const char* name) {
  sv::Config on = setup.cfg, off = setup.cfg;
  on.fusion = true;
  off.fusion = false;
  sv::Solver sf(on), su(off);
  sf.initialize(setup.init);
  su.initialize(setup.init);
  sf.run(nsteps);
  su.run(nsteps);
  ASSERT_EQ(sf.steps_taken(), su.steps_taken());
  ASSERT_EQ(hexfloat(sf.time()), hexfloat(su.time()));
  const sv::Layout& l = sf.layout();
  for (int v = 0; v < sf.state().nv(); ++v)
    EXPECT_TRUE(bitwise_equal(sf.state().var(v), su.state().var(v),
                              l.total(), name))
        << "U variable " << v;
}

}  // namespace

TEST(FusedRhs, EvalBitwisePressureWave3D) {
  expect_eval_bitwise(sv::pressure_wave_case(12), "pressure_wave eval");
}

TEST(FusedRhs, EvalBitwiseLiftedJet2D) {
  sv::LiftedJetParams p;
  p.nx = 24;
  p.ny = 16;
  expect_eval_bitwise(sv::lifted_jet_case(p), "lifted_jet eval");
}

TEST(FusedRhs, StepsBitwisePressureWave3D) {
  expect_steps_bitwise(sv::pressure_wave_case(12), 3, "pressure_wave steps");
}

TEST(FusedRhs, StepsBitwiseLiftedJet2D) {
  sv::LiftedJetParams p;
  p.nx = 24;
  p.ny = 16;
  expect_steps_bitwise(sv::lifted_jet_case(p), 3, "lifted_jet steps");
}

// ---------------------------------------------------------------------------
// In-pass tripwires: an armed step's folded verdict must match the
// sentinel's separate-sweep scan on the identical committed state, for
// both fold points (filter commit and final RK axpy).

TEST(InPassTripwires, VerdictMatchesSeparateSweep) {
  for (const int filter_interval : {1, 0}) {  // filter fold / RK fold
    auto setup = sv::pressure_wave_case(12);
    setup.cfg.fusion = true;
    setup.cfg.filter_interval = filter_interval;

    sv::HealthConfig hc;
    hc.check_dt = false;

    // Two identical fused solvers; only the scan mode differs.
    sv::Solver sa(setup.cfg), sb(setup.cfg);
    sa.initialize(setup.init);
    sb.initialize(setup.init);
    sv::HealthConfig hc_in = hc, hc_sweep = hc;
    hc_in.in_pass = true;
    hc_sweep.in_pass = false;
    sv::HealthSentinel in_pass(sa, hc_in, nullptr);
    sv::HealthSentinel sweep(sb, hc_sweep, nullptr);

    // A wildly unstable dt drives the state into breach deterministically.
    const double dt = 20.0 * sa.stable_dt();
    (void)sb.stable_dt();  // keep both solvers' prim workspaces in step

    EXPECT_TRUE(in_pass.arm_in_pass());
    EXPECT_FALSE(sweep.arm_in_pass());  // disabled by config
    sa.step(dt);
    sb.step(dt);
    for (int v = 0; v < sa.state().nv(); ++v)
      ASSERT_TRUE(bitwise_equal(sa.state().var(v), sb.state().var(v),
                                sa.layout().total(), "armed vs unarmed U"))
          << "variable " << v << " filter_interval " << filter_interval;

    const sv::HealthReport ra = in_pass.scan(dt);
    const sv::HealthReport rb = sweep.scan(dt);
    EXPECT_EQ(static_cast<int>(ra.breach), static_cast<int>(rb.breach))
        << "filter_interval " << filter_interval;
    EXPECT_EQ(ra.step, rb.step);
    EXPECT_EQ(ra.cell, rb.cell);
    EXPECT_EQ(hexfloat(ra.value), hexfloat(rb.value));
    EXPECT_EQ(hexfloat(ra.threshold), hexfloat(rb.threshold));
  }
}

TEST(InPassTripwires, InflowWithoutFilterCannotFold) {
  // Inflow commits a host-side loop after the last fused pass on
  // unfiltered steps, so arming must be refused and the sentinel falls
  // back to its separate sweep (still correct, just not folded).
  sv::LiftedJetParams p;
  p.nx = 24;
  p.ny = 16;
  auto setup = sv::lifted_jet_case(p);
  setup.cfg.fusion = true;
  setup.cfg.filter_interval = 0;
  sv::Solver s(setup.cfg);
  s.initialize(setup.init);
  sv::HealthConfig hc;
  hc.check_dt = false;
  sv::HealthSentinel sentinel(s, hc, nullptr);
  EXPECT_FALSE(sentinel.arm_in_pass());

  // With the filter back on, the filter-commit pass is last and folding
  // becomes legal again.
  setup.cfg.filter_interval = 1;
  sv::Solver s2(setup.cfg);
  s2.initialize(setup.init);
  sv::HealthSentinel sentinel2(s2, hc, nullptr);
  EXPECT_TRUE(sentinel2.arm_in_pass());
}

// ---------------------------------------------------------------------------
// Guarded blow-up recovery: fused and unfused runs, serial and decomposed
// (1/2/8 ranks), agree bitwise on the recovered final state — the same
// scenario the committed golden record pins.

namespace {

/// Mirrors tests/golden/test_golden_health.cpp: a pressure-wave case
/// driven at 20x the stable dt so the sentinel must roll back and
/// re-advance under a shrunken dt.
struct GuardedResult {
  std::vector<std::string> checksums;
  long steps = 0;
  int rollbacks = 0;
};

GuardedResult run_guarded_case(bool fusion, int px, int py, int pz) {
  constexpr int kN = 16;
  constexpr int kSteps = 4;
  constexpr double kDtFactor = 20.0;

  auto setup = sv::pressure_wave_case(kN);
  setup.cfg.fusion = fusion;
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * kN * kN * kN);
  GuardedResult res;

  vmpi::run(px * py * pz, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    const double dt = kDtFactor * s.stable_dt();

    sv::GuardOptions opts;
    opts.health.check_dt = false;
    opts.max_rollbacks = 30;
    opts.retries_per_snapshot = 100;
    opts.ring_depth = 2;
    opts.dt_fixed = dt;
    const auto rep = sv::run_guarded(s, kSteps, opts, &comm);

    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i)
            global[static_cast<std::size_t>(v) * kN * kN * kN +
                   static_cast<std::size_t>(off[2] + k) * kN * kN +
                   static_cast<std::size_t>(off[1] + j) * kN +
                   (off[0] + i)] = var[l.at(i, j, k)];
    }
    if (comm.rank() == 0) {
      res.steps = rep.final_steps;
      res.rollbacks = rep.rollbacks;
    }
    comm.barrier();
  });

  const std::size_t pts = static_cast<std::size_t>(kN) * kN * kN;
  for (int v = 0; v < nv; ++v)
    res.checksums.push_back(s3d::hex64(s3d::fnv1a64(
        global.data() + static_cast<std::size_t>(v) * pts,
        pts * sizeof(double))));
  return res;
}

}  // namespace

TEST(GuardedFusion, BlowupRecoveryFusedMatchesUnfusedAcrossRanks) {
  const auto ref = run_guarded_case(/*fusion=*/false, 1, 1, 1);
  ASSERT_GT(ref.rollbacks, 0) << "case must actually breach and recover";

  struct Decomp {
    bool fusion;
    int px, py, pz;
  };
  for (const Decomp d : {Decomp{true, 1, 1, 1}, Decomp{true, 2, 1, 1},
                         Decomp{true, 2, 2, 2}, Decomp{false, 2, 2, 2}}) {
    const auto got = run_guarded_case(d.fusion, d.px, d.py, d.pz);
    EXPECT_EQ(got.checksums, ref.checksums)
        << (d.fusion ? "fused" : "unfused") << " " << d.px << "x" << d.py
        << "x" << d.pz << " diverged from the serial unfused reference";
    EXPECT_EQ(got.steps, ref.steps);
    EXPECT_EQ(got.rollbacks, ref.rollbacks);
  }
}

// The cross-build half of the scenario, split out so the sanitizer lanes
// can run the (within-build) fusion/decomposition contract above at full
// strength. Root cause of the split: the committed golden record pins the
// *default* build's FP codegen, and sanitizer instrumentation perturbs
// instruction selection/contraction enough to change the recovered
// trajectory's bits. That is an artifact of comparing across builds — the
// bitwise contract is per-build — so under a sanitizer this one
// comparison (and only it) is skipped rather than excluding the whole
// recovery test from the lane.
TEST(GuardedFusion, BlowupRecoveryMatchesGoldenRecord) {
#ifdef S3D_SANITIZER_LANE
  GTEST_SKIP() << "golden records pin the default build's FP codegen; "
                  "sanitizer instrumentation changes it (see comment)";
#endif
  const auto ref = run_guarded_case(/*fusion=*/false, 1, 1, 1);
  ASSERT_GT(ref.rollbacks, 0) << "case must actually breach and recover";

  // The committed golden record (recorded from the unfused seed) pins the
  // same scenario: the recovered fields must still hash to it.
  std::ifstream gold(std::string(S3D_GOLDEN_DIR) + "/health_recovery.golden");
  ASSERT_TRUE(gold.good()) << "missing health_recovery.golden";
  std::map<std::size_t, std::string> want;
  std::string line;
  while (std::getline(gold, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "checksum") {
      std::size_t idx;
      std::string sum;
      ss >> idx >> sum;
      want[idx] = sum;
    }
  }
  ASSERT_FALSE(want.empty());
  for (const auto& [idx, sum] : want) {
    ASSERT_LT(idx, ref.checksums.size());
    EXPECT_EQ(ref.checksums[idx], sum)
        << "recovered field " << idx << " drifted from the golden record";
  }
}
