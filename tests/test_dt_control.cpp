// Per-block dt controller suite (ctest -L health / -L adaptive): the
// BlockMap global tiling and its local projections, the PI controller's
// shrink/regrow/clamp behaviour, tripwire feedback, subcycle counts, and
// the AdaptiveOptions::validate() property checks over malformed knobs
// (DESIGN.md §13).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chem/mechanisms.hpp"
#include "solver/config.hpp"
#include "solver/dt_control.hpp"

namespace sv = s3d::solver;

namespace {

/// A serial box: layout == global interior, zero offset.
sv::Layout box_layout(int nx, int ny, int nz) {
  return sv::Layout::make(nx, ny, nz);
}

sv::BlockMap cube_map(int N, int block) {
  return sv::BlockMap(N, N, N, block, box_layout(N, N, N), {0, 0, 0});
}

sv::AdaptiveOptions opts_on() {
  sv::AdaptiveOptions ad;
  ad.enabled = true;
  return ad;
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockMap: the global tiling and its local projections.

TEST(BlockMap, TilesGlobalInterior) {
  const auto m = cube_map(16, 8);
  EXPECT_EQ(m.nbx(), 2);
  EXPECT_EQ(m.nby(), 2);
  EXPECT_EQ(m.nbz(), 2);
  EXPECT_EQ(m.n_blocks(), 8);
  EXPECT_EQ(m.block_of_global(0, 0, 0), 0);
  EXPECT_EQ(m.block_of_global(15, 0, 0), 1);
  EXPECT_EQ(m.block_of_global(0, 8, 0), 2);
  EXPECT_EQ(m.block_of_global(0, 0, 8), 4);
  EXPECT_EQ(m.block_of_global(15, 15, 15), 7);
  // Uneven edge blocks: 20 cells at block 8 -> tiles of 8, 8, 4.
  const auto u = cube_map(20, 8);
  EXPECT_EQ(u.nbx(), 3);
  EXPECT_EQ(u.block_cells(0), 8L * 8 * 8);
  EXPECT_EQ(u.block_cells(2), 4L * 8 * 8);       // thin x edge
  EXPECT_EQ(u.block_cells(u.n_blocks() - 1), 4L * 4 * 4);  // corner
}

TEST(BlockMap, VisitRowsCoversEveryCellOnce) {
  const int N = 12, B = 5;  // deliberately non-divisible
  const auto m = cube_map(N, B);
  const auto l = box_layout(N, N, N);
  std::vector<int> owner(static_cast<std::size_t>(N) * N * N, -1);
  m.visit_rows([&](int b, const sv::RowRange& seg) {
    for (int i = 0; i < seg.count; ++i) {
      const std::size_t cell =
          static_cast<std::size_t>(seg.i0 + i) +
          static_cast<std::size_t>(N) * (seg.j + static_cast<std::size_t>(N) * seg.k);
      ASSERT_EQ(owner[cell], -1) << "cell visited twice";
      owner[cell] = b;
      // The segment's n0 must be the layout address of its first cell.
      if (i == 0) {
        EXPECT_EQ(seg.n0, l.at(seg.i0, seg.j, seg.k));
      }
    }
  });
  for (int k = 0; k < N; ++k)
    for (int j = 0; j < N; ++j)
      for (int i = 0; i < N; ++i) {
        const std::size_t cell =
            static_cast<std::size_t>(i) +
            static_cast<std::size_t>(N) * (j + static_cast<std::size_t>(N) * k);
        ASSERT_EQ(owner[cell], m.block_of_global(i, j, k));
      }
}

TEST(BlockMap, SegmentsSelectAndMerge) {
  const auto m = cube_map(16, 8);
  // One block: each of its 8x8 rows is one 8-cell segment.
  const std::vector<int> one{0};
  long cells = 0;
  for (const auto& seg : m.segments(one)) {
    EXPECT_EQ(seg.count, 8);
    EXPECT_EQ(seg.i0, 0);
    EXPECT_LT(seg.j, 8);
    EXPECT_LT(seg.k, 8);
    cells += seg.count;
  }
  EXPECT_EQ(cells, 8L * 8 * 8);
  // Two x-adjacent blocks merge into full 16-cell rows.
  const std::vector<int> pair{0, 1};
  for (const auto& seg : m.segments(pair)) EXPECT_EQ(seg.count, 16);
  // Duplicates and out-of-range ids are tolerated.
  const std::vector<int> messy{0, 0, -3, 99, 1};
  EXPECT_EQ(m.segments(messy).size(), m.segments(pair).size());
  // Empty selection: empty list (a rank owning none still participates).
  EXPECT_TRUE(m.segments(std::vector<int>{}).empty());
}

TEST(BlockMap, WidenAddsFaceNeighbors) {
  const auto m = cube_map(24, 8);  // 3x3x3 blocks
  // Center block 13 has all 6 face neighbors.
  const auto c = m.widen(std::vector<int>{13});
  EXPECT_EQ(c.size(), 7u);
  EXPECT_TRUE(std::set<int>(c.begin(), c.end()).count(13));
  // Corner block 0 is clamped to 3 neighbors + itself.
  const auto k = m.widen(std::vector<int>{0});
  EXPECT_EQ(k, (std::vector<int>{0, 1, 3, 9}));
  // Widening two adjacent blocks deduplicates the shared neighbors.
  const auto two = m.widen(std::vector<int>{0, 1});
  const std::set<int> s(two.begin(), two.end());
  EXPECT_EQ(two.size(), s.size()) << "widen must deduplicate";
}

// ---------------------------------------------------------------------------
// DtController: PI behaviour.

TEST(DtController, ShrinksOnErrorGrowsBackWhenClean) {
  const auto m = cube_map(16, 8);
  sv::DtController c(m, opts_on());
  for (int b = 0; b < c.n_blocks(); ++b) EXPECT_DOUBLE_EQ(c.ratio(b), 1.0);
  EXPECT_TRUE(c.stiff().empty());

  // One block far above tolerance: only it shrinks and turns stiff.
  std::vector<double> err(8, 1e-3);  // others: well below tolerance
  err[3] = 50.0;
  c.observe(err, nullptr);
  EXPECT_LT(c.ratio(3), 1.0);
  EXPECT_EQ(c.stiff(), std::vector<int>{3});
  EXPECT_GT(c.subcycles(3), 1);
  EXPECT_EQ(c.max_subcycles(), c.subcycles(3));

  // Sustained clean observations relax it back to the ceiling.
  std::fill(err.begin(), err.end(), 1e-3);
  for (int n = 0; n < 50; ++n) c.observe(err, nullptr);
  EXPECT_DOUBLE_EQ(c.ratio(3), 1.0);
  EXPECT_TRUE(c.stiff().empty());
}

TEST(DtController, PerUpdateAndAbsoluteClamps) {
  const auto m = cube_map(16, 8);
  auto ad = opts_on();
  ad.dt_min_ratio = 0.125;
  sv::DtController c(m, ad);
  // A single catastrophic observation shrinks by at most the per-update
  // factor clamp (1/5), never straight to the floor.
  std::vector<double> err(8, 1e30);
  c.observe(err, nullptr);
  EXPECT_DOUBLE_EQ(c.ratio(0), 0.2);
  // Sustained catastrophe bottoms out exactly at dt_min_ratio.
  for (int n = 0; n < 20; ++n) c.observe(err, nullptr);
  for (int b = 0; b < 8; ++b) EXPECT_DOUBLE_EQ(c.ratio(b), ad.dt_min_ratio);
  EXPECT_DOUBLE_EQ(c.min_ratio(), ad.dt_min_ratio);
  // Subcycle count is ceil(1/ratio) capped by subcycle_cap.
  EXPECT_EQ(c.subcycles(0), 8);
  auto ad2 = opts_on();
  ad2.dt_min_ratio = 1e-6;
  ad2.subcycle_cap = 10;
  sv::DtController c2(m, ad2);
  for (int n = 0; n < 200; ++n) c2.observe(err, nullptr);
  EXPECT_EQ(c2.subcycles(0), 10) << "subcycle count must honor the cap";
}

TEST(DtController, NonFiniteErrorIsSanitizedNotAbsorbed) {
  const auto m = cube_map(16, 8);
  sv::DtController c(m, opts_on());
  std::vector<double> err(8, 1e-3);
  err[5] = std::numeric_limits<double>::quiet_NaN();
  err[6] = std::numeric_limits<double>::infinity();
  c.observe(err, nullptr);
  // NaN/Inf estimates mean "this block blew up": the ratio must shrink
  // like a huge-but-finite error, and stay a usable number.
  for (int b = 0; b < 8; ++b) ASSERT_TRUE(std::isfinite(c.ratio(b)));
  EXPECT_LT(c.ratio(5), 1.0);
  EXPECT_LT(c.ratio(6), 1.0);
  // And the controller keeps working afterwards.
  std::fill(err.begin(), err.end(), 1e-3);
  for (int n = 0; n < 50; ++n) c.observe(err, nullptr);
  EXPECT_DOUBLE_EQ(c.ratio(5), 1.0);
}

TEST(DtController, ForceFloorPinsBlockAndStiffensIt) {
  const auto m = cube_map(16, 8);
  sv::DtController c(m, opts_on());
  c.force_floor(2);
  EXPECT_DOUBLE_EQ(c.ratio(2), opts_on().dt_min_ratio);
  EXPECT_EQ(c.stiff(), std::vector<int>{2});
  // Regrowth is earned: one clean observation cannot restore the
  // ceiling (err_prev was reset to "very bad").
  std::vector<double> err(8, 1e-3);
  c.observe(err, nullptr);
  EXPECT_LT(c.ratio(2), 1.0);
  EXPECT_THROW(c.force_floor(-1), s3d::Error);
  EXPECT_THROW(c.force_floor(8), s3d::Error);
}

TEST(DtController, CflClampFlagsSlowBlocks) {
  const auto m = cube_map(16, 8);
  auto ad = opts_on();
  ad.cfl_clamp = true;
  sv::DtController c(m, ad);
  std::vector<double> bdt(8, 1e300);  // "owns no cell" sentinel
  bdt[1] = 2.5e-7;                    // this block's own stable dt
  c.clamp_stable(bdt, 1e-6, nullptr); // global step 4x its stable dt
  EXPECT_DOUBLE_EQ(c.ratio(1), 0.25);
  EXPECT_EQ(c.stiff(), std::vector<int>{1});
  // Sentinel-valued blocks are untouched.
  EXPECT_DOUBLE_EQ(c.ratio(0), 1.0);
}

// ---------------------------------------------------------------------------
// Satellite: AdaptiveOptions::validate() property checks.

TEST(AdaptiveValidate, AcceptsDefaultsAndRejectsMalformed) {
  sv::AdaptiveOptions ok;
  EXPECT_NO_THROW(ok.validate("adaptive"));

  using Mut = std::function<void(sv::AdaptiveOptions&)>;
  struct Case {
    const char* field;
    Mut mutate;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Case> cases = {
      {"block", [](auto& a) { a.block = 0; }},
      {"block", [](auto& a) { a.block = -8; }},
      {"atol", [](auto& a) { a.atol = 0.0; }},
      {"atol", [=](auto& a) { a.atol = nan; }},
      {"rtol", [](auto& a) { a.rtol = -1e-4; }},
      {"rtol", [](auto& a) {
         a.rtol = std::numeric_limits<double>::infinity();
       }},
      {"kI", [](auto& a) { a.kI = 0.0; }},
      {"kI", [=](auto& a) { a.kI = nan; }},
      {"kP", [](auto& a) { a.kP = -0.1; }},
      {"safety", [](auto& a) { a.safety = 0.0; }},
      {"safety", [](auto& a) { a.safety = 1.5; }},
      {"dt_min_ratio", [](auto& a) { a.dt_min_ratio = 0.0; }},
      {"dt_min_ratio", [](auto& a) { a.dt_min_ratio = 2.0; }},
      {"dt_max_ratio", [](auto& a) {
         a.dt_min_ratio = 0.5;
         a.dt_max_ratio = 0.25;  // below the floor
       }},
      {"dt_max_ratio", [](auto& a) { a.dt_max_ratio = 4.0; }},
      {"subcycle_cap", [](auto& a) { a.subcycle_cap = 0; }},
      {"max_subcycle_retries", [](auto& a) { a.max_subcycle_retries = -1; }},
      {"max_local_rollbacks", [](auto& a) { a.max_local_rollbacks = -2; }},
      {"dt_recover_after", [](auto& a) { a.dt_recover_after = -1; }},
  };
  for (const auto& c : cases) {
    sv::AdaptiveOptions a;
    c.mutate(a);
    try {
      a.validate("guard.adaptive");
      FAIL() << "malformed " << c.field << " accepted";
    } catch (const sv::ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("guard.adaptive.") +
                                           c.field),
                std::string::npos)
          << "error must name the offending field: " << e.what();
    }
  }
}

TEST(AdaptiveValidate, ConfigValidateCoversAdaptiveKnobs) {
  // The knobs are reachable through Config::validate() with the
  // "adaptive." prefix, so a malformed production config fails at
  // solver construction like any other field.
  sv::Config cfg;
  cfg.mech = std::make_shared<const s3d::chem::Mechanism>(
      s3d::chem::air_inert());
  cfg.x = {16, 0.01, true};
  cfg.y = {16, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  EXPECT_NO_THROW(cfg.validate());
  cfg.adaptive.safety = -1.0;
  try {
    cfg.validate();
    FAIL() << "Config::validate must reject malformed adaptive knobs";
  } catch (const sv::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("adaptive.safety"),
              std::string::npos)
        << e.what();
  }
}
