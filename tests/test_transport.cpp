// Transport property tests: collision integrals, pure-species properties
// against tabulated values, fit accuracy, and mixture rules (paper
// section 2.2-2.5).

#include <gtest/gtest.h>

#include <cmath>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/species_db.hpp"
#include "transport/transport.hpp"

namespace chem = s3d::chem;
namespace tr = s3d::transport;

namespace {
const chem::Mechanism& h2mech() {
  static const chem::Mechanism m = chem::h2_li2004();
  return m;
}
const tr::TransportFits& h2fits() {
  static const tr::TransportFits f(h2mech());
  return f;
}
}  // namespace

TEST(CollisionIntegrals, Omega22KnownValues) {
  // Hirschfelder-Curtiss-Bird table: Omega22*(T*=1) ~ 1.593,
  // Omega22*(T*=10) ~ 0.8242.
  EXPECT_NEAR(tr::omega22(1.0), 1.593, 0.02);
  EXPECT_NEAR(tr::omega22(10.0), 0.8242, 0.01);
}

TEST(CollisionIntegrals, Omega11KnownValues) {
  // Omega11*(T*=1) ~ 1.439, Omega11*(T*=10) ~ 0.7424.
  EXPECT_NEAR(tr::omega11(1.0), 1.439, 0.02);
  EXPECT_NEAR(tr::omega11(10.0), 0.7424, 0.01);
}

TEST(CollisionIntegrals, MonotoneDecreasing) {
  for (double t = 0.5; t < 50.0; t *= 1.5) {
    EXPECT_GT(tr::omega22(t), tr::omega22(t * 1.5));
    EXPECT_GT(tr::omega11(t), tr::omega11(t * 1.5));
  }
}

TEST(PureSpecies, N2ViscosityAt300K) {
  // mu(N2, 300 K) ~ 1.78e-5 Pa s.
  auto n2 = chem::species_from_db("N2");
  EXPECT_NEAR(tr::viscosity(n2, 300.0), 1.78e-5, 0.15e-5);
}

TEST(PureSpecies, N2ViscosityAt1000K) {
  // mu(N2, 1000 K) ~ 4.1e-5 Pa s.
  auto n2 = chem::species_from_db("N2");
  EXPECT_NEAR(tr::viscosity(n2, 1000.0), 4.1e-5, 0.4e-5);
}

TEST(PureSpecies, H2ViscosityAt300K) {
  // mu(H2, 300 K) ~ 0.90e-5 Pa s.
  auto h2 = chem::species_from_db("H2");
  EXPECT_NEAR(tr::viscosity(h2, 300.0), 0.90e-5, 0.1e-5);
}

TEST(PureSpecies, N2ConductivityAt300K) {
  // lambda(N2, 300 K) ~ 0.026 W/(m K).
  auto n2 = chem::species_from_db("N2");
  EXPECT_NEAR(tr::conductivity(n2, 300.0), 0.026, 0.004);
}

TEST(PureSpecies, H2ConductivityAt300K) {
  // lambda(H2, 300 K) ~ 0.18 W/(m K), the highest of common gases.
  auto h2 = chem::species_from_db("H2");
  EXPECT_NEAR(tr::conductivity(h2, 300.0), 0.18, 0.04);
}

TEST(PureSpecies, BinaryDiffusionH2N2) {
  // D(H2-N2, 300 K, 1 atm) ~ 0.78 cm^2/s = 7.8e-5 m^2/s.
  auto h2 = chem::species_from_db("H2");
  auto n2 = chem::species_from_db("N2");
  EXPECT_NEAR(tr::binary_diffusion(h2, n2, 300.0, 101325.0), 7.8e-5, 1.2e-5);
}

TEST(PureSpecies, BinaryDiffusionSymmetric) {
  auto a = chem::species_from_db("O2");
  auto b = chem::species_from_db("H2O");
  for (double T : {300.0, 1000.0, 2000.0}) {
    EXPECT_DOUBLE_EQ(tr::binary_diffusion(a, b, T, 101325.0),
                     tr::binary_diffusion(b, a, T, 101325.0));
  }
}

TEST(PureSpecies, DiffusionScalesInverselyWithPressure) {
  auto a = chem::species_from_db("O2");
  auto b = chem::species_from_db("N2");
  const double d1 = tr::binary_diffusion(a, b, 500.0, 101325.0);
  const double d2 = tr::binary_diffusion(a, b, 500.0, 2 * 101325.0);
  EXPECT_NEAR(d1 / d2, 2.0, 1e-12);
}

TEST(Fits, ViscosityFitMatchesKineticTheory) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  for (int i = 0; i < m.n_species(); ++i) {
    for (double T : {300.0, 700.0, 1500.0, 2800.0}) {
      const double exact = tr::viscosity(m.species(i), T);
      EXPECT_NEAR(f.viscosity(i, std::log(T)), exact, 0.01 * exact)
          << m.species(i).name << " T=" << T;
    }
  }
}

TEST(Fits, ConductivityFitMatchesKineticTheory) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  for (int i = 0; i < m.n_species(); ++i) {
    for (double T : {300.0, 1000.0, 2500.0}) {
      const double exact = tr::conductivity(m.species(i), T);
      EXPECT_NEAR(f.conductivity(i, std::log(T)), exact, 0.03 * exact)
          << m.species(i).name;
    }
  }
}

TEST(Fits, DiffusionFitMatchesKineticTheoryAndPressureScaling) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  for (double T : {400.0, 1200.0}) {
    for (double p : {101325.0, 5e5}) {
      const double exact = tr::binary_diffusion(m.species(0), m.species(1), T, p);
      EXPECT_NEAR(f.binary_diffusion(0, 1, std::log(T), p), exact,
                  0.02 * exact);
    }
  }
}

TEST(Mixture, AirViscosityAt300K) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("O2")] = 0.21;
  X[m.index("N2")] = 0.79;
  EXPECT_NEAR(f.mixture_viscosity(300.0, X), 1.85e-5, 0.2e-5);
}

TEST(Mixture, ViscosityReducesToPureSpecies) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("N2")] = 1.0;
  const double mu_mix = f.mixture_viscosity(800.0, X);
  const double mu_pure = tr::viscosity(m.species(m.index("N2")), 800.0);
  EXPECT_NEAR(mu_mix, mu_pure, 0.02 * mu_pure);
}

TEST(Mixture, ConductivityReducesToPureSpecies) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("H2")] = 1.0;
  const double l_mix = f.mixture_conductivity(600.0, X);
  const double l_pure = tr::conductivity(m.species(m.index("H2")), 600.0);
  EXPECT_NEAR(l_mix, l_pure, 0.04 * l_pure);
}

TEST(Mixture, MixtureViscosityBetweenPureValues) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("H2")] = 0.5;
  X[m.index("N2")] = 0.5;
  const double mu = f.mixture_viscosity(500.0, X);
  const double mu_h2 = tr::viscosity(m.species(m.index("H2")), 500.0);
  const double mu_n2 = tr::viscosity(m.species(m.index("N2")), 500.0);
  EXPECT_GT(mu, std::min(mu_h2, mu_n2) * 0.9);
  EXPECT_LT(mu, std::max(mu_h2, mu_n2) * 1.1);
}

TEST(Mixture, MixtureDiffusionMatchesBinaryForTraceSpecies) {
  // Paper eq. 17: for trace species i in nearly pure N2,
  // D_i^mix -> D_iN2.
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  const int ih2 = m.index("H2"), in2 = m.index("N2");
  X[ih2] = 1e-6;
  X[in2] = 1.0 - 1e-6;
  std::vector<double> D(m.n_species());
  f.mixture_diffusion(800.0, 101325.0, X, D);
  const double d_bin =
      tr::binary_diffusion(m.species(ih2), m.species(in2), 800.0, 101325.0);
  EXPECT_NEAR(D[ih2], d_bin, 0.03 * d_bin);
}

TEST(Mixture, MixtureDiffusionAllPositive) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 1.0 / m.n_species());
  std::vector<double> D(m.n_species());
  for (double T : {350.0, 1100.0, 2600.0}) {
    f.mixture_diffusion(T, 101325.0, X, D);
    for (int i = 0; i < m.n_species(); ++i) EXPECT_GT(D[i], 0.0);
  }
}

TEST(Mixture, PureSpeciesLimitIsFinite) {
  // X_i -> 1 makes eq. 17 indeterminate; the regularization must return a
  // finite positive value.
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("N2")] = 1.0;
  std::vector<double> D(m.n_species());
  f.mixture_diffusion(700.0, 101325.0, X, D);
  for (int i = 0; i < m.n_species(); ++i) {
    EXPECT_TRUE(std::isfinite(D[i]));
    EXPECT_GT(D[i], 0.0);
  }
}

TEST(Mixture, PrandtlNumberOfAirIsPhysical) {
  const auto& m = h2mech();
  const auto& f = h2fits();
  std::vector<double> X(m.n_species(), 0.0);
  X[m.index("O2")] = 0.21;
  X[m.index("N2")] = 0.79;
  std::vector<double> Y(m.n_species());
  m.Y_from_X(X, Y);
  const double T = 300.0;
  const double mu = f.mixture_viscosity(T, X);
  const double lam = f.mixture_conductivity(T, X);
  const double cp = m.cp_mass_mix(T, Y);
  const double Pr = mu * cp / lam;
  EXPECT_GT(Pr, 0.6);
  EXPECT_LT(Pr, 0.85);
}
