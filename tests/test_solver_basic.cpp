// Basic solver tests on non-reacting configurations: quiescent-state
// preservation, conservation in periodic boxes, acoustic propagation speed,
// viscous decay, and decomposition invariance over vmpi.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "chem/mechanisms.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
using std::numbers::pi;

namespace {

std::shared_ptr<const chem::Mechanism> air() {
  static auto m = std::make_shared<const chem::Mechanism>(chem::air_inert());
  return m;
}

// Air at rest in a fully periodic 1-D box.
sv::Config periodic_air_1d(int n, double L) {
  sv::Config cfg;
  cfg.mech = air();
  cfg.x = {n, L, true};
  cfg.y = {1, 1.0, false};
  cfg.z = {1, 1.0, false};
  for (auto& f : cfg.faces[0]) f.kind = sv::BcKind::periodic;
  for (auto& f : cfg.faces[1]) f.kind = sv::BcKind::periodic;
  for (auto& f : cfg.faces[2]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void quiescent_air(double, double, double, sv::InflowState& s, double& p) {
  s.u = s.v = s.w = 0.0;
  s.T = 300.0;
  s.Y.fill(0.0);
  s.Y[0] = 0.233;  // O2
  s.Y[1] = 0.767;  // N2
  p = 101325.0;
}

}  // namespace

TEST(SolverBasic, QuiescentStateStaysQuiescent) {
  auto cfg = periodic_air_1d(32, 0.01);
  sv::Solver s(cfg);
  s.initialize(quiescent_air);
  s.run(20);
  const auto& prim = s.primitives();
  const auto& l = s.layout();
  for (int i = 0; i < l.nx; ++i) {
    EXPECT_NEAR(prim.u(i, 0, 0), 0.0, 1e-8);
    EXPECT_NEAR(prim.T(i, 0, 0), 300.0, 1e-6);
    EXPECT_NEAR(prim.p(i, 0, 0), 101325.0, 1e-3);
  }
}

TEST(SolverBasic, PeriodicBoxConservesMassMomentumEnergy) {
  auto cfg = periodic_air_1d(48, 0.01);
  sv::Solver s(cfg);
  // A smooth density/velocity perturbation.
  s.initialize([](double x, double, double, sv::InflowState& st, double& p) {
    st.u = 2.0 * std::sin(2 * pi * x / 0.01);
    st.v = st.w = 0.0;
    st.T = 300.0 * (1.0 + 0.02 * std::cos(2 * pi * x / 0.01));
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  });
  const auto& l = s.layout();
  auto sum_var = [&](int v) {
    double acc = 0.0;
    for (int i = 0; i < l.nx; ++i) acc += s.state().at(v, i, 0, 0);
    return acc;
  };
  const double m0 = sum_var(sv::UIndex::rho);
  const double px0 = sum_var(sv::UIndex::mx);
  const double e00 = sum_var(sv::UIndex::e0);
  s.run(50);
  EXPECT_NEAR(sum_var(sv::UIndex::rho), m0, 1e-9 * std::abs(m0));
  EXPECT_NEAR(sum_var(sv::UIndex::mx), px0, 1e-8 * std::abs(e00 / 340.0));
  EXPECT_NEAR(sum_var(sv::UIndex::e0), e00, 1e-9 * std::abs(e00));
}

TEST(SolverBasic, AcousticPulseTravelsAtSoundSpeed) {
  // Track the peak of a weak right-running simple wave (u = p'/(rho c));
  // it must move at u + c = c to leading order.
  const double L = 0.02;
  const int n = 128;
  auto cfg = periodic_air_1d(n, L);
  cfg.include_viscous = false;
  sv::Solver s(cfg);
  const double p0 = 101325.0, T0 = 300.0;
  // rho0, c0 for air.
  const double W = 28.85, gamma = 1.4;
  const double rho0 = p0 * W / (8314.46 * T0);
  const double c0 = std::sqrt(gamma * p0 / rho0);
  s.initialize([&](double x, double, double, sv::InflowState& st, double& p) {
    const double dp = 20.0 * std::exp(-std::pow((x - 0.25 * L) / 0.001, 2));
    p = p0 + dp;
    st.u = dp / (rho0 * c0);
    st.v = st.w = 0.0;
    st.T = T0 * std::pow(p / p0, (gamma - 1.0) / gamma);
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
  });

  auto peak_x = [&]() {
    const auto& prim = s.primitives();
    int best = 0;
    for (int i = 0; i < n; ++i)
      if (prim.p(i, 0, 0) > prim.p(best, 0, 0)) best = i;
    return s.coord(0, best);
  };

  const double x_start = peak_x();
  const double t_start = s.time();
  // Travel ~ a third of the box.
  while (s.time() - t_start < 0.3 * L / c0) s.step(0.8 * s.stable_dt());
  double dx = peak_x() - x_start;
  if (dx < 0) dx += L;  // periodic wrap
  const double c_measured = dx / (s.time() - t_start);
  EXPECT_NEAR(c_measured, c0, 0.05 * c0);
}

TEST(SolverBasic, ShearLayerDecaysViscously) {
  // A sinusoidal shear u(y) in a periodic 2-D box decays at rate nu k^2.
  sv::Config cfg;
  cfg.mech = air();
  const double L = 0.002;
  cfg.x = {16, L, true};
  cfg.y = {48, L, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  cfg.filter_interval = 0;  // pure viscous physics
  sv::Solver s(cfg);
  const double u_amp = 1.0;
  s.initialize([&](double, double y, double, sv::InflowState& st, double& p) {
    st.u = u_amp * std::sin(2 * pi * y / L);
    st.v = st.w = 0.0;
    st.T = 300.0;
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  });
  // nu at 300 K for air ~ 1.57e-5 m^2/s; get the model's own value.
  const double k = 2 * pi / L;
  const double t_end = 2e-5;
  while (s.time() < t_end) s.step(std::min(0.8 * s.stable_dt(), t_end - s.time()));
  const auto& prim = s.primitives();
  // Fit the measured amplitude of u at the quarter-wave row.
  double amp = 0.0;
  const auto& l = s.layout();
  for (int j = 0; j < l.ny; ++j)
    amp = std::max(amp, std::abs(prim.u(4, j, 0)));
  // Expected decay with nu in [1.2e-5, 2.2e-5]: amp in a known band.
  const double amp_hi = u_amp * std::exp(-1.2e-5 * k * k * t_end);
  const double amp_lo = u_amp * std::exp(-2.2e-5 * k * k * t_end);
  EXPECT_LT(amp, amp_hi * 1.02);
  EXPECT_GT(amp, amp_lo * 0.98);
}

TEST(SolverBasic, SpeciesSumPreserved) {
  auto cfg = periodic_air_1d(32, 0.01);
  sv::Solver s(cfg);
  s.initialize([](double x, double, double, sv::InflowState& st, double& p) {
    st.u = 5.0 * std::sin(2 * pi * x / 0.01);
    st.v = st.w = 0.0;
    st.T = 320.0;
    st.Y.fill(0.0);
    st.Y[0] = 0.233 + 0.05 * std::sin(4 * pi * x / 0.01);
    st.Y[1] = 1.0 - st.Y[0];
    p = 101325.0;
  });
  s.run(30);
  const auto& prim = s.primitives();
  const auto& l = s.layout();
  for (int i = 0; i < l.nx; ++i) {
    double sum = 0.0;
    for (const auto& Y : prim.Y) sum += Y(i, 0, 0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SolverBasic, DecompositionInvariance1D) {
  // The same periodic problem run serial and on 3 vmpi ranks must agree to
  // round-off after several steps.
  const int n = 45;
  const double L = 0.01;
  auto init = [](double x, double, double, sv::InflowState& st, double& p) {
    st.u = 3.0 * std::sin(2 * pi * x / 0.01) + std::cos(4 * pi * x / 0.01);
    st.v = st.w = 0.0;
    st.T = 300.0 + 10.0 * std::cos(2 * pi * x / 0.01);
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  };

  auto cfg = periodic_air_1d(n, L);
  sv::Solver serial(cfg);
  serial.initialize(init);
  const double dt = 0.5 * serial.stable_dt();
  for (int s = 0; s < 10; ++s) serial.step(dt);
  std::vector<double> rho_serial(n);
  for (int i = 0; i < n; ++i)
    rho_serial[i] = serial.state().at(sv::UIndex::rho, i, 0, 0);

  std::vector<double> rho_par(n, 0.0);
  s3d::vmpi::run(3, [&](s3d::vmpi::Comm& comm) {
    sv::Solver par(cfg, comm, 3, 1, 1);
    par.initialize(init);
    for (int s = 0; s < 10; ++s) par.step(dt);
    // Gather into the shared result (each rank writes its interior).
    const auto& l = par.layout();
    for (int i = 0; i < l.nx; ++i)
      rho_par[par.offset()[0] + i] = par.state().at(sv::UIndex::rho, i, 0, 0);
    comm.barrier();
  });

  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(rho_par[i], rho_serial[i], 1e-12 * rho_serial[i]) << i;
}

TEST(SolverBasic, FilterControlsOddEvenMode) {
  // Inject a Nyquist oscillation; with the filter on it must collapse
  // within a few steps.
  auto cfg = periodic_air_1d(64, 0.01);
  cfg.filter_interval = 1;
  sv::Solver s(cfg);
  s.initialize([](double x, double, double, sv::InflowState& st, double& p) {
    const int i = static_cast<int>(std::round(x / (0.01 / 64)));
    st.u = (i % 2 == 0) ? 0.5 : -0.5;
    st.v = st.w = 0.0;
    st.T = 300.0;
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  });
  s.run(10);
  const auto& prim = s.primitives();
  double umax = 0.0;
  for (int i = 0; i < 64; ++i) umax = std::max(umax, std::abs(prim.u(i, 0, 0)));
  EXPECT_LT(umax, 0.05);
}

TEST(SolverBasic, DecompositionInvariance2D) {
  // A 2-D periodic reacting-free problem on a 2x2 process grid must match
  // the serial run to round-off (exercises corner ghost fills).
  sv::Config cfg;
  cfg.mech = air();
  const double L = 0.004;
  cfg.x = {24, L, true};
  cfg.y = {20, L, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  auto init = [&](double x, double y, double, sv::InflowState& st,
                  double& p) {
    st.u = 2.0 * std::sin(2 * pi * x / L) * std::cos(2 * pi * y / L);
    st.v = -2.0 * std::cos(2 * pi * x / L) * std::sin(2 * pi * y / L);
    st.w = 0.0;
    st.T = 300.0 + 5.0 * std::sin(2 * pi * (x + y) / L);
    st.Y.fill(0.0);
    st.Y[0] = 0.233;
    st.Y[1] = 0.767;
    p = 101325.0;
  };

  sv::Solver serial(cfg);
  serial.initialize(init);
  const double dt = 0.5 * serial.stable_dt();
  for (int s = 0; s < 6; ++s) serial.step(dt);
  std::vector<double> T_serial(24 * 20);
  {
    const auto& prim = serial.primitives();
    for (int j = 0; j < 20; ++j)
      for (int i = 0; i < 24; ++i) T_serial[j * 24 + i] = prim.T(i, j, 0);
  }

  std::vector<double> T_par(24 * 20, 0.0);
  s3d::vmpi::run(4, [&](s3d::vmpi::Comm& comm) {
    sv::Solver par(cfg, comm, 2, 2, 1);
    par.initialize(init);
    for (int s = 0; s < 6; ++s) par.step(dt);
    const auto& prim = par.primitives();
    const auto& l = par.layout();
    const auto off = par.offset();
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i)
        T_par[(off[1] + j) * 24 + (off[0] + i)] = prim.T(i, j, 0);
    comm.barrier();
  });

  for (int n = 0; n < 24 * 20; ++n)
    EXPECT_NEAR(T_par[n], T_serial[n], 1e-9) << n;
}
