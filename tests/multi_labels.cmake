# Second labels for the multi-tier suites (appended to the directory's
# TEST_INCLUDE_FILES by tests/CMakeLists.txt).
#
# gtest_discover_tests flattens a "a;b" LABELS value through its
# POST_BUILD argument forwarding — only the first label survives, no
# matter how the semicolon is escaped — so the extra tier labels are
# applied here instead. This file is processed by ctest after the
# discovery files have defined the tests and their <target>_TESTS list
# variables, where set_tests_properties takes a proper CMake list.

# test_resilience + test_ckpt_store: the delta checkpoint store is both
# the recovery substrate (resilience tier) and its own subsystem
# (ctest -L checkpoint).
foreach(t ${test_resilience_TESTS} ${test_ckpt_store_TESTS})
  set_tests_properties("${t}" PROPERTIES LABELS "resilience;checkpoint")
endforeach()

# test_passes carries the health label alongside passes: the in-pass
# tripwires are part of the health contract, and the fusion-off verify
# lane runs the suite with the golden/health tiers.
foreach(t ${test_passes_TESTS})
  set_tests_properties("${t}" PROPERTIES LABELS "passes;health")
endforeach()

# test_analysis: the analysis sidecar rides the health snapshot ring
# and the rollback ladder, so the plugin tier doubles into the health
# lane (and its UBSan/TSan runs).
foreach(t ${test_analysis_TESTS})
  set_tests_properties("${t}" PROPERTIES LABELS "plugin;health")
endforeach()

# test_dt_control + test_adaptive: the adaptive dt tier (ctest -L
# adaptive) is part of the health contract too — the escalation ladder
# is the breach recovery path — so both suites also carry the health
# label and run in the health/UBSan/TSan lanes.
foreach(t ${test_dt_control_TESTS} ${test_adaptive_TESTS})
  set_tests_properties("${t}" PROPERTIES LABELS "adaptive;health")
endforeach()
