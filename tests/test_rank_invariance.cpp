// Rank-count invariance: the same problem advanced one (and several)
// steps on 1, 2, and 8 vmpi ranks must produce bitwise-identical interior
// fields. This isolates halo-exchange correctness from the golden
// harness: any packing/ordering/ghost-width bug shows up as a checksum
// difference between decompositions.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace vmpi = s3d::vmpi;

namespace {

// Run `nsteps` of the given case on a (px, py, pz) decomposition and
// return the per-variable FNV-1a checksums of the gathered global
// interior (x fastest, then y, then z, then variable).
std::vector<std::uint64_t> run_and_checksum(const sv::CaseSetup& setup,
                                            int nsteps, int px, int py,
                                            int pz) {
  const int NX = setup.cfg.x.n, NY = setup.cfg.y.n, NZ = setup.cfg.z.n;
  const int nranks = px * py * pz;
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * NX * NY * NZ);

  vmpi::run(nranks, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    s.run(nsteps);
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i) {
            const std::size_t g =
                static_cast<std::size_t>(v) * NX * NY * NZ +
                static_cast<std::size_t>(off[2] + k) * NX * NY +
                static_cast<std::size_t>(off[1] + j) * NX + (off[0] + i);
            global[g] = var[l.at(i, j, k)];
          }
    }
    comm.barrier();  // all interiors written before rank 0 returns
  });

  std::vector<std::uint64_t> sums(nv);
  const std::size_t pts = static_cast<std::size_t>(NX) * NY * NZ;
  for (int v = 0; v < nv; ++v)
    sums[v] = s3d::fnv1a64(global.data() + static_cast<std::size_t>(v) * pts,
                           pts * sizeof(double));
  return sums;
}

// Gathered DLB execution statistics from a parallel run (summed over
// ranks; shipped == hosted globally by construction).
struct DlbTotals {
  long evals_engaged = 0;
  long parcels = 0;
  long cells = 0;
};

// Like run_and_checksum, but also collects the chemistry-DLB statistics.
std::vector<std::uint64_t> run_and_checksum_dlb(const sv::CaseSetup& setup,
                                                int nsteps, int px, int py,
                                                int pz, DlbTotals* totals) {
  const int NX = setup.cfg.x.n, NY = setup.cfg.y.n, NZ = setup.cfg.z.n;
  const int nranks = px * py * pz;
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * NX * NY * NZ);
  std::vector<sv::DlbStats> per_rank(nranks);

  vmpi::run(nranks, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    s.run(nsteps);
    if (const sv::DlbStats* st = s.rhs().dlb_stats())
      per_rank[comm.rank()] = *st;
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i) {
            const std::size_t g =
                static_cast<std::size_t>(v) * NX * NY * NZ +
                static_cast<std::size_t>(off[2] + k) * NX * NY +
                static_cast<std::size_t>(off[1] + j) * NX + (off[0] + i);
            global[g] = var[l.at(i, j, k)];
          }
    }
    comm.barrier();
  });

  if (totals) {
    *totals = DlbTotals{};
    for (const auto& st : per_rank) {
      totals->evals_engaged =
          std::max(totals->evals_engaged, st.evals_engaged);
      totals->parcels += st.parcels_sent;
      totals->cells += st.cells_shipped;
    }
  }
  std::vector<std::uint64_t> sums(nv);
  const std::size_t pts = static_cast<std::size_t>(NX) * NY * NZ;
  for (int v = 0; v < nv; ++v)
    sums[v] = s3d::fnv1a64(global.data() + static_cast<std::size_t>(v) * pts,
                           pts * sizeof(double));
  return sums;
}

// Forced chemistry load skew: a fully periodic premixed H2/air box at
// 300 K with one hot ignition kernel confined to the first octant, so
// every decomposition hands (nearly) all cells above Config::dlb_hot_T
// to rank 0. An aggressive hot weight plus a tight imbalance tolerance
// guarantees the plan engages at 2 and 8 ranks.
sv::CaseSetup dlb_skew_case(int n) {
  sv::CaseSetup cs;
  auto mech = std::make_shared<const s3d::chem::Mechanism>(
      s3d::chem::h2_li2004());
  cs.cfg.mech = mech;
  const double L = 0.004;
  cs.cfg.x = {n, L, true};
  cs.cfg.y = {n, L, true};
  cs.cfg.z = {n, L, true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cs.cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cs.cfg.transport = sv::TransportModel::constant_lewis;
  cs.cfg.T_ref = 300.0;
  cs.cfg.dlb_hot_weight = 64.0;
  cs.cfg.dlb_imbalance_tol = 0.05;

  // Stoichiometric H2/air (X ratios 2 : 1 : 3.76).
  const auto Y0 = s3d::chem::stream_Y_from_X(
      *mech, {{"H2", 0.2959}, {"O2", 0.1479}, {"N2", 0.5562}});
  cs.Y_ox = Y0;
  cs.init = [L, Y0](double x, double y, double z, sv::InflowState& s,
                    double& p) {
    s.u = s.v = s.w = 0.0;
    s.Y.fill(0.0);
    for (std::size_t i = 0; i < Y0.size(); ++i) s.Y[i] = Y0[i];
    const double r0 = L / 5.0;
    const double r2 = std::pow(x - 0.25 * L, 2) +
                      std::pow(y - 0.25 * L, 2) +
                      std::pow(z - 0.25 * L, 2);
    s.T = 300.0 + 1300.0 * std::exp(-r2 / (r0 * r0));
    p = 101325.0;
  };
  return cs;
}

// Golden parcel accounting for ChemistryDlbForcedSkewBitwise: global
// parcels/cells shipped over the whole run at each decomposition.
constexpr long kGoldenParcels2 = 11;
constexpr long kGoldenCells2 = 143;
constexpr long kGoldenParcels8 = 77;
constexpr long kGoldenCells8 = 231;

}  // namespace

TEST(RankInvariance, PressureWave3dOneStep) {
  const auto setup = sv::pressure_wave_case(16);
  const auto serial = run_and_checksum(setup, 1, 1, 1, 1);
  const auto two = run_and_checksum(setup, 1, 2, 1, 1);
  const auto eight = run_and_checksum(setup, 1, 2, 2, 2);
  ASSERT_EQ(serial.size(), two.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t v = 0; v < serial.size(); ++v) {
    EXPECT_EQ(two[v], serial[v]) << "1 vs 2 ranks differ in variable " << v;
    EXPECT_EQ(eight[v], serial[v]) << "1 vs 8 ranks differ in variable " << v;
  }
}

TEST(RankInvariance, PressureWave3dSeveralStepsAndAxisSplits) {
  const auto setup = sv::pressure_wave_case(16);
  const auto ref = run_and_checksum(setup, 3, 1, 1, 1);
  // Split each axis separately: catches per-axis pack/unpack asymmetries.
  for (const auto& decomp :
       {std::array<int, 3>{2, 1, 1}, {1, 2, 1}, {1, 1, 2}, {2, 2, 2}}) {
    const auto got =
        run_and_checksum(setup, 3, decomp[0], decomp[1], decomp[2]);
    for (std::size_t v = 0; v < ref.size(); ++v)
      EXPECT_EQ(got[v], ref[v])
          << decomp[0] << "x" << decomp[1] << "x" << decomp[2]
          << " differs in variable " << v;
  }
}

TEST(RankInvariance, ReactingLiftedJet2d) {
  // Non-periodic NSCBC boundaries + inflow turbulence + chemistry: the
  // full stack must still be decomposition-invariant.
  sv::LiftedJetParams p;
  p.nx = 32;
  p.ny = 24;
  const auto setup = sv::lifted_jet_case(p);
  const auto serial = run_and_checksum(setup, 2, 1, 1, 1);
  const auto par = run_and_checksum(setup, 2, 2, 2, 1);
  for (std::size_t v = 0; v < serial.size(); ++v)
    EXPECT_EQ(par[v], serial[v]) << "variable " << v;
}

TEST(ChemDlb, PlanIsPureAndConservative) {
  const std::vector<double> loads{5000.0, 1000.0, 1000.0, 1000.0};
  const std::vector<double> hot{60.0, 0.0, 0.0, 0.0};
  const auto plan = sv::dlb_plan(loads, hot, 64.0, 0.10);
  ASSERT_FALSE(plan.empty());
  long shipped = 0;
  for (const auto& t : plan) {
    EXPECT_EQ(t.src, 0) << "only rank 0 has surplus hot cells";
    EXPECT_NE(t.dst, 0);
    EXPECT_GT(t.cells, 0);
    shipped += t.cells;
  }
  EXPECT_LE(shipped, 60);

  // Pure function: identical inputs, identical plan.
  const auto again = sv::dlb_plan(loads, hot, 64.0, 0.10);
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(again[i].src, plan[i].src);
    EXPECT_EQ(again[i].dst, plan[i].dst);
    EXPECT_EQ(again[i].cells, plan[i].cells);
  }

  // Balanced loads and single-rank inputs produce no plan.
  const std::vector<double> flat{1000.0, 1000.0, 1000.0, 1000.0};
  const std::vector<double> nohot{0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(sv::dlb_plan(flat, nohot, 64.0, 0.10).empty());
  EXPECT_TRUE(sv::dlb_plan({loads.data(), 1}, {hot.data(), 1}, 64.0, 0.10)
                  .empty());
}

TEST(RankInvariance, ChemistryDlbForcedSkewBitwise) {
  // The acceptance bar of DESIGN.md §11: DLB-armed 1/2/8-rank runs of a
  // deliberately skewed reacting case are bitwise identical to the
  // DLB-off serial reference, and the layer demonstrably engaged
  // (shipped parcels) on the multi-rank runs.
  auto setup = dlb_skew_case(16);
  setup.cfg.chem_dlb = true;  // arm explicitly: must hold under -DS3D_DLB=OFF
  auto off = setup;
  off.cfg.chem_dlb = false;
  const auto ref = run_and_checksum(off, 2, 1, 1, 1);

  // Single rank: the layer arms but can never engage (P = 1).
  DlbTotals t1;
  const auto one = run_and_checksum_dlb(setup, 2, 1, 1, 1, &t1);
  EXPECT_EQ(t1.cells, 0);
  for (std::size_t v = 0; v < ref.size(); ++v)
    EXPECT_EQ(one[v], ref[v]) << "DLB-armed 1 rank, variable " << v;

  DlbTotals t2, t8;
  const auto two = run_and_checksum_dlb(setup, 2, 2, 1, 1, &t2);
  const auto eight = run_and_checksum_dlb(setup, 2, 2, 2, 2, &t8);
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(two[v], ref[v]) << "DLB-armed 2 ranks, variable " << v;
    EXPECT_EQ(eight[v], ref[v]) << "DLB-armed 8 ranks, variable " << v;
  }
  EXPECT_GT(t2.cells, 0) << "forced skew must engage the 2-rank plan";
  EXPECT_GT(t8.cells, 0) << "forced skew must engage the 8-rank plan";

  // Golden parcel accounting: the plan is a pure function of the
  // deterministic hot-cell classification, so the global parcel/cell
  // totals are exactly reproducible. Refresh these pins only with an
  // intentional change to the cost model or the planner (record the new
  // values from this test's failure output).
  EXPECT_EQ(t2.parcels, kGoldenParcels2);
  EXPECT_EQ(t2.cells, kGoldenCells2);
  EXPECT_EQ(t8.parcels, kGoldenParcels8);
  EXPECT_EQ(t8.cells, kGoldenCells8);

  // Per-point local kernel (fusion off) against hosted batched remotes:
  // still bitwise, because every shape funnels into the same compiled
  // kinetics body.
  auto unfused = setup;
  unfused.cfg.fusion = false;
  DlbTotals tu;
  const auto upar = run_and_checksum_dlb(unfused, 2, 2, 1, 1, &tu);
  for (std::size_t v = 0; v < ref.size(); ++v)
    EXPECT_EQ(upar[v], ref[v]) << "unfused DLB-armed 2 ranks, variable "
                               << v;
  EXPECT_EQ(tu.parcels, kGoldenParcels2);
}

TEST(RankInvariance, SerialSolverMatchesSingleRankParallel) {
  // The serial constructor and a 1-rank Cartesian communicator take
  // different code paths (local wrap vs self-neighbour exchange); they
  // must agree bitwise.
  const auto setup = sv::pressure_wave_case(12);
  sv::Solver serial(setup.cfg);
  serial.initialize(setup.init);
  serial.run(2);

  const auto par = run_and_checksum(setup, 2, 1, 1, 1);
  const auto& l = serial.layout();
  const int nv = serial.state().nv();
  std::vector<double> global(static_cast<std::size_t>(nv) * l.nx * l.ny *
                             l.nz);
  for (int v = 0; v < nv; ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          global[static_cast<std::size_t>(v) * l.nx * l.ny * l.nz +
                 static_cast<std::size_t>(k) * l.nx * l.ny +
                 static_cast<std::size_t>(j) * l.nx + i] =
              serial.state().var(v)[l.at(i, j, k)];
  const std::size_t pts = static_cast<std::size_t>(l.nx) * l.ny * l.nz;
  for (int v = 0; v < nv; ++v)
    EXPECT_EQ(s3d::fnv1a64(global.data() + v * pts, pts * sizeof(double)),
              par[v])
        << "variable " << v;
}
